// Command batond hosts peers of a live BATON overlay in their own OS
// process, connected to the rest of the cluster over the TCP wire
// transport (internal/transport). It runs in one of two roles:
//
//   - Coordinator: -listen makes this process the overlay's head. It grows
//     a cluster of -peers locally (optionally preloading -items uniformly
//     distributed items), listens for daemons, and owns every structural
//     operation — joins of remote peers, departures, crash repair, load
//     balancing, audits.
//   - Daemon: -seed dials a running coordinator and joins the live overlay,
//     hosting -peers additional peers in this process. The daemon serves
//     its share of the keyspace (gets, puts, ranges, bulk, replication all
//     cross the wire as needed) until it is interrupted or the seed
//     connection drops.
//
// Usage:
//
//	batond -listen 127.0.0.1:7331 -peers 8 -items 10000   # coordinator
//	batond -seed 127.0.0.1:7331 -peers 4                  # daemon
//
// Drive a workload through the running cluster with
//
//	batonsim -mode throughput -transport tcp -seedaddr 127.0.0.1:7331
//
// which attaches as a pure data-plane client. See examples/multiprocess
// for the full walkthrough.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"baton/internal/core"
	"baton/internal/p2p"
	"baton/internal/workload"
)

func main() {
	var (
		listen = flag.String("listen", "", "coordinator role: address to listen on (host:port; :0 picks a free port)")
		seed   = flag.String("seed", "", "daemon role: address of a running coordinator to join")
		peers  = flag.Int("peers", 4, "peers hosted in this process")
		items  = flag.Int("items", 0, "coordinator role: items preloaded into the overlay before listening")
		fanout = flag.Int("fanout", 2, "coordinator role: overlay tree fanout m (2 = binary BATON, >2 = BATON*)")
		rseed  = flag.Int64("rngseed", 1, "coordinator role: random seed for the initial topology and preload")
	)
	flag.Parse()
	if err := validateFlags(*listen, *seed); err != nil {
		fatal(err)
	}

	var c *p2p.Cluster
	var err error
	if *listen != "" {
		c, err = startCoordinator(*listen, *peers, *items, *fanout, *rseed)
	} else {
		c, err = p2p.JoinRemote(*seed, *peers)
		if err == nil {
			fmt.Printf("batond: joined overlay via %s, hosting %d peers (cluster size %d)\n", *seed, *peers, c.Size())
		}
	}
	if err != nil {
		fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("batond: %v, shutting down\n", s)
	case <-c.SeedDown(): // nil (blocks forever) for the coordinator
		fmt.Fprintln(os.Stderr, "batond: seed connection lost, shutting down")
		c.Stop()
		os.Exit(1)
	}
	c.Stop()
}

// startCoordinator grows the initial overlay in-process, preloads it, and
// opens the listener. The listen address is printed on stdout so scripts
// can scrape the bound port when :0 was asked for.
func startCoordinator(listen string, peers, items, fanout int, seed int64) (*p2p.Cluster, error) {
	if fanout != 0 && !core.ValidFanout(fanout) {
		return nil, fmt.Errorf("invalid -fanout %d (want 2..%d)", fanout, core.MaxFanout)
	}
	nw := core.NewNetwork(core.Config{Seed: seed, Fanout: fanout})
	rng := rand.New(rand.NewSource(seed))
	for nw.Size() < peers {
		ids := nw.PeerIDs()
		if _, _, err := nw.Join(ids[rng.Intn(len(ids))]); err != nil {
			return nil, fmt.Errorf("growing initial overlay: %w", err)
		}
	}
	gen := workload.NewGenerator(workload.Config{Seed: seed + 1, Distribution: workload.Uniform})
	for _, k := range gen.Keys(items) {
		if _, err := nw.Insert(nw.RandomPeer(), k, []byte("v")); err != nil {
			return nil, fmt.Errorf("preloading items: %w", err)
		}
	}
	c, err := p2p.NewClusterListen(nw, listen)
	if err != nil {
		return nil, err
	}
	fmt.Printf("batond: coordinator listening on %s (%d peers, %d items, fanout %d)\n",
		c.Addr(), peers, items, max(2, fanout))
	return c, nil
}

// validateFlags enforces the role split: exactly one of -listen and -seed,
// and the coordinator-only knobs are rejected in daemon role rather than
// silently ignored (the batonsim strict-flag convention).
func validateFlags(listen, seed string) error {
	if (listen == "") == (seed == "") {
		return fmt.Errorf("exactly one of -listen (coordinator) or -seed (daemon) is required")
	}
	if seed == "" {
		return nil
	}
	var bad []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "items", "fanout", "rngseed":
			bad = append(bad, "-"+f.Name)
		}
	})
	if len(bad) > 0 {
		return fmt.Errorf("daemon role (-seed) ignores flag(s) %v: the coordinator owns the topology and the data preload", bad)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "batond:", err)
	os.Exit(1)
}
