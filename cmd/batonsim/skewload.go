package main

import (
	"fmt"

	"baton/internal/core"
	"baton/internal/p2p"
	"baton/internal/workload"
	"baton/internal/workload/driver"
)

type skewloadOptions struct {
	peers, items, clients, ops           int
	getFrac, putFrac, delFrac, rangeFrac float64
	selectivity                          float64
	theta                                float64
	autobalance, compare                 bool
	route                                p2p.RouteMode
	seed                                 int64
	fanout                               int
	traceSample                          int
	metricsOut                           string
	transport, listen                    string
}

// skewResult summarises one skewload run for the comparison gate.
type skewResult struct {
	opsPerSec float64
	imbBefore float64
	imbAfter  float64
	balanced  int64
}

// runSkewLoad is the batonsim skewload mode: the cluster is pre-loaded with
// Zipf(theta)-distributed items (so a few peers own nearly all the data, the
// configuration the paper's Section V exists for), the closed-loop workload
// drives Zipf-distributed traffic at it, and — with -autobalance — the
// background balancer sheds the skew while the workload runs. The run ends
// with the usual structural and replication audits plus the max/average
// load-imbalance ratio before and after. With -compare the mode runs the
// balancer-off and balancer-on scenarios back to back on identical clusters
// and exits non-zero unless the balancer cut the final imbalance ratio —
// the CI smoke gate for the adaptive load-management layer.
func runSkewLoad(o skewloadOptions) {
	if o.compare {
		fmt.Printf("=== balancer OFF ===\n")
		off := skewRun(o, false)
		fmt.Printf("\n=== balancer ON ===\n")
		on := skewRun(o, true)
		fmt.Printf("\nimbalance ratio: %.2f (off) vs %.2f (on)  |  ops/sec: %.0f (off) vs %.0f (on)  |  balance actions: %d\n",
			off.imbAfter, on.imbAfter, off.opsPerSec, on.opsPerSec, on.balanced)
		if on.imbAfter >= off.imbAfter {
			fatal(fmt.Errorf("skewload gate FAILED: auto-balance imbalance %.2f not below balancer-off %.2f", on.imbAfter, off.imbAfter))
		}
		fmt.Println("skewload gate passed: the auto-balancer cut the imbalance ratio")
		return
	}
	skewRun(o, o.autobalance)
}

// skewRun executes one skewload scenario on a fresh cluster and returns its
// summary.
func skewRun(o skewloadOptions, autobalance bool) skewResult {
	fmt.Printf("building live cluster: %d peers, %d Zipf(%.2f) items, fanout %d, transport %s ...\n", o.peers, o.items, o.theta, max(2, o.fanout), o.transport)
	cluster, keys, stop, err := buildScenarioCluster(o.transport, o.listen, o.peers, o.items, o.seed, workload.Zipf, o.theta, o.fanout)
	if err != nil {
		fatal(err)
	}
	defer stop()

	var res skewResult
	if res.imbBefore, err = cluster.ImbalanceRatio(); err != nil {
		fatal(err)
	}
	rep := driver.Run(cluster, driver.Config{
		Clients:          o.clients,
		Ops:              o.ops,
		GetFraction:      o.getFrac,
		PutFraction:      o.putFrac,
		DeleteFraction:   o.delFrac,
		RangeFraction:    o.rangeFrac,
		RangeSelectivity: o.selectivity,
		Route:            o.route,
		Keys:             keys,
		Distribution:     workload.Zipf,
		ZipfTheta:        o.theta,
		AutoBalance:      autobalance,
		TraceSample:      o.traceSample,
		Seed:             o.seed,
	})
	if autobalance {
		// Quiesce the balancer before auditing: a short run can end between
		// ticker fires.
		if _, err := cluster.BalanceUntilStable(p2p.AutoBalanceConfig{}, 8*o.peers); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("skewload run (zipf theta %.2f, autobalance %v, route %s)\n", o.theta, autobalance, o.route)
	fmt.Print(rep.String())

	// Audit the quiesced cluster: structure, then replication.
	snaps, err := cluster.Snapshot()
	if err != nil {
		fatal(err)
	}
	if err := core.VerifySnapshot(cluster.Domain(), snaps); err != nil {
		fatal(fmt.Errorf("post-skewload structural invariants FAILED: %w", err))
	}
	if err := cluster.SyncReplicas(); err != nil {
		fatal(err)
	}
	replicas, err := cluster.Replicas()
	if err != nil {
		fatal(err)
	}
	if err := core.VerifyReplication(snaps, replicas); err != nil {
		fatal(fmt.Errorf("post-skewload replication invariants FAILED: %w", err))
	}
	if res.imbAfter, err = cluster.ImbalanceRatio(); err != nil {
		fatal(err)
	}
	res.opsPerSec = rep.OpsPerSec
	res.balanced = cluster.BalanceEvents()
	fmt.Printf("imbalance ratio (max/avg stored items): %.2f -> %.2f  (balance actions: %d)\n",
		res.imbBefore, res.imbAfter, res.balanced)
	fmt.Printf("post-quiesce audit: %d peers, structural + replication invariants OK\n", len(snaps))
	// With -compare both scenarios write here; the file ends up describing
	// the balancer-on run, the one the gate is about.
	writeObsDump(cluster, o.metricsOut)
	return res
}
