package main

import (
	"fmt"

	"baton/internal/core"
	"baton/internal/p2p"
	"baton/internal/workload"
	"baton/internal/workload/driver"
)

type churnloadOptions struct {
	peers, items, clients, ops           int
	getFrac, putFrac, delFrac, rangeFrac float64
	selectivity                          float64
	joins, departs, kill                 int
	route                                p2p.RouteMode
	seed                                 int64
	fanout                               int
	traceSample                          int
	metricsOut                           string
	transport, listen                    string
}

// runChurnLoad is the batonsim churnload mode: the closed-loop workload
// runs while the membership churns — online joins, graceful departures and
// optional abrupt kills — and the run ends with a structural audit: the
// quiesced cluster snapshot is rebuilt into a simulator network and checked
// against the full invariant suite.
func runChurnLoad(o churnloadOptions) {
	fmt.Printf("building live cluster: %d peers, %d items, fanout %d, transport %s ...\n", o.peers, o.items, max(2, o.fanout), o.transport)
	cluster, keys, stop, err := buildScenarioCluster(o.transport, o.listen, o.peers, o.items, o.seed, workload.Uniform, 0, o.fanout)
	if err != nil {
		fatal(err)
	}
	defer stop()
	startSize := cluster.Size()

	rep := driver.Run(cluster, driver.Config{
		Clients:          o.clients,
		Ops:              o.ops,
		GetFraction:      o.getFrac,
		PutFraction:      o.putFrac,
		DeleteFraction:   o.delFrac,
		RangeFraction:    o.rangeFrac,
		RangeSelectivity: o.selectivity,
		Route:            o.route,
		Keys:             keys,
		KillPeers:        o.kill,
		JoinPeers:        o.joins,
		DepartPeers:      o.departs,
		TraceSample:      o.traceSample,
		Seed:             o.seed,
	})
	fmt.Printf("churnload run (joins %d, departs %d, kills %d requested, route %s)\n", o.joins, o.departs, o.kill, o.route)
	fmt.Print(rep.String())
	fmt.Printf("cluster size: %d -> %d\n", startSize, cluster.Size())
	fmt.Printf("peer-to-peer messages delivered: %d\n", cluster.Messages())

	snaps, err := cluster.Snapshot()
	if err != nil {
		fatal(err)
	}
	if err := core.VerifySnapshot(cluster.Domain(), snaps); err != nil {
		fatal(fmt.Errorf("post-churn structural invariants FAILED: %w", err))
	}
	items := 0
	for _, ps := range snaps {
		items += len(ps.Items)
	}
	fmt.Printf("post-quiesce audit: %d peers, %d items, structural invariants OK\n", len(snaps), items)
	writeObsDump(cluster, o.metricsOut)
}
