package main

import (
	"encoding/json"
	"fmt"
	"os"

	"baton/internal/obs"
	"baton/internal/p2p"
)

// obsDump is the schema of the -metricsout file: the full metrics-registry
// snapshot (cluster totals plus the per-peer breakdown), the retained
// structural-op journal, and the hop chains of the most recent sampled
// requests. One file per run, written after the workload and any audits.
type obsDump struct {
	Metrics obs.ClusterMetrics `json:"metrics"`
	Events  []obs.Event        `json:"events"`
	Traces  [][]obs.Hop        `json:"traces"`
}

// writeObsDump snapshots the cluster's flight recorder into path as JSON.
// An empty path means -metricsout was not given and nothing is written.
func writeObsDump(c *p2p.Cluster, path string) {
	if path == "" {
		return
	}
	dump := obsDump{
		Metrics: c.Metrics(),
		Events:  c.Events(),
		Traces:  c.Traces(),
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("flight-recorder dump written to %s (%d peers, %d journal events, %d traces)\n",
		path, len(dump.Metrics.Peers), len(dump.Events), len(dump.Traces))
}
