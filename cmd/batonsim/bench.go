package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"baton/internal/chord"
	"baton/internal/keyspace"
	"baton/internal/p2p"
	"baton/internal/stats"
	"baton/internal/workload"
	"baton/internal/workload/driver"
)

type benchOptions struct {
	peers, items, clients, ops int
	seed                       int64
	out                        string
	requireSpeedup             float64
	fanout                     int
	compareOverlays            bool
	traceSample                int
	metricsOut                 string
	transport, listen          string
}

// benchCase is one cell of the fixed benchmark matrix. Cells that feed the
// -requirespeedup gate run reps times and record their best run — a single
// sample of a sub-second cell is at the mercy of scheduler noise, and a
// gate that flips on noise is worse than no gate.
type benchCase struct {
	name string
	reps int
	cfg  driver.Config
}

// benchResult is one row of the tracked baseline file.
type benchResult struct {
	Name  string `json:"name"`
	Route string `json:"route"`
	// Transport is the message medium the cell's cluster ran on: "local"
	// (in-process channel inboxes) or "tcp" (the loopback wire pair), so
	// the baseline tracks serialization and wire cost alongside routing
	// cost.
	Transport string `json:"transport"`
	// Fanout is the overlay tree fanout m the cell's cluster was built with
	// (2 = binary BATON, >2 = BATON*). Zero marks the Chord comparison rows,
	// which have no tree.
	Fanout      int     `json:"fanout"`
	Ops         int64   `json:"ops"`
	Errors      int64   `json:"errors"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	MsgsPerOp   float64 `json:"msgs_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// HopsP50 and HopsP99 are percentiles of the per-op message hop counts;
	// QueueWaitP99us is the p99 of how long messages sat queued in peer
	// inboxes during this cell, in microseconds (both from the flight
	// recorder's registry).
	HopsP50        float64 `json:"hops_p50"`
	HopsP99        float64 `json:"hops_p99"`
	QueueWaitP99us float64 `json:"queue_wait_p99_us"`
	StaleRoutes    int64   `json:"stale_routes,omitempty"`
	// Imbalance is the final max/average stored-load ratio of the skew
	// cells (zipf rows only).
	Imbalance float64 `json:"imbalance,omitempty"`
	// Rebalanced counts the background balancer's actions (zipf rows only).
	Rebalanced int64 `json:"rebalanced,omitempty"`
	// PlanSerial, PlanParallel and PlanCacheHits are the query layer's
	// planning counters for the cell (adaptive-plan rows only): how the
	// self-tuned planner split the cell's ranges between the serial walk
	// and the parallel scatter, and how often the plan cache short-
	// circuited the span estimate.
	PlanSerial    int64 `json:"plan_serial,omitempty"`
	PlanParallel  int64 `json:"plan_parallel,omitempty"`
	PlanCacheHits int64 `json:"plan_cache_hits,omitempty"`
}

// benchReport is the schema of BENCH_p2p.json: the run parameters plus one
// result row per matrix cell, so successive PRs diff against a fixed shape.
type benchReport struct {
	Peers      int           `json:"peers"`
	Items      int           `json:"items"`
	Clients    int           `json:"clients"`
	OpsPerCase int           `json:"ops_per_case"`
	Seed       int64         `json:"seed"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Results    []benchResult `json:"results"`
}

// gateMargin softens the -requirespeedup comparison: the gate cells are
// best-of-3, but machine noise between the direct and overlay measurements
// can still be a few percent, and the gate exists to catch regressions, not
// jitter.
const gateMargin = 0.95

// runBench is the batonsim bench mode: it runs a fixed performance matrix —
// overlay-routed vs direct-routed singleton gets and puts, batched bulk
// puts, serial vs parallel ranges, the mixed workload under membership
// churn and under crash/repair faults, and the Zipf(1.0) skewed workload
// with the auto-balancer off vs on — and writes the results to the tracked
// baseline file (BENCH_p2p.json), so every future change has a trajectory
// to beat. With -requirespeedup X the mode exits non-zero unless
// direct-mode singleton throughput beats overlay-mode by at least that
// factor (best-of-3 per cell, with a small noise margin), which is what the
// CI bench-smoke step gates on.
func runBench(o benchOptions) {
	if o.clients <= 0 {
		o.clients = 8
	}
	matrixFanout := max(2, o.fanout)
	matrixTransport := o.transport
	if matrixTransport == "" {
		matrixTransport = "local"
	}
	fmt.Printf("building live cluster: %d peers, %d items, fanout %d, transport %s ...\n", o.peers, o.items, matrixFanout, matrixTransport)
	cluster, keys, stop, err := buildScenarioCluster(matrixTransport, o.listen, o.peers, o.items, o.seed, workload.Uniform, 0, o.fanout)
	if err != nil {
		fatal(err)
	}
	defer stop()

	base := driver.Config{
		Clients: o.clients,
		Ops:     o.ops,
		Keys:    keys,
		Seed:    o.seed,
	}
	with := func(mut func(*driver.Config)) driver.Config {
		cfg := base
		mut(&cfg)
		return cfg
	}
	churn := max(1, o.peers/8)
	// The quiesced comparisons run first; the churn and faultload cells
	// mutate the composition, so they close the shared-cluster matrix.
	cases := []benchCase{
		{"get-overlay", 3, with(func(c *driver.Config) { c.GetFraction = 1 })},
		{"get-direct", 3, with(func(c *driver.Config) { c.GetFraction = 1; c.Route = p2p.RouteDirect })},
		{"put-overlay", 3, with(func(c *driver.Config) { c.PutFraction = 1 })},
		{"put-direct", 3, with(func(c *driver.Config) { c.PutFraction = 1; c.Route = p2p.RouteDirect })},
		{"bulkput-64", 1, with(func(c *driver.Config) { c.PutFraction = 1; c.BulkSize = 64 })},
		{"range-serial", 1, with(func(c *driver.Config) {
			c.RangeFraction = 1
			c.RangeSelectivity = 0.05
			c.SerialRange = true
			c.Ops = max(1, o.ops/10) // serial chains are ~linear in covered peers
		})},
		{"range-parallel", 1, with(func(c *driver.Config) {
			c.RangeFraction = 1
			c.RangeSelectivity = 0.05
			c.Ops = max(1, o.ops/10)
		})},
		{"mixed-direct-churn", 1, with(func(c *driver.Config) {
			c.GetFraction, c.PutFraction, c.RangeFraction = 0.7, 0.2, 0.1
			c.Route = p2p.RouteDirect
			c.JoinPeers, c.DepartPeers = churn, churn
		})},
		{"mixed-direct-faultload", 1, with(func(c *driver.Config) {
			c.GetFraction, c.PutFraction, c.RangeFraction = 0.7, 0.2, 0.1
			c.Route = p2p.RouteDirect
			c.KillPeers, c.RecoverPeers = churn, churn
		})},
	}
	if o.traceSample > 0 {
		// The traced twin of the get-direct gate cell, inserted right after
		// it (before the matrix mutates the composition) so the sampling
		// overhead comparison runs on the same quiesced cluster. Its
		// throughput is gated against the untraced row below.
		traced := benchCase{"get-direct-traced", 3, with(func(c *driver.Config) {
			c.GetFraction = 1
			c.Route = p2p.RouteDirect
			c.TraceSample = o.traceSample
		})}
		cases = append(cases[:2], append([]benchCase{traced}, cases[2:]...)...)
	}

	// Warm both routing paths (scheduler, allocator, reply-channel pool) so
	// the first measured cell does not absorb the cold-start cost.
	driver.Run(cluster, with(func(c *driver.Config) { c.GetFraction = 1; c.Ops = 500 }))
	driver.Run(cluster, with(func(c *driver.Config) { c.GetFraction = 1; c.Ops = 500; c.Route = p2p.RouteDirect }))

	report := benchReport{
		Peers:      o.peers,
		Items:      o.items,
		Clients:    o.clients,
		OpsPerCase: o.ops,
		Seed:       o.seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	fmt.Printf("%-24s %-8s %12s %10s %10s %10s %12s %10s\n",
		"case", "route", "ops/sec", "p50 µs", "p99 µs", "msgs/op", "allocs/op", "imbalance")
	byName := map[string]benchResult{}
	var mem runtime.MemStats
	measure := func(c *p2p.Cluster, cfg driver.Config) benchResult {
		staleBefore := c.StaleRoutes()
		msgsBefore := c.Messages()
		runtime.GC()
		runtime.ReadMemStats(&mem)
		mallocsBefore := mem.Mallocs
		rep := driver.Run(c, cfg)
		runtime.ReadMemStats(&mem)
		msgs := c.Messages() - msgsBefore
		res := benchResult{
			Route:          cfg.Route.String(),
			Ops:            rep.Ops,
			Errors:         rep.Errors,
			OpsPerSec:      rep.OpsPerSec,
			P50us:          rep.Latency[driver.OpAll].Percentile(0.50),
			P99us:          rep.Latency[driver.OpAll].Percentile(0.99),
			HopsP50:        rep.HopsP50,
			HopsP99:        rep.HopsP99,
			QueueWaitP99us: rep.QueueWaitP99us,
			StaleRoutes:    c.StaleRoutes() - staleBefore,
			PlanSerial:     rep.PlanSerial,
			PlanParallel:   rep.PlanParallel,
			PlanCacheHits:  rep.PlanCacheHits,
		}
		if rep.Ops > 0 {
			// Whole-process deltas: peer-side message handling and replication
			// are part of an operation's true cost, so they belong in the
			// per-op numbers the baseline tracks.
			res.MsgsPerOp = float64(msgs) / float64(rep.Ops)
			res.AllocsPerOp = float64(mem.Mallocs-mallocsBefore) / float64(rep.Ops)
		}
		return res
	}
	record := func(res benchResult) {
		if res.Transport == "" {
			res.Transport = matrixTransport
		}
		report.Results = append(report.Results, res)
		byName[res.Name] = res
		imb := "-"
		if res.Imbalance > 0 {
			imb = fmt.Sprintf("%.2f", res.Imbalance)
		}
		fmt.Printf("%-24s %-8s %12.0f %10.0f %10.0f %10.2f %12.1f %10s\n",
			res.Name, res.Route, res.OpsPerSec, res.P50us, res.P99us, res.MsgsPerOp, res.AllocsPerOp, imb)
	}
	for _, bc := range cases {
		var best benchResult
		for rep := 0; rep < max(bc.reps, 1); rep++ {
			res := measure(cluster, bc.cfg)
			if rep == 0 || res.OpsPerSec > best.OpsPerSec {
				best = res
			}
		}
		best.Name = bc.name
		best.Fanout = matrixFanout
		record(best)
	}

	// The loopback-TCP column: the serialization-sensitive cells (direct
	// singletons, batched puts, both range plans) re-run on a fresh
	// loopback wire pair, so the baseline tracks the codec and wire cost
	// next to the in-process rows. Skipped when the whole matrix already
	// ran over tcp.
	if matrixTransport == "local" {
		runTCPColumn(o, measure, record)
	}

	// The skew cells: a Zipf(1.0) data set and key stream, balancer off vs
	// on, each on its own freshly built cluster so the imbalance ratios are
	// directly comparable (the shared matrix cluster has uniform data, and
	// the balancer cannot be un-started once on). Best-of-3 like the gate
	// cells — the off-vs-on throughput comparison is the row's point, and a
	// single sub-second run is noisier than the effect it measures.
	for _, skew := range []struct {
		name        string
		autobalance bool
	}{{"zipf1.0-nobalance", false}, {"zipf1.0-autobalance", true}} {
		var best benchResult
		for rep := 0; rep < 3; rep++ {
			sc, skeys, scStop, err := buildScenarioCluster(matrixTransport, "", o.peers, o.items, o.seed+7, workload.Zipf, 1.0, o.fanout)
			if err != nil {
				fatal(err)
			}
			cfg := driver.Config{
				Clients:      o.clients,
				Ops:          o.ops,
				Keys:         skeys,
				Seed:         o.seed,
				GetFraction:  0.7,
				PutFraction:  0.3,
				Route:        p2p.RouteDirect,
				Distribution: workload.Zipf,
				ZipfTheta:    1.0,
				AutoBalance:  skew.autobalance,
			}
			res := measure(sc, cfg)
			if skew.autobalance {
				// Quiesce the balancer so the recorded ratio is its converged
				// result, not a race against the last ticker fire.
				if _, err := sc.BalanceUntilStable(p2p.AutoBalanceConfig{}, 8*o.peers); err != nil {
					fatal(err)
				}
			}
			imb, err := sc.ImbalanceRatio()
			if err != nil {
				fatal(err)
			}
			res.Imbalance = imb
			res.Rebalanced = sc.BalanceEvents()
			scStop()
			if rep == 0 || res.OpsPerSec > best.OpsPerSec {
				best = res
			}
		}
		best.Name = skew.name
		best.Fanout = matrixFanout
		record(best)
	}

	// The sweep's gate is deferred until after the JSON write below, so a
	// red sweep still leaves the rows behind for triage.
	planGate := runPlanSweep(o, measure, record)

	if o.compareOverlays {
		runOverlayComparison(o, measure, record)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("baseline written to %s\n", o.out)
	writeObsDump(cluster, o.metricsOut)

	planGate()

	if o.traceSample > 0 {
		// Sampling must be close to free: gate the traced direct-get row at
		// the same noise margin the speedup gate uses (≥95% of untraced
		// throughput, i.e. <5% overhead, best of 3 each).
		traced, untraced := byName["get-direct-traced"], byName["get-direct"]
		if untraced.OpsPerSec <= 0 {
			fatal(fmt.Errorf("trace-overhead gate: get-direct measured no throughput"))
		}
		ratio := traced.OpsPerSec / untraced.OpsPerSec
		fmt.Printf("trace sampling overhead (1-in-%d): get-direct-traced at %.2fx of get-direct (best of 3)\n", o.traceSample, ratio)
		if ratio < gateMargin {
			fatal(fmt.Errorf("trace-overhead gate FAILED: 1-in-%d sampling cut direct-get throughput to %.2fx, required ≥ %.2fx",
				o.traceSample, ratio, gateMargin))
		}
		fmt.Printf("trace-overhead gate passed (required ≥ %.2fx)\n", gateMargin)
	}

	if o.requireSpeedup > 0 {
		for _, pair := range [][2]string{{"get-direct", "get-overlay"}, {"put-direct", "put-overlay"}} {
			direct, overlay := byName[pair[0]], byName[pair[1]]
			if overlay.OpsPerSec <= 0 {
				fatal(fmt.Errorf("bench gate: %s measured no throughput", pair[1]))
			}
			speedup := direct.OpsPerSec / overlay.OpsPerSec
			fmt.Printf("speedup %s vs %s: %.2fx (best of 3)\n", pair[0], pair[1], speedup)
			if speedup < o.requireSpeedup*gateMargin {
				fatal(fmt.Errorf("bench gate FAILED: %s is %.2fx of %s, required ≥ %.2fx (×%.2f noise margin)",
					pair[0], speedup, pair[1], o.requireSpeedup, gateMargin))
			}
		}
		fmt.Printf("bench gate passed (required ≥ %.2fx with ×%.2f margin, best of 3)\n", o.requireSpeedup, gateMargin)
	}
}

// runPlanSweep is the range-plan selectivity sweep of the bench matrix: a
// range-only workload at three selectivities — narrow (≈1 peer per range),
// mid (≈25% of the peers) and wide (the whole domain) — each answered by
// the serial chain walk, the parallel scatter and the adaptive planner, on
// a fresh quiesced cluster (the shared matrix cluster has churned by the
// time the sweep runs). The sweep is the adaptive layer's contract, and it
// gates itself: in every cell adaptive must reach at least gateMargin of
// the better fixed plan's throughput — a planner that guesses wrong
// anywhere shows up as a big per-cell loss — and it must strictly beat
// each fixed plan somewhere (serial on wide ranges, parallel on narrow
// ones), or the layer is overhead with no payoff. The measurements run
// now; the returned closure evaluates the gate, deferred by the caller
// until after the baseline JSON is on disk so a red sweep still leaves
// its rows behind.
func runPlanSweep(o benchOptions, measure func(*p2p.Cluster, driver.Config) benchResult, record func(benchResult)) func() {
	fmt.Printf("--- range-plan selectivity sweep (serial vs parallel vs adaptive, %d peers) ---\n", o.peers)
	c, keys, err := driver.BuildClusterFanout(o.peers, o.items, o.seed+23, o.fanout)
	if err != nil {
		fatal(err)
	}
	defer c.Stop()
	cells := []struct {
		name string
		sel  float64
	}{
		{"narrow", 1.0 / float64(max(1, o.peers))},
		{"mid", 0.25},
		{"wide", 1.0},
	}
	plans := []string{driver.PlanSerial, driver.PlanParallel, driver.PlanAdaptive}
	type cellKey struct{ cell, plan string }
	results := map[cellKey]benchResult{}
	opsPerCell := max(1, o.ops/10) // ranges cost ~peer-span messages each
	for _, cell := range cells {
		base := driver.Config{
			Clients:          o.clients,
			Ops:              opsPerCell,
			Keys:             keys,
			Seed:             o.seed,
			RangeFraction:    1,
			RangeSelectivity: cell.sel,
		}
		// Warm the adaptive planner's span bucket before measuring: the
		// warm-up walks the bucket through both trial bursts and into the
		// committed stretch, so the measured adaptive cell runs converged,
		// the steady state the sweep is about.
		warm := base
		warm.Plan = driver.PlanAdaptive
		warm.Ops = 400
		driver.Run(c, warm)
		for _, plan := range plans {
			cfg := base
			cfg.Plan = plan
			var best benchResult
			for rep := 0; rep < 3; rep++ {
				res := measure(c, cfg)
				if rep == 0 || res.OpsPerSec > best.OpsPerSec {
					best = res
				}
			}
			best.Name = fmt.Sprintf("sweep-%s-%s", cell.name, plan)
			best.Fanout = max(2, o.fanout)
			record(best)
			results[cellKey{cell.name, plan}] = best
		}
	}

	return func() {
		beatsSerial, beatsParallel := false, false
		for _, cell := range cells {
			ser := results[cellKey{cell.name, driver.PlanSerial}]
			par := results[cellKey{cell.name, driver.PlanParallel}]
			ada := results[cellKey{cell.name, driver.PlanAdaptive}]
			betterFixed := max(ser.OpsPerSec, par.OpsPerSec)
			if betterFixed <= 0 {
				fatal(fmt.Errorf("plan-sweep gate: %s cell measured no throughput", cell.name))
			}
			ratio := ada.OpsPerSec / betterFixed
			fmt.Printf("sweep %s: adaptive at %.2fx of the better fixed plan (serial %.0f, parallel %.0f, adaptive %.0f ops/sec)\n",
				cell.name, ratio, ser.OpsPerSec, par.OpsPerSec, ada.OpsPerSec)
			if ratio < gateMargin {
				fatal(fmt.Errorf("plan-sweep gate FAILED: adaptive is %.2fx of the better fixed plan in the %s cell, required ≥ %.2fx",
					ratio, cell.name, gateMargin))
			}
			if ada.OpsPerSec > ser.OpsPerSec {
				beatsSerial = true
			}
			// Against parallel the win shows either as throughput or as tail
			// latency (narrow ranges served serially skip the scatter's
			// fan-out tail).
			if ada.OpsPerSec > par.OpsPerSec || (ada.P99us > 0 && par.P99us > 0 && ada.P99us < par.P99us) {
				beatsParallel = true
			}
		}
		if !beatsSerial || !beatsParallel {
			fatal(fmt.Errorf("plan-sweep gate FAILED: adaptive strictly beat serial in some cell: %v, parallel in some cell: %v (want both)",
				beatsSerial, beatsParallel))
		}
		fmt.Printf("plan-sweep gate passed: adaptive ≥ %.2fx of the better fixed plan in every cell and strictly better in at least one\n", gateMargin)
	}
}

// runOverlayComparison is the -compareoverlays half of the bench matrix: the
// same overlay-routed get workload over freshly built clusters at fanout 2
// (binary BATON), 4 and 8 (BATON*), plus a Chord ring of the same size
// answering the same number of exact-match lookups. The rows make the
// paper-level claim measurable in one file: overlay hops fall from log2 N
// towards log_m N as the fanout grows, and Chord's ring hops bracket the
// binary tree from the other side. The section gates itself: m=8 must beat
// binary on hops_p50, or the whole point of BATON* has regressed.
func runOverlayComparison(o benchOptions, measure func(*p2p.Cluster, driver.Config) benchResult, record func(benchResult)) {
	fmt.Printf("--- three-way overlay comparison (binary vs BATON* vs Chord, %d peers) ---\n", o.peers)
	hopsP50 := map[int]float64{}
	for _, m := range []int{2, 4, 8} {
		c, keys, err := driver.BuildClusterFanout(o.peers, o.items, o.seed+13, m)
		if err != nil {
			fatal(err)
		}
		cfg := driver.Config{
			Clients:     o.clients,
			Ops:         o.ops,
			Keys:        keys,
			Seed:        o.seed,
			GetFraction: 1,
		}
		// Warm the fresh cluster so the row measures routing, not cold-start.
		warm := cfg
		warm.Ops = 500
		driver.Run(c, warm)
		var best benchResult
		for rep := 0; rep < 3; rep++ {
			res := measure(c, cfg)
			if rep == 0 || res.OpsPerSec > best.OpsPerSec {
				best = res
			}
		}
		c.Stop()
		best.Name = fmt.Sprintf("overlay-get-m%d", m)
		best.Fanout = m
		hopsP50[m] = best.HopsP50
		record(best)
	}

	// The Chord cell: a message-counting simulator, not a live cluster, so
	// only the hop and message columns are comparable; latency and ops/sec
	// reflect simulator speed and are left at their measured values.
	ring := chord.NewRing(chord.Config{Seed: o.seed + 13})
	for ring.Size() < o.peers {
		if _, _, err := ring.Join(ring.RandomNode()); err != nil {
			fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(o.seed + 17))
	gen := workload.NewGenerator(workload.Config{Seed: o.seed + 13})
	keys := make([]keyspace.Key, o.items)
	for i := range keys {
		keys[i] = gen.NextKey()
		if _, err := ring.Insert(ring.RandomNode(), keys[i]); err != nil {
			fatal(err)
		}
	}
	hops := &stats.Latency{}
	var msgs int64
	for i := 0; i < o.ops; i++ {
		_, cost, err := ring.Lookup(ring.RandomNode(), keys[rng.Intn(len(keys))])
		if err != nil {
			fatal(err)
		}
		hops.Add(float64(cost.Messages))
		msgs += int64(cost.Messages)
	}
	res := benchResult{
		Name:      "chord-get",
		Route:     "chord",
		Ops:       int64(o.ops),
		MsgsPerOp: float64(msgs) / float64(o.ops),
		HopsP50:   hops.Percentile(0.50),
		HopsP99:   hops.Percentile(0.99),
	}
	record(res)

	fmt.Printf("overlay hops p50: binary %.0f, m=4 %.0f, m=8 %.0f, chord %.0f\n",
		hopsP50[2], hopsP50[4], hopsP50[8], res.HopsP50)
	if hopsP50[8] >= hopsP50[2] {
		fatal(fmt.Errorf("overlay comparison gate FAILED: BATON* m=8 hops_p50 %.1f not below binary %.1f",
			hopsP50[8], hopsP50[2]))
	}
	fmt.Println("overlay comparison gate passed: m=8 routes in strictly fewer hops than binary")
}

// runTCPColumn re-measures the serialization-sensitive matrix cells over a
// fresh loopback-TCP pair (coordinator + in-process daemon half): direct
// gets and puts, batched bulk puts and both range plans. The rows land in
// the baseline with transport "tcp" and a "-tcp" name suffix, so diffs
// track codec and wire cost cell by cell against the local rows. No gates:
// the wire column is a trajectory, not a floor — loopback throughput is at
// the mercy of the kernel's socket paths in a way the in-process rows are
// not.
func runTCPColumn(o benchOptions, measure func(*p2p.Cluster, driver.Config) benchResult, record func(benchResult)) {
	c, keys, stop, err := buildScenarioCluster("tcp", "", o.peers, o.items, o.seed+31, workload.Uniform, 0, o.fanout)
	if err != nil {
		fatal(err)
	}
	defer stop()
	base := driver.Config{
		Clients: o.clients,
		Ops:     o.ops,
		Keys:    keys,
		Seed:    o.seed,
	}
	with := func(mut func(*driver.Config)) driver.Config {
		cfg := base
		mut(&cfg)
		return cfg
	}
	// Warm the wire path (connection setup, route cache) like the local
	// matrix warms the schedulers.
	driver.Run(c, with(func(cfg *driver.Config) { cfg.GetFraction = 1; cfg.Ops = 500; cfg.Route = p2p.RouteDirect }))
	cells := []benchCase{
		{"get-direct-tcp", 3, with(func(cfg *driver.Config) { cfg.GetFraction = 1; cfg.Route = p2p.RouteDirect })},
		{"put-direct-tcp", 3, with(func(cfg *driver.Config) { cfg.PutFraction = 1; cfg.Route = p2p.RouteDirect })},
		{"bulkput-64-tcp", 1, with(func(cfg *driver.Config) { cfg.PutFraction = 1; cfg.BulkSize = 64 })},
		{"range-serial-tcp", 1, with(func(cfg *driver.Config) {
			cfg.RangeFraction = 1
			cfg.RangeSelectivity = 0.05
			cfg.SerialRange = true
			cfg.Ops = max(1, o.ops/10)
		})},
		{"range-parallel-tcp", 1, with(func(cfg *driver.Config) {
			cfg.RangeFraction = 1
			cfg.RangeSelectivity = 0.05
			cfg.Ops = max(1, o.ops/10)
		})},
	}
	for _, bc := range cells {
		var best benchResult
		for rep := 0; rep < max(bc.reps, 1); rep++ {
			res := measure(c, bc.cfg)
			if rep == 0 || res.OpsPerSec > best.OpsPerSec {
				best = res
			}
		}
		best.Name = bc.name
		best.Fanout = max(2, o.fanout)
		best.Transport = "tcp"
		record(best)
	}
}
