package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"baton/internal/p2p"
	"baton/internal/workload/driver"
)

type benchOptions struct {
	peers, items, clients, ops int
	seed                       int64
	out                        string
	requireSpeedup             float64
}

// benchCase is one cell of the fixed benchmark matrix.
type benchCase struct {
	name string
	cfg  driver.Config
}

// benchResult is one row of the tracked baseline file.
type benchResult struct {
	Name        string  `json:"name"`
	Route       string  `json:"route"`
	Ops         int64   `json:"ops"`
	Errors      int64   `json:"errors"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	MsgsPerOp   float64 `json:"msgs_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	StaleRoutes int64   `json:"stale_routes,omitempty"`
}

// benchReport is the schema of BENCH_p2p.json: the run parameters plus one
// result row per matrix cell, so successive PRs diff against a fixed shape.
type benchReport struct {
	Peers      int           `json:"peers"`
	Items      int           `json:"items"`
	Clients    int           `json:"clients"`
	OpsPerCase int           `json:"ops_per_case"`
	Seed       int64         `json:"seed"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Results    []benchResult `json:"results"`
}

// runBench is the batonsim bench mode: it runs a fixed performance matrix —
// overlay-routed vs direct-routed singleton gets and puts, batched bulk
// puts, serial vs parallel ranges, and the mixed workload under membership
// churn and under crash/repair faults — against one live cluster and writes
// the results to the tracked baseline file (BENCH_p2p.json), so every
// future change has a trajectory to beat. With -requirespeedup X the mode
// exits non-zero unless direct-mode singleton throughput beats overlay-mode
// by at least that factor, which is what the CI bench-smoke step gates on.
func runBench(o benchOptions) {
	if o.clients <= 0 {
		o.clients = 8
	}
	fmt.Printf("building live cluster: %d peers, %d items ...\n", o.peers, o.items)
	cluster, keys, err := driver.BuildCluster(o.peers, o.items, o.seed)
	if err != nil {
		fatal(err)
	}
	defer cluster.Stop()

	base := driver.Config{
		Clients: o.clients,
		Ops:     o.ops,
		Keys:    keys,
		Seed:    o.seed,
	}
	with := func(mut func(*driver.Config)) driver.Config {
		cfg := base
		mut(&cfg)
		return cfg
	}
	churn := max(1, o.peers/8)
	// The quiesced comparisons run first; the churn and faultload cells
	// mutate the composition, so they close the matrix.
	cases := []benchCase{
		{"get-overlay", with(func(c *driver.Config) { c.GetFraction = 1 })},
		{"get-direct", with(func(c *driver.Config) { c.GetFraction = 1; c.Route = p2p.RouteDirect })},
		{"put-overlay", with(func(c *driver.Config) { c.PutFraction = 1 })},
		{"put-direct", with(func(c *driver.Config) { c.PutFraction = 1; c.Route = p2p.RouteDirect })},
		{"bulkput-64", with(func(c *driver.Config) { c.PutFraction = 1; c.BulkSize = 64 })},
		{"range-serial", with(func(c *driver.Config) {
			c.RangeFraction = 1
			c.RangeSelectivity = 0.05
			c.SerialRange = true
			c.Ops = max(1, o.ops/10) // serial chains are ~linear in covered peers
		})},
		{"range-parallel", with(func(c *driver.Config) {
			c.RangeFraction = 1
			c.RangeSelectivity = 0.05
			c.Ops = max(1, o.ops/10)
		})},
		{"mixed-direct-churn", with(func(c *driver.Config) {
			c.GetFraction, c.PutFraction, c.RangeFraction = 0.7, 0.2, 0.1
			c.Route = p2p.RouteDirect
			c.JoinPeers, c.DepartPeers = churn, churn
		})},
		{"mixed-direct-faultload", with(func(c *driver.Config) {
			c.GetFraction, c.PutFraction, c.RangeFraction = 0.7, 0.2, 0.1
			c.Route = p2p.RouteDirect
			c.KillPeers, c.RecoverPeers = churn, churn
		})},
	}

	// Warm both routing paths (scheduler, allocator, reply-channel pool) so
	// the first measured cell does not absorb the cold-start cost.
	driver.Run(cluster, with(func(c *driver.Config) { c.GetFraction = 1; c.Ops = 500 }))
	driver.Run(cluster, with(func(c *driver.Config) { c.GetFraction = 1; c.Ops = 500; c.Route = p2p.RouteDirect }))

	report := benchReport{
		Peers:      o.peers,
		Items:      o.items,
		Clients:    o.clients,
		OpsPerCase: o.ops,
		Seed:       o.seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	fmt.Printf("%-24s %-8s %12s %10s %10s %10s %12s\n",
		"case", "route", "ops/sec", "p50 µs", "p99 µs", "msgs/op", "allocs/op")
	byName := map[string]benchResult{}
	var mem runtime.MemStats
	for _, bc := range cases {
		staleBefore := cluster.StaleRoutes()
		msgsBefore := cluster.Messages()
		runtime.GC()
		runtime.ReadMemStats(&mem)
		mallocsBefore := mem.Mallocs
		rep := driver.Run(cluster, bc.cfg)
		runtime.ReadMemStats(&mem)
		msgs := cluster.Messages() - msgsBefore
		res := benchResult{
			Name:        bc.name,
			Route:       bc.cfg.Route.String(),
			Ops:         rep.Ops,
			Errors:      rep.Errors,
			OpsPerSec:   rep.OpsPerSec,
			P50us:       rep.Latency[driver.OpAll].Percentile(0.50),
			P99us:       rep.Latency[driver.OpAll].Percentile(0.99),
			StaleRoutes: cluster.StaleRoutes() - staleBefore,
		}
		if rep.Ops > 0 {
			// Whole-process deltas: peer-side message handling and replication
			// are part of an operation's true cost, so they belong in the
			// per-op numbers the baseline tracks.
			res.MsgsPerOp = float64(msgs) / float64(rep.Ops)
			res.AllocsPerOp = float64(mem.Mallocs-mallocsBefore) / float64(rep.Ops)
		}
		report.Results = append(report.Results, res)
		byName[bc.name] = res
		fmt.Printf("%-24s %-8s %12.0f %10.0f %10.0f %10.2f %12.1f\n",
			res.Name, res.Route, res.OpsPerSec, res.P50us, res.P99us, res.MsgsPerOp, res.AllocsPerOp)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("baseline written to %s\n", o.out)

	if o.requireSpeedup > 0 {
		for _, pair := range [][2]string{{"get-direct", "get-overlay"}, {"put-direct", "put-overlay"}} {
			direct, overlay := byName[pair[0]], byName[pair[1]]
			if overlay.OpsPerSec <= 0 {
				fatal(fmt.Errorf("bench gate: %s measured no throughput", pair[1]))
			}
			speedup := direct.OpsPerSec / overlay.OpsPerSec
			fmt.Printf("speedup %s vs %s: %.2fx\n", pair[0], pair[1], speedup)
			if speedup < o.requireSpeedup {
				fatal(fmt.Errorf("bench gate FAILED: %s is %.2fx of %s, required ≥ %.2fx",
					pair[0], speedup, pair[1], o.requireSpeedup))
			}
		}
		fmt.Printf("bench gate passed (required ≥ %.2fx)\n", o.requireSpeedup)
	}
}
