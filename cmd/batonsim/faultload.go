package main

import (
	"errors"
	"fmt"

	"baton/internal/core"
	"baton/internal/p2p"
	"baton/internal/workload"
	"baton/internal/workload/driver"
)

type faultloadOptions struct {
	peers, items, clients, ops           int
	getFrac, putFrac, delFrac, rangeFrac float64
	selectivity                          float64
	kill, recovers                       int
	route                                p2p.RouteMode
	seed                                 int64
	fanout                               int
	traceSample                          int
	metricsOut                           string
	transport, listen                    string
}

// runFaultLoad is the batonsim faultload mode: the closed-loop workload
// runs while peers crash abruptly and are repaired (structural crash-leave
// plus replica data restoration), so ErrOwnerDown windows open and close
// mid-traffic. The run ends by repairing any peer still down, then auditing
// the quiesced cluster twice: the structural invariant suite and the
// replication invariant (every peer's items exactly mirrored at its
// holder).
func runFaultLoad(o faultloadOptions) {
	fmt.Printf("building live cluster: %d peers, %d items, fanout %d, transport %s ...\n", o.peers, o.items, max(2, o.fanout), o.transport)
	cluster, keys, stop, err := buildScenarioCluster(o.transport, o.listen, o.peers, o.items, o.seed, workload.Uniform, 0, o.fanout)
	if err != nil {
		fatal(err)
	}
	defer stop()
	startSize := cluster.Size()

	rep := driver.Run(cluster, driver.Config{
		Clients:          o.clients,
		Ops:              o.ops,
		GetFraction:      o.getFrac,
		PutFraction:      o.putFrac,
		DeleteFraction:   o.delFrac,
		RangeFraction:    o.rangeFrac,
		RangeSelectivity: o.selectivity,
		Route:            o.route,
		Keys:             keys,
		KillPeers:        o.kill,
		RecoverPeers:     o.recovers,
		TraceSample:      o.traceSample,
		Seed:             o.seed,
	})
	fmt.Printf("faultload run (kills %d, recovers %d requested, route %s)\n", o.kill, o.recovers, o.route)
	fmt.Print(rep.String())
	fmt.Printf("cluster size: %d -> %d\n", startSize, cluster.Size())
	fmt.Printf("peer-to-peer messages delivered: %d\n", cluster.Messages())

	// Repair whatever the scheduler left dead, so the audits below run on a
	// fully healthy cluster — and so the mode itself proves ErrOwnerDown is
	// always transient.
	repaired := 0
	for _, id := range cluster.PeerIDs() {
		if cluster.Alive(id) {
			continue
		}
		if _, err := cluster.Recover(id); err != nil && !errors.Is(err, p2p.ErrReplicaLost) {
			fatal(fmt.Errorf("final repair of peer %d: %w", id, err))
		}
		repaired++
	}
	if repaired > 0 {
		fmt.Printf("final sweep repaired %d still-dead peer(s)\n", repaired)
	}

	snaps, err := cluster.Snapshot()
	if err != nil {
		fatal(err)
	}
	if err := core.VerifySnapshot(cluster.Domain(), snaps); err != nil {
		fatal(fmt.Errorf("post-faultload structural invariants FAILED: %w", err))
	}
	if err := cluster.SyncReplicas(); err != nil {
		fatal(err)
	}
	replicas, err := cluster.Replicas()
	if err != nil {
		fatal(err)
	}
	if err := core.VerifyReplication(snaps, replicas); err != nil {
		fatal(fmt.Errorf("post-faultload replication invariants FAILED: %w", err))
	}
	items := 0
	for _, ps := range snaps {
		items += len(ps.Items)
	}
	fmt.Printf("post-quiesce audit: %d peers, %d items, structural + replication invariants OK\n", len(snaps), items)
	writeObsDump(cluster, o.metricsOut)
}
