// Command batonsim reproduces the evaluation of the BATON paper. It runs the
// experiment behind each panel of Figure 8 and prints the resulting series
// as aligned text tables (one row per x value, one column per plotted line).
//
// Usage:
//
//	batonsim                  # run every figure at the quick (seconds) scale
//	batonsim -figure 8d       # run a single figure
//	batonsim -full            # paper-scale parameters (1,000–10,000 peers)
//	batonsim -sizes 500,1000  # custom network sizes
//	batonsim -list            # list the reproducible figures
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"baton/internal/experiments"
)

func main() {
	var (
		figure  = flag.String("figure", "", "figure to reproduce (8a..8i); empty means all")
		full    = flag.Bool("full", false, "use the paper-scale parameters (slow: tens of minutes)")
		list    = flag.Bool("list", false, "list reproducible figures and exit")
		sizes   = flag.String("sizes", "", "comma-separated network sizes overriding the defaults")
		queries = flag.Int("queries", 0, "queries per measurement (0 = default)")
		data    = flag.Int("data", 0, "data items per peer (0 = default)")
		runs    = flag.Int("runs", 0, "independent repetitions to average (0 = default)")
		seed    = flag.Int64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "print the notes recorded for each figure")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.Figures() {
			fmt.Println(id)
		}
		return
	}

	opt := experiments.Quick()
	if *full {
		opt = experiments.Default()
	}
	if *sizes != "" {
		parsed, err := parseSizes(*sizes)
		if err != nil {
			fatal(err)
		}
		opt.Sizes = parsed
	}
	if *queries > 0 {
		opt.Queries = *queries
	}
	if *data > 0 {
		opt.DataPerNode = *data
	}
	if *runs > 0 {
		opt.Runs = *runs
	}
	opt.Seed = *seed

	ids := experiments.Figures()
	if *figure != "" {
		ids = []string{strings.TrimPrefix(strings.ToLower(*figure), "figure ")}
	}
	for _, id := range ids {
		result, err := experiments.Run(id, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Figure %s — %s\n", result.ID, result.Title)
		fmt.Println(strings.Repeat("-", 72))
		fmt.Print(result.Table())
		if *verbose {
			for _, note := range result.Notes {
				fmt.Printf("note: %s\n", note)
			}
		}
		fmt.Println()
	}
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("invalid network size %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "batonsim:", err)
	os.Exit(1)
}
