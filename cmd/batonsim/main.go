// Command batonsim reproduces the evaluation of the BATON paper and drives
// the live cluster. In the default figures mode it runs the experiment
// behind each panel of Figure 8 and prints the resulting series as aligned
// text tables (one row per x value, one column per plotted line). The
// throughput mode runs the closed-loop concurrent workload driver against a
// live goroutine-per-peer cluster and reports ops/sec plus latency
// percentiles; the churnload and faultload modes run the same workload
// under membership churn and under crash-and-repair faults respectively,
// ending with invariant audits; the skewload mode drives a Zipf-skewed
// data set and key stream at the cluster, optionally with the background
// load balancer shedding the skew (-autobalance), and reports the
// max/average load-imbalance ratio (-compare gates balancer-on against
// balancer-off); the rangecmp mode benchmarks the parallel range fan-out
// against the sequential adjacent-chain walk; the bench mode runs the
// fixed performance matrix (overlay vs direct routing, bulk, serial vs
// parallel range, throughput under churn, faults and skew) and writes the
// tracked baseline BENCH_p2p.json.
//
// Usage:
//
//	batonsim                  # run every figure at the quick (seconds) scale
//	batonsim -figure 8d       # run a single figure
//	batonsim -full            # paper-scale parameters (1,000–10,000 peers)
//	batonsim -sizes 500,1000  # custom network sizes
//	batonsim -list            # list the reproducible figures
//	batonsim -mode throughput -peers 256 -clients 32 -ops 50000 -kill 10 -route direct
//	batonsim -mode churnload -peers 128 -joins 32 -departs 32 -ops 50000
//	batonsim -mode faultload -peers 128 -kill 16 -recover 16 -ops 50000
//	batonsim -mode skewload -peers 64 -theta 1.0 -autobalance -compare
//	batonsim -mode rangecmp -peers 256 -selectivity 0.15
//	batonsim -mode rangecmp -peers 64 -plan adaptive -rangedist bimodal
//	batonsim -mode bench -peers 64 -requirespeedup 1.0
//	batonsim -mode throughput -peers 64 -fanout 4        # BATON* overlay, m-ary tree
//	batonsim -mode bench -peers 64 -compareoverlays      # binary vs BATON* m=4/8 vs Chord
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"baton/internal/core"
	"baton/internal/experiments"
	"baton/internal/keyspace"
	"baton/internal/p2p"
	"baton/internal/workload"
	"baton/internal/workload/driver"
)

// buildScenarioCluster builds a scenario's live cluster over the selected
// transport: in-process channels ("local") or a loopback-TCP pair ("tcp",
// coordinator plus a daemon half hosting half the peers, so every
// cross-half message crosses the wire). The returned stop function
// replaces Cluster.Stop — over tcp it tears down the daemon half too.
func buildScenarioCluster(transport, listen string, peers, items int, seed int64, dist workload.Distribution, theta float64, fanout int) (*p2p.Cluster, []keyspace.Key, func(), error) {
	if transport == "tcp" {
		c, stop, keys, err := driver.BuildClusterTCPDistFanout(peers, items, seed, dist, theta, fanout, listen)
		return c, keys, stop, err
	}
	c, keys, err := driver.BuildClusterDistFanout(peers, items, seed, dist, theta, fanout)
	if err != nil {
		return nil, nil, nil, err
	}
	return c, keys, c.Stop, nil
}

func main() {
	var (
		mode    = flag.String("mode", "figures", "figures, throughput, churnload, faultload, skewload, rangecmp or bench")
		figure  = flag.String("figure", "", "figure to reproduce (8a..8i); empty means all")
		full    = flag.Bool("full", false, "use the paper-scale parameters (slow: tens of minutes)")
		list    = flag.Bool("list", false, "list reproducible figures and exit")
		sizes   = flag.String("sizes", "", "comma-separated network sizes overriding the defaults")
		queries = flag.Int("queries", 0, "queries per measurement (0 = default)")
		data    = flag.Int("data", 0, "data items per peer (0 = default)")
		runs    = flag.Int("runs", 0, "independent repetitions to average (0 = default)")
		seed    = flag.Int64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "print the notes recorded for each figure")

		// Live-cluster flags (throughput and rangecmp modes).
		peers       = flag.Int("peers", 256, "live cluster size")
		items       = flag.Int("items", 20_000, "items pre-loaded into the cluster")
		clients     = flag.Int("clients", 32, "concurrent client goroutines")
		ops         = flag.Int("ops", 20_000, "total operations across all clients")
		getFrac     = flag.Float64("get", 0.7, "fraction of get operations")
		putFrac     = flag.Float64("put", 0.2, "fraction of put operations")
		delFrac     = flag.Float64("del", 0, "fraction of delete operations")
		rangeFrac   = flag.Float64("range", 0.1, "fraction of range operations")
		selectivity = flag.Float64("selectivity", 0.01, "range query selectivity (fraction of the domain)")
		fanout      = flag.Int("fanout", 2, "overlay tree fanout m (2 = binary BATON, >2 = BATON*)")
		kill        = flag.Int("kill", 0, "peers to kill while the workload runs")
		joins       = flag.Int("joins", 0, "peers that join online while the workload runs (churnload mode)")
		departs     = flag.Int("departs", 0, "peers that depart gracefully while the workload runs (churnload mode)")
		recovers    = flag.Int("recover", -1, "crash repairs to run while the workload runs (faultload mode; -1 means match -kill)")
		serialRange = flag.Bool("serialrange", false, "use the sequential chain walk for range queries")
		plan        = flag.String("plan", "", "range execution plan: serial, parallel or adaptive (rangecmp default: compare all three)")
		rangeDist   = flag.String("rangedist", "", "range width distribution around -selectivity: fixed, uniform or bimodal")
		bulkSize    = flag.Int("bulk", 0, "batch puts through BulkPut in groups of this size (0 = singleton puts)")
		rcQueries   = flag.Int("queries-rangecmp", 200, "range queries per mode in rangecmp mode")
		route       = flag.String("route", "overlay", "singleton routing mode: overlay (paper-faithful per-hop) or direct (one-hop route cache)")

		// Wire-transport flags (workload and bench modes).
		transport = flag.String("transport", "local", "message transport for live-cluster modes: local (in-process channels) or tcp (a loopback wire pair: coordinator + daemon half)")
		listen    = flag.String("listen", "", "tcp transport: the coordinator's listen address (default 127.0.0.1:0, a free loopback port)")
		seedAddr  = flag.String("seedaddr", "", "tcp transport, throughput mode: attach to a running batond coordinator at this address instead of building a cluster in-process")

		// Skewload-mode flags.
		theta       = flag.Float64("theta", 1.0, "skewload mode: Zipf skew parameter of the data set and key stream")
		autobalance = flag.Bool("autobalance", false, "skewload mode: run the background load balancer during the workload")
		compare     = flag.Bool("compare", false, "skewload mode: run balancer-off then balancer-on and fail unless the final imbalance ratio improves")

		// Bench-mode flags.
		benchOut        = flag.String("out", "BENCH_p2p.json", "bench mode: file the benchmark baseline is written to")
		requireSpeedup  = flag.Float64("requirespeedup", 0, "bench mode: fail unless direct-mode singleton ops/sec exceeds overlay-mode by this factor (0 = no gate)")
		compareOverlays = flag.Bool("compareoverlays", false, "bench mode: add the three-way overlay cells (binary BATON vs BATON* m=4/m=8 vs Chord) to the matrix")

		// Flight-recorder flags (workload and bench modes).
		traceSample = flag.Int("tracesample", 0, "sample 1 in N requests for hop-level tracing (0 = off); in bench mode also gates the sampling overhead on the direct-get row")
		metricsOut  = flag.String("metricsout", "", "write the flight-recorder dump (metrics registry, structural-op journal, sampled traces) to this JSON file after the run")
	)
	flag.Parse()
	if err := validateModeFlags(*mode); err != nil {
		fatal(err)
	}
	routeMode, err := parseRoute(*route)
	if err != nil {
		fatal(err)
	}
	if !core.ValidFanout(*fanout) {
		fatal(fmt.Errorf("invalid -fanout %d (want 2..%d)", *fanout, core.MaxFanout))
	}
	// Flags the user set explicitly, so "-kill 0" (an intentional no-crash
	// baseline) is distinguishable from an unset flag and never silently
	// overridden by a mode's default churn.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := validateTransportFlags(*transport, *listen, *seedAddr, explicit); err != nil {
		fatal(err)
	}

	switch *mode {
	case "figures":
	case "throughput":
		runThroughput(throughputOptions{
			peers: *peers, items: *items, clients: *clients, ops: *ops,
			getFrac: *getFrac, putFrac: *putFrac, delFrac: *delFrac, rangeFrac: *rangeFrac,
			selectivity: *selectivity, kill: *kill, serialRange: *serialRange,
			plan: *plan, rangeDist: *rangeDist,
			bulkSize: *bulkSize, route: routeMode, seed: *seed, fanout: *fanout,
			traceSample: *traceSample, metricsOut: *metricsOut,
			transport: *transport, listen: *listen, seedAddr: *seedAddr,
		})
		return
	case "bench":
		runBench(benchOptions{
			peers: *peers, items: *items, clients: *clients, ops: *ops,
			seed: *seed, out: *benchOut, requireSpeedup: *requireSpeedup,
			fanout: *fanout, compareOverlays: *compareOverlays,
			traceSample: *traceSample, metricsOut: *metricsOut,
			transport: *transport, listen: *listen,
		})
		return
	case "churnload":
		o := churnloadOptions{
			peers: *peers, items: *items, clients: *clients, ops: *ops,
			getFrac: *getFrac, putFrac: *putFrac, delFrac: *delFrac, rangeFrac: *rangeFrac,
			selectivity: *selectivity, joins: *joins, departs: *departs, kill: *kill,
			route: routeMode, seed: *seed, fanout: *fanout,
			traceSample: *traceSample, metricsOut: *metricsOut,
			transport: *transport, listen: *listen,
		}
		if !explicit["joins"] && !explicit["departs"] && !explicit["kill"] {
			// No churn flags at all: default to steady-state churn turning
			// over ~1/4 of the cluster (at least one event each, so tiny
			// clusters still churn). Explicitly requested values — zero
			// included — are left exactly as given.
			o.joins, o.departs = max(1, *peers/4), max(1, *peers/4)
		}
		runChurnLoad(o)
		return
	case "faultload":
		o := faultloadOptions{
			peers: *peers, items: *items, clients: *clients, ops: *ops,
			getFrac: *getFrac, putFrac: *putFrac, delFrac: *delFrac, rangeFrac: *rangeFrac,
			selectivity: *selectivity, kill: *kill, recovers: *recovers,
			route: routeMode, seed: *seed, fanout: *fanout,
			traceSample: *traceSample, metricsOut: *metricsOut,
			transport: *transport, listen: *listen,
		}
		if !explicit["kill"] {
			// -kill not given: default to crashing (and repairing) ~1/4 of
			// the cluster, at least one peer, so the mode exercises the
			// kill -> ErrOwnerDown -> recover -> readable cycle out of the
			// box. An explicit "-kill 0" baseline is honoured as given.
			o.kill = max(1, *peers/4)
		}
		if o.recovers < 0 {
			o.recovers = o.kill
		}
		runFaultLoad(o)
		return
	case "skewload":
		runSkewLoad(skewloadOptions{
			peers: *peers, items: *items, clients: *clients, ops: *ops,
			getFrac: *getFrac, putFrac: *putFrac, delFrac: *delFrac, rangeFrac: *rangeFrac,
			selectivity: *selectivity, theta: *theta, autobalance: *autobalance,
			compare: *compare, route: routeMode, seed: *seed, fanout: *fanout,
			traceSample: *traceSample, metricsOut: *metricsOut,
			transport: *transport, listen: *listen,
		})
		return
	case "rangecmp":
		runRangeCompare(rangecmpOptions{
			peers: *peers, items: *items, queries: *rcQueries,
			selectivity: *selectivity, seed: *seed, fanout: *fanout,
			plan: *plan, rangeDist: *rangeDist,
		})
		return
	default:
		fatal(fmt.Errorf("unknown mode %q (want figures, throughput, churnload, faultload, skewload, rangecmp or bench)", *mode))
	}

	if *list {
		for _, id := range experiments.Figures() {
			fmt.Println(id)
		}
		return
	}

	opt := experiments.Quick()
	if *full {
		opt = experiments.Default()
	}
	if *sizes != "" {
		parsed, err := parseSizes(*sizes)
		if err != nil {
			fatal(err)
		}
		opt.Sizes = parsed
	}
	if *queries > 0 {
		opt.Queries = *queries
	}
	if *data > 0 {
		opt.DataPerNode = *data
	}
	if *runs > 0 {
		opt.Runs = *runs
	}
	opt.Seed = *seed

	ids := experiments.Figures()
	if *figure != "" {
		ids = []string{strings.TrimPrefix(strings.ToLower(*figure), "figure ")}
	}
	for _, id := range ids {
		result, err := experiments.Run(id, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Figure %s — %s\n", result.ID, result.Title)
		fmt.Println(strings.Repeat("-", 72))
		fmt.Print(result.Table())
		if *verbose {
			for _, note := range result.Notes {
				fmt.Printf("note: %s\n", note)
			}
		}
		fmt.Println()
	}
}

// validateModeFlags rejects churn/fault flags in modes that would silently
// ignore them: a run that drops -kill or -joins on the floor looks like a
// clean pass of a scenario that never executed, which is worse than an
// error. Only flags the user set explicitly are checked.
func validateModeFlags(mode string) error {
	workloadModes := map[string]bool{"throughput": true, "churnload": true, "faultload": true, "skewload": true}
	allowed := map[string]map[string]bool{
		"throughput": {"kill": true, "route": true, "bulk": true, "serialrange": true, "plan": true, "rangedist": true, "tracesample": true, "metricsout": true, "transport": true, "listen": true},
		"churnload":  {"kill": true, "joins": true, "departs": true, "route": true, "tracesample": true, "metricsout": true, "transport": true, "listen": true},
		"faultload":  {"kill": true, "recover": true, "route": true, "tracesample": true, "metricsout": true, "transport": true, "listen": true},
		"skewload":   {"theta": true, "autobalance": true, "compare": true, "route": true, "tracesample": true, "metricsout": true, "transport": true, "listen": true},
		"bench":      {"out": true, "requirespeedup": true, "compareoverlays": true, "tracesample": true, "metricsout": true, "transport": true, "listen": true},
	}
	var bad []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "kill", "joins", "departs", "recover", "route", "out", "requirespeedup",
			"theta", "autobalance", "compare", "compareoverlays", "bulk", "serialrange",
			"tracesample", "metricsout", "transport", "listen":
			if !allowed[mode][f.Name] {
				bad = append(bad, "-"+f.Name)
			}
		case "seedaddr":
			if mode != "throughput" {
				bad = append(bad, "-"+f.Name)
			}
		case "get", "put", "del", "range":
			// The mix fractions are honoured by every workload mode; bench,
			// rangecmp and figures run fixed mixes and would silently drop
			// them.
			if !workloadModes[mode] {
				bad = append(bad, "-"+f.Name)
			}
		case "selectivity":
			if !workloadModes[mode] && mode != "rangecmp" {
				bad = append(bad, "-"+f.Name)
			}
		case "plan", "rangedist":
			// The range plan and width distribution shape the throughput
			// workload's range mix and the rangecmp comparison; everywhere
			// else they would be silently dropped.
			if !allowed[mode][f.Name] && mode != "rangecmp" {
				bad = append(bad, "-"+f.Name)
			}
		case "fanout":
			// The overlay fanout shapes every live-cluster mode and the bench
			// matrix; the figures mode runs its own per-figure parameter sets.
			if !workloadModes[mode] && mode != "rangecmp" && mode != "bench" {
				bad = append(bad, "-"+f.Name)
			}
		}
	})
	if len(bad) == 0 {
		return nil
	}
	workloads := []string{"throughput", "churnload", "faultload", "skewload"}
	modes := map[string][]string{
		"kill":            {"throughput", "churnload", "faultload"},
		"joins":           {"churnload"},
		"departs":         {"churnload"},
		"recover":         {"faultload"},
		"route":           workloads,
		"out":             {"bench"},
		"requirespeedup":  {"bench"},
		"compareoverlays": {"bench"},
		"fanout":          append(append([]string{}, workloads...), "rangecmp", "bench"),
		"theta":           {"skewload"},
		"autobalance":     {"skewload"},
		"compare":         {"skewload"},
		"bulk":            {"throughput"},
		"serialrange":     {"throughput"},
		"plan":            {"throughput", "rangecmp"},
		"rangedist":       {"throughput", "rangecmp"},
		"tracesample":     append(append([]string{}, workloads...), "bench"),
		"metricsout":      append(append([]string{}, workloads...), "bench"),
		"transport":       append(append([]string{}, workloads...), "bench"),
		"listen":          append(append([]string{}, workloads...), "bench"),
		"seedaddr":        {"throughput"},
		"get":             workloads,
		"put":             workloads,
		"del":             workloads,
		"range":           workloads,
		"selectivity":     append(append([]string{}, workloads...), "rangecmp"),
	}
	hints := make([]string, 0, len(bad))
	for _, f := range bad {
		hints = append(hints, fmt.Sprintf("%s (only meaningful in mode %s)", f, strings.Join(modes[strings.TrimPrefix(f, "-")], "/")))
	}
	return fmt.Errorf("mode %q ignores flag(s) %s; drop them or switch mode", mode, strings.Join(hints, ", "))
}

// validateTransportFlags enforces the wire-transport flag combinations:
// -transport names a known medium, -listen and -seedaddr only mean
// something over tcp, and -seedaddr (attach to an external coordinator)
// excludes both -listen (we are not the coordinator) and churn flags
// (structural operations are the coordinator's alone). Like
// validateModeFlags, a bad combination exits 1 instead of being silently
// dropped.
func validateTransportFlags(transport, listen, seedAddr string, explicit map[string]bool) error {
	switch transport {
	case "local", "tcp":
	default:
		return fmt.Errorf("unknown -transport %q (want local or tcp)", transport)
	}
	if transport != "tcp" {
		if listen != "" {
			return fmt.Errorf("-listen requires -transport tcp")
		}
		if seedAddr != "" {
			return fmt.Errorf("-seedaddr requires -transport tcp")
		}
		return nil
	}
	if seedAddr != "" {
		if listen != "" {
			return fmt.Errorf("-seedaddr and -listen are mutually exclusive: attaching to a coordinator at %s means not listening as one", seedAddr)
		}
		for _, churn := range []string{"kill", "joins", "departs", "recover", "autobalance"} {
			if explicit[churn] {
				return fmt.Errorf("-%s cannot be combined with -seedaddr: structural operations belong to the coordinator, and an attached client is not one", churn)
			}
		}
	}
	return nil
}

// parseRoute maps the -route flag to a routing mode.
func parseRoute(s string) (p2p.RouteMode, error) {
	switch s {
	case "overlay":
		return p2p.RouteOverlay, nil
	case "direct":
		return p2p.RouteDirect, nil
	}
	return p2p.RouteOverlay, fmt.Errorf("unknown route mode %q (want overlay or direct)", s)
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("invalid network size %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "batonsim:", err)
	os.Exit(1)
}
