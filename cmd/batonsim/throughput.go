package main

import (
	"fmt"
	"math/rand"
	"time"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/p2p"
	"baton/internal/stats"
	"baton/internal/workload"
	"baton/internal/workload/driver"
)

type throughputOptions struct {
	peers, items, clients, ops           int
	getFrac, putFrac, delFrac, rangeFrac float64
	selectivity                          float64
	kill, bulkSize                       int
	serialRange                          bool
	plan, rangeDist                      string
	route                                p2p.RouteMode
	seed                                 int64
	fanout                               int
	traceSample                          int
	metricsOut                           string
	transport, listen, seedAddr          string
}

// runThroughput is the batonsim throughput mode: it drives the live cluster
// with the closed-loop concurrent workload and prints ops/sec and latency
// percentiles.
func runThroughput(o throughputOptions) {
	cfg := driver.Config{
		Clients:          o.clients,
		Ops:              o.ops,
		GetFraction:      o.getFrac,
		PutFraction:      o.putFrac,
		DeleteFraction:   o.delFrac,
		RangeFraction:    o.rangeFrac,
		RangeSelectivity: o.selectivity,
		SerialRange:      o.serialRange,
		Plan:             o.plan,
		RangeDist:        o.rangeDist,
		BulkSize:         o.bulkSize,
		Route:            o.route,
		KillPeers:        o.kill,
		TraceSample:      o.traceSample,
		Seed:             o.seed,
	}
	// Reject an inconsistent plan (e.g. -serialrange with -plan parallel)
	// before the cluster is built, so a bad flag pair fails fast.
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	var (
		cluster *p2p.Cluster
		keys    []keyspace.Key
		stop    func()
		err     error
	)
	if o.seedAddr != "" {
		fmt.Printf("attaching to coordinator at %s, preloading %d items ...\n", o.seedAddr, o.items)
		cluster, keys, err = driver.AttachCluster(o.seedAddr, o.items, o.seed)
		stop = func() {
			if cluster != nil {
				cluster.Stop()
			}
		}
	} else {
		fmt.Printf("building live cluster: %d peers, %d items, fanout %d, transport %s ...\n", o.peers, o.items, max(2, o.fanout), o.transport)
		cluster, keys, stop, err = buildScenarioCluster(o.transport, o.listen, o.peers, o.items, o.seed, workload.Uniform, 0, o.fanout)
	}
	if err != nil {
		fatal(err)
	}
	defer stop()

	cfg.Keys = keys
	rep := driver.Run(cluster, cfg)
	rangeMode := "parallel fan-out"
	switch {
	case o.plan != "":
		rangeMode = o.plan
	case o.serialRange:
		rangeMode = "serial chain walk"
	}
	fmt.Printf("throughput run (route mode: %s, range mode: %s, transport: %s)\n", o.route, rangeMode, o.transport)
	fmt.Print(rep.String())
	fmt.Printf("peer-to-peer messages delivered: %d\n", cluster.Messages())
	if o.route == p2p.RouteDirect {
		fmt.Printf("stale direct routes (fell back to overlay): %d\n", cluster.StaleRoutes())
	}
	writeObsDump(cluster, o.metricsOut)
}

type rangecmpOptions struct {
	peers, items, queries int
	selectivity           float64
	seed                  int64
	fanout                int
	// plan restricts the comparison to one plan ("serial", "parallel" or
	// "adaptive"); empty compares all three.
	plan string
	// rangeDist shapes the per-query selectivity: "" / "fixed" (every query
	// at -selectivity), "uniform" (uniform in (0, 2·selectivity]) or
	// "bimodal" (half at selectivity/16, half at 16·selectivity).
	rangeDist string
}

// runRangeCompare benchmarks the range plans against each other on the same
// live cluster — the serial chain walk, the parallel fan-out and the
// adaptive planner — and prints per-query latency plus the speedup. All
// plans answer the same (via, range) sequence, so routing distance cannot
// differ between them.
func runRangeCompare(o rangecmpOptions) {
	plans := []string{driver.PlanSerial, driver.PlanParallel, driver.PlanAdaptive}
	if o.plan != "" {
		switch o.plan {
		case driver.PlanSerial, driver.PlanParallel, driver.PlanAdaptive:
			plans = []string{o.plan}
		default:
			fatal(fmt.Errorf("unknown -plan %q (want serial, parallel or adaptive)", o.plan))
		}
	}
	switch o.rangeDist {
	case "", driver.RangeDistFixed, driver.RangeDistUniform, driver.RangeDistBimodal:
	default:
		fatal(fmt.Errorf("unknown -rangedist %q (want fixed, uniform or bimodal)", o.rangeDist))
	}
	fmt.Printf("building live cluster: %d peers, %d items, fanout %d ...\n", o.peers, o.items, max(2, o.fanout))
	cluster, _, err := driver.BuildClusterFanout(o.peers, o.items, o.seed, o.fanout)
	if err != nil {
		fatal(err)
	}
	defer cluster.Stop()
	ids := cluster.PeerIDs()
	queries := o.queries
	if queries <= 0 {
		queries = 200
	}
	gen := workload.NewGenerator(workload.Config{Seed: o.seed + 2})
	rng := rand.New(rand.NewSource(o.seed + 3))
	selOf := func() float64 {
		s := o.selectivity
		switch o.rangeDist {
		case driver.RangeDistUniform:
			s *= 2 * rng.Float64()
		case driver.RangeDistBimodal:
			if rng.Intn(2) == 0 {
				s /= 16
			} else {
				s *= 16
			}
		}
		return min(1, s)
	}
	ranges := make([]keyspace.Range, queries)
	for i := range ranges {
		ranges[i] = gen.RangeQuery(selOf())
	}
	vias := make([]core.PeerID, len(ranges))
	for i := range vias {
		vias[i] = ids[rng.Intn(len(ids))]
	}

	// Warm every code path (scheduler, allocator, caches, the adaptive
	// planner's latency EWMAs) before measuring so the first plan measured
	// doesn't absorb the cold-start cost and skew the printed speedup.
	for i := 0; i < 64 && i < len(ranges); i++ {
		cluster.RangeSerial(vias[i], ranges[i])
		cluster.Range(vias[i], ranges[i])
		cluster.RangeAdaptive(vias[i], ranges[i])
	}

	measure := func(plan string) (*stats.Latency, int) {
		lat := &stats.Latency{}
		maxHops := 0
		for i, r := range ranges {
			via := vias[i]
			t0 := time.Now()
			var hops int
			var err error
			switch plan {
			case driver.PlanSerial:
				_, hops, err = cluster.RangeSerial(via, r)
			case driver.PlanAdaptive:
				_, hops, err = cluster.RangeAdaptive(via, r)
			default:
				_, hops, err = cluster.Range(via, r)
			}
			if err != nil {
				fatal(err)
			}
			lat.Add(float64(time.Since(t0).Microseconds()))
			if hops > maxHops {
				maxHops = hops
			}
		}
		return lat, maxHops
	}

	dist := o.rangeDist
	if dist == "" {
		dist = driver.RangeDistFixed
	}
	fmt.Printf("%d range queries, selectivity %.3f (%s widths, ≈%.0f peers per range at the base width)\n",
		queries, o.selectivity, dist, o.selectivity*float64(o.peers))
	fmt.Printf("%-18s %10s %10s %10s %10s\n", "plan", "mean µs", "p50 µs", "p99 µs", "max hops")
	results := make(map[string]*stats.Latency, len(plans))
	statsBefore := cluster.PlanStats()
	for _, plan := range plans {
		lat, hops := measure(plan)
		results[plan] = lat
		fmt.Printf("%-18s %10.0f %10.0f %10.0f %10d\n", plan, lat.Mean(), lat.Percentile(0.5), lat.Percentile(0.99), hops)
	}
	if s, p := results[driver.PlanSerial], results[driver.PlanParallel]; s != nil && p != nil && p.Mean() > 0 {
		fmt.Printf("parallel speedup over serial: %.2fx (mean latency)\n", s.Mean()/p.Mean())
	}
	if results[driver.PlanAdaptive] != nil {
		ps := cluster.PlanStats()
		fmt.Printf("adaptive plans serial/parallel %d/%d  plan cache hits %d\n",
			ps.Serial-statsBefore.Serial, ps.Parallel-statsBefore.Parallel, ps.CacheHits-statsBefore.CacheHits)
	}
}
