package main

import (
	"fmt"
	"math/rand"
	"time"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/p2p"
	"baton/internal/stats"
	"baton/internal/workload"
	"baton/internal/workload/driver"
)

type throughputOptions struct {
	peers, items, clients, ops           int
	getFrac, putFrac, delFrac, rangeFrac float64
	selectivity                          float64
	kill, bulkSize                       int
	serialRange                          bool
	route                                p2p.RouteMode
	seed                                 int64
	fanout                               int
	traceSample                          int
	metricsOut                           string
}

// runThroughput is the batonsim throughput mode: it drives the live cluster
// with the closed-loop concurrent workload and prints ops/sec and latency
// percentiles.
func runThroughput(o throughputOptions) {
	fmt.Printf("building live cluster: %d peers, %d items, fanout %d ...\n", o.peers, o.items, max(2, o.fanout))
	cluster, keys, err := driver.BuildClusterFanout(o.peers, o.items, o.seed, o.fanout)
	if err != nil {
		fatal(err)
	}
	defer cluster.Stop()

	rep := driver.Run(cluster, driver.Config{
		Clients:          o.clients,
		Ops:              o.ops,
		GetFraction:      o.getFrac,
		PutFraction:      o.putFrac,
		DeleteFraction:   o.delFrac,
		RangeFraction:    o.rangeFrac,
		RangeSelectivity: o.selectivity,
		SerialRange:      o.serialRange,
		BulkSize:         o.bulkSize,
		Route:            o.route,
		Keys:             keys,
		KillPeers:        o.kill,
		TraceSample:      o.traceSample,
		Seed:             o.seed,
	})
	rangeMode := "parallel fan-out"
	if o.serialRange {
		rangeMode = "serial chain walk"
	}
	fmt.Printf("throughput run (route mode: %s, range mode: %s)\n", o.route, rangeMode)
	fmt.Print(rep.String())
	fmt.Printf("peer-to-peer messages delivered: %d\n", cluster.Messages())
	if o.route == p2p.RouteDirect {
		fmt.Printf("stale direct routes (fell back to overlay): %d\n", cluster.StaleRoutes())
	}
	writeObsDump(cluster, o.metricsOut)
}

// runRangeCompare benchmarks the two range modes against each other on the
// same live cluster and prints per-query latency plus the speedup.
func runRangeCompare(peers, items, queries int, selectivity float64, seed int64, fanout int) {
	fmt.Printf("building live cluster: %d peers, %d items, fanout %d ...\n", peers, items, max(2, fanout))
	cluster, _, err := driver.BuildClusterFanout(peers, items, seed, fanout)
	if err != nil {
		fatal(err)
	}
	defer cluster.Stop()
	ids := cluster.PeerIDs()
	if queries <= 0 {
		queries = 200
	}
	gen := workload.NewGenerator(workload.Config{Seed: seed + 2})
	ranges := make([]keyspace.Range, queries)
	for i := range ranges {
		ranges[i] = gen.RangeQuery(selectivity)
	}
	// Pair the comparison: both modes answer the same (via, range) sequence
	// so routing distance cannot differ between them.
	rng := rand.New(rand.NewSource(seed + 3))
	vias := make([]core.PeerID, len(ranges))
	for i := range vias {
		vias[i] = ids[rng.Intn(len(ids))]
	}

	// Warm both code paths (scheduler, allocator, caches) before measuring
	// so the first mode measured doesn't absorb the cold-start cost and skew
	// the printed speedup.
	for i := 0; i < 16 && i < len(ranges); i++ {
		cluster.RangeSerial(vias[i], ranges[i])
		cluster.Range(vias[i], ranges[i])
	}

	measure := func(serial bool) (*stats.Latency, int) {
		lat := &stats.Latency{}
		maxHops := 0
		for i, r := range ranges {
			via := vias[i]
			t0 := time.Now()
			var hops int
			var err error
			if serial {
				_, hops, err = cluster.RangeSerial(via, r)
			} else {
				_, hops, err = cluster.Range(via, r)
			}
			if err != nil {
				fatal(err)
			}
			lat.Add(float64(time.Since(t0).Microseconds()))
			if hops > maxHops {
				maxHops = hops
			}
		}
		return lat, maxHops
	}

	serialLat, serialHops := measure(true)
	parLat, parHops := measure(false)
	fmt.Printf("%d range queries, selectivity %.3f (≈%.0f peers per range)\n",
		queries, selectivity, selectivity*float64(peers))
	fmt.Printf("%-18s %10s %10s %10s %10s\n", "mode", "mean µs", "p50 µs", "p99 µs", "max hops")
	fmt.Printf("%-18s %10.0f %10.0f %10.0f %10d\n", "serial chain", serialLat.Mean(), serialLat.Percentile(0.5), serialLat.Percentile(0.99), serialHops)
	fmt.Printf("%-18s %10.0f %10.0f %10.0f %10d\n", "parallel fan-out", parLat.Mean(), parLat.Percentile(0.5), parLat.Percentile(0.99), parHops)
	if m := parLat.Mean(); m > 0 {
		fmt.Printf("speedup: %.2fx (mean latency)\n", serialLat.Mean()/m)
	}
}
