// Command batonvet is the project's protocol linter: a multichecker running
// the analyzers under internal/analysis over the module, the way `go vet`
// runs its passes. It enforces the concurrency conventions the cluster's
// correctness rests on — conventions the compiler cannot see:
//
//	kindexhaustive  switches over message-kind enums cover every constant
//	                or default loudly
//	lockedsuffix    *Locked functions run under memberMu held by the caller
//	atomicfield     fields touched via sync/atomic are atomic everywhere
//	topoimmutable   no writes through a topology snapshot from Load()
//	replypool       pooled reply channels released on every return path
//
// Usage:
//
//	go run ./cmd/batonvet ./...
//
// Exit status is 0 when the tree is clean, 1 when any diagnostic fired, 2 on
// internal errors (load or type-check failure). Findings print in the
// go vet format, one "path:line:col: analyzer: message" per line.
// Deliberate, documented exceptions are silenced per site with a
// `//batonvet:ignore <analyzer> <reason>` comment on the flagged line or the
// line above it.
package main

import (
	"flag"
	"fmt"
	"os"

	"baton/internal/analysis"
	"baton/internal/analysis/atomicfield"
	"baton/internal/analysis/kindexhaustive"
	"baton/internal/analysis/lockedsuffix"
	"baton/internal/analysis/replypool"
	"baton/internal/analysis/topoimmutable"
)

// analyzers is the suite, in diagnostic-name order.
var analyzers = []*analysis.Analyzer{
	atomicfield.Analyzer,
	kindexhaustive.Analyzer,
	lockedsuffix.Analyzer,
	replypool.Analyzer,
	topoimmutable.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	tests := flag.Bool("tests", true, "also analyze test files")
	list := flag.Bool("list", false, "print the analyzers and their invariants, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: batonvet [-tests=false] [-list] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "batonvet:", err)
		return 2
	}
	pkgs, err := analysis.Load(dir, flag.Args(), *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, "batonvet:", err)
		return 2
	}
	diags, err := analysis.Check(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "batonvet:", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	analysis.Fprint(os.Stderr, pkgs[0].Fset, diags, dir)
	return 1
}
