package main

import (
	"os"
	"strings"
	"testing"

	"baton/internal/analysis"
)

// TestModuleClean runs the full batonvet suite over the module — test files
// included — and fails on any diagnostic. This is the check that keeps the
// tree conformant between CI runs: a switch that drops a new kind, a
// *Locked call without the lock, a write through a shared topology snapshot
// all fail `go test ./...` right here, with the same output batonvet would
// print.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(dir, []string{"baton/..."}, true)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Check(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	if len(diags) == 0 {
		return
	}
	var out strings.Builder
	analysis.Fprint(&out, pkgs[0].Fset, diags, dir)
	t.Errorf("batonvet found %d violation(s) in the tree:\n%s", len(diags), out.String())
}
