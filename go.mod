module baton

go 1.24
