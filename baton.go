// Package baton is the public API of this repository: a from-scratch
// implementation of BATON — the BAlanced Tree Overlay Network of Jagadish,
// Ooi, Rinard and Vu (VLDB 2005) — together with the substrates its
// evaluation depends on (a per-peer ordered storage engine, workload
// generators, a CHORD baseline and a multiway-tree baseline) and a harness
// that regenerates every figure of the paper.
//
// The central type is Network, an in-process simulation of a BATON overlay
// that executes the full protocol — join, leave, failure and repair, exact
// and range search, insertion, deletion, restructuring and load balancing —
// while counting every message peers would exchange, which is the metric the
// paper reports. See the examples directory for runnable walkthroughs and
// cmd/batonsim for the experiment driver.
//
//	nw := baton.NewNetwork(baton.Config{Seed: 1})
//	for i := 0; i < 1000; i++ {
//		nw.Join(nw.RandomPeer())
//	}
//	nw.Insert(nw.RandomPeer(), 42, []byte("value"))
//	value, found, cost, _ := nw.SearchExact(nw.RandomPeer(), 42)
//
// The heavy lifting lives in internal packages; this package re-exports the
// user-facing types so downstream code has a single stable import path.
package baton

import (
	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/obs"
	"baton/internal/p2p"
	"baton/internal/query"
	"baton/internal/stats"
	"baton/internal/store"
)

// Key is a point in the one-dimensional key space the overlay partitions.
type Key = keyspace.Key

// Range is a half-open key interval [Lower, Upper).
type Range = keyspace.Range

// NewRange returns the half-open range [lower, upper).
func NewRange(lower, upper Key) Range { return keyspace.NewRange(lower, upper) }

// FullDomain returns the paper's default key domain, [1, 10^9).
func FullDomain() Range { return keyspace.FullDomain() }

// Item is a key/value pair stored at a peer.
type Item = store.Item

// PeerID is the stable physical identity of a peer.
type PeerID = core.PeerID

// Position identifies a peer's logical place in the balanced binary tree.
type Position = core.Position

// NodeInfo is a read-only snapshot of one peer's state.
type NodeInfo = core.NodeInfo

// PeerSnapshot is a full copy of one peer's protocol state — position,
// range, items and link sets. It is the interchange format between the
// simulator and the live cluster: NewCluster animates a network from
// snapshots, and Cluster.Snapshot exports them back for auditing.
type PeerSnapshot = core.PeerSnapshot

// Side selects a tree side (left or right child, adjacent, routing table).
type Side = core.Side

// Sides of the tree.
const (
	Left  = core.Left
	Right = core.Right
)

// Config configures a simulated BATON network.
type Config = core.Config

// LoadBalanceConfig configures the load balancing scheme of Section IV-D of
// the paper.
type LoadBalanceConfig = core.LoadBalanceConfig

// LoadBalanceStats summarises load balancing activity.
type LoadBalanceStats = core.LoadBalanceStats

// Network is an in-process BATON overlay simulation. See core.Network for
// the full method set.
type Network = core.Network

// RangeResult is the answer to a range query.
type RangeResult = core.RangeResult

// OpCost reports the message cost of one overlay operation.
type OpCost = stats.OpCost

// Metrics accumulates message counters for a whole network.
type Metrics = stats.Metrics

// NewNetwork creates a network with a single peer owning the whole key
// domain.
func NewNetwork(cfg Config) *Network { return core.NewNetwork(cfg) }

// NetworkFromSnapshot rebuilds a simulated network from per-peer snapshots
// (for example the result of Cluster.Snapshot), wiring every link exactly
// as recorded. An empty domain means the paper's default.
func NetworkFromSnapshot(domain Range, peers []PeerSnapshot) (*Network, error) {
	return core.FromSnapshot(domain, peers)
}

// VerifySnapshot checks per-peer snapshots against the full structural
// invariant suite of the overlay: balanced tree shape, contiguous gap-free
// ranges, and symmetric link and routing-table state. Combined with
// Cluster.Snapshot it audits a live cluster after membership churn.
func VerifySnapshot(domain Range, peers []PeerSnapshot) error {
	return core.VerifySnapshot(domain, peers)
}

// ReplicaHolderOf returns the peer that holds the snapshotted peer's
// replica under the live cluster's adjacent-peer replication scheme: the
// right adjacent peer, or the left adjacent for the rightmost peer.
func ReplicaHolderOf(ps PeerSnapshot) PeerID { return core.ReplicaHolderOf(ps) }

// VerifyReplication checks the replication invariant over a quiesced,
// synchronised cluster: every peer's items exactly mirrored at its replica
// holder. Feed it Cluster.Snapshot and Cluster.Replicas, after
// Cluster.SyncReplicas has closed the asynchronous write-path window.
func VerifyReplication(peers []PeerSnapshot, replicas map[PeerID]map[PeerID][]Item) error {
	return core.VerifyReplication(peers, replicas)
}

// Errors re-exported from the core implementation.
var (
	// ErrUnknownPeer is returned when an operation names a peer that is not
	// part of the network.
	ErrUnknownPeer = core.ErrUnknownPeer
	// ErrPeerDown is returned when an operation is addressed to a failed
	// peer.
	ErrPeerDown = core.ErrPeerDown
	// ErrLastPeer is returned when the only remaining peer tries to leave.
	ErrLastPeer = core.ErrLastPeer
)

// Cluster is a live, concurrently executing deployment of a BATON overlay:
// one goroutine per peer, requests as messages, and fault-tolerant routing
// around killed peers. Every method is safe for concurrent use and never
// blocks indefinitely — see the package documentation of internal/p2p for
// the full concurrency contract. Beyond single-key Get/Put/Delete and the
// two range modes (parallel fan-out via Range, sequential chain walk via
// RangeSerial), the cluster offers batched BulkGet/BulkPut/BulkDelete that
// group keys by responsible peer and pipeline one message per peer.
//
// Membership is live: Join adds a brand-new peer online (the join request
// routes through the overlay per Section III-A, the accepting peer's range
// splits and the handed-off items migrate as batched messages), Depart
// performs the graceful leave of Section III-B with full data handoff
// (finding and splicing in a replacement leaf when a non-leaf peer leaves),
// and LoadBalance runs the adjacent-peer data shuffle of Section V.
// Structural operations serialise with each other while data traffic keeps
// flowing; keys in mid-handoff are forwarded or briefly buffered, never
// dropped. Snapshot exports the quiesced structure for auditing with
// VerifySnapshot or rebuilding with NetworkFromSnapshot.
//
// Load management is adaptive: Loads meters every peer (stored items plus a
// request-rate EWMA), ImbalanceRatio condenses a snapshot into the
// max/average load ratio, and StartAutoBalance runs the background balancer
// — adjacent shuffles when a hot peer's lighter neighbour has room, forced
// depart-and-rejoins of the globally lightest leaf (ForceRejoin, the
// Section III-E restructuring) when both neighbours are loaded — so a
// Zipf-skewed workload no longer piles onto a handful of peers.
//
// The cluster is fault-tolerant end to end: every peer's items are
// replicated at its adjacent peer (asynchronously on the write path,
// synchronously across membership changes; SyncReplicas is the barrier),
// so a Kill makes the dead peer's range answer ErrOwnerDown only
// transiently — Recover (or the background repairer enabled by
// StartAutoRecover) repairs the structure around the crash and restores
// the lost range from the surviving replica. Replicas exports the replica
// sets for auditing with VerifyReplication.
type Cluster = p2p.Cluster

// BulkResult is the per-key outcome of a bulk operation on a Cluster.
type BulkResult = p2p.BulkResult

// PeerLoad is one peer's slice of a Cluster.Loads snapshot: its stored-item
// count (the paper's load measure) and the request-rate EWMA of the data
// messages it handles.
type PeerLoad = p2p.PeerLoad

// AutoBalanceConfig tunes Cluster.StartAutoBalance / Cluster.BalanceOnce:
// the overload trigger θ (a peer is overloaded when it stores more than θ
// times its lighter adjacent peer, or θ times the cluster average), the
// check cadence, and the load floor below which peers are left alone.
type AutoBalanceConfig = p2p.AutoBalanceConfig

// BalanceAction reports what one balancing pass did: nothing, an
// adjacent-peer shuffle, or a forced depart-and-rejoin.
type BalanceAction = p2p.BalanceAction

// Balancing actions reported by Cluster.BalanceOnce.
const (
	BalanceNone    = p2p.BalanceNone
	BalanceShuffle = p2p.BalanceShuffle
	BalanceRejoin  = p2p.BalanceRejoin
)

// ImbalanceRatio condenses a load snapshot into the max/average stored-item
// ratio: 1.0 is perfectly balanced. The skewed-workload experiments track
// it before and after balancing.
func ImbalanceRatio(loads []PeerLoad) float64 { return p2p.ImbalanceRatio(loads) }

// RouteMode selects how a Cluster routes singleton Get/Put/Delete requests:
// RouteOverlay (the default) walks the overlay per-hop exactly as the paper
// describes, RouteDirect sends each request straight to the key's owner via
// the epoch-validated route cache, falling back to overlay forwarding when
// the cache is stale or the owner is down. Switch with Cluster.SetRouteMode;
// Cluster.StaleRoutes counts direct requests that had to fall back.
type RouteMode = p2p.RouteMode

// Routing modes for Cluster.SetRouteMode.
const (
	RouteOverlay = p2p.RouteOverlay
	RouteDirect  = p2p.RouteDirect
)

// Plan is a planned execution strategy for one range query: the serial
// adjacent-chain walk or the parallel scatter. Cluster.RangeAdaptive picks
// one per request from the range's estimated peer-span, with the crossover
// tuned from the latencies the cluster itself observes.
type Plan = query.Plan

// Range execution plans.
const (
	PlanSerial   = query.PlanSerial
	PlanParallel = query.PlanParallel
)

// Pred is a pushdown predicate for Cluster.GetFiltered /
// Cluster.RangeFiltered / Cluster.RangeIterFiltered: plain serialisable
// data evaluated at the owning peer, so items that cannot match never
// cross the wire. A positive Limit caps the result and terminates serial
// walks early.
type Pred = query.Pred

// RangeIter is a streaming range query in progress: Cluster.RangeIter
// scatters the range and yields items in bounded batches as the covering
// peers deliver them, never materialising the full result.
type RangeIter = p2p.RangeIter

// PlanSnapshot is the query planner's counters — adaptive range queries
// dispatched serially and in parallel, and plan-cache hits — returned by
// Cluster.PlanStats and embedded in ClusterMetrics.
type PlanSnapshot = obs.PlanSnapshot

// ClusterMetrics is the lock-free snapshot of the cluster's metrics
// registry returned by Cluster.Metrics: per-peer delivered / spilled /
// refused message counts, stale-route attribution, inbox and spill-queue
// gauges, and queue-wait / handle-time histograms with cluster-wide
// percentiles. Taking it never stops traffic.
type ClusterMetrics = obs.ClusterMetrics

// PeerMetricsSnapshot is one peer's slice of a ClusterMetrics.
type PeerMetricsSnapshot = obs.PeerSnapshot

// MetricsHistogram is a snapshot of one streaming histogram in the metrics
// registry (exact buckets for small values, logarithmic above), with
// Percentile, Mean, Merge and Sub for before/after deltas.
type MetricsHistogram = obs.HistogramSnapshot

// TraceHop is one hop of a sampled request trace: the peer that served the
// message, the message kind, the peer's tree level, and the hop's queue
// wait and handle time. Enable sampling with Cluster.SetTraceSampling and
// read completed chains with Cluster.Traces.
type TraceHop = obs.Hop

// ClusterEvent is one entry of the structural-op journal kept by the live
// cluster: every Join / Depart / Kill / Recover / balance action with
// per-phase durations, the number of items migrated and the outcome. Read
// the retained journal with Cluster.Events.
type ClusterEvent = obs.Event

// NewCluster animates a snapshot of the simulated network as a live
// cluster: every peer becomes a goroutine serving its share of the data.
// Call Stop when done.
//
//	cluster := baton.NewCluster(nw)
//	defer cluster.Stop()
//	items, _, err := cluster.Range(cluster.PeerIDs()[0], baton.NewRange(100, 5000))
func NewCluster(nw *Network) *Cluster { return p2p.NewCluster(nw) }

// Errors re-exported from the live cluster implementation.
var (
	// ErrClusterStopped is returned by cluster operations after Stop.
	ErrClusterStopped = p2p.ErrStopped
	// ErrOwnerDown is returned when the peer responsible for a key is dead.
	ErrOwnerDown = p2p.ErrOwnerDown
	// ErrUnreachable is returned when routing cannot reach the responsible
	// peer because every useful link points at dead peers.
	ErrUnreachable = p2p.ErrUnreachable
	// ErrReplicaLost is returned by Cluster.Recover when the crashed peer's
	// range was repaired but its replica holder was down too, so the data
	// could not be restored.
	ErrReplicaLost = p2p.ErrReplicaLost
)
