// Package obs is the cluster's flight recorder: a dependency-free
// observability layer the live message path reports into and every
// higher layer (driver, batonsim, the facade) reads from.
//
// It has three pieces, designed around one constraint — the data plane
// must never take a lock or allocate on behalf of instrumentation:
//
//   - The metrics registry (registry.go). Each peer owns a PeerMetrics
//     block of per-message-kind counters (delivered / spilled / refused),
//     spill-queue gauges, and streaming histograms for queue wait and
//     handle time. The blocks are the shards: writes are sharded by peer
//     and kind exactly as the inbox already shards deliveries, every hot
//     counter sits on its own cache line so two peers' blocks never
//     false-share, and a snapshot is a plain atomic sweep — no locks,
//     no stop-the-world.
//
//   - Request tracing (trace.go). A Trace is an optional context a
//     sampled request carries through the overlay; each hop appends
//     (peer, kind, tree level, queue wait, handle time). Sampling is
//     1-in-N with N settable at runtime; with sampling off the only cost
//     on the request path is one atomic load, and nothing allocates.
//
//   - The structural-op journal (journal.go). A fixed-size ring buffer
//     of membership events — join, depart, kill, recover, balance — with
//     per-phase durations and outcomes, so "what did the overlay just do
//     to itself" is answerable after the fact without logs.
//
// The histograms extend internal/stats.Histogram's cached-sort design to
// a concurrent setting: where stats.Histogram keeps exact map buckets and
// re-sorts them lazily, the streaming Histogram here fixes the bucket
// layout up front (exact below 128, power-of-two above), which makes the
// sorted order free and every operation a single atomic — the same
// read-mostly percentile query, minus the lock the map would need.
package obs
