package obs

import (
	"sync"
	"time"
)

// Phase is one timed stage of a structural operation, e.g. the
// prepare / extract / handoff / link-update phases of a membership
// change.
type Phase struct {
	Name       string `json:"name"`
	DurationNs int64  `json:"duration_ns"`
}

// Event is one structural operation recorded in the journal: what the
// overlay did to itself, to which peer, how long each phase took, and
// how it ended. Op names are plain strings ("join", "depart", "kill",
// "recover", "balance-shuffle", "force-rejoin") so readers need no enum.
type Event struct {
	Seq        int64     `json:"seq"`
	Op         string    `json:"op"`
	Peer       int64     `json:"peer"`
	Start      time.Time `json:"start"`
	DurationNs int64     `json:"duration_ns"`
	Phases     []Phase   `json:"phases,omitempty"`
	Migrated   int       `json:"migrated,omitempty"`
	Outcome    string    `json:"outcome"`
	Err        string    `json:"err,omitempty"`
}

// AddPhase appends a timed phase to the event.
func (e *Event) AddPhase(name string, d time.Duration) {
	e.Phases = append(e.Phases, Phase{Name: name, DurationNs: d.Nanoseconds()})
}

// Journal is a fixed-size ring buffer of structural-op events. Writers
// are the (already serialised) structural operations; readers may call
// Events at any time.
type Journal struct {
	mu   sync.Mutex
	seq  int64
	buf  []Event
	next int
	n    int
}

// NewJournal returns a journal retaining up to size events.
func NewJournal(size int) *Journal {
	if size < 1 {
		size = 1
	}
	return &Journal{buf: make([]Event, size)}
}

// Record stamps the event with the next sequence number and appends it,
// evicting the oldest event when the ring is full.
func (j *Journal) Record(ev Event) {
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	j.buf[j.next] = ev
	j.next = (j.next + 1) % len(j.buf)
	if j.n < len(j.buf) {
		j.n++
	}
	j.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.n)
	start := j.next - j.n
	if start < 0 {
		start += len(j.buf)
	}
	for i := 0; i < j.n; i++ {
		out = append(out, j.buf[(start+i)%len(j.buf)])
	}
	return out
}
