package obs

import (
	"math/bits"
	"sync/atomic"
)

// Bucket layout of the streaming histogram: values below histExact are
// counted exactly (one bucket per value — hop counts and other small
// integers lose no precision), larger values share one bucket per power
// of two. The layout is fixed at compile time, which is what makes the
// histogram lock-free: observing is one atomic add into a pre-ordered
// bucket, and a percentile query is a sweep in bucket order with no sort
// and no lock (compare internal/stats.Histogram, whose exact map buckets
// need a cached sort and single-goroutine discipline).
const (
	histExact = 128
	// Buckets histExact..histLast hold [1<<(b-histExact+7), 1<<(b-histExact+8));
	// the last bucket catches everything up to 1<<63-1.
	histBucketCount = histExact + 57
)

// Histogram is a lock-free streaming histogram of non-negative int64
// samples (nanoseconds, hop counts, queue depths). All methods are safe
// for concurrent use; the zero value is ready.
type Histogram struct {
	counts [histBucketCount]atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64
}

// histBucket maps a sample to its bucket index.
func histBucket(v int64) int {
	if v < histExact {
		return int(v)
	}
	b := histExact + bits.Len64(uint64(v)) - 8
	if b >= histBucketCount {
		b = histBucketCount - 1
	}
	return b
}

// histValue returns the representative value of a bucket: the value
// itself for exact buckets, the midpoint for power-of-two buckets.
func histValue(b int) int64 {
	if b < histExact {
		return int64(b)
	}
	lo := int64(1) << (b - histExact + 7)
	return lo + lo/2
}

// Observe records one sample. Negative samples count as zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histBucket(v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples observed so far.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Mean returns the average sample without building a snapshot, or 0 when
// empty. The count and sum are read separately, so under concurrent
// observers the result is approximate by at most a sample — fine for the
// advisory consumers (the query planner) it exists for.
func (h *Histogram) Mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Decay halves every bucket count, the sample count and the sum:
// exponential forgetting for histograms that feed a live decision (the
// query planner's per-plan latency buckets) rather than a cumulative
// report, so old regimes stop dominating the mean. Concurrent Observes
// interleave with the halving of each word independently, so a decayed
// histogram is approximate — never use it on the cumulative metrics the
// registry reports.
func (h *Histogram) Decay() {
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			h.counts[i].Add(-(c - c/2))
		}
	}
	if n := h.n.Load(); n > 0 {
		h.n.Add(-(n - n/2))
	}
	if s := h.sum.Load(); s > 0 {
		h.sum.Add(-(s - s/2))
	}
}

// Snapshot reads the histogram without locking. Concurrent observers may
// land between bucket reads, so a snapshot is monotonic rather than a
// perfect point-in-time cut — the usual metrics contract.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.n.Load(),
		Sum:   h.sum.Load(),
	}
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			if s.Counts == nil {
				s.Counts = make(map[int]int64, 8)
			}
			s.Counts[i] = c
		}
	}
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram's buckets,
// indexed by bucket number (sparse: empty buckets are absent).
type HistogramSnapshot struct {
	Counts map[int]int64 `json:"counts,omitempty"`
	Count  int64         `json:"count"`
	Sum    int64         `json:"sum"`
}

// Sub returns the per-bucket difference s - prev, clamped at zero. It is
// how a caller turns two cumulative snapshots into the distribution of
// just the interval between them.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{}
	for b, c := range s.Counts {
		d := c - prev.Counts[b]
		if d <= 0 {
			continue
		}
		if out.Counts == nil {
			out.Counts = make(map[int]int64, len(s.Counts))
		}
		out.Counts[b] = d
		out.Count += d
	}
	if d := s.Sum - prev.Sum; d > 0 {
		out.Sum = d
	}
	return out
}

// Merge returns the per-bucket sum of the two snapshots.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	if len(s.Counts)+len(o.Counts) > 0 {
		out.Counts = make(map[int]int64, len(s.Counts)+len(o.Counts))
		for b, c := range s.Counts {
			out.Counts[b] += c
		}
		for b, c := range o.Counts {
			out.Counts[b] += c
		}
	}
	return out
}

// Percentile returns the value at or below which p percent of the
// samples fall (p in [0,100]): exact for values below 128, the bucket
// midpoint above. Zero when the snapshot is empty.
func (s HistogramSnapshot) Percentile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(float64(s.Count)*p/100 + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for b := 0; b < histBucketCount; b++ {
		c, ok := s.Counts[b]
		if !ok {
			continue
		}
		seen += c
		if seen >= rank {
			return histValue(b)
		}
	}
	return 0
}

// Mean returns the average sample, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
