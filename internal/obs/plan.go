package obs

import "sync/atomic"

// PlanCounters tallies the query layer's planning decisions: how many
// adaptive range queries ran serially, how many in parallel, and how many
// skipped planning entirely on a plan-cache hit. The counters are plain
// atomics written on the client-side dispatch path (no peer is involved in
// planning), so they live beside the registry rather than in any peer's
// block.
type PlanCounters struct {
	serial    atomic.Int64
	parallel  atomic.Int64
	cacheHits atomic.Int64
}

// Serial records one adaptive query dispatched as a serial chain walk.
func (p *PlanCounters) Serial() { p.serial.Add(1) }

// Parallel records one adaptive query dispatched as a parallel scatter.
func (p *PlanCounters) Parallel() { p.parallel.Add(1) }

// CacheHit records one query whose span estimate and owner lookup were
// answered from the plan cache.
func (p *PlanCounters) CacheHit() { p.cacheHits.Add(1) }

// Snapshot returns the current counter values.
func (p *PlanCounters) Snapshot() PlanSnapshot {
	return PlanSnapshot{
		Serial:    p.serial.Load(),
		Parallel:  p.parallel.Load(),
		CacheHits: p.cacheHits.Load(),
	}
}

// PlanSnapshot is a point-in-time copy of the planning counters.
type PlanSnapshot struct {
	Serial    int64 `json:"serial"`
	Parallel  int64 `json:"parallel"`
	CacheHits int64 `json:"cache_hits"`
}
