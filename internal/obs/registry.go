package obs

import "sync/atomic"

// counterLine is one cache-line-padded counter, so that adjacent
// counters in a block — or the tail of one peer's block and the head of
// the next — never share a line. The padding trades memory (64 bytes per
// counter) for the same property msgCounter in internal/p2p buys with
// shards: concurrent writers to *different* counters never serialise on
// the cache-coherence protocol.
type counterLine struct {
	n atomic.Int64
	_ [56]byte
}

// PeerMetrics is one peer's slice of the metrics registry. The registry
// is sharded the way the overlay itself is: each peer owns a block, the
// hot per-kind delivery counters inside it are cache-line padded, and
// writers touch only their own peer's block — the same contention the
// peer's inbox already imposes. Everything is a typed atomic, so a
// snapshot is a plain sweep with no locks and writers are never blocked.
//
// The spill gauges (SetSpillDepth) are written under the owning peer's
// spill lock, which makes the high-water max race-free; every other
// method is safe for concurrent use by any goroutine.
type PeerMetrics struct {
	delivered []counterLine // one padded counter per message kind
	spilled   []atomic.Int64
	refused   []atomic.Int64

	stale          atomic.Int64
	spillDepth     atomic.Int64
	spillHighWater atomic.Int64

	queueWait  Histogram
	handleTime Histogram
	spillDrain Histogram
}

// NewPeerMetrics returns a block with counters for nkinds message kinds.
func NewPeerMetrics(nkinds int) *PeerMetrics {
	return &PeerMetrics{
		delivered: make([]counterLine, nkinds),
		spilled:   make([]atomic.Int64, nkinds),
		refused:   make([]atomic.Int64, nkinds),
	}
}

// Delivered counts one message of the given kind accepted into the
// peer's inbox or spill queue.
func (m *PeerMetrics) Delivered(kind int) { m.delivered[kind].n.Add(1) }

// Spilled counts one message of the given kind that overflowed the inbox
// into the spill queue (it is also counted as delivered).
func (m *PeerMetrics) Spilled(kind int) { m.spilled[kind].Add(1) }

// Refused counts one message of the given kind terminated with an error
// at this peer.
func (m *PeerMetrics) Refused(kind int) { m.refused[kind].Add(1) }

// StaleRoute counts one direct-routed request that reached this peer
// after its key's ownership had moved.
func (m *PeerMetrics) StaleRoute() { m.stale.Add(1) }

// StaleRoutes returns the stale-route count.
func (m *PeerMetrics) StaleRoutes() int64 { return m.stale.Load() }

// SetSpillDepth publishes the spill queue's current length and advances
// the high-water mark. Callers must serialise calls per block (the p2p
// layer calls it under the peer's spill lock).
func (m *PeerMetrics) SetSpillDepth(n int64) {
	m.spillDepth.Store(n)
	if n > m.spillHighWater.Load() {
		m.spillHighWater.Store(n)
	}
}

// ObserveQueueWait records how long one message sat queued (inbox or
// spill) before handling began, in nanoseconds.
func (m *PeerMetrics) ObserveQueueWait(ns int64) { m.queueWait.Observe(ns) }

// ObserveHandle records how long handling one message took, in
// nanoseconds (forwarding included — it is work this peer performed).
func (m *PeerMetrics) ObserveHandle(ns int64) { m.handleTime.Observe(ns) }

// ObserveSpillDrain records how long a spill batch waited between the
// queue going non-empty and the serving goroutine starting to drain it.
func (m *PeerMetrics) ObserveSpillDrain(ns int64) { m.spillDrain.Observe(ns) }

// Absorb folds another block's totals into this one. It is used to
// preserve a retired peer's counts in the cluster aggregate after the
// peer object itself is dropped; the caller guarantees the absorbed
// block no longer receives traffic.
func (m *PeerMetrics) Absorb(o *PeerMetrics) {
	for i := range o.delivered {
		if n := o.delivered[i].n.Load(); n != 0 {
			m.delivered[i].n.Add(n)
		}
	}
	for i := range o.spilled {
		if n := o.spilled[i].Load(); n != 0 {
			m.spilled[i].Add(n)
		}
	}
	for i := range o.refused {
		if n := o.refused[i].Load(); n != 0 {
			m.refused[i].Add(n)
		}
	}
	m.stale.Add(o.stale.Load())
	absorbHist(&m.queueWait, &o.queueWait)
	absorbHist(&m.handleTime, &o.handleTime)
	absorbHist(&m.spillDrain, &o.spillDrain)
}

func absorbHist(dst, src *Histogram) {
	for i := range src.counts {
		if c := src.counts[i].Load(); c != 0 {
			dst.counts[i].Add(c)
		}
	}
	dst.n.Add(src.n.Load())
	dst.sum.Add(src.sum.Load())
}

// PeerSnapshot is one peer's metrics at a point in time. Counter maps
// are keyed by message-kind name and omit zero entries.
type PeerSnapshot struct {
	Peer           int64            `json:"peer"`
	Delivered      map[string]int64 `json:"delivered,omitempty"`
	Spilled        map[string]int64 `json:"spilled,omitempty"`
	Refused        map[string]int64 `json:"refused,omitempty"`
	StaleRoutes    int64            `json:"stale_routes,omitempty"`
	InboxDepth     int              `json:"inbox_depth"`
	SpillDepth     int64            `json:"spill_depth"`
	SpillHighWater int64            `json:"spill_high_water"`

	QueueWait  HistogramSnapshot `json:"queue_wait_ns"`
	HandleTime HistogramSnapshot `json:"handle_ns"`
	SpillDrain HistogramSnapshot `json:"spill_drain_ns"`
}

// Snapshot reads the block without locking. kindName maps a kind index
// to its display name.
func (m *PeerMetrics) Snapshot(peer int64, kindName func(int) string) PeerSnapshot {
	s := PeerSnapshot{
		Peer:           peer,
		StaleRoutes:    m.stale.Load(),
		SpillDepth:     m.spillDepth.Load(),
		SpillHighWater: m.spillHighWater.Load(),
		QueueWait:      m.queueWait.Snapshot(),
		HandleTime:     m.handleTime.Snapshot(),
		SpillDrain:     m.spillDrain.Snapshot(),
	}
	for i := range m.delivered {
		if n := m.delivered[i].n.Load(); n != 0 {
			if s.Delivered == nil {
				s.Delivered = make(map[string]int64, 8)
			}
			s.Delivered[kindName(i)] = n
		}
	}
	for i := range m.spilled {
		if n := m.spilled[i].Load(); n != 0 {
			if s.Spilled == nil {
				s.Spilled = make(map[string]int64, 4)
			}
			s.Spilled[kindName(i)] = n
		}
	}
	for i := range m.refused {
		if n := m.refused[i].Load(); n != 0 {
			if s.Refused == nil {
				s.Refused = make(map[string]int64, 4)
			}
			s.Refused[kindName(i)] = n
		}
	}
	return s
}

// ClusterMetrics aggregates every peer's snapshot plus the totals of
// peers already retired from the topology. The convenience percentile
// fields are in microseconds, precomputed so a JSON dump is readable
// without post-processing.
type ClusterMetrics struct {
	Peers []PeerSnapshot `json:"peers"`

	Delivered   map[string]int64 `json:"delivered,omitempty"`
	Spilled     map[string]int64 `json:"spilled,omitempty"`
	Refused     map[string]int64 `json:"refused,omitempty"`
	StaleRoutes int64            `json:"stale_routes"`

	QueueWait  HistogramSnapshot `json:"queue_wait_ns"`
	HandleTime HistogramSnapshot `json:"handle_ns"`
	SpillDrain HistogramSnapshot `json:"spill_drain_ns"`

	QueueWaitP50us  float64 `json:"queue_wait_p50_us"`
	QueueWaitP99us  float64 `json:"queue_wait_p99_us"`
	HandleTimeP50us float64 `json:"handle_p50_us"`
	HandleTimeP99us float64 `json:"handle_p99_us"`

	// Plans tallies the query layer's planning decisions (see PlanCounters);
	// filled in by the cluster after the per-peer aggregation, since
	// planning happens client-side and touches no peer.
	Plans PlanSnapshot `json:"plans"`
}

// BuildClusterMetrics folds per-peer snapshots (live peers plus the
// retired aggregate) into cluster totals.
func BuildClusterMetrics(peers []PeerSnapshot, retired PeerSnapshot) ClusterMetrics {
	cm := ClusterMetrics{Peers: peers}
	add := func(dst *map[string]int64, src map[string]int64) {
		for k, v := range src {
			if *dst == nil {
				*dst = make(map[string]int64, 8)
			}
			(*dst)[k] += v
		}
	}
	fold := func(s PeerSnapshot) {
		add(&cm.Delivered, s.Delivered)
		add(&cm.Spilled, s.Spilled)
		add(&cm.Refused, s.Refused)
		cm.StaleRoutes += s.StaleRoutes
		cm.QueueWait = cm.QueueWait.Merge(s.QueueWait)
		cm.HandleTime = cm.HandleTime.Merge(s.HandleTime)
		cm.SpillDrain = cm.SpillDrain.Merge(s.SpillDrain)
	}
	for _, s := range peers {
		fold(s)
	}
	fold(retired)
	cm.QueueWaitP50us = float64(cm.QueueWait.Percentile(50)) / 1e3
	cm.QueueWaitP99us = float64(cm.QueueWait.Percentile(99)) / 1e3
	cm.HandleTimeP50us = float64(cm.HandleTime.Percentile(50)) / 1e3
	cm.HandleTimeP99us = float64(cm.HandleTime.Percentile(99)) / 1e3
	return cm
}
