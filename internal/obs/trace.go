package obs

import (
	"sync"
	"sync/atomic"
)

// Hop is one step of a traced request: which peer handled it, as what
// kind, at which tree level, and what it cost there.
type Hop struct {
	Peer        int64  `json:"peer"`
	Kind        string `json:"kind"`
	Level       int    `json:"level"`
	QueueWaitNs int64  `json:"queue_wait_ns"`
	HandleNs    int64  `json:"handle_ns"`
}

// Trace is the context a sampled request carries through the overlay.
// Hops are appended in handling order: a peer records its hop before it
// forwards the request, so the chain reads exactly as the message
// travelled. The mutex exists for the one unavoidable overlap — a peer
// back-filling its hop's handle time while the next peer appends — and
// is only ever touched for sampled requests.
type Trace struct {
	mu   sync.Mutex
	hops []Hop
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Append adds a hop and returns its index, for SetHandleNs.
func (t *Trace) Append(h Hop) int {
	t.mu.Lock()
	t.hops = append(t.hops, h)
	i := len(t.hops) - 1
	t.mu.Unlock()
	return i
}

// SetHandleNs back-fills the handle time of the hop at index i, which is
// only known once handling (forwarding included) has finished. A hop
// whose request was answered just before the recorder got to write may
// be read with HandleNs still zero; readers tolerate that.
func (t *Trace) SetHandleNs(i int, ns int64) {
	t.mu.Lock()
	if i >= 0 && i < len(t.hops) {
		t.hops[i].HandleNs = ns
	}
	t.mu.Unlock()
}

// Hops returns a copy of the recorded hops.
func (t *Trace) Hops() []Hop {
	t.mu.Lock()
	out := make([]Hop, len(t.hops))
	copy(out, t.hops)
	t.mu.Unlock()
	return out
}

// Sampler decides which requests carry a trace: 1-in-N, with N settable
// at runtime. With sampling off (N <= 0, the default) Sample is a single
// atomic load and never allocates — the zero-cost path the direct-route
// allocation guarantee depends on.
type Sampler struct {
	every atomic.Int64
	n     atomic.Int64
}

// SetEvery sets the sampling rate to 1-in-n; n <= 0 disables sampling.
func (s *Sampler) SetEvery(n int64) { s.every.Store(n) }

// Every returns the current rate (0 when disabled).
func (s *Sampler) Every() int64 {
	if e := s.every.Load(); e > 0 {
		return e
	}
	return 0
}

// Sample reports whether the next request should carry a trace.
func (s *Sampler) Sample() bool {
	e := s.every.Load()
	if e <= 0 {
		return false
	}
	return s.n.Add(1)%e == 0
}

// TraceRing keeps the most recent completed traces in a fixed-size ring.
type TraceRing struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	n    int
}

// NewTraceRing returns a ring holding up to size traces.
func NewTraceRing(size int) *TraceRing {
	if size < 1 {
		size = 1
	}
	return &TraceRing{buf: make([]*Trace, size)}
}

// Add records a completed trace, evicting the oldest when full.
func (r *TraceRing) Add(t *Trace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the retained traces' hops, oldest first.
func (r *TraceRing) Snapshot() [][]Hop {
	r.mu.Lock()
	traces := make([]*Trace, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		traces = append(traces, r.buf[(start+i)%len(r.buf)])
	}
	r.mu.Unlock()
	out := make([][]Hop, len(traces))
	for i, t := range traces {
		out[i] = t.Hops()
	}
	return out
}
