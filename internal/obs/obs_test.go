package obs

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	// Hop-count-sized samples must come back exact, not bucketed.
	for _, v := range []int64{1, 2, 2, 3, 3, 3, 7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Percentile(50); got != 3 {
		t.Fatalf("p50 = %d, want 3", got)
	}
	if got := s.Percentile(100); got != 7 {
		t.Fatalf("p100 = %d, want 7", got)
	}
	if s.Count != 7 || s.Sum != 21 {
		t.Fatalf("count/sum = %d/%d, want 7/21", s.Count, s.Sum)
	}
}

func TestHistogramLargeValuesBucketed(t *testing.T) {
	var h Histogram
	h.Observe(1_000_000) // ~1ms in ns
	s := h.Snapshot()
	p := s.Percentile(99)
	// Power-of-two bucket [2^19, 2^20) has midpoint 786432.
	if p < 500_000 || p > 2_000_000 {
		t.Fatalf("p99 = %d, want within 2x of 1e6", p)
	}
	if h.Snapshot().Percentile(50) != p {
		t.Fatalf("single-sample percentiles differ")
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	s := h.Snapshot()
	if got := s.Percentile(50); got != 0 {
		t.Fatalf("p50 = %d, want 0", got)
	}
}

func TestHistogramSubAndMerge(t *testing.T) {
	var h Histogram
	h.Observe(4)
	before := h.Snapshot()
	h.Observe(4)
	h.Observe(10)
	delta := h.Snapshot().Sub(before)
	if delta.Count != 2 {
		t.Fatalf("delta count = %d, want 2", delta.Count)
	}
	if got := delta.Percentile(100); got != 10 {
		t.Fatalf("delta p100 = %d, want 10", got)
	}
	merged := delta.Merge(before)
	if merged.Count != 3 {
		t.Fatalf("merged count = %d, want 3", merged.Count)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i % 100)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestSamplerRate(t *testing.T) {
	var s Sampler
	for i := 0; i < 100; i++ {
		if s.Sample() {
			t.Fatal("sampler fired while disabled")
		}
	}
	s.SetEvery(4)
	hits := 0
	for i := 0; i < 400; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-4 over 400 = %d hits, want 100", hits)
	}
	if s.Every() != 4 {
		t.Fatalf("Every = %d, want 4", s.Every())
	}
}

func TestTraceAppendAndBackfill(t *testing.T) {
	tr := NewTrace()
	i := tr.Append(Hop{Peer: 1, Kind: "GET", Level: 2, QueueWaitNs: 10})
	tr.Append(Hop{Peer: 2, Kind: "GET", Level: 3})
	tr.SetHandleNs(i, 42)
	hops := tr.Hops()
	if len(hops) != 2 || hops[0].HandleNs != 42 || hops[1].Peer != 2 {
		t.Fatalf("unexpected hops: %+v", hops)
	}
}

func TestTraceRingEvictsOldest(t *testing.T) {
	r := NewTraceRing(2)
	for peer := int64(1); peer <= 3; peer++ {
		tr := NewTrace()
		tr.Append(Hop{Peer: peer})
		r.Add(tr)
	}
	snaps := r.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("retained %d traces, want 2", len(snaps))
	}
	if snaps[0][0].Peer != 2 || snaps[1][0].Peer != 3 {
		t.Fatalf("wrong traces retained: %+v", snaps)
	}
}

func TestJournalRingAndSeq(t *testing.T) {
	j := NewJournal(2)
	for i := 0; i < 3; i++ {
		ev := Event{Op: "join", Start: time.Now(), Outcome: "ok"}
		ev.AddPhase("prepare", time.Millisecond)
		j.Record(ev)
	}
	evs := j.Events()
	if len(evs) != 2 {
		t.Fatalf("retained %d events, want 2", len(evs))
	}
	if evs[0].Seq != 2 || evs[1].Seq != 3 {
		t.Fatalf("seqs = %d,%d, want 2,3", evs[0].Seq, evs[1].Seq)
	}
	if len(evs[1].Phases) != 1 || evs[1].Phases[0].Name != "prepare" {
		t.Fatalf("phases not retained: %+v", evs[1].Phases)
	}
}

func TestPeerMetricsSnapshotAndAbsorb(t *testing.T) {
	name := func(i int) string { return map[int]string{0: "GET", 1: "PUT"}[i] }
	m := NewPeerMetrics(2)
	m.Delivered(0)
	m.Delivered(0)
	m.Delivered(1)
	m.Spilled(1)
	m.Refused(0)
	m.StaleRoute()
	m.SetSpillDepth(5)
	m.SetSpillDepth(2)
	m.ObserveQueueWait(100)
	m.ObserveHandle(200)
	m.ObserveSpillDrain(300)

	s := m.Snapshot(7, name)
	if s.Peer != 7 || s.Delivered["GET"] != 2 || s.Delivered["PUT"] != 1 {
		t.Fatalf("delivered wrong: %+v", s)
	}
	if s.Spilled["PUT"] != 1 || s.Refused["GET"] != 1 || s.StaleRoutes != 1 {
		t.Fatalf("spilled/refused/stale wrong: %+v", s)
	}
	if s.SpillDepth != 2 || s.SpillHighWater != 5 {
		t.Fatalf("spill gauges wrong: %+v", s)
	}
	if s.QueueWait.Count != 1 || s.HandleTime.Count != 1 || s.SpillDrain.Count != 1 {
		t.Fatalf("histograms wrong: %+v", s)
	}

	agg := NewPeerMetrics(2)
	agg.Absorb(m)
	agg.Absorb(m)
	as := agg.Snapshot(-1, name)
	if as.Delivered["GET"] != 4 || as.StaleRoutes != 2 || as.QueueWait.Count != 2 {
		t.Fatalf("absorb wrong: %+v", as)
	}

	cm := BuildClusterMetrics([]PeerSnapshot{s}, as)
	if cm.Delivered["GET"] != 6 || cm.StaleRoutes != 3 {
		t.Fatalf("cluster totals wrong: %+v", cm)
	}
	if cm.QueueWait.Count != 3 {
		t.Fatalf("cluster queue-wait count = %d, want 3", cm.QueueWait.Count)
	}
}
