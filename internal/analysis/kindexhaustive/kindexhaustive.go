// Package kindexhaustive enforces that switches over message-kind-style
// enums cannot silently drop a newly added constant.
//
// The invariant: the serve loop's dispatch (and every other switch over the
// p2p `kind` type, or any enum declared in the package under analysis) must
// either cover every declared constant of the type or carry an explicit
// non-empty default arm, so that adding a message kind forces a decision at
// every dispatch site instead of a request vanishing without a reply. An
// empty default — `default:` with no body — is flagged too: it is exactly
// the silent drop the check exists to prevent, dressed up as handling.
//
// Switches that are deliberately partial filters (a membership test over a
// subset of kinds, falling through to further handling) opt out per site
// with `//batonvet:ignore kindexhaustive <reason>`.
package kindexhaustive

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"baton/internal/analysis"
)

// Analyzer is the kindexhaustive check.
var Analyzer = &analysis.Analyzer{
	Name: "kindexhaustive",
	Doc:  "switches over package-local enums must cover every constant or default loudly",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

// enumConstants returns the named constants of typ declared in its defining
// package, or nil when typ is not an enum this analyzer cares about: a
// defined integer type, declared in the package under analysis, with at
// least two constants. Restricting to the current package keeps the check
// sharp — the declaring package is where a new constant lands, and its own
// switches are the ones a forgotten arm breaks.
func enumConstants(pass *analysis.Pass, typ types.Type) (*types.Named, []*types.Const) {
	named, ok := typ.(*types.Named)
	if !ok {
		return nil, nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil, nil
	}
	if named.Obj().Pkg() != pass.Pkg {
		return nil, nil
	}
	scope := pass.Pkg.Scope()
	var consts []*types.Const
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			consts = append(consts, c)
		}
	}
	if len(consts) < 2 {
		return nil, nil
	}
	return named, consts
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tagType := pass.TypesInfo.TypeOf(sw.Tag)
	if tagType == nil {
		return
	}
	named, consts := enumConstants(pass, tagType)
	if named == nil {
		return
	}

	covered := make(map[string]bool)
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, expr := range cc.List {
			if tv, ok := pass.TypesInfo.Types[expr]; ok && tv.Value != nil {
				covered[constKey(tv.Value)] = true
			}
		}
	}

	var missing []string
	for _, c := range consts {
		if !covered[constKey(c.Val())] {
			missing = append(missing, c.Name())
		}
	}
	sort.Strings(missing)

	switch {
	case len(missing) == 0:
		// Exhaustive. An empty default underneath full coverage is dead
		// code, not a drop; leave that to other tools.
	case defaultClause == nil:
		pass.Reportf(sw.Switch,
			"switch over %s is missing cases %s and has no default: a new %s constant would be silently dropped",
			named.Obj().Name(), strings.Join(missing, ", "), named.Obj().Name())
	case len(defaultClause.Body) == 0:
		pass.Reportf(defaultClause.Case,
			"switch over %s has an empty default: cases %s (and any future constant) are silently dropped — fail loudly instead",
			named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// constKey folds a constant value to a comparable string so two spellings
// of the same value count as one case.
func constKey(v constant.Value) string { return v.ExactString() }
