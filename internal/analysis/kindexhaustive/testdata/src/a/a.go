// Fixture for kindexhaustive: switches over the local enum `kind` must be
// exhaustive or default loudly.
package a

import "fmt"

type kind int

const (
	kindGet kind = iota
	kindPut
	kindDelete
	kindRange
)

// otherEnum has only one constant: not an enum the analyzer cares about.
type otherEnum int

const onlyValue otherEnum = 0

// exhaustive covers every constant: fine without a default.
func exhaustive(k kind) string {
	switch k {
	case kindGet:
		return "get"
	case kindPut:
		return "put"
	case kindDelete:
		return "delete"
	case kindRange:
		return "range"
	}
	return ""
}

// loudDefault misses cases but fails loudly: fine.
func loudDefault(k kind) string {
	switch k {
	case kindGet:
		return "get"
	default:
		panic(fmt.Sprintf("unhandled kind %d", int(k)))
	}
}

// missingNoDefault drops kindDelete and kindRange on the floor.
func missingNoDefault(k kind) string {
	switch k { // want `missing cases kindDelete, kindRange and has no default`
	case kindGet:
		return "get"
	case kindPut:
		return "put"
	}
	return ""
}

// emptyDefault dresses the silent drop up as handling.
func emptyDefault(k kind) string {
	switch k {
	case kindGet:
		return "get"
	default: // want `empty default: cases kindDelete, kindPut, kindRange .* silently dropped`
	}
	return ""
}

// ignored is a deliberate partial filter, opted out per site.
func ignored(k kind) bool {
	//batonvet:ignore kindexhaustive deliberate membership test, falls through to caller
	switch k {
	case kindGet, kindRange:
		return true
	}
	return false
}

// grouped covers constants in grouped case lists: fine.
func grouped(k kind) bool {
	switch k {
	case kindGet, kindPut:
		return true
	case kindDelete, kindRange:
		return false
	}
	return false
}

// tagInit handles the init-statement form too.
func tagInit(f func() kind) string {
	switch k := f(); k { // want `missing cases kindPut, kindRange and has no default`
	case kindGet:
		return "get"
	case kindDelete:
		return "delete"
	}
	return ""
}

// childSlot mirrors the fanout-parametric overlay's child-slot indices: slot
// 0 is the leftmost subtree, slot fanout-1 (here 3) the rightmost, and the
// middle slots only exist at fanouts above two. A dispatch over slots that
// was written for the binary tree and misses the middle slots is exactly the
// bug class the m-ary refactor introduces.
type childSlot int

const (
	slotLeftmost  childSlot = 0
	slotMiddleLo  childSlot = 1
	slotMiddleHi  childSlot = 2
	slotRightmost childSlot = 3
)

// binaryOnlySlots handles the two slots the binary tree has and silently
// drops the middle slots a larger fanout introduces.
func binaryOnlySlots(s childSlot) string {
	switch s { // want `missing cases slotMiddleHi, slotMiddleLo and has no default`
	case slotLeftmost:
		return "left"
	case slotRightmost:
		return "right"
	}
	return ""
}

// fanoutAwareSlots groups the middle slots and covers every constant: fine.
func fanoutAwareSlots(s childSlot) string {
	switch s {
	case slotLeftmost:
		return "left"
	case slotMiddleLo, slotMiddleHi:
		return "middle"
	case slotRightmost:
		return "right"
	}
	return ""
}

// slotsLoudDefault dispatches on the extreme slots and fails loudly for any
// middle slot (present or future): fine.
func slotsLoudDefault(s childSlot) string {
	switch s {
	case slotLeftmost:
		return "left"
	case slotRightmost:
		return "right"
	default:
		panic(fmt.Sprintf("unhandled child slot %d", int(s)))
	}
}

// singleConstant is not checked: one constant is a marker, not an enum.
func singleConstant(o otherEnum) bool {
	switch o {
	case onlyValue:
		return true
	}
	return false
}

// plainInt is not checked: untyped/basic switch tags are out of scope.
func plainInt(i int) bool {
	switch i {
	case 0:
		return true
	}
	return false
}

// --- codec-boundary shape: the enum arrives as a raw wire byte and the
// switch tag is a conversion, as in the p2p framing dispatch ---

type frameKind uint8

const (
	frameRequest frameKind = 1
	frameReply   frameKind = 2
	frameControl frameKind = 3
)

// decodeDispatch converts the header byte in the tag: still a switch over
// frameKind, still checked, and exhaustive here.
func decodeDispatch(header byte) string {
	switch frameKind(header) {
	case frameRequest:
		return "request"
	case frameReply:
		return "reply"
	case frameControl:
		return "control"
	}
	return ""
}

// decodeDropsControl converts the header byte but forgot the control arm: a
// new (or existing) frame kind vanishes without a reply.
func decodeDropsControl(header byte) string {
	switch frameKind(header) { // want `missing cases frameControl and has no default`
	case frameRequest:
		return "request"
	case frameReply:
		return "reply"
	}
	return ""
}

// encodeLoudDefault is the encoder's shape: an unencodable kind is a
// programming error, surfaced loudly rather than encoded as garbage.
func encodeLoudDefault(k frameKind) byte {
	switch k {
	case frameRequest, frameReply, frameControl:
		return byte(k)
	default:
		panic(fmt.Sprintf("unencodable frame kind %d", int(k)))
	}
}
