package kindexhaustive_test

import (
	"testing"

	"baton/internal/analysis/analysistest"
	"baton/internal/analysis/kindexhaustive"
)

func TestKindExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", "a", kindexhaustive.Analyzer)
}
