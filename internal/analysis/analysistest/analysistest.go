// Package analysistest runs an analyzer over fixture packages and compares
// its findings against expectations written in the fixture source — the
// dependency-free counterpart of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live in the analyzer's testdata directory using the same layout
// as the real harness:
//
//	testdata/src/<importpath>/*.go
//
// An expectation is a comment on the offending line:
//
//	x := t.peers // want `mutation of shared \*topology`
//
// The backquoted string is a regular expression matched against the
// diagnostic message. Every reported diagnostic must match a want on its
// line and every want must be matched by a diagnostic — over-reporting and
// under-reporting both fail, which is what makes a green fixture (no wants,
// no findings) a real test.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"baton/internal/analysis"
)

// wantRe extracts the expectation regexp from a trailing comment.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

// Run loads the fixture package at testdata/src/<path>, runs the analyzer,
// and reports any mismatch between findings and // want comments as test
// errors.
func Run(t *testing.T, testdata, path string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadFixture(testdata+"/src", path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags, err := analysis.RunPass(pkg, a)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, path, err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	key := func(pos token.Position) string {
		return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				m := wantRe.FindStringSubmatch(cm.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(cm.Pos())
				wants[key(pos)] = append(wants[key(pos)], &want{re: re})
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for _, w := range wants[key(pos)] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched, found = true, true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", shortPos(pos), d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", shortKey(k), w.re)
			}
		}
	}
}

// shortPos trims the fixture path down to its final elements for readable
// failures.
func shortPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d:%d", shortName(pos.Filename), pos.Line, pos.Column)
}

func shortKey(k string) string {
	i := strings.LastIndexByte(k, ':')
	return fmt.Sprintf("%s:%s", shortName(k[:i]), k[i+1:])
}

func shortName(name string) string {
	parts := strings.Split(name, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}
