package atomicfield_test

import (
	"testing"

	"baton/internal/analysis/analysistest"
	"baton/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", "a", atomicfield.Analyzer)
}
