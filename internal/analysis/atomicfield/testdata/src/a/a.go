// Fixture for atomicfield: a field touched by sync/atomic anywhere must be
// touched by sync/atomic everywhere.
package a

import "sync/atomic"

type counter struct {
	hits int64
	cold int64
}

// Inc and Snapshot establish hits as an atomic field.
func (c *counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) Snapshot() int64 {
	return atomic.LoadInt64(&c.hits)
}

// Reset writes the atomic field directly: the torn-counter race.
func (c *counter) Reset() {
	c.hits = 0 // want `non-atomic access to hits`
}

// Report reads it directly: same race from the load side.
func (c *counter) Report() int64 {
	return c.hits // want `non-atomic access to hits`
}

// Drain compound-assigns through it: still a plain read-modify-write.
func (c *counter) Drain() {
	c.hits-- // want `non-atomic access to hits`
}

// Cold is never touched atomically: plain access everywhere is fine.
func (c *counter) Cold() int64 {
	c.cold++
	return c.cold
}

// newCounter builds an unpublished value: composite-literal init and the
// pre-publication write are out of the data-race window by construction —
// the literal key is not flagged, the write carries a reviewed directive.
func newCounter(seed int64) *counter {
	c := &counter{cold: seed}
	//batonvet:ignore atomicfield value unpublished until returned
	c.hits = seed
	return c
}
