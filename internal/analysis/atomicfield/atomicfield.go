// Package atomicfield enforces all-or-nothing atomicity for struct fields:
// a field passed to sync/atomic functions anywhere in the package must be
// accessed through sync/atomic everywhere in the package.
//
// Mixing the two access modes is the classic torn-counter bug — a plain
// `c.hits = 0` racing atomic.AddInt64(&c.hits, 1) is a data race the race
// detector only catches when the schedule cooperates. The analyzer catches
// it structurally: pass one collects every field whose address is taken in a
// sync/atomic call (the "atomic fields"); pass two flags every other
// selection of those fields.
//
// Typed atomics (atomic.Int64, atomic.Pointer[T]) are immune by
// construction — every access is a method call — which is why the rest of
// this codebase prefers them. The analyzer exists for the raw-function style
// so that one never creeps back in half-converted.
//
// Composite-literal initialisation (`counter{hits: 3}`) is not flagged: the
// value is unpublished while it is being built.
package atomicfield

import (
	"go/ast"
	"go/types"

	"baton/internal/analysis"
)

// Analyzer is the atomicfield check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	atomicFields := make(map[*types.Var]bool) // fields used in sync/atomic calls
	sanctioned := make(map[*ast.SelectorExpr]bool)

	// Pass one: find `atomic.F(&x.f, ...)` arguments and record f.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := arg.(*ast.UnaryExpr)
				if !ok || unary.Op.String() != "&" {
					continue
				}
				sel, ok := unary.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld := fieldOf(pass, sel); fld != nil {
					atomicFields[fld] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass two: every other selection of an atomic field is a torn access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			fld := fieldOf(pass, sel)
			if fld == nil || !atomicFields[fld] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"non-atomic access to %s, which is accessed with sync/atomic elsewhere: use the atomic API on every access",
				fieldName(fld))
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a function from sync/atomic.
// Resolution goes through the type-checker, so aliased imports count and
// same-named local packages do not.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "sync/atomic"
}

// fieldOf resolves sel to the struct field it selects, or nil when sel is
// not a field selection (method, package member, ...).
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	return selection.Obj().(*types.Var)
}

// fieldName names a field for the diagnostic.
func fieldName(fld *types.Var) string {
	return fld.Name()
}
