package topoimmutable_test

import (
	"testing"

	"baton/internal/analysis/analysistest"
	"baton/internal/analysis/topoimmutable"
)

func TestTopoImmutable(t *testing.T) {
	analysistest.Run(t, "testdata", "a", topoimmutable.Analyzer)
}
