// Package topoimmutable enforces the copy-on-write discipline for topology
// snapshots: a *topology obtained from topo.Load() is shared with every
// concurrent reader and must never be written through. Mutation is only
// legal on a fresh value — a clone() result or a composite literal — which
// becomes shared the moment it is published via Store.
//
// The analyzer is generic over "snapshot types": any named struct T declared
// in the package under analysis that has a clone() *T method and is read
// through sync/atomic's Pointer[T].Load(). Per function it runs a small
// intraprocedural taint pass:
//
//   - shared:  the result of Pointer[T].Load(), and any *T variable bound to
//     one (rebinding a variable to clone() flips it back to fresh);
//   - fresh:   clone() results, composite literals, and anything the pass
//     cannot prove shared (function parameters included — callers own the
//     proof at the Load site).
//
// An assignment, IncDec or compound op whose left-hand side reaches a shared
// root through selectors, indexing and derefs is reported. The chain stops
// at a pointer to any non-snapshot type: an interior *peer is a separately
// synchronised object with its own rules, not part of the snapshot's
// immutable memory. Interior maps and slices ARE part of it — t.peers[k] = p
// through a shared t is exactly the bug this check exists for.
//
// Known limitation, by design: the pass is intraprocedural, so passing a
// Load() result to a helper that mutates it escapes the check. The
// convention that makes this acceptable is that mutation helpers take the
// clone (see publishTopology and its callers).
package topoimmutable

import (
	"go/ast"
	"go/types"

	"baton/internal/analysis"
)

// Analyzer is the topoimmutable check.
var Analyzer = &analysis.Analyzer{
	Name: "topoimmutable",
	Doc:  "no writes through a snapshot pointer obtained from Load(); clone before mutating",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// checkFunc runs the taint pass over one function, nested literals
// included — a closure capturing a shared snapshot keeps its taint.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	shared := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range stmt.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					// A plain variable (re)binding: track taint when the
					// variable holds a snapshot pointer.
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil && isSnapshotPtr(pass, obj.Type()) {
						if i < len(stmt.Rhs) && len(stmt.Lhs) == len(stmt.Rhs) {
							shared[obj] = exprShared(pass, shared, stmt.Rhs[i])
						}
					}
					continue
				}
				checkWrite(pass, shared, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, shared, stmt.X)
		}
		return true
	})
}

// checkWrite reports lhs when the write lands in shared snapshot memory.
func checkWrite(pass *analysis.Pass, shared map[types.Object]bool, lhs ast.Expr) {
	root := chainRoot(pass, lhs)
	if root == nil {
		return
	}
	bad := false
	switch r := root.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.ObjectOf(r); obj != nil {
			bad = shared[obj]
		}
	case *ast.CallExpr:
		bad = loadedSnapshot(pass, r) != nil
	}
	if bad {
		pass.Reportf(lhs.Pos(),
			"write through a shared %s snapshot from Load(): snapshots are immutable once published — clone() first and publish the copy",
			snapshotName(pass, root))
	}
}

// chainRoot unwraps an lvalue chain (selectors, indexing, derefs, parens) to
// its root expression, or nil when the chain passes through a pointer to a
// non-snapshot type — writes behind such a pointer belong to a different
// object with its own ownership rules.
func chainRoot(pass *analysis.Pass, expr ast.Expr) ast.Expr {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if foreignPointer(pass, e.X) {
				return nil
			}
			expr = e.X
		case *ast.IndexExpr:
			if foreignPointer(pass, e.X) {
				return nil
			}
			expr = e.X
		default:
			return expr
		}
	}
}

// foreignPointer reports whether expr has pointer type with a non-snapshot
// element — the chain-breaking case.
func foreignPointer(pass *analysis.Pass, expr ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(expr)
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return snapshotType(pass, ptr.Elem()) == nil
}

// exprShared decides the taint of a right-hand side: true only when the pass
// can prove the value is a published snapshot.
func exprShared(pass *analysis.Pass, shared map[types.Object]bool, rhs ast.Expr) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(e)
		return obj != nil && shared[obj]
	case *ast.CallExpr:
		return loadedSnapshot(pass, e) != nil
	}
	return false
}

// loadedSnapshot returns the snapshot type T when call is a Load() on an
// atomic.Pointer[T], nil otherwise.
func loadedSnapshot(pass *analysis.Pass, call *ast.CallExpr) *types.Named {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return nil
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if named.Obj().Pkg().Path() != "sync/atomic" || named.Obj().Name() != "Pointer" {
		return nil
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil
	}
	return snapshotType(pass, args.At(0))
}

// snapshotType returns t as a snapshot type — a named struct declared in the
// package under analysis with a clone() *T method — or nil.
func snapshotType(pass *analysis.Pass, t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != "clone" {
			continue
		}
		sig := m.Signature()
		if sig.Results().Len() != 1 {
			continue
		}
		if ptr, ok := sig.Results().At(0).Type().(*types.Pointer); ok && types.Identical(ptr.Elem(), named) {
			return named
		}
	}
	return nil
}

// isSnapshotPtr reports whether t is *T for a snapshot type T.
func isSnapshotPtr(pass *analysis.Pass, t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && snapshotType(pass, ptr.Elem()) != nil
}

// snapshotName names the snapshot type behind a flagged root for the
// diagnostic, falling back to "snapshot" when the root is opaque.
func snapshotName(pass *analysis.Pass, root ast.Expr) string {
	t := pass.TypesInfo.TypeOf(root)
	if ptr, ok := t.(*types.Pointer); ok {
		if named := snapshotType(pass, ptr.Elem()); named != nil {
			return "*" + named.Obj().Name()
		}
	}
	return "snapshot"
}
