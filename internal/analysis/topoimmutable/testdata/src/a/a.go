// Fixture for topoimmutable: no writes through a snapshot pointer obtained
// from Load(); clone first, publish the copy.
package a

import "sync/atomic"

type peer struct {
	load int
}

// topology is a snapshot type: named struct with clone() *topology.
type topology struct {
	epoch uint64
	ring  []string
	peers map[string]*peer
	owner *peer
}

func (t *topology) clone() *topology {
	nt := *t
	nt.peers = make(map[string]*peer, len(t.peers))
	for k, v := range t.peers {
		nt.peers[k] = v
	}
	return &nt
}

type cluster struct {
	topo atomic.Pointer[topology]
}

// Epoch reads through the shared snapshot: always fine.
func (c *cluster) Epoch() uint64 {
	t := c.topo.Load()
	return t.epoch
}

// Publish is the legal mutation path: clone, mutate the copy, store.
func (c *cluster) Publish() {
	nt := c.topo.Load().clone()
	nt.epoch++
	nt.ring = append(nt.ring, "n")
	nt.peers["n"] = &peer{}
	c.topo.Store(nt)
}

// BumpShared writes a field through the shared pointer.
func (c *cluster) BumpShared() {
	t := c.topo.Load()
	t.epoch++ // want `write through a shared \*topology snapshot`
}

// WriteDirect writes through the Load() result without even binding it.
func (c *cluster) WriteDirect() {
	c.topo.Load().epoch = 0 // want `write through a shared \*topology snapshot`
}

// RingSlot writes an element of the shared snapshot's slice: same memory.
func (c *cluster) RingSlot(i int, s string) {
	t := c.topo.Load()
	t.ring[i] = s // want `write through a shared \*topology snapshot`
}

// MapInsert mutates the shared snapshot's map: the classic race with the
// lock-free readers.
func (c *cluster) MapInsert(k string, p *peer) {
	t := c.topo.Load()
	t.peers[k] = p // want `write through a shared \*topology snapshot`
}

// DerefCopy clobbers the whole shared struct through a deref.
func (c *cluster) DerefCopy() {
	t := c.topo.Load()
	*t = topology{} // want `write through a shared \*topology snapshot`
}

// PeerCounter is NOT flagged: the chain passes through *peer, a separately
// synchronised object that is not part of the snapshot's immutable memory.
func (c *cluster) PeerCounter() {
	t := c.topo.Load()
	t.owner.load++
}

// Rebind shows taint following the variable, not the name: after the
// rebinding to clone() the writes are on fresh memory.
func (c *cluster) Rebind() {
	t := c.topo.Load()
	t = t.clone()
	t.epoch++
	c.topo.Store(t)
}

// Fresh composite literals are never shared until stored.
func (c *cluster) Init() {
	nt := &topology{peers: make(map[string]*peer)}
	nt.epoch = 1
	c.topo.Store(nt)
}

// Closure keeps the captured pointer's taint.
func (c *cluster) Closure() {
	t := c.topo.Load()
	bump := func() {
		t.epoch++ // want `write through a shared \*topology snapshot`
	}
	bump()
}

// Audited is a reviewed exception: single-goroutine bootstrap.
func (c *cluster) Audited() {
	t := c.topo.Load()
	//batonvet:ignore topoimmutable bootstrap runs before the first reader exists
	t.epoch = 1
}
