// Fixture for replypool: every getReply() paired with putReply() on all
// return paths.
package a

import "sync"

type response struct {
	val string
	err error
}

var replyPool = sync.Pool{New: func() any { return make(chan response, 1) }}

func getReply() chan response {
	return replyPool.Get().(chan response)
}

func putReply(ch chan response) { replyPool.Put(ch) }

func send(ch chan response) bool { return ch != nil }

var done = make(chan struct{})

// good mirrors the real request path: release on the failed-send path, on
// the answered path, and (via directive) deliberate abandonment on Stop.
func good() (response, error) {
	reply := getReply()
	if !send(reply) {
		putReply(reply)
		return response{}, nil
	}
	select {
	case resp := <-reply:
		putReply(reply)
		return resp, nil
	case <-done:
		//batonvet:ignore replypool abandoned on Stop: a late answer must not reach the pool
		return response{}, nil
	}
}

// deferred releases via defer: one registration covers every return.
func deferred() (response, error) {
	reply := getReply()
	defer putReply(reply)
	if !send(reply) {
		return response{}, nil
	}
	return <-reply, nil
}

// leakOnError forgets the release on the early-error return.
func leakOnError() (response, error) {
	reply := getReply()
	if !send(reply) {
		return response{}, nil // want `leaks the pooled reply channel`
	}
	resp := <-reply
	putReply(reply)
	return resp, nil
}

// leakOnStop forgets the release on the done path and carries no directive.
func leakOnStop() (response, error) {
	reply := getReply()
	select {
	case resp := <-reply:
		putReply(reply)
		return resp, nil
	case <-done:
		return response{}, nil // want `leaks the pooled reply channel`
	}
}

// fallthroughRelease releases on the non-returning branch: the fall-through
// to the final return is clean.
func fallthroughRelease(retry func() (response, error)) (response, error) {
	reply := getReply()
	if send(reply) {
		select {
		case resp := <-reply:
			putReply(reply)
			return resp, nil
		case <-done:
			//batonvet:ignore replypool abandoned on Stop: a late answer must not reach the pool
			return response{}, nil
		}
	}
	putReply(reply)
	return retry()
}

// earlyReturn precedes the acquisition: nothing to release yet.
func earlyReturn(ok bool) (response, error) {
	if !ok {
		return response{}, nil
	}
	reply := getReply()
	resp := <-reply
	putReply(reply)
	return resp, nil
}

// unrelated never touches the pool.
func unrelated() response {
	return response{}
}

// --- correlation-table pairing (the wire transport's discipline) ---

type corrTable struct{ next uint64 }

func acquireCorr(t *corrTable, fn func(response)) uint64 {
	t.next++
	return t.next
}

func releaseCorr(t *corrTable, id uint64) (func(response), bool) { return nil, false }

func wireSend(id uint64) bool { return id != 0 }

var corr corrTable

// corrGood mirrors the real deliver path: release on the failed send,
// directive-marked handoff on success (the response frame releases it).
func corrGood() bool {
	id := acquireCorr(&corr, func(response) {})
	if !wireSend(id) {
		releaseCorr(&corr, id)
		return false
	}
	//batonvet:ignore replypool ownership crossed the wire: the response frame releases the entry
	return true
}

// corrDeferred releases via defer: one registration covers every return.
func corrDeferred() (response, error) {
	id := acquireCorr(&corr, func(response) {})
	defer releaseCorr(&corr, id)
	if !wireSend(id) {
		return response{}, nil
	}
	return response{}, nil
}

// corrLeakOnError registers an entry and forgets it on the failed send: the
// completion can never fire and the entry lives until the node dies.
func corrLeakOnError() bool {
	id := acquireCorr(&corr, func(response) {})
	if !wireSend(id) {
		return false // want `leaks the correlation entry`
	}
	releaseCorr(&corr, id)
	return true
}

// corrLeakNoDirective is the handoff shape without the directive: the
// analyzer cannot see the ownership transfer and must say so.
func corrLeakNoDirective() bool {
	id := acquireCorr(&corr, func(response) {})
	if !wireSend(id) {
		releaseCorr(&corr, id)
		return false
	}
	return true // want `leaks the correlation entry`
}

// mixedPairs uses both disciplines in one function: each is audited
// independently, and the reply-channel leak is caught even though the
// correlation entry is released on every path.
func mixedPairs() bool {
	id := acquireCorr(&corr, func(response) {})
	reply := getReply()
	if !wireSend(id) {
		releaseCorr(&corr, id)
		return false // want `leaks the pooled reply channel`
	}
	releaseCorr(&corr, id)
	putReply(reply)
	return true
}
