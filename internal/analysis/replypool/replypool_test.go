package replypool_test

import (
	"testing"

	"baton/internal/analysis/analysistest"
	"baton/internal/analysis/replypool"
)

func TestReplyPool(t *testing.T) {
	analysistest.Run(t, "testdata", "a", replypool.Analyzer)
}
