// Package replypool enforces the acquire/release disciplines of the request
// path: every getReply() acquisition must be paired with a putReply() on
// every return path that follows it, and — since requests learned to cross
// process boundaries — every acquireCorr() registration must likewise be
// paired with a releaseCorr() on every return path.
//
// The reply-channel pool (see internal/p2p/routecache.go) is what keeps the
// steady-state client side of Get/Put/Delete allocation-free; a return path
// that forgets putReply silently degrades the pool back to one allocation
// per request, and — worse — a path that double-returns or returns a channel
// that may still receive poisons a later request with a stale answer.
//
// The correlation table (see internal/p2p/node.go) is the wire transport's
// replacement for reply channels: an entry that is registered but never
// released — and whose frame never went out — waits for a response that
// cannot come, and survives until the node dies.
//
// The check is lexical, per function, and deliberately simple. For each
// return statement after an acquisition it walks backwards through the
// preceding statements (climbing out of nested blocks): a statement releases
// when its last release call comes after every return and every acquisition
// inside it — i.e. the fall-through path through that statement has
// released; hitting the acquisition first means this return path never
// released, and is reported. A `defer <release>(...)` after the acquisition
// covers every later return.
//
// Deliberate exceptions opt out per site with the //batonvet:ignore
// directive. Two are idiomatic in this codebase: the Stop path leaves a
// channel that may still receive to the garbage collector rather than
// poison the pool,
//
//	case <-c.done:
//		//batonvet:ignore replypool abandoned on Stop: a late answer must not reach the pool
//		return response{}, ErrStopped
//
// and the successful-send path of the wire transport hands the correlation
// entry's ownership to the remote node, whose response frame releases it:
//
//	//batonvet:ignore replypool ownership crossed the wire: the response frame releases the entry
//	return true
package replypool

import (
	"go/ast"
	"go/token"
	"go/types"

	"baton/internal/analysis"
)

// Analyzer is the replypool check.
var Analyzer = &analysis.Analyzer{
	Name: "replypool",
	Doc:  "every getReply()/acquireCorr() must be paired with putReply()/releaseCorr() on all return paths",
	Run:  run,
}

// pair is one acquire/release discipline: the two package-level function
// names and the noun the diagnostic says an unbalanced path leaks.
type pair struct {
	acquire, release string
	leaks            string
}

// pairs lists every discipline the analyzer enforces. The check runs once
// per pair, so a function mixing both (a wire send that falls back to a
// local reply channel) has each audited independently.
var pairs = []pair{
	{acquire: "getReply", release: "putReply", leaks: "the pooled reply channel"},
	{acquire: "acquireCorr", release: "releaseCorr", leaks: "the correlation entry"},
}

func run(pass *analysis.Pass) error {
	analysis.WalkFuncs(pass.Files, func(node ast.Node, body *ast.BlockStmt, _ []ast.Node) {
		for _, pr := range pairs {
			checkBody(pass, node, body, pr)
		}
	})
	return nil
}

// checkBody analyses one function body against one pair. Nested function
// literals are excluded everywhere — WalkFuncs hands them over as their own
// bodies.
func checkBody(pass *analysis.Pass, node ast.Node, body *ast.BlockStmt, pr pair) {
	firstGet := token.NoPos
	var deferPuts []token.Pos
	var returns []*ast.ReturnStmt
	inspectSansLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPoolCall(pass, n, pr.acquire) && (!firstGet.IsValid() || n.Pos() < firstGet) {
				firstGet = n.Pos()
			}
		case *ast.DeferStmt:
			if isPoolCall(pass, n.Call, pr.release) {
				deferPuts = append(deferPuts, n.Pos())
			}
		case *ast.ReturnStmt:
			returns = append(returns, n)
		}
	})
	if !firstGet.IsValid() {
		return
	}

ret:
	for _, r := range returns {
		if r.Pos() < firstGet {
			continue
		}
		for _, d := range deferPuts {
			if d < r.Pos() {
				continue ret
			}
		}
		if !backwardReleased(pass, body.List, r, pr) {
			pass.Reportf(r.Pos(),
				"return in %s leaks %s: no %s on this path after %s",
				analysis.FuncName(node), pr.leaks, pr.release, pr.acquire)
		}
	}
}

// backwardReleased walks backwards from the return through preceding
// statements, climbing out of nested blocks, and decides whether the path
// reaching this return has released the acquisition.
func backwardReleased(pass *analysis.Pass, top []ast.Stmt, target *ast.ReturnStmt, pr pair) bool {
	path, ok := findPath(top, target)
	if !ok {
		return true // unreachable syntax shape: stay silent
	}
	for level := len(path) - 1; level >= 0; level-- {
		fr := path[level]
		for j := fr.idx - 1; j >= 0; j-- {
			put, get, ret := scanStmt(pass, fr.list[j], pr)
			if put.IsValid() && put > ret && put > get {
				return true // fall-through path through this statement released
			}
			if get.IsValid() {
				return false // hit the acquisition with no release in between
			}
		}
	}
	return true // return precedes any acquisition on this lexical path
}

// frame is one level of the block chain from the function body down to the
// target statement: the statement list and the index of the statement on the
// path.
type frame struct {
	list []ast.Stmt
	idx  int
}

// findPath locates target under the statement list, returning the chain of
// (list, index) frames from the outside in.
func findPath(list []ast.Stmt, target ast.Stmt) ([]frame, bool) {
	for i, s := range list {
		if s == target {
			return []frame{{list, i}}, true
		}
		for _, sub := range subLists(s) {
			if p, ok := findPath(sub, target); ok {
				return append([]frame{{list, i}}, p...), true
			}
		}
	}
	return nil, false
}

// subLists returns the statement lists nested directly under s. Function
// literals are not statements, so their bodies are naturally excluded.
func subLists(s ast.Stmt) [][]ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{s.List}
	case *ast.IfStmt:
		out := [][]ast.Stmt{s.Body.List}
		if s.Else != nil {
			out = append(out, []ast.Stmt{s.Else})
		}
		return out
	case *ast.ForStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.RangeStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.SwitchStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.TypeSwitchStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.SelectStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.CaseClause:
		return [][]ast.Stmt{s.Body}
	case *ast.CommClause:
		return [][]ast.Stmt{s.Body}
	case *ast.LabeledStmt:
		return [][]ast.Stmt{{s.Stmt}}
	}
	return nil
}

// scanStmt reports the last release, acquire and return positions inside
// one statement (NoPos when absent), skipping nested function literals.
func scanStmt(pass *analysis.Pass, s ast.Stmt, pr pair) (put, get, ret token.Pos) {
	inspectSansLits(s, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPoolCall(pass, n, pr.release) && n.Pos() > put {
				put = n.Pos()
			}
			if isPoolCall(pass, n, pr.acquire) && n.Pos() > get {
				get = n.Pos()
			}
		case *ast.ReturnStmt:
			if n.Pos() > ret {
				ret = n.Pos()
			}
		}
	})
	return put, get, ret
}

// inspectSansLits walks the subtree, skipping function literals.
func inspectSansLits(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// isPoolCall reports whether call invokes the package-level pool function of
// the given name in the package under analysis.
func isPoolCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return ok && fn.Pkg() == pass.Pkg
}
