// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: just enough Analyzer / Pass /
// Diagnostic surface to host batonvet, the project's protocol linter
// (cmd/batonvet), without pulling x/tools into a module that is otherwise
// standard-library only.
//
// The shape deliberately mirrors the real framework — an Analyzer is a named
// Run function over a Pass carrying the package's syntax and type
// information, diagnostics are (position, message) pairs — so the analyzers
// under internal/analysis/* would port to a real multichecker by swapping
// the import. What is intentionally missing: facts (cross-package state),
// suggested fixes, and sub-analyzer dependencies; batonvet's analyzers are
// all single-package and self-contained.
//
// # Suppression directives
//
// Some of the invariants batonvet enforces have deliberate, documented
// exceptions in the code (a switch that is a partial filter by design, a
// reply channel abandoned at shutdown on purpose). Those sites carry a
// directive comment on the flagged line or the line directly above it:
//
//	//batonvet:ignore <analyzer> <reason>
//
// The reason is mandatory by convention (the directive is greppable either
// way), and the directive only silences the one named analyzer at that one
// site — there is no file- or package-wide opt-out.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check: a named Run function over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //batonvet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-line invariant this analyzer enforces.
	Doc string
	// Run inspects the pass's package and reports diagnostics via
	// pass.Reportf. The returned error aborts the whole check (reserved for
	// internal failures, not findings).
	Run func(*Pass) error
}

// Pass carries one package's parsed syntax and type information to an
// analyzer, plus the reporting hooks.
type Pass struct {
	// Analyzer is the check currently running.
	Analyzer *Analyzer
	// Fset maps token positions back to file/line/column.
	Fset *token.FileSet
	// Files is the package's syntax, test files included when the loader
	// was asked for them.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression/object tables.
	TypesInfo *types.Info

	diags      *[]Diagnostic
	directives map[string]map[int]bool // analyzer -> set of suppressed lines
}

// Diagnostic is one finding: a position, the analyzer that produced it and
// the message.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos unless a //batonvet:ignore directive for
// this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether an ignore directive for the current analyzer
// sits on pos's line or the line directly above it.
func (p *Pass) suppressed(pos token.Pos) bool {
	lines, ok := p.directives[p.Analyzer.Name]
	if !ok {
		return false
	}
	line := p.Fset.Position(pos).Line
	return lines[line] || lines[line-1]
}

// directivePrefix introduces a suppression comment.
const directivePrefix = "batonvet:ignore"

// buildDirectives indexes every //batonvet:ignore comment by analyzer name
// and line, so Reportf can honour them in O(1).
func buildDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				text := strings.TrimPrefix(cm.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				name := fields[0]
				if out[name] == nil {
					out[name] = make(map[int]bool)
				}
				out[name][fset.Position(cm.Pos()).Line] = true
			}
		}
	}
	return out
}

// WalkFuncs visits every function body in the pass — declarations and
// literals — handing each to fn together with the enclosing chain:
// enclosing[0] is the outermost enclosing function node (always a FuncDecl
// for nested literals), enclosing[len-1] the function itself. Analyzers use
// the chain to answer "is this call site inside a function that ...".
func WalkFuncs(files []*ast.File, fn func(node ast.Node, body *ast.BlockStmt, enclosing []ast.Node)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			stack := []ast.Node{fd}
			fn(fd, fd.Body, stack)
			walkLits(fd.Body, stack, fn)
		}
	}
}

// walkLits recurses into function literals below node, growing the chain.
func walkLits(node ast.Node, stack []ast.Node, fn func(ast.Node, *ast.BlockStmt, []ast.Node)) {
	ast.Inspect(node, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		inner := append(append([]ast.Node{}, stack...), lit)
		fn(lit, lit.Body, inner)
		walkLits(lit.Body, inner, fn)
		return false // walkLits recursed; don't double-visit deeper literals
	})
}

// FuncName names a function node for diagnostics: the declared name for a
// FuncDecl, "function literal" otherwise.
func FuncName(node ast.Node) string {
	if fd, ok := node.(*ast.FuncDecl); ok {
		return fd.Name.Name
	}
	return "function literal"
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
