// The checker: run a set of analyzers over a set of loaded packages and
// collect the findings — the engine behind cmd/batonvet.
package analysis

import (
	"fmt"
	"go/token"
	"io"
	"path/filepath"
)

// Check runs every analyzer over every package and returns the combined
// findings sorted by position. Analyzer errors (internal failures, not
// findings) abort the run.
func Check(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		directives := buildDirectives(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
				diags:      &diags,
				directives: directives,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	if len(pkgs) > 0 {
		SortDiagnostics(pkgs[0].Fset, diags)
	}
	return diags, nil
}

// Fprint writes the findings in the go vet style — one
// "path:line:col: analyzer: message" line each — with paths relative to dir
// when possible.
func Fprint(w io.Writer, fset *token.FileSet, diags []Diagnostic, dir string) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(dir, name); err == nil && !filepath.IsAbs(rel) && rel[0] != '.' {
			name = rel
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
}

// RunPass wraps one ad-hoc pass of a single analyzer over a single package —
// the entry point the analysistest harness uses.
func RunPass(pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	return Check([]*Package{pkg}, []*Analyzer{a})
}
