// Package loading for the dependency-free analysis framework: resolve
// patterns with `go list`, parse with go/parser, type-check with go/types.
// Module-internal imports are type-checked from source recursively; standard
// library imports are delegated to the compiler's source importer, so the
// whole pipeline works offline with nothing but the Go toolchain.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path ("baton/internal/p2p"); external test
	// packages carry their real path with a "_test" suffix.
	PkgPath string
	// Fset is shared by every package of one Load call.
	Fset *token.FileSet
	// Files is the parsed syntax the analyzers inspect.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo is the checker's expression/object tables for Files.
	TypesInfo *types.Info
}

// pkgFiles is a resolved package: where it lives and which files build it.
type pkgFiles struct {
	path  string
	dir   string
	files []string // absolute paths, build-constraint filtered
	tests []string // in-package _test.go files (module targets only)
	xtest []string // external test package files (package foo_test)
}

// resolver maps an import path to source files. Returning (nil, nil) means
// "not mine": the loader falls back to the standard-library source importer.
type resolver interface {
	resolvePkg(path string) (*pkgFiles, error)
}

// Loader type-checks packages on demand, memoising results so a package
// imported by several targets is checked once.
type Loader struct {
	fset *token.FileSet
	std  types.Importer
	res  resolver
	// cache holds pure (no test files) package objects keyed by import
	// path; these are what imports resolve to, mirroring how the compiler
	// never sees a dependency's test files.
	cache map[string]*types.Package
	// checking guards against import cycles while a package is mid-check.
	checking map[string]bool
}

// newLoader builds a loader over the given resolver.
func newLoader(res resolver) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		res:      res,
		cache:    make(map[string]*types.Package),
		checking: make(map[string]bool),
	}
}

// Import implements types.Importer for the type-checker's dependency
// requests.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	pf, err := l.res.resolvePkg(path)
	if err != nil {
		return nil, err
	}
	if pf == nil {
		return l.std.Import(path)
	}
	if l.checking[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	pkg, _, _, err := l.check(pf, false, nil)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// overrideImporter makes one import path resolve to a pre-built package —
// how an external test package sees the test-augmented variant of the
// package under test instead of the pure one.
type overrideImporter struct {
	base     *Loader
	path     string
	override *types.Package
}

func (o *overrideImporter) Import(path string) (*types.Package, error) {
	if path == o.path {
		return o.override, nil
	}
	return o.base.Import(path)
}

// check parses and type-checks one package. withTests additionally merges
// the in-package _test.go files. A non-nil importOverride is used instead of
// the loader for import resolution (external test packages).
func (l *Loader) check(pf *pkgFiles, withTests bool, importOverride types.Importer) (*types.Package, []*ast.File, *types.Info, error) {
	l.checking[pf.path] = true
	defer delete(l.checking, pf.path)

	names := pf.files
	if withTests {
		names = append(append([]string{}, pf.files...), pf.tests...)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var imp types.Importer = l
	if importOverride != nil {
		imp = importOverride
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(pf.path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %v", pf.path, typeErrs[0])
	}
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %w", pf.path, err)
	}
	return pkg, files, info, nil
}

// loadTarget builds the analysis view of one resolved package: the package
// itself (test-augmented when asked and test files exist), plus the external
// test package as a second Package when present.
func (l *Loader) loadTarget(pf *pkgFiles, includeTests bool) ([]*Package, error) {
	var out []*Package
	withTests := includeTests && len(pf.tests) > 0
	pkg, files, info, err := l.check(pf, withTests, nil)
	if err != nil {
		return nil, err
	}
	if !withTests {
		// The pure variant doubles as the import target for other packages.
		l.cache[pf.path] = pkg
	}
	out = append(out, &Package{PkgPath: pf.path, Fset: l.fset, Files: files, Types: pkg, TypesInfo: info})

	if includeTests && len(pf.xtest) > 0 {
		xpf := &pkgFiles{path: pf.path + "_test", dir: pf.dir, files: pf.xtest}
		xpkg, xfiles, xinfo, err := l.check(xpf, false, &overrideImporter{base: l, path: pf.path, override: pkg})
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{PkgPath: xpf.path, Fset: l.fset, Files: xfiles, Types: xpkg, TypesInfo: xinfo})
	}
	return out, nil
}

// --- module resolver (go list) ---------------------------------------------

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath   string
	Dir          string
	Standard     bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// moduleResolver resolves import paths inside one Go module using the go
// command, so build constraints and file selection match a real build.
type moduleResolver struct {
	modPath string
	modDir  string
	meta    map[string]*listPkg
}

// goList runs `go list -json` with the given arguments in dir and decodes
// the stream of package objects.
func goList(dir string, args ...string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// toPkgFiles converts go list metadata to absolute file lists.
func (p *listPkg) toPkgFiles() *pkgFiles {
	abs := func(names []string) []string {
		out := make([]string, len(names))
		for i, n := range names {
			out[i] = filepath.Join(p.Dir, n)
		}
		return out
	}
	return &pkgFiles{
		path:  p.ImportPath,
		dir:   p.Dir,
		files: abs(p.GoFiles),
		tests: abs(p.TestGoFiles),
		xtest: abs(p.XTestGoFiles),
	}
}

func (r *moduleResolver) resolvePkg(path string) (*pkgFiles, error) {
	if p, ok := r.meta[path]; ok {
		return p.toPkgFiles(), nil
	}
	if path != r.modPath && !strings.HasPrefix(path, r.modPath+"/") {
		return nil, nil // not in this module: standard library importer's job
	}
	pkgs, err := goList(r.modDir, path)
	if err != nil || len(pkgs) == 0 {
		return nil, fmt.Errorf("resolving module package %q: %w", path, err)
	}
	r.meta[path] = pkgs[0]
	return pkgs[0].toPkgFiles(), nil
}

// Load resolves the patterns (e.g. "./...") against the module containing
// dir and returns every matched package type-checked for analysis, in
// import-path order. With includeTests, in-package test files are merged
// into their package and external test packages are returned as packages of
// their own.
func Load(dir string, patterns []string, includeTests bool) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := goModule(dir)
	if err != nil {
		return nil, err
	}
	res := &moduleResolver{modPath: mod.Path, modDir: mod.Dir, meta: make(map[string]*listPkg)}

	// One -deps listing seeds the resolver with every module-internal
	// dependency's file list, so later import resolution rarely shells out.
	deps, err := goList(mod.Dir, append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	for _, p := range deps {
		if !p.Standard {
			res.meta[p.ImportPath] = p
		}
	}
	targets, err := goList(mod.Dir, patterns...)
	if err != nil {
		return nil, err
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	l := newLoader(res)
	var out []*Package
	for _, t := range targets {
		if t.Standard {
			continue
		}
		pkgs, err := l.loadTarget(t.toPkgFiles(), includeTests)
		if err != nil {
			return nil, err
		}
		out = append(out, pkgs...)
	}
	return out, nil
}

// goModule reports the path and root directory of the module containing dir.
func goModule(dir string) (struct{ Path, Dir string }, error) {
	var mod struct{ Path, Dir string }
	cmd := exec.Command("go", "list", "-m", "-json")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return mod, fmt.Errorf("go list -m in %s: %w", dir, err)
	}
	if err := json.Unmarshal(out, &mod); err != nil {
		return mod, fmt.Errorf("decoding module info: %w", err)
	}
	return mod, nil
}

// --- directory resolver (fixtures) -----------------------------------------

// dirResolver resolves import paths as directories under a root — the
// analysistest layout, testdata/src/<importpath>/*.go.
type dirResolver struct{ root string }

func (r *dirResolver) resolvePkg(path string) (*pkgFiles, error) {
	dir := filepath.Join(r.root, filepath.FromSlash(path))
	st, err := os.Stat(dir)
	if err != nil || !st.IsDir() {
		return nil, nil // fall through to the standard library
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("fixture package %q has no Go files in %s", path, dir)
	}
	sort.Strings(names)
	return &pkgFiles{path: path, dir: dir, files: names}, nil
}

// LoadFixture type-checks the fixture package at root/<path> (analysistest
// layout: imports between fixtures resolve under root, everything else
// against the standard library).
func LoadFixture(root, path string) (*Package, error) {
	l := newLoader(&dirResolver{root: root})
	pf, err := l.res.resolvePkg(path)
	if err != nil {
		return nil, err
	}
	if pf == nil {
		return nil, fmt.Errorf("fixture package %q not found under %s", path, root)
	}
	pkgs, err := l.loadTarget(pf, false)
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}
