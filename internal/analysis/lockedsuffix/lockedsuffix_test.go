package lockedsuffix_test

import (
	"testing"

	"baton/internal/analysis/analysistest"
	"baton/internal/analysis/lockedsuffix"
)

func TestLockedSuffix(t *testing.T) {
	analysistest.Run(t, "testdata", "a", lockedsuffix.Analyzer)
}
