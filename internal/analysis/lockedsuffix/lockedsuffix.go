// Package lockedsuffix enforces the cluster's lock-suffix convention for
// memberMu, the mutex serialising structural membership operations.
//
// The convention: a function whose name ends in "Locked" runs with memberMu
// already held by its caller. Two rules fall out:
//
//  1. A *Locked function must never lock or unlock memberMu itself — doing
//     so self-deadlocks (sync.Mutex is not reentrant) or releases a lock it
//     does not own.
//  2. A call to a *Locked function is only legal from a function that is
//     itself *Locked, or whose body visibly locks memberMu.
//
// The check is lexical and intraprocedural: "visibly locks" means a
// memberMu.Lock() call in the calling function's own body (not inside nested
// function literals, which have their own lock context only if they inherit
// it — a literal is treated as holding the lock when some enclosing function
// does). That matches how the code under internal/p2p is written — lock at
// the top, defer unlock, call the *Locked core — and keeps the analyzer
// honest about what it can prove.
package lockedsuffix

import (
	"go/ast"
	"go/types"
	"strings"

	"baton/internal/analysis"
)

// Analyzer is the lockedsuffix check.
var Analyzer = &analysis.Analyzer{
	Name: "lockedsuffix",
	Doc:  "*Locked functions require memberMu held by the caller and must not lock it themselves",
	Run:  run,
}

// mutexName is the field the convention guards.
const mutexName = "memberMu"

func run(pass *analysis.Pass) error {
	analysis.WalkFuncs(pass.Files, func(node ast.Node, body *ast.BlockStmt, enclosing []ast.Node) {
		locked := contextHoldsLock(enclosing)
		inspectBody(body, func(call *ast.CallExpr) {
			switch {
			case isLockedFuncDecl(node) && mutexOp(call) != "":
				pass.Reportf(call.Pos(),
					"%s must not call memberMu.%s: the *Locked suffix means the caller already holds memberMu",
					analysis.FuncName(node), mutexOp(call))
			case !locked:
				if callee := lockedCallee(pass, call); callee != "" {
					pass.Reportf(call.Pos(),
						"call to %s from %s, which neither ends in Locked nor locks memberMu",
						callee, analysis.FuncName(node))
				}
			}
		})
	})
	return nil
}

// inspectBody visits every call expression directly in body, skipping nested
// function literals — WalkFuncs hands those to the callback separately, with
// their own enclosing chain.
func inspectBody(body *ast.BlockStmt, fn func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}

// contextHoldsLock reports whether the innermost function of the chain runs
// with memberMu held: some enclosing function (innermost first) either ends
// in Locked or locks memberMu in its own body.
func contextHoldsLock(enclosing []ast.Node) bool {
	for i := len(enclosing) - 1; i >= 0; i-- {
		if isLockedFuncDecl(enclosing[i]) {
			return true
		}
		var body *ast.BlockStmt
		switch n := enclosing[i].(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		}
		acquired := false
		inspectBody(body, func(call *ast.CallExpr) {
			if mutexOp(call) == "Lock" {
				acquired = true
			}
		})
		if acquired {
			return true
		}
	}
	return false
}

// isLockedFuncDecl reports whether node is a function declaration following
// the *Locked naming convention. Function literals are never *Locked — the
// suffix is a contract on a name, and literals have none.
func isLockedFuncDecl(node ast.Node) bool {
	fd, ok := node.(*ast.FuncDecl)
	return ok && isLockedName(fd.Name.Name)
}

func isLockedName(name string) bool {
	return strings.HasSuffix(name, "Locked") && name != "Locked"
}

// mutexOp returns "Lock" or "Unlock" when call is memberMu.Lock() /
// memberMu.Unlock() (through any receiver chain), "" otherwise.
func mutexOp(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock") {
		return ""
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		if x.Name == mutexName {
			return sel.Sel.Name
		}
	case *ast.SelectorExpr:
		if x.Sel.Name == mutexName {
			return sel.Sel.Name
		}
	}
	return ""
}

// lockedCallee returns the name of the *Locked function call resolves to, or
// "" when the callee is not a *Locked function of this package. Resolving
// through the type-checker (rather than matching the syntax alone) rules out
// conversions and same-named functions from other packages.
func lockedCallee(pass *analysis.Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if !isLockedName(id.Name) {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != pass.Pkg {
		return ""
	}
	return fn.Name()
}
