// Fixture for lockedsuffix: *Locked functions run with memberMu held by the
// caller, never lock it themselves, and are only callable from locked
// contexts.
package a

import "sync"

type cluster struct {
	memberMu sync.Mutex
	members  []string
}

// addLocked is the *Locked core: mutates under the caller's lock.
func (c *cluster) addLocked(m string) {
	c.members = append(c.members, m)
}

// rebalanceLocked calling addLocked is fine: Locked to Locked.
func (c *cluster) rebalanceLocked() {
	c.addLocked("seed")
}

// Add is the canonical caller: lock, defer unlock, call the core.
func (c *cluster) Add(m string) {
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	c.addLocked(m)
}

// AddFast skips the lock: the call races every locked mutation.
func (c *cluster) AddFast(m string) {
	c.addLocked(m) // want `call to addLocked from AddFast, which neither ends in Locked nor locks memberMu`
}

// badLocked breaks rule one twice: self-deadlock, then releasing the
// caller's lock.
func (c *cluster) badLocked() {
	c.memberMu.Lock()         // want `badLocked must not call memberMu\.Lock`
	defer c.memberMu.Unlock() // want `badLocked must not call memberMu\.Unlock`
	c.members = nil
}

// Sweep shows literals inheriting the enclosing lock context.
func (c *cluster) Sweep() {
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	apply := func() {
		c.addLocked("swept") // inherits Sweep's lock: fine
	}
	apply()
}

// Leak shows a literal NOT inheriting a lock that is never taken.
func (c *cluster) Leak() {
	go func() {
		c.addLocked("leak") // want `call to addLocked from function literal`
	}()
}

// Audited is a reviewed exception, silenced per site.
func (c *cluster) Audited(m string) {
	//batonvet:ignore lockedsuffix constructor path, no concurrent access yet
	c.addLocked(m)
}

// otherLock guards nothing the convention covers: untouched.
type otherLock struct {
	mu sync.Mutex
}

func (o *otherLock) Toggle() {
	o.mu.Lock()
	defer o.mu.Unlock()
}

// Locked on its own is not the convention — the suffix needs a stem.
func Locked() {}

func callsBareLocked() {
	Locked() // the bare name is not a *Locked function: fine
}
