// Structural-delta application and data migration for live membership: the
// mirror (a data-less core.Network) is the authority for what the overlay
// should look like after a Join/Depart/LoadBalance, and applyMirrorDiffLocked
// pushes the difference out to the live peers as messages, migrating the
// affected items in batched handoffs without ever dropping a key.
package p2p

import (
	"fmt"
	"math"
	"sort"
	"time"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/store"
)

// applyMirrorDiffLocked reconciles the live peers with the mirror after a
// structural operation. It compares the mirror's state against c.states
// (the snapshot from before the operation), derives which key regions moved
// between which peers, and orchestrates the change in phases:
//
//  1. New peers are spawned with their final state, already buffering
//     requests for the regions whose items are still in flight.
//  2. Existing peers that gain regions are prepared the same way — range,
//     links and pending regions — and acknowledge before any source stops
//     serving those keys, so there is never a moment when a key region has
//     no peer accepting (or buffering) its requests.
//  3. Source peers adopt their shrunk state, extract the moved items and
//     send them as one batched kindHandoff message per region straight to
//     the receiving peer; a peer that is leaving altogether becomes a
//     forwarding tombstone. A source listed in salvage has crashed — its
//     store is wiped — so the coordinator plays its part instead, sending
//     the salvaged replica items (the surviving copy recovery fetched from
//     the dead peer's holder) to each region's new owner.
//  4. Every other peer whose links changed receives its new link set, and
//     the coordinator waits until every handoff has been absorbed.
//  5. Peers whose place in the overlay changed re-ship their full item set
//     to their (possibly new) replica holder, so the replication invariant
//     — core.VerifyReplication — holds again when the operation returns.
//
// Only then is the new composition published to clients (ring, member IDs).
// The whole sequence runs under memberMu; data traffic flows throughout.
// It returns the number of items that migrated.
//
// The reconcile itself is O(total peers) per operation — full mirror
// snapshot, per-peer comparison, ring rebuild — though only the O(log N)
// affected peers receive messages. At the cluster sizes the driver runs
// this is dwarfed by the data handoff; pushing membership throughput
// further means diffing only the region the mirror knows changed.
func (c *Cluster) applyMirrorDiffLocked(salvage map[core.PeerID][]store.Item) (int, error) {
	c.reapTombstones()
	nextList := core.Snapshot(c.mirror)
	next := snapshotMap(nextList)
	prev := c.states

	// Derive the data movements from the range delta: every region a peer
	// lost is now owned by exactly the peers whose new ranges cover it.
	type move struct {
		src, dst core.PeerID
		region   keyspace.Range
	}
	var moves []move
	gains := make(map[core.PeerID][]keyspace.Range)
	lose := func(src core.PeerID, region keyspace.Range) error {
		for !region.IsEmpty() {
			owner := core.NoPeer
			for id, ns := range next {
				if ns.Range.Contains(region.Lower) {
					owner = id
					break
				}
			}
			if owner == core.NoPeer {
				return fmt.Errorf("p2p: no peer owns region %v after the structural change", region)
			}
			part := region
			if up := next[owner].Range.Upper; up < part.Upper {
				part.Upper = up
			}
			w := c.widen(part)
			moves = append(moves, move{src: src, dst: owner, region: w})
			gains[owner] = append(gains[owner], w)
			region.Lower = part.Upper
		}
		return nil
	}
	for id, ps := range prev {
		ns, ok := next[id]
		if !ok {
			if err := lose(id, ps.Range); err != nil {
				return 0, err
			}
			continue
		}
		for _, r := range subtract(ps.Range, ns.Range) {
			if err := lose(id, r); err != nil {
				return 0, err
			}
		}
	}

	// Phase 1: spawn new peers, registered for delivery before any request
	// or handoff can be addressed to them.
	phaseStart := time.Now()
	base := c.topo.Load()
	var spawned, remoteSpawned []*peer
	for id, ns := range next {
		if _, existed := prev[id]; existed {
			continue
		}
		if c.spawnAt != 0 && c.net != nil {
			// A remote-requested join: the real peer will live on the
			// requesting node; here it is represented by a stub so every
			// later phase (updates, handoffs) addresses it as usual.
			p := newStub(id, c.spawnAt, c.fanout)
			p.rng = ns.Range
			p.alive.Store(true)
			remoteSpawned = append(remoteSpawned, p)
			continue
		}
		p := newPeer(id, c.fanout)
		p.installState(buildState(ns, next))
		p.pending = gains[id]
		p.alive.Store(true)
		spawned = append(spawned, p)
	}
	if len(spawned)+len(remoteSpawned) > 0 {
		nt := base.clone()
		for _, p := range spawned {
			nt.peers[p.id] = p
		}
		for _, p := range remoteSpawned {
			nt.peers[p.id] = p
		}
		c.topo.Store(nt)
		for _, p := range spawned {
			c.wg.Add(1)
			go c.serve(p)
		}
		// Synchronous ctlSpawn after the stubs are registered: the hosting
		// node's peer is provably serving (buffering its pending regions)
		// before any handoff can be addressed to it.
		for _, p := range remoteSpawned {
			ns := next[p.id]
			if err := c.net.spawnRemote(c.spawnAt, p.id, buildState(ns, next), gains[p.id]); err != nil {
				return 0, err
			}
		}
	}

	// Phase 2: prepare the existing absorbers. They must be buffering their
	// gained regions before any source stops serving those keys.
	sentState := make(map[core.PeerID]bool)
	var acks []chan response
	for id, gs := range gains {
		if _, existed := prev[id]; !existed {
			continue // new peers were configured at spawn
		}
		ch := make(chan response, 1)
		if !c.sendAny(id, request{kind: kindUpdate, state: buildState(next[id], next), gains: gs, reply: ch}) {
			return 0, ErrStopped
		}
		sentState[id] = true
		acks = append(acks, ch)
	}
	if err := c.waitAcks(acks); err != nil {
		return 0, err
	}
	acks = acks[:0]
	c.journalPhase("prepare", phaseStart)

	// Phase 3: the sources shrink, extract and hand off.
	phaseStart = time.Now()
	handoffAck := make(chan response, len(moves))
	srcMoves := make(map[core.PeerID][]handoffMove)
	for _, mv := range moves {
		srcMoves[mv.src] = append(srcMoves[mv.src], handoffMove{region: mv.region, dst: mv.dst, ack: handoffAck})
	}
	for id, mvs := range srcMoves {
		if items, crashed := salvage[id]; crashed {
			// The source has crashed: its store is wiped, so the coordinator
			// sends each region's surviving replica items itself, and the
			// dead peer is only told to become a forwarding tombstone (a
			// control update its goroutine handles even though it is dead).
			req := request{kind: kindUpdate, departTo: mvs[0].dst, reply: make(chan response, 1)}
			sentState[id] = true
			if !c.sendAny(id, req) {
				return 0, ErrStopped
			}
			acks = append(acks, req.reply)
			for _, mv := range mvs {
				restore := request{kind: kindHandoff, rng: mv.region, bulk: itemsWithin(items, mv.region), reply: mv.ack}
				if !c.sendAny(mv.dst, restore) {
					return 0, ErrStopped
				}
			}
			continue
		}
		req := request{kind: kindUpdate, moves: mvs, reply: make(chan response, 1)}
		if ns, ok := next[id]; ok {
			if !sentState[id] {
				req.state = buildState(ns, next)
				sentState[id] = true
			}
		} else {
			// The peer is leaving the overlay: everything it still receives
			// belongs to the peer that took over its range.
			req.departTo = mvs[0].dst
			sentState[id] = true
		}
		if !c.sendAny(id, req) {
			return 0, ErrStopped
		}
		acks = append(acks, req.reply)
	}
	if err := c.waitAcks(acks); err != nil {
		return 0, err
	}
	acks = acks[:0]
	c.journalPhase("extract", phaseStart)

	// Phase 4: new link sets for every other affected peer. Affected means
	// the link IDs changed, or — the paper's notifyRangeChange — a linked
	// peer's range changed: links cache the target's range bounds, and a
	// stale cached range would make forward()'s dead-owner refusal rule
	// misattribute a migrated key to a peer killed later.
	phaseStart = time.Now()
	rangeChanged := make(map[core.PeerID]bool)
	for id, ns := range next {
		if ps, ok := prev[id]; !ok || ps.Range != ns.Range {
			rangeChanged[id] = true
		}
	}
	for id, ns := range next {
		if sentState[id] {
			continue
		}
		prevSnap, existed := prev[id]
		if !existed || (statesEqual(prevSnap, ns) && !linksAny(ns, rangeChanged)) {
			continue
		}
		ch := make(chan response, 1)
		if !c.sendAny(id, request{kind: kindUpdate, state: buildState(ns, next), reply: ch}) {
			return 0, ErrStopped
		}
		acks = append(acks, ch)
	}
	if err := c.waitAcks(acks); err != nil {
		return 0, err
	}
	c.journalPhase("link-update", phaseStart)

	// Phase 5: wait for every handoff to be absorbed, so the operation is
	// fully settled — and the no-lost-write guarantee holds — by the time
	// the structural call returns.
	phaseStart = time.Now()
	migrated := 0
	for range moves {
		select {
		case resp := <-handoffAck:
			migrated += resp.count
		case <-c.done:
			return migrated, ErrStopped
		}
	}
	c.journalPhase("handoff", phaseStart)
	c.journalMigrated(migrated)

	// Publish the new composition to clients, and queue freshly departed
	// peers for retirement at a later structural operation.
	t := c.topo.Load()
	for id := range prev {
		if _, ok := next[id]; !ok {
			tp := t.peers[id]
			c.tombstones = append(c.tombstones, tp)
			if tp != nil && tp.node != 0 {
				// A remotely hosted peer left the overlay: its real
				// tombstone forwards on the hosting node, but this stub
				// must accept deliveries from stale local routing state
				// too — up, like any tombstone, whatever killed it.
				tp.alive.Store(true)
			}
		}
	}
	c.states = next
	c.publishTopology(nextList)
	if c.net != nil {
		c.net.broadcastTopoLocked(c)
	}

	// Phase 6: re-seat the replicas. Every peer whose range or adjacent
	// links changed — the sole determinants of what its replica contains
	// and who holds it — re-ships its full item set to its current holder
	// (a wholesale sync, so stale keys from the old range disappear), and
	// holders of peers that left the overlay drop their sets. Peers whose
	// snapshot changed only in routing tables are skipped: their replica
	// placement and content are untouched, and re-shipping whole stores on
	// every sideways link update would make each membership operation pay
	// O(neighbourhood data) for nothing. Synchronous, like the handoffs:
	// when the structural call returns, the replication invariant holds
	// again.
	var resync []core.PeerID
	for _, ns := range nextList {
		ps, existed := prev[ns.ID]
		if !existed || ps.Range != ns.Range ||
			ps.LeftAdjacent != ns.LeftAdjacent || ps.RightAdjacent != ns.RightAdjacent {
			resync = append(resync, ns.ID)
		}
	}
	for id, ps := range prev {
		if _, ok := next[id]; ok {
			continue
		}
		if h := core.ReplicaHolderOf(ps); h != core.NoPeer {
			// Only a holder that is still a member: a tombstone would forward
			// the drop to its range absorber, deleting an unrelated set there.
			if _, stillMember := next[h]; stillMember {
				c.send(h, request{kind: kindReplicaDrop, src: id})
			}
		}
	}
	// A dead member cannot re-ship its replica. If this operation moved its
	// adjacent links (a shuffle, rejoin or restructuring next to the crash,
	// or the departure of its holder), the surviving copy of its items is
	// still at the old holder while a later Recover will look for it at the
	// new one — so the coordinator moves the set itself: fetch from the old
	// holder (a holder departing in this very operation answers from its
	// tombstone, which retains its replica sets), install at the new
	// holder, then drop the stale copy. Synchronous like the resyncs. The
	// migration only runs when the fetch succeeds: when the old holder is
	// dead too the data is already gone (the double-crash case), and
	// installing an empty set while dropping the original would turn a
	// retrievable copy into a lost one. The drop is only sent to a holder
	// that is still a member — a tombstone would forward it, and the
	// forwarding target can be the new holder itself, which must not
	// discard the set just installed; tombstone-held sets die at the reap.
	for _, ns := range nextList {
		ps, existed := prev[ns.ID]
		if !existed || c.Alive(ns.ID) {
			continue
		}
		oldHolder, newHolder := core.ReplicaHolderOf(ps), core.ReplicaHolderOf(ns)
		if oldHolder == newHolder || newHolder == core.NoPeer || !c.Alive(newHolder) {
			continue
		}
		var moved []store.Item
		fetched := false
		if oldHolder != core.NoPeer && c.Alive(oldHolder) {
			if resp, err := c.control(oldHolder, request{kind: kindReplicaFetch, src: ns.ID}); err == nil {
				moved, fetched = resp.items, true
			}
		}
		if !fetched {
			continue
		}
		ch := make(chan response, 1)
		if !c.send(newHolder, request{kind: kindReplicaSync, src: ns.ID, bulk: moved, reply: ch}) {
			continue
		}
		if err := c.waitAcks([]chan response{ch}); err != nil {
			return migrated, err
		}
		if _, stillMember := next[oldHolder]; stillMember {
			c.send(oldHolder, request{kind: kindReplicaDrop, src: ns.ID})
		}
	}
	if len(resync) > 0 {
		if err := c.resyncReplicas(resync); err != nil {
			return migrated, err
		}
	}
	return migrated, nil
}

// reapTombstones retires departed peers in two stages across structural
// operations (memberMu held throughout, so the stages are ordered): first a
// tombstone's gone flag is set, after which deliver refuses new sends to it
// — no live routing state references a tombstone, so only a client holding
// a very old topology snapshot can even try, and it fails over as for a
// dead peer. At a later operation, once the in-flight count has drained to
// zero (it can no longer grow), the tombstone's goroutine is told to
// forward its remaining queue and exit, and the peer is dropped from the
// delivery map. Without this, a long-lived cluster under steady churn would
// accumulate one goroutine and inbox per departure forever.
func (c *Cluster) reapTombstones() {
	if len(c.tombstones) == 0 {
		return
	}
	var keep []*peer
	var reaped []core.PeerID
	for _, p := range c.tombstones {
		if !p.gone.Load() {
			p.gone.Store(true) // stage 1: stop accepting new deliveries
			keep = append(keep, p)
			continue
		}
		if p.inflight.Load() != 0 {
			keep = append(keep, p) // a delivery is still settling; next time
			continue
		}
		close(p.quit) // stage 2: drain, forward and exit
		// Fold the tombstone's counters into the retired aggregate so
		// cluster totals (StaleRoutes, Metrics) stay monotonic after the
		// peer vanishes from the topology.
		c.retired.Absorb(p.met)
		reaped = append(reaped, p.id)
	}
	c.tombstones = keep
	if len(reaped) == 0 {
		return
	}
	nt := c.topo.Load().clone()
	for _, id := range reaped {
		delete(nt.peers, id)
	}
	c.topo.Store(nt)
}

// waitAcks waits for one reply per channel, bailing out at cluster stop.
func (c *Cluster) waitAcks(chs []chan response) error {
	for _, ch := range chs {
		select {
		case <-ch:
		case <-c.done:
			return ErrStopped
		}
	}
	return nil
}

// publishTopology swaps in a new client-visible composition: member set,
// key-ordered ring and sorted ID list. The peers map is carried over — it
// already contains every member plus the tombstones and is never mutated
// after publication. The epoch bump invalidates every route-cache tag issued
// under the old composition (routecache.go).
func (c *Cluster) publishTopology(nextList []core.PeerSnapshot) {
	old := c.topo.Load()
	nt := old.clone()
	nt.epoch = old.epoch + 1
	nt.members = make(map[core.PeerID]bool, len(nextList))
	nt.ring = make([]ringEntry, 0, len(nextList))
	nt.ids = make([]core.PeerID, 0, len(nextList))
	for _, ps := range nextList {
		nt.members[ps.ID] = true
		nt.ring = append(nt.ring, ringEntry{id: ps.ID, lower: ps.Range.Lower, p: old.peers[ps.ID]})
		nt.ids = append(nt.ids, ps.ID)
	}
	sort.Slice(nt.ring, func(i, j int) bool { return nt.ring[i].lower < nt.ring[j].lower })
	sort.Slice(nt.ids, func(i, j int) bool { return nt.ids[i] < nt.ids[j] })
	if hc := 8 * (len(nextList) + 4); hc > nt.hopCap {
		nt.hopCap = hc
	}
	c.topo.Store(nt)
}

// widen stretches a migrating region that touches a domain edge out to the
// key type's limits: the extreme peers store keys outside the domain (the
// ownsExtreme rule), and those items must migrate with the edge region
// instead of being stranded.
func (c *Cluster) widen(r keyspace.Range) keyspace.Range {
	if r.Lower == c.domain.Lower {
		r.Lower = keyspace.Key(math.MinInt64)
	}
	if r.Upper == c.domain.Upper {
		r.Upper = keyspace.Key(math.MaxInt64)
	}
	return r
}

// subtract returns the parts of r not covered by s (zero, one or two
// ranges).
func subtract(r, s keyspace.Range) []keyspace.Range {
	if r.IsEmpty() {
		return nil
	}
	if !r.Intersects(s) {
		return []keyspace.Range{r}
	}
	var out []keyspace.Range
	if r.Lower < s.Lower {
		out = append(out, keyspace.Range{Lower: r.Lower, Upper: s.Lower})
	}
	if s.Upper < r.Upper {
		out = append(out, keyspace.Range{Lower: s.Upper, Upper: r.Upper})
	}
	return out
}

// buildState assembles the peerState a kindUpdate installs, resolving every
// link against the post-operation structure.
func buildState(ns core.PeerSnapshot, next map[core.PeerID]core.PeerSnapshot) *peerState {
	tl := func(id core.PeerID) *link {
		if id == core.NoPeer {
			return nil
		}
		t, ok := next[id]
		if !ok {
			return nil
		}
		return &link{id: id, lower: t.Range.Lower, upper: t.Range.Upper}
	}
	slots := ns.ChildSlots()
	children := make([]*link, len(slots))
	for s, id := range slots {
		children[s] = tl(id)
	}
	st := &peerState{
		pos:      ns.Position,
		rng:      ns.Range,
		parent:   tl(ns.Parent),
		children: children,
		adjacent: [2]*link{tl(ns.LeftAdjacent), tl(ns.RightAdjacent)},
	}
	for _, id := range ns.LeftRouting {
		st.rt[0] = append(st.rt[0], tl(id))
	}
	for _, id := range ns.RightRouting {
		st.rt[1] = append(st.rt[1], tl(id))
	}
	return st
}

// installState adopts a peerState; called either at spawn (before the peer
// goroutine starts) or from the peer's own goroutine (applyUpdate).
func (p *peer) installState(st *peerState) {
	p.pos = st.pos
	p.rng = st.rng
	p.parent = st.parent
	p.children = st.children
	p.adjacent = st.adjacent
	p.rt = st.rt
}

// linksAny reports whether the snapshot links to any of the given peers.
func linksAny(ns core.PeerSnapshot, ids map[core.PeerID]bool) bool {
	if ids[ns.Parent] || ids[ns.LeftAdjacent] || ids[ns.RightAdjacent] {
		return true
	}
	for _, id := range ns.ChildSlots() {
		if ids[id] {
			return true
		}
	}
	for _, id := range ns.LeftRouting {
		if ids[id] {
			return true
		}
	}
	for _, id := range ns.RightRouting {
		if ids[id] {
			return true
		}
	}
	return false
}

// statesEqual reports whether two structural snapshots describe the same
// position, range and link set (items are irrelevant here).
func statesEqual(a, b core.PeerSnapshot) bool {
	if a.Position != b.Position || a.Range != b.Range ||
		a.Parent != b.Parent || a.LeftChild != b.LeftChild || a.RightChild != b.RightChild ||
		a.LeftAdjacent != b.LeftAdjacent || a.RightAdjacent != b.RightAdjacent {
		return false
	}
	if len(a.MidChildren) != len(b.MidChildren) {
		return false
	}
	for i := range a.MidChildren {
		if a.MidChildren[i] != b.MidChildren[i] {
			return false
		}
	}
	if len(a.LeftRouting) != len(b.LeftRouting) || len(a.RightRouting) != len(b.RightRouting) {
		return false
	}
	for i := range a.LeftRouting {
		if a.LeftRouting[i] != b.LeftRouting[i] {
			return false
		}
	}
	for i := range a.RightRouting {
		if a.RightRouting[i] != b.RightRouting[i] {
			return false
		}
	}
	return true
}

// applyUpdate runs in the peer's goroutine and executes one kindUpdate:
// adopt the new structural state, start buffering gained regions, extract
// and hand off moved regions, and/or become a forwarding tombstone.
func (c *Cluster) applyUpdate(p *peer, req request) {
	if req.state != nil {
		p.installState(req.state)
	}
	p.pending = append(p.pending, req.gains...)
	if len(req.moves) > 0 {
		for _, mv := range req.moves {
			items := p.data.ExtractRange(mv.region)
			h := request{kind: kindHandoff, rng: mv.region, bulk: items, reply: mv.ack}
			if mv.ack == nil && mv.ackCorr != 0 {
				// The update crossed the wire: the destination acknowledges
				// to the coordinator's correlation instead of a channel.
				h.rcorr, h.rnode = mv.ackCorr, mv.ackNode
			}
			if !c.sendAny(mv.dst, h) && c.net != nil && h.rcorr != 0 &&
				!c.net.sendRequestTo(mv.dstNode, mv.dst, h, true) {
				// A freshly spawned destination on another node may not be
				// in this node's stub table yet — the coordinator named its
				// hosting node in the move for exactly this case. If that
				// also fails, answer the coordinator's ack so the structural
				// operation observes the failure instead of hanging.
				c.net.replyWire(h.rnode, h.rcorr, response{err: ErrOwnerDown})
			}
		}
		p.noteItems()
	}
	if req.departTo != core.NoPeer {
		p.departed = true
		p.departTo = req.departTo
		// A tombstone only forwards, so it is "up" again whatever happened
		// to it before: a crashed peer that recovery just repaired out of
		// the overlay must accept deliveries from stale routing state and
		// pass them to its successor, not bounce them off the dead flag.
		p.alive.Store(true)
	}
	c.respond(req, response{hops: req.hops})
	// Shrinking the range may strand held requests this peer no longer
	// owns; replay them so they are forwarded to the new owner.
	c.replayHeld(p)
}

// applyHandoff runs in the peer's goroutine: absorb the migrated items,
// retire the matching pending region, acknowledge to the coordinator and
// replay everything that was buffered while the region was in flight.
func (c *Cluster) applyHandoff(p *peer, req request) {
	if p.departed {
		// A tombstone can still be the recorded destination if it departed
		// in a later operation while this handoff was in flight; pass the
		// items (and the coordinator's ack) along to its successor.
		if !c.send(p.departTo, req) {
			c.refuse(p, req, ErrOwnerDown)
		}
		return
	}
	p.data.Absorb(req.bulk)
	p.noteItems()
	// The absorbed items are new local writes as far as replication is
	// concerned: ship the delta to the holder (the synchronous phase-6
	// resync of the coordinating operation makes it exact afterwards).
	c.replicateWrite(p, req.bulk, nil)
	for i, r := range p.pending {
		if r == req.rng {
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			break
		}
	}
	c.respond(req, response{count: len(req.bulk), hops: req.hops})
	c.replayHeld(p)
}

// replayHeld re-handles every buffered request; those still touching a
// pending region are buffered again by handle.
func (c *Cluster) replayHeld(p *peer) {
	if len(p.held) == 0 {
		return
	}
	held := p.held
	p.held = nil
	for _, h := range held {
		c.handle(p, h)
	}
}

// snapshot exports the peer's protocol state; runs in the peer goroutine.
func (p *peer) snapshot() *core.PeerSnapshot {
	linkID := func(l *link) core.PeerID {
		if l == nil {
			return core.NoPeer
		}
		return l.id
	}
	last := len(p.children) - 1
	ps := &core.PeerSnapshot{
		ID:            p.id,
		Position:      p.pos,
		Range:         p.rng,
		Items:         p.data.Items(),
		Parent:        linkID(p.parent),
		LeftChild:     linkID(p.children[0]),
		RightChild:    linkID(p.children[last]),
		LeftAdjacent:  linkID(p.adjacent[0]),
		RightAdjacent: linkID(p.adjacent[1]),
	}
	for s := 1; s < last; s++ {
		ps.MidChildren = append(ps.MidChildren, linkID(p.children[s]))
	}
	for _, l := range p.rt[0] {
		ps.LeftRouting = append(ps.LeftRouting, linkID(l))
	}
	for _, l := range p.rt[1] {
		ps.RightRouting = append(ps.RightRouting, linkID(l))
	}
	return ps
}

// Snapshot exports the protocol state of every member peer — positions,
// ranges, items and the full link sets, killed members included — as the
// same snapshot format the simulator produces, so the live structure can be
// audited with core.VerifySnapshot (or rebuilt into a core.Network with
// core.FromSnapshot). Snapshot holds the membership lock, so the structure
// is quiescent: no join, departure or shuffle is in progress and no handoff
// is in flight. Data traffic may keep running; each peer's items are
// captured atomically with respect to its own request handling.
func (c *Cluster) Snapshot() ([]core.PeerSnapshot, error) {
	if err := c.requireCoordinator(); err != nil {
		return nil, err
	}
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	if c.stopped.Load() {
		return nil, ErrStopped
	}
	t := c.topo.Load()
	waits := make([]chan response, 0, len(t.ids))
	for _, id := range t.ids {
		ch := make(chan response, 1)
		if !c.sendAny(id, request{kind: kindSnapshot, reply: ch}) {
			return nil, ErrStopped
		}
		waits = append(waits, ch)
	}
	out := make([]core.PeerSnapshot, 0, len(waits))
	for _, ch := range waits {
		select {
		case resp := <-ch:
			if resp.snap != nil {
				out = append(out, *resp.snap)
			}
		case <-c.done:
			return nil, ErrStopped
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Position.InOrderBeforeIn(c.fanout, out[j].Position) })
	return out, nil
}
