package p2p

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/store"
)

// verifyReplication quiesces the cluster, closes the asynchronous
// write-path window with SyncReplicas, and audits the replica placement
// against core.VerifyReplication: every peer's items exactly mirrored at
// its holder.
func verifyReplication(t *testing.T, c *Cluster) {
	t.Helper()
	if err := c.SyncReplicas(); err != nil {
		t.Fatalf("sync replicas: %v", err)
	}
	snaps, err := c.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	replicas, err := c.Replicas()
	if err != nil {
		t.Fatalf("replicas: %v", err)
	}
	if err := core.VerifyReplication(snaps, replicas); err != nil {
		t.Fatalf("replication invariant: %v", err)
	}
}

// aliveVia returns an alive member other than the given ones.
func aliveVia(t *testing.T, c *Cluster, not ...core.PeerID) core.PeerID {
	t.Helper()
	for _, id := range c.PeerIDs() {
		skip := !c.Alive(id)
		for _, n := range not {
			skip = skip || id == n
		}
		if !skip {
			return id
		}
	}
	t.Fatal("no alive peer available")
	return core.NoPeer
}

// victimWith returns a member peer matching the predicate over its
// snapshot, preferring peers with many items so the data-restoration path
// is really exercised.
func victimWith(t *testing.T, c *Cluster, pred func(core.PeerSnapshot) bool) core.PeerSnapshot {
	t.Helper()
	snaps, err := c.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	best := -1
	for i, ps := range snaps {
		if !pred(ps) {
			continue
		}
		if best == -1 || len(ps.Items) > len(snaps[best].Items) {
			best = i
		}
	}
	if best == -1 {
		t.Fatal("no peer matches the victim predicate")
	}
	return snaps[best]
}

// TestKillRecoverRestoresData: after Kill of a non-empty leaf peer its
// range answers ErrOwnerDown; after Recover every key it owned is readable
// again with its pre-crash value, restored from the replica (the dead
// peer's own store was wiped at Kill). The repaired structure passes both
// the structural and the replication invariant suites.
func TestKillRecoverRestoresData(t *testing.T) {
	c, _ := liveCluster(t, 40, 1200, 211)
	ps := victimWith(t, c, func(ps core.PeerSnapshot) bool {
		return ps.LeftChild == core.NoPeer && ps.RightChild == core.NoPeer && len(ps.Items) > 0
	})
	if err := c.Kill(ps.ID); err != nil {
		t.Fatal(err)
	}
	// The wiped store is really gone: recovery cannot cheat by reading it.
	if n := c.peerByID(ps.ID).data.Len(); n != 0 {
		t.Fatalf("killed peer still stores %d items", n)
	}
	via := aliveVia(t, c, ps.ID)
	for _, it := range ps.Items[:3] {
		if _, _, _, err := c.Get(via, it.Key); !errors.Is(err, ErrOwnerDown) {
			t.Fatalf("get %d with owner down: err = %v, want ErrOwnerDown", it.Key, err)
		}
	}

	restored, err := c.Recover(ps.ID)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if restored != len(ps.Items) {
		t.Fatalf("recover restored %d items, the victim owned %d", restored, len(ps.Items))
	}
	if got := c.Size(); got != 39 {
		t.Fatalf("cluster size after recovery = %d, want 39 (crashed peer repaired out)", got)
	}
	for _, it := range ps.Items {
		v, found, _, err := c.Get(via, it.Key)
		if err != nil || !found {
			t.Fatalf("get %d after recovery: found=%v err=%v", it.Key, found, err)
		}
		if string(v) != string(it.Value) {
			t.Fatalf("get %d after recovery returned %q, want pre-crash %q", it.Key, v, it.Value)
		}
	}
	// Stale routing state addressing the dead peer is forwarded, not
	// refused: the tombstone makes ErrOwnerDown transient for old clients
	// too.
	if _, found, _, err := c.Get(ps.ID, ps.Items[0].Key); err != nil || !found {
		t.Fatalf("get via recovered peer's tombstone: found=%v err=%v", found, err)
	}
	verifyCluster(t, c)
	verifyReplication(t, c)
}

// TestRecoverNonLeafPeer: recovering a peer with children exercises the
// replacement-leaf path of the crash repair.
func TestRecoverNonLeafPeer(t *testing.T) {
	c, keys := liveCluster(t, 40, 1200, 223)
	ps := victimWith(t, c, func(ps core.PeerSnapshot) bool {
		return (ps.LeftChild != core.NoPeer || ps.RightChild != core.NoPeer) && len(ps.Items) > 0
	})
	if err := c.Kill(ps.ID); err != nil {
		t.Fatal(err)
	}
	restored, err := c.Recover(ps.ID)
	if err != nil {
		t.Fatalf("recover non-leaf: %v", err)
	}
	if restored != len(ps.Items) {
		t.Fatalf("recover restored %d items, the victim owned %d", restored, len(ps.Items))
	}
	via := aliveVia(t, c)
	for _, k := range keys {
		v, found, _, err := c.Get(via, k)
		if err != nil || !found {
			t.Fatalf("get %d after non-leaf recovery: found=%v err=%v", k, found, err)
		}
		if string(v) != fmt.Sprint(k) {
			t.Fatalf("get %d returned %q", k, v)
		}
	}
	verifyCluster(t, c)
	verifyReplication(t, c)
}

// TestRecoverValidation: recovering an alive or unknown peer is refused.
func TestRecoverValidation(t *testing.T) {
	c, _ := liveCluster(t, 8, 50, 227)
	ids := c.PeerIDs()
	if _, err := c.Recover(ids[0]); err == nil {
		t.Fatal("recovering an alive peer must fail")
	}
	if _, err := c.Recover(core.PeerID(9999)); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("recovering an unknown peer: err = %v, want ErrUnknownPeer", err)
	}
}

// TestRecoverWithDeadHolderRepairsStructure: when the crashed peer's
// replica holder is dead too, the range is still repaired — it must come
// back up — but the data is gone and Recover says so with ErrReplicaLost.
func TestRecoverWithDeadHolderRepairsStructure(t *testing.T) {
	c, _ := liveCluster(t, 30, 600, 229)
	ps := victimWith(t, c, func(ps core.PeerSnapshot) bool {
		return len(ps.Items) > 0 && core.ReplicaHolderOf(ps) != core.NoPeer
	})
	holder := core.ReplicaHolderOf(ps)
	if err := c.Kill(holder); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(ps.ID); err != nil {
		t.Fatal(err)
	}
	restored, err := c.Recover(ps.ID)
	if !errors.Is(err, ErrReplicaLost) {
		t.Fatalf("recover with dead holder: err = %v, want ErrReplicaLost", err)
	}
	if restored != 0 {
		t.Fatalf("recover with dead holder restored %d items from nowhere", restored)
	}
	// The range is served again (empty), and the other dead peer can now be
	// repaired normally — its own holder may have been the first victim, so
	// tolerate a lost replica, but the structure must heal.
	if _, err := c.Recover(holder); err != nil && !errors.Is(err, ErrReplicaLost) {
		t.Fatalf("recover holder: %v", err)
	}
	via := aliveVia(t, c)
	if _, _, _, err := c.Get(via, ps.Range.Lower); err != nil {
		t.Fatalf("get in repaired-but-lost range: %v", err)
	}
	verifyCluster(t, c)
	verifyReplication(t, c)
}

// TestAutoRecoverRepairsObservedCrashes: with the background repairer
// running, a killed peer's range heals without an explicit Recover call —
// plain traffic observing ErrOwnerDown is enough to trigger the repair.
func TestAutoRecoverRepairsObservedCrashes(t *testing.T) {
	c, _ := liveCluster(t, 30, 600, 233)
	c.StartAutoRecover()
	ps := victimWith(t, c, func(ps core.PeerSnapshot) bool { return len(ps.Items) > 0 })
	if err := c.Kill(ps.ID); err != nil {
		t.Fatal(err)
	}
	via := aliveVia(t, c, ps.ID)
	probe := ps.Items[0]
	deadline := time.Now().Add(15 * time.Second)
	for {
		v, found, _, err := c.Get(via, probe.Key)
		if err == nil && found && string(v) == string(probe.Value) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-recover did not heal the range: last found=%v err=%v", found, err)
		}
		time.Sleep(time.Millisecond)
	}
	for _, it := range ps.Items {
		v, found, _, err := c.Get(via, it.Key)
		if err != nil || !found || string(v) != string(it.Value) {
			t.Fatalf("get %d after auto-recover: found=%v err=%v v=%q", it.Key, found, err, v)
		}
	}
	verifyCluster(t, c)
}

// TestBulkRetryViaDeadCoordinator is the regression test for the bulk
// retry path: a moved key used to be re-issued via the original batch
// coordinator, so when that coordinator was dead the retry failed with
// ErrOwnerDown even though the key's current owner was alive. The retry
// must route via an alive peer from the current topology instead.
func TestBulkRetryViaDeadCoordinator(t *testing.T) {
	c, keys := liveCluster(t, 20, 400, 239)
	// Pick a key and a coordinator that does NOT own it, then kill the
	// coordinator: exactly the state bulk() is in when a concurrent
	// membership change moved the key and the old batch peer has since
	// died.
	key := keys[0]
	owner := c.ownerOf(key)
	var dead core.PeerID
	for _, id := range c.PeerIDs() {
		if id != owner.id {
			dead = id
			break
		}
	}
	if err := c.Kill(dead); err != nil {
		t.Fatal(err)
	}
	res := c.bulkRetry(kindBulkGet, dead, store.Item{Key: key})
	if res.Err != nil {
		t.Fatalf("bulk retry via dead coordinator: %v (owner %d is alive)", res.Err, owner.id)
	}
	if !res.Found || string(res.Value) != fmt.Sprint(key) {
		t.Fatalf("bulk retry returned found=%v value=%q", res.Found, res.Value)
	}
	// And when the key's owner itself is dead, the retry reports an honest
	// ErrOwnerDown rather than hanging or succeeding.
	deadKey := keys[1]
	if c.ownerOf(deadKey).id == dead {
		t.Skip("second key owned by the killed coordinator; seed collision")
	}
	if err := c.Kill(c.ownerOf(deadKey).id); err != nil {
		t.Fatal(err)
	}
	res = c.bulkRetry(kindBulkGet, dead, store.Item{Key: deadKey})
	if !errors.Is(res.Err, ErrOwnerDown) {
		t.Fatalf("bulk retry for a dead owner: err = %v, want ErrOwnerDown", res.Err)
	}
}

// TestRangeScattersPastDeadAdjacent is the regression test for the scatter
// fan-out: a dead peer used to truncate the leading segment of the scatter
// at its own range even when everything past it was alive and reachable.
// With exactly one dead peer, a range query must return every item except
// the dead peer's own slice, whichever peer died.
func TestRangeScattersPastDeadAdjacent(t *testing.T) {
	for _, victimIdx := range []int{1, 2, 3, 7, 11} {
		c, keys := liveCluster(t, 16, 500, 241)
		ring := c.topo.Load().ring
		if victimIdx >= len(ring)-1 {
			continue
		}
		victim := ring[victimIdx].p
		if err := c.Kill(victim.id); err != nil {
			t.Fatal(err)
		}
		via := ring[0].id // owns the domain's lower bound, stays alive
		r := c.Domain()
		items, _, err := c.Range(via, r)
		dead := 0
		for _, k := range keys {
			if victim.rng.Contains(k) {
				dead++
			}
		}
		if dead > 0 && !errors.Is(err, ErrOwnerDown) {
			t.Fatalf("victim #%d: err = %v, want ErrOwnerDown (victim owned %d keys)", victimIdx, err, dead)
		}
		got := make(map[keyspace.Key]bool, len(items))
		for _, it := range items {
			if victim.rng.Contains(it.Key) {
				t.Fatalf("victim #%d: item %d served from the dead peer's range", victimIdx, it.Key)
			}
			got[it.Key] = true
		}
		for _, k := range keys {
			if !victim.rng.Contains(k) && !got[k] {
				t.Fatalf("victim #%d: alive key %d missing — the scatter was truncated at the dead peer", victimIdx, k)
			}
		}
		// Repair and re-check: the full answer is back, error-free.
		if _, err := c.Recover(victim.id); err != nil {
			t.Fatalf("victim #%d: recover: %v", victimIdx, err)
		}
		items, _, err = c.Range(via, r)
		if err != nil {
			t.Fatalf("victim #%d: range after recovery: %v", victimIdx, err)
		}
		if len(items) < len(got)+dead {
			t.Fatalf("victim #%d: range after recovery returned %d items, want at least %d", victimIdx, len(items), len(got)+dead)
		}
		c.Stop()
	}
}

// TestCrashStormNoReplicatedWriteLost is the -race stress test of the
// fault-tolerance layer: concurrent Get/Put/Range traffic runs while peers
// are killed and recovered, and the test asserts the replication
// guarantee — no acknowledged write that had been replicated (SyncReplicas
// is the barrier) is ever lost, across every crash — plus the structural
// and replication invariants on the quiesced, fully-recovered cluster.
func TestCrashStormNoReplicatedWriteLost(t *testing.T) {
	const (
		peers   = 20
		preload = 400
		writers = 4
		rounds  = 6
	)
	c, keys := liveCluster(t, peers, preload, 251)
	preloaded := make(map[keyspace.Key]bool, len(keys))
	var acked sync.Map // key -> value string, recorded only after the Put was acknowledged
	for _, k := range keys {
		preloaded[k] = true
		acked.Store(k, fmt.Sprint(k))
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	liveVia := func(rng *rand.Rand) (core.PeerID, bool) {
		ids := c.PeerIDs()
		for tries := 0; tries < 16; tries++ {
			id := ids[rng.Intn(len(ids))]
			if c.Alive(id) {
				return id, true
			}
		}
		return 0, false
	}
	// Writers: unique fresh keys, recorded as acked only on success. Under
	// a crash a Put may fail with ErrOwnerDown — that is the transient
	// window the storm is about — and failed writes are simply not claimed.
	// The light pacing keeps the acknowledged set small enough that the
	// per-round verification stays proportional to the run, not quadratic.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + w)))
			for i := 0; !stop.Load(); i++ {
				// Monotonic per-writer keys: every key is written at most
				// once, so "the acknowledged value" is unambiguous when a
				// crash-restored replica is checked against it.
				if int64(i)*37 >= 190_000_000 {
					return
				}
				k := keyspace.Key(1 + int64(w)*200_000_000 + int64(i)*37)
				if preloaded[k] {
					continue
				}
				via, ok := liveVia(rng)
				if !ok {
					continue
				}
				val := fmt.Sprintf("w%d-%d", w, i)
				if _, err := c.Put(via, k, []byte(val)); err == nil {
					acked.Store(k, val)
				}
				time.Sleep(100 * time.Microsecond)
			}
		}(w)
	}
	// Readers: background pressure on the routed paths; errors during the
	// crash windows are the expected transient behaviour.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + r)))
			for !stop.Load() {
				via, ok := liveVia(rng)
				if !ok {
					continue
				}
				if rng.Intn(2) == 0 {
					c.Get(via, keys[rng.Intn(len(keys))])
				} else {
					lo := keyspace.Key(1 + rng.Int63n(900_000_000))
					c.Range(via, keyspace.NewRange(lo, lo+5_000_000))
				}
			}
		}(r)
	}

	// The storm: each round closes the replication window with the
	// SyncReplicas barrier, crashes a random member, repairs it, and then
	// verifies that every write acknowledged before the barrier survived
	// the crash — exhaustively for the keys the victim owned (the at-risk
	// set: exactly the data the crash wiped and recovery had to restore)
	// and by sampling for the rest of the key space.
	stormRng := rand.New(rand.NewSource(500))
	for round := 0; round < rounds; round++ {
		snaps, err := c.Snapshot()
		if err != nil {
			t.Fatalf("round %d: snapshot: %v", round, err)
		}
		victimSnap := snaps[stormRng.Intn(len(snaps))]
		victim := victimSnap.ID
		if err := c.SyncReplicas(); err != nil {
			t.Fatalf("round %d: sync: %v", round, err)
		}
		type kv struct {
			k keyspace.Key
			v string
		}
		var replicated []kv
		acked.Range(func(k, v any) bool {
			key := k.(keyspace.Key)
			if victimSnap.Range.Contains(key) || stormRng.Intn(20) == 0 {
				replicated = append(replicated, kv{key, v.(string)})
			}
			return true
		})

		if err := c.Kill(victim); err != nil {
			t.Fatalf("round %d: kill %d: %v", round, victim, err)
		}
		if _, err := c.Recover(victim); err != nil {
			t.Fatalf("round %d: recover %d: %v", round, victim, err)
		}
		via := aliveVia(t, c)
		for _, p := range replicated {
			v, found, _, err := c.Get(via, p.k)
			if err != nil || !found {
				t.Fatalf("round %d: replicated acknowledged write %d lost after crash of %d: found=%v err=%v",
					round, p.k, victim, found, err)
			}
			if string(v) != p.v {
				t.Fatalf("round %d: key %d has value %q after crash of %d, acknowledged %q", round, p.k, v, victim, p.v)
			}
		}
	}

	stop.Store(true)
	wg.Wait()
	// Quiesced, fully-recovered cluster: both invariant suites must hold.
	verifyCluster(t, c)
	verifyReplication(t, c)
	if got, want := c.Size(), peers-rounds; got < want {
		t.Fatalf("cluster size after storm = %d, want at least %d", got, want)
	}
}
