// The adaptive query layer: selectivity-aware range planning, streaming
// range iterators and predicate pushdown over the live cluster.
//
// BATON makes range selectivity visible for free. The published topology
// snapshot carries the key-ordered ring — every member's range lower bound
// at publication time — so the number of peers a range touches is two
// binary searches against state every client already holds: no messages,
// no locks, no statistics machinery. This is the same lock-free pre-check
// discipline as the balancer's balanceLikely.
//
// RangeAdaptive plans per request: it estimates the range's peer-span from
// the ring, asks the query.Planner whether the serial adjacent-chain walk
// or the parallel scatter wins at that span (the crossover is tuned from
// the latencies the cluster itself observes, not a hard-coded constant),
// and dispatches the request straight to the cached owner of the range's
// lower bound. A (range bucket, epoch)-keyed query.Cache short-circuits
// the span estimate and the owner lookup for repeated ranges; every
// ownership publication bumps the epoch, which invalidates the cache
// implicitly. A stale cache entry — the bucket was shared, or ownership
// moved before the epoch bumped — costs forwarding hops (phase-1 routing
// re-aims the request), never correctness.
//
// RangeIter streams: the scatter branches push bounded batches into a
// channel-backed sink as they land instead of materialising one giant
// slice, so a wide range query allocates O(batch), not O(result), on the
// serving peers. Batches arrive in segment-arrival order — each batch is
// internally key-sorted and batches from one peer arrive in order, but
// segments from different peers interleave as they finish. Close must be
// called when abandoning an iterator early; a consumer that stops
// consuming without Close stalls the peers still trying to deliver to it.
package p2p

import (
	"fmt"
	"sort"
	"time"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/obs"
	"baton/internal/query"
	"baton/internal/store"
)

// entryIdx returns the ring index of the member owning key under this
// topology (the slot entryOf resolves, as an index so it can be cached),
// or -1 for an empty ring. Keys below the first entry map to slot 0, the
// extreme-member rule of ownsExtreme.
func (t *topology) entryIdx(key keyspace.Key) int {
	n := len(t.ring)
	if n == 0 {
		return -1
	}
	i := sort.Search(n, func(i int) bool { return t.ring[i].lower > key })
	if i > 0 {
		i--
	}
	return i
}

// spanOf estimates how many member peers the range touches: the ring slots
// from the owner of r.Lower up to (excluding) the first slot whose range
// starts at or beyond r.Upper. Exact against the published ring; a
// concurrent membership change can make it stale by the width of one
// structural operation, which is noise at planning granularity.
func (t *topology) spanOf(r keyspace.Range) int {
	n := len(t.ring)
	if n == 0 || r.IsEmpty() {
		return 1
	}
	lo := t.entryIdx(r.Lower)
	hi := sort.Search(n, func(i int) bool { return t.ring[i].lower >= r.Upper })
	if hi <= lo {
		return 1
	}
	return hi - lo
}

// EstimateSpan returns the number of member peers the range is estimated
// to touch under the current published topology. The estimate is the
// planner's input: two binary searches over the ring, no messages, no
// locks.
func (c *Cluster) EstimateSpan(r keyspace.Range) int {
	return c.topo.Load().spanOf(r)
}

// PlanStats returns the query layer's planning counters: adaptive range
// queries dispatched serially and in parallel, and plan-cache hits.
func (c *Cluster) PlanStats() obs.PlanSnapshot { return c.plans.Snapshot() }

// planRange resolves the plan for a range query under topology t: span and
// owner slot from the plan cache when current, recomputed and cached
// otherwise. The plan itself is always re-chosen — query.Planner.Choose is
// a handful of atomic operations — so the trial schedule keeps tuning even
// on all-hit workloads. A query with a pushdown limit is always served
// serially: the
// chain stops the moment the limit is reached, while a scatter would fan
// work out to peers whose items are then thrown away.
func (c *Cluster) planRange(t *topology, r keyspace.Range, pred *query.Pred) (query.Plan, int, int) {
	var span, ownerIdx int
	bucket := query.BucketOf(r)
	if e, ok := c.planCache.Get(bucket, t.epoch); ok {
		c.plans.CacheHit()
		span, ownerIdx = e.Span, e.OwnerIdx
	} else {
		span = t.spanOf(r)
		ownerIdx = t.entryIdx(r.Lower)
		c.planCache.Put(bucket, t.epoch, span, ownerIdx)
	}
	var plan query.Plan
	if pred.LimitOrZero() > 0 {
		plan = query.PlanSerial
	} else {
		plan = c.planner.Choose(span)
	}
	if plan == query.PlanSerial {
		c.plans.Serial()
	} else {
		c.plans.Parallel()
	}
	return plan, span, ownerIdx
}

// RangeAdaptive answers the range query like Range / RangeSerial, but
// picks the execution per request: the peer-span of the range is estimated
// from the published ring and the self-tuned planner dispatches the serial
// chain walk for narrow ranges and the parallel scatter for wide ones.
// The request enters the overlay at the cached owner of r.Lower (falling
// back to via when the slot is dead or unknown), so repeated ranges skip
// phase-1 routing too. Items are returned in key order.
func (c *Cluster) RangeAdaptive(via core.PeerID, r keyspace.Range) ([]store.Item, int, error) {
	return c.rangePlanned(via, r, nil)
}

// RangeFiltered is RangeAdaptive with predicate pushdown: pred is
// evaluated at each owning peer, so items that cannot match never cross
// the wire, and a positive pred.Limit caps the result — served by a
// serial walk that terminates the chain as soon as the limit is satisfied.
func (c *Cluster) RangeFiltered(via core.PeerID, r keyspace.Range, pred *query.Pred) ([]store.Item, int, error) {
	pred.Normalize()
	return c.rangePlanned(via, r, pred)
}

func (c *Cluster) rangePlanned(via core.PeerID, r keyspace.Range, pred *query.Pred) ([]store.Item, int, error) {
	if c.stopped.Load() {
		return nil, 0, ErrStopped
	}
	t := c.topo.Load()
	if _, ok := t.peers[via]; !ok {
		return nil, 0, fmt.Errorf("%w: %d", ErrUnknownPeer, via)
	}
	plan, span, ownerIdx := c.planRange(t, r, pred)
	req := request{kind: kindRange, key: r.Lower, rng: r, par: plan == query.PlanParallel}
	if pred != nil {
		req.kind = kindRangePred
		req.pred = pred
	}
	start := time.Now()
	resp, err := c.issueToEntry(via, t, ownerIdx, req)
	if err != nil {
		return nil, 0, err
	}
	if resp.err == nil && pred.LimitOrZero() == 0 {
		// Feed the tuner with clean, comparable measurements only: no
		// failed-over queries, no limit-truncated walks.
		c.planner.Observe(plan, span, time.Since(start).Nanoseconds())
	}
	return resp.items, resp.hops, resp.err
}

// GetFiltered is Get with predicate pushdown: the predicate is evaluated
// at the owning peer, so a non-matching value never crosses the wire.
// Found reports whether the key is present AND matches. Routed like Get
// (owner-direct under RouteDirect).
func (c *Cluster) GetFiltered(via core.PeerID, key keyspace.Key, pred *query.Pred) ([]byte, bool, int, error) {
	pred.Normalize()
	resp, err := c.route(via, request{kind: kindGetPred, key: key, pred: pred})
	if err != nil {
		return nil, false, 0, err
	}
	return resp.value, resp.found, resp.hops, resp.err
}

// issueToEntry issues the request straight to the ring slot idx of
// topology t when that member is alive, falling back to the overlay path
// entered at via otherwise — the same degradation issueDirect applies. A
// misaimed direct send (the cached slot no longer owns the range's lower
// bound) is re-routed by phase-1 forwarding at the receiver.
func (c *Cluster) issueToEntry(via core.PeerID, t *topology, idx int, req request) (response, error) {
	if idx >= 0 && idx < len(t.ring) {
		e := &t.ring[idx]
		if e.p.alive.Load() {
			req.reply = getReply()
			if c.deliverTo(e.p, req, false) {
				select {
				case resp := <-req.reply:
					putReply(req.reply)
					return resp, nil
				case <-c.done:
					//batonvet:ignore replypool abandoned on Stop by design: the late answer must not reach the pool (see replyPool's doc comment)
					return response{}, ErrStopped
				}
			}
			// The slot died (or a tombstone was retired) between the
			// topology load and the delivery: nothing was sent, so the
			// channel is clean.
			putReply(req.reply)
			req.reply = nil
		}
	}
	return c.issue(via, req)
}

// iterBatchSize bounds how many items one streaming batch carries: big
// enough to amortise the channel send, small enough that the iterator's
// peak memory stays O(batch) per in-flight branch.
const iterBatchSize = 256

// sinkBuffer is the streaming sink's channel capacity, in batches: the
// slack between producing peers and the consuming client before
// backpressure blocks a branch.
const sinkBuffer = 16

// rangeSink is the bounded channel-backed sink of a streaming range query.
// Peer goroutines deliver batches through send, which blocks when the
// client lags (that is the backpressure bound on the query's memory) but
// never indefinitely: a send aborts when the iterator is closed or the
// cluster stops.
type rangeSink struct {
	ch     chan iterBatch
	cancel chan struct{}
	done   <-chan struct{} // cluster shutdown broadcast
}

// iterBatch is one delivery to a streaming iterator: a batch of items, or
// the final summary (hop count and error) when final is set.
type iterBatch struct {
	items []store.Item
	final bool
	hops  int
	err   error
}

// send delivers one non-empty batch. It reports false when the iterator
// was cancelled or the cluster stopped, telling the producing branch to
// stop scanning.
func (s *rangeSink) send(items []store.Item) bool {
	select {
	case s.ch <- iterBatch{items: items}:
		return true
	case <-s.cancel:
		return false
	case <-s.done:
		return false
	}
}

// close delivers the final summary. Called exactly once, by the branch
// that takes the collector's pending count to zero — after every other
// branch's sends completed — so the iterator sees it last.
func (s *rangeSink) close(hops int, err error) {
	select {
	case s.ch <- iterBatch{final: true, hops: hops, err: err}:
	case <-s.cancel:
	case <-s.done:
	}
}

// RangeIter is a streaming range query in progress. Use it like:
//
//	it, err := c.RangeIter(via, r)
//	if err != nil { ... }
//	defer it.Close()
//	for it.Next() {
//		item := it.Item()
//		...
//	}
//	if err := it.Err(); err != nil { ... }
//
// Items arrive in segment-arrival order: each covering peer's contribution
// is internally key-sorted, but contributions from different peers
// interleave as the scatter branches finish — the price of yielding items
// as they land instead of materialising and stitching the whole result.
// A membership change mid-iteration (join, departure, crash, recovery) is
// handled exactly as the materialising scatter handles it: sub-requests
// addressed with stale state are re-routed, regions in mid-handoff are
// briefly buffered, and a segment whose owner is dead surfaces as
// ErrOwnerDown from Err with the rest of the items intact — never lost or
// duplicated items.
//
// A RangeIter is not safe for concurrent use. Close is idempotent and
// must be called when abandoning the iterator before Next returned false;
// leaking an unconsumed, unclosed iterator stalls the peers still trying
// to deliver to it until the cluster stops.
type RangeIter struct {
	sink    *rangeSink
	cur     []store.Item
	idx     int
	limit   int
	yielded int
	hops    int
	err     error
	done    bool
	closed  bool
}

// RangeIter starts a streaming range query: the parallel scatter runs as
// in Range, but branches stream their contributions through a bounded
// sink as they land and the iterator yields them without ever
// materialising the full result.
func (c *Cluster) RangeIter(via core.PeerID, r keyspace.Range) (*RangeIter, error) {
	return c.rangeIter(via, r, nil)
}

// RangeIterFiltered is RangeIter with predicate pushdown: pred is
// evaluated at each producing peer, and a positive pred.Limit stops the
// iterator after that many items (remaining branches are cancelled).
func (c *Cluster) RangeIterFiltered(via core.PeerID, r keyspace.Range, pred *query.Pred) (*RangeIter, error) {
	pred.Normalize()
	return c.rangeIter(via, r, pred)
}

func (c *Cluster) rangeIter(via core.PeerID, r keyspace.Range, pred *query.Pred) (*RangeIter, error) {
	if c.stopped.Load() {
		return nil, ErrStopped
	}
	t := c.topo.Load()
	if _, ok := t.peers[via]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownPeer, via)
	}
	// Streaming is always the parallel scatter — a serial chain cannot
	// yield anything before the walk completes — so only the owner slot is
	// interesting; the cache still skips the lookup for repeated ranges.
	var ownerIdx int
	bucket := query.BucketOf(r)
	if e, ok := c.planCache.Get(bucket, t.epoch); ok {
		c.plans.CacheHit()
		ownerIdx = e.OwnerIdx
	} else {
		ownerIdx = t.entryIdx(r.Lower)
		c.planCache.Put(bucket, t.epoch, t.spanOf(r), ownerIdx)
	}
	c.plans.Parallel()
	sink := &rangeSink{
		ch:     make(chan iterBatch, sinkBuffer),
		cancel: make(chan struct{}),
		done:   c.done,
	}
	// The collector is built client-side so the sink and predicate travel
	// with the request; the coordinating peer seeds no collector of its
	// own (see handleRange). One pending unit covers the coordinator's
	// branch, exactly as handleRange would grow it.
	coll := &collector{pred: pred, sink: sink}
	coll.grow(1)
	req := request{kind: kindRange, key: r.Lower, rng: r, par: true, coll: coll}
	if pred != nil {
		req.kind = kindRangePred
		req.pred = pred
	}
	if !c.sendToEntry(t, ownerIdx, req) && !c.send(via, req) {
		if c.stopped.Load() {
			return nil, ErrStopped
		}
		c.suspect(via)
		return nil, fmt.Errorf("%w: %d", ErrOwnerDown, via)
	}
	return &RangeIter{sink: sink, limit: pred.LimitOrZero()}, nil
}

// sendToEntry delivers the request to the ring slot idx of topology t,
// reporting false when the slot is out of range, dead or unreachable.
func (c *Cluster) sendToEntry(t *topology, idx int, req request) bool {
	if idx < 0 || idx >= len(t.ring) {
		return false
	}
	e := &t.ring[idx]
	if !e.p.alive.Load() {
		return false
	}
	return c.deliverTo(e.p, req, false)
}

// Next advances to the next item, blocking until one is available, and
// reports whether there is one. It returns false when the query is
// exhausted, the pushdown limit is reached, or the cluster stops — then
// Err reports how the query ended.
func (it *RangeIter) Next() bool {
	if it.done || it.closed {
		return false
	}
	if it.limit > 0 && it.yielded >= it.limit {
		// The limit is satisfied: cancel the remaining branches, their
		// work cannot be needed.
		it.done = true
		it.Close()
		return false
	}
	it.idx++
	for it.idx >= len(it.cur) {
		select {
		case b := <-it.sink.ch:
			if b.final {
				it.hops, it.err = b.hops, b.err
				it.done = true
				return false
			}
			it.cur, it.idx = b.items, 0
		case <-it.sink.done:
			it.err = ErrStopped
			it.done = true
			return false
		}
	}
	it.yielded++
	return true
}

// Item returns the current item. Valid only after a Next that returned
// true.
func (it *RangeIter) Item() store.Item { return it.cur[it.idx] }

// Err returns how the query ended: nil for a complete answer, ErrOwnerDown
// when a segment's owner was dead (the yielded items are the partial
// answer), ErrStopped when the cluster shut down mid-iteration. Valid
// after Next returned false.
func (it *RangeIter) Err() error { return it.err }

// Hops returns the longest message chain across the scatter's branches,
// like Range's hop count. Valid after Next returned false with a complete
// answer.
func (it *RangeIter) Hops() int { return it.hops }

// Close cancels the iterator: producing branches stop scanning and
// delivering. Idempotent. Must be called when the iterator is abandoned
// before exhaustion; calling it after Next returned false is harmless.
func (it *RangeIter) Close() {
	if !it.closed {
		it.closed = true
		close(it.sink.cancel)
	}
}
