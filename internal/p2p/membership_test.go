package p2p

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"baton/internal/core"
	"baton/internal/keyspace"
)

// verifyCluster quiesces the cluster, snapshots it and round-trips the
// snapshot through the simulator's structural invariant suite.
func verifyCluster(t *testing.T, c *Cluster) []core.PeerSnapshot {
	t.Helper()
	snaps, err := c.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := core.VerifySnapshot(c.Domain(), snaps); err != nil {
		t.Fatalf("post-quiesce invariants: %v", err)
	}
	return snaps
}

// TestClusterJoinGrowsAndServes: online joins grow the cluster, migrate the
// split-off data, keep every pre-loaded key readable, and the resulting
// structure passes the simulator's invariants.
func TestClusterJoinGrowsAndServes(t *testing.T) {
	c, keys := liveCluster(t, 20, 500, 101)
	ids := c.PeerIDs()
	rng := rand.New(rand.NewSource(102))

	var joined []core.PeerID
	for i := 0; i < 15; i++ {
		id, err := c.Join(ids[rng.Intn(len(ids))])
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		joined = append(joined, id)
	}
	if got := c.Size(); got != 35 {
		t.Fatalf("cluster size after joins = %d, want 35", got)
	}
	verifyCluster(t, c)

	// Every pre-loaded key is still readable, including via brand-new peers.
	all := append(append([]core.PeerID{}, c.PeerIDs()...), joined...)
	for i, k := range keys {
		via := all[i%len(all)]
		v, found, _, err := c.Get(via, k)
		if err != nil || !found {
			t.Fatalf("get %d via %d after joins: found=%v err=%v", k, via, found, err)
		}
		if string(v) != fmt.Sprint(k) {
			t.Fatalf("get %d returned %q", k, v)
		}
	}
	// New peers own real ranges and answer writes.
	for _, id := range joined {
		p := c.peerByID(id)
		if p == nil {
			t.Fatalf("joined peer %d missing from topology", id)
		}
		if _, err := c.Put(id, p.rng.Lower, []byte("x")); err != nil {
			t.Fatalf("put via joined peer %d: %v", id, err)
		}
	}
}

// TestClusterDepartMigratesData: graceful departures — safe leaves and
// non-leaf peers needing a replacement — hand every stored item off, so all
// acknowledged data stays readable and the shrunken structure stays valid.
func TestClusterDepartMigratesData(t *testing.T) {
	c, keys := liveCluster(t, 40, 800, 103)
	rng := rand.New(rand.NewSource(104))

	// Depart 25 peers chosen at random: over that many removals from a
	// 40-peer tree both the safe-leaf and the replacement path run.
	for i := 0; i < 25; i++ {
		ids := c.PeerIDs()
		id := ids[rng.Intn(len(ids))]
		if err := c.Depart(id); err != nil {
			t.Fatalf("depart %d (#%d): %v", id, i, err)
		}
		// Departed peers are no longer members but still answer as
		// forwarding tombstones.
		if _, found, _, err := c.Get(id, keys[0]); err != nil || !found {
			t.Fatalf("get via departed peer %d: found=%v err=%v", id, found, err)
		}
	}
	if got := c.Size(); got != 15 {
		t.Fatalf("cluster size after departures = %d, want 15", got)
	}
	snaps := verifyCluster(t, c)
	total := 0
	for _, ps := range snaps {
		total += len(ps.Items)
	}
	if total != len(keys) {
		t.Fatalf("items after departures = %d, want %d (no write may be lost)", total, len(keys))
	}
	for _, k := range keys {
		if _, found, _, err := c.Get(c.PeerIDs()[0], k); err != nil || !found {
			t.Fatalf("get %d after departures: found=%v err=%v", k, found, err)
		}
	}
}

// TestClusterDepartLastPeerRefused: the final peer cannot leave.
func TestClusterDepartLastPeerRefused(t *testing.T) {
	c, _ := liveCluster(t, 2, 10, 105)
	ids := c.PeerIDs()
	if err := c.Depart(ids[0]); err != nil {
		t.Fatalf("departing one of two peers: %v", err)
	}
	last := c.PeerIDs()[0]
	if err := c.Depart(last); !errors.Is(err, core.ErrLastPeer) {
		t.Fatalf("departing the last peer: %v, want ErrLastPeer", err)
	}
	if err := c.Depart(ids[0]); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("departing an already-departed peer: %v, want ErrUnknownPeer", err)
	}
}

// TestClusterDepartKilledPeerRefused: a killed peer cannot leave gracefully
// (its data is gone; graceful departure would pretend to hand it off).
func TestClusterDepartKilledPeerRefused(t *testing.T) {
	c, _ := liveCluster(t, 10, 50, 106)
	id := c.PeerIDs()[3]
	if err := c.Kill(id); err != nil {
		t.Fatal(err)
	}
	if err := c.Depart(id); !errors.Is(err, ErrOwnerDown) {
		t.Fatalf("departing a killed peer: %v, want ErrOwnerDown", err)
	}
}

// TestClusterLoadBalance: the adjacent-peer shuffle of Section V moves
// about half the imbalance to the lighter neighbour while every key stays
// readable and the structure stays valid.
func TestClusterLoadBalance(t *testing.T) {
	c, _ := liveCluster(t, 16, 0, 107)
	// Skew: load one peer with a burst of keys inside its own range.
	snaps := verifyCluster(t, c)
	victim := snaps[len(snaps)/2]
	span := victim.Range.Size()
	if span < 200 {
		t.Fatalf("victim range too narrow for the test: %v", victim.Range)
	}
	var keys []keyspace.Key
	for i := int64(0); i < 200; i++ {
		k := victim.Range.Lower + keyspace.Key(i*(span/200))
		keys = append(keys, k)
		if _, err := c.Put(victim.ID, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	before, err := c.peerCount(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := c.LoadBalance(victim.ID)
	if err != nil {
		t.Fatalf("load balance: %v", err)
	}
	if moved == 0 {
		t.Fatal("load balance moved no items off a peer with 200 vs ~0 items")
	}
	after, err := c.peerCount(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after != before-moved {
		t.Fatalf("victim count %d after moving %d of %d", after, moved, before)
	}
	if after < before/4 || after > 3*before/4 {
		t.Fatalf("shuffle should move about half the imbalance: %d -> %d", before, after)
	}
	verifyCluster(t, c)
	for _, k := range keys {
		if _, found, _, err := c.Get(victim.ID, k); err != nil || !found {
			t.Fatalf("get %d after load balance: found=%v err=%v", k, found, err)
		}
	}
}

// TestSnapshotInvariantsAfterRandomChurn: random interleavings of Join,
// Depart and Kill leave a structure that always satisfies the simulator's
// full invariant suite (balanced shape, contiguous gap-free ranges,
// symmetric link and routing-table state).
func TestSnapshotInvariantsAfterRandomChurn(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		c, _ := liveCluster(t, 24, 200, 200+seed)
		rng := rand.New(rand.NewSource(300 + seed))
		kills := 0
		for i := 0; i < 60; i++ {
			ids := c.PeerIDs()
			id := ids[rng.Intn(len(ids))]
			switch rng.Intn(3) {
			case 0:
				if c.Alive(id) {
					if _, err := c.Join(id); err != nil {
						t.Fatalf("seed %d join via %d: %v", seed, id, err)
					}
				}
			case 1:
				if c.Alive(id) && c.Size() > 2 {
					if err := c.Depart(id); err != nil {
						t.Fatalf("seed %d depart %d: %v", seed, id, err)
					}
				}
			case 2:
				// Keep kills rare: every kill permanently removes routing
				// capacity (the live cluster does not repair failures).
				if kills < 3 && c.Alive(id) {
					if err := c.Kill(id); err != nil {
						t.Fatal(err)
					}
					kills++
				}
			}
		}
		verifyCluster(t, c)
		c.Stop()
	}
}

// TestNoLostWritesUnderChurn is the headline guarantee: while concurrent
// clients Put/Get/Range and the membership churns with Join, Depart and
// Kill, every acknowledged Put remains readable afterwards unless the peer
// currently owning its key was killed (an abrupt failure loses its data by
// design — the paper does not replicate). Run with -race.
func TestNoLostWritesUnderChurn(t *testing.T) {
	c, _ := liveCluster(t, 32, 200, 401)
	domain := keyspace.FullDomain()

	var (
		stop    atomic.Bool
		ackedMu sync.Mutex
		acked   = map[keyspace.Key][]byte{}
	)
	const clients = 8
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(500 + int64(cl)))
			var mine []keyspace.Key
			for !stop.Load() {
				ids := c.PeerIDs()
				via := ids[rng.Intn(len(ids))]
				switch rng.Intn(4) {
				case 0, 1:
					k := domain.Lower + keyspace.Key(rng.Int63n(domain.Size()))
					v := []byte(fmt.Sprintf("c%d-%d", cl, k))
					if _, err := c.Put(via, k, v); err == nil {
						ackedMu.Lock()
						acked[k] = v
						ackedMu.Unlock()
						mine = append(mine, k)
					}
				case 2:
					if len(mine) > 0 {
						c.Get(via, mine[rng.Intn(len(mine))])
					}
				default:
					lo := domain.Lower + keyspace.Key(rng.Int63n(domain.Size()-1_000_000))
					c.Range(via, keyspace.NewRange(lo, lo+1_000_000))
				}
			}
		}(cl)
	}

	// Churn driver: joins, departures and a few kills, interleaved.
	churnRng := rand.New(rand.NewSource(600))
	kills := 0
	for i := 0; i < 40; i++ {
		ids := c.PeerIDs()
		id := ids[churnRng.Intn(len(ids))]
		switch churnRng.Intn(5) {
		case 0, 1:
			if c.Alive(id) {
				if _, err := c.Join(id); err != nil {
					t.Errorf("join via %d: %v", id, err)
				}
			}
		case 2, 3:
			if c.Alive(id) && c.Size() > 2 {
				if err := c.Depart(id); err != nil {
					t.Errorf("depart %d: %v", id, err)
				}
			}
		default:
			if kills < 4 && c.Alive(id) {
				c.Kill(id)
				kills++
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	snaps := verifyCluster(t, c)
	ownerOf := func(k keyspace.Key) core.PeerID {
		for _, ps := range snaps {
			if ps.Range.Contains(k) {
				return ps.ID
			}
		}
		// Outside the domain: the extreme peers own it.
		if k < snaps[0].Range.Lower {
			return snaps[0].ID
		}
		return snaps[len(snaps)-1].ID
	}
	via := c.PeerIDs()[0]
	lost := 0
	for k, want := range acked {
		v, found, _, err := c.Get(via, k)
		if found && string(v) == string(want) {
			continue
		}
		owner := ownerOf(k)
		if !c.Alive(owner) {
			continue // its current owner was killed: data loss is by design
		}
		lost++
		if lost < 5 {
			t.Errorf("acknowledged write %d lost (owner %d alive): found=%v err=%v", k, owner, found, err)
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acknowledged writes lost with alive owners", lost, len(acked))
	}
}

// TestLinkRangesRefreshedAfterJoin is the regression test for stale cached
// link bounds: after a join splits a peer's range, every peer linking to it
// must learn the new bounds. Otherwise killing the split peer later makes
// forward()'s dead-owner rule blame it for keys that migrated to the new
// peer, and reachable data answers ErrOwnerDown.
func TestLinkRangesRefreshedAfterJoin(t *testing.T) {
	c, _ := liveCluster(t, 16, 0, 801)
	before, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	prevRange := map[core.PeerID]keyspace.Range{}
	for _, ps := range before {
		prevRange[ps.ID] = ps.Range
	}
	newID, err := c.Join(c.PeerIDs()[0])
	if err != nil {
		t.Fatal(err)
	}
	after, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Find the peer whose range the join split, and the half that moved.
	var split core.PeerID
	for _, ps := range after {
		if ps.ID == newID {
			continue
		}
		if r, ok := prevRange[ps.ID]; ok && r != ps.Range {
			split = ps.ID
		}
	}
	if split == core.NoPeer {
		t.Fatal("join split no range")
	}
	moved := prevRange[split]
	// Load a key into the migrated half, then kill the split peer: the key
	// lives on the new peer and must stay readable from every via.
	var movedKey keyspace.Key
	for _, ps := range after {
		if ps.ID == newID {
			movedKey = ps.Range.Lower
		}
	}
	if !moved.Contains(movedKey) {
		t.Fatalf("new peer's range %v not carved from %v", movedKey, moved)
	}
	if _, err := c.Put(c.PeerIDs()[0], movedKey, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(split); err != nil {
		t.Fatal(err)
	}
	for _, via := range c.PeerIDs() {
		if !c.Alive(via) {
			continue
		}
		if _, found, _, err := c.Get(via, movedKey); err != nil || !found {
			t.Fatalf("get %d via %d after killing the split peer: found=%v err=%v (stale link bounds?)", movedKey, via, found, err)
		}
	}
}

// TestTombstonesAreReaped: departed peers' forwarder goroutines are retired
// after later structural operations instead of accumulating forever.
func TestTombstonesAreReaped(t *testing.T) {
	c, _ := liveCluster(t, 12, 100, 802)
	id := c.PeerIDs()[4]
	if err := c.Depart(id); err != nil {
		t.Fatal(err)
	}
	if c.peerByID(id) == nil {
		t.Fatal("fresh tombstone must stay addressable for stale senders")
	}
	// Two further structural operations pass: stage 1 (stop deliveries),
	// then stage 2 (drain and drop).
	for i := 0; i < 2; i++ {
		nid, err := c.Join(c.PeerIDs()[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Depart(nid); err != nil {
			t.Fatal(err)
		}
	}
	if c.peerByID(id) != nil {
		t.Fatalf("tombstone %d still in the delivery map after later operations", id)
	}
	// Requests addressed to the reaped peer fail over like a dead peer's.
	if _, _, _, err := c.Get(id, 1); err == nil {
		t.Fatal("request via a reaped peer should error, not hang")
	}
	verifyCluster(t, c)
}

// TestSnapshotRoundTripsThroughCore: a quiesced snapshot rebuilds into a
// working core.Network whose queries agree with the live cluster.
func TestSnapshotRoundTripsThroughCore(t *testing.T) {
	c, keys := liveCluster(t, 25, 300, 701)
	ids := c.PeerIDs()
	if _, err := c.Join(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Depart(ids[len(ids)-1]); err != nil {
		t.Fatal(err)
	}
	snaps, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	nw, err := core.FromSnapshot(c.Domain(), snaps)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:50] {
		_, found, _, err := nw.SearchExact(nw.RandomPeer(), k)
		if err != nil || !found {
			t.Fatalf("rebuilt network: search %d: found=%v err=%v", k, found, err)
		}
	}
}
