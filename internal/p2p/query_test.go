package p2p

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"baton/internal/keyspace"
	"baton/internal/query"
	"baton/internal/store"
)

// uniqueSortedKeys dedups the inserted key list (the generator can collide;
// a colliding insert overwrites) into the ground-truth key set.
func uniqueSortedKeys(keys []keyspace.Key) []keyspace.Key {
	seen := make(map[keyspace.Key]bool, len(keys))
	out := make([]keyspace.Key, 0, len(keys))
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// keysIn returns the subset of ks that fall inside r, in key order.
func keysIn(ks []keyspace.Key, r keyspace.Range) []keyspace.Key {
	var out []keyspace.Key
	for _, k := range ks {
		if r.Contains(k) {
			out = append(out, k)
		}
	}
	return out
}

// checkExactItems asserts items is exactly the key set want: no lost keys,
// no duplicates, nothing outside the set.
func checkExactItems(t *testing.T, items []store.Item, want []keyspace.Key, label string) {
	t.Helper()
	wantSet := make(map[keyspace.Key]bool, len(want))
	for _, k := range want {
		wantSet[k] = true
	}
	got := make(map[keyspace.Key]bool, len(items))
	for _, it := range items {
		if got[it.Key] {
			t.Fatalf("%s: duplicated key %d", label, it.Key)
		}
		got[it.Key] = true
		if !wantSet[it.Key] {
			t.Fatalf("%s: unexpected key %d", label, it.Key)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d distinct keys, want %d", label, len(got), len(want))
	}
}

// TestEstimateSpanMatchesCore pins the planner's input against ground
// truth: on a quiesced cluster at every supported fanout flavour (binary
// BATON and BATON* at m=4 and m=8), EstimateSpan of a range must equal the
// number of peers whose snapshot range overlaps it — the ring published to
// clients and the structural state audited through core agree exactly.
func TestEstimateSpanMatchesCore(t *testing.T) {
	for _, m := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("m=%d", m), func(t *testing.T) {
			c, _ := liveClusterFanout(t, 48, 200, int64(900+m), m)
			snaps, err := c.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			truth := func(r keyspace.Range) int {
				n := 0
				for _, ps := range snaps {
					if ps.Range.Lower < r.Upper && ps.Range.Upper > r.Lower {
						n++
					}
				}
				return n
			}
			if got := c.EstimateSpan(keyspace.FullDomain()); got != c.Size() {
				t.Fatalf("full-domain span = %d, want cluster size %d", got, c.Size())
			}
			rng := rand.New(rand.NewSource(int64(m)))
			for i := 0; i < 200; i++ {
				lo := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-keyspace.DomainMin)))
				width := keyspace.Key(1 + rng.Int63n(int64(keyspace.DomainMax-lo)))
				r := keyspace.NewRange(lo, lo+width)
				if got, want := c.EstimateSpan(r), truth(r); got != want {
					t.Fatalf("EstimateSpan(%v) = %d, want %d (overlapping peer ranges)", r, got, want)
				}
			}
			// A single-key range touches exactly its owner.
			if got := c.EstimateSpan(keyspace.NewRange(500_000, 500_001)); got != 1 {
				t.Fatalf("single-key span = %d, want 1", got)
			}
		})
	}
}

// TestAdaptiveRangeMatchesFixedPlans checks the planned path returns the
// same answer as both fixed flavours across widths, and that the plan
// cache serves repeats: the second identical query must hit.
func TestAdaptiveRangeMatchesFixedPlans(t *testing.T) {
	c, keys := liveCluster(t, 60, 600, 41)
	ids := c.PeerIDs()
	uniq := uniqueSortedKeys(keys)
	rng := rand.New(rand.NewSource(42))
	for _, width := range []keyspace.Key{5_000_000, 80_000_000, 400_000_000, 999_000_000} {
		lo := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-width)))
		r := keyspace.NewRange(lo, lo+width)
		via := ids[rng.Intn(len(ids))]
		before := c.PlanStats()
		items, _, err := c.RangeAdaptive(via, r)
		if err != nil {
			t.Fatalf("adaptive range %v: %v", r, err)
		}
		checkExactItems(t, items, keysIn(uniq, r), fmt.Sprintf("adaptive width %d", width))
		if _, _, err := c.RangeAdaptive(via, r); err != nil {
			t.Fatal(err)
		}
		after := c.PlanStats()
		if after.CacheHits <= before.CacheHits {
			t.Fatalf("repeat of range %v did not hit the plan cache (hits %d -> %d)", r, before.CacheHits, after.CacheHits)
		}
	}
}

// TestPlanCacheNotServedAcrossEpochBump pins the invalidation rule
// red/green: a cached plan must not be served after a membership change
// bumps the topology epoch, and caching must resume at the new epoch.
func TestPlanCacheNotServedAcrossEpochBump(t *testing.T) {
	c, _ := liveCluster(t, 30, 200, 43)
	ids := c.PeerIDs()
	r := keyspace.NewRange(100_000_000, 300_000_000)
	if _, _, err := c.RangeAdaptive(ids[0], r); err != nil { // populates the cache
		t.Fatal(err)
	}
	before := c.PlanStats()
	if _, _, err := c.RangeAdaptive(ids[0], r); err != nil {
		t.Fatal(err)
	}
	mid := c.PlanStats()
	if mid.CacheHits != before.CacheHits+1 {
		t.Fatalf("repeat before the bump: cache hits %d -> %d, want a hit", before.CacheHits, mid.CacheHits)
	}
	if _, err := c.Join(ids[0]); err != nil { // epoch bump
		t.Fatal(err)
	}
	if _, _, err := c.RangeAdaptive(ids[0], r); err != nil {
		t.Fatal(err)
	}
	after := c.PlanStats()
	if after.CacheHits != mid.CacheHits {
		t.Fatalf("first query after the epoch bump was served from the stale cache (hits %d -> %d)", mid.CacheHits, after.CacheHits)
	}
	if _, _, err := c.RangeAdaptive(ids[0], r); err != nil {
		t.Fatal(err)
	}
	if final := c.PlanStats(); final.CacheHits != after.CacheHits+1 {
		t.Fatalf("caching did not resume at the new epoch (hits %d -> %d)", after.CacheHits, final.CacheHits)
	}
}

// TestGetFilteredPushdown pins the single-key pushdown contract: found
// reports present AND matching, and a non-matching value stays put.
func TestGetFilteredPushdown(t *testing.T) {
	c, keys := liveCluster(t, 30, 200, 44)
	ids := c.PeerIDs()
	k := uniqueSortedKeys(keys)[10]
	v, found, _, err := c.GetFiltered(ids[0], k, &query.Pred{MinValueLen: 1})
	if err != nil || !found || string(v) != fmt.Sprint(k) {
		t.Fatalf("matching pred: %q %v %v", v, found, err)
	}
	if _, found, _, err = c.GetFiltered(ids[1], k, &query.Pred{MinValueLen: 100}); err != nil || found {
		t.Fatalf("min-len pred should filter the value out: found=%v err=%v", found, err)
	}
	if _, found, _, err = c.GetFiltered(ids[2], k, &query.Pred{Keys: []keyspace.Key{k}}); err != nil || !found {
		t.Fatalf("key-set pred naming the key should match: found=%v err=%v", found, err)
	}
	if _, found, _, err = c.GetFiltered(ids[3], k, &query.Pred{Keys: []keyspace.Key{k + 1}}); err != nil || found {
		t.Fatalf("key-set pred naming another key should not match: found=%v err=%v", found, err)
	}
}

// TestRangeFilteredPushdown pins the range pushdown: predicate fields
// filter at the owning peers, a limit returns the lowest matching keys
// (the serial walk runs left to right), and the limited walk terminates
// the chain early — measurably fewer hops than the full walk.
func TestRangeFilteredPushdown(t *testing.T) {
	c, keys := liveCluster(t, 60, 800, 45)
	ids := c.PeerIDs()
	uniq := uniqueSortedKeys(keys)
	r := keyspace.NewRange(100_000_000, 900_000_000)
	inRange := keysIn(uniq, r)
	if len(inRange) < 20 {
		t.Fatalf("test needs a populated range, got %d keys", len(inRange))
	}

	items, _, err := c.RangeFiltered(ids[0], r, &query.Pred{MinValueLen: 100})
	if err != nil || len(items) != 0 {
		t.Fatalf("min-len pred should filter everything: %d items, err %v", len(items), err)
	}

	want := []keyspace.Key{inRange[3], inRange[7], inRange[11]}
	items, _, err = c.RangeFiltered(ids[1], r, &query.Pred{Keys: want})
	if err != nil {
		t.Fatal(err)
	}
	checkExactItems(t, items, want, "key-set pushdown")

	const limit = 5
	items, limHops, err := c.RangeFiltered(ids[2], r, &query.Pred{Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	checkExactItems(t, items, inRange[:limit], "limited walk")
	_, fullHops, err := c.RangeSerial(ids[2], r)
	if err != nil {
		t.Fatal(err)
	}
	if limHops >= fullHops {
		t.Fatalf("limited walk took %d hops, full serial walk %d: the limit did not terminate the chain early", limHops, fullHops)
	}
}

// TestRangeIterStreams pins the iterator contract on a healthy cluster:
// the full item set arrives (in segment-arrival order, so compared as a
// set), Err is nil, Hops is populated, and a filtered iterator with a
// limit yields exactly limit items then stops.
func TestRangeIterStreams(t *testing.T) {
	c, keys := liveCluster(t, 60, 800, 46)
	ids := c.PeerIDs()
	uniq := uniqueSortedKeys(keys)
	r := keyspace.NewRange(200_000_000, 800_000_000)

	it, err := c.RangeIter(ids[0], r)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var items []store.Item
	for it.Next() {
		items = append(items, it.Item())
	}
	if it.Err() != nil {
		t.Fatalf("iterator ended with %v", it.Err())
	}
	checkExactItems(t, items, keysIn(uniq, r), "streamed range")
	if it.Hops() == 0 {
		t.Fatal("iterator reported no hops")
	}

	const limit = 7
	lit, err := c.RangeIterFiltered(ids[1], r, &query.Pred{Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	defer lit.Close()
	n := 0
	for lit.Next() {
		if !r.Contains(lit.Item().Key) {
			t.Fatalf("limited iterator yielded %d outside the range", lit.Item().Key)
		}
		n++
	}
	if n != limit {
		t.Fatalf("limited iterator yielded %d items, want %d", n, limit)
	}
	if lit.Err() != nil {
		t.Fatalf("limited iterator ended with %v", lit.Err())
	}
}

// TestRangeIterEpochBumpMidIteration is the red/green churn case: an
// iterator started under one epoch keeps streaming the exact item set
// while a join and a departure republish ownership mid-consumption.
func TestRangeIterEpochBumpMidIteration(t *testing.T) {
	c, keys := liveCluster(t, 50, 900, 47)
	ids := c.PeerIDs()
	uniq := uniqueSortedKeys(keys)
	r := keyspace.NewRange(100_000_000, 950_000_000)

	it, err := c.RangeIter(ids[0], r)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var items []store.Item
	for i := 0; i < 10 && it.Next(); i++ {
		items = append(items, it.Item())
	}
	// Membership changes mid-consumption: both bump the epoch and move
	// item ownership under the running scatter. They run concurrently with
	// the consumption below — the sink's backpressure means producing
	// peers block on a paused consumer, so a consumer must keep consuming
	// (or Close) while structural ops proceed.
	churnDone := make(chan error, 1)
	go func() {
		joined, err := c.Join(ids[1])
		if err != nil {
			churnDone <- err
			return
		}
		churnDone <- c.Depart(joined)
	}()
	for it.Next() {
		items = append(items, it.Item())
	}
	if it.Err() != nil {
		t.Fatalf("iterator across epoch bumps ended with %v", it.Err())
	}
	if err := <-churnDone; err != nil {
		t.Fatalf("churn during iteration: %v", err)
	}
	checkExactItems(t, items, keysIn(uniq, r), "iterator across join+depart")
}

// TestQueryLayerChurnStress interleaves every query-layer entry point with
// joins, departures, crashes and recoveries under the race detector. The
// exactness contract: a query that reports success returns the complete
// item set for its range with no duplicates — churn may fail a query
// (ErrOwnerDown) but must never silently lose or duplicate items. The data
// set is static (no writes), so ground truth never moves.
func TestQueryLayerChurnStress(t *testing.T) {
	c, keys := liveCluster(t, 80, 800, 48)
	ids := c.PeerIDs()
	uniq := uniqueSortedKeys(keys)
	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + w)))
			for i := 0; i < perWorker; i++ {
				via := ids[rng.Intn(len(ids))]
				lo := keyspace.DomainMin + keyspace.Key(rng.Int63n(700_000_000))
				r := keyspace.NewRange(lo, lo+keyspace.Key(1+rng.Int63n(250_000_000)))
				switch i % 4 {
				case 0:
					items, _, err := c.RangeAdaptive(via, r)
					if err == nil {
						checkExactItems(t, items, keysIn(uniq, r), "adaptive under churn")
					}
				case 1:
					it, err := c.RangeIter(via, r)
					if err != nil {
						continue
					}
					var items []store.Item
					for it.Next() {
						items = append(items, it.Item())
					}
					if it.Err() == nil {
						checkExactItems(t, items, keysIn(uniq, r), "iterator under churn")
					}
					it.Close()
				case 2:
					k := uniq[rng.Intn(len(uniq))]
					v, found, _, err := c.GetFiltered(via, k, &query.Pred{MinValueLen: 1})
					if err == nil && found && string(v) != fmt.Sprint(k) {
						t.Errorf("filtered get of %d returned %q", k, v)
					}
				case 3:
					items, _, err := c.RangeFiltered(via, r, &query.Pred{Limit: 10})
					if err == nil && len(items) > 10 {
						t.Errorf("limited range returned %d items", len(items))
					}
				}
			}
		}(w)
	}
	// Churn alongside the queries: grow, shrink, crash and recover. Any
	// individual structural op may be refused (e.g. departing a peer that
	// is mid-something); refusals are not failures.
	churn := rand.New(rand.NewSource(49))
	for i := 0; i < 12; i++ {
		if id, err := c.Join(ids[churn.Intn(len(ids))]); err == nil && i%2 == 0 {
			c.Depart(id)
		}
		victim := ids[churn.Intn(len(ids))]
		if err := c.Kill(victim); err == nil {
			time.Sleep(time.Millisecond)
			c.Recover(victim)
		}
	}
	withTimeout(t, 60*time.Second, "query layer under churn", wg.Wait)
}

// benchRangeCluster builds one shared cluster for the allocation
// benchmarks: wide enough that a full-domain range is a real scatter.
var benchRange = keyspace.FullDomain()

// BenchmarkRangeMaterialised is the baseline the streaming iterator is
// judged against: the scatter gathers every branch's items, merges and
// sorts them into one O(result) slice. Run with -benchmem: the bytes/op
// are dominated by the merged result and the accumulated branch buffers.
func BenchmarkRangeMaterialised(b *testing.B) {
	c, _ := liveCluster(b, 32, 2000, 50)
	ids := c.PeerIDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items, _, err := c.Range(ids[i%len(ids)], benchRange)
		if err != nil {
			b.Fatal(err)
		}
		if len(items) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkRangeIterStreaming consumes the same range through the bounded
// sink: peers ship fixed-size batches and nothing ever materialises the
// whole result, so peak memory is O(batch × in-flight branches) instead of
// O(result) — visible in bytes/op next to BenchmarkRangeMaterialised.
func BenchmarkRangeIterStreaming(b *testing.B) {
	c, _ := liveCluster(b, 32, 2000, 50)
	ids := c.PeerIDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := c.RangeIter(ids[i%len(ids)], benchRange)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for it.Next() {
			n++
		}
		if it.Err() != nil || n == 0 {
			b.Fatalf("streamed %d items, err %v", n, it.Err())
		}
		it.Close()
	}
}
