package p2p

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestMain wraps the package's tests with a goroutine-leak barrier: the
// goroutine count after the run must settle back to (at most) the count
// before it. Every Cluster the tests start is expected to be Stopped, and
// Stop waits for the peer goroutines through the WaitGroup — so a count
// that stays elevated means a test leaked a cluster, or a code change
// detached a goroutine from the WaitGroup. This is the dependency-free
// version of what goleak.VerifyTestMain does, scoped to what this package
// needs: a whole-suite barrier, not per-test attribution.
//
// The count is polled with a grace window rather than read once: runtime
// internals (timer goroutines, the testing machinery itself) wind down
// asynchronously after m.Run returns, and peer goroutines may still be
// inside their final select when Stop's WaitGroup releases the test.
func TestMain(m *testing.M) {
	// +1: under `go test -fuzz`, the fuzzing engine installs an os/signal
	// handler goroutine that lives until process exit.
	before := runtime.NumGoroutine() + 1
	code := m.Run()
	if code == 0 {
		if n := settleGoroutines(before, 5*time.Second); n > before {
			fmt.Fprintf(os.Stderr,
				"goroutine leak: %d goroutines before the suite, %d still running after it\n%s",
				before, n, goroutineDump())
			code = 1
		}
	}
	os.Exit(code)
}

// settleGoroutines waits for the goroutine count to drop to at most want,
// returning the last observed count when the deadline passes.
func settleGoroutines(want int, deadline time.Duration) int {
	var n int
	for end := time.Now().Add(deadline); ; {
		n = runtime.NumGoroutine()
		if n <= want || time.Now().After(end) {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// goroutineDump renders all goroutine stacks for the leak report.
func goroutineDump() []byte {
	buf := make([]byte, 1<<20)
	return buf[:runtime.Stack(buf, true)]
}
