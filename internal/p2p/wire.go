// wire.go is the binary codec between the in-memory request/response
// structs and the transport's frame payloads. It is dependency-free and
// deliberately boring: little-endian fixed-width integers, length-prefixed
// byte strings, and one exhaustive switch per direction over the request
// kinds (kindexhaustive enforces that a new kind cannot ship without wire
// rules). Decoders are bounds-checked everywhere: a malformed payload
// yields errWireTruncated/errWireMalformed — never a panic — and every
// element count is validated against the bytes actually present before any
// slice is allocated, so a hostile length field cannot over-allocate.
//
// What does NOT cross the wire, by design:
//
//   - reply channels and collectors: replaced by the correlation IDs of
//     internal/transport (see node.go);
//   - trace pointers: a sampled request's hop records are appended by
//     goroutines sharing the trace's memory, so traces cover the hops
//     taken on the origin node only;
//   - enq timestamps: queue-wait is measured per hosting node.
package p2p

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/query"
	"baton/internal/store"
	"baton/internal/transport"
)

// wireKind classifies a transport frame (transport.Msg.Kind). A defined
// type so batonvet's kindexhaustive check covers the inbound framing
// dispatch (netLayer.handleMsg); the header field itself stays a raw byte
// because the transport package knows nothing of the p2p protocol.
type wireKind uint8

// Transport-level message kinds. Values >= 250 are reserved by the
// transport's handshake.
const (
	msgRequest  wireKind = 1 // payload: encodeRequest
	msgResponse wireKind = 2 // payload: encodeResponse, Corr names the completion
	msgControl  wireKind = 3 // payload: node-level control op (node.go)
)

var (
	errWireTruncated = errors.New("p2p: truncated wire payload")
	errWireMalformed = errors.New("p2p: malformed wire payload")
)

// ---------------------------------------------------------------------------
// Primitives.

func appendU8(b []byte, v uint8) []byte   { return append(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return appendU64(b, uint64(v)) }
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendBytes length-prefixes v; nil and empty are distinguished (a GET
// miss returns a nil value, an empty value is a legal stored value).
func appendBytes(b, v []byte) []byte {
	if v == nil {
		return appendU32(b, ^uint32(0))
	}
	b = appendU32(b, uint32(len(v)))
	return append(b, v...)
}

func appendKey(b []byte, k keyspace.Key) []byte { return appendI64(b, int64(k)) }
func appendRange(b []byte, r keyspace.Range) []byte {
	return appendKey(appendKey(b, r.Lower), r.Upper)
}
func appendPeerID(b []byte, id core.PeerID) []byte { return appendI64(b, int64(id)) }

// wreader walks a payload with sticky bounds checking: after the first
// short read every accessor returns a zero value and ok() reports false.
type wreader struct {
	b    []byte
	off  int
	fail bool
}

func (r *wreader) take(n int) []byte {
	if r.fail || n < 0 || len(r.b)-r.off < n {
		r.fail = true
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *wreader) u8() uint8 {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *wreader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *wreader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *wreader) i64() int64          { return int64(r.u64()) }
func (r *wreader) bool() bool          { return r.u8() != 0 }
func (r *wreader) key() keyspace.Key   { return keyspace.Key(r.i64()) }
func (r *wreader) peerID() core.PeerID { return core.PeerID(r.i64()) }
func (r *wreader) rng() keyspace.Range { return keyspace.Range{Lower: r.key(), Upper: r.key()} }
func (r *wreader) done() bool          { return !r.fail && r.off == len(r.b) }

func (r *wreader) bytes() []byte {
	n := r.u32()
	if n == ^uint32(0) {
		return nil
	}
	s := r.take(int(n))
	if s == nil {
		return nil
	}
	return s
}

// count reads an element count and validates it against the bytes left,
// given a lower bound on the encoded size of one element — the guard that
// makes a hostile count harmless: the later allocation is bounded by the
// payload length actually received.
func (r *wreader) count(minElemSize int) int {
	n := int(r.u32())
	if r.fail || n < 0 || (minElemSize > 0 && n > (len(r.b)-r.off)/minElemSize) {
		r.fail = true
		return 0
	}
	return n
}

// ---------------------------------------------------------------------------
// Composite fields.

func appendItems(b []byte, items []store.Item) []byte {
	b = appendU32(b, uint32(len(items)))
	for _, it := range items {
		b = appendKey(b, it.Key)
		b = appendBytes(b, it.Value)
	}
	return b
}

func (r *wreader) items() []store.Item {
	n := r.count(12) // key + value length prefix
	if n == 0 {
		return nil
	}
	out := make([]store.Item, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, store.Item{Key: r.key(), Value: r.bytes()})
	}
	if r.fail {
		return nil
	}
	return out
}

func appendKeys(b []byte, keys []keyspace.Key) []byte {
	b = appendU32(b, uint32(len(keys)))
	for _, k := range keys {
		b = appendKey(b, k)
	}
	return b
}

func (r *wreader) keys() []keyspace.Key {
	n := r.count(8)
	if n == 0 {
		return nil
	}
	out := make([]keyspace.Key, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.key())
	}
	if r.fail {
		return nil
	}
	return out
}

// visited travels as a sorted id list so encodings are deterministic.
func appendVisited(b []byte, visited map[core.PeerID]bool) []byte {
	ids := make([]core.PeerID, 0, len(visited))
	for id, v := range visited {
		if v {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b = appendU32(b, uint32(len(ids)))
	for _, id := range ids {
		b = appendPeerID(b, id)
	}
	return b
}

func (r *wreader) visited() map[core.PeerID]bool {
	n := r.count(8)
	if n == 0 {
		return nil
	}
	out := make(map[core.PeerID]bool, n)
	for i := 0; i < n; i++ {
		out[r.peerID()] = true
	}
	if r.fail {
		return nil
	}
	return out
}

func appendPred(b []byte, p *query.Pred) []byte {
	if p == nil {
		return appendBool(b, false)
	}
	b = appendBool(b, true)
	b = appendI64(b, int64(p.MinValueLen))
	b = appendI64(b, int64(p.MaxValueLen))
	b = appendKeys(b, p.Keys)
	return appendI64(b, int64(p.Limit))
}

func (r *wreader) pred() *query.Pred {
	if !r.bool() {
		return nil
	}
	p := &query.Pred{MinValueLen: int(r.i64()), MaxValueLen: int(r.i64())}
	p.Keys = r.keys()
	p.Limit = int(r.i64())
	if r.fail {
		return nil
	}
	return p
}

// Links are encoded by value: id plus the range the link caches.
func appendLink(b []byte, l *link) []byte {
	if l == nil {
		return appendBool(b, false)
	}
	b = appendBool(b, true)
	b = appendPeerID(b, l.id)
	return appendKey(appendKey(b, l.lower), l.upper)
}

func (r *wreader) link() *link {
	if !r.bool() {
		return nil
	}
	l := &link{id: r.peerID(), lower: r.key(), upper: r.key()}
	if r.fail {
		return nil
	}
	return l
}

func appendLinks(b []byte, ls []*link) []byte {
	b = appendU32(b, uint32(len(ls)))
	for _, l := range ls {
		b = appendLink(b, l)
	}
	return b
}

func (r *wreader) links() []*link {
	n := r.count(1)
	if n == 0 {
		return nil
	}
	out := make([]*link, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.link())
	}
	if r.fail {
		return nil
	}
	return out
}

func appendState(b []byte, st *peerState) []byte {
	if st == nil {
		return appendBool(b, false)
	}
	b = appendBool(b, true)
	b = appendI64(b, int64(st.pos.Level))
	b = appendI64(b, st.pos.Number)
	b = appendRange(b, st.rng)
	b = appendLink(b, st.parent)
	b = appendLinks(b, st.children)
	b = appendLink(b, st.adjacent[0])
	b = appendLink(b, st.adjacent[1])
	b = appendLinks(b, st.rt[0])
	return appendLinks(b, st.rt[1])
}

func (r *wreader) state() *peerState {
	if !r.bool() {
		return nil
	}
	st := &peerState{}
	st.pos.Level = int(r.i64())
	st.pos.Number = r.i64()
	st.rng = r.rng()
	st.parent = r.link()
	st.children = r.links()
	st.adjacent[0] = r.link()
	st.adjacent[1] = r.link()
	st.rt[0] = r.links()
	st.rt[1] = r.links()
	if r.fail {
		return nil
	}
	return st
}

func appendRanges(b []byte, rs []keyspace.Range) []byte {
	b = appendU32(b, uint32(len(rs)))
	for _, r := range rs {
		b = appendRange(b, r)
	}
	return b
}

func (r *wreader) ranges() []keyspace.Range {
	n := r.count(16)
	if n == 0 {
		return nil
	}
	out := make([]keyspace.Range, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.rng())
	}
	if r.fail {
		return nil
	}
	return out
}

// Moves cross the wire with their ack rewritten from a channel to a
// correlation (netDeliver fills ackCorr/ackNode before encoding) and with
// the destination's hosting node attached, so a source on another process
// can deliver the handoff even before the topology broadcast that names
// the new peer reaches it.
func appendMoves(b []byte, moves []handoffMove) []byte {
	b = appendU32(b, uint32(len(moves)))
	for _, mv := range moves {
		b = appendRange(b, mv.region)
		b = appendPeerID(b, mv.dst)
		b = appendU32(b, uint32(mv.dstNode))
		b = appendU64(b, mv.ackCorr)
		b = appendU32(b, uint32(mv.ackNode))
	}
	return b
}

func (r *wreader) moves() []handoffMove {
	n := r.count(40)
	if n == 0 {
		return nil
	}
	out := make([]handoffMove, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, handoffMove{
			region:  r.rng(),
			dst:     r.peerID(),
			dstNode: transport.NodeID(r.u32()),
			ackCorr: r.u64(),
			ackNode: transport.NodeID(r.u32()),
		})
	}
	if r.fail {
		return nil
	}
	return out
}

func appendSnap(b []byte, s *core.PeerSnapshot) []byte {
	if s == nil {
		return appendBool(b, false)
	}
	b = appendBool(b, true)
	b = appendPeerID(b, s.ID)
	b = appendI64(b, int64(s.Position.Level))
	b = appendI64(b, s.Position.Number)
	b = appendRange(b, s.Range)
	b = appendItems(b, s.Items)
	b = appendPeerID(b, s.Parent)
	b = appendPeerID(b, s.LeftChild)
	b = appendPeerID(b, s.RightChild)
	b = appendPeerIDs(b, s.MidChildren)
	b = appendPeerID(b, s.LeftAdjacent)
	b = appendPeerID(b, s.RightAdjacent)
	b = appendPeerIDs(b, s.LeftRouting)
	return appendPeerIDs(b, s.RightRouting)
}

func (r *wreader) snap() *core.PeerSnapshot {
	if !r.bool() {
		return nil
	}
	s := &core.PeerSnapshot{}
	s.ID = r.peerID()
	s.Position.Level = int(r.i64())
	s.Position.Number = r.i64()
	s.Range = r.rng()
	s.Items = r.items()
	s.Parent = r.peerID()
	s.LeftChild = r.peerID()
	s.RightChild = r.peerID()
	s.MidChildren = r.peerIDs()
	s.LeftAdjacent = r.peerID()
	s.RightAdjacent = r.peerID()
	s.LeftRouting = r.peerIDs()
	s.RightRouting = r.peerIDs()
	if r.fail {
		return nil
	}
	return s
}

func appendPeerIDs(b []byte, ids []core.PeerID) []byte {
	b = appendU32(b, uint32(len(ids)))
	for _, id := range ids {
		b = appendPeerID(b, id)
	}
	return b
}

func (r *wreader) peerIDs() []core.PeerID {
	n := r.count(8)
	if n == 0 {
		return nil
	}
	out := make([]core.PeerID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.peerID())
	}
	if r.fail {
		return nil
	}
	return out
}

// ---------------------------------------------------------------------------
// Error mapping. The cluster's sentinel errors are translated to stable
// codes so errors.Is works across processes; anything else travels as its
// message and is reconstructed as an opaque error.

const (
	errCodeNil = iota
	errCodeStopped
	errCodeUnknownPeer
	errCodeUnreachable
	errCodeOwnerDown
	errCodeMoved
	errCodeReplicaLost
	errCodeOpaque
)

func appendErr(b []byte, err error) []byte {
	switch {
	case err == nil:
		return appendU8(b, errCodeNil)
	case errors.Is(err, ErrStopped):
		return appendU8(b, errCodeStopped)
	case errors.Is(err, ErrUnknownPeer):
		return appendU8(b, errCodeUnknownPeer)
	case errors.Is(err, ErrUnreachable):
		return appendU8(b, errCodeUnreachable)
	case errors.Is(err, ErrOwnerDown):
		return appendU8(b, errCodeOwnerDown)
	case errors.Is(err, errMoved):
		return appendU8(b, errCodeMoved)
	case errors.Is(err, ErrReplicaLost):
		return appendU8(b, errCodeReplicaLost)
	default:
		b = appendU8(b, errCodeOpaque)
		return appendBytes(b, []byte(err.Error()))
	}
}

func (r *wreader) anErr() error {
	switch code := r.u8(); code {
	case errCodeNil:
		return nil
	case errCodeStopped:
		return ErrStopped
	case errCodeUnknownPeer:
		return ErrUnknownPeer
	case errCodeUnreachable:
		return ErrUnreachable
	case errCodeOwnerDown:
		return ErrOwnerDown
	case errCodeMoved:
		return errMoved
	case errCodeReplicaLost:
		return ErrReplicaLost
	case errCodeOpaque:
		return errors.New(string(r.bytes()))
	default:
		r.fail = true
		return nil
	}
}

// ---------------------------------------------------------------------------
// Requests.

// Request flag bits (byte 1 of the payload).
const (
	reqFlagPar = 1 << iota // kindRange/kindRangePred: parallel fan-out
)

// encodeRequest serialises req for the wire. Reply channels, collectors
// and traces are correlation/metadata concerns handled by the caller
// (node.go); only protocol fields are encoded. The kind switch is
// exhaustive: a kind without wire rules cannot compile past kindexhaustive.
func encodeRequest(b []byte, req *request) []byte {
	b = appendU8(b, uint8(req.kind))
	var flags uint8
	if req.par {
		flags |= reqFlagPar
	}
	b = appendU8(b, flags)
	b = appendU32(b, uint32(req.hops))
	switch req.kind {
	case kindGet, kindDelete:
		b = appendKey(b, req.key)
		b = appendU64(b, req.epoch)
		b = appendVisited(b, req.visited)
	case kindGetPred:
		b = appendKey(b, req.key)
		b = appendU64(b, req.epoch)
		b = appendVisited(b, req.visited)
		b = appendPred(b, req.pred)
	case kindPut:
		b = appendKey(b, req.key)
		b = appendBytes(b, req.value)
		b = appendU64(b, req.epoch)
		b = appendVisited(b, req.visited)
	case kindRange, kindRangeScatter:
		b = appendKey(b, req.key)
		b = appendRange(b, req.rng)
		b = appendVisited(b, req.visited)
		b = appendItems(b, req.acc)
	case kindRangePred:
		b = appendKey(b, req.key)
		b = appendRange(b, req.rng)
		b = appendVisited(b, req.visited)
		b = appendItems(b, req.acc)
		b = appendPred(b, req.pred)
	case kindBulkGet, kindBulkPut, kindBulkDelete:
		b = appendItems(b, req.bulk)
	case kindJoinLocate, kindFindReplacement:
		b = appendKey(b, req.key)
		b = appendVisited(b, req.visited)
	case kindUpdate:
		b = appendState(b, req.state)
		b = appendRanges(b, req.gains)
		b = appendMoves(b, req.moves)
		b = appendPeerID(b, req.departTo)
	case kindHandoff:
		b = appendRange(b, req.rng)
		b = appendItems(b, req.bulk)
	case kindSnapshot, kindStats, kindCrash, kindReplicaResync, kindReplicaDump:
		// Header-only requests.
	case kindSplitKey:
		b = appendU64(b, math.Float64bits(req.frac))
	case kindReplicate:
		b = appendPeerID(b, req.src)
		b = appendItems(b, req.bulk)
		b = appendKeys(b, req.dels)
		b = appendI64(b, req.seq)
	case kindReplicaSync:
		b = appendPeerID(b, req.src)
		b = appendItems(b, req.bulk)
		b = appendI64(b, req.seq)
	case kindReplicaDrop, kindReplicaFetch:
		b = appendPeerID(b, req.src)
	default:
		// Unlike the dispatch switches, an unencodable kind is a programming
		// error on the sending node: fail loudly in tests via the decoder
		// (the receiver rejects the kind) rather than silently dropping
		// fields.
	}
	return b
}

// decodeRequest is the inverse of encodeRequest. Its kind switch mirrors
// the encoder's exactly (kindexhaustive covers both).
func decodeRequest(payload []byte) (request, error) {
	r := &wreader{b: payload}
	k := kind(r.u8())
	if int(k) < 0 || int(k) >= numKinds {
		return request{}, fmt.Errorf("%w: request kind %d", errWireMalformed, int(k))
	}
	flags := r.u8()
	req := request{kind: k, par: flags&reqFlagPar != 0, hops: int(r.u32())}
	switch k {
	case kindGet, kindDelete:
		req.key = r.key()
		req.epoch = r.u64()
		req.visited = r.visited()
	case kindGetPred:
		req.key = r.key()
		req.epoch = r.u64()
		req.visited = r.visited()
		req.pred = r.pred()
	case kindPut:
		req.key = r.key()
		req.value = r.bytes()
		req.epoch = r.u64()
		req.visited = r.visited()
	case kindRange, kindRangeScatter:
		req.key = r.key()
		req.rng = r.rng()
		req.visited = r.visited()
		req.acc = r.items()
	case kindRangePred:
		req.key = r.key()
		req.rng = r.rng()
		req.visited = r.visited()
		req.acc = r.items()
		req.pred = r.pred()
	case kindBulkGet, kindBulkPut, kindBulkDelete:
		req.bulk = r.items()
	case kindJoinLocate, kindFindReplacement:
		req.key = r.key()
		req.visited = r.visited()
	case kindUpdate:
		req.state = r.state()
		req.gains = r.ranges()
		req.moves = r.moves()
		req.departTo = r.peerID()
	case kindHandoff:
		req.rng = r.rng()
		req.bulk = r.items()
	case kindSnapshot, kindStats, kindCrash, kindReplicaResync, kindReplicaDump:
		// Header-only requests.
	case kindSplitKey:
		req.frac = math.Float64frombits(r.u64())
	case kindReplicate:
		req.src = r.peerID()
		req.bulk = r.items()
		req.dels = r.keys()
		req.seq = r.i64()
	case kindReplicaSync:
		req.src = r.peerID()
		req.bulk = r.items()
		req.seq = r.i64()
	case kindReplicaDrop, kindReplicaFetch:
		req.src = r.peerID()
	default:
		return request{}, fmt.Errorf("%w: request kind %d", errWireMalformed, int(k))
	}
	if !r.done() {
		return request{}, fmt.Errorf("%w: request kind %d", errWireTruncated, int(k))
	}
	return req, nil
}

// ---------------------------------------------------------------------------
// Responses. One generic layout — every field travels with a nil-preserving
// encoding — because responses are not kind-discriminated in memory either.

func encodeResponse(b []byte, resp *response) []byte {
	b = appendErr(b, resp.err)
	b = appendU32(b, uint32(resp.hops))
	b = appendBytes(b, resp.value)
	b = appendBool(b, resp.found)
	b = appendItems(b, resp.items)
	b = appendU32(b, uint32(len(resp.results)))
	for _, br := range resp.results {
		b = appendKey(b, br.Key)
		b = appendBytes(b, br.Value)
		b = appendBool(b, br.Found)
		b = appendErr(b, br.Err)
	}
	b = appendPeerID(b, resp.peerID)
	b = appendI64(b, int64(resp.slot))
	b = appendSnap(b, resp.snap)
	b = appendI64(b, int64(resp.count))
	b = appendKey(b, resp.splitKey)
	if resp.replicaSets == nil {
		b = appendBool(b, false)
	} else {
		b = appendBool(b, true)
		b = appendU32(b, uint32(len(resp.replicaSets)))
		ids := make([]core.PeerID, 0, len(resp.replicaSets))
		for id := range resp.replicaSets {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			b = appendPeerID(b, id)
			b = appendItems(b, resp.replicaSets[id])
		}
	}
	return b
}

func decodeResponse(payload []byte) (response, error) {
	r := &wreader{b: payload}
	resp := response{}
	resp.err = r.anErr()
	resp.hops = int(r.u32())
	resp.value = r.bytes()
	resp.found = r.bool()
	resp.items = r.items()
	if n := r.count(14); n > 0 {
		resp.results = make([]BulkResult, 0, n)
		for i := 0; i < n; i++ {
			resp.results = append(resp.results, BulkResult{
				Key: r.key(), Value: r.bytes(), Found: r.bool(), Err: r.anErr(),
			})
		}
	}
	resp.peerID = r.peerID()
	resp.slot = int(r.i64())
	resp.snap = r.snap()
	resp.count = int(r.i64())
	resp.splitKey = r.key()
	if r.bool() {
		n := r.count(12)
		resp.replicaSets = make(map[core.PeerID][]store.Item, n)
		for i := 0; i < n; i++ {
			id := r.peerID()
			resp.replicaSets[id] = r.items()
		}
	}
	if !r.done() {
		return response{}, errWireTruncated
	}
	return resp, nil
}
