// The direct-routing fast path: an epoch-validated client-side route cache
// over the overlay.
//
// Every published topology already carries the key-ordered ring the bulk
// operations group batches with (entryOf/ownerOf) — an authoritative snapshot
// of who owns what at publication time. RouteDirect puts that snapshot on the
// singleton Get/Put/Delete path too: the request is delivered straight to the
// cached owner, one message instead of the O(log N) per-hop chain of
// Algorithm search_exact, and is tagged with the snapshot's epoch. The epoch
// is bumped by every ownership publication (publishTopology), so a receiver
// can tell a current route from a stale one:
//
//   - Cache current: the receiver owns the key and serves it. One hop.
//   - Tag older than the live epoch (the sender routed with a ring that a
//     membership change has since replaced): the receiver counts the miss
//     (StaleRoutes), clears the tag and re-aims the request once at the
//     owner the current ring names — two hops instead of a per-hop walk.
//   - Tag current but the receiver still does not own the key (its range
//     moved under a publication still in flight): the ring that just missed
//     cannot help, so the cleared request falls back to classic per-hop
//     overlay forwarding. A key whose items are mid-handoff to the receiver
//     is briefly buffered and replayed instead. Correctness under churn is
//     exactly the overlay's.
//   - Cached owner dead or retired: the delivery fails at the sender, which
//     falls back to the overlay path and its usual fail-over rules.
//
// RouteOverlay remains the default: it is the paper-faithful path whose hop
// counts the experiments and the hop-count tests measure.
package p2p

import (
	"fmt"
	"sync"

	"baton/internal/core"
)

// RouteMode selects how a Cluster routes singleton Get/Put/Delete requests.
type RouteMode int32

const (
	// RouteOverlay routes every request per-hop through the overlay's links,
	// exactly as Section IV of the paper describes. The default.
	RouteOverlay RouteMode = iota
	// RouteDirect sends singleton requests straight to the key's owner from
	// the epoch-validated route cache, falling back to overlay forwarding
	// when the cache is stale or the owner is down.
	RouteDirect
)

// String names the mode for reports and flags.
func (m RouteMode) String() string {
	if m == RouteDirect {
		return "direct"
	}
	return "overlay"
}

// SetRouteMode switches how singleton requests enter the overlay. Safe to
// call at any time, including with traffic in flight: requests already
// routed finish under the mode they started with.
func (c *Cluster) SetRouteMode(m RouteMode) { c.routeMode.Store(int32(m)) }

// RouteMode returns the cluster's current routing mode.
func (c *Cluster) RouteMode() RouteMode { return RouteMode(c.routeMode.Load()) }

// StaleRoutes returns how many direct-routed requests landed on a peer that
// no longer owned their key and fell back to overlay forwarding. Zero on a
// quiesced cluster; under churn it measures how much the route cache lags.
// The count lives in the per-peer metrics registry — each miss is
// attributed to the peer that detected it (Cluster.Metrics breaks it
// down) — and this is the back-compat sum, including peers already
// retired from the topology so it never goes backwards.
func (c *Cluster) StaleRoutes() int64 {
	total := c.retired.StaleRoutes()
	for _, p := range c.topo.Load().peers {
		total += p.met.StaleRoutes()
	}
	return total
}

// Epoch returns the current topology epoch: the number of ownership
// publications since the cluster started. Direct-routed requests are tagged
// with it so receivers can recognise stale routes.
func (c *Cluster) Epoch() uint64 { return c.topo.Load().epoch }

// route dispatches a singleton request according to the cluster's routing
// mode. It is also where sampled requests pick up their trace context:
// with sampling off the check is one atomic load and the request is
// untouched, which is what keeps the direct path allocation-free.
func (c *Cluster) route(via core.PeerID, req request) (response, error) {
	c.sampleTrace(&req)
	var resp response
	var err error
	if RouteMode(c.routeMode.Load()) == RouteDirect {
		resp, err = c.issueDirect(via, req)
	} else {
		resp, err = c.issue(via, req)
	}
	c.finishTrace(req)
	return resp, err
}

// issueDirect is the fast path: deliver the request straight to the key's
// owner under the current topology, tagged with that topology's epoch. When
// the ring has no entry or the cached owner is dead or retired, it degrades
// to the overlay path entered at via, which applies the usual fail-over
// rules (and reports ErrOwnerDown when the responsible peer really is down).
// via is validated exactly as the overlay path validates it, so the two
// modes differ only in message count, never in call semantics.
func (c *Cluster) issueDirect(via core.PeerID, req request) (response, error) {
	if c.stopped.Load() {
		return response{}, ErrStopped
	}
	t := c.topo.Load()
	if _, ok := t.peers[via]; !ok {
		return response{}, fmt.Errorf("%w: %d", ErrUnknownPeer, via)
	}
	if e := t.entryOf(req.key); e != nil && e.p.alive.Load() {
		req.epoch = t.epoch
		req.reply = getReply()
		if c.deliverTo(e.p, req, false) {
			select {
			case resp := <-req.reply:
				putReply(req.reply)
				return resp, nil
			case <-c.done:
				//batonvet:ignore replypool abandoned on Stop by design: the late answer must not reach the pool (see replyPool's doc comment)
				return response{}, ErrStopped
			}
		}
		// The owner died (or a tombstone was retired) between the topology
		// load and the delivery: nothing was sent, so the channel is clean.
		putReply(req.reply)
		req.reply = nil
		req.epoch = 0
	}
	return c.issue(via, req)
}

// replyPool recycles the buffered reply channels of the request path. A
// fresh channel per operation is the single allocation a routed request
// cannot otherwise avoid; pooling it makes the steady-state client side of
// Get/Put/Delete allocation-free.
var replyPool = sync.Pool{New: func() any { return make(chan response, 1) }}

// getReply returns a clean reply channel. Channels are drained on reuse as
// defence in depth: the pool's invariant is that only channels whose single
// answer was consumed (or never sent) are returned to it.
func getReply() chan response {
	ch := replyPool.Get().(chan response)
	select {
	case <-ch:
	default:
	}
	return ch
}

// putReply returns a reply channel to the pool. Callers must not return a
// channel that may still receive an answer (a wait abandoned at Stop).
func putReply(ch chan response) { replyPool.Put(ch) }
