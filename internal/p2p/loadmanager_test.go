package p2p

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/workload"
)

// TestShuffleFracTable pins the boundary-index arithmetic of the adjacent
// shuffle: for every load pair the fraction handed to KeyAtFraction must
// select exactly the item index that keeps shift items moving — the bare
// target/cx fraction loses the boundary to float64 rounding (e.g. cx=3,
// shift=1 rounds down to index 0 and shuffles nothing).
func TestShuffleFracTable(t *testing.T) {
	keyAtFractionIndex := func(frac float64, size int) int {
		// Mirrors store.KeyAtFraction's index computation.
		target := int(frac * float64(size))
		if target >= size {
			target = size - 1
		}
		return target
	}
	for cx := 2; cx <= 128; cx++ {
		for shift := 1; shift < cx; shift++ {
			if got, want := keyAtFractionIndex(shuffleFrac(cx, shift, core.Left), cx), shift; got != want {
				t.Fatalf("left shuffle cx=%d shift=%d selects index %d, want %d", cx, shift, got, want)
			}
			if got, want := keyAtFractionIndex(shuffleFrac(cx, shift, core.Right), cx), cx-shift; got != want {
				t.Fatalf("right shuffle cx=%d shift=%d selects index %d, want %d", cx, shift, got, want)
			}
		}
	}
	// The regression the +0.5 centring fixes: the bare fraction round-trips
	// target/cx through float64 and lands below the intended index —
	// int(float64(15)/22*22) == 14, the first of >300k failing pairs below
	// cx=4096 — so the old code shuffled one item fewer than planned.
	cx, target := 22, 15
	bare := float64(target) / float64(cx)
	if got := keyAtFractionIndex(bare, cx); got != target-1 {
		t.Logf("platform rounds %d/%d*%d to index %d (expected the classic %d)", target, cx, cx, got, target-1)
	}
	if got := keyAtFractionIndex(shuffleFrac(cx, cx-target, core.Right), cx); got != target {
		t.Fatalf("cx=%d right shuffle selects index %d, want %d", cx, got, target)
	}
}

// TestValidShuffleBoundaryTable: the boundary must split the range into two
// non-empty sides.
func TestValidShuffleBoundaryTable(t *testing.T) {
	rng := keyspace.NewRange(100, 200)
	cases := []struct {
		boundary keyspace.Key
		want     bool
	}{
		{99, false}, {100, false}, {101, true}, {150, true}, {199, true}, {200, false}, {201, false},
	}
	for _, tc := range cases {
		if got := validShuffleBoundary(tc.boundary, rng); got != tc.want {
			t.Fatalf("validShuffleBoundary(%d, %v) = %v, want %v", tc.boundary, rng, got, tc.want)
		}
	}
}

// TestLoadBalanceEdgeClusteredItems: when every local item sits on one key
// at the range edge, no interior boundary separates the shares — the
// shuffle must decline (no items moved, no epoch published) instead of
// shifting the boundary onto the range edge and emptying one side.
func TestLoadBalanceEdgeClusteredItems(t *testing.T) {
	c, _ := liveCluster(t, 16, 0, 211)
	snaps := verifyCluster(t, c)
	victim := snaps[len(snaps)/2]
	for i := 0; i < 50; i++ {
		// 50 writes, one single key: the lowest of the victim's range.
		if _, err := c.Put(victim.ID, victim.Range.Lower, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	epoch := c.Epoch()
	moved, err := c.LoadBalance(victim.ID)
	if err != nil {
		t.Fatalf("load balance: %v", err)
	}
	if moved != 0 {
		t.Fatalf("edge-clustered items moved %d items, want 0", moved)
	}
	if c.Epoch() != epoch {
		t.Fatal("a declined shuffle must not publish a new topology epoch")
	}
	verifyCluster(t, c)
}

// TestLoadsAndImbalanceRatio: Loads reports per-peer item counts and a
// request-rate EWMA that warms up across calls, and ImbalanceRatio
// condenses the skew.
func TestLoadsAndImbalanceRatio(t *testing.T) {
	c, keys := liveCluster(t, 8, 400, 223)
	msgsBefore := c.Messages()
	loads, err := c.Loads()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Messages() - msgsBefore; got != 0 {
		t.Fatalf("Loads delivered %d messages, want 0 (metering must be message-free)", got)
	}
	if len(loads) != 8 {
		t.Fatalf("Loads returned %d peers, want 8", len(loads))
	}
	total := 0
	for _, l := range loads {
		n, err := c.peerCount(l.ID)
		if err != nil {
			t.Fatal(err)
		}
		if n != l.Items {
			t.Fatalf("peer %d: Loads says %d items, peerCount says %d", l.ID, l.Items, n)
		}
		total += l.Items
	}
	if total != len(keys) {
		t.Fatalf("Loads counted %d items, want %d", total, len(keys))
	}
	if r := ImbalanceRatio(loads); r < 1 {
		t.Fatalf("imbalance ratio %f < 1", r)
	}
	// Drive traffic, then sample twice so the EWMA has a time base.
	ids := c.PeerIDs()
	for i, k := range keys {
		if _, _, _, err := c.Get(ids[i%len(ids)], k); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(2 * time.Millisecond)
	loads, err = c.Loads()
	if err != nil {
		t.Fatal(err)
	}
	someRate := false
	var someReqs int64
	for _, l := range loads {
		someReqs += l.Requests
		if l.Rate > 0 {
			someRate = true
		}
	}
	if someReqs < int64(len(keys)) {
		t.Fatalf("request counters saw %d data messages, want >= %d", someReqs, len(keys))
	}
	if !someRate {
		t.Fatal("second Loads call should report a positive request-rate EWMA")
	}
	// Synthetic table check for the ratio itself.
	if r := ImbalanceRatio([]PeerLoad{{Items: 30}, {Items: 10}, {Items: 20}}); r != 1.5 {
		t.Fatalf("ImbalanceRatio = %f, want 1.5", r)
	}
	if r := ImbalanceRatio(nil); r != 1 {
		t.Fatalf("ImbalanceRatio(nil) = %f, want 1", r)
	}
	if r := ImbalanceRatio([]PeerLoad{{Items: 0}, {Items: 0}}); r != 1 {
		t.Fatalf("ImbalanceRatio(empty peers) = %f, want 1", r)
	}
}

// skewCluster loads a narrow slice of the domain with many items so a
// handful of peers carry nearly all the data, and returns the keys.
func skewCluster(t *testing.T, c *Cluster, items int, seed int64) []keyspace.Key {
	t.Helper()
	ids := c.PeerIDs()
	domain := c.Domain()
	lo := domain.Lower + keyspace.Key(domain.Size()/3)
	span := domain.Size() / 12 // ~1/12th of the domain takes every item
	rng := rand.New(rand.NewSource(seed))
	keys := make([]keyspace.Key, 0, items)
	bulk := make([]keyspace.Key, 0, items)
	for len(keys) < items {
		k := lo + keyspace.Key(rng.Int63n(span))
		keys = append(keys, k)
		bulk = append(bulk, k)
	}
	for i, k := range bulk {
		if _, err := c.Put(ids[i%len(ids)], k, []byte(fmt.Sprint(k))); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// TestForceRejoinLive: the manual forced rejoin moves a light leaf next to
// a loaded peer, halving its load, with every key still readable, and both
// the structural and the replication invariants intact afterwards.
func TestForceRejoinLive(t *testing.T) {
	c, _ := liveCluster(t, 24, 0, 227)
	keys := skewCluster(t, c, 600, 228)

	loads, err := c.Loads()
	if err != nil {
		t.Fatal(err)
	}
	hot := loads[0]
	for _, l := range loads {
		if l.Items > hot.Items {
			hot = l
		}
	}
	hs := c.states[hot.ID]
	// The lightest viable recruit, per the balancer's own rule.
	counts := map[core.PeerID]int{}
	for _, l := range loads {
		counts[l.ID] = l.Items
	}
	light := c.lightestRecruit(hot.ID, counts)
	if light == core.NoPeer {
		t.Fatal("no viable recruit in a healthy 24-peer cluster")
	}
	if light == hs.LeftAdjacent || light == hs.RightAdjacent {
		t.Fatalf("lightestRecruit picked an unviable peer %d", light)
	}

	events := c.BalanceEvents()
	moved, err := c.ForceRejoin(light, hot.ID)
	if err != nil {
		t.Fatalf("force rejoin: %v", err)
	}
	if moved == 0 {
		t.Fatal("force rejoin moved no items off a loaded peer")
	}
	afterHot, err := c.peerCount(hot.ID)
	if err != nil {
		t.Fatal(err)
	}
	afterLight, err := c.peerCount(light)
	if err != nil {
		t.Fatal(err)
	}
	if afterHot > 3*hot.Items/4 || afterLight < hot.Items/4 {
		t.Fatalf("rejoin should split the hot load roughly in half: hot %d -> %d, light -> %d",
			hot.Items, afterHot, afterLight)
	}
	if c.BalanceEvents() != events {
		t.Fatal("manual ForceRejoin must not inflate the balancer's event counter")
	}

	snaps := verifyCluster(t, c)
	if err := c.SyncReplicas(); err != nil {
		t.Fatal(err)
	}
	replicas, err := c.Replicas()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyReplication(snaps, replicas); err != nil {
		t.Fatalf("replication invariants after forced rejoin: %v", err)
	}
	for _, k := range keys {
		if _, found, _, err := c.Get(c.PeerIDs()[0], k); err != nil || !found {
			t.Fatalf("key %d unreadable after forced rejoin: found=%v err=%v", k, found, err)
		}
	}

	// Invalid recruits are rejected without structural damage.
	if _, err := c.ForceRejoin(hot.ID, hot.ID); err == nil {
		t.Fatal("rejoining a peer under itself must fail")
	}
	if _, err := c.ForceRejoin(core.PeerID(99_999), hot.ID); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("unknown recruit: err = %v, want ErrUnknownPeer", err)
	}
	verifyCluster(t, c)
}

// TestBalanceOnceCutsImbalance drives the balancing policy to convergence
// on a heavily skewed cluster: repeated BalanceOnce passes must cut the
// max/average stored-load ratio below ~theta while every key stays
// readable and the audits pass. This is the deterministic core of what
// StartAutoBalance does on a timer.
func TestBalanceOnceCutsImbalance(t *testing.T) {
	c, _ := liveCluster(t, 24, 0, 229)
	keys := skewCluster(t, c, 1500, 230)

	before, err := c.ImbalanceRatio()
	if err != nil {
		t.Fatal(err)
	}
	if before < 4 {
		t.Fatalf("skew setup too tame: initial imbalance ratio %.2f", before)
	}
	cfg := AutoBalanceConfig{Theta: 2}
	actions := 0
	for i := 0; i < 200; i++ {
		act, _, err := c.BalanceOnce(cfg)
		if err != nil {
			t.Fatalf("balance pass %d: %v", i, err)
		}
		if act == BalanceNone {
			break
		}
		actions++
	}
	if actions == 0 {
		t.Fatal("the balancer took no action on a heavily skewed cluster")
	}
	if got := c.BalanceEvents(); got != int64(actions) {
		t.Fatalf("BalanceEvents = %d, want %d", got, actions)
	}
	after, err := c.ImbalanceRatio()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("imbalance %.2f -> %.2f in %d actions", before, after, actions)
	if after >= before/2 {
		t.Fatalf("balancing did not halve the imbalance: %.2f -> %.2f", before, after)
	}
	if after > 3 {
		t.Fatalf("converged imbalance ratio %.2f, want <= ~theta (3)", after)
	}

	snaps := verifyCluster(t, c)
	if err := c.SyncReplicas(); err != nil {
		t.Fatal(err)
	}
	replicas, err := c.Replicas()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyReplication(snaps, replicas); err != nil {
		t.Fatalf("replication invariants after balancing: %v", err)
	}
	for _, k := range keys {
		if _, found, _, err := c.Get(c.PeerIDs()[0], k); err != nil || !found {
			t.Fatalf("key %d unreadable after balancing: found=%v err=%v", k, found, err)
		}
	}
}

// TestStartAutoBalanceBackground: the ticker-driven balancer works without
// manual passes — started once (idempotently), it brings a skewed cluster's
// ratio down in the background and stops with the cluster.
func TestStartAutoBalanceBackground(t *testing.T) {
	c, _ := liveCluster(t, 16, 0, 233)
	skewCluster(t, c, 800, 234)
	before, err := c.ImbalanceRatio()
	if err != nil {
		t.Fatal(err)
	}
	c.StartAutoBalance(AutoBalanceConfig{Theta: 2, Interval: time.Millisecond})
	c.StartAutoBalance(AutoBalanceConfig{Theta: 9, Interval: time.Hour}) // no-op: already started
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		r, err := c.ImbalanceRatio()
		if err != nil {
			t.Fatal(err)
		}
		if r < before/2 && c.BalanceEvents() > 0 {
			verifyCluster(t, c)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	r, _ := c.ImbalanceRatio()
	t.Fatalf("background balancer left imbalance at %.2f (was %.2f) after 10s", r, before)
}

// TestForceRejoinNextToDeadPeerKeepsReplica is the deterministic regression
// for replica stranding: when a balancing action runs while a peer is dead
// and moves the dead peer's adjacent links (here: recruiting its right
// adjacent — its replica holder — for a forced rejoin elsewhere), the
// surviving copy of the dead peer's items must move to the new holder, or a
// later Recover restores nothing and every write in the dead range is
// silently lost.
func TestForceRejoinNextToDeadPeerKeepsReplica(t *testing.T) {
	c, _ := liveCluster(t, 24, 0, 241)
	snaps := verifyCluster(t, c)
	byID := map[core.PeerID]core.PeerSnapshot{}
	for _, ps := range snaps {
		byID[ps.ID] = ps
	}
	// The recruit: a non-root leaf with adjacents on both sides, whose left
	// adjacent (the peer we will crash) uses it as replica holder.
	var recruit, victim core.PeerID
	for _, ps := range snaps {
		if ps.LeftChild != core.NoPeer || ps.RightChild != core.NoPeer || ps.Position.IsRoot() {
			continue
		}
		if ps.LeftAdjacent == core.NoPeer || ps.RightAdjacent == core.NoPeer {
			continue
		}
		if core.ReplicaHolderOf(byID[ps.LeftAdjacent]) != ps.ID {
			continue
		}
		recruit, victim = ps.ID, ps.LeftAdjacent
		break
	}
	if recruit == core.NoPeer {
		t.Fatal("no suitable recruit/victim pair")
	}
	heir := byID[recruit].RightAdjacent
	var hot core.PeerID
	for _, ps := range snaps {
		if ps.ID == recruit || ps.ID == victim || ps.ID == heir ||
			ps.ID == byID[recruit].LeftAdjacent || ps.Range.Size() < 400 {
			continue
		}
		hot = ps.ID
		break
	}
	if hot == core.NoPeer {
		t.Fatal("no suitable hot peer")
	}

	// Writes the crash must not lose, plus load on the hot peer so the
	// rejoin has a median to split at.
	var victimKeys []keyspace.Key
	vr := byID[victim].Range
	for i := int64(0); i < 50; i++ {
		k := vr.Lower + keyspace.Key(i*(vr.Size()/50))
		if !vr.Contains(k) {
			continue
		}
		victimKeys = append(victimKeys, k)
		if _, err := c.Put(victim, k, []byte(fmt.Sprint(k))); err != nil {
			t.Fatal(err)
		}
	}
	hr := byID[hot].Range
	for i := int64(0); i < 100; i++ {
		if k := hr.Lower + keyspace.Key(i*(hr.Size()/100)); hr.Contains(k) {
			if _, err := c.Put(hot, k, []byte("h")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.SyncReplicas(); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	// The balancing action next to the crash: the dead peer's replica holder
	// vacates its position and re-joins under the hot peer.
	if _, err := c.ForceRejoin(recruit, hot); err != nil {
		t.Fatalf("force rejoin with a dead neighbour: %v", err)
	}
	restored, err := c.Recover(victim)
	if err != nil {
		t.Fatalf("recover after the rejoin moved the holder: %v", err)
	}
	if restored < len(victimKeys) {
		t.Fatalf("recover restored %d items, want >= %d: the dead peer's replica was stranded at the old holder", restored, len(victimKeys))
	}
	for _, k := range victimKeys {
		v, found, _, err := c.Get(c.PeerIDs()[0], k)
		if err != nil || !found || string(v) != fmt.Sprint(k) {
			t.Fatalf("acknowledged write %d lost across kill + rejoin + recover: found=%v v=%q err=%v", k, found, v, err)
		}
	}
	verifyCluster(t, c)
}

// TestDepartOfDeadPeersHolderKeepsReplica: when the replica holder of a
// dead peer departs gracefully, the dead peer's surviving copy must follow
// the holder change — the fetch is answered by the departing holder's
// tombstone (which retains its replica sets; the range absorber never held
// them), and the stale-copy drop must not be forwarded through the
// tombstone onto the new holder, which would discard the set just moved.
func TestDepartOfDeadPeersHolderKeepsReplica(t *testing.T) {
	c, _ := liveCluster(t, 24, 0, 251)
	snaps := verifyCluster(t, c)
	byID := map[core.PeerID]core.PeerSnapshot{}
	for _, ps := range snaps {
		byID[ps.ID] = ps
	}
	// A victim whose holder can depart: any peer with a right adjacent.
	var victim, holder core.PeerID
	for _, ps := range snaps {
		if h := core.ReplicaHolderOf(ps); h != core.NoPeer && h == ps.RightAdjacent {
			victim, holder = ps.ID, h
			break
		}
	}
	if victim == core.NoPeer {
		t.Fatal("no victim/holder pair")
	}
	var keys []keyspace.Key
	vr := byID[victim].Range
	for i := int64(0); i < 40; i++ {
		k := vr.Lower + keyspace.Key(i*(vr.Size()/40))
		if !vr.Contains(k) {
			continue
		}
		keys = append(keys, k)
		if _, err := c.Put(victim, k, []byte(fmt.Sprint(k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SyncReplicas(); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.Depart(holder); err != nil {
		t.Fatalf("departing the dead peer's holder: %v", err)
	}
	restored, err := c.Recover(victim)
	if err != nil {
		t.Fatalf("recover after the holder departed: %v", err)
	}
	if restored < len(keys) {
		t.Fatalf("recover restored %d items, want >= %d: the surviving replica did not follow the holder change", restored, len(keys))
	}
	for _, k := range keys {
		v, found, _, err := c.Get(c.PeerIDs()[0], k)
		if err != nil || !found || string(v) != fmt.Sprint(k) {
			t.Fatalf("acknowledged write %d lost across kill + holder depart + recover: found=%v v=%q err=%v", k, found, v, err)
		}
	}
	verifyCluster(t, c)
}

// TestAutoBalanceChurnStress is the -race stress test of the balancer as a
// full structural citizen: the background balancer runs against a Zipf
// write stream (so it has real skew to chase) while direct-routed puts,
// range fan-outs and kill/recover churn execute concurrently. No
// acknowledged write frozen at a replication barrier may be lost, and the
// quiesced cluster must pass both the structural and the replication
// audits.
func TestAutoBalanceChurnStress(t *testing.T) {
	const (
		peers   = 20
		preload = 200
		writers = 3
		rounds  = 4
	)
	c, keys := liveCluster(t, peers, preload, 239)
	c.SetRouteMode(RouteDirect)
	c.StartAutoBalance(AutoBalanceConfig{Theta: 2, Interval: 2 * time.Millisecond, MinItems: 8})

	var acked sync.Map
	for _, k := range keys {
		acked.Store(k, fmt.Sprint(k))
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	liveVia := func(rng *rand.Rand) (core.PeerID, bool) {
		ids := c.PeerIDs()
		for tries := 0; tries < 16; tries++ {
			id := ids[rng.Intn(len(ids))]
			if c.Alive(id) {
				return id, true
			}
		}
		return 0, false
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + w)))
			gen := workload.NewGenerator(workload.Config{Distribution: workload.Zipf, ZipfTheta: 1.0, Seed: int64(40 + w)})
			for i := 0; !stop.Load(); i++ {
				via, ok := liveVia(rng)
				if !ok {
					continue
				}
				// Zipf-drawn keys keep the spatial skew the balancer chases;
				// each key is written at most once (hot ranks repeat, and a
				// rewrite would invalidate the frozen must-survive value).
				k := gen.NextKey()/4*4 + keyspace.Key(w)
				if _, taken := acked.Load(k); taken {
					continue
				}
				val := fmt.Sprintf("w%d-%d", w, i)
				if _, err := c.Put(via, k, []byte(val)); err == nil {
					acked.Store(k, val)
				}
				time.Sleep(50 * time.Microsecond)
			}
		}(w)
	}
	// A range fan-out reader sweeps wide slices across the hot region.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(500))
		domain := c.Domain()
		for !stop.Load() {
			via, ok := liveVia(rng)
			if !ok {
				continue
			}
			lo := domain.Lower + keyspace.Key(rng.Int63n(domain.Size()-domain.Size()/16))
			c.Range(via, keyspace.NewRange(lo, lo+keyspace.Key(domain.Size()/16))) //nolint:errcheck // transient churn errors expected
		}
	}()

	churnRng := rand.New(rand.NewSource(600))
	randAlive := func() (core.PeerID, bool) {
		ids := c.PeerIDs()
		for tries := 0; tries < 20; tries++ {
			id := ids[churnRng.Intn(len(ids))]
			if c.Alive(id) {
				return id, true
			}
		}
		return 0, false
	}
	for round := 0; round < rounds; round++ {
		// Close the async replication window, freeze the must-survive set,
		// then crash and repair a peer under the balancer's feet.
		if err := c.SyncReplicas(); err != nil {
			t.Fatalf("round %d: sync replicas: %v", round, err)
		}
		mustSurvive := map[keyspace.Key]string{}
		acked.Range(func(k, v any) bool {
			mustSurvive[k.(keyspace.Key)] = v.(string)
			return true
		})
		victim, ok := randAlive()
		if !ok {
			t.Fatalf("round %d: no alive victim", round)
		}
		if err := c.Kill(victim); err != nil {
			t.Fatalf("round %d: kill %d: %v", round, victim, err)
		}
		time.Sleep(5 * time.Millisecond) // let balancer ticks race the dead peer
		if _, err := c.Recover(victim); err != nil {
			t.Fatalf("round %d: recover %d: %v", round, victim, err)
		}
		checkRng := rand.New(rand.NewSource(int64(700 + round)))
		checked := 0
		for k, want := range mustSurvive {
			if checked >= 100 {
				break
			}
			if checkRng.Intn(4) != 0 {
				continue
			}
			checked++
			via, ok := randAlive()
			if !ok {
				t.Fatalf("round %d: no alive via", round)
			}
			v, found, _, err := c.Get(via, k)
			if err != nil || !found || string(v) != want {
				t.Fatalf("round %d: acknowledged write %d lost or wrong under balancing churn: found=%v v=%q err=%v",
					round, k, found, v, err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	// Quiesce and audit: full acknowledged sweep, structure, replication.
	ids := c.PeerIDs()
	i := 0
	var failed error
	acked.Range(func(k, v any) bool {
		got, found, _, err := c.Get(ids[i%len(ids)], k.(keyspace.Key))
		i++
		if err != nil || !found || string(got) != v.(string) {
			failed = fmt.Errorf("acknowledged write %d: found=%v v=%q err=%v", k, found, got, err)
			return false
		}
		return true
	})
	if failed != nil {
		t.Fatal(failed)
	}
	snaps := verifyCluster(t, c)
	if err := c.SyncReplicas(); err != nil {
		t.Fatal(err)
	}
	replicas, err := c.Replicas()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyReplication(snaps, replicas); err != nil {
		t.Fatalf("replication invariants after balancing churn: %v", err)
	}
	t.Logf("balance events under churn: %d (stale routes %d)", c.BalanceEvents(), c.StaleRoutes())
}
