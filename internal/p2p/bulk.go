package p2p

import (
	"fmt"
	"sort"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/obs"
	"baton/internal/store"
)

// BulkResult is the per-key outcome of a bulk operation. Results are
// returned in the order of the input keys. Err is ErrOwnerDown when the
// peer responsible for the key was dead, nil otherwise.
type BulkResult struct {
	Key   keyspace.Key
	Value []byte // BulkGet only
	Found bool   // BulkGet: key present; BulkDelete: key existed
	Err   error
}

// BulkGet looks up many keys at once. Keys are grouped by responsible peer
// and one batched message is pipelined per peer, so a batch of k keys costs
// one round trip per covering peer instead of k full routed lookups.
func (c *Cluster) BulkGet(keys []keyspace.Key) ([]BulkResult, error) {
	items := make([]store.Item, len(keys))
	for i, k := range keys {
		items[i] = store.Item{Key: k}
	}
	return c.bulk(kindBulkGet, items)
}

// BulkPut stores many items at once, grouped and pipelined by responsible
// peer like BulkGet.
func (c *Cluster) BulkPut(items []store.Item) ([]BulkResult, error) {
	return c.bulk(kindBulkPut, items)
}

// BulkDelete removes many keys at once, grouped and pipelined by
// responsible peer like BulkGet; each result's Found reports whether the
// key existed.
func (c *Cluster) BulkDelete(keys []keyspace.Key) ([]BulkResult, error) {
	items := make([]store.Item, len(keys))
	for i, k := range keys {
		items[i] = store.Item{Key: k}
	}
	return c.bulk(kindBulkDelete, items)
}

// entryOf returns the ring slot responsible for key in the given topology:
// the member whose range contained it when the topology was published, or
// the extreme members for keys outside the domain (the same rule
// ownsExtreme applies during routing). The ring is an immutable snapshot;
// across a concurrent membership change it can be stale, which the bulk
// path repairs by retrying moved keys as routed singletons.
func (t *topology) entryOf(key keyspace.Key) *ringEntry {
	n := len(t.ring)
	if n == 0 {
		return nil
	}
	if key < t.ring[0].lower {
		return &t.ring[0]
	}
	i := sort.Search(n, func(i int) bool { return t.ring[i].lower > key })
	return &t.ring[i-1]
}

// ownerOf returns the peer the current topology holds responsible for key.
func (c *Cluster) ownerOf(key keyspace.Key) *peer {
	e := c.topo.Load().entryOf(key)
	if e == nil {
		return nil
	}
	return e.p
}

// bulk groups the items by responsible peer, sends one batched request per
// peer, and gathers the per-key results back into input order. The batches
// are all in flight at once (pipelined); the only whole-call error is
// ErrStopped. Per-key failures — the owner was dead when the batch was sent
// or died with the batch queued — surface as ErrOwnerDown on the affected
// results. Keys whose ownership moved under a concurrent membership change
// come back marked errMoved and are retried as routed singleton requests,
// so the caller never observes the stale cache.
func (c *Cluster) bulk(k kind, items []store.Item) ([]BulkResult, error) {
	if c.stopped.Load() {
		return nil, ErrStopped
	}
	t := c.topo.Load()
	out := make([]BulkResult, len(items))
	type batch struct {
		id      core.PeerID
		items   []store.Item
		indices []int
		reply   chan response
		trace   *obs.Trace
	}
	batches := make(map[core.PeerID]*batch)
	order := make([]*batch, 0)
	for i, it := range items {
		e := t.entryOf(it.Key)
		if e == nil {
			out[i] = BulkResult{Key: it.Key, Err: ErrUnknownPeer}
			continue
		}
		b := batches[e.id]
		if b == nil {
			b = &batch{id: e.id, reply: make(chan response, 1)}
			batches[e.id] = b
			order = append(order, b)
		}
		b.items = append(b.items, it)
		b.indices = append(b.indices, i)
	}
	// Scatter every batch before gathering any reply so the per-peer work
	// overlaps. Each batch is its own sampling candidate: a bulk call is one
	// message per covering peer, so each batch trace is a single hop (plus
	// any forwarding a stale ring triggers).
	for _, b := range order {
		req := request{kind: k, bulk: b.items, reply: b.reply}
		c.sampleTrace(&req)
		b.trace = req.trace
		if !c.send(b.id, req) {
			if c.stopped.Load() {
				// The send failed because the cluster is stopping, not
				// because the owner died — don't mislabel healthy peers.
				return nil, ErrStopped
			}
			b.reply <- response{err: ErrOwnerDown}
		}
	}
	for _, b := range order {
		var resp response
		select {
		case resp = <-b.reply:
		case <-c.done:
			return nil, ErrStopped
		}
		c.finishTrace(request{trace: b.trace})
		for j, idx := range b.indices {
			if resp.err != nil {
				out[idx] = BulkResult{Key: b.items[j].Key, Err: resp.err}
				continue
			}
			r := resp.results[j]
			if r.Err == errMoved {
				// The batch peer no longer owns this key (membership changed
				// after the ring snapshot): fall back to a fully routed
				// singleton request via that same peer, which forwards it to
				// the current owner.
				out[idx] = c.bulkRetry(k, b.id, b.items[j])
				continue
			}
			out[idx] = r
		}
	}
	return out, nil
}

// bulkRetry re-issues one key of a bulk batch as a routed singleton request.
// The retry enters the overlay at the key's owner in the *current* topology
// (falling back to any alive member): the original batch peer refused the
// key precisely because a membership change moved it, and that peer may by
// now be a killed tombstone-to-be that would refuse the retry with
// ErrOwnerDown even though the key's new owner is alive.
func (c *Cluster) bulkRetry(k kind, via core.PeerID, it store.Item) BulkResult {
	var single kind
	switch k {
	case kindBulkGet:
		single = kindGet
	case kindBulkPut:
		single = kindPut
	case kindBulkDelete:
		single = kindDelete
	default:
		// Only the three bulk kinds have a singleton counterpart; mapping
		// anything else to a delete (as an earlier version did) would destroy
		// data on a dispatch bug.
		return BulkResult{Key: it.Key, Err: fmt.Errorf("p2p: bulk retry for non-bulk kind %d", k)}
	}
	t := c.topo.Load()
	if e := t.entryOf(it.Key); e != nil && e.p.alive.Load() {
		via = e.id
	} else if !c.Alive(via) {
		for i := range t.ring {
			if t.ring[i].p.alive.Load() {
				via = t.ring[i].id
				break
			}
		}
	}
	resp, err := c.issue(via, request{kind: single, key: it.Key, value: it.Value})
	if err != nil {
		return BulkResult{Key: it.Key, Err: err}
	}
	if resp.err != nil {
		return BulkResult{Key: it.Key, Err: resp.err}
	}
	switch k {
	case kindBulkGet:
		return BulkResult{Key: it.Key, Value: resp.value, Found: resp.found}
	case kindBulkPut:
		return BulkResult{Key: it.Key, Found: true}
	default:
		return BulkResult{Key: it.Key, Found: resp.found}
	}
}

// handleBulk applies a batched operation locally. Keys this peer owns are
// answered from the local store — the whole batch costs the one message
// that delivered it. Keys it does not own (the client grouped the batch
// with a ring snapshot that a membership change has since invalidated) are
// marked errMoved for the client to retry individually.
func (c *Cluster) handleBulk(p *peer, req request) {
	results := make([]BulkResult, len(req.bulk))
	for i, it := range req.bulk {
		if !p.rng.Contains(it.Key) && !c.ownsExtreme(p, it.Key) {
			results[i] = BulkResult{Key: it.Key, Err: errMoved}
			continue
		}
		switch req.kind {
		case kindBulkGet:
			v, ok := p.data.Get(it.Key)
			results[i] = BulkResult{Key: it.Key, Value: v, Found: ok}
		case kindBulkPut:
			p.data.Put(it.Key, it.Value)
			results[i] = BulkResult{Key: it.Key, Found: true}
		case kindBulkDelete:
			ok := p.data.Delete(it.Key)
			results[i] = BulkResult{Key: it.Key, Found: ok}
		default:
			// A non-bulk kind can only get here through a dispatch bug; a
			// zero BulkResult would read as "key absent", so answer the slot
			// with an explicit error instead.
			results[i] = BulkResult{Key: it.Key, Err: fmt.Errorf("p2p: unhandled bulk kind %d", req.kind)}
		}
	}
	p.noteItems()
	c.respond(req, response{results: results, hops: req.hops})
}
