package p2p

import (
	"sort"

	"baton/internal/keyspace"
	"baton/internal/store"
)

// BulkResult is the per-key outcome of a bulk operation. Results are
// returned in the order of the input keys. Err is ErrOwnerDown when the
// peer responsible for the key was dead, nil otherwise.
type BulkResult struct {
	Key   keyspace.Key
	Value []byte // BulkGet only
	Found bool   // BulkGet: key present; BulkDelete: key existed
	Err   error
}

// BulkGet looks up many keys at once. Keys are grouped by responsible peer
// and one batched message is pipelined per peer, so a batch of k keys costs
// one round trip per covering peer instead of k full routed lookups.
func (c *Cluster) BulkGet(keys []keyspace.Key) ([]BulkResult, error) {
	items := make([]store.Item, len(keys))
	for i, k := range keys {
		items[i] = store.Item{Key: k}
	}
	return c.bulk(kindBulkGet, items)
}

// BulkPut stores many items at once, grouped and pipelined by responsible
// peer like BulkGet.
func (c *Cluster) BulkPut(items []store.Item) ([]BulkResult, error) {
	return c.bulk(kindBulkPut, items)
}

// BulkDelete removes many keys at once, grouped and pipelined by
// responsible peer like BulkGet; each result's Found reports whether the
// key existed.
func (c *Cluster) BulkDelete(keys []keyspace.Key) ([]BulkResult, error) {
	items := make([]store.Item, len(keys))
	for i, k := range keys {
		items[i] = store.Item{Key: k}
	}
	return c.bulk(kindBulkDelete, items)
}

// ownerOf returns the peer responsible for key: the peer whose range
// contains it, or the extreme peers for keys outside the domain (the same
// rule ownsExtreme applies during routing). The ring is immutable after
// NewCluster, so the lookup is a plain binary search.
func (c *Cluster) ownerOf(key keyspace.Key) *peer {
	n := len(c.ring)
	if n == 0 {
		return nil
	}
	if key < c.ring[0].rng.Lower {
		return c.ring[0]
	}
	i := sort.Search(n, func(i int) bool { return c.ring[i].rng.Lower > key })
	return c.ring[i-1]
}

// bulk groups the items by responsible peer, sends one batched request per
// peer, and gathers the per-key results back into input order. The batches
// are all in flight at once (pipelined); the only whole-call error is
// ErrStopped. Per-key failures — the owner was dead when the batch was sent
// or died with the batch queued — surface as ErrOwnerDown on the affected
// results.
func (c *Cluster) bulk(k kind, items []store.Item) ([]BulkResult, error) {
	if c.stopped.Load() {
		return nil, ErrStopped
	}
	out := make([]BulkResult, len(items))
	type batch struct {
		p       *peer
		items   []store.Item
		indices []int
		reply   chan response
	}
	batches := make(map[*peer]*batch)
	order := make([]*batch, 0)
	for i, it := range items {
		p := c.ownerOf(it.Key)
		if p == nil {
			out[i] = BulkResult{Key: it.Key, Err: ErrUnknownPeer}
			continue
		}
		b := batches[p]
		if b == nil {
			b = &batch{p: p, reply: make(chan response, 1)}
			batches[p] = b
			order = append(order, b)
		}
		b.items = append(b.items, it)
		b.indices = append(b.indices, i)
	}
	// Scatter every batch before gathering any reply so the per-peer work
	// overlaps.
	for _, b := range order {
		req := request{kind: k, bulk: b.items, reply: b.reply}
		if !c.send(b.p.id, req) {
			if c.stopped.Load() {
				// The send failed because the cluster is stopping, not
				// because the owner died — don't mislabel healthy peers.
				return nil, ErrStopped
			}
			b.reply <- response{err: ErrOwnerDown}
		}
	}
	for _, b := range order {
		var resp response
		select {
		case resp = <-b.reply:
		case <-c.done:
			return nil, ErrStopped
		}
		for j, idx := range b.indices {
			if resp.err != nil {
				out[idx] = BulkResult{Key: b.items[j].Key, Err: resp.err}
				continue
			}
			out[idx] = resp.results[j]
		}
	}
	return out, nil
}

// handleBulk applies a batched operation locally. Every key in the batch is
// owned by this peer (the client grouped them with the same range table the
// router uses), so no forwarding is ever needed: the whole batch costs the
// one message that delivered it.
func (c *Cluster) handleBulk(p *peer, req request) {
	results := make([]BulkResult, len(req.bulk))
	for i, it := range req.bulk {
		switch req.kind {
		case kindBulkGet:
			v, ok := p.data.Get(it.Key)
			results[i] = BulkResult{Key: it.Key, Value: v, Found: ok}
		case kindBulkPut:
			p.data.Put(it.Key, it.Value)
			results[i] = BulkResult{Key: it.Key, Found: true}
		case kindBulkDelete:
			ok := p.data.Delete(it.Key)
			results[i] = BulkResult{Key: it.Key, Found: ok}
		}
	}
	req.reply <- response{results: results, hops: req.hops}
}
