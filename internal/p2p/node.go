// The multi-process face of the cluster: netLayer carries the p2p protocol
// over a transport.Transport so one overlay can span several OS processes
// ("nodes"). Peers hosted by this process are served exactly as before —
// the channel/spill fast path never builds a frame — while peers hosted
// elsewhere appear locally as *stubs*: peer objects with node != 0 and no
// goroutine, whose deliveries detour through netLayer.deliver onto the
// wire.
//
// # Correlation
//
// Reply channels cannot cross a process boundary. A request that expects an
// answer acquires an entry in the origin node's correlation table
// (acquireCorr) and travels with the entry's ID in the frame header; the
// node that finally serves it wire-replies to the frame's Origin with the
// same ID, and the origin releases the entry (releaseCorr) and runs its
// completion — a channel send, a range-collector contribution, or a
// pass-through to yet another node's correlation. Entries are released
// exactly once: on response arrival, when the connection they depend on
// drops (completed with ErrOwnerDown, the failure retry layers already
// handle), or at Stop (ErrStopped). batonvet's replypool analyzer checks
// the acquire/release pairing.
//
// # Roles
//
// The node that built the overlay (NewClusterListen) is the *coordinator*
// (head): it owns the structural mirror, runs every membership operation,
// and broadcasts topology snapshots (ctlTopo) that the other nodes
// (daemons, via JoinRemote) apply to keep their stub tables current.
// Daemons host peers and serve data traffic; structural APIs on a daemon
// return ErrNotCoordinator.
package p2p

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/obs"
	"baton/internal/query"
	"baton/internal/transport"
)

// ErrNotCoordinator is returned by structural operations (Join, Depart,
// Kill, Recover, LoadBalance, ...) invoked on a node that is not the
// cluster's coordinator. Membership is centrally serialised at the head
// node, the live counterpart of the paper's serialisation of restructuring.
var ErrNotCoordinator = errors.New("p2p: structural operations run at the coordinator node")

// headNodeID is the coordinator's transport ID; daemons are assigned IDs
// from 2 during the hello handshake.
const headNodeID transport.NodeID = 1

// msgFlagAny is the transport-frame flag carrying sendAny's even-dead bit:
// membership control traffic must reach killed peers on remote nodes too,
// and the bit lives in the frame header rather than the payload because it
// is an instruction to the *delivery* at the receiving node, not part of
// the request.
const msgFlagAny = 1 << 0

// ctlOp is a control-plane opcode (first payload byte of a msgControl
// frame). A defined type so batonvet's kindexhaustive check covers the ctl
// worker's dispatch: adding an opcode without deciding how handleCtl treats
// it is a compile-time-silent, analysis-time-loud mistake.
type ctlOp byte

// Control-plane opcodes.
const (
	ctlReply ctlOp = iota + 1 // RPC completion, body = the reply
	ctlHello                 // daemon→head: body = daemon listen addr; reply = domain + fanout
	ctlJoin                  // daemon→head: body = peer count; reply = joined count
	ctlSpawn                 // head→daemon: create a hosted peer; reply = status byte
	ctlTopo                  // head→daemon broadcast: topology snapshot, no reply
	ctlLoads                 // head→daemon: reply = per-hosted-peer load counters
	ctlPush                  // local only: head ctl worker pushes topology to one node
)

// rpcTimeout bounds a control RPC: a wedged remote must not hang a
// structural operation forever (the join loop is the longest-running RPC).
const rpcTimeout = 30 * time.Second

// corrEntry is one outstanding wire request: the node whose connection the
// response depends on, and the completion to run when it arrives.
type corrEntry struct {
	node transport.NodeID
	fn   func(response)
}

// corrTable maps correlation IDs to completions. IDs are never reused
// (64-bit counter), so a late response for a released entry is dropped.
type corrTable struct {
	mu   sync.Mutex
	next uint64
	m    map[uint64]corrEntry
}

// acquireCorr registers a completion and returns its correlation ID.
// Package-level (not a method) so batonvet's replypool analyzer can pair
// acquire and release sites the same way it pairs getReply/putReply.
func acquireCorr(t *corrTable, node transport.NodeID, fn func(response)) uint64 {
	t.mu.Lock()
	t.next++
	id := t.next
	if t.m == nil {
		t.m = make(map[uint64]corrEntry)
	}
	t.m[id] = corrEntry{node: node, fn: fn}
	t.mu.Unlock()
	return id
}

// releaseCorr removes and returns the completion for id; ok is false when
// the entry was already released (response raced a connection drop).
func releaseCorr(t *corrTable, id uint64) (fn func(response), ok bool) {
	t.mu.Lock()
	e, found := t.m[id]
	if found {
		delete(t.m, id)
	}
	t.mu.Unlock()
	return e.fn, found
}

// sweep releases every entry (node == 0) or every entry depending on the
// given node, completing each with err — the wire counterpart of refusing
// a delivery.
func (t *corrTable) sweep(node transport.NodeID, err error) {
	var fns []func(response)
	t.mu.Lock()
	for id, e := range t.m {
		if node == 0 || e.node == node {
			fns = append(fns, e.fn)
			delete(t.m, id)
		}
	}
	t.mu.Unlock()
	for _, fn := range fns {
		fn(response{err: err})
	}
}

// ctlMsg is one queued control-plane message.
type ctlMsg struct {
	from transport.NodeID
	corr uint64
	op   ctlOp
	body []byte
}

// rpcResult completes one control RPC.
type rpcResult struct {
	body []byte
	err  error
}

// netLayer is a Cluster's connection to the rest of the multi-process
// overlay. Nil on a purely in-process cluster — every hook checks.
type netLayer struct {
	self     transport.NodeID
	isHead   bool
	headNode transport.NodeID // daemons: the node whose loss is fatal

	// trp and cval are set once during construction but read from
	// transport goroutines that may start before construction finishes,
	// so both are atomic.
	trp  atomic.Pointer[transport.TCP]
	cval atomic.Pointer[Cluster]

	corr corrTable

	// Control messages are decoded and applied on a dedicated worker
	// goroutine (registered in the cluster's WaitGroup) because they take
	// memberMu and issue RPCs — work a connection reader must never block
	// on. ctlReply frames bypass the queue: they complete RPCs the worker
	// itself may be blocked on.
	ctlMu   sync.Mutex
	ctlQ    []ctlMsg
	ctlWake chan struct{}

	pendMu   sync.Mutex
	pendNext uint64
	pending  map[uint64]chan rpcResult

	// Head: node IDs for dialers and the address table rebroadcast in
	// ctlTopo so daemons can dial each other for direct handoffs.
	assignNext atomic.Uint32
	addrMu     sync.Mutex
	nodeAddrs  map[transport.NodeID]string

	// done unblocks RPC waiters at shutdown; closed before the cluster's
	// WaitGroup is awaited so a ctl worker blocked in an RPC can exit.
	done     chan struct{}
	downOnce sync.Once

	// seedDown is closed (daemons only) when the connection to the head
	// drops — the daemon's signal that the cluster it belongs to is gone.
	seedDown chan struct{}
	seedOnce sync.Once
}

func newNetLayer(isHead bool) *netLayer {
	n := &netLayer{
		isHead:   isHead,
		headNode: headNodeID,
		ctlWake:  make(chan struct{}, 1),
		pending:  make(map[uint64]chan rpcResult),
		done:     make(chan struct{}),
		seedDown: make(chan struct{}),
	}
	if isHead {
		n.nodeAddrs = make(map[transport.NodeID]string)
		n.assignNext.Store(uint32(headNodeID))
	}
	return n
}

func (n *netLayer) cluster() *Cluster        { return n.cval.Load() }
func (n *netLayer) tr() *transport.TCP       { return n.trp.Load() }
func (n *netLayer) assign() transport.NodeID { return transport.NodeID(n.assignNext.Add(1)) }

// send is tr.Send with the not-yet-listening window covered.
func (n *netLayer) send(to transport.NodeID, m *transport.Msg) bool {
	tr := n.tr()
	return tr != nil && tr.Send(to, m)
}

// attach binds the netLayer to its cluster and starts the control worker.
func (n *netLayer) attach(c *Cluster) {
	c.net = n
	n.cval.Store(c)
	c.wg.Add(1)
	go n.ctlLoop(c)
}

// beginClose unblocks RPC waiters; called by Stop before waiting for the
// WaitGroup (the ctl worker may be inside an RPC).
func (n *netLayer) beginClose() {
	n.downOnce.Do(func() { close(n.done) })
}

// finishClose tears the transport down and fails everything outstanding;
// called by Stop after the WaitGroup drains.
func (n *netLayer) finishClose() {
	if tr := n.tr(); tr != nil {
		tr.Close()
	}
	n.corr.sweep(0, ErrStopped)
	n.failPending(0, ErrStopped)
}

func (n *netLayer) failPending(node transport.NodeID, err error) {
	var chs []chan rpcResult
	n.pendMu.Lock()
	for id, ch := range n.pending {
		_ = id
		chs = append(chs, ch)
		delete(n.pending, id)
	}
	n.pendMu.Unlock()
	for _, ch := range chs {
		ch <- rpcResult{err: err}
	}
}

// onPeerUp runs when a connection to another node is established. The head
// pushes its current topology so a (re)connecting daemon converges without
// waiting for the next structural operation; the push is queued to the ctl
// worker because it takes memberMu.
func (n *netLayer) onPeerUp(node transport.NodeID) {
	if !n.isHead {
		return
	}
	n.enqueueCtl(ctlMsg{from: node, op: ctlPush})
}

// onPeerDown fails every correlation and RPC that depended on the dropped
// connection with ErrOwnerDown — the exact error the retry and fail-over
// layers already handle for an in-process dead peer. A daemon losing its
// head connection also trips seedDown: the coordinator owns the overlay,
// so without it the daemon is an orphan (batond exits on this signal).
func (n *netLayer) onPeerDown(node transport.NodeID) {
	err := fmt.Errorf("%w: connection to node %d lost", ErrOwnerDown, node)
	n.corr.sweep(node, err)
	var chs []chan rpcResult
	n.pendMu.Lock()
	for id, ch := range n.pending {
		_ = id
		chs = append(chs, ch)
		delete(n.pending, id)
	}
	n.pendMu.Unlock()
	for _, ch := range chs {
		ch <- rpcResult{err: err}
	}
	if !n.isHead && node == n.headNode {
		n.seedOnce.Do(func() { close(n.seedDown) })
	}
}

// handleMsg is the transport inbound dispatch. It runs on connection
// reader goroutines and must not block; everything potentially slow is
// queued to the ctl worker or a peer inbox.
func (n *netLayer) handleMsg(from transport.NodeID, m *transport.Msg) {
	switch wireKind(m.Kind) {
	case msgRequest:
		n.inboundRequest(m)
	case msgResponse:
		n.inboundResponse(m)
	case msgControl:
		n.inboundControl(from, m)
	}
}

// deliver puts a request on the wire towards the node hosting stub p. It
// is deliverTo's remote tail: the same refusal semantics (false = not and
// never delivered), with reply channels and collectors swapped for
// correlation entries. Delivery and hop metrics are recorded at the origin
// against the stub, so Cluster.Messages and per-peer counters stay
// meaningful wherever the peer lives.
func (n *netLayer) deliver(p *peer, req request, evenDead bool) bool {
	c := n.cluster()
	if c == nil {
		return false
	}
	var m transport.Msg
	m.To = uint64(int64(p.id))
	m.Origin = n.self
	m.Kind = byte(msgRequest)
	if evenDead {
		m.Flags = msgFlagAny
	}

	// A kindUpdate's moves carry ack channels the destination peers answer
	// to; crossing the wire they become correlation entries at this (the
	// coordinating) node, and each move learns its destination's hosting
	// node so a remote source can deliver the handoff even before the
	// topology broadcast naming a freshly spawned destination reaches it.
	var corrs []uint64
	if req.kind == kindUpdate && len(req.moves) > 0 {
		moves := make([]handoffMove, len(req.moves))
		copy(moves, req.moves)
		for i := range moves {
			mv := &moves[i]
			mv.dstNode = n.nodeOf(c, mv.dst)
			if mv.ack != nil {
				ack := mv.ack
				mv.ackCorr = acquireCorr(&n.corr, mv.dstNode, func(r response) { ack <- r })
				mv.ackNode = n.self
				corrs = append(corrs, mv.ackCorr)
				mv.ack = nil
			}
		}
		req.moves = moves
	}

	switch {
	case req.reply != nil:
		ch := req.reply
		m.Corr = acquireCorr(&n.corr, p.node, func(r response) { ch <- r })
	case req.coll != nil:
		// A scatter branch leaving the node: the collector stays here and
		// the remote gathers its branch into a proxy (see inboundRequest),
		// wire-replying the branch total to this correlation. Streaming
		// collectors push into a bounded sink, which may block — never on
		// a connection reader, so those complete on a fresh goroutine.
		coll := req.coll
		lo := req.rng.Lower
		m.Corr = acquireCorr(&n.corr, p.node, func(r response) {
			if coll.sink != nil {
				go coll.finish(lo, r.items, r.hops, r.err)
			} else {
				coll.finish(lo, r.items, r.hops, r.err)
			}
		})
	case req.rcorr != 0:
		// Forwarding a request that originated on another node: pass the
		// origin's correlation through verbatim, so the final server
		// replies straight to the origin instead of retracing the route.
		m.Corr = req.rcorr
		m.Origin = req.rnode
	}
	m.Payload = encodeRequest(nil, &req)
	if !n.send(p.node, &m) {
		if req.reply != nil || req.coll != nil {
			releaseCorr(&n.corr, m.Corr)
		}
		for _, id := range corrs {
			releaseCorr(&n.corr, id)
		}
		return false
	}
	c.msgs.add(uint64(p.id))
	p.met.Delivered(int(req.kind))
	//batonvet:ignore replypool ownership crossed the wire: the response frame (or a connection-drop sweep) releases the entries
	return true
}

// nodeOf resolves the node hosting peer id; unknown and locally hosted
// peers map to this node.
func (n *netLayer) nodeOf(c *Cluster, id core.PeerID) transport.NodeID {
	if p := c.topo.Load().peers[id]; p != nil && p.node != 0 {
		return p.node
	}
	return n.self
}

// sendRequestTo ships a request to an explicitly named node, bypassing the
// local topology — the fallback for a handoff whose destination was
// spawned remotely and is not in this node's stub table yet.
func (n *netLayer) sendRequestTo(node transport.NodeID, id core.PeerID, req request, evenDead bool) bool {
	if node == 0 || node == n.self {
		return false
	}
	var m transport.Msg
	m.To = uint64(int64(id))
	m.Origin = n.self
	m.Kind = byte(msgRequest)
	if evenDead {
		m.Flags = msgFlagAny
	}
	if req.rcorr != 0 {
		m.Corr = req.rcorr
		m.Origin = req.rnode
	}
	m.Payload = encodeRequest(nil, &req)
	return n.send(node, &m)
}

// replyWire answers a wire request: complete the correlation locally when
// it lives in this node's own table (a request that crossed the wire and
// came back), otherwise send a response frame to the origin node.
func (n *netLayer) replyWire(node transport.NodeID, corr uint64, resp response) {
	if corr == 0 {
		return
	}
	if node == n.self || node == 0 {
		if fn, ok := releaseCorr(&n.corr, corr); ok {
			fn(resp)
		}
		return
	}
	m := transport.Msg{Corr: corr, Origin: n.self, Kind: byte(msgResponse), Payload: encodeResponse(nil, &resp)}
	n.send(node, &m)
}

// respond is the single completion point for handled requests: in-process
// requests answer on their reply channel (the untouched fast path), wire
// requests answer their origin's correlation, fire-and-forget requests
// have neither and are dropped.
func (c *Cluster) respond(req request, resp response) {
	if req.reply != nil {
		req.reply <- resp
		return
	}
	if req.rcorr != 0 && c.net != nil {
		c.net.replyWire(req.rnode, req.rcorr, resp)
	}
}

// inboundRequest injects a wire request into the local delivery path.
func (n *netLayer) inboundRequest(m *transport.Msg) {
	c := n.cluster()
	if c == nil || c.stopped.Load() {
		return
	}
	req, err := decodeRequest(m.Payload)
	if err != nil {
		// A malformed frame from a peer node: there is nothing safe to
		// deliver, but a correlated sender must not wait out the timeout.
		if m.Corr != 0 {
			n.replyWire(m.Origin, m.Corr, response{err: fmt.Errorf("%w: undecodable request", ErrUnreachable)})
		}
		return
	}
	req.rnode = m.Origin
	req.rcorr = m.Corr
	evenDead := m.Flags&msgFlagAny != 0
	t := c.topo.Load()
	p := t.peers[core.PeerID(int64(m.To))]
	if p == nil {
		n.failInbound(req, fmt.Errorf("%w: %d", ErrOwnerDown, core.PeerID(int64(m.To))))
		return
	}
	if p.node != 0 {
		// The sender's topology was stale: the peer is hosted elsewhere
		// (possibly back at the sender). Re-forward over the wire, charging
		// a hop so two nodes with disagreeing views cannot bounce a request
		// between them forever — the hop cap ends the orbit.
		req.hops++
		if req.hops > t.hopCap || !c.deliverTo(p, req, evenDead) {
			n.failInbound(req, fmt.Errorf("%w: %d", ErrOwnerDown, p.id))
		}
		return
	}
	if req.kind == kindCrash {
		// Kill crosses the wire: drop the alive flag at the hosting node
		// before the wipe is delivered, exactly as Kill does locally, so
		// concurrent sends fail over immediately.
		p.alive.Store(false)
	}
	if req.kind == kindRangeScatter && req.rcorr != 0 {
		// A scatter branch from another node: its collector stayed at the
		// origin. Gather the branch (and its recursive local sub-branches)
		// in a proxy collector that wire-replies the branch total.
		coll := &collector{wire: &wireDest{n: n, node: req.rnode, corr: req.rcorr}}
		coll.grow(1)
		req.coll = coll
		req.rcorr, req.rnode = 0, 0
	}
	if !c.deliverTo(p, req, evenDead) {
		n.failInbound(req, fmt.Errorf("%w: %d", ErrOwnerDown, p.id))
	}
}

// failInbound refuses a wire request that could not be delivered, through
// whichever completion it carries (mirrors Cluster.refuse).
func (n *netLayer) failInbound(req request, err error) {
	if req.coll != nil {
		req.coll.finish(req.rng.Lower, nil, req.hops, err)
		return
	}
	if req.rcorr != 0 {
		n.replyWire(req.rnode, req.rcorr, response{items: req.acc, hops: req.hops, err: err})
	}
}

// inboundResponse completes the correlation a response frame names.
func (n *netLayer) inboundResponse(m *transport.Msg) {
	resp, err := decodeResponse(m.Payload)
	if err != nil {
		resp = response{err: fmt.Errorf("%w: undecodable response", ErrUnreachable)}
	}
	if fn, ok := releaseCorr(&n.corr, m.Corr); ok {
		fn(resp)
	}
}

// wireDest is a collector's remote client: the origin-node correlation the
// gathered branch total is wire-replied to.
type wireDest struct {
	n    *netLayer
	node transport.NodeID
	corr uint64
}

func (w *wireDest) deliver(resp response) { w.n.replyWire(w.node, w.corr, resp) }

// inboundControl handles a control frame: RPC completions inline (the ctl
// worker itself may be blocked waiting for one), everything else queued to
// the worker.
func (n *netLayer) inboundControl(from transport.NodeID, m *transport.Msg) {
	if len(m.Payload) == 0 {
		return
	}
	op := ctlOp(m.Payload[0])
	body := m.Payload[1:]
	if op == ctlReply {
		n.pendMu.Lock()
		ch, ok := n.pending[m.Corr]
		if ok {
			delete(n.pending, m.Corr)
		}
		n.pendMu.Unlock()
		if ok {
			b := make([]byte, len(body))
			copy(b, body)
			ch <- rpcResult{body: b}
		}
		return
	}
	b := make([]byte, len(body))
	copy(b, body)
	n.enqueueCtl(ctlMsg{from: from, corr: m.Corr, op: op, body: b})
}

func (n *netLayer) enqueueCtl(msg ctlMsg) {
	n.ctlMu.Lock()
	n.ctlQ = append(n.ctlQ, msg)
	n.ctlMu.Unlock()
	select {
	case n.ctlWake <- struct{}{}:
	default:
	}
}

// ctlLoop is the control worker: it serialises control-plane work the
// connection readers must not block on (spawns, topology applies, joins).
func (n *netLayer) ctlLoop(c *Cluster) {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case <-n.ctlWake:
			for {
				n.ctlMu.Lock()
				q := n.ctlQ
				n.ctlQ = nil
				n.ctlMu.Unlock()
				if len(q) == 0 {
					break
				}
				for _, msg := range q {
					n.handleCtl(c, msg)
				}
			}
		}
	}
}

func (n *netLayer) handleCtl(c *Cluster, msg ctlMsg) {
	switch msg.op {
	case ctlReply:
		// Completed inline in inboundControl, before the queue — a queued
		// one means a reply raced Stop's pending-RPC drain; nothing waits
		// for it any more.
		return
	case ctlHello:
		if !n.isHead {
			return
		}
		r := wreader{b: msg.body}
		addr := string(r.bytes())
		if r.done() && addr != "" {
			n.addrMu.Lock()
			n.nodeAddrs[msg.from] = addr
			n.addrMu.Unlock()
			if tr := n.tr(); tr != nil {
				tr.SetAddr(msg.from, addr)
			}
		}
		b := appendRange(nil, c.domain)
		b = appendU32(b, uint32(c.fanout))
		n.ctlReplyTo(msg, b)
	case ctlJoin:
		if !n.isHead {
			return
		}
		r := wreader{b: msg.body}
		count := int(r.u32())
		if !r.done() || count < 0 {
			return
		}
		joined := 0
		for i := 0; i < count; i++ {
			if _, err := c.joinAt(msg.from); err != nil {
				break
			}
			joined++
		}
		n.ctlReplyTo(msg, appendU32(nil, uint32(joined)))
	case ctlSpawn:
		if n.isHead {
			return
		}
		status := byte(0)
		if c.applySpawn(msg.body) {
			status = 1
		}
		n.ctlReplyTo(msg, []byte{status})
	case ctlTopo:
		if n.isHead {
			return
		}
		c.applyTopoBroadcast(msg.body)
	case ctlLoads:
		if n.isHead {
			return
		}
		n.ctlReplyTo(msg, c.encodeLocalLoads())
	case ctlPush:
		if !n.isHead {
			return
		}
		c.memberMu.Lock()
		if !c.stopped.Load() {
			n.send(msg.from, &transport.Msg{Kind: byte(msgControl), Origin: n.self, Payload: n.encodeTopoLocked(c)})
		}
		c.memberMu.Unlock()
	}
}

func (n *netLayer) ctlReplyTo(msg ctlMsg, body []byte) {
	if msg.corr == 0 {
		return
	}
	payload := append([]byte{byte(ctlReply)}, body...)
	n.send(msg.from, &transport.Msg{Corr: msg.corr, Origin: n.self, Kind: byte(msgControl), Payload: payload})
}

// rpc sends one control request and waits for its ctlReply.
func (n *netLayer) rpc(node transport.NodeID, op ctlOp, body []byte) ([]byte, error) {
	ch := make(chan rpcResult, 1)
	n.pendMu.Lock()
	n.pendNext++
	id := n.pendNext
	n.pending[id] = ch
	n.pendMu.Unlock()
	payload := append([]byte{byte(op)}, body...)
	if !n.send(node, &transport.Msg{Corr: id, Origin: n.self, Kind: byte(msgControl), Payload: payload}) {
		n.dropPendingRPC(id)
		return nil, fmt.Errorf("%w: node %d", ErrUnreachable, node)
	}
	timer := time.NewTimer(rpcTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.body, res.err
	case <-n.done:
		n.dropPendingRPC(id)
		return nil, ErrStopped
	case <-timer.C:
		n.dropPendingRPC(id)
		return nil, fmt.Errorf("p2p: control rpc %d to node %d timed out: %w", op, node, ErrUnreachable)
	}
}

func (n *netLayer) dropPendingRPC(id uint64) {
	n.pendMu.Lock()
	delete(n.pending, id)
	n.pendMu.Unlock()
}

// joinAt runs one Join with the spawn redirected to the given node: the
// mirror's structural decision is unchanged, but the new peer's serve
// goroutine starts on the daemon that asked (ctlSpawn) instead of here.
func (c *Cluster) joinAt(node transport.NodeID) (core.PeerID, error) {
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	if c.stopped.Load() {
		return core.NoPeer, ErrStopped
	}
	via := core.NoPeer
	for _, e := range c.topo.Load().ring {
		if e.p.alive.Load() {
			via = e.id
			break
		}
	}
	if via == core.NoPeer {
		return core.NoPeer, fmt.Errorf("p2p: no alive peer to join via: %w", ErrUnreachable)
	}
	c.journalBegin("join-remote", core.NoPeer)
	c.spawnAt = node
	id, err := c.joinLocked(via)
	c.spawnAt = 0
	c.journalSetPeer(id)
	c.journalEnd(err)
	return id, err
}

// spawnRemote creates the new peer on its hosting daemon (phase 1 of
// applyMirrorDiffLocked when c.spawnAt is set): a synchronous ctlSpawn RPC, so
// the peer is provably serving — buffering its pending regions — before
// any handoff is addressed to it.
func (n *netLayer) spawnRemote(node transport.NodeID, id core.PeerID, st *peerState, gains []keyspace.Range) error {
	body := appendPeerID(nil, id)
	body = appendState(body, st)
	body = appendRanges(body, gains)
	rep, err := n.rpc(node, ctlSpawn, body)
	if err != nil {
		return err
	}
	if len(rep) != 1 || rep[0] != 1 {
		return fmt.Errorf("p2p: node %d failed to spawn peer %d: %w", node, id, ErrUnreachable)
	}
	return nil
}

// applySpawn (daemon) creates a locally hosted peer from a ctlSpawn body.
func (c *Cluster) applySpawn(body []byte) bool {
	r := wreader{b: body}
	id := r.peerID()
	st := r.state()
	gains := r.ranges()
	if !r.done() || st == nil {
		return false
	}
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	if c.stopped.Load() {
		return false
	}
	t := c.topo.Load()
	if t.peers[id] != nil {
		return false
	}
	p := newPeer(id, c.fanout)
	p.installState(st)
	p.pending = gains
	p.alive.Store(true)
	nt := t.clone()
	nt.peers[id] = p
	// Registered for delivery but not yet a member: the topology broadcast
	// that follows the coordinator's structural operation publishes
	// membership, exactly like publishTopology does locally.
	c.topo.Store(nt)
	c.wg.Add(1)
	go c.serve(p)
	return true
}

// encodeTopoLocked (head, memberMu held) renders the current composition
// as a ctlTopo payload: epoch, members with hosting node / range / alive
// flag, and the node address table daemons use to dial each other.
func (n *netLayer) encodeTopoLocked(c *Cluster) []byte {
	t := c.topo.Load()
	b := []byte{byte(ctlTopo)}
	b = appendU64(b, t.epoch)
	b = appendU32(b, uint32(len(t.ids)))
	for _, id := range t.ids {
		p := t.peers[id]
		node := p.node
		if node == 0 {
			node = n.self
		}
		rng := c.states[id].Range
		b = appendPeerID(b, id)
		b = appendU32(b, uint32(node))
		b = appendRange(b, rng)
		b = appendBool(b, p.alive.Load())
	}
	n.addrMu.Lock()
	b = appendU32(b, uint32(len(n.nodeAddrs)+1))
	b = appendU32(b, uint32(n.self))
	b = appendBytes(b, []byte(n.tr().Addr()))
	for node, addr := range n.nodeAddrs {
		b = appendU32(b, uint32(node))
		b = appendBytes(b, []byte(addr))
	}
	n.addrMu.Unlock()
	return b
}

// broadcastTopoLocked pushes the current composition to every connected
// node; the head calls it (memberMu held) after every publishTopology and
// after Kill flips a remote peer's alive flag.
func (n *netLayer) broadcastTopoLocked(c *Cluster) {
	tr := n.tr()
	if tr == nil {
		return
	}
	b := n.encodeTopoLocked(c)
	for _, node := range tr.Peers() {
		tr.Send(node, &transport.Msg{Kind: byte(msgControl), Origin: n.self, Payload: b})
	}
}

// applyTopoBroadcast (daemon) swaps in the composition a ctlTopo frame
// describes. Locally hosted peers are kept as-is (their goroutines own
// their structural state and alive flags); peers hosted elsewhere become
// stubs carrying the broadcast range and alive flag. Members that vanished
// from the list join the tombstone queue so stale deliveries keep being
// forwarded until the usual two-stage reap retires them.
func (c *Cluster) applyTopoBroadcast(body []byte) {
	n := c.net
	r := wreader{b: body}
	epoch := r.u64()
	cnt := r.count(29)
	type member struct {
		id    core.PeerID
		node  transport.NodeID
		rng   keyspace.Range
		alive bool
	}
	ms := make([]member, 0, cnt)
	for i := 0; i < cnt && !r.fail; i++ {
		ms = append(ms, member{
			id:    r.peerID(),
			node:  transport.NodeID(r.u32()),
			rng:   r.rng(),
			alive: r.bool(),
		})
	}
	acnt := r.count(8)
	type nodeAddr struct {
		node transport.NodeID
		addr string
	}
	addrs := make([]nodeAddr, 0, acnt)
	for i := 0; i < acnt && !r.fail; i++ {
		addrs = append(addrs, nodeAddr{node: transport.NodeID(r.u32()), addr: string(r.bytes())})
	}
	if !r.done() {
		return
	}
	if tr := n.tr(); tr != nil {
		for _, na := range addrs {
			if na.node != n.self {
				tr.SetAddr(na.node, na.addr)
			}
		}
	}

	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	if c.stopped.Load() {
		return
	}
	old := c.topo.Load()
	if epoch < old.epoch {
		return // a stale replay (reconnect push raced a newer broadcast)
	}
	c.reapTombstones()
	old = c.topo.Load()
	nt := &topology{
		peers:   make(map[core.PeerID]*peer, len(ms)+len(old.peers)),
		members: make(map[core.PeerID]bool, len(ms)),
		epoch:   epoch,
	}
	for _, m := range ms {
		p := old.peers[m.id]
		hosted := m.node == n.self
		switch {
		case p != nil && hosted && p.node == 0:
			// A peer this node hosts: its goroutine owns range and flags.
		case p != nil && !hosted && p.node == m.node:
			p.rng = m.rng
			p.alive.Store(m.alive)
		case hosted:
			// The broadcast says this node hosts a peer it has no object
			// for — a spawn that failed, or a replayed epoch. Leave a hole;
			// requests for it fail over like a dead peer.
			continue
		default:
			p = newStub(m.id, m.node, c.fanout)
			p.rng = m.rng
			p.alive.Store(m.alive)
		}
		nt.peers[m.id] = p
		nt.members[m.id] = true
		nt.ring = append(nt.ring, ringEntry{id: m.id, lower: m.rng.Lower, p: p})
		nt.ids = append(nt.ids, m.id)
	}
	sortTopology(nt)
	if hc := 8 * (len(ms) + 4); hc > old.hopCap {
		nt.hopCap = hc
	} else {
		nt.hopCap = old.hopCap
	}
	for id, p := range old.peers {
		if nt.peers[id] != nil {
			continue
		}
		nt.peers[id] = p
		queued := false
		for _, tp := range c.tombstones {
			if tp == p {
				queued = true
				break
			}
		}
		if !queued {
			c.tombstones = append(c.tombstones, p)
		}
	}
	c.topo.Store(nt)
}

// encodeLocalLoads (daemon) renders the load counters of every locally
// hosted member for a ctlLoads reply.
func (c *Cluster) encodeLocalLoads() []byte {
	t := c.topo.Load()
	b := appendU32(nil, 0)
	var cnt uint32
	for _, id := range t.ids {
		p := t.peers[id]
		if p == nil || p.node != 0 {
			continue
		}
		b = appendPeerID(b, id)
		b = appendI64(b, p.reqs.Load())
		b = appendI64(b, p.items.Load())
		cnt++
	}
	binary.LittleEndian.PutUint32(b[:4], cnt)
	return b
}

// gatherRemoteLoads (head) refreshes the stub load counters from each
// connected daemon — one ctlLoads RPC per node — so Cluster.Loads reads
// current numbers for peers it does not host. The lone exception to the
// load meter's "message-free" property, and only on the coordinator of a
// multi-process cluster.
func (n *netLayer) gatherRemoteLoads(c *Cluster) {
	tr := n.tr()
	if tr == nil {
		return
	}
	t := c.topo.Load()
	for _, node := range tr.Peers() {
		body, err := n.rpc(node, ctlLoads, nil)
		if err != nil {
			continue
		}
		r := wreader{b: body}
		cnt := r.count(24)
		for i := 0; i < cnt && !r.fail; i++ {
			id := r.peerID()
			reqs := r.i64()
			items := r.i64()
			if p := t.peers[id]; p != nil && p.node == node {
				p.reqs.Store(reqs)
				p.items.Store(items)
			}
		}
	}
}

// sortTopology orders a freshly built topology's ring and id list.
func sortTopology(nt *topology) {
	for i := 1; i < len(nt.ring); i++ {
		for j := i; j > 0 && nt.ring[j].lower < nt.ring[j-1].lower; j-- {
			nt.ring[j], nt.ring[j-1] = nt.ring[j-1], nt.ring[j]
		}
	}
	for i := 1; i < len(nt.ids); i++ {
		for j := i; j > 0 && nt.ids[j] < nt.ids[j-1]; j-- {
			nt.ids[j], nt.ids[j-1] = nt.ids[j-1], nt.ids[j]
		}
	}
}

// newStub builds the local placeholder for a peer hosted on another node:
// a peer object with node set and no goroutine — deliveries to it detour
// onto the wire (deliverTo), and the metrics block records the sends this
// node originated towards it.
func newStub(id core.PeerID, node transport.NodeID, fanout int) *peer {
	p := newPeer(id, fanout)
	p.node = node
	return p
}

// requireCoordinator gates structural APIs: a daemon must not run them (the
// mirror lives at the head, and two coordinators would race the overlay).
func (c *Cluster) requireCoordinator() error {
	if c.net != nil && !c.net.isHead {
		return ErrNotCoordinator
	}
	return nil
}

// SeedDown reports (daemons only) when the connection to the coordinator
// is lost; nil on the coordinator and on in-process clusters.
func (c *Cluster) SeedDown() <-chan struct{} {
	if c.net == nil || c.net.isHead {
		return nil
	}
	return c.net.seedDown
}

// Addr is the node's transport listen address; "" for in-process clusters.
func (c *Cluster) Addr() string {
	if c.net == nil {
		return ""
	}
	if tr := c.net.tr(); tr != nil {
		return tr.Addr()
	}
	return ""
}

// NewClusterListen is NewCluster plus a wire transport: the returned
// cluster is the multi-process overlay's coordinator, listening on the
// given address ("" picks a loopback port; see Addr) for daemons joining
// via JoinRemote or cmd/batond.
func NewClusterListen(nw *core.Network, listen string) (*Cluster, error) {
	c := NewCluster(nw)
	n := newNetLayer(true)
	n.self = headNodeID
	tr, err := transport.Listen(transport.Config{
		Self:       headNodeID,
		Listen:     listen,
		Handler:    n.handleMsg,
		OnPeerUp:   n.onPeerUp,
		OnPeerDown: n.onPeerDown,
		Assign:     n.assign,
	})
	if err != nil {
		c.Stop()
		return nil, err
	}
	n.trp.Store(tr)
	n.attach(c)
	return c, nil
}

// JoinRemote connects to a coordinator at seed and returns a daemon-side
// Cluster: a data-plane view of the same overlay whose Get/Put/Delete/
// Range/Bulk APIs work exactly like the coordinator's. hostPeers > 0 asks
// the coordinator to run that many joins with the new peers hosted here,
// so the process serves a share of the keyspace; 0 joins as a pure client.
// The daemon exits the overlay when Stop is called or the seed connection
// drops (SeedDown).
func JoinRemote(seed string, hostPeers int) (*Cluster, error) {
	n := newNetLayer(false)
	tr, err := transport.Listen(transport.Config{
		Self:       0,
		Handler:    n.handleMsg,
		OnPeerUp:   n.onPeerUp,
		OnPeerDown: n.onPeerDown,
	})
	if err != nil {
		return nil, err
	}
	n.trp.Store(tr)
	head, err := tr.Dial(seed)
	if err != nil {
		tr.Close()
		return nil, fmt.Errorf("p2p: dialing seed %s: %w", seed, err)
	}
	n.self = tr.Self()
	n.headNode = head
	hello, err := n.rpc(head, ctlHello, appendBytes(nil, []byte(tr.Addr())))
	if err != nil {
		tr.Close()
		return nil, fmt.Errorf("p2p: seed handshake: %w", err)
	}
	r := wreader{b: hello}
	domain := r.rng()
	fanout := int(r.u32())
	if !r.done() || fanout < 2 {
		tr.Close()
		return nil, fmt.Errorf("p2p: seed handshake: malformed hello reply")
	}
	c := &Cluster{
		fanout:    fanout,
		done:      make(chan struct{}),
		domain:    domain,
		suspects:  make(chan core.PeerID, 64),
		traces:    obs.NewTraceRing(traceRingSize),
		journal:   obs.NewJournal(journalSize),
		retired:   obs.NewPeerMetrics(numKinds),
		planner:   query.NewPlanner(),
		planCache: query.NewCache(),
	}
	c.topo.Store(&topology{
		peers:   make(map[core.PeerID]*peer),
		members: make(map[core.PeerID]bool),
	})
	c.states = make(map[core.PeerID]core.PeerSnapshot)
	n.attach(c)
	if hostPeers > 0 {
		rep, err := n.rpc(head, ctlJoin, appendU32(nil, uint32(hostPeers)))
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("p2p: joining %d peers: %w", hostPeers, err)
		}
		rr := wreader{b: rep}
		if joined := int(rr.u32()); !rr.done() || joined < hostPeers {
			c.Stop()
			return nil, fmt.Errorf("p2p: seed joined %d of %d requested peers", joined, hostPeers)
		}
	}
	if err := c.waitTopo(10 * time.Second); err != nil {
		c.Stop()
		return nil, err
	}
	return c, nil
}

// waitTopo blocks until the first topology broadcast lands (the head
// pushes one on connect, so this resolves promptly).
func (c *Cluster) waitTopo(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if c.topo.Load().epoch != 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("p2p: no topology broadcast from seed: %w", ErrUnreachable)
		}
		select {
		case <-c.net.seedDown:
			return fmt.Errorf("p2p: seed connection lost: %w", ErrOwnerDown)
		case <-c.done:
			return ErrStopped
		case <-time.After(2 * time.Millisecond):
		}
	}
}
