// The cluster's face of the flight recorder (internal/obs): lock-free
// metrics snapshots, sampled request traces, and the structural-op
// journal. See the Observability section of the package documentation
// for where the hooks sit in the message path.
package p2p

import (
	"sort"
	"time"

	"baton/internal/core"
	"baton/internal/obs"
)

// Metrics snapshots the whole registry without locks or stopping
// traffic: the peer set comes from the atomically published topology,
// every counter and histogram is a typed atomic, and the inbox-depth
// gauge is the channel's own length. Peers are reported in id order;
// counts of peers already reaped from the topology survive in the
// cluster totals (the retired aggregate), so totals are monotonic across
// membership churn.
func (c *Cluster) Metrics() obs.ClusterMetrics {
	t := c.topo.Load()
	peers := make([]obs.PeerSnapshot, 0, len(t.peers))
	for _, p := range t.peers {
		s := p.met.Snapshot(int64(p.id), kindName)
		s.InboxDepth = len(p.inbox)
		peers = append(peers, s)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].Peer < peers[j].Peer })
	cm := obs.BuildClusterMetrics(peers, c.retired.Snapshot(-1, kindName))
	cm.Plans = c.plans.Snapshot()
	return cm
}

// SetTraceSampling sets request-trace sampling to 1-in-n; n <= 0 turns
// it off (the default). Sampling off costs the request path one atomic
// load and zero allocations.
func (c *Cluster) SetTraceSampling(n int) { c.sampler.SetEvery(int64(n)) }

// TraceSampling returns the current 1-in-n sampling rate, 0 when off.
func (c *Cluster) TraceSampling() int { return int(c.sampler.Every()) }

// Traces returns the hop chains of the most recent completed sampled
// requests, oldest first.
func (c *Cluster) Traces() [][]obs.Hop { return c.traces.Snapshot() }

// Events returns the retained structural-op journal, oldest first: every
// Join / Depart / Kill / Recover / balance action with per-phase
// durations and outcome.
func (c *Cluster) Events() []obs.Event { return c.journal.Events() }

// sampleTrace attaches a fresh trace to the request when the sampler
// elects it. Called on client-side entry paths (route, bulk) before the
// first delivery.
func (c *Cluster) sampleTrace(req *request) {
	if c.sampler.Sample() {
		req.trace = obs.NewTrace()
	}
}

// finishTrace files a completed sampled request's trace into the ring.
func (c *Cluster) finishTrace(req request) {
	if req.trace != nil {
		c.traces.Add(req.trace)
	}
}

// journalBegin opens the journal entry for the structural operation that
// just started. Callers hold memberMu (structural ops are serialised, so
// at most one entry is ever open); the helper itself takes no lock, so
// it is safe from *Locked helpers without bending the lock order.
func (c *Cluster) journalBegin(op string, id core.PeerID) {
	c.curEvent = &obs.Event{Op: op, Peer: int64(id), Start: time.Now()}
}

// journalSetPeer fills in the open entry's subject peer once it is
// known (a Join allocates the id mid-operation). NoPeer is ignored.
func (c *Cluster) journalSetPeer(id core.PeerID) {
	if c.curEvent != nil && id != core.NoPeer {
		c.curEvent.Peer = int64(id)
	}
}

// journalPhase records a named phase of the open entry as having taken
// time.Since(start). No-op when no entry is open (a phase helper reached
// outside a journalled operation, e.g. from NewCluster's seeding).
func (c *Cluster) journalPhase(name string, start time.Time) {
	if c.curEvent != nil {
		c.curEvent.AddPhase(name, time.Since(start))
	}
}

// journalMigrated adds to the open entry's count of items that changed
// owner during the operation.
func (c *Cluster) journalMigrated(n int) {
	if c.curEvent != nil {
		c.curEvent.Migrated += n
	}
}

// journalEnd closes and files the open entry with the operation's
// outcome. Callers hold memberMu.
func (c *Cluster) journalEnd(err error) {
	ev := c.curEvent
	if ev == nil {
		return
	}
	c.curEvent = nil
	ev.DurationNs = time.Since(ev.Start).Nanoseconds()
	if err != nil {
		ev.Outcome = "error"
		ev.Err = err.Error()
	} else {
		ev.Outcome = "ok"
	}
	c.journal.Record(*ev)
}
