// Live membership: online join (Section III-A), graceful departure
// (Section III-B) and the adjacent-peer load-balance shuffle (Section V)
// for the running cluster.
//
// The protocol phases that are genuinely distributed — locating the accept
// node for a join, walking down to a replacement leaf for a departure —
// run as real messages between the peer goroutines, over each peer's own
// link state (membership.go's handlers). The resulting structural change is
// validated and applied on the cluster's data-less core.Network mirror, and
// handoff.go then pushes the delta back out to the live peers as messages.
package p2p

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/transport"
)

// peerState is the structural state a kindUpdate message installs at a
// peer: its position, range and full link set, all derived from the mirror.
type peerState struct {
	pos      core.Position
	rng      keyspace.Range
	parent   *link
	children []*link // one entry per child slot, slot 0 leftmost
	adjacent [2]*link
	rt       [2][]*link
}

// handoffMove instructs a source peer to extract the items of region and
// send them to dst as one batched kindHandoff message; the receiving peer
// acknowledges on ack so the coordinator knows when the migration landed.
type handoffMove struct {
	region keyspace.Range
	dst    core.PeerID
	ack    chan response
	// Wire representation (wire.go / node.go): dstNode names the node
	// hosting dst — carried inside the move so a source peer on another
	// process can deliver the handoff before the topology broadcast that
	// names a freshly spawned destination reaches it — and ackCorr/ackNode
	// replace the ack channel when the kindUpdate crosses a process
	// boundary: the source acknowledges by wire-replying to that
	// correlation at the coordinator.
	dstNode transport.NodeID
	ackCorr uint64
	ackNode transport.NodeID
}

// Join adds a brand-new peer to the running cluster. The join request
// enters the overlay at peer via and is forwarded peer-to-peer following
// Algorithm 1 until a peer that may accept a child answers; that peer's
// range is split, the handed-off half's items migrate to the new peer as a
// batched data message, and every peer whose links change is updated.
// Get/Put/Delete/Range traffic keeps flowing throughout: requests for keys
// in mid-handoff are buffered at the new peer and answered as soon as the
// data lands. Join returns the new peer's ID.
func (c *Cluster) Join(via core.PeerID) (core.PeerID, error) {
	if err := c.requireCoordinator(); err != nil {
		return core.NoPeer, err
	}
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	c.journalBegin("join", core.NoPeer)
	id, err := c.joinLocked(via)
	c.journalSetPeer(id)
	c.journalEnd(err)
	return id, err
}

// joinLocked is the body of Join; the caller holds memberMu.
func (c *Cluster) joinLocked(via core.PeerID) (core.PeerID, error) {
	if c.stopped.Load() {
		return core.NoPeer, ErrStopped
	}
	t := c.topo.Load()
	if !t.members[via] {
		return core.NoPeer, fmt.Errorf("%w: %d", ErrUnknownPeer, via)
	}

	newID := core.NoPeer
	if acc, slot, err := c.locateJoin(via); err == nil {
		if id, _, err := c.mirror.JoinAtSlot(acc, slot); err == nil {
			newID = id
		}
	}
	if newID == core.NoPeer {
		// The message walk dead-ended (possible when kills have eaten the
		// links Algorithm 1 relies on): scan the structure for any viable
		// alive acceptor instead, the live counterpart of the simulator's
		// join fallback.
		for _, cand := range c.joinAcceptors() {
			if id, _, err := c.mirror.JoinAtSlot(cand.id, cand.slot); err == nil {
				newID = id
				break
			}
		}
	}
	if newID == core.NoPeer {
		return core.NoPeer, fmt.Errorf("p2p: no peer can accept a join: %w", ErrUnreachable)
	}
	if _, err := c.applyMirrorDiffLocked(nil); err != nil {
		return core.NoPeer, err
	}
	return newID, nil
}

// Depart removes the peer with the given ID gracefully: a safe leaf hands
// its range and items to its parent and leaves; any other peer finds a
// replacement leaf by walking FINDREPLACEMENT messages down the live tree
// (Algorithm 2), and the replacement vacates its own position, takes over
// the leaving peer's position and range, and receives its items. All data
// handoffs are batched messages acknowledged before Depart returns, so no
// acknowledged write is lost. The departed peer's goroutine remains as a
// tombstone that forwards stragglers to the peer that absorbed its range.
func (c *Cluster) Depart(id core.PeerID) error {
	if err := c.requireCoordinator(); err != nil {
		return err
	}
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	c.journalBegin("depart", id)
	err := c.departLocked(id)
	c.journalEnd(err)
	return err
}

// departLocked is the body of Depart; the caller holds memberMu.
func (c *Cluster) departLocked(id core.PeerID) error {
	if c.stopped.Load() {
		return ErrStopped
	}
	t := c.topo.Load()
	if !t.members[id] {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, id)
	}
	if !t.peers[id].alive.Load() {
		return fmt.Errorf("%w: cannot depart killed peer %d", ErrOwnerDown, id)
	}
	if len(t.ids) == 1 {
		return core.ErrLastPeer
	}
	ps := c.states[id]

	done := false
	// Safe-leaf departure: the parent absorbs the range, so it must be
	// alive to receive the data.
	if !ps.HasChildren() && ps.Parent != core.NoPeer && c.Alive(ps.Parent) {
		if _, err := c.mirror.LeaveWith(id, core.NoPeer); err == nil {
			done = true
		} else if errors.Is(err, core.ErrLastPeer) {
			return err
		}
	}
	if !done {
		// Algorithm 2 over live messages, then validated by the mirror; on
		// any failure fall back to a deterministic scan for the deepest
		// viable leaf.
		if y := c.locateReplacement(ps); y != core.NoPeer && c.viableReplacement(id, y) {
			if _, err := c.mirror.LeaveWith(id, y); err == nil {
				done = true
			}
		}
	}
	if !done {
		for _, y := range c.replacementCandidates(id) {
			if _, err := c.mirror.LeaveWith(id, y); err == nil {
				done = true
				break
			}
		}
	}
	if !done {
		return fmt.Errorf("p2p: no viable replacement leaf for peer %d: %w", id, ErrUnreachable)
	}
	_, err := c.applyMirrorDiffLocked(nil)
	return err
}

// LoadBalance performs the adjacent-peer data shuffle of Section V on
// behalf of the given peer: it measures the peer's and its adjacent peers'
// stored-item counts, and if the peer holds at least two more items than
// its lighter neighbour, moves the boundary between them so that about half
// the imbalance changes hands. It returns the number of items that moved
// (zero when the loads were already balanced, or when no key strictly
// inside the peer's range separates the two shares — the shuffle never
// leaves either side of the boundary with an empty range).
func (c *Cluster) LoadBalance(id core.PeerID) (int, error) {
	if err := c.requireCoordinator(); err != nil {
		return 0, err
	}
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	if c.stopped.Load() {
		return 0, ErrStopped
	}
	t := c.topo.Load()
	if !t.members[id] {
		return 0, fmt.Errorf("%w: %d", ErrUnknownPeer, id)
	}
	if !t.peers[id].alive.Load() {
		return 0, fmt.Errorf("%w: %d", ErrOwnerDown, id)
	}
	return c.loadBalanceLocked(id)
}

// loadBalanceLocked is the body of LoadBalance; the caller holds memberMu
// and has validated that id is an alive member. It journals the shuffle —
// the balancer's BalanceOnce reaches the journal through here too.
func (c *Cluster) loadBalanceLocked(id core.PeerID) (int, error) {
	c.journalBegin("balance-shuffle", id)
	n, err := c.shuffleLocked(id)
	c.journalEnd(err)
	return n, err
}

// shuffleLocked measures the peer and its neighbours and performs the
// boundary shift; the caller holds memberMu.
func (c *Cluster) shuffleLocked(id core.PeerID) (int, error) {
	ps := c.states[id]
	cx, err := c.peerCountRetry(id)
	if err != nil {
		return 0, err
	}
	// Pick the lighter alive adjacent peer. A neighbour whose count probe
	// fails transiently is retried once (peerCountRetry) before it is
	// excluded — silently skipping it would shuffle towards the wrong side.
	bestSide, bestCount := core.Left, math.MaxInt
	for _, cand := range []struct {
		side core.Side
		id   core.PeerID
	}{{core.Left, ps.LeftAdjacent}, {core.Right, ps.RightAdjacent}} {
		if cand.id == core.NoPeer || !c.Alive(cand.id) {
			continue
		}
		ca, err := c.peerCountRetry(cand.id)
		if err != nil {
			continue
		}
		if ca < bestCount {
			bestSide, bestCount = cand.side, ca
		}
	}
	if bestCount == math.MaxInt {
		return 0, fmt.Errorf("p2p: peer %d has no alive adjacent peer to balance with: %w", id, ErrUnreachable)
	}
	shift := (cx - bestCount) / 2
	if shift < 1 {
		// Loads already balanced. (shift < 1 implies cx <= bestCount+1, so a
		// separate cx == 0 guard would be dead code.)
		return 0, nil
	}
	boundary, ok, err := c.peerSplitKey(id, shuffleFrac(cx, shift, bestSide))
	if err != nil {
		return 0, err
	}
	if !ok || !validShuffleBoundary(boundary, ps.Range) {
		// The local items cluster at the range edge (or lie outside the
		// domain, which the extreme peers store): no key strictly inside the
		// range separates the shares, and shifting to the edge would leave
		// one side with an empty range — reject rather than shuffle nothing.
		return 0, nil
	}
	if _, err := c.mirror.ShiftBoundary(id, bestSide, boundary); err != nil {
		return 0, err
	}
	return c.applyMirrorDiffLocked(nil)
}

// shuffleFrac returns the KeyAtFraction argument that selects the boundary
// item of the shuffle: for a right-hand shuffle the peer keeps its lowest
// cx-shift items, for a left-hand shuffle it gives away its lowest shift
// items, so the boundary is the item at index cx-shift resp. shift. The
// +0.5 centres the fraction inside that index's cell: a bare target/cx can
// round down across the float64 round-trip (int(float64(1)/3*3) == 0) and
// silently select the neighbouring index, shuffling one item too few — or,
// at index 0, nothing at all.
func shuffleFrac(cx, shift int, side core.Side) float64 {
	target := shift
	if side == core.Right {
		target = cx - shift
	}
	return (float64(target) + 0.5) / float64(cx)
}

// validShuffleBoundary reports whether the boundary key splits the range
// into two non-empty sides, the precondition of ShiftBoundary.
func validShuffleBoundary(boundary keyspace.Key, rng keyspace.Range) bool {
	return boundary > rng.Lower && boundary < rng.Upper
}

// --- live locate protocols -------------------------------------------------

// locateJoin routes a JOIN message into the overlay at via and returns the
// accepting peer and the free child slot it answered with.
func (c *Cluster) locateJoin(via core.PeerID) (core.PeerID, int, error) {
	resp, err := c.issue(via, request{kind: kindJoinLocate})
	if err != nil {
		return core.NoPeer, 0, err
	}
	if resp.err != nil {
		return core.NoPeer, 0, resp.err
	}
	if resp.peerID == core.NoPeer || !c.Alive(resp.peerID) {
		return core.NoPeer, 0, ErrUnreachable
	}
	return resp.peerID, resp.slot, nil
}

// handleJoinLocate is Algorithm 1 at peer p: accept if both routing tables
// are full and a child slot is free (Theorem 1's condition), otherwise
// forward — to the parent when a routing table is incomplete, sideways to a
// routing-table neighbour, or to an adjacent peer.
func (c *Cluster) handleJoinLocate(p *peer, req request) {
	if slot, free := p.freeChildSlot(); free && p.routingTablesFull() {
		c.respond(req, response{peerID: p.id, slot: slot, hops: req.hops})
		return
	}
	if req.visited == nil {
		req.visited = make(map[core.PeerID]bool)
	}
	req.visited[p.id] = true
	var cands []*link
	if !p.routingTablesFull() {
		// Rule 2: an incomplete routing table means the parent of a missing
		// neighbour can accept; climb.
		cands = append(cands, p.parent)
	}
	// Rule 3: sideways to routing-table neighbours (each checks its own
	// child slots on receipt — links do not carry child occupancy).
	for _, side := range [2]int{0, 1} {
		cands = append(cands, p.rt[side]...)
	}
	// Rule 4: the adjacent peers, then the parent as a last resort.
	cands = append(cands, p.adjacent[0], p.adjacent[1], p.parent)
	for _, l := range cands {
		if l == nil || req.visited[l.id] || !c.Alive(l.id) {
			continue
		}
		if c.send(l.id, req) {
			return
		}
	}
	c.refuse(p, req, ErrUnreachable)
}

// freeChildSlot returns the lowest empty child slot (the leftmost — the
// binary protocol's "prefer the left child"), and whether any slot is free.
func (p *peer) freeChildSlot() (int, bool) {
	for s, l := range p.children {
		if l == nil {
			return s, true
		}
	}
	return 0, false
}

// routingTablesFull reports whether every routing-table entry that
// corresponds to a valid same-level position is filled — the
// Full(RoutingTable) predicate of Algorithm 1 and Theorem 1. Entries
// pointing at killed peers count as filled: a dead peer remains part of the
// structure until Recover repairs it out of the overlay.
func (p *peer) routingTablesFull() bool {
	for si, side := range [2]core.Side{core.Left, core.Right} {
		for i, l := range p.rt[si] {
			if l != nil {
				continue
			}
			if _, ok := p.pos.NeighbourIn(p.fanout, side, core.RTDistance(p.fanout, i)); ok {
				return false
			}
		}
	}
	return true
}

// joinAcceptors scans the structural snapshot for alive peers that could
// accept a child, Theorem-1 acceptors first (both routing tables full),
// then any peer with a free slot as a desperation tier; within a tier,
// shallower peers first so the tree stays compact. The mirror re-validates
// balance for every candidate, so the ordering is a preference, not a
// correctness requirement.
func (c *Cluster) joinAcceptors() []struct {
	id   core.PeerID
	slot int
} {
	type cand struct {
		id    core.PeerID
		slot  int
		full  bool
		level int
	}
	var cands []cand
	for id, ps := range c.states {
		if !c.Alive(id) {
			continue
		}
		slot, free := -1, false
		for s, cid := range ps.ChildSlots() {
			if cid == core.NoPeer {
				slot, free = s, true
				break
			}
		}
		if !free {
			continue
		}
		cands = append(cands, cand{id: id, slot: slot, full: snapshotRTFull(ps), level: ps.Position.Level})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].full != cands[j].full {
			return cands[i].full
		}
		if cands[i].level != cands[j].level {
			return cands[i].level < cands[j].level
		}
		return cands[i].id < cands[j].id
	})
	out := make([]struct {
		id   core.PeerID
		slot int
	}, len(cands))
	for i, cn := range cands {
		out[i].id, out[i].slot = cn.id, cn.slot
	}
	return out
}

// snapshotRTFull is routingTablesFull computed from a structural snapshot.
func snapshotRTFull(ps core.PeerSnapshot) bool {
	m := ps.Fanout()
	for si, rt := range [2][]core.PeerID{ps.LeftRouting, ps.RightRouting} {
		side := core.Left
		if si == 1 {
			side = core.Right
		}
		for i, id := range rt {
			if id != core.NoPeer {
				continue
			}
			if _, ok := ps.Position.NeighbourIn(m, side, core.RTDistance(m, i)); ok {
				return false
			}
		}
	}
	return true
}

// locateReplacement walks a FINDREPLACEMENT message down the live tree from
// a starting point near the departing peer (Algorithm 2) and returns the
// leaf it ended at, or NoPeer when the walk dead-ended.
func (c *Cluster) locateReplacement(x core.PeerSnapshot) core.PeerID {
	// Starting point, as the paper prescribes: a leaf starts at a child of
	// a routing-table neighbour that has children; a non-leaf starts at one
	// of its adjacent peers (which lies as deep as possible in its subtree).
	start := core.NoPeer
	if !x.HasChildren() {
		for _, rt := range [2][]core.PeerID{x.LeftRouting, x.RightRouting} {
			for _, id := range rt {
				if id == core.NoPeer {
					continue
				}
				nbr, ok := c.states[id]
				if !ok {
					continue
				}
				for _, cid := range nbr.ChildSlots() {
					if cid != core.NoPeer {
						start = cid
						break
					}
				}
				if start != core.NoPeer {
					break
				}
			}
			if start != core.NoPeer {
				break
			}
		}
	} else {
		la, ra := c.states[x.LeftAdjacent], c.states[x.RightAdjacent]
		switch {
		case x.LeftAdjacent != core.NoPeer && (x.RightAdjacent == core.NoPeer || la.Position.Level >= ra.Position.Level):
			start = x.LeftAdjacent
		case x.RightAdjacent != core.NoPeer:
			start = x.RightAdjacent
		}
	}
	if start == core.NoPeer || !c.Alive(start) {
		return core.NoPeer
	}
	resp, err := c.issue(start, request{kind: kindFindReplacement})
	if err != nil || resp.err != nil {
		return core.NoPeer
	}
	return resp.peerID
}

// handleFindReplacement walks the request down to a leaf: descend into an
// alive child while one exists; a peer with no children at all is a
// candidate replacement; a peer whose children are all dead is a dead end
// (the coordinator falls back to a structure scan).
func (c *Cluster) handleFindReplacement(p *peer, req request) {
	leaf := true
	for _, l := range p.children {
		if l == nil {
			continue
		}
		leaf = false
		if c.Alive(l.id) && c.send(l.id, req) {
			return
		}
	}
	if leaf {
		c.respond(req, response{peerID: p.id, hops: req.hops})
		return
	}
	c.respond(req, response{peerID: core.NoPeer, hops: req.hops})
}

// viableReplacement reports whether y can serve as the replacement for
// departing peer x from the live cluster's point of view: y must be an
// alive member, and the peer that will absorb y's vacated range — y's
// parent, unless that is x itself — must be alive to receive the data. The
// mirror separately validates the structural side (leaf, balance).
func (c *Cluster) viableReplacement(x, y core.PeerID) bool {
	if y == x || !c.Alive(y) {
		return false
	}
	ps, ok := c.states[y]
	if !ok {
		return false
	}
	return ps.Parent != core.NoPeer && (ps.Parent == x || c.Alive(ps.Parent))
}

// replacementCandidates scans the structural snapshot for viable
// replacement leaves for the departing peer, deepest first so vacating them
// cannot unbalance the tree.
func (c *Cluster) replacementCandidates(x core.PeerID) []core.PeerID {
	type cand struct {
		id    core.PeerID
		level int
	}
	var cands []cand
	for id, ps := range c.states {
		if ps.HasChildren() {
			continue
		}
		if !c.viableReplacement(x, id) {
			continue
		}
		cands = append(cands, cand{id: id, level: ps.Position.Level})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].level != cands[j].level {
			return cands[i].level > cands[j].level
		}
		return cands[i].id < cands[j].id
	})
	out := make([]core.PeerID, len(cands))
	for i, cn := range cands {
		out[i] = cn.id
	}
	return out
}

// --- control-message helpers ----------------------------------------------

// control sends a request directly to the given peer (no routing) and waits
// for its reply.
func (c *Cluster) control(id core.PeerID, req request) (response, error) {
	req.reply = make(chan response, 1)
	if !c.sendAny(id, req) {
		if c.stopped.Load() {
			return response{}, ErrStopped
		}
		return response{}, fmt.Errorf("%w: %d", ErrUnknownPeer, id)
	}
	select {
	case resp := <-req.reply:
		if resp.err != nil {
			return resp, resp.err
		}
		return resp, nil
	case <-c.done:
		return response{}, ErrStopped
	}
}

// peerCount asks the peer for its stored-item count.
func (c *Cluster) peerCount(id core.PeerID) (int, error) {
	resp, err := c.control(id, request{kind: kindStats})
	if err != nil {
		return 0, err
	}
	return resp.count, nil
}

// peerCountRetry is peerCount with one retry: a count probe can fail
// transiently (the peer died and was repaired between the topology load and
// the delivery, or a tombstone was retired mid-send), and load-balancing
// decisions that silently exclude a peer on a transient error would shuffle
// data towards the wrong neighbour.
func (c *Cluster) peerCountRetry(id core.PeerID) (int, error) {
	n, err := c.peerCount(id)
	if err == nil || c.stopped.Load() {
		return n, err
	}
	return c.peerCount(id)
}

// peerSplitKey asks the peer for the key at the given fraction of its
// stored items in key order.
func (c *Cluster) peerSplitKey(id core.PeerID, frac float64) (keyspace.Key, bool, error) {
	resp, err := c.control(id, request{kind: kindSplitKey, frac: frac})
	if err != nil {
		return 0, false, err
	}
	return resp.splitKey, resp.found, nil
}
