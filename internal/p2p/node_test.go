package p2p

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/query"
	"baton/internal/store"
)

// wirePair builds a two-process overlay over loopback TCP: a coordinator
// (head) animated from a simulated network of headPeers peers preloaded
// with items, and a daemon that joins through the wire and hosts
// daemonPeers additional peers. Both ends see one overlay of
// headPeers+daemonPeers members. Cleanup stops the daemon first, then the
// head, under the package's goroutine-leak barrier.
func wirePair(t testing.TB, headPeers, daemonPeers, items int, seed int64) (head, daemon *Cluster, keys []keyspace.Key) {
	t.Helper()
	nw := core.NewNetwork(core.Config{Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	for nw.Size() < headPeers {
		ids := nw.PeerIDs()
		if _, _, err := nw.Join(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	keys = make([]keyspace.Key, 0, items)
	for i := 0; i < items; i++ {
		k := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-keyspace.DomainMin)))
		keys = append(keys, k)
		if _, err := nw.Insert(nw.RandomPeer(), k, []byte(fmt.Sprint(k))); err != nil {
			t.Fatal(err)
		}
	}
	head, err := NewClusterListen(nw, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(head.Stop)
	daemon, err = JoinRemote(head.Addr(), daemonPeers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(daemon.Stop)
	if got, want := head.Size(), headPeers+daemonPeers; got != want {
		t.Fatalf("head size = %d after join, want %d", got, want)
	}
	waitConverge(t, head, daemon)
	return head, daemon, keys
}

// waitConverge polls until the daemon has applied the head's newest
// topology broadcast (same epoch, same membership). Broadcasts are applied
// asynchronously by the daemon's control worker, so tests that mutate
// membership at the head must converge before routing through the daemon.
func waitConverge(t testing.TB, head, daemon *Cluster) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ht, dt := head.topo.Load(), daemon.topo.Load()
		if dt.epoch >= ht.epoch && len(dt.ids) == len(ht.ids) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never converged: head epoch %d (%d peers), daemon epoch %d (%d peers)",
				ht.epoch, len(ht.ids), dt.epoch, len(dt.ids))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// hostedBy returns the member peers a given side of the pair hosts
// locally (node == 0) or remotely (node != 0), as seen from c's topology.
func hostedBy(c *Cluster, remote bool) []core.PeerID {
	t := c.topo.Load()
	out := make([]core.PeerID, 0, len(t.ids))
	for _, id := range t.ids {
		if p := t.peers[id]; p != nil && (p.node != 0) == remote {
			out = append(out, id)
		}
	}
	return out
}

// auditPair runs the full structural and replication audit at the head:
// sync the write-path replication window closed, export snapshots and
// replica sets over the wire from both processes, and verify tree shape
// and replica completeness.
func auditPair(t *testing.T, head *Cluster) {
	t.Helper()
	if err := head.SyncReplicas(); err != nil {
		t.Fatalf("sync replicas: %v", err)
	}
	snaps, err := head.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := core.VerifySnapshot(head.Domain(), snaps); err != nil {
		t.Fatalf("snapshot audit: %v", err)
	}
	replicas, err := head.Replicas()
	if err != nil {
		t.Fatalf("replicas: %v", err)
	}
	if err := core.VerifyReplication(snaps, replicas); err != nil {
		t.Fatalf("replication audit: %v", err)
	}
}

// TestWireClusterEndToEnd drives the full data-plane API through both
// processes of a loopback-TCP overlay: singleton gets through vias on
// either side (routes cross the wire whenever the chain crosses a process
// boundary), writes and deletes from the daemon, parallel and serial range
// queries, filtered queries, bulk operations, and the streaming iterator —
// then audits structure and replication at the head.
func TestWireClusterEndToEnd(t *testing.T) {
	head, daemon, keys := wirePair(t, 12, 6, 300, 1)

	if len(hostedBy(head, true)) != 6 {
		t.Fatalf("head sees %d remote peers, want 6", len(hostedBy(head, true)))
	}
	if len(hostedBy(daemon, false)) != 6 {
		t.Fatalf("daemon hosts %d peers, want 6", len(hostedBy(daemon, false)))
	}

	// Every preloaded key is readable through vias on both sides.
	rng := rand.New(rand.NewSource(2))
	hids, dids := head.PeerIDs(), daemon.PeerIDs()
	for i, k := range keys {
		c, ids := head, hids
		if i%2 == 1 {
			c, ids = daemon, dids
		}
		via := ids[rng.Intn(len(ids))]
		v, found, hops, err := c.Get(via, k)
		if err != nil {
			t.Fatalf("get %d via %v: %v", k, via, err)
		}
		if !found || string(v) != fmt.Sprint(k) {
			t.Fatalf("get %d: found=%v value=%q", k, found, v)
		}
		if hops > 80 {
			t.Fatalf("get %d took %d hops", k, hops)
		}
	}

	// Write through the daemon, read back through the head, and vice versa.
	if _, err := daemon.Put(dids[0], 111_111, []byte("from-daemon")); err != nil {
		t.Fatalf("daemon put: %v", err)
	}
	v, found, _, err := head.Get(hids[0], 111_111)
	if err != nil || !found || string(v) != "from-daemon" {
		t.Fatalf("head read of daemon write: %q %v %v", v, found, err)
	}
	if _, err := head.Put(hids[1], 222_222, []byte("from-head")); err != nil {
		t.Fatalf("head put: %v", err)
	}
	v, found, _, err = daemon.Get(dids[1], 222_222)
	if err != nil || !found || string(v) != "from-head" {
		t.Fatalf("daemon read of head write: %q %v %v", v, found, err)
	}
	existed, _, err := daemon.Delete(dids[2], 222_222)
	if err != nil || !existed {
		t.Fatalf("daemon delete: %v %v", existed, err)
	}
	if _, found, _, _ = head.Get(hids[2], 222_222); found {
		t.Fatal("key still present at head after daemon delete")
	}
	if existed, _, err = head.Delete(hids[3], 111_111); err != nil || !existed {
		t.Fatalf("head delete: %v %v", existed, err)
	}

	// The expected sorted answer for full-domain ranges.
	want := append([]keyspace.Key(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	dedup := want[:0]
	for i, k := range want {
		if i == 0 || k != dedup[len(dedup)-1] {
			dedup = append(dedup, k)
		}
	}
	want = dedup

	full := head.Domain()
	checkRange := func(label string, items []store.Item, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(items) != len(want) {
			t.Fatalf("%s: %d items, want %d", label, len(items), len(want))
		}
		for i, it := range items {
			if it.Key != want[i] {
				t.Fatalf("%s: item %d = %d, want %d", label, i, it.Key, want[i])
			}
		}
	}
	items, _, err := head.Range(hids[0], full)
	checkRange("head parallel range", items, err)
	items, _, err = daemon.Range(dids[0], full)
	checkRange("daemon parallel range", items, err)
	items, _, err = daemon.RangeSerial(dids[1], full)
	checkRange("daemon serial range", items, err)
	items, _, err = head.RangeSerial(hids[1], full)
	checkRange("head serial range", items, err)

	// Filtered query with a limit, coordinated across the wire.
	limit := 25
	items, _, err = daemon.RangeFiltered(dids[2], full, &query.Pred{Limit: limit})
	if err != nil {
		t.Fatalf("daemon filtered range: %v", err)
	}
	if len(items) != limit {
		t.Fatalf("daemon filtered range: %d items, want %d", len(items), limit)
	}

	// Streaming iterator from the daemon: same answer, delivered in batches.
	it, err := daemon.RangeIter(dids[3], full)
	if err != nil {
		t.Fatalf("daemon range iter: %v", err)
	}
	// Batches interleave in segment-arrival order (documented), so compare
	// as a sorted set.
	var got []keyspace.Key
	for it.Next() {
		got = append(got, it.Item().Key)
	}
	it.Close()
	if it.Err() != nil {
		t.Fatalf("daemon range iter: %v", it.Err())
	}
	if len(got) != len(want) {
		t.Fatalf("daemon range iter: %d items, want %d", len(got), len(want))
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i, k := range got {
		if k != want[i] {
			t.Fatalf("daemon range iter: sorted item %d = %d, want %d", i, k, want[i])
		}
	}

	// Bulk operations from the daemon, pipelined across both processes.
	var bulkItems []store.Item
	for i := 0; i < 40; i++ {
		bulkItems = append(bulkItems, store.Item{Key: keyspace.Key(500_000 + i*1000), Value: []byte("b")})
	}
	results, err := daemon.BulkPut(bulkItems)
	if err != nil {
		t.Fatalf("daemon bulk put: %v", err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("bulk put %d: %v", r.Key, r.Err)
		}
	}
	bulkKeys := make([]keyspace.Key, len(bulkItems))
	for i, bi := range bulkItems {
		bulkKeys[i] = bi.Key
	}
	results, err = head.BulkGet(bulkKeys)
	if err != nil {
		t.Fatalf("head bulk get: %v", err)
	}
	for _, r := range results {
		if r.Err != nil || !r.Found || string(r.Value) != "b" {
			t.Fatalf("head bulk get %d: found=%v value=%q err=%v", r.Key, r.Found, r.Value, r.Err)
		}
	}
	results, err = daemon.BulkDelete(bulkKeys)
	if err != nil {
		t.Fatalf("daemon bulk delete: %v", err)
	}
	for _, r := range results {
		if r.Err != nil || !r.Found {
			t.Fatalf("bulk delete %d: found=%v err=%v", r.Key, r.Found, r.Err)
		}
	}

	// The coordinator's load meter reaches across the wire: daemon-hosted
	// peers served traffic above, so their counters must be visible here.
	loads, err := head.Loads()
	if err != nil {
		t.Fatalf("head loads: %v", err)
	}
	remote := make(map[core.PeerID]bool)
	for _, id := range hostedBy(head, true) {
		remote[id] = true
	}
	var remoteReqs int64
	for _, l := range loads {
		if remote[l.ID] {
			remoteReqs += l.Requests
		}
	}
	if remoteReqs == 0 {
		t.Fatal("head sees zero requests on daemon-hosted peers after wire traffic")
	}

	auditPair(t, head)

	if head.Messages() == 0 || daemon.Messages() == 0 {
		t.Fatalf("message counters: head %d, daemon %d", head.Messages(), daemon.Messages())
	}
}

// TestWireClusterCoordinatorGate verifies that every structural API is
// refused on the daemon with ErrNotCoordinator: membership, balancing,
// recovery, and the audit exports are the head's alone. The overlay must
// keep serving data afterwards.
func TestWireClusterCoordinatorGate(t *testing.T) {
	_, daemon, keys := wirePair(t, 8, 4, 50, 3)
	dids := daemon.PeerIDs()

	checks := []struct {
		name string
		err  error
	}{
		{"Join", func() error { _, err := daemon.Join(dids[0]); return err }()},
		{"Depart", daemon.Depart(dids[0])},
		{"Kill", daemon.Kill(dids[0])},
		{"Recover", func() error { _, err := daemon.Recover(dids[0]); return err }()},
		{"LoadBalance", func() error { _, err := daemon.LoadBalance(dids[0]); return err }()},
		{"BalanceOnce", func() error { _, _, err := daemon.BalanceOnce(AutoBalanceConfig{}); return err }()},
		{"ForceRejoin", func() error { _, err := daemon.ForceRejoin(dids[0], dids[1]); return err }()},
		{"SyncReplicas", daemon.SyncReplicas()},
		{"Snapshot", func() error { _, err := daemon.Snapshot(); return err }()},
		{"Replicas", func() error { _, err := daemon.Replicas(); return err }()},
	}
	for _, c := range checks {
		if !errors.Is(c.err, ErrNotCoordinator) {
			t.Errorf("daemon %s: err = %v, want ErrNotCoordinator", c.name, c.err)
		}
	}

	// The refusals left the data plane intact.
	v, found, _, err := daemon.Get(dids[1], keys[0])
	if err != nil || !found || string(v) != fmt.Sprint(keys[0]) {
		t.Fatalf("daemon get after refusals: %q %v %v", v, found, err)
	}
}

// TestWireClusterStructural exercises membership changes that cross the
// process boundary: a local join at the head (its handoff pulls items over
// the wire when the split peer lives at the daemon), the departure of a
// daemon-hosted peer (its items hand off back), and a crash-plus-recovery
// of a daemon-hosted peer (replica fetch and restore over the wire). Each
// step re-audits structure and replication across both processes.
func TestWireClusterStructural(t *testing.T) {
	head, daemon, keys := wirePair(t, 10, 5, 200, 4)

	// Join at the head, via a daemon-hosted peer: the locate walk crosses
	// the wire, the spawn stays local.
	remoteIDs := hostedBy(head, true)
	if _, err := head.Join(remoteIDs[0]); err != nil {
		t.Fatalf("head join via remote peer: %v", err)
	}
	waitConverge(t, head, daemon)
	auditPair(t, head)

	// Depart a daemon-hosted leaf: its range and items migrate, possibly to
	// a head-hosted neighbour — a cross-process handoff.
	departed := core.NoPeer
	for _, id := range hostedBy(head, true) {
		if err := head.Depart(id); err == nil {
			departed = id
			break
		}
	}
	if departed == core.NoPeer {
		t.Fatal("no daemon-hosted peer could depart")
	}
	waitConverge(t, head, daemon)
	auditPair(t, head)

	// Crash a daemon-hosted peer and recover its range from the replica.
	victim := core.NoPeer
	for _, id := range hostedBy(head, true) {
		if head.Alive(id) {
			victim = id
			break
		}
	}
	if victim == core.NoPeer {
		t.Fatal("no alive daemon-hosted peer to crash")
	}
	if err := head.Kill(victim); err != nil {
		t.Fatalf("kill %v: %v", victim, err)
	}
	if head.Alive(victim) {
		t.Fatal("victim still alive at head after kill")
	}
	waitConverge(t, head, daemon)
	if daemon.Alive(victim) {
		t.Fatal("victim still alive at daemon after broadcast")
	}
	restored, err := head.Recover(victim)
	if err != nil {
		t.Fatalf("recover %v: %v", victim, err)
	}
	if restored < 0 {
		t.Fatalf("recover restored %d items", restored)
	}
	waitConverge(t, head, daemon)
	auditPair(t, head)

	// All original keys are still served, through both sides (vias drawn
	// from the post-churn membership — departed and recovered-away peers
	// are no longer addressable).
	hids, dids := head.PeerIDs(), daemon.PeerIDs()
	rng := rand.New(rand.NewSource(5))
	for i, k := range keys {
		var err error
		var found bool
		if i%2 == 0 {
			_, found, _, err = head.Get(hids[rng.Intn(len(hids))], k)
		} else {
			_, found, _, err = daemon.Get(dids[rng.Intn(len(dids))], k)
		}
		if err != nil || !found {
			t.Fatalf("get %d after structural churn: found=%v err=%v", k, found, err)
		}
	}
}

// TestWireClusterSeedDown verifies the daemon's lifeline semantics: when
// the head goes away, SeedDown fires, in-flight work fails with
// ErrOwnerDown rather than hanging, and the daemon still stops cleanly
// (the leak barrier in TestMain holds it to that).
func TestWireClusterSeedDown(t *testing.T) {
	head, daemon, _ := wirePair(t, 6, 3, 20, 6)

	if head.SeedDown() != nil {
		t.Fatal("head reports a seed lifeline")
	}
	ch := daemon.SeedDown()
	if ch == nil {
		t.Fatal("daemon has no seed lifeline")
	}
	select {
	case <-ch:
		t.Fatal("seed lifeline closed while head is up")
	default:
	}

	head.Stop()
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("seed lifeline never closed after head stop")
	}

	// Requests that need head-hosted peers now fail instead of hanging.
	dids := daemon.PeerIDs()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, _, err := daemon.Get(dids[0], keyspace.DomainMin)
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon gets still succeed everywhere after head stop")
		}
		time.Sleep(5 * time.Millisecond)
	}
	daemon.Stop()
}

// TestWireClusterDaemonStop verifies the head's side of a daemon loss:
// requests for daemon-hosted ranges fail with an error rather than
// hanging, and head-hosted ranges keep serving.
func TestWireClusterDaemonStop(t *testing.T) {
	head, daemon, _ := wirePair(t, 8, 4, 100, 7)
	hids := head.PeerIDs()

	// A key owned by a head-hosted peer keeps working after daemon loss.
	locals := hostedBy(head, false)
	t0 := head.topo.Load()
	localKey := t0.peers[locals[0]].rng.Lower

	daemon.Stop()

	// The transport notices the dropped connection asynchronously; poll
	// until a remote-range request fails.
	remotes := hostedBy(head, true)
	remoteKey := t0.peers[remotes[0]].rng.Lower
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, _, err := head.Get(hids[0], remoteKey)
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gets for daemon-hosted range still succeed after daemon stop")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, _, _, err := head.Get(locals[0], localKey); err != nil {
		t.Fatalf("get for head-hosted range after daemon stop: %v", err)
	}
}
