// Package p2p runs a BATON overlay as a set of live, concurrently executing
// peers: every peer is a goroutine with an inbox, requests travel between
// peers as messages, and clients issue queries against any peer they know.
//
// The message-counting simulator in internal/core is what reproduces the
// paper's figures (operations there are serialised, exactly like the
// authors' simulator). This package is the deployment-shaped counterpart:
// it takes a snapshot of a core.Network — positions, ranges, links and data —
// and animates it, so that many exact-match, insert and range requests can
// be in flight at the same time, and so that peers can be killed while
// traffic is running to exercise the fault-tolerant routing of Section III-D
// under real concurrency. The goroutine-per-peer design is the natural Go
// rendering of "each node in the tree is maintained by a peer".
//
// Membership changes (join/leave/restructuring) are not re-implemented here;
// they are structural operations that the paper's protocol serialises around
// the affected peers anyway, and the simulator already covers them. A
// cluster is created from a core.Network at a point in time and serves data
// traffic from then on.
//
// # Concurrency contract
//
// Every exported method of Cluster is safe for concurrent use by any number
// of goroutines. A peer's stored data is touched only by that peer's own
// goroutine, so request handling needs no per-item locking. Calls never
// block indefinitely:
//
//   - A request addressed to (or queued at) a peer that has been killed
//     fails with ErrOwnerDown instead of hanging.
//   - Stop may be called at any time, including with requests in flight;
//     in-flight calls complete or return ErrStopped, and shutdown never
//     panics. Peers are never signalled by closing their inboxes — shutdown
//     is broadcast on a separate done channel precisely so that concurrent
//     senders cannot hit a closed channel.
//
// Range queries come in two flavours: RangeSerial walks the right-adjacent
// chain one peer at a time exactly as Section IV-B describes, while Range
// (the default) scatters the uncovered remainder of the query across the
// chain and the sideways routing tables in parallel and gathers the partial
// answers in a per-query collector, turning O(peers-covered) sequential
// hops into a logarithmic-depth fan-out. Bulk operations (BulkGet, BulkPut,
// BulkDelete) group keys by responsible peer and pipeline one batched
// message per peer, amortising routing hops across the whole batch.
package p2p

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/store"
)

// Errors returned by cluster operations.
var (
	// ErrStopped is returned when the cluster has been shut down.
	ErrStopped = errors.New("p2p: cluster stopped")
	// ErrUnknownPeer is returned when a request names a peer that does not
	// exist in the cluster.
	ErrUnknownPeer = errors.New("p2p: unknown peer")
	// ErrUnreachable is returned when a request cannot make progress because
	// every useful link points at dead peers.
	ErrUnreachable = errors.New("p2p: no route to the responsible peer")
	// ErrOwnerDown is returned when the peer responsible for a key is dead.
	ErrOwnerDown = errors.New("p2p: responsible peer is down")
)

// kind enumerates request kinds.
type kind int

const (
	kindGet kind = iota
	kindPut
	kindDelete
	kindRange
	kindRangeScatter
	kindBulkGet
	kindBulkPut
	kindBulkDelete
)

// request is one message travelling through the overlay. Replies are
// delivered on the embedded channel so a client blocks only on its own
// request.
type request struct {
	kind  kind
	key   keyspace.Key
	value []byte
	rng   keyspace.Range
	hops  int
	acc   []store.Item // accumulated range results (serial walk)
	// par marks a kindRange request that should fan out in parallel once
	// phase-1 routing reaches the peer owning the range's lower bound.
	par bool
	// coll is the shared gather state of a parallel range query; set on
	// kindRangeScatter sub-requests (which carry no reply channel of their
	// own — the collector answers the client when the last branch finishes).
	coll *collector
	// bulk carries the keys/items of a batched operation, all owned by the
	// addressed peer.
	bulk []store.Item
	// visited records the peers this request has already passed through so
	// fail-over never loops; only one copy of the request is in flight at a
	// time, so the map is never accessed concurrently.
	visited map[core.PeerID]bool
	reply   chan response
}

// response is the terminal answer to a request.
type response struct {
	value   []byte
	found   bool
	items   []store.Item
	results []BulkResult
	hops    int
	err     error
}

// link is the information a peer keeps about another peer: enough to decide
// where to forward a request (the paper's links carry the target's range).
type link struct {
	id    core.PeerID
	lower keyspace.Key
	upper keyspace.Key
}

// peer is one live peer: a goroutine draining an inbox.
type peer struct {
	id    core.PeerID
	rng   keyspace.Range
	data  *store.Store
	inbox chan request

	parent   *link
	children [2]*link
	adjacent [2]*link
	rt       [2][]*link // sideways routing tables, [Left|Right]

	alive atomic.Bool
}

// Cluster is a set of live peers animating a BATON overlay.
type Cluster struct {
	peers map[core.PeerID]*peer
	// ring lists the peers in key order; it is the client-side routing cache
	// the bulk operations use to address the responsible peer directly (the
	// ranges are fixed for the life of the cluster, so the cache never goes
	// stale).
	ring    []*peer
	wg      sync.WaitGroup
	done    chan struct{}
	stopped atomic.Bool
	msgs    atomic.Int64
	hopCap  int
}

// NewCluster builds a live cluster from a snapshot of the given simulated
// network: every peer's position, range, links and stored items are copied
// and a goroutine is started per peer.
func NewCluster(nw *core.Network) *Cluster {
	c := &Cluster{
		peers: make(map[core.PeerID]*peer),
		done:  make(chan struct{}),
	}
	snapshot := core.Snapshot(nw)
	for _, ps := range snapshot {
		p := &peer{
			id:    ps.ID,
			rng:   ps.Range,
			data:  store.New(),
			inbox: make(chan request, 256),
		}
		p.data.Absorb(ps.Items)
		p.alive.Store(true)
		c.peers[p.id] = p
		c.ring = append(c.ring, p)
	}
	sort.Slice(c.ring, func(i, j int) bool { return c.ring[i].rng.Lower < c.ring[j].rng.Lower })
	// Wire the links after all peers exist.
	toLink := func(id core.PeerID) *link {
		if id == core.NoPeer {
			return nil
		}
		t, ok := c.peers[id]
		if !ok {
			return nil
		}
		return &link{id: id, lower: t.rng.Lower, upper: t.rng.Upper}
	}
	for _, ps := range snapshot {
		p := c.peers[ps.ID]
		p.parent = toLink(ps.Parent)
		p.children[0] = toLink(ps.LeftChild)
		p.children[1] = toLink(ps.RightChild)
		p.adjacent[0] = toLink(ps.LeftAdjacent)
		p.adjacent[1] = toLink(ps.RightAdjacent)
		for _, id := range ps.LeftRouting {
			p.rt[0] = append(p.rt[0], toLink(id))
		}
		for _, id := range ps.RightRouting {
			p.rt[1] = append(p.rt[1], toLink(id))
		}
	}
	c.hopCap = 8 * (len(snapshot) + 4)
	for _, p := range c.peers {
		c.wg.Add(1)
		go c.serve(p)
	}
	return c
}

// Size returns the number of peers in the cluster (dead or alive).
func (c *Cluster) Size() int { return len(c.peers) }

// Messages returns the total number of peer-to-peer messages delivered.
func (c *Cluster) Messages() int64 { return c.msgs.Load() }

// PeerIDs returns all peer IDs.
func (c *Cluster) PeerIDs() []core.PeerID {
	out := make([]core.PeerID, 0, len(c.peers))
	for id := range c.peers {
		out = append(out, id)
	}
	return out
}

// Kill stops the given peer: its goroutine keeps draining the inbox (so
// senders never block) but answers every queued or future request with
// ErrOwnerDown, and every new request addressed to it fails over to an
// alternative path at the sender, exactly like an unreachable address.
func (c *Cluster) Kill(id core.PeerID) error {
	p, ok := c.peers[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, id)
	}
	p.alive.Store(false)
	return nil
}

// Alive reports whether the given peer is up.
func (c *Cluster) Alive(id core.PeerID) bool {
	p, ok := c.peers[id]
	return ok && p.alive.Load()
}

// Stop shuts the cluster down and waits for every peer goroutine to exit.
// It is safe to call concurrently with in-flight requests (they complete or
// return ErrStopped) and is idempotent. Inboxes are never closed — shutdown
// is broadcast on c.done — so a concurrent send can never panic.
func (c *Cluster) Stop() {
	if c.stopped.Swap(true) {
		return
	}
	close(c.done)
	c.wg.Wait()
}

// send delivers a request to the peer with the given ID. It reports false
// when the target is dead or the cluster is stopped. A full inbox never
// blocks the caller: the delivery is completed by a detached goroutine, so
// a peer goroutine can never block on another peer's inbox — a cycle of
// such sends is the classic message-system deadlock, and avoiding it is
// what keeps the "calls never block indefinitely" contract true under any
// client count. Detached deliveries abort at Stop (their clients observe
// ErrStopped via issue's done select). The transient goroutines are
// bounded by the number of in-flight messages — each client contributes at
// most one routed request or one scatter sub-request per covering peer —
// and every one retires as soon as its target inbox drains.
func (c *Cluster) send(to core.PeerID, req request) bool {
	if c.stopped.Load() {
		return false
	}
	p, ok := c.peers[to]
	if !ok || !p.alive.Load() {
		return false
	}
	select {
	case p.inbox <- req:
		c.msgs.Add(1)
	default:
		go func() {
			select {
			case p.inbox <- req:
				c.msgs.Add(1)
			case <-c.done:
			}
		}()
	}
	return true
}

// Get looks up key starting at peer via.
func (c *Cluster) Get(via core.PeerID, key keyspace.Key) ([]byte, bool, int, error) {
	resp, err := c.issue(via, request{kind: kindGet, key: key})
	if err != nil {
		return nil, false, 0, err
	}
	return resp.value, resp.found, resp.hops, resp.err
}

// Put stores value under key starting at peer via.
func (c *Cluster) Put(via core.PeerID, key keyspace.Key, value []byte) (int, error) {
	resp, err := c.issue(via, request{kind: kindPut, key: key, value: value})
	if err != nil {
		return 0, err
	}
	return resp.hops, resp.err
}

// Delete removes key starting at peer via, reporting whether it existed.
func (c *Cluster) Delete(via core.PeerID, key keyspace.Key) (bool, int, error) {
	resp, err := c.issue(via, request{kind: kindDelete, key: key})
	if err != nil {
		return false, 0, err
	}
	return resp.found, resp.hops, resp.err
}

// Range returns every stored item with a key in r, starting at peer via.
// The query is routed to the peer owning r.Lower (phase 1) and from there
// fans out over the covering peers in parallel; the reported hop count is
// the longest message chain of the fan-out, i.e. the latency-determining
// path. Items are returned in key order. A dead peer inside the range
// yields the partial result together with ErrOwnerDown.
func (c *Cluster) Range(via core.PeerID, r keyspace.Range) ([]store.Item, int, error) {
	resp, err := c.issue(via, request{kind: kindRange, key: r.Lower, rng: r, par: true})
	if err != nil {
		return nil, 0, err
	}
	return resp.items, resp.hops, resp.err
}

// RangeSerial answers the range query by walking the right-adjacent chain
// one peer at a time, exactly as Section IV-B of the paper describes. It is
// kept as the baseline the parallel fan-out is benchmarked against; its
// latency grows linearly with the number of peers covering the range.
func (c *Cluster) RangeSerial(via core.PeerID, r keyspace.Range) ([]store.Item, int, error) {
	resp, err := c.issue(via, request{kind: kindRange, key: r.Lower, rng: r})
	if err != nil {
		return nil, 0, err
	}
	return resp.items, resp.hops, resp.err
}

// issue sends the request into the overlay via the given peer and waits for
// the answer. The wait also watches the cluster's done channel so a client
// can never block across Stop.
func (c *Cluster) issue(via core.PeerID, req request) (response, error) {
	if c.stopped.Load() {
		return response{}, ErrStopped
	}
	if _, ok := c.peers[via]; !ok {
		return response{}, fmt.Errorf("%w: %d", ErrUnknownPeer, via)
	}
	req.reply = make(chan response, 1)
	if !c.send(via, req) {
		if c.stopped.Load() {
			return response{}, ErrStopped
		}
		return response{}, fmt.Errorf("%w: %d", ErrOwnerDown, via)
	}
	select {
	case resp := <-req.reply:
		return resp, nil
	case <-c.done:
		return response{}, ErrStopped
	}
}

// serve is the peer goroutine: it drains the inbox and handles or forwards
// each request. A killed peer keeps draining so senders never block, but
// refuses every request with ErrOwnerDown — a request already queued when
// the peer died must still be answered or its client would hang forever.
func (c *Cluster) serve(p *peer) {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case req := <-p.inbox:
			if !p.alive.Load() {
				c.refuse(req, ErrOwnerDown)
				continue
			}
			c.handle(p, req)
		}
	}
}

// refuse terminates a request with the given error, whichever completion
// path it uses: scatter sub-requests report into their collector, everything
// else answers on its reply channel.
func (c *Cluster) refuse(req request, err error) {
	if req.coll != nil {
		req.coll.finish(req.rng.Lower, nil, req.hops, err)
		return
	}
	// A serial range walk carries everything collected so far in req.acc;
	// the client is promised the partial answer alongside the error, so it
	// must not be dropped here.
	req.reply <- response{items: req.acc, hops: req.hops, err: err}
}

func (c *Cluster) handle(p *peer, req request) {
	req.hops++
	if req.hops > c.hopCap {
		c.refuse(req, ErrUnreachable)
		return
	}
	switch req.kind {
	case kindRange:
		c.handleRange(p, req)
		return
	case kindRangeScatter:
		c.scatterAt(p, req.rng, req.hops, req.coll)
		return
	case kindBulkGet, kindBulkPut, kindBulkDelete:
		c.handleBulk(p, req)
		return
	}
	if p.rng.Contains(req.key) || c.ownsExtreme(p, req.key) {
		switch req.kind {
		case kindGet:
			v, ok := p.data.Get(req.key)
			req.reply <- response{value: v, found: ok, hops: req.hops}
		case kindPut:
			p.data.Put(req.key, req.value)
			req.reply <- response{hops: req.hops}
		case kindDelete:
			ok := p.data.Delete(req.key)
			req.reply <- response{found: ok, hops: req.hops}
		}
		return
	}
	c.forward(p, req)
}

// ownsExtreme mirrors the simulator's rule that the leftmost and rightmost
// peers are responsible for keys outside the domain.
func (c *Cluster) ownsExtreme(p *peer, key keyspace.Key) bool {
	if key < p.rng.Lower && p.adjacent[0] == nil {
		return true
	}
	if key >= p.rng.Upper && p.adjacent[1] == nil {
		return true
	}
	return false
}

// forward applies the search_exact forwarding rule and fails over across the
// candidate list when targets are dead, avoiding peers the request has
// already visited unless no other alternative remains.
func (c *Cluster) forward(p *peer, req request) {
	if req.visited == nil {
		req.visited = make(map[core.PeerID]bool)
	}
	req.visited[p.id] = true
	cands := c.candidates(p, req.key)
	// If the peer responsible for the key is among the candidates but is
	// down, the data is unavailable: answer immediately instead of wandering
	// (the simulator applies the same rule).
	for _, cand := range cands {
		if cand != nil && cand.lower <= req.key && req.key < cand.upper && !c.Alive(cand.id) {
			c.refuse(req, ErrOwnerDown)
			return
		}
	}
	for _, cand := range cands {
		if cand == nil || req.visited[cand.id] {
			continue
		}
		if c.send(cand.id, req) {
			return
		}
	}
	// Every unvisited candidate is dead: back out of the dead region through
	// an already-visited peer, chosen at random. A deterministic choice here
	// can bounce the request around the same closed orbit until the hop cap
	// even though a detour exists; randomising the escape makes the walk
	// ergodic, so with the generous hop cap the request finds any alive
	// route that exists.
	alive := cands[:0]
	for _, cand := range cands {
		if cand != nil && c.Alive(cand.id) {
			alive = append(alive, cand)
		}
	}
	for _, i := range rand.Perm(len(alive)) {
		if c.send(alive[i].id, req) {
			return
		}
	}
	c.refuse(req, ErrUnreachable)
}

// candidates lists forwarding targets for key at p, best first: the farthest
// non-overshooting routing-table entry, then the child, adjacent and parent
// links, then the remaining links as fault-tolerance fallbacks.
func (c *Cluster) candidates(p *peer, key keyspace.Key) []*link {
	var out []*link
	if key >= p.rng.Upper {
		rt := p.rt[1]
		for i := len(rt) - 1; i >= 0; i-- {
			if rt[i] != nil && rt[i].lower <= key {
				out = append(out, rt[i])
			}
		}
		out = append(out, p.children[1], p.adjacent[1], p.parent, p.children[0], p.adjacent[0])
		for i := len(rt) - 1; i >= 0; i-- {
			if rt[i] != nil && rt[i].lower > key {
				out = append(out, rt[i])
			}
		}
	} else {
		rt := p.rt[0]
		for i := len(rt) - 1; i >= 0; i-- {
			if rt[i] != nil && rt[i].upper > key {
				out = append(out, rt[i])
			}
		}
		out = append(out, p.children[0], p.adjacent[0], p.parent, p.children[1], p.adjacent[1])
		for i := len(rt) - 1; i >= 0; i-- {
			if rt[i] != nil && rt[i].upper <= key {
				out = append(out, rt[i])
			}
		}
	}
	return out
}

// handleRange implements the two phases of a range query (Section IV-B):
// the request is first routed like an exact query towards the range's lower
// bound; once a peer responsible for it is reached, the range is answered
// either by the serial adjacent-chain walk below or by the parallel fan-out
// in range_fanout.go, depending on req.par.
func (c *Cluster) handleRange(p *peer, req request) {
	r := req.rng
	owns := p.rng.Contains(r.Lower) || c.ownsExtreme(p, r.Lower)
	if !owns {
		// Phase 1: still locating the peer responsible for the range's lower
		// bound (req.key == r.Lower). Stopping at any merely-intersecting
		// peer would skip the beginning of the range.
		c.forward(p, req)
		return
	}
	if req.par {
		// Phase 2, parallel: become the fan-out coordinator.
		coll := &collector{reply: req.reply}
		coll.grow(1)
		c.scatterAt(p, r, req.hops, coll)
		return
	}
	// Phase 2, serial: collect locally and continue rightwards.
	if p.rng.Intersects(r) {
		req.acc = append(req.acc, p.data.Scan(r)...)
	}
	next := p.adjacent[1]
	if next == nil || next.lower >= r.Upper {
		req.reply <- response{items: req.acc, hops: req.hops}
		return
	}
	// Trim the still-uncovered part of the range so the next peer (whose
	// range starts exactly where this one ends) recognises itself as
	// responsible and keeps walking the chain instead of routing back.
	if p.rng.Upper > req.rng.Lower {
		req.rng.Lower = p.rng.Upper
		req.key = req.rng.Lower
	}
	if c.send(next.id, req) {
		return
	}
	// The right adjacent peer is dead: answer with what has been collected
	// so far (a deployment would route around through the parent and repair).
	req.reply <- response{items: req.acc, hops: req.hops, err: ErrOwnerDown}
}
