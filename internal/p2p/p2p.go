// Package p2p runs a BATON overlay as a set of live, concurrently executing
// peers: every peer is a goroutine with an inbox, requests travel between
// peers as messages, and clients issue queries against any peer they know.
//
// The message-counting simulator in internal/core is what reproduces the
// paper's figures (operations there are serialised, exactly like the
// authors' simulator). This package is the deployment-shaped counterpart:
// it takes a snapshot of a core.Network — positions, ranges, links and data —
// and animates it, so that many exact-match, insert and range requests can
// be in flight at the same time, and so that the overlay can change while
// traffic is running: peers can be killed and recovered (the fault
// tolerance of Sections III-C/III-D, plus data replication the paper
// leaves out), new peers can Join online (Section III-A), and peers can
// Depart gracefully with full data handoff (Section III-B).
//
// # Live membership
//
// Join locates the accept node by routing a JOIN message through the live
// peers exactly as Algorithm 1 forwards it — to the parent when a routing
// table is incomplete, sideways to routing-table neighbours, to the adjacent
// peers — until a peer with full routing tables and a free child slot
// answers. Depart finds a replacement leaf for a non-leaf peer by walking
// FINDREPLACEMENT messages down the live tree (Algorithm 2). The structural
// bookkeeping of an accepted change — which ranges split or merge, which
// links every affected peer ends up with — is computed on an internal
// data-less mirror of the overlay structure (a core.Network), and the delta
// is then pushed back out to the affected peers as messages:
//
//  1. Peers that are gaining key ranges are prepared first: they adopt their
//     new range and links and start buffering requests that touch the
//     still-in-flight regions.
//  2. Source peers then shrink, extract the handed-off items and send them
//     as one batched data message per region directly to the receiving
//     peer, which absorbs the items and replays everything it buffered.
//     Keys in mid-handoff are therefore forwarded or briefly held — never
//     dropped — and no acknowledged write is lost.
//  3. Every other peer whose links changed receives its new link set. A
//     departed peer's goroutine stays behind as a tombstone that forwards
//     stragglers (requests addressed to it by stale routing state) to the
//     peer that took over its range.
//
// Structural operations (Join, Depart, LoadBalance, ForceRejoin, Kill,
// Recover, Snapshot) serialise with each other on a membership lock,
// mirroring how the paper's protocol serialises structural changes around
// the affected region, while Get/Put/Delete/Range/Bulk traffic keeps
// flowing throughout — data requests never take the membership lock.
// LoadBalance performs the adjacent-peer data shuffle of Section V: the
// peer measures its own and its adjacent peers' loads and moves the
// boundary so that about half the imbalance changes hands.
//
// # Load management
//
// The cluster meters its own load (loadmanager.go): every peer counts the
// data requests it handles on an atomic, Loads snapshots per-peer
// stored-item counts plus a request-rate EWMA, and ImbalanceRatio condenses
// a snapshot into the max/average stored-load ratio. StartAutoBalance runs
// the opt-in background balancer: whenever the most loaded peer exceeds θ
// times its lighter adjacent peer (the Section V trigger), it either runs
// the adjacent-peer shuffle or — when both neighbours are themselves
// loaded — recruits the globally lightest leaf for a forced depart-and-
// rejoin next to the hot peer (ForceRejoin, the Section III-E restructuring
// on the mirror plumbed through the same prepare→extract→handoff→link-update
// phases as Depart and Join, so no acknowledged write is lost). Each
// balancing action is one structural operation: it takes the membership
// lock like Join or Depart and therefore serialises with every other
// membership change, while data traffic keeps flowing and keys in
// mid-handoff are buffered, never dropped.
//
// # Fault tolerance
//
// A crash is survivable, not just routable-around. Every peer keeps a full
// copy of its items at its replica holder — its right adjacent peer (left
// for the rightmost; core.ReplicaHolderOf) — maintained asynchronously on
// the write path and re-shipped synchronously whenever a membership change
// moves the peer or its range (replication.go). SyncReplicas is the
// barrier that closes the asynchronous window: every write acknowledged
// before it returns is on its holder.
//
// Kill crashes a peer abruptly: its stores (own items and held replicas)
// are wiped, its range answers ErrOwnerDown, and routing fails over around
// it exactly as Section III-D describes — the dead peer remains part of
// the structure. Recover repairs it (recovery.go): the structural position
// is removed on the mirror with the crash-leave variant of the departure
// protocol (safe-leaf merge or replacement leaf, core.CrashLeaveWith), the
// lost range is restored from the surviving replica and handed to its new
// owner, links are refreshed and the topology republished, with the dead
// peer's goroutine left behind as a forwarding tombstone. ErrOwnerDown is
// therefore transient: requests fail over during the outage and succeed
// after the repair, with every replicated acknowledged write intact. The
// opt-in background repairer (StartAutoRecover) runs Recover automatically
// on peers that routing observes to be dead. One replica tolerates one
// crash between repairs: when a peer and its holder are down at once,
// Recover still repairs the range but reports ErrReplicaLost.
//
// # Concurrency contract
//
// Every exported method of Cluster is safe for concurrent use by any number
// of goroutines. A peer's protocol state is touched only by that peer's own
// goroutine — structural updates arrive as messages, like everything else —
// so request handling needs no per-item locking. Calls never block
// indefinitely:
//
//   - A request addressed to (or queued at) a peer that has been killed
//     fails with ErrOwnerDown instead of hanging.
//   - Stop may be called at any time, including with requests and
//     membership changes in flight; in-flight calls complete or return
//     ErrStopped, and shutdown never panics. Peers are never signalled by
//     closing their inboxes — shutdown is broadcast on a separate done
//     channel precisely so that concurrent senders cannot hit a closed
//     channel.
//
// # Routing modes
//
// Singleton Get/Put/Delete requests enter the overlay in one of two modes
// (SetRouteMode). RouteOverlay, the default, routes per-hop through the
// tree and sideways routing tables exactly as Algorithm search_exact
// describes — the paper-faithful path whose hop counts the experiments
// measure. RouteDirect is the fast data plane: the published topology's
// key-ordered ring doubles as an epoch-validated route cache, and requests
// go straight to the cached owner in one message, tagged with the ring's
// epoch. A receiver that no longer owns the key validates the tag against
// the live epoch: an older tag (the sender's ring predates a membership
// change) is re-aimed once at the owner the current ring names, while a
// current tag (the receiver's range moved under a publication still in
// flight) falls back to classic overlay forwarding — and a key mid-handoff
// is briefly buffered until its items land. Direct mode under churn
// therefore pays extra hops, never correctness; StaleRoutes counts the
// misses. A cached owner that is dead fails the delivery at the sender,
// which re-enters the overlay path and its usual fail-over rules. See
// routecache.go.
//
// Range queries come in two flavours: RangeSerial walks the right-adjacent
// chain one peer at a time exactly as Section IV-B describes, while Range
// (the default) scatters the uncovered remainder of the query across the
// chain and the sideways routing tables in parallel and gathers the partial
// answers in a per-query collector, turning O(peers-covered) sequential
// hops into a logarithmic-depth fan-out. Bulk operations (BulkGet, BulkPut,
// BulkDelete) group keys by responsible peer and pipeline one batched
// message per peer, amortising routing hops across the whole batch; keys
// whose owner changed under a concurrent membership operation are retried
// as routed singleton requests, so bulk calls stay correct under churn.
//
// # Query layer
//
// On top of the two fixed range flavours sits a thin adaptive planner
// (query.go, internal/query). RangeAdaptive estimates a range's peer-span
// from the published ring — two binary searches against state the client
// already holds, no messages, no locks — and dispatches the serial walk
// for narrow ranges and the scatter for wide ones, with the crossover
// tuned per span bucket from the latencies the cluster itself observes
// rather than hard-coded. A small (range bucket, epoch)-keyed plan cache
// short-circuits the estimate and the entry-point lookup for repeated
// ranges and is invalidated implicitly by every epoch bump. RangeIter
// streams a range answer: scatter branches push bounded batches through a
// channel-backed sink as they land, so wide queries allocate O(batch)
// rather than O(result). GetFiltered / RangeFiltered push a serialisable
// predicate (internal/query.Pred: value-length bounds, key-set
// membership, item limit) down to the owning peers, so items that cannot
// match never cross the wire, and a limited serial walk terminates the
// adjacent chain the moment the limit is satisfied.
//
// # Observability
//
// The cluster records what it does through internal/obs (metrics.go),
// and the instrumentation hooks sit strictly inside the lock order
// batonvet enforces:
//
//   - Per-peer counters and histograms live in each peer's PeerMetrics
//     block, reached through the *peer object — never by writing through
//     a topo.Load() snapshot (topoimmutable) — and are typed atomics, so
//     the data path takes no lock for them. deliverTo counts
//     delivered/spilled messages and stamps the enqueue time; the serve
//     loop's dispatch wrapper turns that stamp into queue-wait and
//     handle-time histogram samples; refuse attributes refused messages
//     to the peer that refused them. The spill-queue gauges are updated
//     inside the existing spillMu critical sections — spillMu nests
//     inside nothing, so no new lock edge appears.
//   - Sampled request traces ride inside the request struct (a nil
//     pointer when sampling is off, so the zero-alloc direct path is
//     untouched); hops are appended by the serving goroutine only.
//   - The structural-op journal is written exclusively under memberMu by
//     the operations that already hold it (Join, Depart, Kill, Recover,
//     LoadBalance, ForceRejoin) — journalBegin/journalEnd never lock, so
//     they are safe from *Locked helpers (lockedsuffix still holds) and
//     cannot invert the memberMu-before-spillMu order.
//
// Cluster.Metrics, Cluster.Events and Cluster.Traces read it all back
// without stopping traffic — see metrics.go.
package p2p

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/obs"
	"baton/internal/query"
	"baton/internal/store"
	"baton/internal/transport"
)

// Errors returned by cluster operations.
var (
	// ErrStopped is returned when the cluster has been shut down.
	ErrStopped = errors.New("p2p: cluster stopped")
	// ErrUnknownPeer is returned when a request names a peer that does not
	// exist in the cluster.
	ErrUnknownPeer = errors.New("p2p: unknown peer")
	// ErrUnreachable is returned when a request cannot make progress because
	// every useful link points at dead peers.
	ErrUnreachable = errors.New("p2p: no route to the responsible peer")
	// ErrOwnerDown is returned when the peer responsible for a key is dead.
	ErrOwnerDown = errors.New("p2p: responsible peer is down")
)

// errMoved is the internal marker a peer attaches to a bulk-batch key it no
// longer owns (the client's ring cache was stale across a membership
// change); the client retries those keys as routed singleton requests and
// the marker never escapes to callers.
var errMoved = errors.New("p2p: key moved to another peer")

// kind enumerates request kinds.
type kind int

const (
	kindGet kind = iota
	kindPut
	kindDelete
	kindRange
	kindRangeScatter
	kindBulkGet
	kindBulkPut
	kindBulkDelete

	// Membership protocol messages.
	kindJoinLocate      // Algorithm 1: locate a peer that can accept a child
	kindFindReplacement // Algorithm 2: walk down to a replacement leaf
	kindUpdate          // adopt new structural state / extract handed-off data
	kindHandoff         // batched data items migrating between peers
	kindSnapshot        // export the peer's protocol state
	kindStats           // report the peer's stored-item count
	kindSplitKey        // report the key at a fraction of the local items

	// Fault-tolerance messages (replication.go, recovery.go).
	kindCrash         // wipe the peer's stores: its process has crashed
	kindReplicate     // incremental replica update from the write path
	kindReplicaSync   // wholesale replacement of one source's replica set
	kindReplicaDrop   // discard one source's replica set
	kindReplicaResync // instruct a peer to full-sync to its current holder
	kindReplicaFetch  // return the replica set held for one source
	kindReplicaDump   // export every replica set this peer holds

	// Query-layer messages (query.go): predicate-pushdown variants of the
	// singleton get and the range query. They carry a serialisable
	// query.Pred evaluated at the owning peer, so items that cannot match
	// never cross the wire; a kindRangePred with a limit stops the serial
	// chain walk as soon as the limit is satisfied.
	kindGetPred   // singleton get answered through the pushdown predicate
	kindRangePred // range query carrying a pushdown predicate
)

// numKinds sizes per-kind metric arrays; it must track the enum above.
const numKinds = int(kindRangePred) + 1

// String names the kind for metrics and traces. The switch is exhaustive
// (kindexhaustive) so a new kind cannot ship without a display name.
func (k kind) String() string {
	switch k {
	case kindGet:
		return "GET"
	case kindPut:
		return "PUT"
	case kindDelete:
		return "DELETE"
	case kindRange:
		return "RANGE"
	case kindRangeScatter:
		return "RANGE_SCATTER"
	case kindBulkGet:
		return "BULK_GET"
	case kindBulkPut:
		return "BULK_PUT"
	case kindBulkDelete:
		return "BULK_DELETE"
	case kindJoinLocate:
		return "JOIN_LOCATE"
	case kindFindReplacement:
		return "FIND_REPLACEMENT"
	case kindUpdate:
		return "UPDATE"
	case kindHandoff:
		return "HANDOFF"
	case kindSnapshot:
		return "SNAPSHOT"
	case kindStats:
		return "STATS"
	case kindSplitKey:
		return "SPLIT_KEY"
	case kindCrash:
		return "CRASH"
	case kindReplicate:
		return "REPLICATE"
	case kindReplicaSync:
		return "REPLICA_SYNC"
	case kindReplicaDrop:
		return "REPLICA_DROP"
	case kindReplicaResync:
		return "REPLICA_RESYNC"
	case kindReplicaFetch:
		return "REPLICA_FETCH"
	case kindReplicaDump:
		return "REPLICA_DUMP"
	case kindGetPred:
		return "GET_PRED"
	case kindRangePred:
		return "RANGE_PRED"
	default:
		return fmt.Sprintf("KIND_%d", int(k))
	}
}

// kindName adapts kind.String to the index-based callback obs snapshots
// take.
func kindName(i int) string { return kind(i).String() }

// isControl reports whether the request kind must be handled even by a
// killed peer: structural updates and snapshots keep a dead peer's recorded
// state coherent (it remains part of the overlay structure until it is
// repaired), a handoff must never be dropped, and a crash notification is by
// definition addressed to a peer that is already down. Replica traffic is
// NOT control: a dead peer must refuse it, or it would keep acknowledging
// replicas its wiped process cannot hold.
func isControl(k kind) bool {
	return k == kindUpdate || k == kindHandoff || k == kindSnapshot || k == kindCrash
}

// request is one message travelling through the overlay. Replies are
// delivered on the embedded channel so a client blocks only on its own
// request.
type request struct {
	kind  kind
	key   keyspace.Key
	value []byte
	rng   keyspace.Range
	hops  int
	acc   []store.Item // accumulated range results (serial walk)
	// par marks a kindRange request that should fan out in parallel once
	// phase-1 routing reaches the peer owning the range's lower bound.
	par bool
	// coll is the shared gather state of a parallel range query; set on
	// kindRangeScatter sub-requests (which carry no reply channel of their
	// own — the collector answers the client when the last branch finishes)
	// and on streaming queries, whose client builds the collector itself so
	// the channel-backed sink travels with the request (see query.go).
	coll *collector
	// pred is the pushdown predicate of a kindGetPred / kindRangePred
	// request, evaluated at the owning peer. Plain serialisable data —
	// see query.Pred. Parallel scatter branches read it from coll instead,
	// so one query evaluates one predicate wherever its branches run.
	pred *query.Pred
	// bulk carries the keys/items of a batched operation or a data handoff.
	bulk []store.Item
	// state, gains, moves and departTo are the payload of a kindUpdate
	// message (see membership.go).
	state    *peerState
	gains    []keyspace.Range
	moves    []handoffMove
	departTo core.PeerID
	// frac is the payload of a kindSplitKey request.
	frac float64
	// src names the peer whose items a replica message carries (or asks
	// for); dels lists replicated deletions; seq orders replica messages
	// from one source so a delta delivered after a later wholesale sync —
	// the two travel from different goroutines — is recognised as stale
	// (see replication.go).
	src  core.PeerID
	dels []keyspace.Key
	seq  int64
	// visited records the peers this request has already passed through so
	// fail-over never loops; only one copy of the request is in flight at a
	// time, so the map is never accessed concurrently.
	visited map[core.PeerID]bool
	// epoch, when non-zero, marks a direct-routed request (RouteDirect fast
	// path): the sender believed the target owned key under the tagged
	// topology epoch. A receiver that does not own the key counts the miss
	// and validates the tag against the live epoch — an older tag is
	// re-aimed once via the current ring, a current one falls back to
	// classic per-hop overlay forwarding (see handle) — so churn costs
	// extra hops, never correctness. Zero is reserved to mean "not direct";
	// topology epochs start at 1.
	epoch uint64
	// enq is stamped by deliverTo when the request is accepted into the
	// target's inbox or spill queue; the serving goroutine's dispatch turns
	// it into the queue-wait sample. A by-value field, so it costs no
	// allocation on the zero-alloc direct path.
	enq time.Time
	// trace, when non-nil, marks a sampled request: every peer that
	// handles it appends a hop record (see dispatch). Nil with sampling
	// off, which is what keeps instrumentation off the allocation budget.
	trace *obs.Trace
	reply chan response
	// rnode and rcorr identify the origin-node correlation of a request
	// that crossed the wire (set from the frame header by inboundRequest,
	// never encoded in the payload): the completion c.respond answers when
	// reply is nil. Zero on in-process requests and fire-and-forget wire
	// messages.
	rnode transport.NodeID
	rcorr uint64
}

// response is the terminal answer to a request.
type response struct {
	value   []byte
	found   bool
	items   []store.Item
	results []BulkResult
	hops    int
	// Membership replies.
	peerID   core.PeerID
	slot     int
	snap     *core.PeerSnapshot
	count    int
	splitKey keyspace.Key
	// replicaSets is the payload of a kindReplicaDump reply.
	replicaSets map[core.PeerID][]store.Item
	err         error
}

// link is the information a peer keeps about another peer: enough to decide
// where to forward a request (the paper's links carry the target's range).
type link struct {
	id    core.PeerID
	lower keyspace.Key
	upper keyspace.Key
}

// peer is one live peer: a goroutine draining an inbox. All fields other
// than the atomic alive flag are owned by the peer's goroutine once it has
// started; membership changes reach them as kindUpdate messages.
type peer struct {
	id     core.PeerID
	fanout int
	// node is the transport node hosting this peer: 0 for peers served by
	// this process (the overwhelmingly common case — and the only case in
	// a single-process cluster), nonzero for a *stub* standing in for a
	// peer hosted elsewhere. A stub has no goroutine; deliveries to it
	// detour through netLayer.deliver onto the wire (see node.go).
	// Immutable after construction.
	node transport.NodeID
	pos    core.Position
	rng    keyspace.Range
	data   *store.Store
	inbox  chan request

	parent *link
	// children holds the fanout child slots in tree order: slot 0 is the
	// leftmost child, slot fanout-1 the rightmost.
	children []*link
	adjacent [2]*link
	rt       [2][]*link // sideways routing tables, [Left|Right]

	// pending lists key regions this peer now owns but whose items are
	// still in flight from the previous owner; requests touching them are
	// buffered in held and replayed when the handoff arrives, so a key in
	// mid-handoff is never served from a half-empty store.
	pending []keyspace.Range
	held    []request

	// spill absorbs deliveries that find the inbox full: instead of one
	// transient goroutine per blocked send (unbounded when a peer is hot),
	// the overflow queues here and the serving goroutine drains it after
	// the older inbox entries, preserving per-peer FIFO delivery (see
	// deliverTo). spillWake (buffered 1) nudges the goroutine when the
	// queue goes non-empty.
	spillMu   sync.Mutex
	spill     []request
	spillWake chan struct{}
	// spillSince marks when the spill queue last went non-empty, so the
	// drain latency — how long the overflow sat before the goroutine got
	// to it — is measurable. Guarded by spillMu.
	spillSince time.Time

	// met is this peer's block of the metrics registry (delivered /
	// spilled / refused counters per kind, queue-wait and handle-time
	// histograms, spill gauges). Typed atomics throughout, written from
	// the delivery and serve paths without locks.
	met *obs.PeerMetrics

	// reqs counts the data requests (singleton, range, scatter and bulk
	// messages) this peer has handled — served or forwarded — the cheap
	// per-peer load signal behind Cluster.Loads' request-rate EWMA. items
	// mirrors the store's size, published by the owning goroutine after
	// every mutation (noteItems), so the load meter reads stored-item
	// counts without a control message per peer.
	reqs  atomic.Int64
	items atomic.Int64

	// replicas holds, per source peer, a copy of that peer's items — the
	// fault-tolerance layer of replication.go. replTo is the peer the last
	// full replica sync went to, remembered so a later sync to a different
	// holder can tell the old one to drop the stale set. replSeq stamps
	// outgoing replica messages (this peer as source); replicaMin records,
	// per source, the seq of the last wholesale sync absorbed (this peer as
	// holder), so older deltas arriving late are discarded.
	replicas   map[core.PeerID]*store.Store
	replTo     core.PeerID
	replSeq    int64
	replicaMin map[core.PeerID]int64

	// departed marks a peer that has gracefully left: its goroutine stays
	// behind as a tombstone forwarding stragglers to departTo, the peer
	// that took over its range, until a later structural operation retires
	// it (see reapTombstones).
	departed bool
	departTo core.PeerID

	alive atomic.Bool
	// gone refuses new deliveries to a tombstone being retired; inflight
	// counts deliveries between acceptance and completion so retirement
	// can prove no send will land after the goroutine exits.
	gone     atomic.Bool
	inflight atomic.Int64
	// quit is closed to retire a tombstone: the goroutine forwards any
	// remaining queued requests and exits.
	quit chan struct{}
}

// ringEntry is one slot of the client-side routing cache: a member peer and
// the lower bound of its range at the time the topology was published.
type ringEntry struct {
	id    core.PeerID
	lower keyspace.Key
	p     *peer
}

// topology is an immutable snapshot of the cluster's composition, swapped
// atomically on membership changes so the data path never takes a lock.
// peers holds every delivery target including killed members and departed
// tombstones; members, ring and ids describe the current overlay (killed
// peers included — they remain part of the structure — departed peers not).
// epoch counts ownership publications: it starts at 1 and is bumped by every
// publishTopology, so a request tagged with an older epoch may have been
// routed with a stale ring (see routecache.go).
type topology struct {
	peers   map[core.PeerID]*peer
	members map[core.PeerID]bool
	ring    []ringEntry
	ids     []core.PeerID
	hopCap  int
	epoch   uint64
}

// clone copies the topology with a fresh peers map (the mutable part of a
// membership change); the published overlay description is shared until the
// caller replaces it. Every topology swap goes through here so a field
// added to the struct is carried everywhere or nowhere.
func (t *topology) clone() *topology {
	nt := *t
	nt.peers = make(map[core.PeerID]*peer, len(t.peers)+1)
	for id, p := range t.peers {
		nt.peers[id] = p
	}
	return &nt
}

// Cluster is a set of live peers animating a BATON overlay.
type Cluster struct {
	// fanout is the tree fanout m of the overlay the cluster animates,
	// adopted from the source network at construction; 2 is the paper's
	// binary protocol, larger values are the BATON* generalisation.
	// Immutable after NewCluster.
	fanout  int
	topo    atomic.Pointer[topology]
	wg      sync.WaitGroup
	done    chan struct{}
	stopped atomic.Bool
	msgs    msgCounter

	// routeMode selects the entry path of singleton Get/Put/Delete requests
	// (RouteOverlay or RouteDirect — see routecache.go). Stale direct
	// routes are counted per detecting peer in the metrics registry;
	// Cluster.StaleRoutes sums them.
	routeMode atomic.Int32

	// The flight recorder (see metrics.go): sampler decides which requests
	// carry a trace, traces retains the completed ones, journal records
	// structural operations, and retired accumulates the counters of peers
	// that have been reaped from the topology so cluster totals stay
	// monotonic. curEvent is the journal entry of the structural operation
	// in progress; guarded by memberMu.
	sampler  obs.Sampler
	traces   *obs.TraceRing
	journal  *obs.Journal
	retired  *obs.PeerMetrics
	curEvent *obs.Event

	// The query layer (query.go): planner picks serial vs parallel
	// execution per range request from the estimated peer-span and tunes
	// the crossover from observed latencies, planCache short-circuits the
	// span estimate and owner lookup for repeated ranges until the next
	// epoch bump, and plans counts the decisions for Metrics.
	planner   *query.Planner
	planCache *query.Cache
	plans     obs.PlanCounters

	// autoRecover and suspects feed the opt-in background repairer (see
	// recovery.go): routing paths that observe a dead responsible peer
	// report it, and the repairer runs Recover on it.
	autoRecover atomic.Bool
	suspects    chan core.PeerID

	// autoBalance marks the opt-in background balancer as started and
	// balanceEvents counts its successful actions; loadMu guards the
	// request-rate EWMA state Loads maintains between calls (loadmanager.go).
	autoBalance   atomic.Bool
	balanceEvents atomic.Int64
	loadMu        sync.Mutex
	loadLastAt    time.Time
	loadLastReqs  map[core.PeerID]int64
	loadRates     map[core.PeerID]float64

	// memberMu serialises structural operations — Join, Depart,
	// LoadBalance, Kill, Snapshot — against each other, the live
	// counterpart of the paper's serialisation of restructuring around the
	// affected region. Data traffic never takes it.
	memberMu sync.Mutex
	// mirror is the data-less structural authority: the same core.Network
	// logic that the simulator runs, kept in lockstep with the live peers.
	// Guarded by memberMu.
	mirror *core.Network
	// states caches the mirror's per-peer snapshot from after the last
	// structural operation; membership diffs are computed against it.
	states map[core.PeerID]core.PeerSnapshot
	// tombstones lists departed peers not yet retired. Guarded by memberMu.
	tombstones []*peer
	domain     keyspace.Range

	// net, when non-nil, is the node's connection to the rest of a
	// multi-process overlay (see node.go); nil for in-process clusters,
	// and every wire hook on the data path is gated on that nil check.
	// spawnAt, while a remote-requested join runs (guarded by memberMu),
	// redirects applyMirrorDiffLocked's phase-1 spawn to that node.
	net     *netLayer
	spawnAt transport.NodeID
}

// NewCluster builds a live cluster from a snapshot of the given simulated
// network: every peer's position, range, links and stored items are copied
// and a goroutine is started per peer. The network is consumed at this
// point in time; subsequent membership changes happen through the cluster's
// own Join and Depart.
func NewCluster(nw *core.Network) *Cluster {
	c := &Cluster{
		fanout:    nw.Fanout(),
		done:      make(chan struct{}),
		domain:    nw.Domain(),
		suspects:  make(chan core.PeerID, 64),
		traces:    obs.NewTraceRing(traceRingSize),
		journal:   obs.NewJournal(journalSize),
		retired:   obs.NewPeerMetrics(numKinds),
		planner:   query.NewPlanner(),
		planCache: query.NewCache(),
	}
	snapshot := core.Snapshot(nw)
	t := &topology{
		peers:   make(map[core.PeerID]*peer),
		members: make(map[core.PeerID]bool),
	}
	t.epoch = 1
	for _, ps := range snapshot {
		p := newPeer(ps.ID, c.fanout)
		p.pos = ps.Position
		p.rng = ps.Range
		p.data.Absorb(ps.Items)
		p.noteItems()
		p.alive.Store(true)
		t.peers[p.id] = p
		t.members[p.id] = true
		t.ring = append(t.ring, ringEntry{id: p.id, lower: p.rng.Lower, p: p})
		t.ids = append(t.ids, p.id)
	}
	sort.Slice(t.ring, func(i, j int) bool { return t.ring[i].lower < t.ring[j].lower })
	sort.Slice(t.ids, func(i, j int) bool { return t.ids[i] < t.ids[j] })
	// Wire the links after all peers exist.
	for _, ps := range snapshot {
		p := t.peers[ps.ID]
		p.parent = toLink(t.peers, ps.Parent)
		for s, cid := range ps.ChildSlots() {
			p.children[s] = toLink(t.peers, cid)
		}
		p.adjacent[0] = toLink(t.peers, ps.LeftAdjacent)
		p.adjacent[1] = toLink(t.peers, ps.RightAdjacent)
		for _, id := range ps.LeftRouting {
			p.rt[0] = append(p.rt[0], toLink(t.peers, id))
		}
		for _, id := range ps.RightRouting {
			p.rt[1] = append(p.rt[1], toLink(t.peers, id))
		}
	}
	t.hopCap = 8 * (len(snapshot) + 4)
	c.topo.Store(t)

	// The structural mirror keeps positions, ranges and links but no data:
	// the live peers own the items, and migrations move the real thing.
	mirrorSnaps := make([]core.PeerSnapshot, len(snapshot))
	for i, ps := range snapshot {
		ps.Items = nil
		mirrorSnaps[i] = ps
	}
	mirror, err := core.FromSnapshot(c.domain, mirrorSnaps)
	if err != nil {
		panic(fmt.Sprintf("p2p: network snapshot is not a valid overlay: %v", err))
	}
	c.mirror = mirror
	c.states = snapshotMap(mirrorSnaps)

	for _, p := range t.peers {
		c.wg.Add(1)
		go c.serve(p)
	}
	// Seed the fault-tolerance layer: every peer ships its items to its
	// replica holder before the cluster is handed to clients, so a crash is
	// recoverable from the first request on.
	c.memberMu.Lock()
	c.resyncReplicas(nil)
	c.memberMu.Unlock()
	return c
}

// traceRingSize and journalSize bound the flight recorder's memory: the
// most recent completed traces and structural events are retained, older
// ones are evicted.
const (
	traceRingSize = 256
	journalSize   = 512
)

// newPeer builds a peer object with every always-present field
// initialised — the single place the per-peer metrics block is attached,
// so a delivery target can never lack one.
func newPeer(id core.PeerID, fanout int) *peer {
	return &peer{
		id:        id,
		fanout:    fanout,
		children:  make([]*link, fanout),
		data:      store.New(),
		inbox:     make(chan request, 256),
		spillWake: make(chan struct{}, 1),
		quit:      make(chan struct{}),
		met:       obs.NewPeerMetrics(numKinds),
	}
}

// toLink builds a link to the peer with the given ID using its current
// range, or nil for NoPeer / unknown IDs.
func toLink(peers map[core.PeerID]*peer, id core.PeerID) *link {
	if id == core.NoPeer {
		return nil
	}
	t, ok := peers[id]
	if !ok {
		return nil
	}
	return &link{id: id, lower: t.rng.Lower, upper: t.rng.Upper}
}

// snapshotMap indexes per-peer snapshots by peer ID.
func snapshotMap(snaps []core.PeerSnapshot) map[core.PeerID]core.PeerSnapshot {
	out := make(map[core.PeerID]core.PeerSnapshot, len(snaps))
	for _, ps := range snaps {
		out[ps.ID] = ps
	}
	return out
}

// Size returns the number of member peers in the cluster (dead or alive;
// gracefully departed peers are not members).
func (c *Cluster) Size() int { return len(c.topo.Load().ids) }

// Messages returns the total number of peer-to-peer messages delivered.
func (c *Cluster) Messages() int64 { return c.msgs.total() }

// msgCounter counts delivered messages across cache-line-padded shards so
// that concurrent deliveries to different peers do not all serialise on one
// atomic word — with hundreds of client goroutines the single cluster-wide
// counter is a measurable contention hot spot. Deliveries to the same peer
// hash to the same shard, which is the contention the inbox already imposes.
type msgCounter struct {
	shards [msgShardCount]struct {
		n atomic.Int64
		_ [56]byte // pad to a 64-byte cache line
	}
}

const msgShardCount = 32

func (m *msgCounter) add(slot uint64) { m.shards[slot%msgShardCount].n.Add(1) }

func (m *msgCounter) total() int64 {
	var t int64
	for i := range m.shards {
		t += m.shards[i].n.Load()
	}
	return t
}

// Domain returns the key domain the cluster partitions.
func (c *Cluster) Domain() keyspace.Range { return c.domain }

// PeerIDs returns the IDs of all member peers in ascending order.
func (c *Cluster) PeerIDs() []core.PeerID {
	ids := c.topo.Load().ids
	out := make([]core.PeerID, len(ids))
	copy(out, ids)
	return out
}

// Kill stops the given peer abruptly: its goroutine keeps draining the
// inbox (so senders never block) but answers every queued or future data
// request with ErrOwnerDown, and every new request addressed to it fails
// over to an alternative path at the sender, exactly like an unreachable
// address. The crashed process's stores — its own items and any replicas it
// held for other peers — are wiped, so nothing recovery later reads can
// come from the dead peer itself. The peer's range stays assigned to it,
// and ErrOwnerDown keeps being returned for it, until Recover (or the
// background repairer started by StartAutoRecover) repairs the structure
// and restores the range from the surviving replica at the adjacent peer —
// see recovery.go. Kill serialises with membership changes so a migration's
// source or destination can never die mid-handoff.
func (c *Cluster) Kill(id core.PeerID) (err error) {
	if err := c.requireCoordinator(); err != nil {
		return err
	}
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	c.journalBegin("kill", id)
	defer func() { c.journalEnd(err) }()
	t := c.topo.Load()
	p := t.peers[id]
	if p == nil || !t.members[id] {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, id)
	}
	p.alive.Store(false)
	// The wipe runs in the peer's own goroutine (its stores are owned
	// there) and is acknowledged, so when Kill returns the data is provably
	// gone — a recovery that cheats by reading the dead peer's store would
	// fail the crash tests instead of silently passing.
	ch := make(chan response, 1)
	if c.sendAny(id, request{kind: kindCrash, reply: ch}) {
		select {
		case <-ch:
		case <-c.done:
			return ErrStopped
		}
	}
	if c.net != nil {
		// Same epoch, updated alive flag: other nodes' stubs for the dead
		// peer must start refusing sends just like this node's did.
		c.net.broadcastTopoLocked(c)
	}
	return nil
}

// peerByID returns the live peer object for direct inspection (tests only;
// a peer's non-atomic fields are owned by its goroutine while traffic runs).
func (c *Cluster) peerByID(id core.PeerID) *peer { return c.topo.Load().peers[id] }

// Alive reports whether the given peer is up.
func (c *Cluster) Alive(id core.PeerID) bool {
	p, ok := c.topo.Load().peers[id]
	return ok && p.alive.Load()
}

// Stop shuts the cluster down and waits for every peer goroutine to exit.
// It is safe to call concurrently with in-flight requests and membership
// changes (they complete or return ErrStopped) and is idempotent. Inboxes
// are never closed — shutdown is broadcast on c.done — so a concurrent send
// can never panic.
func (c *Cluster) Stop() {
	c.memberMu.Lock()
	already := c.stopped.Swap(true)
	if !already {
		close(c.done)
	}
	c.memberMu.Unlock()
	if !already {
		if c.net != nil {
			// Unblock control RPCs first: the ctl worker is in the
			// WaitGroup and may be waiting on one.
			c.net.beginClose()
		}
		c.wg.Wait()
		if c.net != nil {
			c.net.finishClose()
		}
	}
}

// send delivers a request to the peer with the given ID. It reports false
// when the target is dead or the cluster is stopped. A full inbox never
// blocks the caller: the overflow is appended to the target's spill queue,
// which the serving goroutine drains alongside the inbox, so a peer
// goroutine can never block on another peer's inbox — a cycle of such sends
// is the classic message-system deadlock, and avoiding it is what keeps the
// "calls never block indefinitely" contract true under any client count.
// The spill append is a short critical section on the target's own lock, so
// delivery costs no goroutine spawn however saturated the peer is.
func (c *Cluster) send(to core.PeerID, req request) bool {
	return c.deliver(to, req, false)
}

// sendAny is send for membership control traffic: it delivers even to
// killed peers, whose recorded structure must keep tracking the overlay.
func (c *Cluster) sendAny(to core.PeerID, req request) bool {
	return c.deliver(to, req, true)
}

func (c *Cluster) deliver(to core.PeerID, req request, evenDead bool) bool {
	p, ok := c.topo.Load().peers[to]
	if !ok {
		return false
	}
	return c.deliverTo(p, req, evenDead)
}

// deliverTo is deliver for callers that already hold the peer object (the
// direct-routing fast path resolves the owner once from the ring and skips
// the second map lookup).
func (c *Cluster) deliverTo(p *peer, req request, evenDead bool) bool {
	if c.stopped.Load() {
		return false
	}
	if !evenDead && !p.alive.Load() {
		return false
	}
	if p.node != 0 {
		// A stub for a peer hosted on another node: hand the request to the
		// wire (same refusal semantics; the correlation machinery replaces
		// the reply channel). gone gates retired remote tombstones exactly
		// like local ones.
		if c.net == nil || p.gone.Load() {
			return false
		}
		return c.net.deliver(p, req, evenDead)
	}
	// The inflight count brackets the whole delivery so a tombstone is only
	// retired once provably no send can still land in its inbox or spill
	// queue; a delivery beginning after gone is set backs out, and its
	// caller fails over as if the peer were dead.
	p.inflight.Add(1)
	if p.gone.Load() {
		p.inflight.Add(-1)
		return false
	}
	// Deliveries to one peer are FIFO across the two lanes: once the spill
	// queue is non-empty every delivery appends behind it (even if the inbox
	// has drained room again), and the serving goroutine empties the inbox —
	// which then only holds older messages — before each spill batch. The
	// ordering matters beyond tidiness: replica deltas from one source rely
	// on it to apply in the order they were acknowledged (replication.go).
	req.enq = time.Now()
	overflow := false
	p.spillMu.Lock()
	if len(p.spill) > 0 {
		p.spill = append(p.spill, req)
		overflow = true
	} else {
		select {
		case p.inbox <- req:
		default:
			p.spill = append(p.spill, req)
			overflow = true
		}
	}
	if overflow {
		// Gauge updates ride the spillMu section already paid for the
		// append; a queue going non-empty starts the drain-latency clock.
		if len(p.spill) == 1 {
			p.spillSince = req.enq
		}
		p.met.SetSpillDepth(int64(len(p.spill)))
	}
	p.spillMu.Unlock()
	if overflow {
		// Nudge the serving goroutine; spillWake is buffered, so the nudge
		// never blocks and a wake already pending covers this append too.
		select {
		case p.spillWake <- struct{}{}:
		default:
		}
	}
	c.msgs.add(uint64(p.id))
	p.met.Delivered(int(req.kind))
	if overflow {
		p.met.Spilled(int(req.kind))
	}
	p.inflight.Add(-1)
	return true
}

// noteItems publishes the store's current size for the lock-free load
// meter (Cluster.Loads); called by the owning goroutine after every
// mutation of p.data.
func (p *peer) noteItems() { p.items.Store(int64(p.data.Len())) }

// takeSpill detaches and returns the current spill queue, recording the
// drain latency — how long the overflow sat queued before the serving
// goroutine picked it up — and resetting the spill-depth gauge.
func (p *peer) takeSpill() []request {
	p.spillMu.Lock()
	q := p.spill
	p.spill = nil
	if len(q) > 0 {
		p.met.ObserveSpillDrain(time.Since(p.spillSince).Nanoseconds())
		p.spillSince = time.Time{}
		p.met.SetSpillDepth(0)
	}
	p.spillMu.Unlock()
	return q
}

// Get looks up key starting at peer via. Under RouteDirect the request is
// sent straight to the key's owner instead (via is the fallback entry point
// when the route cache is stale — see routecache.go).
func (c *Cluster) Get(via core.PeerID, key keyspace.Key) ([]byte, bool, int, error) {
	resp, err := c.route(via, request{kind: kindGet, key: key})
	if err != nil {
		return nil, false, 0, err
	}
	return resp.value, resp.found, resp.hops, resp.err
}

// Put stores value under key starting at peer via (owner-direct under
// RouteDirect, like Get).
func (c *Cluster) Put(via core.PeerID, key keyspace.Key, value []byte) (int, error) {
	resp, err := c.route(via, request{kind: kindPut, key: key, value: value})
	if err != nil {
		return 0, err
	}
	return resp.hops, resp.err
}

// Delete removes key starting at peer via, reporting whether it existed
// (owner-direct under RouteDirect, like Get).
func (c *Cluster) Delete(via core.PeerID, key keyspace.Key) (bool, int, error) {
	resp, err := c.route(via, request{kind: kindDelete, key: key})
	if err != nil {
		return false, 0, err
	}
	return resp.found, resp.hops, resp.err
}

// Range returns every stored item with a key in r, starting at peer via.
// The query is routed to the peer owning r.Lower (phase 1) and from there
// fans out over the covering peers in parallel; the reported hop count is
// the longest message chain of the fan-out, i.e. the latency-determining
// path. Items are returned in key order. A dead peer inside the range
// yields the partial result together with ErrOwnerDown.
func (c *Cluster) Range(via core.PeerID, r keyspace.Range) ([]store.Item, int, error) {
	resp, err := c.issue(via, request{kind: kindRange, key: r.Lower, rng: r, par: true})
	if err != nil {
		return nil, 0, err
	}
	return resp.items, resp.hops, resp.err
}

// RangeSerial answers the range query by walking the right-adjacent chain
// one peer at a time, exactly as Section IV-B of the paper describes. It is
// kept as the baseline the parallel fan-out is benchmarked against; its
// latency grows linearly with the number of peers covering the range.
func (c *Cluster) RangeSerial(via core.PeerID, r keyspace.Range) ([]store.Item, int, error) {
	resp, err := c.issue(via, request{kind: kindRange, key: r.Lower, rng: r})
	if err != nil {
		return nil, 0, err
	}
	return resp.items, resp.hops, resp.err
}

// issue sends the request into the overlay via the given peer and waits for
// the answer. The wait also watches the cluster's done channel so a client
// can never block across Stop. Reply channels come from a pool: every
// request is answered exactly once, so a channel whose answer has been
// consumed is clean for reuse; a wait abandoned at Stop leaves its channel
// to the garbage collector instead of returning it, so a late answer can
// never surface under a later request.
func (c *Cluster) issue(via core.PeerID, req request) (response, error) {
	if c.stopped.Load() {
		return response{}, ErrStopped
	}
	if _, ok := c.topo.Load().peers[via]; !ok {
		return response{}, fmt.Errorf("%w: %d", ErrUnknownPeer, via)
	}
	req.reply = getReply()
	if !c.send(via, req) {
		putReply(req.reply)
		if c.stopped.Load() {
			return response{}, ErrStopped
		}
		c.suspect(via)
		return response{}, fmt.Errorf("%w: %d", ErrOwnerDown, via)
	}
	select {
	case resp := <-req.reply:
		putReply(req.reply)
		return resp, nil
	case <-c.done:
		//batonvet:ignore replypool abandoned on Stop by design: the late answer must not reach the pool (see the doc comment above)
		return response{}, ErrStopped
	}
}

// serve is the peer goroutine: it drains the inbox and handles or forwards
// each request. A killed peer keeps draining so senders never block, but
// handle refuses every data request with ErrOwnerDown — a request already
// queued when the peer died must still be answered or its client would hang
// forever. Control messages (structural updates, handoffs, snapshots, crash
// wipes) are handled even when dead, because a killed peer remains part of
// the overlay structure until recovery removes it.
func (c *Cluster) serve(p *peer) {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case <-p.quit:
			// Retired tombstone: no new delivery can land (gone is set and
			// the in-flight count drained to zero before quit was closed),
			// so forward whatever is still queued — inbox and spill — and
			// exit.
			for {
				select {
				case req := <-p.inbox:
					if !c.send(p.departTo, req) {
						c.refuse(p, req, ErrOwnerDown)
					}
					continue
				default:
				}
				q := p.takeSpill()
				if len(q) == 0 {
					return
				}
				for _, req := range q {
					if !c.send(p.departTo, req) {
						c.refuse(p, req, ErrOwnerDown)
					}
				}
			}
		case req := <-p.inbox:
			c.dispatch(p, req)
		case <-p.spillWake:
			// Drain in FIFO order: everything in the inbox predates the
			// spill overflow (deliveries bypass the inbox while the spill
			// queue is non-empty), so empty the inbox before each spill
			// batch. The loop runs until the spill queue is observed empty;
			// a delivery that appends mid-drain leaves another wake pending,
			// so nothing is stranded.
			for {
				select {
				case req := <-p.inbox:
					c.dispatch(p, req)
					continue
				default:
				}
				q := p.takeSpill()
				if len(q) == 0 {
					break
				}
				for _, req := range q {
					c.dispatch(p, req)
				}
			}
		}
	}
}

// dispatch times one request through handle: the delivery stamp becomes
// the queue-wait sample, the handle duration (forwarding included) the
// handle-time sample, and a sampled request gets its hop appended —
// before handle runs, so the chain records peers in the order the
// message actually travelled (a forwarded request cannot reach the next
// peer before this peer's hop is on the trace). The hop's handle time is
// back-filled once known.
func (c *Cluster) dispatch(p *peer, req request) {
	start := time.Now()
	var wait int64
	if !req.enq.IsZero() {
		wait = start.Sub(req.enq).Nanoseconds()
	}
	p.met.ObserveQueueWait(wait)
	hop := -1
	if req.trace != nil {
		hop = req.trace.Append(obs.Hop{
			Peer:        int64(p.id),
			Kind:        req.kind.String(),
			Level:       p.pos.Level,
			QueueWaitNs: wait,
		})
	}
	c.handle(p, req)
	took := time.Since(start).Nanoseconds()
	p.met.ObserveHandle(took)
	if hop >= 0 {
		req.trace.SetHandleNs(hop, took)
	}
}

// refuse terminates a request with the given error, whichever completion
// path it uses: scatter sub-requests report into their collector, everything
// else answers on its reply channel. Fire-and-forget messages (replica
// updates) carry no reply channel and are simply dropped. The refusal is
// attributed to p — the peer at which the request died — in the metrics
// registry; client-side callers that refuse before any peer was involved
// pass nil.
func (c *Cluster) refuse(p *peer, req request, err error) {
	if p != nil {
		p.met.Refused(int(req.kind))
	}
	if req.coll != nil {
		req.coll.finish(req.rng.Lower, nil, req.hops, err)
		return
	}
	// A serial range walk carries everything collected so far in req.acc;
	// the client is promised the partial answer alongside the error, so it
	// must not be dropped here. respond answers the reply channel or the
	// wire correlation, and drops fire-and-forget requests (no waiter).
	c.respond(req, response{items: req.acc, hops: req.hops, err: err})
}

func (c *Cluster) handle(p *peer, req request) {
	req.hops++
	if req.hops > c.topo.Load().hopCap {
		c.refuse(p, req, ErrUnreachable)
		return
	}
	// Membership control first: these are addressed to this exact peer and
	// apply regardless of departure, death or pending handoffs.
	//batonvet:ignore kindexhaustive partial filter by design: every other kind falls through to the tombstone/aliveness checks below
	switch req.kind {
	case kindUpdate:
		c.applyUpdate(p, req)
		return
	case kindHandoff:
		c.applyHandoff(p, req)
		return
	case kindSnapshot:
		c.respond(req, response{snap: p.snapshot(), hops: req.hops})
		return
	case kindCrash:
		c.applyCrash(p, req)
		return
	}
	// A departed peer is a tombstone: stale routing state may still address
	// it, and everything it receives belongs to the peer that absorbed its
	// range now. This is checked before aliveness so a crashed peer that
	// recovery has repaired forwards stragglers instead of refusing them.
	if p.departed {
		if req.kind == kindReplicaFetch {
			// Exception: a tombstone still holds the replica sets it
			// accumulated as a holder, and for a dead source they are the
			// only surviving copy — the peer that absorbed the tombstone's
			// range never held them, so forwarding the fetch would answer
			// with an empty set and the dead range's data would be lost.
			c.respond(req, response{items: p.replicaFor(req.src).Items(), hops: req.hops})
			return
		}
		if !c.send(p.departTo, req) {
			c.refuse(p, req, ErrOwnerDown)
		}
		return
	}
	// A killed peer refuses everything else: its data is gone, and replicas
	// it pretended to accept would be silently lost.
	if !p.alive.Load() {
		c.refuse(p, req, ErrOwnerDown)
		return
	}
	// Requests touching a region whose items are still in flight are held
	// until the handoff lands; applyHandoff replays them.
	if p.touchesPending(req) {
		p.held = append(p.held, req)
		return
	}
	// Count data requests for the load meter: everything this peer serves
	// or forwards is work it performs (routing load included), which is
	// what the request-rate EWMA of Cluster.Loads reports. Counted after
	// the buffering check so a held request is tallied exactly once, when
	// its replay finally handles it — not once per buffer-and-replay round.
	//batonvet:ignore kindexhaustive partial filter by design: only data kinds feed the load meter
	switch req.kind {
	case kindGet, kindPut, kindDelete, kindRange, kindRangeScatter,
		kindBulkGet, kindBulkPut, kindBulkDelete, kindGetPred, kindRangePred:
		p.reqs.Add(1)
	}
	//batonvet:ignore kindexhaustive partial dispatch by design: control kinds returned above, singleton data kinds fall through to the owned-key switch below
	switch req.kind {
	case kindReplicate:
		c.applyReplicate(p, req)
		return
	case kindReplicaSync:
		c.applyReplicaSync(p, req)
		return
	case kindReplicaDrop:
		delete(p.replicas, req.src)
		return
	case kindReplicaResync:
		c.handleReplicaResync(p, req)
		return
	case kindReplicaFetch:
		c.respond(req, response{items: p.replicaFor(req.src).Items(), hops: req.hops})
		return
	case kindReplicaDump:
		c.handleReplicaDump(p, req)
		return
	case kindJoinLocate:
		c.handleJoinLocate(p, req)
		return
	case kindFindReplacement:
		c.handleFindReplacement(p, req)
		return
	case kindStats:
		c.respond(req, response{count: p.data.Len(), hops: req.hops})
		return
	case kindSplitKey:
		k, ok := p.data.KeyAtFraction(req.frac)
		c.respond(req, response{splitKey: k, found: ok, hops: req.hops})
		return
	case kindRange, kindRangePred:
		c.handleRange(p, req)
		return
	case kindRangeScatter:
		if p.rng.Contains(req.rng.Lower) || c.ownsExtreme(p, req.rng.Lower) {
			c.scatterAt(p, req.rng, req.hops, req.coll)
		} else {
			// The scatter was addressed with routing state that went stale
			// across a membership change: re-route it to the segment's
			// current owner like any exact query.
			c.forward(p, req)
		}
		return
	case kindBulkGet, kindBulkPut, kindBulkDelete:
		c.handleBulk(p, req)
		return
	}
	if p.rng.Contains(req.key) || c.ownsExtreme(p, req.key) {
		switch req.kind {
		case kindGet:
			v, ok := p.data.Get(req.key)
			c.respond(req, response{value: v, found: ok, hops: req.hops})
		case kindGetPred:
			// Pushdown: the predicate is evaluated here at the owner, so a
			// non-matching value never crosses the wire. Found reports
			// "present and matching" — the client asked a filtered question.
			v, ok := p.data.Get(req.key)
			if ok && !req.pred.Match(req.key, v) {
				v, ok = nil, false
			}
			c.respond(req, response{value: v, found: ok, hops: req.hops})
		case kindPut:
			p.data.Put(req.key, req.value)
			p.noteItems()
			c.replicateWrite(p, []store.Item{{Key: req.key, Value: req.value}}, nil)
			c.respond(req, response{hops: req.hops})
		case kindDelete:
			ok := p.data.Delete(req.key)
			if ok {
				p.noteItems()
				c.replicateWrite(p, nil, []keyspace.Key{req.key})
			}
			c.respond(req, response{found: ok, hops: req.hops})
		default:
			// Every kind that can reach the owner must answer here: a silent
			// return would leave the client blocked on its reply channel
			// forever. A kind added to the dispatch above but not to this
			// switch lands on this arm and fails loudly instead.
			c.refuse(p, req, fmt.Errorf("p2p: unhandled request kind %d at owning peer", req.kind))
		}
		return
	}
	if req.epoch != 0 {
		// A direct-routed request reached a peer that does not own its key.
		// Validate the tag against the live epoch to pick the recovery: a
		// tag from an older publication means the sender's ring was stale,
		// so the current ring is strictly newer information — re-aim the
		// request at the owner it names, one extra hop instead of a per-hop
		// walk. A current tag means the miss races an in-flight publication
		// (this peer's range moved before the new ring went out), so the
		// ring that just missed cannot help; fall through to classic
		// overlay forwarding. Either way the request degrades to a plain
		// overlay request (epoch cleared), so a second miss walks per-hop
		// and no re-aim loop is possible.
		t := c.topo.Load()
		stale := req.epoch != t.epoch
		req.epoch = 0
		p.met.StaleRoute()
		if stale {
			if e := t.entryOf(req.key); e != nil && e.p != p && e.p.alive.Load() && c.deliverTo(e.p, req, false) {
				return
			}
		}
	}
	c.forward(p, req)
}

// touchesPending reports whether the request reads or writes a key region
// this peer owns but has not yet received the items for.
func (p *peer) touchesPending(req request) bool {
	if len(p.pending) == 0 {
		return false
	}
	//batonvet:ignore kindexhaustive partial filter by design: only key- and range-addressed kinds can touch a pending region
	switch req.kind {
	case kindGet, kindPut, kindDelete, kindGetPred:
		for _, r := range p.pending {
			if r.Contains(req.key) {
				return true
			}
		}
	case kindRange, kindRangeScatter, kindRangePred:
		for _, r := range p.pending {
			if r.Intersects(req.rng) {
				return true
			}
		}
	case kindBulkGet, kindBulkPut, kindBulkDelete:
		for _, r := range p.pending {
			for _, it := range req.bulk {
				if r.Contains(it.Key) {
					return true
				}
			}
		}
	}
	return false
}

// ownsExtreme mirrors the simulator's rule that the leftmost and rightmost
// peers are responsible for keys outside the domain.
func (c *Cluster) ownsExtreme(p *peer, key keyspace.Key) bool {
	if key < p.rng.Lower && p.adjacent[0] == nil {
		return true
	}
	if key >= p.rng.Upper && p.adjacent[1] == nil {
		return true
	}
	return false
}

// forward applies the search_exact forwarding rule and fails over across the
// candidate list when targets are dead, avoiding peers the request has
// already visited unless no other alternative remains.
func (c *Cluster) forward(p *peer, req request) {
	if req.visited == nil {
		req.visited = make(map[core.PeerID]bool)
	}
	req.visited[p.id] = true
	cands := c.candidates(p, req.key)
	// If the peer responsible for the key is among the candidates but is
	// down, the data is unavailable: answer immediately instead of wandering
	// (the simulator applies the same rule).
	for _, cand := range cands {
		if cand != nil && cand.lower <= req.key && req.key < cand.upper && !c.Alive(cand.id) {
			c.suspect(cand.id)
			c.refuse(p, req, ErrOwnerDown)
			return
		}
	}
	for _, cand := range cands {
		if cand == nil || req.visited[cand.id] {
			continue
		}
		if c.send(cand.id, req) {
			return
		}
	}
	// Every unvisited candidate is dead: back out of the dead region through
	// an already-visited peer, chosen at random. A deterministic choice here
	// can bounce the request around the same closed orbit until the hop cap
	// even though a detour exists; randomising the escape makes the walk
	// ergodic, so with the generous hop cap the request finds any alive
	// route that exists.
	alive := cands[:0]
	for _, cand := range cands {
		if cand != nil && c.Alive(cand.id) {
			alive = append(alive, cand)
		}
	}
	for _, i := range rand.Perm(len(alive)) {
		if c.send(alive[i].id, req) {
			return
		}
	}
	c.refuse(p, req, ErrUnreachable)
}

// candidates lists forwarding targets for key at p, best first. The ordering
// mirrors core's hopCandidates exactly — the deterministic trace tests pin
// the live hop sequence against core.RoutePath at every fanout, so the two
// implementations must make identical choices on a healthy cluster: the
// farthest non-overshooting routing-table entry first, then the child
// subtree(s) on the key's side of the in-order chain and the adjacent link,
// then the parent, overshooting entries and the links towards the other side
// as fault-tolerance fallbacks.
func (c *Cluster) candidates(p *peer, key keyspace.Key) []*link {
	var out []*link
	last := len(p.children) - 1
	if key >= p.rng.Upper {
		rt := p.rt[1]
		for i := len(rt) - 1; i >= 0; i-- {
			if rt[i] != nil && rt[i].lower <= key {
				out = append(out, rt[i])
			}
		}
		// Only the last child subtree lies above p in the in-order chain.
		out = append(out, p.children[last], p.adjacent[1], p.parent)
		for i := len(rt) - 1; i >= 0; i-- {
			if rt[i] != nil && rt[i].lower > key {
				out = append(out, rt[i])
			}
		}
		for s := last - 1; s >= 0; s-- {
			out = append(out, p.children[s])
		}
		out = append(out, p.adjacent[0])
		out = append(out, p.rt[0]...)
	} else {
		rt := p.rt[0]
		for i := len(rt) - 1; i >= 0; i-- {
			if rt[i] != nil && rt[i].upper > key {
				out = append(out, rt[i])
			}
		}
		// Child subtrees in slots 0..last-1 all lie below p in the in-order
		// chain, nearest (highest slot) first.
		for s := last - 1; s >= 0; s-- {
			out = append(out, p.children[s])
		}
		out = append(out, p.adjacent[0], p.parent)
		for i := len(rt) - 1; i >= 0; i-- {
			if rt[i] != nil && rt[i].upper <= key {
				out = append(out, rt[i])
			}
		}
		out = append(out, p.children[last], p.adjacent[1])
		out = append(out, p.rt[1]...)
	}
	return out
}

// handleRange implements the two phases of a range query (Section IV-B):
// the request is first routed like an exact query towards the range's lower
// bound; once a peer responsible for it is reached, the range is answered
// either by the serial adjacent-chain walk below or by the parallel fan-out
// in range_fanout.go, depending on req.par.
func (c *Cluster) handleRange(p *peer, req request) {
	r := req.rng
	owns := p.rng.Contains(r.Lower) || c.ownsExtreme(p, r.Lower)
	if !owns {
		// Phase 1: still locating the peer responsible for the range's lower
		// bound (req.key == r.Lower). Stopping at any merely-intersecting
		// peer would skip the beginning of the range.
		c.forward(p, req)
		return
	}
	if req.par {
		// Phase 2, parallel: become the fan-out coordinator. A streaming
		// query (Cluster.RangeIter) built its collector client-side so the
		// channel-backed sink and the pushdown predicate travel with the
		// request; a materialising query's collector is created here.
		coll := req.coll
		if coll == nil {
			coll = &collector{reply: req.reply, pred: req.pred}
			if req.reply == nil && req.rcorr != 0 && c.net != nil {
				// The client sits on another node: the gathered answer goes
				// back over the wire to its correlation.
				coll.wire = &wireDest{n: c.net, node: req.rnode, corr: req.rcorr}
			}
			coll.grow(1)
		}
		c.scatterAt(p, r, req.hops, coll)
		return
	}
	// Phase 2, serial: collect locally and continue rightwards. The
	// accumulator is grown once per peer with a CountRange pre-pass
	// (store.ScanAppend) instead of appending an unsized Scan result; a
	// pushdown predicate is evaluated here so filtered-out items never
	// travel down the chain.
	if p.rng.Intersects(r) {
		if req.pred == nil {
			req.acc = p.data.ScanAppend(req.acc, r)
		} else {
			req.acc = scanFiltered(p.data, req.acc, r, req.pred)
		}
	}
	if lim := req.pred.LimitOrZero(); lim > 0 && len(req.acc) >= lim {
		// Limit-aware early termination: the pushdown limit is satisfied,
		// so answer now instead of walking the rest of the chain.
		c.respond(req, response{items: req.acc[:lim], hops: req.hops})
		return
	}
	next := p.adjacent[1]
	if next == nil || next.lower >= r.Upper {
		c.respond(req, response{items: req.acc, hops: req.hops})
		return
	}
	// Trim the still-uncovered part of the range so the next peer (whose
	// range starts exactly where this one ends) recognises itself as
	// responsible and keeps walking the chain instead of routing back.
	if p.rng.Upper > req.rng.Lower {
		req.rng.Lower = p.rng.Upper
		req.key = req.rng.Lower
	}
	if c.send(next.id, req) {
		return
	}
	// The right adjacent peer is dead: answer with what has been collected
	// so far and flag the dead link to the background repairer if one runs.
	c.suspect(next.id)
	c.respond(req, response{items: req.acc, hops: req.hops, err: ErrOwnerDown})
}
