// Package p2p runs a BATON overlay as a set of live, concurrently executing
// peers: every peer is a goroutine with an inbox, requests travel between
// peers as messages, and clients issue queries against any peer they know.
//
// The message-counting simulator in internal/core is what reproduces the
// paper's figures (operations there are serialised, exactly like the
// authors' simulator). This package is the deployment-shaped counterpart:
// it takes a snapshot of a core.Network — positions, ranges, links and data —
// and animates it, so that many exact-match, insert and range requests can
// be in flight at the same time, and so that peers can be killed while
// traffic is running to exercise the fault-tolerant routing of Section III-D
// under real concurrency. The goroutine-per-peer design is the natural Go
// rendering of "each node in the tree is maintained by a peer".
//
// Membership changes (join/leave/restructuring) are not re-implemented here;
// they are structural operations that the paper's protocol serialises around
// the affected peers anyway, and the simulator already covers them. A
// cluster is created from a core.Network at a point in time and serves data
// traffic from then on.
package p2p

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/store"
)

// Errors returned by cluster operations.
var (
	// ErrStopped is returned when the cluster has been shut down.
	ErrStopped = errors.New("p2p: cluster stopped")
	// ErrUnknownPeer is returned when a request names a peer that does not
	// exist in the cluster.
	ErrUnknownPeer = errors.New("p2p: unknown peer")
	// ErrUnreachable is returned when a request cannot make progress because
	// every useful link points at dead peers.
	ErrUnreachable = errors.New("p2p: no route to the responsible peer")
	// ErrOwnerDown is returned when the peer responsible for a key is dead.
	ErrOwnerDown = errors.New("p2p: responsible peer is down")
)

// kind enumerates request kinds.
type kind int

const (
	kindGet kind = iota
	kindPut
	kindDelete
	kindRange
)

// request is one message travelling through the overlay. Replies are
// delivered on the embedded channel so a client blocks only on its own
// request.
type request struct {
	kind  kind
	key   keyspace.Key
	value []byte
	rng   keyspace.Range
	hops  int
	acc   []store.Item // accumulated range results
	// visited records the peers this request has already passed through so
	// fail-over never loops; only one copy of the request is in flight at a
	// time, so the map is never accessed concurrently.
	visited map[core.PeerID]bool
	reply   chan response
}

// response is the terminal answer to a request.
type response struct {
	value []byte
	found bool
	items []store.Item
	hops  int
	err   error
}

// link is the information a peer keeps about another peer: enough to decide
// where to forward a request (the paper's links carry the target's range).
type link struct {
	id    core.PeerID
	lower keyspace.Key
	upper keyspace.Key
}

// peer is one live peer: a goroutine draining an inbox.
type peer struct {
	id    core.PeerID
	rng   keyspace.Range
	data  *store.Store
	inbox chan request

	parent   *link
	children [2]*link
	adjacent [2]*link
	rt       [2][]*link // sideways routing tables, [Left|Right]

	alive atomic.Bool
}

// Cluster is a set of live peers animating a BATON overlay.
type Cluster struct {
	peers   map[core.PeerID]*peer
	wg      sync.WaitGroup
	stopped atomic.Bool
	msgs    atomic.Int64
	hopCap  int
}

// NewCluster builds a live cluster from a snapshot of the given simulated
// network: every peer's position, range, links and stored items are copied
// and a goroutine is started per peer.
func NewCluster(nw *core.Network) *Cluster {
	c := &Cluster{peers: make(map[core.PeerID]*peer)}
	snapshot := core.Snapshot(nw)
	for _, ps := range snapshot {
		p := &peer{
			id:    ps.ID,
			rng:   ps.Range,
			data:  store.New(),
			inbox: make(chan request, 128),
		}
		p.data.Absorb(ps.Items)
		p.alive.Store(true)
		c.peers[p.id] = p
	}
	// Wire the links after all peers exist.
	toLink := func(id core.PeerID) *link {
		if id == core.NoPeer {
			return nil
		}
		t, ok := c.peers[id]
		if !ok {
			return nil
		}
		return &link{id: id, lower: t.rng.Lower, upper: t.rng.Upper}
	}
	for _, ps := range snapshot {
		p := c.peers[ps.ID]
		p.parent = toLink(ps.Parent)
		p.children[0] = toLink(ps.LeftChild)
		p.children[1] = toLink(ps.RightChild)
		p.adjacent[0] = toLink(ps.LeftAdjacent)
		p.adjacent[1] = toLink(ps.RightAdjacent)
		for _, id := range ps.LeftRouting {
			p.rt[0] = append(p.rt[0], toLink(id))
		}
		for _, id := range ps.RightRouting {
			p.rt[1] = append(p.rt[1], toLink(id))
		}
	}
	c.hopCap = 8 * (len(snapshot) + 4)
	for _, p := range c.peers {
		c.wg.Add(1)
		go c.serve(p)
	}
	return c
}

// Size returns the number of peers in the cluster (dead or alive).
func (c *Cluster) Size() int { return len(c.peers) }

// Messages returns the total number of peer-to-peer messages delivered.
func (c *Cluster) Messages() int64 { return c.msgs.Load() }

// PeerIDs returns all peer IDs.
func (c *Cluster) PeerIDs() []core.PeerID {
	out := make([]core.PeerID, 0, len(c.peers))
	for id := range c.peers {
		out = append(out, id)
	}
	return out
}

// Kill stops the given peer: its goroutine keeps draining the inbox (so
// senders never block) but every request delivered to it fails over to an
// alternative path at the sender, exactly like an unreachable address.
func (c *Cluster) Kill(id core.PeerID) error {
	p, ok := c.peers[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPeer, id)
	}
	p.alive.Store(false)
	return nil
}

// Alive reports whether the given peer is up.
func (c *Cluster) Alive(id core.PeerID) bool {
	p, ok := c.peers[id]
	return ok && p.alive.Load()
}

// Stop shuts the cluster down and waits for every peer goroutine to exit.
func (c *Cluster) Stop() {
	if c.stopped.Swap(true) {
		return
	}
	for _, p := range c.peers {
		close(p.inbox)
	}
	c.wg.Wait()
}

// send delivers a request to the peer with the given ID. It reports false
// when the target is dead or the cluster is stopped.
func (c *Cluster) send(to core.PeerID, req request) bool {
	if c.stopped.Load() {
		return false
	}
	p, ok := c.peers[to]
	if !ok || !p.alive.Load() {
		return false
	}
	c.msgs.Add(1)
	p.inbox <- req
	return true
}

// Get looks up key starting at peer via.
func (c *Cluster) Get(via core.PeerID, key keyspace.Key) ([]byte, bool, int, error) {
	resp, err := c.issue(via, request{kind: kindGet, key: key})
	if err != nil {
		return nil, false, 0, err
	}
	return resp.value, resp.found, resp.hops, resp.err
}

// Put stores value under key starting at peer via.
func (c *Cluster) Put(via core.PeerID, key keyspace.Key, value []byte) (int, error) {
	resp, err := c.issue(via, request{kind: kindPut, key: key, value: value})
	if err != nil {
		return 0, err
	}
	return resp.hops, resp.err
}

// Delete removes key starting at peer via, reporting whether it existed.
func (c *Cluster) Delete(via core.PeerID, key keyspace.Key) (bool, int, error) {
	resp, err := c.issue(via, request{kind: kindDelete, key: key})
	if err != nil {
		return false, 0, err
	}
	return resp.found, resp.hops, resp.err
}

// Range returns every stored item with a key in r, starting at peer via.
func (c *Cluster) Range(via core.PeerID, r keyspace.Range) ([]store.Item, int, error) {
	resp, err := c.issue(via, request{kind: kindRange, key: r.Lower, rng: r})
	if err != nil {
		return nil, 0, err
	}
	return resp.items, resp.hops, resp.err
}

func (c *Cluster) issue(via core.PeerID, req request) (response, error) {
	if c.stopped.Load() {
		return response{}, ErrStopped
	}
	if _, ok := c.peers[via]; !ok {
		return response{}, fmt.Errorf("%w: %d", ErrUnknownPeer, via)
	}
	req.reply = make(chan response, 1)
	if !c.send(via, req) {
		return response{}, fmt.Errorf("%w: %d", ErrOwnerDown, via)
	}
	return <-req.reply, nil
}

// serve is the peer goroutine: it drains the inbox and handles or forwards
// each request.
func (c *Cluster) serve(p *peer) {
	defer c.wg.Done()
	for req := range p.inbox {
		if !p.alive.Load() {
			// A dead peer never answers; the sender has already failed over.
			continue
		}
		c.handle(p, req)
	}
}

func (c *Cluster) handle(p *peer, req request) {
	req.hops++
	if req.hops > c.hopCap {
		req.reply <- response{hops: req.hops, err: ErrUnreachable}
		return
	}
	if req.kind == kindRange {
		c.handleRange(p, req)
		return
	}
	if p.rng.Contains(req.key) || c.ownsExtreme(p, req.key) {
		switch req.kind {
		case kindGet:
			v, ok := p.data.Get(req.key)
			req.reply <- response{value: v, found: ok, hops: req.hops}
		case kindPut:
			p.data.Put(req.key, req.value)
			req.reply <- response{hops: req.hops}
		case kindDelete:
			ok := p.data.Delete(req.key)
			req.reply <- response{found: ok, hops: req.hops}
		}
		return
	}
	c.forward(p, req)
}

// ownsExtreme mirrors the simulator's rule that the leftmost and rightmost
// peers are responsible for keys outside the domain.
func (c *Cluster) ownsExtreme(p *peer, key keyspace.Key) bool {
	if key < p.rng.Lower && p.adjacent[0] == nil {
		return true
	}
	if key >= p.rng.Upper && p.adjacent[1] == nil {
		return true
	}
	return false
}

// forward applies the search_exact forwarding rule and fails over across the
// candidate list when targets are dead, avoiding peers the request has
// already visited unless no other alternative remains.
func (c *Cluster) forward(p *peer, req request) {
	if req.visited == nil {
		req.visited = make(map[core.PeerID]bool)
	}
	req.visited[p.id] = true
	cands := c.candidates(p, req.key)
	// If the peer responsible for the key is among the candidates but is
	// down, the data is unavailable: answer immediately instead of wandering
	// (the simulator applies the same rule).
	for _, cand := range cands {
		if cand != nil && cand.lower <= req.key && req.key < cand.upper && !c.Alive(cand.id) {
			req.reply <- response{hops: req.hops, err: ErrOwnerDown}
			return
		}
	}
	for _, cand := range cands {
		if cand == nil || req.visited[cand.id] {
			continue
		}
		if c.send(cand.id, req) {
			return
		}
	}
	for _, cand := range cands {
		if cand == nil {
			continue
		}
		if c.send(cand.id, req) {
			return
		}
	}
	req.reply <- response{hops: req.hops, err: ErrUnreachable}
}

// candidates lists forwarding targets for key at p, best first: the farthest
// non-overshooting routing-table entry, then the child, adjacent and parent
// links, then the remaining links as fault-tolerance fallbacks.
func (c *Cluster) candidates(p *peer, key keyspace.Key) []*link {
	var out []*link
	if key >= p.rng.Upper {
		rt := p.rt[1]
		for i := len(rt) - 1; i >= 0; i-- {
			if rt[i] != nil && rt[i].lower <= key {
				out = append(out, rt[i])
			}
		}
		out = append(out, p.children[1], p.adjacent[1], p.parent, p.children[0], p.adjacent[0])
		for i := len(rt) - 1; i >= 0; i-- {
			if rt[i] != nil && rt[i].lower > key {
				out = append(out, rt[i])
			}
		}
	} else {
		rt := p.rt[0]
		for i := len(rt) - 1; i >= 0; i-- {
			if rt[i] != nil && rt[i].upper > key {
				out = append(out, rt[i])
			}
		}
		out = append(out, p.children[0], p.adjacent[0], p.parent, p.children[1], p.adjacent[1])
		for i := len(rt) - 1; i >= 0; i-- {
			if rt[i] != nil && rt[i].upper <= key {
				out = append(out, rt[i])
			}
		}
	}
	return out
}

// handleRange implements the two phases of a range query (Section IV-B):
// the request is first routed like an exact query towards the range's lower
// bound; once a peer responsible for it is reached, the request walks the
// right-adjacent chain collecting partial answers until the range is
// exhausted, and the accumulated items are returned to the client.
func (c *Cluster) handleRange(p *peer, req request) {
	r := req.rng
	owns := p.rng.Contains(r.Lower) || c.ownsExtreme(p, r.Lower)
	if !owns {
		// Phase 1: still locating the peer responsible for the range's lower
		// bound (req.key == r.Lower). Stopping at any merely-intersecting
		// peer would skip the beginning of the range.
		c.forward(p, req)
		return
	}
	// Phase 2: collect locally and continue rightwards.
	if p.rng.Intersects(r) {
		req.acc = append(req.acc, p.data.Scan(r)...)
	}
	next := p.adjacent[1]
	if next == nil || next.lower >= r.Upper {
		req.reply <- response{items: req.acc, hops: req.hops}
		return
	}
	// Trim the still-uncovered part of the range so the next peer (whose
	// range starts exactly where this one ends) recognises itself as
	// responsible and keeps walking the chain instead of routing back.
	if p.rng.Upper > req.rng.Lower {
		req.rng.Lower = p.rng.Upper
		req.key = req.rng.Lower
	}
	if c.send(next.id, req) {
		return
	}
	// The right adjacent peer is dead: answer with what has been collected
	// so far (a deployment would route around through the parent and repair).
	req.reply <- response{items: req.acc, hops: req.hops, err: ErrOwnerDown}
}
