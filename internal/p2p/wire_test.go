package p2p

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/query"
	"baton/internal/store"
)

// goldenRequests builds one representative request per kind — every field
// that kind puts on the wire populated with non-default values — so the
// round-trip test fails if an encoder or decoder forgets a field.
func goldenRequests() map[kind]request {
	items := []store.Item{{Key: 10, Value: []byte("ten")}, {Key: 20, Value: nil}, {Key: 30, Value: []byte{}}}
	visited := map[core.PeerID]bool{3: true, 9: true, 27: true}
	pred := &query.Pred{MinValueLen: 1, MaxValueLen: 64, Keys: []keyspace.Key{5, 7}, Limit: 12}
	st := &peerState{
		pos:      core.Position{Level: 3, Number: 5},
		rng:      keyspace.Range{Lower: 100, Upper: 200},
		parent:   &link{id: 1, lower: 0, upper: 1000},
		children: []*link{{id: 4, lower: 100, upper: 150}, nil},
		adjacent: [2]*link{{id: 2, lower: 50, upper: 100}, nil},
		rt: [2][]*link{
			{nil, {id: 8, lower: 10, upper: 50}},
			{{id: 16, lower: 200, upper: 400}},
		},
	}
	return map[kind]request{
		kindGet:    {kind: kindGet, key: 42, hops: 3, epoch: 7, visited: visited},
		kindPut:    {kind: kindPut, key: 43, value: []byte("v"), hops: 1, epoch: 9},
		kindDelete: {kind: kindDelete, key: 44, hops: 2, visited: map[core.PeerID]bool{1: true}},
		kindRange: {kind: kindRange, key: 50, rng: keyspace.Range{Lower: 50, Upper: 99},
			hops: 4, par: true, acc: items, visited: visited},
		kindRangeScatter: {kind: kindRangeScatter, key: 60, rng: keyspace.Range{Lower: 60, Upper: 80}, hops: 5},
		kindBulkGet:      {kind: kindBulkGet, bulk: items, hops: 1},
		kindBulkPut:      {kind: kindBulkPut, bulk: items, hops: 1},
		kindBulkDelete:   {kind: kindBulkDelete, bulk: []store.Item{{Key: 77}}, hops: 2},
		kindJoinLocate:   {kind: kindJoinLocate, key: 3, hops: 6, visited: visited},
		kindFindReplacement: {kind: kindFindReplacement, key: 4, hops: 7,
			visited: map[core.PeerID]bool{12: true}},
		kindUpdate: {kind: kindUpdate, state: st, gains: []keyspace.Range{{Lower: 1, Upper: 2}},
			moves: []handoffMove{{region: keyspace.Range{Lower: 5, Upper: 9}, dst: 31,
				dstNode: 2, ackCorr: 99, ackNode: 1}}, departTo: 8, hops: 1},
		kindHandoff:       {kind: kindHandoff, rng: keyspace.Range{Lower: 5, Upper: 9}, bulk: items, hops: 2},
		kindSnapshot:      {kind: kindSnapshot, hops: 1},
		kindStats:         {kind: kindStats, hops: 1},
		kindSplitKey:      {kind: kindSplitKey, frac: 0.375, hops: 1},
		kindCrash:         {kind: kindCrash, hops: 1},
		kindReplicate:     {kind: kindReplicate, src: 6, bulk: items, dels: []keyspace.Key{1, 2}, seq: 42, hops: 1},
		kindReplicaSync:   {kind: kindReplicaSync, src: 6, bulk: items, seq: 43, hops: 1},
		kindReplicaDrop:   {kind: kindReplicaDrop, src: 6, hops: 1},
		kindReplicaResync: {kind: kindReplicaResync, hops: 1},
		kindReplicaFetch:  {kind: kindReplicaFetch, src: 7, hops: 1},
		kindReplicaDump:   {kind: kindReplicaDump, hops: 1},
		kindGetPred:       {kind: kindGetPred, key: 45, hops: 1, epoch: 3, pred: pred, visited: visited},
		kindRangePred: {kind: kindRangePred, key: 51, rng: keyspace.Range{Lower: 51, Upper: 90},
			hops: 2, acc: items, pred: pred},
	}
}

// TestWireRequestRoundTripEveryKind is the golden harness: every kind must
// have a golden request, and each must survive encode→decode unchanged in
// every wire-travelling field.
func TestWireRequestRoundTripEveryKind(t *testing.T) {
	golden := goldenRequests()
	for k := 0; k < numKinds; k++ {
		req, ok := golden[kind(k)]
		if !ok {
			t.Fatalf("no golden request for kind %v — add one when adding a kind", kind(k))
		}
		payload := encodeRequest(nil, &req)
		got, err := decodeRequest(payload)
		if err != nil {
			t.Fatalf("%v: decode: %v", kind(k), err)
		}
		// Normalise: decode never materialises empty containers.
		want := req
		if len(want.visited) == 0 {
			want.visited = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: round-trip mismatch\n got %+v\nwant %+v", kind(k), got, want)
		}
	}
}

func TestWireResponseRoundTrip(t *testing.T) {
	items := []store.Item{{Key: 1, Value: []byte("a")}, {Key: 2, Value: nil}}
	snap := &core.PeerSnapshot{
		ID: 4, Position: core.Position{Level: 2, Number: 3},
		Range: keyspace.Range{Lower: 10, Upper: 20}, Items: items,
		Parent: 1, LeftChild: 8, RightChild: 9, MidChildren: []core.PeerID{11},
		LeftAdjacent: 3, RightAdjacent: 5,
		LeftRouting:  []core.PeerID{2, core.NoPeer},
		RightRouting: []core.PeerID{6},
	}
	cases := []response{
		{},
		{value: []byte("v"), found: true, hops: 3},
		{value: []byte{}, hops: 1}, // empty ≠ nil must survive
		{items: items, hops: 9, err: ErrOwnerDown},
		{results: []BulkResult{
			{Key: 1, Value: []byte("x"), Found: true},
			{Key: 2, Err: errMoved},
			{Key: 3, Err: errors.New("custom failure")},
		}, hops: 2},
		{peerID: 77, slot: 2, hops: 4},
		{snap: snap, hops: 1},
		{count: 123, splitKey: 456, found: true, hops: 1},
		{replicaSets: map[core.PeerID][]store.Item{5: items, 6: nil}, hops: 2},
		{err: ErrUnreachable}, {err: ErrStopped}, {err: ErrUnknownPeer},
		{err: ErrReplicaLost}, {err: fmt.Errorf("wrapped: %w", ErrOwnerDown)},
	}
	for i, want := range cases {
		payload := encodeResponse(nil, &want)
		got, err := decodeResponse(payload)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !responsesEqual(got, want) {
			t.Errorf("case %d: round-trip mismatch\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// responsesEqual compares responses field by field, comparing errors by
// sentinel identity / message (a wrapped sentinel arrives as the bare
// sentinel — the part that must survive for errors.Is at the caller).
func responsesEqual(a, b response) bool {
	if !errsEqual(a.err, b.err) {
		return false
	}
	if len(a.results) != len(b.results) {
		return false
	}
	for i := range a.results {
		x, y := a.results[i], b.results[i]
		if x.Key != y.Key || x.Found != y.Found || !bytesEqualNil(x.Value, y.Value) || !errsEqual(x.Err, y.Err) {
			return false
		}
	}
	a.err, b.err = nil, nil
	a.results, b.results = nil, nil
	return reflect.DeepEqual(a, b)
}

func errsEqual(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	for _, sentinel := range []error{ErrStopped, ErrUnknownPeer, ErrUnreachable, ErrOwnerDown, errMoved, ErrReplicaLost} {
		if errors.Is(b, sentinel) {
			return errors.Is(a, sentinel)
		}
	}
	return a.Error() == b.Error()
}

func bytesEqualNil(a, b []byte) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return string(a) == string(b)
}

// TestWireErrorMappingSurvivesWrapping pins the sentinel contract: a
// wrapped sentinel crossing the wire still satisfies errors.Is at the
// receiving client, which is what keeps retry/fail-over layers working
// unchanged over TCP.
func TestWireErrorMappingSurvivesWrapping(t *testing.T) {
	wrapped := fmt.Errorf("%w: peer 12", ErrOwnerDown)
	got, err := decodeResponse(encodeResponse(nil, &response{err: wrapped}))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got.err, ErrOwnerDown) {
		t.Fatalf("ErrOwnerDown lost in transit: %v", got.err)
	}
}

func TestWireDecodeRejectsUnknownKind(t *testing.T) {
	payload := encodeRequest(nil, &request{kind: kindGet, key: 1})
	payload[0] = byte(numKinds + 5)
	if _, err := decodeRequest(payload); err == nil {
		t.Fatal("unknown kind decoded successfully")
	}
}

func TestWireDecodeRejectsTrailingGarbage(t *testing.T) {
	payload := encodeRequest(nil, &request{kind: kindGet, key: 1})
	payload = append(payload, 0xFF)
	if _, err := decodeRequest(payload); err == nil {
		t.Fatal("trailing garbage decoded successfully")
	}
}

// FuzzDecodeRequest hammers the request decoder with malformed payloads:
// it must return an error or a request — never panic — and a round-trip of
// anything it accepts must be stable (encode(decode(p)) decodes equal).
func FuzzDecodeRequest(f *testing.F) {
	for _, req := range goldenRequests() {
		f.Add(encodeRequest(nil, &req))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeRequest(data)
		if err != nil {
			return
		}
		re := encodeRequest(nil, &req)
		req2, err := decodeRequest(re)
		if err != nil {
			t.Fatalf("re-decode of accepted payload failed: %v", err)
		}
		// Compare the re-encoded bytes, not the structs: frac may be NaN
		// (NaN != NaN defeats DeepEqual) but its bits must be stable.
		if re2 := encodeRequest(nil, &req2); !bytesEqualNil(re, re2) {
			t.Fatalf("unstable round-trip:\n first %x\nsecond %x", re, re2)
		}
	})
}

// FuzzDecodeResponse is the response-side twin.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(encodeResponse(nil, &response{value: []byte("v"), found: true, hops: 1}))
	f.Add(encodeResponse(nil, &response{err: ErrOwnerDown, items: []store.Item{{Key: 1}}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := decodeResponse(data)
		if err != nil {
			return
		}
		if _, err := decodeResponse(encodeResponse(nil, &resp)); err != nil {
			t.Fatalf("re-decode of accepted payload failed: %v", err)
		}
	})
}
