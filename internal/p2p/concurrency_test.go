package p2p

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/store"
)

// withTimeout fails the test if fn does not return within d — the guard the
// liveness regressions below rely on: a hang must become a test failure,
// not a stuck CI job.
func withTimeout(t *testing.T, d time.Duration, name string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("%s did not finish within %v (liveness bug: client hangs)", name, d)
	}
}

// TestKilledPeerAnswersQueuedRequests is the regression test for the
// dead-peer request drop: a request already sitting in a peer's inbox when
// the peer is killed must be answered with ErrOwnerDown, not silently
// discarded (which left the client blocked on req.reply forever).
func TestKilledPeerAnswersQueuedRequests(t *testing.T) {
	c, keys := liveCluster(t, 30, 100, 21)
	ids := c.PeerIDs()
	victim := c.peerByID(ids[0])

	// Kill the victim first, then deliver a request straight into its inbox,
	// bypassing send's aliveness check — exactly the state a request is in
	// when it was queued a moment before Kill.
	if err := c.Kill(victim.id); err != nil {
		t.Fatal(err)
	}
	req := request{kind: kindGet, key: keys[0], reply: make(chan response, 1)}
	victim.inbox <- req

	withTimeout(t, 5*time.Second, "queued request at killed peer", func() {
		resp := <-req.reply
		if !errors.Is(resp.err, ErrOwnerDown) {
			t.Errorf("queued request at killed peer: err = %v, want ErrOwnerDown", resp.err)
		}
	})
}

// TestQueuedScatterAtKilledPeerDoesNotHang checks the same liveness
// property for the collector path: a parallel range query whose scatter
// sub-request lands on a freshly killed peer must still complete (with a
// partial answer and ErrOwnerDown), because the refusal feeds the collector.
func TestQueuedScatterAtKilledPeerDoesNotHang(t *testing.T) {
	c, _ := liveCluster(t, 30, 300, 23)
	ids := c.PeerIDs()
	victim := c.peerByID(ids[0])
	if err := c.Kill(victim.id); err != nil {
		t.Fatal(err)
	}
	coll := &collector{reply: make(chan response, 1)}
	coll.grow(1)
	victim.inbox <- request{kind: kindRangeScatter, rng: victim.rng, coll: coll}
	withTimeout(t, 5*time.Second, "scatter at killed peer", func() {
		resp := <-coll.reply
		if !errors.Is(resp.err, ErrOwnerDown) {
			t.Errorf("scatter at killed peer: err = %v, want ErrOwnerDown", resp.err)
		}
	})
}

// TestStopWithConcurrentTraffic is the regression test for the Stop/send
// race: Stop used to close every inbox while concurrent sends were
// delivering, panicking the whole process. Shutdown is now broadcast on a
// done channel, so hammering the cluster while stopping it must neither
// panic nor leave any client blocked.
func TestStopWithConcurrentTraffic(t *testing.T) {
	c, keys := liveCluster(t, 60, 600, 29)
	ids := c.PeerIDs()
	const workers = 24
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			<-start
			for i := 0; ; i++ {
				via := ids[rng.Intn(len(ids))]
				var err error
				switch i % 4 {
				case 0:
					_, _, _, err = c.Get(via, keys[rng.Intn(len(keys))])
				case 1:
					_, err = c.Put(via, keyspace.Key(1+rng.Int63n(999_999_998)), []byte("x"))
				case 2:
					lo := keyspace.Key(1 + rng.Int63n(900_000_000))
					_, _, err = c.Range(via, keyspace.NewRange(lo, lo+50_000_000))
				case 3:
					_, err = c.BulkGet([]keyspace.Key{keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]})
				}
				if errors.Is(err, ErrStopped) {
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(2 * time.Millisecond) // let traffic build up in the inboxes
	c.Stop()
	withTimeout(t, 10*time.Second, "clients racing Stop", wg.Wait)
}

// TestChurnUnderLoad kills peers continuously while many goroutines issue
// every kind of operation, including mixed parallel/serial ranges and bulk
// batches. Errors (ErrOwnerDown, ErrUnreachable) are expected — hangs and
// races are not. Run with -race.
func TestChurnUnderLoad(t *testing.T) {
	c, keys := liveCluster(t, 120, 1200, 31)
	ids := c.PeerIDs()
	const workers = 16
	const perWorker = 120
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perWorker; i++ {
				via := ids[rng.Intn(len(ids))]
				switch i % 5 {
				case 0:
					c.Get(via, keys[rng.Intn(len(keys))])
				case 1:
					c.Put(via, keyspace.Key(1+rng.Int63n(999_999_998)), []byte("w"))
				case 2:
					lo := keyspace.Key(1 + rng.Int63n(800_000_000))
					c.Range(via, keyspace.NewRange(lo, lo+100_000_000))
				case 3:
					lo := keyspace.Key(1 + rng.Int63n(800_000_000))
					c.RangeSerial(via, keyspace.NewRange(lo, lo+20_000_000))
				case 4:
					batch := make([]store.Item, 8)
					for j := range batch {
						batch[j] = store.Item{Key: keys[rng.Intn(len(keys))], Value: []byte("b")}
					}
					c.BulkPut(batch)
				}
			}
		}(w)
	}
	// Kill a third of the cluster while the traffic runs.
	killer := rand.New(rand.NewSource(77))
	for k := 0; k < 40; k++ {
		c.Kill(ids[killer.Intn(len(ids))])
	}
	withTimeout(t, 30*time.Second, "traffic under churn", wg.Wait)
}

// TestRangeParallelMatchesSerial checks that the fan-out and the
// adjacent-chain walk return exactly the same answer on a healthy cluster,
// across range widths from a single peer to (nearly) the whole domain.
func TestRangeParallelMatchesSerial(t *testing.T) {
	c, keys := liveCluster(t, 90, 900, 37)
	ids := c.PeerIDs()
	rng := rand.New(rand.NewSource(41))
	widths := []int64{1_000, 5_000_000, 80_000_000, 400_000_000, 998_000_000}
	for _, w := range widths {
		lo := keyspace.Key(1 + rng.Int63n(999_999_999-w))
		r := keyspace.NewRange(lo, lo+keyspace.Key(w))
		serial, serialHops, err := c.RangeSerial(ids[rng.Intn(len(ids))], r)
		if err != nil {
			t.Fatalf("serial range %v: %v", r, err)
		}
		par, parHops, err := c.Range(ids[rng.Intn(len(ids))], r)
		if err != nil {
			t.Fatalf("parallel range %v: %v", r, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("range %v: parallel returned %d items, serial %d", r, len(par), len(serial))
		}
		for i := range par {
			if par[i].Key != serial[i].Key {
				t.Fatalf("range %v: item %d differs: parallel %d vs serial %d", r, i, par[i].Key, serial[i].Key)
			}
		}
		want := 0
		for _, k := range keys {
			if r.Contains(k) {
				want++
			}
		}
		if len(par) != want {
			t.Fatalf("range %v: got %d items, want %d", r, len(par), want)
		}
		if parHops <= 0 || serialHops <= 0 {
			t.Fatalf("range %v: non-positive hop counts %d/%d", r, parHops, serialHops)
		}
	}
}

// TestRangeParallelShorterCriticalPath checks the point of the fan-out: on
// a wide range over a large cluster, the longest message chain of the
// parallel query must be much shorter than the serial walk's chain.
func TestRangeParallelShorterCriticalPath(t *testing.T) {
	c, _ := liveCluster(t, 256, 1000, 43)
	ids := c.PeerIDs()
	r := keyspace.NewRange(100_000_000, 700_000_000) // ~60% of the domain
	_, serialHops, err := c.RangeSerial(ids[0], r)
	if err != nil {
		t.Fatal(err)
	}
	_, parHops, err := c.Range(ids[0], r)
	if err != nil {
		t.Fatal(err)
	}
	if parHops*2 >= serialHops {
		t.Fatalf("parallel critical path %d not substantially shorter than serial %d", parHops, serialHops)
	}
}

// TestBulkOps round-trips a batch through BulkPut, BulkGet and BulkDelete
// and checks ordering, found flags and the message amortisation.
func TestBulkOps(t *testing.T) {
	c, _ := liveCluster(t, 64, 0, 47)
	rng := rand.New(rand.NewSource(53))
	items := make([]store.Item, 500)
	for i := range items {
		items[i] = store.Item{
			Key:   keyspace.Key(1 + rng.Int63n(999_999_998)),
			Value: []byte(fmt.Sprintf("v%d", i)),
		}
	}
	before := c.Messages()
	res, err := c.BulkPut(items)
	if err != nil {
		t.Fatal(err)
	}
	putMsgs := c.Messages() - before
	if putMsgs > int64(c.Size()) {
		t.Fatalf("bulk put of %d items cost %d messages; want at most one per peer (%d)", len(items), putMsgs, c.Size())
	}
	for i, r := range res {
		if r.Err != nil || r.Key != items[i].Key {
			t.Fatalf("bulk put result %d: %+v", i, r)
		}
	}

	keys := make([]keyspace.Key, len(items))
	for i, it := range items {
		keys[i] = it.Key
	}
	got, err := c.BulkGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.Err != nil || !r.Found || r.Key != keys[i] {
			t.Fatalf("bulk get result %d: %+v", i, r)
		}
		// Duplicate keys keep the last written value; any written value is
		// acceptable there, so only check uniques strictly.
	}
	// Spot-check values through the routed single-key path.
	for i := 0; i < 20; i++ {
		j := rng.Intn(len(items))
		v, ok, _, err := c.Get(c.PeerIDs()[0], items[j].Key)
		if err != nil || !ok {
			t.Fatalf("routed get after bulk put: %v %v", ok, err)
		}
		_ = v
	}

	del, err := c.BulkDelete(keys)
	if err != nil {
		t.Fatal(err)
	}
	deleted := 0
	for _, r := range del {
		if r.Err != nil {
			t.Fatalf("bulk delete: %+v", r)
		}
		if r.Found {
			deleted++
		}
	}
	// Duplicated keys are deleted once; everything unique must be found.
	uniq := map[keyspace.Key]bool{}
	for _, k := range keys {
		uniq[k] = true
	}
	if deleted != len(uniq) {
		t.Fatalf("bulk delete found %d keys, want %d", deleted, len(uniq))
	}
	after, err := c.BulkGet(keys[:50])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range after {
		if r.Found {
			t.Fatalf("key %d still present after bulk delete", r.Key)
		}
	}
}

// TestBulkGetDeadOwner checks that a bulk operation over a dead owner's
// keys fails only those keys, and does so promptly.
func TestBulkGetDeadOwner(t *testing.T) {
	c, _ := liveCluster(t, 40, 0, 59)
	ids := c.PeerIDs()
	victim := c.peerByID(ids[0])
	inside := victim.rng.Lower // owned by the victim
	var outside keyspace.Key
	for _, e := range c.topo.Load().ring {
		p := e.p
		if p.id != victim.id {
			outside = p.rng.Lower
			break
		}
	}
	if err := c.Kill(victim.id); err != nil {
		t.Fatal(err)
	}
	withTimeout(t, 5*time.Second, "bulk get with dead owner", func() {
		res, err := c.BulkGet([]keyspace.Key{inside, outside})
		if err != nil {
			t.Errorf("bulk get: %v", err)
			return
		}
		if !errors.Is(res[0].Err, ErrOwnerDown) {
			t.Errorf("key on dead peer: err = %v, want ErrOwnerDown", res[0].Err)
		}
		if res[1].Err != nil {
			t.Errorf("key on live peer: err = %v, want nil", res[1].Err)
		}
	})
}

// TestOwnerOf cross-checks the bulk router's binary search against the
// peers' actual ranges, including the out-of-domain extremes.
func TestOwnerOf(t *testing.T) {
	c, _ := liveCluster(t, 50, 0, 61)
	rng := rand.New(rand.NewSource(67))
	for i := 0; i < 2000; i++ {
		k := keyspace.Key(1 + rng.Int63n(999_999_998))
		p := c.ownerOf(k)
		if p == nil || !p.rng.Contains(k) {
			t.Fatalf("ownerOf(%d) = %v", k, p)
		}
	}
	if p := c.ownerOf(keyspace.DomainMin - 5); p == nil || p.adjacent[0] != nil {
		t.Fatal("ownerOf below the domain should be the leftmost peer")
	}
	if p := c.ownerOf(keyspace.DomainMax + 5); p == nil || p.adjacent[1] != nil {
		t.Fatal("ownerOf above the domain should be the rightmost peer")
	}
}

// TestBulkAfterStop checks the whole-call error path.
func TestBulkAfterStop(t *testing.T) {
	c, _ := liveCluster(t, 10, 0, 71)
	c.Stop()
	if _, err := c.BulkGet([]keyspace.Key{1, 2}); !errors.Is(err, ErrStopped) {
		t.Fatalf("bulk get after stop: %v, want ErrStopped", err)
	}
	if _, _, err := c.Range(c.PeerIDs()[0], keyspace.NewRange(1, 100)); !errors.Is(err, ErrStopped) {
		t.Fatalf("range after stop: %v, want ErrStopped", err)
	}
}

// TestRangeAcrossKilledPeerIsPartial checks the fan-out's dead-branch
// behaviour: the answer contains everything the live peers hold and carries
// ErrOwnerDown for the dead gap, same contract as the serial walk.
func TestRangeAcrossKilledPeerIsPartial(t *testing.T) {
	c, keys := liveCluster(t, 80, 800, 73)
	ids := c.PeerIDs()
	// Kill one mid-domain peer.
	var victim *peer
	for _, e := range c.topo.Load().ring {
		p := e.p
		if p.rng.Contains(500_000_000) {
			victim = p
			break
		}
	}
	if victim == nil {
		t.Fatal("no peer owns the domain midpoint")
	}
	if err := c.Kill(victim.id); err != nil {
		t.Fatal(err)
	}
	r := keyspace.NewRange(300_000_000, 700_000_000)
	var via core.PeerID
	for _, id := range ids {
		if id != victim.id {
			via = id
			break
		}
	}
	withTimeout(t, 10*time.Second, "range across killed peer", func() {
		items, _, err := c.Range(via, r)
		if err == nil {
			// The coordinator may route around the dead peer entirely only if
			// the victim owned no part of the range — it does here, so an
			// error is required.
			t.Error("range across a killed peer should report ErrOwnerDown")
			return
		}
		if !errors.Is(err, ErrOwnerDown) {
			t.Errorf("range across killed peer: err = %v, want ErrOwnerDown", err)
		}
		got := map[keyspace.Key]bool{}
		for _, it := range items {
			if !r.Contains(it.Key) {
				t.Errorf("item %d outside the query range", it.Key)
				return
			}
			if victim.rng.Contains(it.Key) {
				t.Errorf("item %d from the killed peer in the answer", it.Key)
				return
			}
			got[it.Key] = true
		}
		// A dead peer loses its whole scatter segment, but everything below
		// its range is covered by segments whose owners are alive, so those
		// keys must all be present (the serial walk guarantees the same
		// prefix and nothing more).
		for _, k := range keys {
			if r.Contains(k) && k < victim.rng.Lower && !got[k] {
				t.Errorf("live key %d below the dead peer missing from partial answer", k)
				return
			}
		}
	})
}

// TestManyClientsSmallCluster floods a tiny cluster with far more
// concurrent clients than any inbox can hold. Peer-originated sends must
// never block on a neighbour's full inbox (that cycle deadlocks the whole
// overlay), so every client has to finish.
func TestManyClientsSmallCluster(t *testing.T) {
	c, keys := liveCluster(t, 6, 200, 79)
	ids := c.PeerIDs()
	const workers = 600
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 8; i++ {
				via := ids[rng.Intn(len(ids))]
				switch i % 2 {
				case 0:
					if _, _, _, err := c.Get(via, keys[rng.Intn(len(keys))]); err != nil {
						t.Errorf("get: %v", err)
						return
					}
				case 1:
					lo := keyspace.Key(1 + rng.Int63n(500_000_000))
					if _, _, err := c.Range(via, keyspace.NewRange(lo, lo+400_000_000)); err != nil {
						t.Errorf("range: %v", err)
						return
					}
				}
			}
		}(w)
	}
	withTimeout(t, 60*time.Second, "600 clients on a 6-peer cluster", wg.Wait)
}
