package p2p

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"baton/internal/core"
	"baton/internal/keyspace"
)

// liveCluster builds a simulated network, loads it with data, and animates
// it into a live cluster. It returns the cluster and the inserted keys.
func liveCluster(t testing.TB, peers, items int, seed int64) (*Cluster, []keyspace.Key) {
	t.Helper()
	nw := core.NewNetwork(core.Config{Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	for nw.Size() < peers {
		ids := nw.PeerIDs()
		if _, _, err := nw.Join(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([]keyspace.Key, 0, items)
	for i := 0; i < items; i++ {
		k := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-keyspace.DomainMin)))
		keys = append(keys, k)
		if _, err := nw.Insert(nw.RandomPeer(), k, []byte(fmt.Sprint(k))); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCluster(nw)
	t.Cleanup(c.Stop)
	return c, keys
}

func TestClusterGetPut(t *testing.T) {
	c, keys := liveCluster(t, 80, 400, 1)
	if c.Size() != 80 {
		t.Fatalf("cluster size = %d", c.Size())
	}
	ids := c.PeerIDs()
	rng := rand.New(rand.NewSource(2))
	for _, k := range keys {
		via := ids[rng.Intn(len(ids))]
		v, found, hops, err := c.Get(via, k)
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if !found || string(v) != fmt.Sprint(k) {
			t.Fatalf("get %d: found=%v value=%q", k, found, v)
		}
		if hops > 40 {
			t.Fatalf("get %d took %d hops", k, hops)
		}
	}
	// Put a fresh key and read it back through a different peer.
	if _, err := c.Put(ids[0], 123_456, []byte("x")); err != nil {
		t.Fatal(err)
	}
	v, found, _, err := c.Get(ids[len(ids)-1], 123_456)
	if err != nil || !found || string(v) != "x" {
		t.Fatalf("round trip failed: %q %v %v", v, found, err)
	}
	// Delete it again.
	existed, _, err := c.Delete(ids[1], 123_456)
	if err != nil || !existed {
		t.Fatalf("delete failed: %v %v", existed, err)
	}
	_, found, _, _ = c.Get(ids[2], 123_456)
	if found {
		t.Fatal("key still present after delete")
	}
	if c.Messages() == 0 {
		t.Fatal("no messages counted")
	}
}

func TestClusterRange(t *testing.T) {
	c, keys := liveCluster(t, 60, 800, 3)
	ids := c.PeerIDs()
	r := keyspace.NewRange(200_000_000, 500_000_000)
	items, hops, err := c.Range(ids[0], r)
	if err != nil {
		t.Fatal(err)
	}
	want := map[keyspace.Key]bool{}
	for _, k := range keys {
		if r.Contains(k) {
			want[k] = true
		}
	}
	got := map[keyspace.Key]bool{}
	for _, it := range items {
		if !r.Contains(it.Key) {
			t.Fatalf("item %d outside query range", it.Key)
		}
		got[it.Key] = true
	}
	if len(got) != len(want) {
		t.Fatalf("range query returned %d distinct keys, want %d", len(got), len(want))
	}
	if hops == 0 {
		t.Fatal("range query should take hops")
	}
}

func TestClusterConcurrentTraffic(t *testing.T) {
	c, keys := liveCluster(t, 100, 1000, 5)
	ids := c.PeerIDs()
	const workers = 16
	const perWorker = 100
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				via := ids[rng.Intn(len(ids))]
				switch i % 3 {
				case 0:
					k := keys[rng.Intn(len(keys))]
					if _, found, _, err := c.Get(via, k); err != nil || !found {
						errs <- fmt.Errorf("worker %d get %d: found=%v err=%v", w, k, found, err)
						return
					}
				case 1:
					k := keyspace.Key(1 + rng.Int63n(999_999_998))
					if _, err := c.Put(via, k, []byte("w")); err != nil {
						errs <- fmt.Errorf("worker %d put: %v", w, err)
						return
					}
				case 2:
					lo := keyspace.Key(1 + rng.Int63n(900_000_000))
					if _, _, err := c.Range(via, keyspace.NewRange(lo, lo+1_000_000)); err != nil {
						errs <- fmt.Errorf("worker %d range: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClusterRoutesAroundKilledPeers(t *testing.T) {
	c, keys := liveCluster(t, 120, 1200, 7)
	ids := c.PeerIDs()
	rng := rand.New(rand.NewSource(11))

	// Kill 12 peers and remember which keys they owned (those become
	// unavailable; everything else must still be reachable).
	killed := map[core.PeerID]bool{}
	for len(killed) < 12 {
		id := ids[rng.Intn(len(ids))]
		if killed[id] {
			continue
		}
		if err := c.Kill(id); err != nil {
			t.Fatal(err)
		}
		killed[id] = true
	}
	if c.Alive(ids[0]) == killed[ids[0]] {
		t.Fatal("Alive disagrees with Kill")
	}

	deadRanges := []keyspace.Range{}
	for id := range killed {
		deadRanges = append(deadRanges, c.peerByID(id).rng)
	}
	onDeadPeer := func(k keyspace.Key) bool {
		for _, r := range deadRanges {
			if r.Contains(k) {
				return true
			}
		}
		return false
	}

	liveVia := func() core.PeerID {
		for {
			id := ids[rng.Intn(len(ids))]
			if !killed[id] {
				return id
			}
		}
	}
	// Failures can partition the alive link graph (e.g. a leaf whose parent,
	// adjacents and routing entries all died is fully cut off), and no
	// routing protocol can cross a partition. The property the overlay does
	// guarantee — and the one this test asserts — is that every query whose
	// via and owner sit in the same alive component succeeds; across a
	// partition it must fail fast with an error rather than hang.
	component := aliveComponent(c, killed)
	checked := 0
	for _, k := range keys {
		if onDeadPeer(k) {
			continue
		}
		via := liveVia()
		owner := c.ownerOf(k)
		_, found, _, err := c.Get(via, k)
		if component[via] != component[owner.id] {
			if err == nil {
				t.Fatalf("get %d crossed a partition (via %d, owner %d)", k, via, owner.id)
			}
			continue
		}
		if err != nil {
			t.Fatalf("get %d with failures (via %d and owner %d connected): %v", k, via, owner.id, err)
		}
		if !found {
			t.Fatalf("key %d on a live peer not found while routing around failures", k)
		}
		checked++
		if checked >= 300 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("test vacuous: all sampled keys were on killed peers")
	}

	// Requests issued via a killed peer fail fast.
	for id := range killed {
		if _, _, _, err := c.Get(id, keys[0]); err == nil {
			t.Fatal("request via a killed peer should fail")
		}
		break
	}
}

func TestClusterStop(t *testing.T) {
	c, _ := liveCluster(t, 20, 50, 13)
	c.Stop()
	if _, _, _, err := c.Get(c.PeerIDs()[0], 1); err != ErrStopped {
		t.Fatalf("expected ErrStopped, got %v", err)
	}
	// Stopping twice is harmless.
	c.Stop()
}

func TestClusterUnknownPeer(t *testing.T) {
	c, _ := liveCluster(t, 10, 20, 17)
	if _, _, _, err := c.Get(core.PeerID(9999), 1); err == nil {
		t.Fatal("unknown peer should error")
	}
	if err := c.Kill(core.PeerID(9999)); err == nil {
		t.Fatal("killing an unknown peer should error")
	}
}

// aliveComponent labels each alive peer with its connected component in the
// link graph restricted to alive peers (union of parent, child, adjacent and
// routing-table links, which are symmetric in BATON).
func aliveComponent(c *Cluster, killed map[core.PeerID]bool) map[core.PeerID]int {
	comp := map[core.PeerID]int{}
	next := 0
	for id := range c.topo.Load().peers {
		if killed[id] {
			continue
		}
		if _, seen := comp[id]; seen {
			continue
		}
		next++
		queue := []core.PeerID{id}
		comp[id] = next
		for len(queue) > 0 {
			p := c.peerByID(queue[0])
			queue = queue[1:]
			links := []*link{p.parent, p.children[0], p.children[1], p.adjacent[0], p.adjacent[1]}
			links = append(links, p.rt[0]...)
			links = append(links, p.rt[1]...)
			for _, l := range links {
				if l == nil || killed[l.id] {
					continue
				}
				if _, seen := comp[l.id]; !seen {
					comp[l.id] = next
					queue = append(queue, l.id)
				}
			}
		}
	}
	return comp
}
