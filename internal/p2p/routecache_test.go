package p2p

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"baton/internal/core"
	"baton/internal/keyspace"
)

// TestDirectRouteQuiescedOneHop checks the point of the fast path: on a
// quiesced cluster every direct-routed singleton operation reaches its owner
// in exactly one hop and costs exactly one delivered message, with zero
// stale-route fallbacks.
func TestDirectRouteQuiescedOneHop(t *testing.T) {
	c, keys := liveCluster(t, 64, 400, 83)
	ids := c.PeerIDs()
	c.SetRouteMode(RouteDirect)
	if c.RouteMode() != RouteDirect {
		t.Fatal("route mode did not switch")
	}
	msgsBefore := c.Messages()
	for i, k := range keys {
		v, ok, hops, err := c.Get(ids[i%len(ids)], k)
		if err != nil || !ok {
			t.Fatalf("direct get %d: ok=%v err=%v", k, ok, err)
		}
		if string(v) != fmt.Sprint(k) {
			t.Fatalf("direct get %d: wrong value %q", k, v)
		}
		if hops != 1 {
			t.Fatalf("direct get %d took %d hops, want 1", k, hops)
		}
	}
	if got, want := c.Messages()-msgsBefore, int64(len(keys)); got != want {
		t.Fatalf("%d direct gets delivered %d messages, want exactly %d (msgs/op = 1)", len(keys), got, want)
	}
	// Writes ride the same fast path; each costs the request plus its
	// asynchronous replica update.
	for i := 0; i < 50; i++ {
		k := keyspace.Key(1 + int64(i)*17_000_001)
		if hops, err := c.Put(ids[i%len(ids)], k, []byte("d")); err != nil || hops != 1 {
			t.Fatalf("direct put %d: hops=%d err=%v", k, hops, err)
		}
		if _, hops, err := c.Delete(ids[i%len(ids)], k); err != nil || hops != 1 {
			t.Fatalf("direct delete %d: hops=%d err=%v", k, hops, err)
		}
	}
	if n := c.StaleRoutes(); n != 0 {
		t.Fatalf("quiesced direct traffic recorded %d stale routes, want 0", n)
	}
	if c.Epoch() == 0 {
		t.Fatal("topology epoch must start above zero")
	}
	// The two modes differ only in message count, never in call semantics:
	// an unknown via is rejected identically.
	if _, _, _, err := c.Get(99_999, keys[0]); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("direct get with unknown via: err = %v, want ErrUnknownPeer", err)
	}
}

// TestOverlayHopsUnchangedByDirectMode asserts that the fast path leaves the
// paper-faithful overlay untouched: the hop count of every overlay-routed
// lookup is identical before direct mode is used, while it is the active
// mode for other traffic, and after switching back.
func TestOverlayHopsUnchangedByDirectMode(t *testing.T) {
	c, keys := liveCluster(t, 64, 300, 89)
	ids := c.PeerIDs()
	sample := keys
	if len(sample) > 200 {
		sample = sample[:200]
	}
	record := func() []int {
		out := make([]int, len(sample))
		for i, k := range sample {
			_, ok, hops, err := c.Get(ids[i%len(ids)], k)
			if err != nil || !ok {
				t.Fatalf("overlay get %d: ok=%v err=%v", k, ok, err)
			}
			out[i] = hops
		}
		return out
	}
	before := record()

	c.SetRouteMode(RouteDirect)
	for i, k := range sample {
		if _, _, hops, err := c.Get(ids[i%len(ids)], k); err != nil || hops != 1 {
			t.Fatalf("direct get %d: hops=%d err=%v", k, hops, err)
		}
	}
	c.SetRouteMode(RouteOverlay)

	after := record()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("overlay hop count for key %d changed: %d before direct mode, %d after",
				sample[i], before[i], after[i])
		}
	}
}

// TestStaleEpochDirectRequestReaims pins down the epoch validation: a
// direct request tagged with an epoch older than the live one, delivered to
// a peer that does not own its key, must be re-aimed once at the owner the
// current ring names — answered in exactly two hops, with the miss counted
// — instead of walking the overlay per-hop.
func TestStaleEpochDirectRequestReaims(t *testing.T) {
	c, keys := liveCluster(t, 48, 200, 103)
	// Bump the epoch past its starting value so a tag of 1 is provably old.
	if _, err := c.Join(c.PeerIDs()[0]); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() < 2 {
		t.Fatalf("epoch after a join = %d, want >= 2", c.Epoch())
	}
	key := keys[0]
	owner := c.ownerOf(key)
	var wrong *peer
	for _, e := range c.topo.Load().ring {
		if e.p != owner {
			wrong = e.p
			break
		}
	}
	before := c.StaleRoutes()
	req := request{kind: kindGet, key: key, epoch: 1, reply: make(chan response, 1)}
	if !c.deliverTo(wrong, req, false) {
		t.Fatal("delivery to the wrong peer refused")
	}
	resp := <-req.reply
	if resp.err != nil || !resp.found {
		t.Fatalf("stale-tagged get: found=%v err=%v", resp.found, resp.err)
	}
	if resp.hops != 2 {
		t.Fatalf("stale-tagged get took %d hops, want exactly 2 (miss + re-aim)", resp.hops)
	}
	if got := c.StaleRoutes() - before; got != 1 {
		t.Fatalf("stale-route counter moved by %d, want 1", got)
	}
}

// TestStaleEpochDirectPutReaimsAcrossShuffle pins the LoadBalance ×
// RouteDirect interaction: a direct-routed write tagged with the epoch from
// before an adjacent-peer shuffle, delivered to the key's pre-shuffle owner,
// must land on the post-shuffle owner after exactly one re-aim (two hops
// total, miss counted) — the write is never lost and never walks the
// overlay per-hop.
func TestStaleEpochDirectPutReaimsAcrossShuffle(t *testing.T) {
	c, _ := liveCluster(t, 32, 0, 109)
	snaps, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	victim := snaps[len(snaps)/2]
	if victim.Range.Size() < 400 {
		t.Fatalf("victim range too narrow: %v", victim.Range)
	}
	// Skew the victim so the shuffle has something to move.
	var keys []keyspace.Key
	for i := int64(0); i < 200; i++ {
		k := victim.Range.Lower + keyspace.Key(i*(victim.Range.Size()/200))
		keys = append(keys, k)
		if _, err := c.Put(victim.ID, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	epochBefore := c.Epoch()
	moved, err := c.LoadBalance(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("shuffle moved nothing; the scenario needs a boundary shift")
	}
	if c.Epoch() == epochBefore {
		t.Fatal("a boundary shift must publish a new topology epoch")
	}
	// A key that changed hands: owned by the victim under the old ring,
	// by the adjacent peer under the new one.
	var movedKey keyspace.Key
	found := false
	for _, k := range keys {
		if c.ownerOf(k).id != victim.ID {
			movedKey, found = k, true
			break
		}
	}
	if !found {
		t.Fatal("no key changed owner across the shuffle")
	}
	old := c.peerByID(victim.ID)
	newOwner := c.ownerOf(movedKey)

	// The in-flight write: tagged with the pre-shuffle epoch, addressed to
	// the pre-shuffle owner — exactly what a client racing the shuffle sends.
	before := c.StaleRoutes()
	req := request{kind: kindPut, key: movedKey, value: []byte("shuffled"), epoch: epochBefore, reply: make(chan response, 1)}
	if !c.deliverTo(old, req, false) {
		t.Fatal("delivery to the pre-shuffle owner refused")
	}
	resp := <-req.reply
	if resp.err != nil {
		t.Fatalf("stale-tagged put failed: %v", resp.err)
	}
	if resp.hops != 2 {
		t.Fatalf("stale-tagged put took %d hops, want exactly 2 (miss + one re-aim)", resp.hops)
	}
	if got := c.StaleRoutes() - before; got != 1 {
		t.Fatalf("stale-route counter moved by %d, want 1", got)
	}
	// The write landed on the post-shuffle owner and is readable everywhere.
	if v, ok := func() ([]byte, bool) {
		ch := make(chan response, 1)
		if !c.deliverTo(newOwner, request{kind: kindGet, key: movedKey, reply: ch}, false) {
			return nil, false
		}
		r := <-ch
		return r.value, r.found
	}(); !ok || string(v) != "shuffled" {
		t.Fatalf("write not on the post-shuffle owner: found=%v value=%q", ok, v)
	}
	for _, via := range c.PeerIDs()[:4] {
		v, ok, _, err := c.Get(via, movedKey)
		if err != nil || !ok || string(v) != "shuffled" {
			t.Fatalf("stale-tagged write lost via %d: found=%v value=%q err=%v", via, ok, v, err)
		}
	}
	verifyCluster(t, c)
}

// TestDirectRouteChurnNoLostWrite is the -race stress test of route-cache
// invalidation: direct-mode Get/Put traffic runs while the membership churns
// through every structural operation — online joins, graceful departures,
// crashes and repairs — and the test asserts that every acknowledged write
// recorded before each replication barrier survives and is readable through
// the direct path afterwards: requests either land on the true owner or
// fall back through the overlay, so no acknowledged write is lost or
// misrouted whatever the cache staleness.
func TestDirectRouteChurnNoLostWrite(t *testing.T) {
	const (
		peers   = 28
		preload = 300
		writers = 3
		rounds  = 5
	)
	c, keys := liveCluster(t, peers, preload, 101)
	c.SetRouteMode(RouteDirect)

	var acked sync.Map // key -> value, recorded only after the Put was acknowledged
	for _, k := range keys {
		acked.Store(k, fmt.Sprint(k))
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	liveVia := func(rng *rand.Rand) (core.PeerID, bool) {
		ids := c.PeerIDs()
		for tries := 0; tries < 16; tries++ {
			id := ids[rng.Intn(len(ids))]
			if c.Alive(id) {
				return id, true
			}
		}
		return 0, false
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(700 + w)))
			// Monotonic per-writer keys in disjoint slices of the domain, so
			// every key is written at most once and "the acknowledged value"
			// is unambiguous.
			for i := 0; !stop.Load() && int64(i)*41 < 240_000_000; i++ {
				k := keyspace.Key(2 + int64(w)*250_000_000 + int64(i)*41)
				via, ok := liveVia(rng)
				if !ok {
					continue
				}
				val := fmt.Sprintf("w%d-%d", w, i)
				if _, err := c.Put(via, k, []byte(val)); err == nil {
					acked.Store(k, val)
				}
				time.Sleep(100 * time.Microsecond)
			}
		}(w)
	}
	// Readers keep the direct read path hot across every churn event;
	// transient errors during crash windows are expected, wrong values are
	// not.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(800))
		for !stop.Load() {
			via, ok := liveVia(rng)
			if !ok {
				continue
			}
			k := keys[rng.Intn(len(keys))]
			if v, found, _, err := c.Get(via, k); err == nil && found && string(v) != fmt.Sprint(k) {
				t.Errorf("direct get %d returned wrong value %q", k, v)
				return
			}
		}
	}()

	churnRng := rand.New(rand.NewSource(900))
	randAlive := func() (core.PeerID, bool) {
		ids := c.PeerIDs()
		for tries := 0; tries < 20; tries++ {
			id := ids[churnRng.Intn(len(ids))]
			if c.Alive(id) {
				return id, true
			}
		}
		return 0, false
	}
	for round := 0; round < rounds; round++ {
		if via, ok := randAlive(); ok {
			if _, err := c.Join(via); err != nil {
				t.Fatalf("round %d: join: %v", round, err)
			}
		}
		if id, ok := randAlive(); ok {
			if err := c.Depart(id); err != nil && !errors.Is(err, core.ErrLastPeer) {
				t.Fatalf("round %d: depart %d: %v", round, id, err)
			}
		}
		// Close the asynchronous replication window, then freeze the set of
		// writes the crash below must not lose.
		if err := c.SyncReplicas(); err != nil {
			t.Fatalf("round %d: sync replicas: %v", round, err)
		}
		mustSurvive := map[keyspace.Key]string{}
		acked.Range(func(k, v any) bool {
			mustSurvive[k.(keyspace.Key)] = v.(string)
			return true
		})
		victim, ok := randAlive()
		if !ok {
			t.Fatalf("round %d: no alive victim", round)
		}
		if err := c.Kill(victim); err != nil {
			t.Fatalf("round %d: kill %d: %v", round, victim, err)
		}
		if _, err := c.Recover(victim); err != nil {
			t.Fatalf("round %d: recover %d: %v", round, victim, err)
		}
		// Sample the frozen set through the direct path: every key must be
		// readable with its acknowledged value, wherever churn moved it.
		checkRng := rand.New(rand.NewSource(int64(1000 + round)))
		checked := 0
		for k, want := range mustSurvive {
			if checked >= 150 {
				break
			}
			if checkRng.Intn(4) != 0 {
				continue
			}
			checked++
			via, ok := randAlive()
			if !ok {
				t.Fatalf("round %d: no alive via", round)
			}
			v, found, _, err := c.Get(via, k)
			if err != nil || !found || string(v) != want {
				t.Fatalf("round %d: acknowledged write %d lost or wrong after churn: found=%v v=%q err=%v",
					round, k, found, v, err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	// Full sweep on the quiesced cluster, then the structural audit.
	ids := c.PeerIDs()
	i := 0
	var failed error
	acked.Range(func(k, v any) bool {
		got, found, _, err := c.Get(ids[i%len(ids)], k.(keyspace.Key))
		i++
		if err != nil || !found || string(got) != v.(string) {
			failed = fmt.Errorf("acknowledged write %d: found=%v v=%q err=%v", k, found, got, err)
			return false
		}
		return true
	})
	if failed != nil {
		t.Fatal(failed)
	}
	snaps, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySnapshot(c.Domain(), snaps); err != nil {
		t.Fatalf("structural invariants after direct-mode churn: %v", err)
	}
	t.Logf("stale direct routes under churn: %d (epoch %d)", c.StaleRoutes(), c.Epoch())
}

// TestDeliverFloodBoundedGoroutines is the regression test for the
// unbounded transient-goroutine spawn in deliver: every send that found the
// inbox full used to launch its own goroutine, so a saturated peer's
// overflow depth became the process's goroutine count. The test floods a
// peer whose goroutine is guaranteed not to drain — one registered for
// delivery but never served — far past its inbox capacity and asserts the
// overflow lands in the spill queue with no goroutine growth at all.
func TestDeliverFloodBoundedGoroutines(t *testing.T) {
	c, _ := liveCluster(t, 4, 0, 97)
	// A ghost peer: a valid delivery target with no serving goroutine, so
	// the inbox can never drain and every send past its capacity must take
	// the overflow path deterministically.
	ghost := newPeer(9999, 2)
	ghost.alive.Store(true)
	nt := c.topo.Load().clone()
	nt.peers[ghost.id] = ghost
	c.topo.Store(nt)

	const flood = 4096
	runtime.GC() // retire any straggler goroutines from cluster construction
	baseline := runtime.NumGoroutine()
	for i := 0; i < flood; i++ {
		if !c.send(ghost.id, request{kind: kindGet, key: 1, reply: make(chan response, 1)}) {
			t.Fatalf("send %d refused", i)
		}
	}
	if grew := runtime.NumGoroutine() - baseline; grew > 8 {
		t.Fatalf("flooding a saturated peer grew the goroutine count by %d: deliver is spawning per-send goroutines again", grew)
	}
	spilled := len(ghost.takeSpill())
	if want := flood - cap(ghost.inbox); spilled != want {
		t.Fatalf("spill queue holds %d requests, want %d (flood %d past inbox capacity %d)",
			spilled, want, flood, cap(ghost.inbox))
	}
	if got := int64(flood); c.Messages() < got {
		t.Fatalf("delivered-message counter %d below flood size %d", c.Messages(), got)
	}
}

// TestDeliverFIFOWhileSpilled pins the per-peer delivery order the replica
// protocol relies on: while the spill queue is non-empty, a new delivery
// must append behind it even if the inbox has drained room again —
// otherwise the newer message would jump the queue and messages from one
// sender could apply out of order.
func TestDeliverFIFOWhileSpilled(t *testing.T) {
	c, _ := liveCluster(t, 4, 0, 107)
	ghost := newPeer(9998, 2)
	ghost.alive.Store(true)
	nt := c.topo.Load().clone()
	nt.peers[ghost.id] = ghost
	c.topo.Store(nt)

	// Fill the inbox exactly, then overflow by one.
	for i := 0; i <= cap(ghost.inbox); i++ {
		if !c.send(ghost.id, request{kind: kindGet, key: keyspace.Key(i)}) {
			t.Fatalf("send %d refused", i)
		}
	}
	// Simulate the serving goroutine draining one inbox slot, then deliver
	// again: the newcomer must join the spill queue behind the earlier
	// overflow, not slip into the freed inbox slot ahead of it.
	<-ghost.inbox
	if !c.send(ghost.id, request{kind: kindGet, key: 9_000_001}) {
		t.Fatal("send refused")
	}
	if got := len(ghost.inbox); got != cap(ghost.inbox)-1 {
		t.Fatalf("inbox holds %d messages, want %d: a delivery jumped the spill queue", got, cap(ghost.inbox)-1)
	}
	q := ghost.takeSpill()
	if len(q) != 2 {
		t.Fatalf("spill queue holds %d messages, want 2", len(q))
	}
	if q[0].key != keyspace.Key(cap(ghost.inbox)) || q[1].key != 9_000_001 {
		t.Fatalf("spill order [%d %d], want [%d %d]", q[0].key, q[1].key, cap(ghost.inbox), 9_000_001)
	}
}
