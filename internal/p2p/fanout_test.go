package p2p

import (
	"fmt"
	"math/rand"
	"testing"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/obs"
)

// liveClusterFanout is liveCluster with an explicit overlay fanout: the
// mirror network is grown m-ary (BATON* for m > 2) before the live cluster
// is spun up on it.
func liveClusterFanout(t testing.TB, peers, items int, seed int64, fanout int) (*Cluster, []keyspace.Key) {
	t.Helper()
	nw := core.NewNetwork(core.Config{Seed: seed, Fanout: fanout})
	rng := rand.New(rand.NewSource(seed))
	for nw.Size() < peers {
		ids := nw.PeerIDs()
		if _, _, err := nw.Join(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([]keyspace.Key, 0, items)
	for i := 0; i < items; i++ {
		k := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-keyspace.DomainMin)))
		keys = append(keys, k)
		if _, err := nw.Insert(nw.RandomPeer(), k, []byte(fmt.Sprint(k))); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCluster(nw)
	t.Cleanup(c.Stop)
	return c, keys
}

// TestTraceOverlayMatchesExpectedRouteFanout extends the flight recorder's
// ground-truth test to the m-ary overlay: at fanout 4 and 8 on a quiesced
// 64-peer cluster, every traced overlay Get must match the structural
// mirror's predicted route hop for hop. This is the deterministic proof that
// the live BATON* forwarding rules and core.RoutePath are the same
// algorithm at every fanout, not just at 2.
func TestTraceOverlayMatchesExpectedRouteFanout(t *testing.T) {
	for _, m := range []int{4, 8} {
		t.Run(fmt.Sprintf("m=%d", m), func(t *testing.T) {
			c, keys := liveClusterFanout(t, 64, 300, 431, m)
			snaps, err := c.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			expectNW, err := core.FromSnapshot(c.Domain(), snaps)
			if err != nil {
				t.Fatal(err)
			}
			if got := expectNW.Fanout(); got != m {
				t.Fatalf("snapshot round-trip inferred fanout %d, want %d", got, m)
			}
			c.SetTraceSampling(1)
			ids := c.PeerIDs()
			rng := rand.New(rand.NewSource(433))
			for i := 0; i < 40; i++ {
				via := ids[rng.Intn(len(ids))]
				key := keys[rng.Intn(len(keys))]
				if _, found, _, err := c.Get(via, key); err != nil || !found {
					t.Fatalf("get %d via %d: found=%v err=%v", key, via, found, err)
				}
				traces := c.Traces()
				if len(traces) == 0 {
					t.Fatal("1-in-1 sampling recorded no trace")
				}
				got := tracePeers(traces[len(traces)-1])
				want, err := expectNW.RoutePath(via, key)
				if err != nil {
					t.Fatalf("predicting route for %d from %d: %v", key, via, err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("get %d via %d: traced route %v, structural expectation %v", key, via, got, want)
				}
			}
		})
	}
}

// TestTraceDirectGetOneHopFanout pins the fast path at every fanout: a
// direct-routed Get on a quiesced m-ary cluster is exactly one hop, at the
// key's owner — the route cache must not care about the tree's shape.
func TestTraceDirectGetOneHopFanout(t *testing.T) {
	for _, m := range []int{4, 8} {
		t.Run(fmt.Sprintf("m=%d", m), func(t *testing.T) {
			c, keys := liveClusterFanout(t, 32, 100, 439, m)
			c.SetRouteMode(RouteDirect)
			c.SetTraceSampling(1)
			for _, key := range keys[:20] {
				owner := c.ownerOf(key)
				if _, found, _, err := c.Get(c.PeerIDs()[0], key); err != nil || !found {
					t.Fatalf("direct get %d: found=%v err=%v", key, found, err)
				}
				traces := c.Traces()
				last := traces[len(traces)-1]
				if len(last) != 1 {
					t.Fatalf("direct get %d traced %d hops, want exactly 1: %v", key, len(last), last)
				}
				if core.PeerID(last[0].Peer) != owner.id {
					t.Fatalf("direct get %d traced at peer %d, owner is %d", key, last[0].Peer, owner.id)
				}
			}
		})
	}
}

// TestTraceStaleEpochTwoHopsFanout pins the re-aim path at every fanout: a
// direct request tagged with a stale epoch and delivered to the wrong peer
// is exactly two hops — the mistaken peer, then the true owner.
func TestTraceStaleEpochTwoHopsFanout(t *testing.T) {
	for _, m := range []int{4, 8} {
		t.Run(fmt.Sprintf("m=%d", m), func(t *testing.T) {
			c, keys := liveClusterFanout(t, 48, 200, 443, m)
			if _, err := c.Join(c.PeerIDs()[0]); err != nil {
				t.Fatal(err)
			}
			key := keys[0]
			owner := c.ownerOf(key)
			var wrong *peer
			for _, e := range c.topo.Load().ring {
				if e.p != owner {
					wrong = e.p
					break
				}
			}
			req := request{kind: kindGet, key: key, epoch: 1, reply: make(chan response, 1), trace: obs.NewTrace()}
			if !c.deliverTo(wrong, req, false) {
				t.Fatal("delivery to the wrong peer refused")
			}
			resp := <-req.reply
			if resp.err != nil || !resp.found {
				t.Fatalf("stale-tagged get: found=%v err=%v", resp.found, resp.err)
			}
			got := tracePeers(req.trace.Hops())
			if len(got) != 2 || got[0] != wrong.id || got[1] != owner.id {
				t.Fatalf("stale-tagged get traced %v, want [%d %d] (miss then re-aim)", got, wrong.id, owner.id)
			}
		})
	}
}

// TestClusterChurnFaultBalanceFanout is the live m-ary soak: at fanout 4 and
// 8, the cluster survives online joins, graceful departures, crashes with
// repair, and a balancer convergence pass, and the quiesced result passes
// the full structural and replication audits. This is the cluster-level
// counterpart of the batonsim churnload/faultload/skewload end-of-run gates.
func TestClusterChurnFaultBalanceFanout(t *testing.T) {
	for _, m := range []int{4, 8} {
		t.Run(fmt.Sprintf("m=%d", m), func(t *testing.T) {
			c, keys := liveClusterFanout(t, 40, 600, 467, m)
			rng := rand.New(rand.NewSource(479))

			// Churn: interleave joins and departs.
			for i := 0; i < 12; i++ {
				if i%2 == 0 {
					if _, err := c.Join(c.PeerIDs()[rng.Intn(c.Size())]); err != nil {
						t.Fatalf("join %d: %v", i, err)
					}
				} else {
					ids := c.PeerIDs()
					if err := c.Depart(ids[rng.Intn(len(ids))]); err != nil {
						t.Fatalf("depart %d: %v", i, err)
					}
				}
			}

			// Faults: crash and repair a few peers.
			for i := 0; i < 4; i++ {
				ids := c.PeerIDs()
				victim := ids[rng.Intn(len(ids))]
				if err := c.Kill(victim); err != nil {
					t.Fatalf("kill %d: %v", victim, err)
				}
				if _, err := c.Recover(victim); err != nil {
					t.Fatalf("recover %d: %v", victim, err)
				}
			}

			// Balance: run the balancer to a fixed point.
			if _, err := c.BalanceUntilStable(AutoBalanceConfig{}, 8*c.Size()); err != nil {
				t.Fatalf("balance: %v", err)
			}

			// Every pre-loaded key must still be readable.
			ids := c.PeerIDs()
			for _, k := range keys {
				if _, found, _, err := c.Get(ids[rng.Intn(len(ids))], k); err != nil || !found {
					t.Fatalf("get %d after churn: found=%v err=%v", k, found, err)
				}
			}

			// Full end-of-run audits, exactly as the scenario modes run them.
			snaps, err := c.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if err := core.VerifySnapshot(c.Domain(), snaps); err != nil {
				t.Fatalf("structural invariants at m=%d: %v", m, err)
			}
			for _, ps := range snaps {
				if got := ps.Fanout(); got != m {
					t.Fatalf("peer %d snapshot fanout %d, want %d", ps.ID, got, m)
				}
			}
			if err := c.SyncReplicas(); err != nil {
				t.Fatal(err)
			}
			replicas, err := c.Replicas()
			if err != nil {
				t.Fatal(err)
			}
			if err := core.VerifyReplication(snaps, replicas); err != nil {
				t.Fatalf("replication invariants at m=%d: %v", m, err)
			}
		})
	}
}
