package p2p

import (
	"sort"
	"sync"

	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/query"
	"baton/internal/store"
)

// chunk is one peer's sorted contribution to a parallel range query. Peers
// own disjoint ranges, so ordering chunks by their segment lower bound and
// concatenating yields the full answer in key order without ever sorting
// individual items.
type chunk struct {
	lo    keyspace.Key
	items []store.Item
}

// collector is the per-query gather state of a parallel range query. The
// peer owning the range's lower bound creates one and seeds it with its own
// pending unit of work; every scatter sub-request grows the pending count
// before it is sent and shrinks it when its branch finishes, so the count
// can only reach zero once every branch has reported. The branch that takes
// the count to zero delivers the gathered answer to the client.
type collector struct {
	reply chan response
	// wire, when non-nil (and reply is nil), names the origin-node
	// correlation the finished answer is delivered to: either the remote
	// client of a parallel query whose coordinator lives here, or — for a
	// proxy collector built by inboundRequest — the remote parent scatter
	// branch this node's sub-tree reports into.
	wire *wireDest
	// pred is the query's pushdown predicate, shared by every branch so a
	// scatter sub-request carries one pointer instead of re-encoding the
	// predicate per segment. Nil for unfiltered queries.
	pred *query.Pred
	// sink, when non-nil, switches the collector to streaming mode
	// (Cluster.RangeIter): branches push their contributions to the
	// bounded channel-backed sink as they land instead of accumulating
	// chunks, and the last branch closes the sink with the query's hop
	// count and error. See query.go.
	sink *rangeSink

	mu      sync.Mutex
	chunks  []chunk
	err     error
	hops    int // longest message chain across all branches
	pending int
}

// grow registers n additional outstanding branches. It must be called
// before the corresponding sub-requests are sent so a fast child cannot
// drive pending to zero while its parent is still scattering. It also
// pre-sizes the chunk slice: every outstanding branch contributes at most
// one chunk, so growing capacity here (one reallocation per scatter level
// at worst) replaces append's repeated grow-and-copy inside the gather —
// the CountRange pre-pass discipline of the singleton path, applied to the
// collector.
func (g *collector) grow(n int) {
	g.mu.Lock()
	g.pending += n
	if g.sink == nil && cap(g.chunks)-len(g.chunks) < g.pending {
		grown := make([]chunk, len(g.chunks), len(g.chunks)+g.pending)
		copy(grown, g.chunks)
		g.chunks = grown
	}
	g.mu.Unlock()
}

// finish reports one branch's partial result: the sorted items of the peer
// whose range starts at lo. When the last branch finishes, the chunks are
// stitched together in key order and sent to the client; the reply channel
// is buffered so this never blocks a peer goroutine. In streaming mode the
// items go straight to the sink (a bounded send that respects the
// iterator's cancellation) and the last branch closes the sink instead.
func (g *collector) finish(lo keyspace.Key, items []store.Item, hops int, err error) {
	if g.sink != nil {
		// Deliver before the bookkeeping: pending can only reach zero after
		// every branch's send has completed, so the final batch is always
		// the last thing the iterator receives.
		if len(items) > 0 {
			g.sink.send(items)
		}
		g.mu.Lock()
		if err != nil && g.err == nil {
			g.err = err
		}
		if hops > g.hops {
			g.hops = hops
		}
		g.pending--
		done := g.pending == 0
		ferr, fhops := g.err, g.hops
		g.mu.Unlock()
		if done {
			g.sink.close(fhops, ferr)
		}
		return
	}
	g.mu.Lock()
	if len(items) > 0 {
		g.chunks = append(g.chunks, chunk{lo: lo, items: items})
	}
	if err != nil && g.err == nil {
		g.err = err
	}
	if hops > g.hops {
		g.hops = hops
	}
	g.pending--
	done := g.pending == 0
	var resp response
	if done {
		sort.Slice(g.chunks, func(i, j int) bool { return g.chunks[i].lo < g.chunks[j].lo })
		n := 0
		for _, c := range g.chunks {
			n += len(c.items)
		}
		if lim := g.pred.LimitOrZero(); lim > 0 && n > lim {
			n = lim
		}
		all := make([]store.Item, 0, n)
		for _, c := range g.chunks {
			take := c.items
			if len(take) > n-len(all) {
				take = take[:n-len(all)]
			}
			all = append(all, take...)
			if len(all) == n {
				break
			}
		}
		resp = response{items: all, hops: g.hops, err: g.err}
	}
	g.mu.Unlock()
	if done {
		if g.reply != nil {
			g.reply <- resp
		} else if g.wire != nil {
			g.wire.deliver(resp)
		}
	}
}

// scatterAt is the parallel counterpart of the serial adjacent-chain walk:
// peer p answers the part of rng it stores, splits the still-uncovered
// remainder into contiguous segments — one per alive right-routing-table
// entry whose range starts inside the remainder, plus the leading segment
// for the right adjacent chain — and scatters one sub-request per segment.
// Each recipient owns its segment's lower bound and recursively does the
// same, so a range covering m peers completes in O(log m) message depth
// instead of m sequential hops.
func (c *Cluster) scatterAt(p *peer, rng keyspace.Range, hops int, coll *collector) {
	rem := rng
	if p.rng.Upper > rem.Lower {
		rem.Lower = p.rng.Upper
	}
	// Scatter the remainder before scanning locally: the sub-requests are
	// in flight while this peer walks its own tree, and the store cannot
	// change in between — the serving goroutine owns it and handles one
	// message at a time.
	var err error
	if !rem.IsEmpty() {
		err = c.scatterRemainder(p, rem, hops, coll)
	}
	if coll.sink != nil {
		// Streaming branch: ship the local contribution in bounded batches
		// through the sink. The owning peer never materialises its whole
		// chunk (store.ScanBatches allocates one batch at a time) and the
		// client starts consuming while other branches are still scanning.
		// A false from send means the iterator was closed or the cluster
		// stopped: stop scanning, the work cannot be needed.
		p.data.ScanBatches(rng, iterBatchSize, func(batch []store.Item) bool {
			if coll.pred != nil {
				batch = filterInPlace(batch, coll.pred)
				if len(batch) == 0 {
					return true
				}
			}
			return coll.sink.send(batch)
		})
		coll.finish(rng.Lower, nil, hops, err)
		return
	}
	var items []store.Item
	if coll.pred == nil {
		items = p.data.Scan(rng)
	} else {
		// Pushdown: evaluate the predicate during the scan so the branch
		// ships only matching items, at most the predicate's limit (more
		// than lim matches can never be needed whatever the other branches
		// return).
		items = scanFiltered(p.data, nil, rng, coll.pred)
	}
	coll.finish(rng.Lower, items, hops, err)
}

// scanFiltered appends the items of r that match pred to dst, stopping at
// the predicate's limit (counted across dst as the serial walk requires).
func scanFiltered(data *store.Store, dst []store.Item, r keyspace.Range, pred *query.Pred) []store.Item {
	lim := pred.LimitOrZero()
	data.AscendRange(r, func(it store.Item) bool {
		if !pred.MatchItem(it) {
			return true
		}
		dst = append(dst, it)
		return lim == 0 || len(dst) < lim
	})
	return dst
}

// filterInPlace drops the items of batch that fail pred, in place (the
// batch is owned by the streaming scan that allocated it).
func filterInPlace(batch []store.Item, pred *query.Pred) []store.Item {
	kept := batch[:0]
	for _, it := range batch {
		if pred.MatchItem(it) {
			kept = append(kept, it)
		}
	}
	return kept
}

// scatterRemainder splits rem (which starts exactly at p's upper bound)
// across p's rightward links and sends one scatter sub-request per segment.
// It returns ErrOwnerDown if any segment's owner could not be reached, in
// which case the query completes with the partial answer, mirroring the
// serial walk's behaviour at a dead chain link.
func (c *Cluster) scatterRemainder(p *peer, rem keyspace.Range, hops int, coll *collector) error {
	next := p.adjacent[1]
	if next == nil {
		// p is the rightmost peer: the remainder lies beyond the domain and
		// holds no data.
		return nil
	}
	// Cut points: alive right-routing-table entries whose range starts
	// strictly inside the remainder. Their lower bounds are valid segment
	// boundaries because each entry owns keys from its lower bound onward.
	var cuts []*link
	for _, l := range p.rt[1] {
		if l == nil || !c.Alive(l.id) {
			continue
		}
		if l.lower > rem.Lower && l.lower < rem.Upper {
			cuts = append(cuts, l)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].lower < cuts[j].lower })

	type segment struct {
		to core.PeerID
		r  keyspace.Range
	}
	segs := make([]segment, 0, len(cuts)+1)
	lo := rem.Lower
	target := next.id
	for _, cut := range cuts {
		segs = append(segs, segment{to: target, r: keyspace.Range{Lower: lo, Upper: cut.lower}})
		lo, target = cut.lower, cut.id
	}
	segs = append(segs, segment{to: target, r: keyspace.Range{Lower: lo, Upper: rem.Upper}})

	var firstErr error
	for i, s := range segs {
		if i == 0 && !c.Alive(next.id) {
			// The leading segment is aimed at the dead right adjacent, but
			// only the dead peer's own slice is unavailable — everything
			// past its upper bound belongs to alive peers an alive route
			// can still reach. Split the segment instead of losing it all.
			if err := c.scatterPastDead(p, next, s.r, hops, coll); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		coll.grow(1)
		sub := request{kind: kindRangeScatter, key: s.r.Lower, rng: s.r, hops: hops, coll: coll}
		if !c.send(s.to, sub) {
			// The segment's owner is dead (or the cluster is stopping):
			// record the branch as failed so the client gets the partial
			// answer plus ErrOwnerDown instead of hanging on the collector.
			coll.finish(s.r.Lower, nil, hops, ErrOwnerDown)
			if firstErr == nil {
				firstErr = ErrOwnerDown
			}
		}
	}
	return firstErr
}

// scatterPastDead handles a leading scatter segment whose first covering
// peer (p's right adjacent) is dead: the dead peer's own slice of the
// segment is recorded as a failed branch, and the remainder beyond its
// upper bound — which alive peers own — is re-scattered as a routed
// sub-request through the first alive forwarding candidate, exactly as a
// scatter addressed with stale routing state would be. Without this, a
// single mid-chain crash silently truncated every range answer at the dead
// peer even when the rest of the chain was alive and reachable sideways.
func (c *Cluster) scatterPastDead(p *peer, dead *link, seg keyspace.Range, hops int, coll *collector) error {
	// The dead peer's slice: always a failed branch (its data is down until
	// recovery restores the range under a new owner).
	coll.grow(1)
	coll.finish(seg.Lower, nil, hops, ErrOwnerDown)
	rest := keyspace.Range{Lower: dead.upper, Upper: seg.Upper}
	if rest.IsEmpty() {
		return ErrOwnerDown
	}
	sub := request{kind: kindRangeScatter, key: rest.Lower, rng: rest, hops: hops, coll: coll}
	coll.grow(1)
	for _, cand := range c.candidates(p, rest.Lower) {
		if cand == nil || cand.id == dead.id || !c.Alive(cand.id) {
			continue
		}
		if c.send(cand.id, sub) {
			return ErrOwnerDown
		}
	}
	// No alive route past the dead peer: the rest of the segment fails too.
	coll.finish(rest.Lower, nil, hops, ErrOwnerDown)
	return ErrOwnerDown
}
