// Crash recovery: the repair half of the fault-tolerance layer
// (Section III-C/III-D of the paper, plus the data restoration the paper
// leaves out and replication.go provides).
//
// A killed peer stays part of the overlay structure — requests route around
// it and its range answers ErrOwnerDown — until Recover repairs it: the
// crashed peer's structural position is removed on the mirror exactly like
// a graceful departure it can no longer cooperate with (safe-leaf merge
// into the parent, or a replacement leaf found by the same Algorithm 2
// machinery Depart uses), its key range is re-tiled onto the surviving
// peers, and the lost items are restored from the replica kept at its
// adjacent peer. After Recover, every key the dead peer owned is readable
// again with its pre-crash value, and stale requests still addressed to the
// dead peer are forwarded by its tombstone — ErrOwnerDown is transient.
package p2p

import (
	"errors"
	"fmt"

	"baton/internal/core"
	"baton/internal/store"
)

// ErrReplicaLost reports that a crashed peer's range was repaired but its
// data could not be restored: the replica holder is down too (or never
// existed — a single-peer overlay). One replica tolerates one crash between
// repairs.
var ErrReplicaLost = errors.New("p2p: no surviving replica for the crashed peer's range")

// Recover repairs the crash of the given killed peer. The structural change
// is computed on the mirror (core.CrashLeaveWith): a safe leaf merges into
// its parent, any other peer is replaced by a leaf located with the same
// live FINDREPLACEMENT walk Depart uses (started at the dead peer's
// neighbours, which are alive) or, failing that, a structure scan. The
// dead peer's range is restored from the surviving replica at its holder
// and handed to the range's new owner; every peer whose links changed is
// updated; the topology is republished; and the dead peer's goroutine
// remains as a forwarding tombstone for stragglers. Traffic keeps flowing
// throughout: requests for the dead range fail over with ErrOwnerDown
// until the repair lands and succeed after.
//
// Recover returns the number of items restored from the replica. When the
// replica holder has crashed too, the structure is still repaired — the
// range must come back up — but the data is gone and Recover returns
// ErrReplicaLost alongside the count of zero.
func (c *Cluster) Recover(id core.PeerID) (int, error) {
	if err := c.requireCoordinator(); err != nil {
		return 0, err
	}
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	c.journalBegin("recover", id)
	n, err := c.recoverLocked(id)
	c.journalEnd(err)
	return n, err
}

// recoverLocked is the body of Recover; the caller holds memberMu.
func (c *Cluster) recoverLocked(id core.PeerID) (int, error) {
	if c.stopped.Load() {
		return 0, ErrStopped
	}
	t := c.topo.Load()
	p := t.peers[id]
	if p == nil || !t.members[id] {
		return 0, fmt.Errorf("%w: %d", ErrUnknownPeer, id)
	}
	if p.alive.Load() {
		return 0, fmt.Errorf("p2p: peer %d is not down", id)
	}
	if len(t.ids) == 1 {
		return 0, core.ErrLastPeer
	}
	ps := c.states[id]

	// Salvage the replica before the structure changes: the holder is
	// derived from the same published structure the peers' live links came
	// from, so it is exactly where the dead peer last synced to.
	var salvaged []store.Item
	var replicaErr error
	holder := core.ReplicaHolderOf(ps)
	if holder == core.NoPeer || !c.Alive(holder) {
		replicaErr = fmt.Errorf("%w: holder %d of peer %d is down", ErrReplicaLost, holder, id)
	} else if resp, err := c.control(holder, request{kind: kindReplicaFetch, src: id}); err != nil {
		replicaErr = fmt.Errorf("%w: fetching from holder %d: %v", ErrReplicaLost, holder, err)
	} else {
		// Stale keys the dead peer handed off before crashing are filtered
		// out; keys outside the domain belong to the extreme peers and ride
		// along via the widened range, like any migration.
		salvaged = itemsWithin(resp.items, c.widen(ps.Range))
	}

	// Structural repair on the mirror: safe-leaf first, then the live
	// replacement walk, then the deterministic scan — the same ladder as
	// Depart, but with the crash-leave variant (no data to extract).
	done := false
	if !ps.HasChildren() &&
		ps.Parent != core.NoPeer && c.Alive(ps.Parent) {
		if _, err := c.mirror.CrashLeaveWith(id, core.NoPeer); err == nil {
			done = true
		} else if errors.Is(err, core.ErrLastPeer) {
			return 0, err
		}
	}
	if !done {
		if y := c.locateReplacement(ps); y != core.NoPeer && c.viableReplacement(id, y) {
			if _, err := c.mirror.CrashLeaveWith(id, y); err == nil {
				done = true
			}
		}
	}
	if !done {
		for _, y := range c.replacementCandidates(id) {
			if _, err := c.mirror.CrashLeaveWith(id, y); err == nil {
				done = true
				break
			}
		}
	}
	if !done {
		return 0, fmt.Errorf("p2p: no viable replacement leaf to repair crashed peer %d: %w", id, ErrUnreachable)
	}

	// Push the delta out. The salvage map makes the coordinator play the
	// dead source's part in the handoff phase: the restored items are sent
	// to the range's new owner instead of being extracted from the corpse.
	if _, err := c.applyMirrorDiffLocked(map[core.PeerID][]store.Item{id: salvaged}); err != nil {
		return 0, err
	}
	return len(salvaged), replicaErr
}

// suspect reports a peer a routing path observed to be dead to the
// background repairer, if one is running. It never blocks: a full queue
// just drops the report — the same peer will be observed again.
func (c *Cluster) suspect(id core.PeerID) {
	if !c.autoRecover.Load() {
		return
	}
	select {
	case c.suspects <- id:
	default:
	}
}

// StartAutoRecover starts the opt-in background repairer: from now on,
// whenever a request observes that the peer responsible for its key is dead
// (the ErrOwnerDown paths), the dead peer is queued for repair and a
// dedicated goroutine runs Recover on it. Client requests still see
// ErrOwnerDown in the window between the crash and the repair — the
// repairer makes the error transient, not invisible. Repair errors are
// dropped: a suspect may already have been repaired (no longer a member) or
// be momentarily unrepairable, and the next observation re-queues it.
// StartAutoRecover is idempotent; the repairer stops with the cluster.
func (c *Cluster) StartAutoRecover() {
	if c.autoRecover.Swap(true) {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			select {
			case <-c.done:
				return
			case id := <-c.suspects:
				if !c.Alive(id) && c.topo.Load().members[id] {
					c.Recover(id) //nolint:errcheck // see doc comment
				}
			}
		}
	}()
}
