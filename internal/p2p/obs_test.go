package p2p

import (
	"fmt"
	"math/rand"
	"testing"

	"baton/internal/core"
	"baton/internal/obs"
)

// tracePeers flattens a hop chain to the visited peer IDs, in travel order.
func tracePeers(hops []obs.Hop) []core.PeerID {
	out := make([]core.PeerID, len(hops))
	for i, h := range hops {
		out[i] = core.PeerID(h.Peer)
	}
	return out
}

// TestTraceOverlayMatchesExpectedRoute is the flight recorder's ground-truth
// test: on a quiesced 64-peer cluster with 1-in-1 sampling, the hop chain a
// traced overlay Get records must match — hop for hop, peer for peer — the
// route the structural mirror predicts for the same (via, key) pair
// (core.RoutePath applies the search_exact forwarding rules without charging
// messages). Any divergence means the live overlay and the paper's algorithm
// have drifted apart, or the recorder attributes hops to the wrong peer.
func TestTraceOverlayMatchesExpectedRoute(t *testing.T) {
	c, keys := liveCluster(t, 64, 300, 431)
	snaps, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	expectNW, err := core.FromSnapshot(c.Domain(), snaps)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTraceSampling(1)
	ids := c.PeerIDs()
	rng := rand.New(rand.NewSource(433))
	for i := 0; i < 40; i++ {
		via := ids[rng.Intn(len(ids))]
		key := keys[rng.Intn(len(keys))]
		if _, found, _, err := c.Get(via, key); err != nil || !found {
			t.Fatalf("get %d via %d: found=%v err=%v", key, via, found, err)
		}
		traces := c.Traces()
		if len(traces) == 0 {
			t.Fatal("1-in-1 sampling recorded no trace")
		}
		got := tracePeers(traces[len(traces)-1])
		want, err := expectNW.RoutePath(via, key)
		if err != nil {
			t.Fatalf("predicting route for %d from %d: %v", key, via, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("get %d via %d: traced route %v, structural expectation %v", key, via, got, want)
		}
		for _, h := range traces[len(traces)-1] {
			if h.Kind != "GET" {
				t.Fatalf("traced hop kind %q, want GET", h.Kind)
			}
			if h.QueueWaitNs < 0 {
				t.Fatalf("negative queue wait %d", h.QueueWaitNs)
			}
		}
	}
}

// TestTraceDirectGetOneHop pins the fast path's shape in the recorder: a
// traced direct-routed Get on a quiesced cluster is exactly one hop, at the
// key's owner.
func TestTraceDirectGetOneHop(t *testing.T) {
	c, keys := liveCluster(t, 32, 100, 439)
	c.SetRouteMode(RouteDirect)
	c.SetTraceSampling(1)
	for _, key := range keys[:20] {
		owner := c.ownerOf(key)
		if _, found, _, err := c.Get(c.PeerIDs()[0], key); err != nil || !found {
			t.Fatalf("direct get %d: found=%v err=%v", key, found, err)
		}
		traces := c.Traces()
		last := traces[len(traces)-1]
		if len(last) != 1 {
			t.Fatalf("direct get %d traced %d hops, want exactly 1: %v", key, len(last), last)
		}
		if core.PeerID(last[0].Peer) != owner.id {
			t.Fatalf("direct get %d traced at peer %d, owner is %d", key, last[0].Peer, owner.id)
		}
	}
}

// TestTraceStaleEpochTwoHops pins the re-aim path in the recorder: a direct
// request tagged with a stale epoch, delivered to a peer that does not own
// its key, is traced as exactly two hops — the mistaken peer, then the true
// owner — and the stale-route miss is attributed to the peer that detected
// it, visible in its per-peer metrics.
func TestTraceStaleEpochTwoHops(t *testing.T) {
	c, keys := liveCluster(t, 48, 200, 443)
	if _, err := c.Join(c.PeerIDs()[0]); err != nil {
		t.Fatal(err)
	}
	key := keys[0]
	owner := c.ownerOf(key)
	var wrong *peer
	for _, e := range c.topo.Load().ring {
		if e.p != owner {
			wrong = e.p
			break
		}
	}
	req := request{kind: kindGet, key: key, epoch: 1, reply: make(chan response, 1), trace: obs.NewTrace()}
	if !c.deliverTo(wrong, req, false) {
		t.Fatal("delivery to the wrong peer refused")
	}
	resp := <-req.reply
	if resp.err != nil || !resp.found {
		t.Fatalf("stale-tagged get: found=%v err=%v", resp.found, resp.err)
	}
	got := tracePeers(req.trace.Hops())
	if len(got) != 2 || got[0] != wrong.id || got[1] != owner.id {
		t.Fatalf("stale-tagged get traced %v, want [%d %d] (miss then re-aim)", got, wrong.id, owner.id)
	}
	var wrongSnap *obs.PeerSnapshot
	m := c.Metrics()
	for i := range m.Peers {
		if m.Peers[i].Peer == int64(wrong.id) {
			wrongSnap = &m.Peers[i]
		}
	}
	if wrongSnap == nil {
		t.Fatalf("peer %d missing from metrics", wrong.id)
	}
	if wrongSnap.StaleRoutes != 1 {
		t.Fatalf("stale miss attributed %d times to peer %d, want 1", wrongSnap.StaleRoutes, wrong.id)
	}
	if m.StaleRoutes != c.StaleRoutes() {
		t.Fatalf("metrics stale total %d != StaleRoutes() %d", m.StaleRoutes, c.StaleRoutes())
	}
}

// TestJournalRecordsStructuralOps drives one operation of each kind through
// a loaded cluster and checks the journal: every op appears in order with
// outcome ok; the ops that move data carry phase timings and a migrated
// count.
func TestJournalRecordsStructuralOps(t *testing.T) {
	c, _ := liveCluster(t, 16, 800, 449)
	id, err := c.Join(c.PeerIDs()[0])
	if err != nil {
		t.Fatal(err)
	}
	victim := c.PeerIDs()[3]
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.Depart(id); err != nil {
		t.Fatal(err)
	}
	events := c.Events()
	var ops []string
	byOp := make(map[string]obs.Event)
	for _, ev := range events {
		ops = append(ops, ev.Op)
		byOp[ev.Op] = ev
	}
	for _, want := range []string{"join", "kill", "recover", "depart"} {
		ev, ok := byOp[want]
		if !ok {
			t.Fatalf("journal has no %q event (got %v)", want, ops)
		}
		if ev.Outcome != "ok" {
			t.Fatalf("%q event outcome %q (err %q), want ok", want, ev.Outcome, ev.Err)
		}
		if ev.DurationNs <= 0 {
			t.Fatalf("%q event has duration %d", want, ev.DurationNs)
		}
	}
	if p := byOp["join"].Peer; p != int64(id) {
		t.Fatalf("join event names peer %d, want %d", p, id)
	}
	if byOp["recover"].Migrated <= 0 {
		t.Fatalf("recover event migrated %d items, want > 0 on a loaded cluster", byOp["recover"].Migrated)
	}
	for _, op := range []string{"join", "recover", "depart"} {
		if len(byOp[op].Phases) == 0 {
			t.Fatalf("%q event recorded no phase timings", op)
		}
	}
	// Seq must be strictly increasing in the order returned.
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("journal order broken: seq %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}
}

// TestMetricsCountersTrackTraffic checks the registry against known traffic:
// delivered GET counts at least the issued gets, the queue-wait and
// handle-time histograms saw every dispatch, and the totals survive a
// depart + tombstone reap (the retired aggregate keeps them monotonic).
func TestMetricsCountersTrackTraffic(t *testing.T) {
	c, keys := liveCluster(t, 24, 200, 457)
	ids := c.PeerIDs()
	rng := rand.New(rand.NewSource(461))
	const gets = 100
	for i := 0; i < gets; i++ {
		k := keys[rng.Intn(len(keys))]
		if _, found, _, err := c.Get(ids[rng.Intn(len(ids))], k); err != nil || !found {
			t.Fatalf("get %d: found=%v err=%v", k, found, err)
		}
	}
	m := c.Metrics()
	if m.Delivered["GET"] < gets {
		t.Fatalf("delivered GET = %d, want >= %d", m.Delivered["GET"], gets)
	}
	if m.QueueWait.Count < gets || m.HandleTime.Count < gets {
		t.Fatalf("histograms saw %d waits / %d handles, want >= %d each",
			m.QueueWait.Count, m.HandleTime.Count, gets)
	}
	var perPeer int64
	for _, s := range m.Peers {
		perPeer += s.Delivered["GET"]
	}
	if perPeer != m.Delivered["GET"] {
		t.Fatalf("per-peer GET sum %d != cluster total %d", perPeer, m.Delivered["GET"])
	}
	before := m.Delivered["GET"]

	// Retire a peer and run enough structural ops to reap its tombstone;
	// the cluster totals must not go backwards.
	if err := c.Depart(ids[len(ids)-1]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		id, err := c.Join(c.PeerIDs()[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Depart(id); err != nil {
			t.Fatal(err)
		}
	}
	if after := c.Metrics().Delivered["GET"]; after < before {
		t.Fatalf("delivered GET total went backwards across reap: %d -> %d", before, after)
	}
}
