// Adjacent-peer replication: the data half of the fault-tolerance layer.
//
// Every peer keeps a full copy of its items at its replica holder — the
// right adjacent peer, or the left adjacent for the rightmost peer (the
// rule is core.ReplicaHolderOf, shared with the invariant audit). The copy
// is maintained on two paths:
//
//   - Write path, asynchronously: a Put/Delete/bulk write/handoff absorb is
//     applied locally, a kindReplicate message with the delta is fired at
//     the holder, and the client is acknowledged without waiting for it.
//     Replication therefore trails acknowledgement by at most the message
//     in flight; SyncReplicas is the barrier that closes that window.
//   - Membership path, synchronously: after every structural operation
//     (Join, Depart, LoadBalance, Recover) the coordinator tells every peer
//     whose position in the overlay changed to re-ship its full item set to
//     its current holder (kindReplicaResync -> kindReplicaSync), and waits
//     for the holders' acknowledgements before the operation returns. A
//     sync wholesale-replaces the holder's set for that source, so range
//     handoffs can never leave stale replica keys behind.
//
// Recovery (recovery.go) reads the surviving copy back with
// kindReplicaFetch when the source has crashed. One replica tolerates one
// crash between repairs: if a peer and its holder die together, the range
// is repaired but its data is gone (ErrReplicaLost).
package p2p

import (
	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/store"
)

// replicaTarget returns the peer that should hold this peer's replica,
// derived from the current adjacent links: the right adjacent, else the
// left adjacent, else nobody (single-peer overlay). It is the live-link
// counterpart of core.ReplicaHolderOf.
func (p *peer) replicaTarget() core.PeerID {
	if p.adjacent[1] != nil {
		return p.adjacent[1].id
	}
	if p.adjacent[0] != nil {
		return p.adjacent[0].id
	}
	return core.NoPeer
}

// replicaFor returns (creating if needed) the replica store this peer keeps
// for the given source peer. Runs in the peer's goroutine.
func (p *peer) replicaFor(src core.PeerID) *store.Store {
	st := p.replicas[src]
	if st == nil {
		if p.replicas == nil {
			p.replicas = make(map[core.PeerID]*store.Store)
		}
		st = store.New()
		p.replicas[src] = st
	}
	return st
}

// replicateWrite fires the write-path delta (upserts and deletions this
// peer just applied to its own store) at the replica holder. It is
// asynchronous and unacknowledged: a dead holder simply drops the message,
// and the next structural resync re-ships the full set. Deltas from one
// source apply in order — the source's goroutine sends them sequentially
// and delivery to a peer is FIFO across the inbox and its spill queue
// (deliverTo) — but a wholesale sync travels from a different goroutine
// (the structural coordinator's resync), so a delta sent before the sync
// was taken can still be delivered after it. Every message is therefore
// stamped with the source's monotonically increasing sequence number;
// without the stamp such a late delta would silently resurrect a deleted
// key (or regress a value) in the freshly synced set.
func (c *Cluster) replicateWrite(p *peer, ups []store.Item, dels []keyspace.Key) {
	to := p.replicaTarget()
	if to == core.NoPeer {
		return
	}
	p.replSeq++
	c.send(to, request{kind: kindReplicate, src: p.id, bulk: ups, dels: dels, seq: p.replSeq})
}

// applyReplicate folds an incremental replica delta into the holder's set
// for the source — unless the delta predates the last wholesale sync from
// that source, in which case its effect is already (correctly) absent from
// the synced set and applying it would corrupt the replica. Runs in the
// holder's goroutine.
func (c *Cluster) applyReplicate(p *peer, req request) {
	if req.seq < p.replicaMin[req.src] {
		return // stale: delivered after a later wholesale sync was absorbed
	}
	st := p.replicaFor(req.src)
	for _, it := range req.bulk {
		st.Put(it.Key, it.Value)
	}
	for _, k := range req.dels {
		st.Delete(k)
	}
}

// applyReplicaSync wholesale-replaces the holder's replica set for the
// source with the shipped items and acknowledges to whoever is waiting
// (the coordinator of a structural operation, via the reply channel the
// source forwarded here). The sync's sequence number becomes the floor
// below which late incremental deltas from this source are discarded. A
// delta the source sent *after* the sync can still apply first and be
// overwritten by it — that only affects writes acknowledged after the
// barrier, which the next sync repairs; the SyncReplicas guarantee covers
// writes acknowledged before the barrier, and those are in the sync's
// content.
func (c *Cluster) applyReplicaSync(p *peer, req request) {
	st := store.New()
	st.Absorb(req.bulk)
	if p.replicas == nil {
		p.replicas = make(map[core.PeerID]*store.Store)
	}
	if p.replicaMin == nil {
		p.replicaMin = make(map[core.PeerID]int64)
	}
	p.replicas[req.src] = st
	p.replicaMin[req.src] = req.seq
	c.respond(req, response{count: len(req.bulk), hops: req.hops})
}

// handleReplicaResync runs at the source peer: ship the full local item set
// to the current replica target, telling the previous target (if it
// changed) to drop the stale set. The coordinator's reply channel rides on
// the sync message so the holder acknowledges straight back to it; when
// there is no holder, or the holder is dead, the source answers itself so
// the coordinator never hangs.
func (c *Cluster) handleReplicaResync(p *peer, req request) {
	target := p.replicaTarget()
	if p.replTo != core.NoPeer && p.replTo != target && c.topo.Load().members[p.replTo] {
		// Tell the previous holder to discard the stale set — but only while
		// it is still a member. A holder that departed in the operation that
		// moved this peer's adjacency is a tombstone now, and a tombstone
		// forwards everything to the peer that absorbed its range — which can
		// be exactly the NEW holder, so the forwarded drop would land after
		// the sync below and delete the freshly shipped set (losing the only
		// copy until the next resync). Tombstone-held sets die at the reap.
		c.send(p.replTo, request{kind: kindReplicaDrop, src: p.id})
	}
	p.replTo = target
	if target == core.NoPeer {
		c.respond(req, response{hops: req.hops})
		return
	}
	p.replSeq++
	// The coordinator's completion — reply channel or wire correlation —
	// rides on the sync so the holder acknowledges straight back to it.
	sync := request{kind: kindReplicaSync, src: p.id, bulk: p.data.Items(), seq: p.replSeq,
		reply: req.reply, rcorr: req.rcorr, rnode: req.rnode}
	if !c.send(target, sync) {
		// The holder is dead (or the cluster is stopping): this peer is
		// unprotected until the next structural change re-seats it.
		c.respond(req, response{hops: req.hops, err: ErrOwnerDown})
	}
}

// handleReplicaDump exports every replica set this peer holds (audit path).
func (c *Cluster) handleReplicaDump(p *peer, req request) {
	out := make(map[core.PeerID][]store.Item, len(p.replicas))
	for src, st := range p.replicas {
		out[src] = st.Items()
	}
	c.respond(req, response{replicaSets: out, hops: req.hops})
}

// applyCrash wipes the peer's stores — its own items, the replicas it held
// for others, and any buffered state: the process is gone, and recovery
// must be able to trust that nothing it restores came from the corpse.
// Held requests (there can be none outside a structural operation, and Kill
// serialises with those, but be defensive) are refused rather than dropped.
func (c *Cluster) applyCrash(p *peer, req request) {
	p.data.Clear()
	p.noteItems()
	p.replicas = nil
	p.replicaMin = nil
	p.replTo = core.NoPeer
	p.pending = nil
	held := p.held
	p.held = nil
	for _, h := range held {
		c.refuse(p, h, ErrOwnerDown)
	}
	c.respond(req, response{hops: req.hops})
}

// resyncReplicas tells each of the given peers (every member when ids is
// nil) to full-sync its items to its current replica holder, and waits for
// the holders' acknowledgements. Dead peers are skipped — their wiped
// stores have nothing to ship. Callers hold memberMu.
func (c *Cluster) resyncReplicas(ids []core.PeerID) error {
	if ids == nil {
		ids = c.topo.Load().ids
	}
	acks := make([]chan response, 0, len(ids))
	for _, id := range ids {
		ch := make(chan response, 1)
		if !c.send(id, request{kind: kindReplicaResync, reply: ch}) {
			continue
		}
		acks = append(acks, ch)
	}
	return c.waitAcks(acks)
}

// SyncReplicas forces every alive peer to re-ship its full item set to its
// replica holder and waits until every holder has absorbed it. It is the
// replication barrier: every write acknowledged before SyncReplicas was
// called is on its holder when SyncReplicas returns, so a single crash
// after the call loses nothing (the write path alone replicates
// asynchronously, trailing acknowledgement by the message in flight).
// SyncReplicas serialises with membership changes.
func (c *Cluster) SyncReplicas() error {
	if err := c.requireCoordinator(); err != nil {
		return err
	}
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	if c.stopped.Load() {
		return ErrStopped
	}
	return c.resyncReplicas(nil)
}

// Replicas exports, for every member peer, the replica sets it currently
// holds, keyed by holder and then by source peer. Together with Snapshot it
// feeds core.VerifyReplication, the audit that every peer's items are fully
// and exactly mirrored at its holder. Like Snapshot it holds the membership
// lock, so no handoff or resync is in flight; call SyncReplicas first to
// close the asynchronous write-path window.
func (c *Cluster) Replicas() (map[core.PeerID]map[core.PeerID][]store.Item, error) {
	if err := c.requireCoordinator(); err != nil {
		return nil, err
	}
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	if c.stopped.Load() {
		return nil, ErrStopped
	}
	t := c.topo.Load()
	type wait struct {
		id core.PeerID
		ch chan response
	}
	waits := make([]wait, 0, len(t.ids))
	for _, id := range t.ids {
		ch := make(chan response, 1)
		if !c.send(id, request{kind: kindReplicaDump, reply: ch}) {
			continue // dead peers hold nothing
		}
		waits = append(waits, wait{id: id, ch: ch})
	}
	out := make(map[core.PeerID]map[core.PeerID][]store.Item, len(waits))
	for _, w := range waits {
		select {
		case resp := <-w.ch:
			if resp.err == nil {
				out[w.id] = resp.replicaSets
			}
		case <-c.done:
			return nil, ErrStopped
		}
	}
	return out, nil
}

// itemsWithin returns the items whose keys fall inside r, preserving order.
func itemsWithin(items []store.Item, r keyspace.Range) []store.Item {
	out := make([]store.Item, 0, len(items))
	for _, it := range items {
		if r.Contains(it.Key) {
			out = append(out, it)
		}
	}
	return out
}
