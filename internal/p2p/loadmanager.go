// Adaptive load management for the live cluster: cheap per-peer load
// metering and the opt-in background balancer of Section V.
//
// Metering is two numbers per peer. The stored-item count is the paper's
// load measure and what every balancing decision uses; the request-rate
// EWMA (data messages handled per second, exponentially smoothed across
// Loads calls) is the traffic-side signal, fed by a single atomic increment
// on the peer's message loop. Loads snapshots both without taking the
// membership lock, and ImbalanceRatio condenses a snapshot into the
// max/average stored-load ratio — 1.0 is perfectly balanced; the paper's
// skew experiments are about keeping this bounded where Chord's grows.
//
// The balancer (StartAutoBalance / BalanceOnce) applies the paper's two
// schemes. When the most loaded peer exceeds θ times its lighter adjacent
// peer — the Section V trigger — and that neighbour has room (at or below
// the cluster average), the adjacent-peer shuffle moves about half the
// imbalance across the boundary (LoadBalance's machinery). When both
// neighbours are themselves loaded, shuffling would only push the bulge
// around, so the balancer recruits the globally lightest leaf instead: a
// forced depart-and-rejoin (ForceRejoin) in which the light peer hands its
// range to its adjacent heir, vacates its position — restructuring the tree
// along the in-order chain if the removal unbalances it (Section III-E,
// core.ForcedRejoin on the mirror) — and re-joins as a child of the hot
// peer, taking the half of its items above or below the median key. Both
// actions run through the same prepare→extract→handoff→link-update message
// phases as Join and Depart, so traffic keeps flowing, mid-handoff keys are
// buffered, and no acknowledged write is lost.
package p2p

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"baton/internal/core"
)

// PeerLoad is one peer's slice of a Loads snapshot.
type PeerLoad struct {
	// ID is the peer.
	ID core.PeerID
	// Items is the peer's stored-item count — the paper's load measure.
	Items int
	// Requests is the cumulative number of data requests (singleton, range,
	// scatter and bulk messages) the peer has handled.
	Requests int64
	// Rate is the exponentially weighted moving average of the peer's
	// request rate in requests/second, smoothed across Loads calls. It is
	// zero until a second call gives the meter a time base.
	Rate float64
}

// loadRateAlpha weights the newest rate sample in the EWMA.
const loadRateAlpha = 0.5

// Loads returns a load snapshot of every alive member peer, in ascending
// peer-ID order. It is message-free and never takes the membership lock —
// item counts and request counters are atomics the peers publish
// (noteItems), so metering can run on a tight cadence without queueing
// behind data traffic or structural operations. A concurrent membership
// change can make the snapshot catch a migration in flight; callers that
// need a decision-grade view serialise via BalanceOnce.
//
// Exception to "message-free": the coordinator of a multi-process overlay
// first refreshes the counters of remotely hosted peers with one control
// RPC per connected node (node.go); single-process clusters pay nothing.
func (c *Cluster) Loads() ([]PeerLoad, error) {
	if c.stopped.Load() {
		return nil, ErrStopped
	}
	if c.net != nil && c.net.isHead {
		c.net.gatherRemoteLoads(c)
	}
	t := c.topo.Load()
	now := time.Now()
	out := make([]PeerLoad, 0, len(t.ids))
	for _, id := range t.ids {
		p := t.peers[id]
		if p == nil || !p.alive.Load() {
			continue
		}
		out = append(out, PeerLoad{ID: id, Items: int(p.items.Load()), Requests: p.reqs.Load()})
	}
	// Fold the cumulative counters into per-peer rate EWMAs. The state is
	// keyed by peer and survives between calls; entries for departed peers
	// are dropped so a long-lived churning cluster does not leak them.
	c.loadMu.Lock()
	dt := now.Sub(c.loadLastAt).Seconds()
	if c.loadLastReqs == nil {
		c.loadLastReqs = make(map[core.PeerID]int64)
		c.loadRates = make(map[core.PeerID]float64)
	}
	seen := make(map[core.PeerID]bool, len(out))
	for i := range out {
		id := out[i].ID
		seen[id] = true
		last, known := c.loadLastReqs[id]
		if known && !c.loadLastAt.IsZero() && dt > 0 {
			inst := float64(out[i].Requests-last) / dt
			c.loadRates[id] = loadRateAlpha*inst + (1-loadRateAlpha)*c.loadRates[id]
		}
		c.loadLastReqs[id] = out[i].Requests
		out[i].Rate = c.loadRates[id]
	}
	for id := range c.loadLastReqs {
		if !seen[id] {
			delete(c.loadLastReqs, id)
			delete(c.loadRates, id)
		}
	}
	c.loadLastAt = now
	c.loadMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// ImbalanceRatio condenses a load snapshot into the max/average stored-item
// ratio: 1.0 means perfectly balanced, N means the hottest peer carries N
// times its fair share. An empty or item-less snapshot reports 1.0.
func ImbalanceRatio(loads []PeerLoad) float64 {
	if len(loads) == 0 {
		return 1
	}
	total, maxItems := 0, 0
	for _, l := range loads {
		total += l.Items
		if l.Items > maxItems {
			maxItems = l.Items
		}
	}
	if total == 0 {
		return 1
	}
	return float64(maxItems) / (float64(total) / float64(len(loads)))
}

// ImbalanceRatio reports the cluster's current max/average stored-load
// ratio over the alive peers.
func (c *Cluster) ImbalanceRatio() (float64, error) {
	loads, err := c.Loads()
	if err != nil {
		return 0, err
	}
	return ImbalanceRatio(loads), nil
}

// BalanceEvents returns how many balancing actions (adjacent shuffles and
// forced rejoins) the cluster has completed, manual calls included.
func (c *Cluster) BalanceEvents() int64 { return c.balanceEvents.Load() }

// AutoBalanceConfig tunes the background balancer. The zero value picks the
// defaults noted per field.
type AutoBalanceConfig struct {
	// Theta is the Section V trigger: a peer is considered overloaded when
	// its stored-item count exceeds Theta times its lighter alive adjacent
	// peer's. Values <= 1 default to 2.
	Theta float64
	// Interval is the cadence of the background balancer's checks. Values
	// <= 0 default to 50ms.
	Interval time.Duration
	// MinItems is the load floor: peers holding fewer items are never
	// considered overloaded, whatever the ratio — rebalancing a handful of
	// items is churn for nothing. Values <= 0 default to 16.
	MinItems int
}

func (cfg AutoBalanceConfig) withDefaults() AutoBalanceConfig {
	if cfg.Theta <= 1 {
		cfg.Theta = 2
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * time.Millisecond
	}
	if cfg.MinItems <= 0 {
		cfg.MinItems = 16
	}
	return cfg
}

// BalanceAction reports what a BalanceOnce pass did.
type BalanceAction int

const (
	// BalanceNone: no peer exceeded the trigger, or no profitable action
	// existed.
	BalanceNone BalanceAction = iota
	// BalanceShuffle: the hot peer ran the adjacent-peer shuffle.
	BalanceShuffle
	// BalanceRejoin: a light peer was recruited for a forced
	// depart-and-rejoin next to the hot peer.
	BalanceRejoin
)

// String names the action for logs and reports.
func (a BalanceAction) String() string {
	switch a {
	case BalanceShuffle:
		return "shuffle"
	case BalanceRejoin:
		return "rejoin"
	default:
		return "none"
	}
}

// BalanceOnce runs one pass of the balancing policy: measure every alive
// peer, find the most loaded one, and — if it exceeds cfg.Theta times its
// lighter alive adjacent peer and holds at least cfg.MinItems — balance it,
// with the adjacent shuffle when the lighter neighbour has room (at or
// below the cluster average) and a forced rejoin of the globally lightest
// viable leaf when both neighbours are themselves loaded. It returns the
// action taken and the number of items that moved. BalanceOnce is one
// structural operation: it serialises with Join/Depart/Kill/Recover on the
// membership lock while data traffic keeps flowing.
func (c *Cluster) BalanceOnce(cfg AutoBalanceConfig) (BalanceAction, int, error) {
	cfg = cfg.withDefaults()
	if err := c.requireCoordinator(); err != nil {
		return BalanceNone, 0, err
	}
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	if c.stopped.Load() {
		return BalanceNone, 0, ErrStopped
	}

	// Measure under the lock so the decision and the action see the same
	// composition. One retry per probe (peerCountRetry); a peer that still
	// errs is skipped for this pass, the next tick re-measures.
	counts := make(map[core.PeerID]int, len(c.states))
	total, alive := 0, 0
	hot := core.NoPeer
	for _, id := range c.topo.Load().ids {
		if !c.Alive(id) {
			continue
		}
		n, err := c.peerCountRetry(id)
		if err != nil {
			continue
		}
		counts[id] = n
		total += n
		alive++
		if hot == core.NoPeer || n > counts[hot] || (n == counts[hot] && id < hot) {
			hot = id
		}
	}
	if hot == core.NoPeer || alive < 2 || counts[hot] < cfg.MinItems {
		return BalanceNone, 0, nil
	}
	avg := float64(total) / float64(alive)

	// The Section V trigger: compare against the lighter alive adjacent.
	ps := c.states[hot]
	lighter := -1
	for _, aid := range []core.PeerID{ps.LeftAdjacent, ps.RightAdjacent} {
		if aid == core.NoPeer || !c.Alive(aid) {
			continue
		}
		if n, ok := counts[aid]; ok && (lighter < 0 || n < lighter) {
			lighter = n
		}
	}
	if lighter < 0 {
		return BalanceNone, 0, nil // both neighbours dead: recovery's job first
	}
	// Two triggers: the paper's local one (θ times the lighter adjacent
	// peer), and a global one (θ times the cluster average) for the plateau
	// case — a block of equally hot peers never trips the local ratio even
	// when each carries many times its fair share, and only a rejoin that
	// recruits from outside the plateau can spread it.
	overAdjacent := float64(counts[hot]) > cfg.Theta*math.Max(float64(lighter), 1)
	overAverage := float64(counts[hot]) > cfg.Theta*math.Max(avg, 1)
	if !overAdjacent && !overAverage {
		return BalanceNone, 0, nil
	}

	// Scheme 1 — adjacent shuffle — when the lighter neighbour has room:
	// pushing half the imbalance at a peer already above the average only
	// moves the bulge one slot over.
	if overAdjacent && float64(lighter) <= avg {
		moved, err := c.loadBalanceLocked(hot)
		if err != nil {
			return BalanceNone, 0, err
		}
		if moved == 0 {
			return BalanceNone, 0, nil
		}
		c.balanceEvents.Add(1)
		return BalanceShuffle, moved, nil
	}

	// Scheme 2 — forced rejoin — both neighbours loaded: recruit the
	// globally lightest viable leaf, provided it is genuinely light (under
	// half the hot load, so the rejoin strictly improves the spread).
	light := c.lightestRecruit(hot, counts)
	if light == core.NoPeer || 2*counts[light] >= counts[hot] {
		// No viable recruit: fall back to the shuffle even though the
		// neighbours are moderately loaded, like the simulator does.
		moved, err := c.loadBalanceLocked(hot)
		if err != nil || moved == 0 {
			return BalanceNone, 0, err
		}
		c.balanceEvents.Add(1)
		return BalanceShuffle, moved, nil
	}
	moved, err := c.forceRejoinLocked(light, hot)
	if err != nil {
		return BalanceNone, 0, err
	}
	c.balanceEvents.Add(1)
	return BalanceRejoin, moved, nil
}

// lightestRecruit returns the alive leaf with the fewest stored items that
// ForceRejoin can legally recruit for the hot peer: not the hot peer, not
// the root, and with an alive adjacent heir that is not the hot peer itself
// (adjacent pairs balance with the shuffle). NoPeer when none qualifies.
func (c *Cluster) lightestRecruit(hot core.PeerID, counts map[core.PeerID]int) core.PeerID {
	best := core.NoPeer
	for id, ps := range c.states {
		n, measured := counts[id]
		if !measured || id == hot || !c.Alive(id) {
			continue
		}
		if ps.HasChildren() || ps.Position.IsRoot() {
			continue
		}
		heir := ps.RightAdjacent
		if heir == core.NoPeer {
			heir = ps.LeftAdjacent
		}
		if heir == core.NoPeer || heir == hot || !c.Alive(heir) {
			continue
		}
		if best == core.NoPeer || n < counts[best] || (n == counts[best] && id < best) {
			best = id
		}
	}
	return best
}

// ForceRejoin recruits the lightly loaded peer light for the overloaded
// peer hot: light hands its range and items to its adjacent heir, vacates
// its tree position (restructuring along the in-order chain if the removal
// would unbalance the tree — Section III-E, computed on the mirror), and
// re-joins as a child of hot, taking the half of hot's items on one side of
// hot's median key. The change is pushed out through the same message
// phases as Depart and Join — gaining peers buffer before sources shrink,
// handoffs are batched and acknowledged — so traffic keeps flowing and no
// acknowledged write is lost. It returns the number of items that migrated
// (light's handoff to its heir plus hot's handoff to light).
func (c *Cluster) ForceRejoin(light, hot core.PeerID) (int, error) {
	if err := c.requireCoordinator(); err != nil {
		return 0, err
	}
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	if c.stopped.Load() {
		return 0, ErrStopped
	}
	return c.forceRejoinLocked(light, hot)
}

// forceRejoinLocked is the body of ForceRejoin; the caller holds memberMu.
// It journals the rejoin — the balancer's BalanceOnce reaches the journal
// through here too.
func (c *Cluster) forceRejoinLocked(light, hot core.PeerID) (int, error) {
	c.journalBegin("force-rejoin", light)
	n, err := c.rejoinLocked(light, hot)
	c.journalEnd(err)
	return n, err
}

// rejoinLocked performs the forced depart-and-rejoin; the caller holds
// memberMu.
func (c *Cluster) rejoinLocked(light, hot core.PeerID) (int, error) {
	t := c.topo.Load()
	for _, id := range []core.PeerID{light, hot} {
		if !t.members[id] {
			return 0, fmt.Errorf("%w: %d", ErrUnknownPeer, id)
		}
		if !t.peers[id].alive.Load() {
			return 0, fmt.Errorf("%w: %d", ErrOwnerDown, id)
		}
	}
	// The heir that will absorb light's range must be alive to receive the
	// handoff; it is the same adjacent peer the mirror's ForcedRejoin picks.
	ls := c.states[light]
	heir := ls.RightAdjacent
	if heir == core.NoPeer {
		heir = ls.LeftAdjacent
	}
	if heir == core.NoPeer {
		return 0, fmt.Errorf("p2p: peer %d has no adjacent peer to absorb its range: %w", light, ErrUnreachable)
	}
	if heir == hot {
		return 0, fmt.Errorf("p2p: peers %d and %d are adjacent; use LoadBalance's shuffle instead", light, hot)
	}
	if !c.Alive(heir) {
		return 0, fmt.Errorf("%w: heir %d of peer %d", ErrOwnerDown, heir, light)
	}
	// The boundary: hot's median item, so the recruit takes half the load.
	boundary, ok, err := c.peerSplitKey(hot, 0.5)
	if err != nil {
		return 0, err
	}
	hs := c.states[hot]
	if !ok || !validShuffleBoundary(boundary, hs.Range) {
		// Hot's items cluster at a range edge (or outside the domain): no
		// interior key splits the load, so the rejoin cannot help.
		return 0, fmt.Errorf("p2p: no key strictly inside peer %d's range %v splits its load", hot, hs.Range)
	}
	if _, err := c.mirror.ForcedRejoin(light, hot, boundary); err != nil {
		return 0, err
	}
	return c.applyMirrorDiffLocked(nil)
}

// BalanceUntilStable runs BalanceOnce passes until one takes no action, an
// error occurs, or maxPasses have run, and returns the number of actions
// performed along with the first error. It quiesces the balancer's
// remaining work deterministically — a short workload can end between the
// background ticker's fires — so audits and imbalance measurements see the
// policy's converged result rather than a race against the timer.
func (c *Cluster) BalanceUntilStable(cfg AutoBalanceConfig, maxPasses int) (int, error) {
	actions := 0
	for i := 0; i < maxPasses; i++ {
		act, _, err := c.BalanceOnce(cfg)
		if err != nil || act == BalanceNone {
			return actions, err
		}
		actions++
	}
	return actions, nil
}

// balanceLikely is the background balancer's lock-free pre-check: it
// measures through Loads (which never takes the membership lock) and
// applies the same θ triggers BalanceOnce uses, reading adjacency off the
// published ring — the ring is key-ordered and key order is the adjacency
// chain. Only when a trigger plausibly fires does the background loop pay
// for BalanceOnce's serialised re-measurement, so on a balanced cluster the
// timer never blocks structural operations at all. A pre-check that races
// a membership change and misses is harmless: the next tick re-measures.
func (c *Cluster) balanceLikely(cfg AutoBalanceConfig) bool {
	loads, err := c.Loads()
	if err != nil || len(loads) < 2 {
		return false
	}
	counts := make(map[core.PeerID]int, len(loads))
	total := 0
	hot, hotItems := core.NoPeer, -1
	for _, l := range loads {
		counts[l.ID] = l.Items
		total += l.Items
		if l.Items > hotItems {
			hot, hotItems = l.ID, l.Items
		}
	}
	if hotItems < cfg.MinItems {
		return false
	}
	avg := float64(total) / float64(len(loads))
	if float64(hotItems) > cfg.Theta*math.Max(avg, 1) {
		return true
	}
	ring := c.topo.Load().ring
	for i := range ring {
		if ring[i].id != hot {
			continue
		}
		lighter := -1
		for _, j := range []int{i - 1, i + 1} {
			if j < 0 || j >= len(ring) {
				continue
			}
			if n, ok := counts[ring[j].id]; ok && (lighter < 0 || n < lighter) {
				lighter = n
			}
		}
		return lighter >= 0 && float64(hotItems) > cfg.Theta*math.Max(float64(lighter), 1)
	}
	return false
}

// StartAutoBalance starts the opt-in background balancer: a dedicated
// goroutine checks the cluster on the configured cadence until the cluster
// stops, shuffling or force-rejoining whenever the Section V trigger fires.
// Each tick first runs a lock-free measurement (balanceLikely); only when a
// trigger plausibly fires does it run BalanceOnce, which re-measures and
// acts under the membership lock — so an idle, balanced cluster's ticks
// never serialise against Join/Depart/Kill/Recover. Balancing errors are
// dropped — a hot peer may have been killed between the measurement and
// the action, and the next tick re-measures — except that the loop backs
// off for an extra interval after an error so a persistently unbalanceable
// cluster is not hammered. StartAutoBalance is idempotent: the first
// configuration wins and later calls are no-ops; the balancer stops with
// the cluster.
func (c *Cluster) StartAutoBalance(cfg AutoBalanceConfig) {
	if c.autoBalance.Swap(true) {
		return
	}
	cfg = cfg.withDefaults()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		tick := time.NewTicker(cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-tick.C:
				if !c.balanceLikely(cfg) {
					continue
				}
				if _, _, err := c.BalanceOnce(cfg); err != nil && !errors.Is(err, ErrStopped) {
					select {
					case <-c.done:
						return
					case <-tick.C:
					}
				}
			}
		}
	}()
}
