package store

// CheckInvariants exposes the internal structural checker to tests.
func (s *Store) CheckInvariants() error { return s.checkInvariants() }
