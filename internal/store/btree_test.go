package store

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"baton/internal/keyspace"
)

func TestPutGet(t *testing.T) {
	s := New()
	if s.Len() != 0 {
		t.Fatalf("new store not empty")
	}
	if !s.Put(10, []byte("a")) {
		t.Fatalf("first Put should insert")
	}
	if s.Put(10, []byte("b")) {
		t.Fatalf("second Put of same key should replace, not insert")
	}
	v, ok := s.Get(10)
	if !ok || string(v) != "b" {
		t.Fatalf("Get(10) = %q, %v", v, ok)
	}
	if _, ok := s.Get(11); ok {
		t.Fatalf("Get of missing key should report absence")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestPutManyAscendOrder(t *testing.T) {
	s := NewWithDegree(3)
	const n = 1000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		s.Put(keyspace.Key(k), []byte(fmt.Sprint(k)))
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	keys := s.Keys()
	if len(keys) != n {
		t.Fatalf("Keys returned %d keys", len(keys))
	}
	for i, k := range keys {
		if k != keyspace.Key(i) {
			t.Fatalf("keys[%d] = %d, want %d", i, k, i)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	s := NewWithDegree(2)
	for i := 0; i < 200; i++ {
		s.Put(keyspace.Key(i), nil)
	}
	for i := 0; i < 200; i += 2 {
		if !s.Delete(keyspace.Key(i)) {
			t.Fatalf("Delete(%d) should succeed", i)
		}
	}
	if s.Delete(0) {
		t.Fatalf("double delete should fail")
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	for i := 0; i < 200; i++ {
		_, ok := s.Get(keyspace.Key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Delete the rest.
	for i := 1; i < 200; i += 2 {
		if !s.Delete(keyspace.Key(i)) {
			t.Fatalf("Delete(%d) should succeed", i)
		}
	}
	if s.Len() != 0 {
		t.Fatalf("store should be empty, Len = %d", s.Len())
	}
	if _, ok := s.Min(); ok {
		t.Fatalf("Min on empty store should report absence")
	}
}

func TestMinMax(t *testing.T) {
	s := New()
	if _, ok := s.Min(); ok {
		t.Fatal("Min of empty store")
	}
	if _, ok := s.Max(); ok {
		t.Fatal("Max of empty store")
	}
	for _, k := range []keyspace.Key{50, 10, 90, 30, 70} {
		s.Put(k, nil)
	}
	if mn, _ := s.Min(); mn != 10 {
		t.Fatalf("Min = %d", mn)
	}
	if mx, _ := s.Max(); mx != 90 {
		t.Fatalf("Max = %d", mx)
	}
	s.Delete(90)
	if mx, _ := s.Max(); mx != 70 {
		t.Fatalf("Max after delete = %d", mx)
	}
}

func TestScanAndCountRange(t *testing.T) {
	s := NewWithDegree(3)
	for i := 0; i < 100; i++ {
		s.Put(keyspace.Key(i*10), nil)
	}
	items := s.Scan(keyspace.NewRange(95, 250))
	wantKeys := []keyspace.Key{100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210, 220, 230, 240}
	if len(items) != len(wantKeys) {
		t.Fatalf("Scan returned %d items, want %d", len(items), len(wantKeys))
	}
	for i, it := range items {
		if it.Key != wantKeys[i] {
			t.Fatalf("item %d key = %d, want %d", i, it.Key, wantKeys[i])
		}
	}
	if got := s.CountRange(keyspace.NewRange(95, 250)); got != len(wantKeys) {
		t.Fatalf("CountRange = %d, want %d", got, len(wantKeys))
	}
	if got := s.CountRange(keyspace.NewRange(2000, 3000)); got != 0 {
		t.Fatalf("CountRange outside domain = %d", got)
	}
	if got := len(s.Scan(keyspace.NewRange(5, 5))); got != 0 {
		t.Fatalf("Scan of empty range = %d items", got)
	}
}

func TestAscendRangeEarlyStop(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		s.Put(keyspace.Key(i), nil)
	}
	visited := 0
	s.AscendRange(keyspace.NewRange(0, 50), func(Item) bool {
		visited++
		return visited < 7
	})
	if visited != 7 {
		t.Fatalf("early stop visited %d items, want 7", visited)
	}
	visited = 0
	s.Ascend(func(Item) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("Ascend early stop visited %d", visited)
	}
}

// TestScanBatches pins the streaming visitor: batches arrive in key order,
// never exceed the batch size, are never over-allocated, and an early false
// from the visitor stops the walk.
func TestScanBatches(t *testing.T) {
	s := NewWithDegree(3)
	for i := 0; i < 100; i++ {
		s.Put(keyspace.Key(i*10), nil)
	}
	var got []keyspace.Key
	batches := 0
	s.ScanBatches(keyspace.NewRange(95, 545), 10, func(items []Item) bool {
		batches++
		if len(items) > 10 {
			t.Fatalf("batch of %d items exceeds batch size 10", len(items))
		}
		if cap(items) != len(items) {
			t.Fatalf("batch over-allocated: len %d cap %d", len(items), cap(items))
		}
		for _, it := range items {
			got = append(got, it.Key)
		}
		return true
	})
	// Keys 100..540 step 10: 45 items → 4 full batches + one of 5.
	if len(got) != 45 || batches != 5 {
		t.Fatalf("ScanBatches yielded %d items in %d batches, want 45 in 5", len(got), batches)
	}
	for i, k := range got {
		if want := keyspace.Key(100 + i*10); k != want {
			t.Fatalf("item %d key = %d, want %d", i, k, want)
		}
	}
	// Early stop: the visitor's false must end the walk after one batch.
	batches = 0
	s.ScanBatches(keyspace.FullDomain(), 10, func([]Item) bool {
		batches++
		return false
	})
	if batches != 1 {
		t.Fatalf("early stop saw %d batches, want 1", batches)
	}
	// Empty range: the visitor must not be called at all.
	s.ScanBatches(keyspace.NewRange(5000, 6000), 10, func([]Item) bool {
		t.Fatal("visitor called for an empty range")
		return false
	})
}

// TestScanAppend pins the accumulator form: items land behind the existing
// prefix in key order with at most one reallocation.
func TestScanAppend(t *testing.T) {
	s := NewWithDegree(3)
	for i := 0; i < 50; i++ {
		s.Put(keyspace.Key(i), []byte{byte(i)})
	}
	acc := []Item{{Key: -1}}
	acc = s.ScanAppend(acc, keyspace.NewRange(10, 15))
	wantKeys := []keyspace.Key{-1, 10, 11, 12, 13, 14}
	if len(acc) != len(wantKeys) {
		t.Fatalf("ScanAppend result has %d items, want %d", len(acc), len(wantKeys))
	}
	for i, it := range acc {
		if it.Key != wantKeys[i] {
			t.Fatalf("item %d key = %d, want %d", i, it.Key, wantKeys[i])
		}
	}
	if got := s.ScanAppend(nil, keyspace.NewRange(900, 1000)); got != nil {
		t.Fatalf("ScanAppend of empty range = %v, want nil", got)
	}
}

func TestExtractRange(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		s.Put(keyspace.Key(i), []byte{byte(i)})
	}
	moved := s.ExtractRange(keyspace.NewRange(50, 100))
	if len(moved) != 50 {
		t.Fatalf("ExtractRange moved %d items, want 50", len(moved))
	}
	if s.Len() != 50 {
		t.Fatalf("remaining Len = %d, want 50", s.Len())
	}
	for _, it := range moved {
		if it.Key < 50 {
			t.Fatalf("moved item %d should not have been extracted", it.Key)
		}
		if s.Contains(it.Key) {
			t.Fatalf("extracted item %d still present", it.Key)
		}
	}
	other := New()
	other.Absorb(moved)
	if other.Len() != 50 {
		t.Fatalf("Absorb gave Len %d", other.Len())
	}
	if v, ok := other.Get(77); !ok || v[0] != 77 {
		t.Fatalf("absorbed value lost")
	}
}

func TestExtractAllAndClear(t *testing.T) {
	s := New()
	for i := 0; i < 20; i++ {
		s.Put(keyspace.Key(i), nil)
	}
	items := s.ExtractAll()
	if len(items) != 20 || s.Len() != 0 {
		t.Fatalf("ExtractAll: %d items, %d remaining", len(items), s.Len())
	}
	s.Put(1, nil)
	s.Clear()
	if s.Len() != 0 || s.Contains(1) {
		t.Fatalf("Clear did not empty the store")
	}
}

func TestKeyAtFraction(t *testing.T) {
	s := New()
	if _, ok := s.KeyAtFraction(0.5); ok {
		t.Fatal("KeyAtFraction on empty store")
	}
	for i := 0; i < 100; i++ {
		s.Put(keyspace.Key(i), nil)
	}
	if k, _ := s.KeyAtFraction(0); k != 0 {
		t.Fatalf("KeyAtFraction(0) = %d", k)
	}
	if k, _ := s.KeyAtFraction(0.5); k != 50 {
		t.Fatalf("KeyAtFraction(0.5) = %d", k)
	}
	if k, _ := s.KeyAtFraction(1); k != 99 {
		t.Fatalf("KeyAtFraction(1) = %d", k)
	}
	if k, _ := s.KeyAtFraction(-3); k != 0 {
		t.Fatalf("KeyAtFraction(-3) = %d", k)
	}
	if k, _ := s.KeyAtFraction(7); k != 99 {
		t.Fatalf("KeyAtFraction(7) = %d", k)
	}
}

func TestNewWithDegreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWithDegree(1) should panic")
		}
	}()
	NewWithDegree(1)
}

// Property-based test: the store behaves exactly like a map[Key][]byte under
// a random sequence of Put/Delete/Get operations, and iteration order is
// always sorted.
func TestStoreMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		s := NewWithDegree(2 + rng.Intn(6))
		model := map[keyspace.Key][]byte{}
		for op := 0; op < 2000; op++ {
			k := keyspace.Key(rng.Intn(300))
			switch rng.Intn(3) {
			case 0, 1:
				v := []byte{byte(op)}
				s.Put(k, v)
				model[k] = v
			case 2:
				gotDeleted := s.Delete(k)
				_, existed := model[k]
				if gotDeleted != existed {
					t.Fatalf("trial %d op %d: Delete(%d) = %v, model says %v", trial, op, k, gotDeleted, existed)
				}
				delete(model, k)
			}
		}
		if s.Len() != len(model) {
			t.Fatalf("trial %d: Len %d vs model %d", trial, s.Len(), len(model))
		}
		for k, v := range model {
			got, ok := s.Get(k)
			if !ok || string(got) != string(v) {
				t.Fatalf("trial %d: Get(%d) mismatch", trial, k)
			}
		}
		keys := s.Keys()
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("trial %d: keys not strictly ascending", trial)
			}
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// Property: scanning any range returns exactly the model's keys in that
// range.
func TestScanMatchesModelProperty(t *testing.T) {
	f := func(seed int64, loRaw, hiRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		model := map[keyspace.Key]bool{}
		for i := 0; i < 500; i++ {
			k := keyspace.Key(rng.Intn(1000))
			s.Put(k, nil)
			model[k] = true
		}
		lo, hi := keyspace.Key(loRaw%1000), keyspace.Key(hiRaw%1000)
		if lo > hi {
			lo, hi = hi, lo
		}
		r := keyspace.NewRange(lo, hi)
		got := s.Scan(r)
		want := 0
		for k := range model {
			if r.Contains(k) {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		for _, it := range got {
			if !r.Contains(it.Key) || !model[it.Key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStorePut(b *testing.B) {
	s := New()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put(keyspace.Key(rng.Int63n(1<<40)), nil)
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := New()
	for i := 0; i < 100000; i++ {
		s.Put(keyspace.Key(i), nil)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Get(keyspace.Key(rng.Intn(100000)))
	}
}
