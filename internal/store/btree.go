// Package store implements the local storage engine held by every peer in
// the overlay: an in-memory B+-tree keyed by keyspace.Key with ordered
// iteration, range scans, and the bulk split/merge operations the BATON
// protocol needs when a peer hands half of its content to a joining child or
// absorbs the content of a departing neighbour.
package store

import (
	"fmt"
	"sort"

	"baton/internal/keyspace"
)

// DefaultDegree is the default minimum degree of the B+-tree. Every node
// except the root holds between DefaultDegree-1 and 2*DefaultDegree-1 keys.
const DefaultDegree = 16

// Item is a single key/value pair stored at a peer.
type Item struct {
	Key   keyspace.Key
	Value []byte
}

// Store is an ordered key/value store backed by a B+-tree. The zero value is
// not usable; call New.
//
// Store is not safe for concurrent use; the owning peer serialises access.
type Store struct {
	degree int
	root   *node
	size   int
}

// node is a B+-tree node. Leaf nodes carry values and are linked through
// next; internal nodes carry child pointers and separator keys.
type node struct {
	leaf     bool
	keys     []keyspace.Key
	values   [][]byte // leaf only, parallel to keys
	children []*node  // internal only, len(children) == len(keys)+1
	next     *node    // leaf only: right sibling for range scans
}

// New returns an empty store with the default B+-tree degree.
func New() *Store { return NewWithDegree(DefaultDegree) }

// NewWithDegree returns an empty store whose B+-tree has the given minimum
// degree (must be at least 2).
func NewWithDegree(degree int) *Store {
	if degree < 2 {
		panic(fmt.Sprintf("store: degree %d < 2", degree))
	}
	return &Store{degree: degree, root: &node{leaf: true}}
}

// Len returns the number of items in the store.
func (s *Store) Len() int { return s.size }

// maxKeys is the maximum number of keys a node may hold.
func (s *Store) maxKeys() int { return 2*s.degree - 1 }

// Put inserts or replaces the value for key. It reports whether the key was
// newly inserted (true) or replaced (false).
func (s *Store) Put(key keyspace.Key, value []byte) bool {
	if s.root == nil {
		s.root = &node{leaf: true}
	}
	if len(s.root.keys) >= s.maxKeys() {
		old := s.root
		s.root = &node{children: []*node{old}}
		s.splitChild(s.root, 0)
	}
	inserted := s.insertNonFull(s.root, key, value)
	if inserted {
		s.size++
	}
	return inserted
}

func (s *Store) insertNonFull(n *node, key keyspace.Key, value []byte) bool {
	for {
		if n.leaf {
			i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
			if i < len(n.keys) && n.keys[i] == key {
				n.values[i] = value
				return false
			}
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = key
			n.values = append(n.values, nil)
			copy(n.values[i+1:], n.values[i:])
			n.values[i] = value
			return true
		}
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		if len(n.children[i].keys) >= s.maxKeys() {
			s.splitChild(n, i)
			if key >= n.keys[i] {
				i++
			}
		}
		n = n.children[i]
	}
}

// splitChild splits the i-th child of parent, which must be full.
func (s *Store) splitChild(parent *node, i int) {
	child := parent.children[i]
	mid := len(child.keys) / 2
	var sep keyspace.Key
	right := &node{leaf: child.leaf}
	if child.leaf {
		// B+-tree leaf split: the separator is copied up, not moved.
		right.keys = append(right.keys, child.keys[mid:]...)
		right.values = append(right.values, child.values[mid:]...)
		child.keys = child.keys[:mid:mid]
		child.values = child.values[:mid:mid]
		right.next = child.next
		child.next = right
		sep = right.keys[0]
	} else {
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid:mid]
		child.children = child.children[: mid+1 : mid+1]
	}
	parent.keys = append(parent.keys, 0)
	copy(parent.keys[i+1:], parent.keys[i:])
	parent.keys[i] = sep
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

// Get returns the value stored under key and whether it exists.
func (s *Store) Get(key keyspace.Key) ([]byte, bool) {
	n := s.root
	for n != nil {
		if n.leaf {
			i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
			if i < len(n.keys) && n.keys[i] == key {
				return n.values[i], true
			}
			return nil, false
		}
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		n = n.children[i]
	}
	return nil, false
}

// Contains reports whether key is present.
func (s *Store) Contains(key keyspace.Key) bool {
	_, ok := s.Get(key)
	return ok
}

// Delete removes key from the store and reports whether it was present.
//
// Deletion uses lazy structural maintenance: the key is removed from its
// leaf, and the tree is rebuilt when it becomes grossly underfull. This keeps
// the implementation compact while preserving O(log n) amortised behaviour
// for the workloads the overlay generates (deletes are far rarer than
// lookups).
func (s *Store) Delete(key keyspace.Key) bool {
	n := s.root
	for n != nil && !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		n = n.children[i]
	}
	if n == nil {
		return false
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if i >= len(n.keys) || n.keys[i] != key {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.values = append(n.values[:i], n.values[i+1:]...)
	s.size--
	// Rebuild if the tree has become sparse: more than 4 leaves on average
	// emptier than a quarter full.
	if s.size > 0 && s.leafCount() > 4 && s.size < s.leafCount()*(s.degree/2) {
		s.rebuild()
	} else if s.size == 0 {
		s.root = &node{leaf: true}
	}
	return true
}

func (s *Store) leafCount() int {
	n := s.root
	for n != nil && !n.leaf {
		n = n.children[0]
	}
	count := 0
	for n != nil {
		count++
		n = n.next
	}
	return count
}

// rebuild recreates the tree by bulk-loading all current items.
func (s *Store) rebuild() {
	items := s.Items()
	fresh := NewWithDegree(s.degree)
	for _, it := range items {
		fresh.Put(it.Key, it.Value)
	}
	s.root = fresh.root
	s.size = fresh.size
}

// Min returns the smallest key in the store.
func (s *Store) Min() (keyspace.Key, bool) {
	n := s.root
	if n == nil || s.size == 0 {
		return 0, false
	}
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		if len(n.keys) > 0 {
			return n.keys[0], true
		}
		n = n.next
	}
	return 0, false
}

// Max returns the largest key in the store.
func (s *Store) Max() (keyspace.Key, bool) {
	if s.size == 0 {
		return 0, false
	}
	n := s.root
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	// The rightmost leaf cannot be empty unless the whole tree is empty,
	// but lazy deletion may leave empty leaves elsewhere; walk back via a
	// full scan only in that unlikely case.
	if len(n.keys) > 0 {
		return n.keys[len(n.keys)-1], true
	}
	var last keyspace.Key
	found := false
	s.Ascend(func(it Item) bool {
		last = it.Key
		found = true
		return true
	})
	return last, found
}

// Ascend calls fn for every item in ascending key order until fn returns
// false.
func (s *Store) Ascend(fn func(Item) bool) {
	n := s.root
	if n == nil {
		return
	}
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		for i := range n.keys {
			if !fn(Item{Key: n.keys[i], Value: n.values[i]}) {
				return
			}
		}
		n = n.next
	}
}

// AscendRange calls fn for every item with key in [r.Lower, r.Upper) in
// ascending order until fn returns false.
func (s *Store) AscendRange(r keyspace.Range, fn func(Item) bool) {
	if r.IsEmpty() || s.size == 0 {
		return
	}
	// Descend to the leaf that would contain r.Lower.
	n := s.root
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > r.Lower })
		n = n.children[i]
	}
	for n != nil {
		for i := range n.keys {
			k := n.keys[i]
			if k < r.Lower {
				continue
			}
			if k >= r.Upper {
				return
			}
			if !fn(Item{Key: k, Value: n.values[i]}) {
				return
			}
		}
		n = n.next
	}
}

// Scan returns all items with keys in r, in ascending order. The result is
// sized exactly with a counting pre-pass (CountRange): the second leaf walk
// costs no allocation, whereas appending into an unsized slice pays a
// grow-and-copy reallocation per doubling — the dominant allocation of a
// wide range query.
func (s *Store) Scan(r keyspace.Range) []Item {
	n := s.CountRange(r)
	if n == 0 {
		return nil
	}
	out := make([]Item, 0, n)
	s.AscendRange(r, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// ScanBatches calls fn with successive batches of at most batchSize items
// with keys in r, in ascending order, until the range is exhausted or fn
// returns false. It is the visitor form of Scan for streaming consumers:
// the store never materialises the whole result, only one batch at a time,
// so a scan's peak allocation is O(batchSize) instead of O(result). Each
// batch is freshly allocated and handed off to fn (the store keeps no
// reference), so fn may retain or send it. Batches sized for the items
// that remain, never over-allocated.
func (s *Store) ScanBatches(r keyspace.Range, batchSize int, fn func([]Item) bool) {
	if batchSize <= 0 {
		batchSize = 64
	}
	remaining := s.CountRange(r)
	if remaining == 0 {
		return
	}
	var batch []Item
	s.AscendRange(r, func(it Item) bool {
		if batch == nil {
			n := batchSize
			if remaining < n {
				n = remaining
			}
			batch = make([]Item, 0, n)
		}
		batch = append(batch, it)
		if len(batch) == cap(batch) {
			remaining -= len(batch)
			out := batch
			batch = nil
			return fn(out)
		}
		return true
	})
	if len(batch) > 0 {
		fn(batch)
	}
}

// ScanAppend appends all items with keys in r to dst and returns the
// extended slice. Like Scan it pre-sizes with a CountRange pass, but it
// grows the caller's accumulator in place — one reallocation at most, no
// intermediate slice — which is what the serial range walk wants when it
// folds each peer's contribution into the travelling result.
func (s *Store) ScanAppend(dst []Item, r keyspace.Range) []Item {
	n := s.CountRange(r)
	if n == 0 {
		return dst
	}
	if cap(dst)-len(dst) < n {
		grown := make([]Item, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	s.AscendRange(r, func(it Item) bool {
		dst = append(dst, it)
		return true
	})
	return dst
}

// CountRange returns the number of items with keys in r.
func (s *Store) CountRange(r keyspace.Range) int {
	count := 0
	s.AscendRange(r, func(Item) bool {
		count++
		return true
	})
	return count
}

// Items returns every item in ascending key order.
func (s *Store) Items() []Item {
	out := make([]Item, 0, s.size)
	s.Ascend(func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// Keys returns every key in ascending order.
func (s *Store) Keys() []keyspace.Key {
	out := make([]keyspace.Key, 0, s.size)
	s.Ascend(func(it Item) bool {
		out = append(out, it.Key)
		return true
	})
	return out
}

// ExtractRange removes all items with keys in r from the store and returns
// them in ascending order. BATON uses this when a peer hands part of its
// content to another peer (child split, load-balancing boundary shift, or
// departure).
func (s *Store) ExtractRange(r keyspace.Range) []Item {
	moved := s.Scan(r)
	for _, it := range moved {
		s.Delete(it.Key)
	}
	return moved
}

// ExtractAll removes and returns every item in the store.
func (s *Store) ExtractAll() []Item {
	items := s.Items()
	s.Clear()
	return items
}

// Absorb inserts every item into the store (used when a peer takes over the
// content of another peer). Existing keys are overwritten.
func (s *Store) Absorb(items []Item) {
	for _, it := range items {
		s.Put(it.Key, it.Value)
	}
}

// Clear removes every item.
func (s *Store) Clear() {
	s.root = &node{leaf: true}
	s.size = 0
}

// KeyAtFraction returns the key located at the given fraction (0..1) of the
// store's items in key order. It is used by load balancing to find the
// boundary that splits the local content into a given proportion. The second
// return value is false when the store is empty.
func (s *Store) KeyAtFraction(frac float64) (keyspace.Key, bool) {
	if s.size == 0 {
		return 0, false
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	target := int(frac * float64(s.size))
	if target >= s.size {
		target = s.size - 1
	}
	var result keyspace.Key
	idx := 0
	found := false
	s.Ascend(func(it Item) bool {
		if idx == target {
			result = it.Key
			found = true
			return false
		}
		idx++
		return true
	})
	return result, found
}

// checkInvariants verifies structural invariants of the B+-tree and panics
// with a descriptive message when one is violated. It is exported to tests
// through export_test.go.
func (s *Store) checkInvariants() error {
	if s.root == nil {
		return fmt.Errorf("store: nil root")
	}
	// Keys strictly ascending across the whole tree.
	var prev keyspace.Key
	first := true
	count := 0
	var err error
	s.Ascend(func(it Item) bool {
		if !first && it.Key <= prev {
			err = fmt.Errorf("store: keys out of order: %d after %d", it.Key, prev)
			return false
		}
		prev = it.Key
		first = false
		count++
		return true
	})
	if err != nil {
		return err
	}
	if count != s.size {
		return fmt.Errorf("store: size %d but iterated %d items", s.size, count)
	}
	return s.checkNode(s.root)
}

func (s *Store) checkNode(n *node) error {
	if n.leaf {
		if len(n.keys) != len(n.values) {
			return fmt.Errorf("store: leaf has %d keys but %d values", len(n.keys), len(n.values))
		}
		return nil
	}
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("store: internal node has %d keys but %d children", len(n.keys), len(n.children))
	}
	for _, c := range n.children {
		if err := s.checkNode(c); err != nil {
			return err
		}
	}
	return nil
}
