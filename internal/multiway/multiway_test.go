package multiway

import (
	"fmt"
	"math/rand"
	"testing"

	"baton/internal/core"
	"baton/internal/keyspace"
)

func buildTree(t testing.TB, n int, seed int64) *Tree {
	t.Helper()
	tr := NewTree(Config{Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	for tr.Size() < n {
		ids := tr.PeerIDs()
		if _, _, err := tr.Join(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatalf("join at size %d: %v", tr.Size(), err)
		}
	}
	return tr
}

func TestNewTree(t *testing.T) {
	tr := NewTree(Config{})
	if tr.Size() != 1 || tr.Depth() != 1 {
		t.Fatalf("size=%d depth=%d", tr.Size(), tr.Depth())
	}
	if tr.Fanout() != DefaultFanout {
		t.Fatalf("fanout = %d, want %d", tr.Fanout(), DefaultFanout)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinGrowsTree(t *testing.T) {
	for _, size := range []int{2, 10, 50, 150} {
		tr := buildTree(t, size, int64(size))
		if tr.Size() != size {
			t.Fatalf("size = %d", tr.Size())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestJoinUnknownPeer(t *testing.T) {
	tr := NewTree(Config{})
	if _, _, err := tr.Join(PeerID(404)); err == nil {
		t.Fatal("join via unknown peer should error")
	}
}

func TestInsertSearchExact(t *testing.T) {
	tr := buildTree(t, 60, 3)
	rng := rand.New(rand.NewSource(3))
	keys := make([]keyspace.Key, 0, 400)
	for i := 0; i < 400; i++ {
		k := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-keyspace.DomainMin)))
		keys = append(keys, k)
		if _, err := tr.Insert(tr.RandomPeer(), k, []byte(fmt.Sprint(k))); err != nil {
			t.Fatal(err)
		}
	}
	if tr.ItemCount() == 0 {
		t.Fatal("no items stored")
	}
	for _, k := range keys {
		v, found, _, err := tr.SearchExact(tr.RandomPeer(), k)
		if err != nil {
			t.Fatal(err)
		}
		if !found || string(v) != fmt.Sprint(k) {
			t.Fatalf("key %d: found=%v value=%q", k, found, v)
		}
	}
}

func TestSearchRange(t *testing.T) {
	tr := buildTree(t, 40, 5)
	rng := rand.New(rand.NewSource(5))
	inserted := make([]keyspace.Key, 0, 500)
	for i := 0; i < 500; i++ {
		k := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-keyspace.DomainMin)))
		inserted = append(inserted, k)
		if _, err := tr.Insert(tr.RandomPeer(), k, nil); err != nil {
			t.Fatal(err)
		}
	}
	r := keyspace.NewRange(100_000_000, 400_000_000)
	want := 0
	for _, k := range inserted {
		if r.Contains(k) {
			want++
		}
	}
	got, cost, err := tr.SearchRange(tr.RandomPeer(), r)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("range query matched %d keys, want %d", got, want)
	}
	if cost.Messages == 0 {
		t.Fatal("range query over a third of the domain should cost messages")
	}
	if n, _, err := tr.SearchRange(tr.RandomPeer(), keyspace.NewRange(7, 7)); err != nil || n != 0 {
		t.Fatalf("empty range query: %d, %v", n, err)
	}
}

func TestLeave(t *testing.T) {
	tr := buildTree(t, 50, 7)
	rng := rand.New(rand.NewSource(7))
	keys := make([]keyspace.Key, 0, 200)
	for i := 0; i < 200; i++ {
		k := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-keyspace.DomainMin)))
		keys = append(keys, k)
		if _, err := tr.Insert(tr.RandomPeer(), k, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		ids := tr.PeerIDs()
		if _, err := tr.Leave(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after leave %d: %v", i, err)
		}
	}
	if tr.Size() != 20 {
		t.Fatalf("size = %d, want 20", tr.Size())
	}
	// No data may be lost.
	if tr.ItemCount() < 190 { // duplicates collapse, allow a small margin
		t.Fatalf("items after departures = %d", tr.ItemCount())
	}
	found := 0
	for _, k := range keys {
		_, ok, _, err := tr.SearchExact(tr.RandomPeer(), k)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			found++
		}
	}
	if found != len(keys) {
		t.Fatalf("only %d of %d keys still reachable", found, len(keys))
	}
}

func TestLeaveLastPeer(t *testing.T) {
	tr := NewTree(Config{})
	if _, err := tr.Leave(tr.PeerIDs()[0]); err != ErrLastPeer {
		t.Fatalf("expected ErrLastPeer, got %v", err)
	}
	if _, err := tr.Leave(PeerID(500)); err == nil {
		t.Fatal("leave of unknown peer should error")
	}
}

// TestHotSpotJoinsStayBalanced pins the documented substitution: unlike the
// original workshop paper's tree, the shared core keeps the multiway baseline
// balanced even when every join arrives at the same hot peer, so the depth
// stays logarithmic. What the baseline still lacks is long-distance links,
// which TestSearchCostsMoreThanBatonStar measures.
func TestHotSpotJoinsStayBalanced(t *testing.T) {
	tr := NewTree(Config{Fanout: 2, Seed: 11})
	hot := tr.PeerIDs()[0]
	for i := 0; i < 40; i++ {
		if _, _, err := tr.Join(hot); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	balancedDepth := 7 // ceil(log2(41)) + 1
	if tr.Depth() > balancedDepth {
		t.Fatalf("hot-spot joins must stay balanced within depth %d, got %d", balancedDepth, tr.Depth())
	}
}

// TestSearchCostsMoreThanBatonStar pins the degenerate-case relationship: the
// multiway tree is a BATON* network that never consults its sideways routing
// tables, so over the same key set its exact-match searches must cost
// strictly more messages in aggregate than the same-fanout BATON* network's.
func TestSearchCostsMoreThanBatonStar(t *testing.T) {
	const size, queries = 120, 300
	build := func(nw *core.Network, seed int64) []keyspace.Key {
		rng := rand.New(rand.NewSource(seed))
		for nw.Size() < size {
			ids := nw.PeerIDs()
			if _, _, err := nw.Join(ids[rng.Intn(len(ids))]); err != nil {
				t.Fatal(err)
			}
		}
		keys := make([]keyspace.Key, 0, 400)
		for i := 0; i < 400; i++ {
			k := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-keyspace.DomainMin)))
			keys = append(keys, k)
			if _, err := nw.Insert(nw.RandomPeer(), k, nil); err != nil {
				t.Fatal(err)
			}
		}
		return keys
	}
	measure := func(nw *core.Network, keys []keyspace.Key, seed int64) int {
		rng := rand.New(rand.NewSource(seed))
		total := 0
		for q := 0; q < queries; q++ {
			_, found, cost, err := nw.SearchExact(nw.RandomPeer(), keys[rng.Intn(len(keys))])
			if err != nil || !found {
				t.Fatalf("search: found=%v err=%v", found, err)
			}
			total += cost.Messages
		}
		return total
	}

	mw := NewTree(Config{Fanout: 4, Seed: 21})
	mwKeys := build(mw.nw, 21)
	star := core.NewNetwork(core.Config{Fanout: 4, Seed: 21})
	starKeys := build(star, 21)

	mwCost := measure(mw.nw, mwKeys, 23)
	starCost := measure(star, starKeys, 23)
	if mwCost <= starCost {
		t.Fatalf("multiway searches cost %d messages, BATON* %d: removing the sideways tables must not be free", mwCost, starCost)
	}
}
