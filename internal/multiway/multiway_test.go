package multiway

import (
	"fmt"
	"math/rand"
	"testing"

	"baton/internal/keyspace"
)

func buildTree(t testing.TB, n int, seed int64) *Tree {
	t.Helper()
	tr := NewTree(Config{Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	for tr.Size() < n {
		ids := tr.PeerIDs()
		if _, _, err := tr.Join(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatalf("join at size %d: %v", tr.Size(), err)
		}
	}
	return tr
}

func TestNewTree(t *testing.T) {
	tr := NewTree(Config{})
	if tr.Size() != 1 || tr.Depth() != 1 {
		t.Fatalf("size=%d depth=%d", tr.Size(), tr.Depth())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinGrowsTree(t *testing.T) {
	for _, size := range []int{2, 10, 50, 150} {
		tr := buildTree(t, size, int64(size))
		if tr.Size() != size {
			t.Fatalf("size = %d", tr.Size())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestJoinUnknownPeer(t *testing.T) {
	tr := NewTree(Config{})
	if _, _, err := tr.Join(PeerID(404)); err == nil {
		t.Fatal("join via unknown peer should error")
	}
}

func TestInsertSearchExact(t *testing.T) {
	tr := buildTree(t, 60, 3)
	rng := rand.New(rand.NewSource(3))
	keys := make([]keyspace.Key, 0, 400)
	for i := 0; i < 400; i++ {
		k := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-keyspace.DomainMin)))
		keys = append(keys, k)
		if _, err := tr.Insert(tr.RandomPeer(), k, []byte(fmt.Sprint(k))); err != nil {
			t.Fatal(err)
		}
	}
	if tr.ItemCount() == 0 {
		t.Fatal("no items stored")
	}
	for _, k := range keys {
		v, found, cost, err := tr.SearchExact(tr.RandomPeer(), k)
		if err != nil {
			t.Fatal(err)
		}
		if !found || string(v) != fmt.Sprint(k) {
			t.Fatalf("key %d: found=%v value=%q", k, found, v)
		}
		if cost.Messages == 0 {
			// A query issued at the owner itself legitimately costs nothing.
			continue
		}
	}
}

func TestSearchRange(t *testing.T) {
	tr := buildTree(t, 40, 5)
	rng := rand.New(rand.NewSource(5))
	inserted := make([]keyspace.Key, 0, 500)
	for i := 0; i < 500; i++ {
		k := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-keyspace.DomainMin)))
		inserted = append(inserted, k)
		if _, err := tr.Insert(tr.RandomPeer(), k, nil); err != nil {
			t.Fatal(err)
		}
	}
	r := keyspace.NewRange(100_000_000, 400_000_000)
	want := 0
	for _, k := range inserted {
		if r.Contains(k) {
			want++
		}
	}
	got, cost, err := tr.SearchRange(tr.RandomPeer(), r)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("range query matched %d keys, want %d", got, want)
	}
	if cost.Messages == 0 {
		t.Fatal("range query over a third of the domain should cost messages")
	}
	if n, _, err := tr.SearchRange(tr.RandomPeer(), keyspace.NewRange(7, 7)); err != nil || n != 0 {
		t.Fatalf("empty range query: %d, %v", n, err)
	}
}

func TestLeave(t *testing.T) {
	tr := buildTree(t, 50, 7)
	rng := rand.New(rand.NewSource(7))
	keys := make([]keyspace.Key, 0, 200)
	for i := 0; i < 200; i++ {
		k := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-keyspace.DomainMin)))
		keys = append(keys, k)
		if _, err := tr.Insert(tr.RandomPeer(), k, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		ids := tr.PeerIDs()
		if _, err := tr.Leave(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after leave %d: %v", i, err)
		}
	}
	if tr.Size() != 20 {
		t.Fatalf("size = %d, want 20", tr.Size())
	}
	// No data may be lost.
	if tr.ItemCount() < 190 { // duplicates collapse, allow a small margin
		t.Fatalf("items after departures = %d", tr.ItemCount())
	}
	found := 0
	for _, k := range keys {
		_, ok, _, err := tr.SearchExact(tr.RandomPeer(), k)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			found++
		}
	}
	if found != len(keys) {
		t.Fatalf("only %d of %d keys still reachable", found, len(keys))
	}
}

func TestLeaveLastPeer(t *testing.T) {
	tr := NewTree(Config{})
	if _, err := tr.Leave(tr.PeerIDs()[0]); err != ErrLastPeer {
		t.Fatalf("expected ErrLastPeer, got %v", err)
	}
	if _, err := tr.Leave(PeerID(500)); err == nil {
		t.Fatal("leave of unknown peer should error")
	}
}

func TestLeaveOfInnerNodeContactsChildren(t *testing.T) {
	tr := buildTree(t, 30, 9)
	// The root certainly has children; leaving it must cost messages
	// proportional to the children contacted.
	rootID := tr.root.id
	kids := len(tr.root.children)
	cost, err := tr.Leave(rootID)
	if err != nil {
		t.Fatal(err)
	}
	if cost.LocateMessages < 2*kids {
		t.Fatalf("inner-node departure cost %d locate messages for %d children", cost.LocateMessages, kids)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSkewDeepensTree(t *testing.T) {
	// Joins pushed down from a single hot peer produce a deep tree, the
	// weakness the BATON paper calls out.
	tr := NewTree(Config{Fanout: 2, Seed: 11})
	hot := tr.PeerIDs()[0]
	for i := 0; i < 40; i++ {
		if _, _, err := tr.Join(hot); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	balancedDepth := 7 // ceil(log2(41)) + 1
	if tr.Depth() <= balancedDepth {
		t.Fatalf("hot-spot joins should deepen the tree beyond %d, got %d", balancedDepth, tr.Depth())
	}
}

func TestOperationsViaUnknownPeer(t *testing.T) {
	tr := buildTree(t, 5, 13)
	if _, err := tr.Insert(PeerID(99), 1, nil); err == nil {
		t.Fatal("insert via unknown peer should error")
	}
	if _, _, _, err := tr.SearchExact(PeerID(99), 1); err == nil {
		t.Fatal("search via unknown peer should error")
	}
	if _, _, err := tr.SearchRange(PeerID(99), keyspace.NewRange(1, 2)); err == nil {
		t.Fatal("range search via unknown peer should error")
	}
}
