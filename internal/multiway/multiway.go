// Package multiway implements the multiway-tree overlay of Liau et al.
// ("Efficient range queries and fast lookup services for scalable P2P
// networks", DBISP2P 2004), the second baseline of the BATON paper's
// evaluation (Figures 8(a)–(e)): a tree-structured overlay in which every
// peer keeps links only to its parent, its children and its in-order
// neighbours — no sideways routing tables.
//
// Since the fanout-parametric refactor of internal/core, this baseline is no
// longer a separate simulator: an m-ary BATON* tree whose sideways routing
// tables are never consulted IS the multiway tree, so Tree is a thin wrapper
// over core.Network with Config{Fanout: m, NoSidewaysRouting: true}. The
// structural machinery (positions, balanced joins and departures, the
// in-order adjacency chain, invariant audits) is shared with both the binary
// BATON network and the live cluster; only the routing rule differs:
//
//   - Search climbs towards the root until the current subtree covers the
//     key and then descends, probing children one at a time (each probe is a
//     request/reply pair), so search cost grows with depth × fanout instead
//     of log_m N — the weakness Figure 8(d) shows.
//   - Join and leave pay nothing for routing-table maintenance (there are no
//     long-distance links to update), which is the baseline's one advantage
//     (Figure 8(b)); departures still pay to contact children when a
//     replacement must be found.
//
// One deliberate substitution: the original workshop paper does not balance
// the tree, while this implementation inherits the core's balanced joins. The comparison this repo reproduces is therefore
// "BATON* minus sideways links", the degenerate case the BATON* sequel paper
// measures against, which isolates the value of the routing tables from the
// value of balancing.
package multiway

import (
	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/stats"
)

// DefaultFanout is the default maximum number of children per peer.
const DefaultFanout = 4

// Errors returned by Tree operations (shared with the core network).
var (
	ErrUnknownPeer = core.ErrUnknownPeer
	ErrLastPeer    = core.ErrLastPeer
)

// PeerID identifies a peer in the multiway tree.
type PeerID = core.PeerID

// Config configures a simulated multiway tree.
type Config struct {
	// Fanout is the maximum number of children per peer. Zero means
	// DefaultFanout.
	Fanout int
	// Domain is the key domain; the zero value means the paper's default.
	Domain keyspace.Range
	// Seed seeds random choices the protocol leaves open.
	Seed int64
}

// Tree is an in-process simulation of the multiway overlay with message
// counting: a fanout-m core network routed without its sideways tables.
type Tree struct {
	nw *core.Network
}

// NewTree creates a tree with a single peer owning the whole domain.
func NewTree(cfg Config) *Tree {
	fanout := cfg.Fanout
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	return &Tree{nw: core.NewNetwork(core.Config{
		Domain:            cfg.Domain,
		Fanout:            fanout,
		Seed:              cfg.Seed,
		NoSidewaysRouting: true,
	})}
}

// Size returns the number of peers.
func (t *Tree) Size() int { return t.nw.Size() }

// Fanout returns the tree's fanout m.
func (t *Tree) Fanout() int { return t.nw.Fanout() }

// Metrics returns the tree's message counters.
func (t *Tree) Metrics() *stats.Metrics { return t.nw.Metrics() }

// Depth returns the maximum depth of the tree (root = 1).
func (t *Tree) Depth() int { return t.nw.Height() }

// PeerIDs returns the IDs of all peers, sorted for deterministic iteration.
func (t *Tree) PeerIDs() []PeerID { return t.nw.PeerIDs() }

// RandomPeer returns a uniformly random peer ID.
func (t *Tree) RandomPeer() PeerID { return t.nw.RandomPeer() }

// Join adds a new peer, contacting the peer via.
func (t *Tree) Join(via PeerID) (PeerID, stats.OpCost, error) { return t.nw.Join(via) }

// Leave removes a peer. An inner peer must find a replacement leaf, paying
// to contact children on the way down.
func (t *Tree) Leave(id PeerID) (stats.OpCost, error) { return t.nw.Leave(id) }

// Insert stores value under key, routing from the peer via.
func (t *Tree) Insert(via PeerID, key keyspace.Key, value []byte) (stats.OpCost, error) {
	return t.nw.Insert(via, key, value)
}

// SearchExact looks up key, routing from the peer via.
func (t *Tree) SearchExact(via PeerID, key keyspace.Key) ([]byte, bool, stats.OpCost, error) {
	return t.nw.SearchExact(via, key)
}

// SearchRange answers a range query by routing to the first intersecting
// peer and following the in-order neighbour chain. It returns the number of
// matching items.
func (t *Tree) SearchRange(via PeerID, r keyspace.Range) (int, stats.OpCost, error) {
	res, cost, err := t.nw.SearchRange(via, r)
	return len(res.Items), cost, err
}

// CheckInvariants verifies the shared structural invariants: registry and
// position map agree, links are consistent, ranges tile the domain in order
// and the tree is balanced.
func (t *Tree) CheckInvariants() error { return t.nw.CheckInvariants() }

// ItemCount returns the total number of stored items.
func (t *Tree) ItemCount() int { return t.nw.TotalItems() }
