// Package multiway implements the multiway-tree overlay of Liau et al.
// ("Efficient range queries and fast lookup services for scalable P2P
// networks", DBISP2P 2004) to the extent the BATON paper describes it: a
// tree-structured overlay in which every peer keeps links only to its
// parent, its children, its siblings and its in-order neighbours, with no
// constraint on the fan-out and no sideways routing tables.
//
// The BATON paper uses this system as its second baseline (Figures 8(a)–(e))
// and points out its weaknesses: the tree is not balanced under skewed
// joins, searching must hop link by link (there are no long-distance links),
// and a departing peer must contact all of its children to find a
// replacement. This implementation reproduces those behaviours:
//
//   - Join: a peer joins at the contacted node if it still has a free child
//     slot (taking half of its key range); otherwise the request is pushed
//     down to a child, so join cost is bounded by the depth.
//   - Search: a query climbs towards the root until the current subtree
//     covers the key and then descends, probing children one by one (each
//     probe is a message), so search cost grows with depth × fan-out.
//   - Leave: the departing peer contacts every child to find the deepest
//     replacement leaf, so leave cost grows with the fan-out.
//
// Where the original workshop paper leaves details open, the interpretation
// documented here follows the BATON paper's description; this is a
// documented substitution (see DESIGN.md).
package multiway

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"baton/internal/keyspace"
	"baton/internal/stats"
)

// DefaultFanout is the default maximum number of children per peer.
const DefaultFanout = 4

// Errors returned by Tree operations.
var (
	ErrUnknownPeer = errors.New("multiway: unknown peer")
	ErrLastPeer    = errors.New("multiway: cannot remove the last peer")
)

// PeerID identifies a peer in the multiway tree.
type PeerID int64

// Config configures a simulated multiway tree.
type Config struct {
	// Fanout is the maximum number of children per peer. Zero means
	// DefaultFanout.
	Fanout int
	// Domain is the key domain; the zero value means the paper's default.
	Domain keyspace.Range
	// Seed seeds random choices (which child receives a pushed-down join).
	Seed int64
}

type node struct {
	id       PeerID
	parent   *node
	children []*node
	leftAdj  *node
	rightAdj *node
	// subtreeLower is the lower bound of the key range covered by the
	// subtree rooted at this peer (children always carve their ranges out of
	// the lower part of the parent's range).
	subtreeLower keyspace.Key
	nodeRange    keyspace.Range
	data         map[keyspace.Key][]byte
	depth        int
}

// Tree is an in-process simulation of the multiway overlay with message
// counting.
type Tree struct {
	cfg     Config
	fanout  int
	domain  keyspace.Range
	rng     *rand.Rand
	metrics *stats.Metrics
	nodes   map[PeerID]*node
	root    *node
	nextID  PeerID
	curOp   *stats.OpCost
}

// NewTree creates a tree with a single peer owning the whole domain.
func NewTree(cfg Config) *Tree {
	fanout := cfg.Fanout
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	domain := cfg.Domain
	if domain.IsEmpty() {
		domain = keyspace.FullDomain()
	}
	t := &Tree{
		cfg:     cfg,
		fanout:  fanout,
		domain:  domain,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		metrics: stats.NewMetrics(),
		nodes:   make(map[PeerID]*node),
		nextID:  1,
	}
	root := &node{
		id:           t.allocID(),
		nodeRange:    domain,
		subtreeLower: domain.Lower,
		data:         make(map[keyspace.Key][]byte),
	}
	t.nodes[root.id] = root
	t.root = root
	return t
}

func (t *Tree) allocID() PeerID {
	id := t.nextID
	t.nextID++
	return id
}

// Size returns the number of peers.
func (t *Tree) Size() int { return len(t.nodes) }

// Metrics returns the tree's message counters.
func (t *Tree) Metrics() *stats.Metrics { return t.metrics }

// Depth returns the maximum depth of the tree (root = 1).
func (t *Tree) Depth() int {
	max := 0
	for _, n := range t.nodes {
		if n.depth+1 > max {
			max = n.depth + 1
		}
	}
	return max
}

// PeerIDs returns the IDs of all peers, sorted for deterministic iteration.
func (t *Tree) PeerIDs() []PeerID {
	out := make([]PeerID, 0, len(t.nodes))
	for id := range t.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RandomPeer returns a uniformly random peer ID.
func (t *Tree) RandomPeer() PeerID {
	ids := t.PeerIDs()
	return ids[t.rng.Intn(len(ids))]
}

func (t *Tree) beginOp(kind stats.OpKind) { t.curOp = &stats.OpCost{Kind: kind} }

func (t *Tree) endOp() stats.OpCost {
	cost := *t.curOp
	t.metrics.RecordOp(cost)
	t.curOp = nil
	return cost
}

func (t *Tree) send(tpe stats.MsgType, locate bool) {
	t.metrics.CountMessage(tpe)
	if t.curOp == nil {
		return
	}
	t.curOp.Messages++
	if locate {
		t.curOp.LocateMessages++
	} else {
		t.curOp.UpdateMessages++
	}
}

// Join adds a new peer, contacting the peer via. The request is pushed down
// until a peer with a free child slot accepts it; keys whose position is
// determined by skewed data therefore pile up along one path and deepen the
// tree.
func (t *Tree) Join(via PeerID) (PeerID, stats.OpCost, error) {
	start, ok := t.nodes[via]
	if !ok {
		return 0, stats.OpCost{}, fmt.Errorf("%w: %d", ErrUnknownPeer, via)
	}
	t.beginOp(stats.OpJoin)
	t.send(stats.MsgJoinRequest, true)
	n := start
	for len(n.children) >= t.fanout {
		// Push the request down to the child with the largest range, which
		// is where an unconstrained multiway tree keeps growing.
		var widest *node
		for _, c := range n.children {
			if widest == nil || c.nodeRange.Size() > widest.nodeRange.Size() {
				widest = c
			}
		}
		n = widest
		t.send(stats.MsgJoinRequest, true)
	}

	child := &node{
		id:    t.allocID(),
		data:  make(map[keyspace.Key][]byte),
		depth: n.depth + 1,
	}
	// The child takes the lower half of the acceptor's remaining range and
	// slots into the in-order chain immediately before it.
	lower, upper, err := n.nodeRange.SplitHalf()
	if err != nil {
		lower = keyspace.NewRange(n.nodeRange.Lower, n.nodeRange.Lower)
		upper = n.nodeRange
	}
	child.nodeRange = lower
	child.subtreeLower = lower.Lower
	n.nodeRange = upper
	for k, v := range n.data {
		if child.nodeRange.Contains(k) {
			child.data[k] = v
			delete(n.data, k)
		}
	}
	t.send(stats.MsgTransferData, false)

	child.parent = n
	n.children = append(n.children, child)
	prev := n.leftAdj
	child.leftAdj = prev
	child.rightAdj = n
	n.leftAdj = child
	if prev != nil {
		prev.rightAdj = child
		t.send(stats.MsgUpdateAdjacent, false)
	}
	t.send(stats.MsgUpdateAdjacent, false)
	// The acceptor informs its existing children and siblings of the new
	// peer (they keep sibling links).
	for range n.children {
		t.send(stats.MsgNotifyChild, false)
	}

	t.nodes[child.id] = child
	return child.id, t.endOp(), nil
}

// Leave removes a peer. The departing peer must contact every child to learn
// their state and find a replacement: a leaf is absorbed by its parent,
// while an inner peer is replaced by the deepest leaf of its subtree.
func (t *Tree) Leave(id PeerID) (stats.OpCost, error) {
	n, ok := t.nodes[id]
	if !ok {
		return stats.OpCost{}, fmt.Errorf("%w: %d", ErrUnknownPeer, id)
	}
	if len(t.nodes) == 1 {
		return stats.OpCost{}, ErrLastPeer
	}
	t.beginOp(stats.OpLeave)

	// Contact every child (and reply) to select a replacement.
	cur := n
	var replacement *node
	for len(cur.children) > 0 {
		var deepest *node
		for range cur.children {
			t.send(stats.MsgChildInfoRequest, true)
			t.send(stats.MsgReply, true)
		}
		for _, c := range cur.children {
			if deepest == nil || len(c.children) > len(deepest.children) {
				deepest = c
			}
		}
		cur = deepest
		replacement = cur
	}

	if replacement == nil {
		// n is a leaf: its parent absorbs its range and data.
		t.absorbLeaf(n, n.parent)
	} else {
		// The replacement leaf vacates its own position and takes over n's
		// place in the tree.
		t.absorbLeaf(replacement, replacement.parent)
		t.takeOver(replacement, n)
	}
	return t.endOp(), nil
}

// absorbLeaf merges the leaf's range and data into target (its parent unless
// the leaf is the root, which cannot happen for leaves here).
func (t *Tree) absorbLeaf(leaf, target *node) {
	if target == nil {
		return
	}
	if merged, err := target.nodeRange.Union(leaf.nodeRange); err == nil {
		target.nodeRange = merged
	} else if leaf.nodeRange.Lower < target.subtreeLower {
		// Non-adjacent (the leaf was not the in-order neighbour of its
		// parent): the leaf's keys become a "hole" held by the parent, whose
		// subtree coverage must keep including them so queries still route
		// here. The coverage lower bound only ever widens.
		target.subtreeLower = leaf.nodeRange.Lower
	}
	for k, v := range leaf.data {
		target.data[k] = v
	}
	t.send(stats.MsgTransferData, false)

	// Unlink the leaf.
	if leaf.parent != nil {
		siblings := leaf.parent.children
		for i, c := range siblings {
			if c == leaf {
				leaf.parent.children = append(siblings[:i], siblings[i+1:]...)
				break
			}
		}
	}
	if leaf.leftAdj != nil {
		leaf.leftAdj.rightAdj = leaf.rightAdj
		t.send(stats.MsgUpdateAdjacent, false)
	}
	if leaf.rightAdj != nil {
		leaf.rightAdj.leftAdj = leaf.leftAdj
		t.send(stats.MsgUpdateAdjacent, false)
	}
	delete(t.nodes, leaf.id)
}

// takeOver moves the peer repl into the tree position of the departing peer
// x: it adopts x's links, range and data, and every peer linking to x is
// notified.
func (t *Tree) takeOver(repl, x *node) {
	repl.parent = x.parent
	repl.children = x.children
	repl.leftAdj = x.leftAdj
	repl.rightAdj = x.rightAdj
	repl.nodeRange = x.nodeRange
	repl.subtreeLower = x.subtreeLower
	repl.depth = x.depth
	for k, v := range x.data {
		repl.data[k] = v
	}
	t.send(stats.MsgTransferData, false)
	if x.parent != nil {
		for i, c := range x.parent.children {
			if c == x {
				x.parent.children[i] = repl
			}
		}
		t.send(stats.MsgNotifyReplace, false)
	} else {
		t.root = repl
	}
	for _, c := range repl.children {
		c.parent = repl
		t.send(stats.MsgNotifyReplace, false)
	}
	if repl.leftAdj != nil {
		repl.leftAdj.rightAdj = repl
		t.send(stats.MsgUpdateAdjacent, false)
	}
	if repl.rightAdj != nil {
		repl.rightAdj.leftAdj = repl
		t.send(stats.MsgUpdateAdjacent, false)
	}
	delete(t.nodes, x.id)
	t.nodes[repl.id] = repl
}

// route walks from start to the peer owning key using only parent, child and
// sibling links: it climbs until the current subtree covers the key and then
// descends, probing children one at a time.
func (t *Tree) route(start *node, key keyspace.Key) *node {
	n := start
	for hops := 0; hops < 4*len(t.nodes)+8; hops++ {
		if n.nodeRange.Contains(key) ||
			(key < t.domain.Lower && n == t.leftmost()) ||
			(key >= t.domain.Upper && n == t.rightmost()) {
			return n
		}
		covered := key >= n.subtreeLower && key < n.nodeRange.Upper
		if !covered {
			if n.parent == nil {
				// The root covers the whole domain; out-of-domain keys are
				// handled by the extreme peers above.
				return n
			}
			t.send(stats.MsgLookup, true)
			n = n.parent
			continue
		}
		// Probe the children one by one until one covers the key.
		var next *node
		for _, c := range n.children {
			t.send(stats.MsgLookup, true)
			t.send(stats.MsgReply, true)
			if key >= c.subtreeLower && key < c.nodeRange.Upper {
				next = c
				break
			}
		}
		if next == nil {
			return n
		}
		t.send(stats.MsgLookup, true)
		n = next
	}
	return n
}

func (t *Tree) leftmost() *node {
	n := t.root
	for n.leftAdj != nil {
		n = n.leftAdj
	}
	return n
}

func (t *Tree) rightmost() *node {
	n := t.root
	for n.rightAdj != nil {
		n = n.rightAdj
	}
	return n
}

// Insert stores value under key, routing from the peer via.
func (t *Tree) Insert(via PeerID, key keyspace.Key, value []byte) (stats.OpCost, error) {
	start, ok := t.nodes[via]
	if !ok {
		return stats.OpCost{}, fmt.Errorf("%w: %d", ErrUnknownPeer, via)
	}
	t.beginOp(stats.OpInsert)
	owner := t.route(start, key)
	owner.data[key] = value
	return t.endOp(), nil
}

// SearchExact looks up key, routing from the peer via.
func (t *Tree) SearchExact(via PeerID, key keyspace.Key) ([]byte, bool, stats.OpCost, error) {
	start, ok := t.nodes[via]
	if !ok {
		return nil, false, stats.OpCost{}, fmt.Errorf("%w: %d", ErrUnknownPeer, via)
	}
	t.beginOp(stats.OpSearchExact)
	owner := t.route(start, key)
	v, found := owner.data[key]
	return v, found, t.endOp(), nil
}

// SearchRange answers a range query by routing to the first intersecting
// peer and following the in-order neighbour chain.
func (t *Tree) SearchRange(via PeerID, r keyspace.Range) (int, stats.OpCost, error) {
	start, ok := t.nodes[via]
	if !ok {
		return 0, stats.OpCost{}, fmt.Errorf("%w: %d", ErrUnknownPeer, via)
	}
	if r.IsEmpty() {
		return 0, stats.OpCost{}, nil
	}
	t.beginOp(stats.OpSearchRange)
	n := t.route(start, r.Lower)
	matched := 0
	for n != nil && n.nodeRange.Lower < r.Upper {
		for k := range n.data {
			if r.Contains(k) {
				matched++
			}
		}
		t.send(stats.MsgReply, false)
		n = n.rightAdj
		if n != nil {
			t.send(stats.MsgSearchRange, true)
		}
	}
	return matched, t.endOp(), nil
}

// CheckInvariants verifies structural consistency: parent/child links agree,
// the in-order chain is connected, and every stored item lies in its peer's
// range (except for out-of-domain keys stored at the extreme peers).
func (t *Tree) CheckInvariants() error {
	if t.root == nil || len(t.nodes) == 0 {
		return errors.New("multiway: empty tree")
	}
	count := 0
	var walk func(n *node) error
	walk = func(n *node) error {
		count++
		for _, c := range n.children {
			if c.parent != n {
				return fmt.Errorf("multiway: child %d does not point back to parent %d", c.id, n.id)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if count != len(t.nodes) {
		return fmt.Errorf("multiway: tree reaches %d peers but registry has %d", count, len(t.nodes))
	}
	// The adjacency chain must visit every peer exactly once.
	seen := 0
	for n := t.leftmost(); n != nil; n = n.rightAdj {
		seen++
		if seen > len(t.nodes) {
			return errors.New("multiway: adjacency chain has a cycle")
		}
	}
	if seen != len(t.nodes) {
		return fmt.Errorf("multiway: adjacency chain visits %d of %d peers", seen, len(t.nodes))
	}
	return nil
}

// ItemCount returns the total number of stored items.
func (t *Tree) ItemCount() int {
	total := 0
	for _, n := range t.nodes {
		total += len(n.data)
	}
	return total
}
