package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPositionBasics(t *testing.T) {
	if !RootPosition.IsRoot() || !RootPosition.Valid() {
		t.Fatal("root position malformed")
	}
	p := Position{Level: 3, Number: 5}
	if !p.Valid() {
		t.Fatal("3:5 should be valid")
	}
	if (Position{Level: 3, Number: 9}).Valid() {
		t.Fatal("3:9 should be invalid (only 8 positions at level 3)")
	}
	if (Position{Level: -1, Number: 1}).Valid() {
		t.Fatal("negative level invalid")
	}
	if (Position{Level: 2, Number: 0}).Valid() {
		t.Fatal("number 0 invalid")
	}
}

func TestPositionFamily(t *testing.T) {
	p := Position{Level: 2, Number: 3}
	if got := p.Parent(); got != (Position{Level: 1, Number: 2}) {
		t.Fatalf("Parent = %v", got)
	}
	if got := p.LeftChild(); got != (Position{Level: 3, Number: 5}) {
		t.Fatalf("LeftChild = %v", got)
	}
	if got := p.RightChild(); got != (Position{Level: 3, Number: 6}) {
		t.Fatalf("RightChild = %v", got)
	}
	if p.Child(Left) != p.LeftChild() || p.Child(Right) != p.RightChild() {
		t.Fatal("Child(side) disagrees with LeftChild/RightChild")
	}
	if !p.IsLeftChild() || p.IsRightChild() {
		t.Fatal("2:3 is a left child")
	}
	q := Position{Level: 2, Number: 4}
	if !q.IsRightChild() || q.IsLeftChild() {
		t.Fatal("2:4 is a right child")
	}
	if p.Sibling() != q || q.Sibling() != p {
		t.Fatal("siblings wrong")
	}
	if RootPosition.IsLeftChild() || RootPosition.IsRightChild() {
		t.Fatal("root is neither left nor right child")
	}
}

func TestPositionParentOfRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Parent of root should panic")
		}
	}()
	RootPosition.Parent()
}

func TestPositionSiblingOfRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sibling of root should panic")
		}
	}()
	RootPosition.Sibling()
}

func TestPositionChildParentRoundTrip(t *testing.T) {
	f := func(levelRaw uint8, numberRaw uint32) bool {
		level := int(levelRaw % 20)
		max := int64(1) << uint(level)
		number := int64(numberRaw)%max + 1
		p := Position{Level: level, Number: number}
		return p.LeftChild().Parent() == p && p.RightChild().Parent() == p &&
			p.LeftChild().IsLeftChild() && p.RightChild().IsRightChild()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPositionNeighbour(t *testing.T) {
	p := Position{Level: 3, Number: 5}
	if q, ok := p.Neighbour(Left, 4); !ok || q.Number != 1 {
		t.Fatalf("Neighbour(Left,4) = %v, %v", q, ok)
	}
	if _, ok := p.Neighbour(Left, 8); ok {
		t.Fatal("Neighbour(Left,8) should not exist")
	}
	if q, ok := p.Neighbour(Right, 2); !ok || q.Number != 7 {
		t.Fatalf("Neighbour(Right,2) = %v, %v", q, ok)
	}
	if _, ok := p.Neighbour(Right, 4); ok {
		t.Fatal("Neighbour(Right,4) = 9 is out of range at level 3")
	}
	if p.RoutingTableSize() != 3 {
		t.Fatalf("RoutingTableSize = %d", p.RoutingTableSize())
	}
	if RootPosition.RoutingTableSize() != 0 {
		t.Fatal("root has no routing table entries")
	}
}

func TestPositionIsAncestorOf(t *testing.T) {
	root := RootPosition
	p := Position{Level: 2, Number: 3}
	if !root.IsAncestorOf(p) {
		t.Fatal("root is ancestor of everything")
	}
	if p.IsAncestorOf(root) {
		t.Fatal("descendant is not ancestor")
	}
	if p.IsAncestorOf(p) {
		t.Fatal("a position is not its own proper ancestor")
	}
	parent := Position{Level: 1, Number: 2}
	if !parent.IsAncestorOf(p) {
		t.Fatal("1:2 is ancestor of 2:3")
	}
	other := Position{Level: 1, Number: 1}
	if other.IsAncestorOf(p) {
		t.Fatal("1:1 is not an ancestor of 2:3")
	}
}

func TestInOrderOrdering(t *testing.T) {
	// The in-order ordering of a small complete tree is well known:
	// level 2: 1,2,3,4; level 1: 1,2; level 0: 1
	// in-order: 2:1, 1:1, 2:2, 0:1, 2:3, 1:2, 2:4
	want := []Position{
		{2, 1}, {1, 1}, {2, 2}, {0, 1}, {2, 3}, {1, 2}, {2, 4},
	}
	got := append([]Position(nil), want...)
	// Shuffle then sort by InOrderBefore.
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(got), func(i, j int) { got[i], got[j] = got[j], got[i] })
	sort.Slice(got, func(i, j int) bool { return got[i].InOrderBefore(got[j]) })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("in-order position %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestInOrderCompare(t *testing.T) {
	a := Position{2, 1}
	b := Position{1, 1}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("Compare results wrong")
	}
}

// Property: the in-order relation is a strict total order consistent with
// the structural definition (everything in the left subtree of p comes
// before p, everything in the right subtree comes after).
func TestInOrderSubtreeProperty(t *testing.T) {
	f := func(levelRaw uint8, numberRaw uint32, depthRaw uint8) bool {
		level := int(levelRaw % 15)
		max := int64(1) << uint(level)
		number := int64(numberRaw)%max + 1
		p := Position{Level: level, Number: number}
		// Walk down a random path in the left subtree and the right subtree.
		l := p.LeftChild()
		r := p.RightChild()
		for d := 0; d < int(depthRaw%5); d++ {
			if d%2 == 0 {
				l = l.RightChild()
				r = r.LeftChild()
			} else {
				l = l.LeftChild()
				r = r.RightChild()
			}
		}
		return l.InOrderBefore(p) && p.InOrderBefore(r) && !p.InOrderBefore(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSide(t *testing.T) {
	if Left.Opposite() != Right || Right.Opposite() != Left {
		t.Fatal("Opposite wrong")
	}
	if Left.String() != "left" || Right.String() != "right" {
		t.Fatal("Side names wrong")
	}
}

func TestPositionString(t *testing.T) {
	if (Position{Level: 3, Number: 7}).String() != "3:7" {
		t.Fatal("Position.String format changed")
	}
}
