// Fanout-parametric tree arithmetic: the m-ary generalisation of the binary
// position algebra in position.go, following the BATON* sequel of the paper
// (m-way fanout, routing tables at distances j*m^i).
//
// The generalisation is chosen so that m=2 reproduces the binary layout
// bit for bit:
//
//   - Child slot s (0-based, s in 0..m-1) of (L, N) is (L+1, m*(N-1)+s+1);
//     for m=2 slot 0 is LeftChild (2N-1) and slot 1 is RightChild (2N).
//   - The parent of (L, N) is (L-1, (N-1)/m + 1); for m=2 this is (N+1)/2.
//   - The in-order traversal visits subtree(0) .. subtree(m-2), the node
//     itself, then subtree(m-1): the node's in-order coordinate is
//     (m*(N-1) + m-1) / m^(L+1), which for m=2 is the dyadic (2N-1)/2^(L+1)
//     of the binary tree — identical ordering, adjacency chains and range
//     tiling.
//   - Sideways routing tables hold same-level neighbours at distances
//     j*m^i for j in 1..m-1 (flat entry k covers distance
//     (k%(m-1)+1) * m^(k/(m-1))); for m=2 entry k covers 2^k, exactly the
//     binary tables.
//   - Balance (Definition 1 generalised): at every node the heights of the
//     m child subtrees pairwise differ by at most one.
package core

// DefaultFanout is the tree fanout of the original binary BATON protocol.
const DefaultFanout = 2

// MaxFanout bounds the configurable tree fanout. 64 children per node is far
// beyond the paper's m=10 experiments while keeping routing tables sane.
const MaxFanout = 64

// normFanout maps the zero value to the binary default.
func normFanout(m int) int {
	if m == 0 {
		return DefaultFanout
	}
	return m
}

// ValidFanout reports whether m is a usable tree fanout.
func ValidFanout(m int) bool { return m >= 2 && m <= MaxFanout }

// MaxLevelFor bounds the depth of an m-ary tree so that the m-adic in-order
// comparison stays exact in 64-bit arithmetic (m^(L+1) <= 2^62), capped at
// the binary MaxLevel.
func MaxLevelFor(m int) int {
	if m < 2 {
		m = DefaultFanout
	}
	level := -1
	limit := uint64(1) << 62
	acc := uint64(1)
	for acc <= limit/uint64(m) {
		acc *= uint64(m)
		level++
	}
	if level > MaxLevel {
		level = MaxLevel
	}
	return level
}

// ipow returns m^e in uint64 arithmetic. Exponents are bounded by
// MaxLevelFor, so the result cannot overflow.
func ipow(m int, e int) uint64 {
	out := uint64(1)
	for ; e > 0; e-- {
		out *= uint64(m)
	}
	return out
}

// ValidIn reports whether the position is well formed in an m-ary tree.
func (p Position) ValidIn(m int) bool {
	if m == DefaultFanout {
		return p.Valid()
	}
	return p.Level >= 0 && p.Level <= MaxLevelFor(m) &&
		p.Number >= 1 && uint64(p.Number) <= ipow(m, p.Level)
}

// ParentIn returns the parent position in an m-ary tree. Calling it on the
// root panics.
func (p Position) ParentIn(m int) Position {
	if p.IsRoot() {
		panic("core: ParentIn of root position")
	}
	return Position{Level: p.Level - 1, Number: (p.Number-1)/int64(m) + 1}
}

// ChildIn returns the position of child slot s (0-based) in an m-ary tree.
// Slot 0 is the leftmost child and slot m-1 the rightmost; for m=2 these are
// exactly LeftChild and RightChild.
func (p Position) ChildIn(m, s int) Position {
	return Position{Level: p.Level + 1, Number: int64(m)*(p.Number-1) + int64(s) + 1}
}

// SlotIn returns the child slot (0-based) p occupies under its parent in an
// m-ary tree. Calling it on the root panics.
func (p Position) SlotIn(m int) int {
	if p.IsRoot() {
		panic("core: SlotIn of root position")
	}
	return int((p.Number - 1) % int64(m))
}

// NeighbourIn returns the same-level position at the given distance in an
// m-ary tree, and whether it exists (1 <= number <= m^level).
func (p Position) NeighbourIn(m int, side Side, dist int64) (Position, bool) {
	var n int64
	if side == Left {
		n = p.Number - dist
	} else {
		n = p.Number + dist
	}
	q := Position{Level: p.Level, Number: n}
	return q, q.ValidIn(m)
}

// IsAncestorOfIn reports whether p is a proper ancestor of q in an m-ary
// tree.
func (p Position) IsAncestorOfIn(m int, q Position) bool {
	if q.Level <= p.Level {
		return false
	}
	n := q.Number
	for l := q.Level; l > p.Level; l-- {
		n = (n-1)/int64(m) + 1
	}
	return n == p.Number
}

// RoutingTableSizeIn returns the number of entries in each sideways routing
// table of a node at level in an m-ary tree: entry k covers distance
// RTDistance(m, k), so there are level*(m-1) entries (the root has none).
// For m=2 this is the binary table size (level entries at distances 2^k).
func RoutingTableSizeIn(m, level int) int { return level * (m - 1) }

// RTDistance returns the same-level distance covered by flat routing-table
// entry k in an m-ary tree: the BATON* distances j*m^i with j in 1..m-1,
// laid out i-major so distances are strictly increasing in k. For m=2 this
// is 2^k, the binary table layout.
func RTDistance(m, k int) int64 {
	j := int64(k%(m-1)) + 1
	return j * int64(ipow(m, k/(m-1)))
}

// InOrderBeforeIn reports whether p comes strictly before q in the in-order
// traversal of the (infinite) m-ary tree; see the package comment above for
// the traversal order. For m=2 it is exactly InOrderBefore.
func (p Position) InOrderBeforeIn(m int, q Position) bool {
	if m == DefaultFanout {
		return p.InOrderBefore(q)
	}
	return p.CompareIn(m, q) < 0
}

// CompareIn returns -1, 0 or +1 according to the in-order ordering of the
// two positions in an m-ary tree.
func (p Position) CompareIn(m int, q Position) int {
	if m == DefaultFanout {
		return p.Compare(q)
	}
	if p == q {
		return 0
	}
	// The m-adic in-order coordinate of (L, N) is
	// (m*(N-1) + m-1) / m^(L+1); compare by aligning to the deeper level.
	// MaxLevelFor keeps m^(L+1) <= 2^62, so the aligned numerators fit.
	pn := uint64(int64(m)*(p.Number-1)) + uint64(m-1)
	qn := uint64(int64(m)*(q.Number-1)) + uint64(m-1)
	switch {
	case p.Level < q.Level:
		pn *= ipow(m, q.Level-p.Level)
	case q.Level < p.Level:
		qn *= ipow(m, p.Level-q.Level)
	}
	switch {
	case pn < qn:
		return -1
	case pn > qn:
		return 1
	default:
		return 0
	}
}

// slotFor maps a Side to a child slot in an m-ary tree: Left is the leftmost
// slot (0), Right the rightmost (m-1). For m=2 these are the two binary
// child slots.
func slotFor(m int, side Side) int {
	if side == Left {
		return 0
	}
	return m - 1
}
