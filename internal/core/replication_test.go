package core

import (
	"strings"
	"testing"

	"baton/internal/store"
)

// TestCrashLeaveWithLosesDataButRepairsStructure: the crash variant of
// LeaveWith removes the peer and re-tiles its range without transferring its
// items — they are gone, exactly like an unreplicated failure — while the
// structural invariant suite keeps holding.
func TestCrashLeaveWithLosesDataButRepairsStructure(t *testing.T) {
	nw := buildNetwork(t, 40, 7)
	keys := populate(t, nw, 600, 7)
	total := nw.TotalItems()
	if total != len(keys) {
		t.Fatalf("populated %d items, stored %d", len(keys), total)
	}

	// Crash-remove a non-leaf peer (needs a replacement) and a safe leaf.
	var nonLeaf, leaf *Node
	for _, n := range nw.inOrderNodes() {
		if !n.IsLeaf() && n.parent != nil && nonLeaf == nil {
			nonLeaf = n
		}
		if n.IsLeaf() && leaf == nil && nw.balancedWithChange(nil, []Position{n.pos}) {
			leaf = n
		}
	}
	if nonLeaf == nil || leaf == nil {
		t.Fatal("network has no suitable non-leaf / safe leaf")
	}

	lost := nonLeaf.data.Len()
	repl, err := nw.findReplacement(nonLeaf)
	if err != nil {
		t.Fatalf("find replacement: %v", err)
	}
	// The replacement's own items survive (it departs gracefully from its
	// old position), so only the crashed peer's items may disappear.
	if _, err := nw.CrashLeaveWith(nonLeaf.id, repl.id); err != nil {
		t.Fatalf("crash-leave non-leaf: %v", err)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("invariants after non-leaf crash-leave: %v", err)
	}
	if got := nw.TotalItems(); got != total-lost {
		t.Fatalf("items after non-leaf crash-leave = %d, want %d (crashed peer's %d items lost, no others)", got, total-lost, lost)
	}
	total -= lost

	lost = leaf.data.Len()
	if _, err := nw.CrashLeaveWith(leaf.id, NoPeer); err != nil {
		t.Fatalf("crash-leave safe leaf: %v", err)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("invariants after leaf crash-leave: %v", err)
	}
	if got := nw.TotalItems(); got != total-lost {
		t.Fatalf("items after leaf crash-leave = %d, want %d", got, total-lost)
	}
}

// TestCrashLeaveWithValidation: invalid replacements are rejected before any
// mutation, mirroring LeaveWith.
func TestCrashLeaveWithValidation(t *testing.T) {
	nw := buildNetwork(t, 10, 9)
	if _, err := nw.CrashLeaveWith(nw.root.id, nw.root.id); err == nil {
		t.Fatal("crash-leave with itself as replacement must fail")
	}
	if _, err := nw.CrashLeaveWith(nw.root.id, NoPeer); err == nil {
		t.Fatal("safe-leaf crash-leave of the non-leaf root must fail")
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("failed crash-leaves must not mutate the network: %v", err)
	}
}

// TestReplicaHolderOf: right adjacent, else left adjacent, else nobody.
func TestReplicaHolderOf(t *testing.T) {
	if got := ReplicaHolderOf(PeerSnapshot{ID: 1, LeftAdjacent: 2, RightAdjacent: 3}); got != 3 {
		t.Fatalf("holder = %d, want the right adjacent 3", got)
	}
	if got := ReplicaHolderOf(PeerSnapshot{ID: 1, LeftAdjacent: 2}); got != 2 {
		t.Fatalf("rightmost peer's holder = %d, want the left adjacent 2", got)
	}
	if got := ReplicaHolderOf(PeerSnapshot{ID: 1}); got != NoPeer {
		t.Fatalf("single peer's holder = %d, want NoPeer", got)
	}
}

// TestVerifyReplication: the invariant accepts an exact replica placement
// and reports missing, stale and leftover replica items.
func TestVerifyReplication(t *testing.T) {
	snaps := []PeerSnapshot{
		{ID: 1, RightAdjacent: 2, Items: []store.Item{{Key: 10, Value: []byte("a")}}},
		{ID: 2, LeftAdjacent: 1, Items: []store.Item{{Key: 20, Value: []byte("b")}}},
	}
	good := map[PeerID]map[PeerID][]store.Item{
		2: {1: {{Key: 10, Value: []byte("a")}}},
		1: {2: {{Key: 20, Value: []byte("b")}}},
	}
	if err := VerifyReplication(snaps, good); err != nil {
		t.Fatalf("exact replication rejected: %v", err)
	}

	missing := map[PeerID]map[PeerID][]store.Item{1: {2: {{Key: 20, Value: []byte("b")}}}}
	if err := VerifyReplication(snaps, missing); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing replica not reported: %v", err)
	}

	stale := map[PeerID]map[PeerID][]store.Item{
		2: {1: {{Key: 10, Value: []byte("OLD")}}},
		1: {2: {{Key: 20, Value: []byte("b")}}},
	}
	if err := VerifyReplication(snaps, stale); err == nil || !strings.Contains(err.Error(), "stale replica") {
		t.Fatalf("stale replica value not reported: %v", err)
	}

	leftover := map[PeerID]map[PeerID][]store.Item{
		2: {1: {{Key: 10, Value: []byte("a")}, {Key: 99, Value: []byte("zzz")}}},
		1: {2: {{Key: 20, Value: []byte("b")}}},
	}
	if err := VerifyReplication(snaps, leftover); err == nil || !strings.Contains(err.Error(), "stale replica key") {
		t.Fatalf("leftover replica key not reported: %v", err)
	}
}
