package core

import (
	"fmt"

	"baton/internal/stats"
)

// This file implements network restructuring (Section III-E of the paper):
// when a join or a departure is forced at a particular place in the tree —
// which happens during load balancing, where a lightly loaded peer must
// leave its position and re-join as a child of the overloaded peer — the
// tree may become unbalanced. Instead of redirecting the join/leave
// elsewhere, occupants are shifted along the in-order (adjacent) chain, each
// taking the position of its neighbour, until a spot is found where a
// position can be created (for a forced join) or destroyed (for a forced
// leave) without violating the height-balance property. Peers move between
// positions; data does not move.

// move records one peer changing tree position during restructuring.
type move struct {
	node *Node
	from Position
	to   Position
}

// occupiedWith reports whether position p is occupied under the given
// occupancy overrides.
func (nw *Network) occupiedWith(p Position, added, removed []Position) bool {
	for _, q := range removed {
		if q == p {
			return false
		}
	}
	for _, q := range added {
		if q == p {
			return true
		}
	}
	return nw.positions[p] != nil
}

// freshSlotsBetween returns the unoccupied positions that fall in-order
// between the occupied position a and its in-order successor position b. In
// a binary tree there is exactly one such position (a's right child or b's
// left child), but for m > 2 the two can also be in-order adjacent across
// free *sibling* slots — children 0 and 2 of a common parent with slot 1
// empty — and every such free slot is a legal home for a shifted occupant.
// Missing those slots would strand the insert-shift walk on sparse m-ary
// trees, where the only balance-preserving fresh positions ARE the free
// slots of the tree's bottom level, not anybody's child slots.
func (nw *Network) freshSlotsBetween(a, b Position) []Position {
	m := nw.fanout
	var cands []Position
	add := func(p Position) {
		if p.ValidIn(m) && nw.positions[p] == nil {
			cands = append(cands, p)
		}
	}
	add(a.ChildIn(m, m-1))
	var r Position
	if nw.positions[a.ChildIn(m, m-1)] != nil {
		// b lives inside a's trailing subtree; descend towards it.
		r = a.ChildIn(m, m-1)
	} else {
		// Climb from a to the turn: the lowest ancestor subtree of which a is
		// not the in-order maximum. From there b is either the parent itself
		// or the minimum of the next occupied sibling subtree, and the free
		// sibling slots crossed on the way sit in-order between a and b.
		q := a
		for !q.IsRoot() && q.SlotIn(m) == m-1 {
			q = q.ParentIn(m)
		}
		if q.IsRoot() {
			return cands // a is the global in-order maximum
		}
		parent := q.ParentIn(m)
		t := q.SlotIn(m) + 1
		for ; t < m-1; t++ {
			if nw.positions[parent.ChildIn(m, t)] != nil {
				break
			}
			add(parent.ChildIn(m, t))
		}
		if t == m-1 {
			return cands // the parent itself is b
		}
		r = parent.ChildIn(m, t)
	}
	// Descend from r to b (the in-order minimum of r's subtree), collecting
	// at each step the free leading slots that precede the taken branch —
	// they come before b in-order; the slots after it do not.
	for {
		taken := -1
		for u := 0; u < m-1; u++ {
			if nw.positions[r.ChildIn(m, u)] != nil {
				taken = u
				break
			}
			add(r.ChildIn(m, u))
		}
		if taken < 0 {
			return cands // r is b; all its leading slots precede it
		}
		r = r.ChildIn(m, taken)
	}
}

// planInsertShift plans the occupant moves needed to give newcomerRangePos a
// place in the in-order chain immediately before the occupant of anchorPos,
// shifting occupants in the given direction. It returns the planned moves
// (excluding the newcomer, which always ends up at anchorPos... see
// applyInsertShift), the fresh position that will be created, and whether a
// balanced arrangement was found in this direction.
func (nw *Network) planInsertShift(anchorPos Position, dir Side) ([]move, Position, bool) {
	var moves []move
	carryPos := anchorPos // position whose occupant currently needs a new home
	for steps := 0; steps <= nw.Size()+1; steps++ {
		carry := nw.positions[carryPos]
		if carry == nil {
			return nil, Position{}, false
		}
		// Where would carry go if we stopped here? Into the fresh slot
		// between carryPos and its in-order neighbour in direction dir.
		var neighbourPos Position
		var haveNeighbour bool
		if dir == Right {
			neighbourPos, haveNeighbour = nw.inOrderSuccessorPos(carryPos)
		} else {
			neighbourPos, haveNeighbour = nw.inOrderPredecessorPos(carryPos)
		}
		var fresh []Position
		if haveNeighbour {
			if dir == Right {
				fresh = nw.freshSlotsBetween(carryPos, neighbourPos)
			} else {
				fresh = nw.freshSlotsBetween(neighbourPos, carryPos)
			}
		} else {
			// carryPos is the end of the chain: the fresh slot is its own
			// child slot on the outer side.
			outer := carryPos.ChildIn(nw.fanout, slotFor(nw.fanout, dir))
			if nw.positions[outer] != nil {
				return nil, Position{}, false
			}
			fresh = []Position{outer}
		}
		for _, f := range fresh {
			if f.ValidIn(nw.fanout) && nw.balancedWithChange([]Position{f}, nil) {
				moves = append(moves, move{node: carry, from: carryPos, to: f})
				return moves, f, true
			}
		}
		if !haveNeighbour {
			return nil, Position{}, false
		}
		// Otherwise carry displaces the neighbour and the neighbour carries
		// on.
		moves = append(moves, move{node: carry, from: carryPos, to: neighbourPos})
		carryPos = neighbourPos
	}
	return nil, Position{}, false
}

// forcedInsertAt places the detached peer newcomer at the given child
// position of parent. If occupying that position directly keeps the tree
// balanced the peer is simply installed; otherwise occupants are shifted
// along the in-order chain (restructuring) so that the newcomer takes the
// parent's child slot conceptually while the extra occupant is absorbed
// where balance allows. It returns the number of peers that changed
// position (the size of the restructuring, Figure 8h).
//
// The caller is responsible for having assigned newcomer's range and data
// and for newcomer being registered in nw.nodes but not in nw.positions.
func (nw *Network) forcedInsertAt(parent *Node, newcomer *Node, side Side) int {
	m := nw.fanout
	// Pick the child slot that places the newcomer in-order immediately next
	// to the parent. On the right that is always the last slot; on the left
	// it is the slot just above the highest occupied leading slot (placing it
	// lower would break the in-order contiguity of the occupied ranges). At
	// m=2 these are exactly the left and right child positions.
	childPos := Position{}
	haveSlot := false
	if side == Right {
		childPos = parent.pos.ChildIn(m, m-1)
		haveSlot = nw.positions[childPos] == nil
	} else {
		highest := -1
		for s := m - 2; s >= 0; s-- {
			if nw.positions[parent.pos.ChildIn(m, s)] != nil {
				highest = s
				break
			}
		}
		if highest < m-2 {
			childPos = parent.pos.ChildIn(m, highest+1)
			haveSlot = true
		}
	}
	if haveSlot && childPos.ValidIn(m) && nw.balancedWithChange([]Position{childPos}, nil) {
		// The easy case: the slot is free and keeps the tree balanced.
		newcomer.pos = childPos
		nw.positions[childPos] = newcomer
		moved := nw.rebuildAffected([]Position{childPos})
		nw.countRestructureMessages(1 + moved/4)
		return 1
	}

	// Restructuring: the newcomer takes over an existing position in the
	// chain and occupants shift outwards until one of them can be absorbed
	// into a fresh slot without breaking balance (Section III-E).
	//
	// planInsertShift(anchor, Right) puts the newcomer in-order immediately
	// BEFORE the occupant of anchor (occupants shift right, as in Figure 4);
	// planInsertShift(anchor, Left) puts it immediately AFTER (occupants
	// shift left). The direction must preserve the key-range ordering: a
	// left-child join places the newcomer just before the parent, a
	// right-child join just after it.
	var moves []move
	var anchor Position
	var ok bool
	if side == Left {
		anchor = parent.pos
		moves, _, ok = nw.planInsertShift(anchor, Right)
		if !ok {
			if pred, exists := nw.inOrderPredecessorPos(parent.pos); exists {
				anchor = pred
				moves, _, ok = nw.planInsertShift(anchor, Left)
			}
		}
	} else {
		anchor = parent.pos
		moves, _, ok = nw.planInsertShift(anchor, Left)
		if !ok {
			if succ, exists := nw.inOrderSuccessorPos(parent.pos); exists {
				anchor = succ
				moves, _, ok = nw.planInsertShift(anchor, Right)
			}
		}
	}
	if !ok {
		// A balanced m-ary tree always has a free balance-preserving slot
		// somewhere along the in-order chain, so this indicates corruption.
		panic(fmt.Sprintf("core: restructuring failed to place peer %d under %v", newcomer.id, parent.pos))
	}
	// The newcomer takes the anchor position; every planned move is applied.
	nw.applyMoves(append([]move{{node: newcomer, from: Position{}, to: anchor}}, moves...))
	return len(moves) + 1
}

// forcedRemoveAt removes the occupant of vacatedPos from the position map by
// shifting occupants along the in-order chain into the gap until a position
// whose removal keeps the tree balanced has been vacated. The caller must
// already have deleted the departing peer from nw.positions (the position is
// empty) and handled its range and data. It returns the number of peers that
// changed position.
func (nw *Network) forcedRemoveAt(vacatedPos Position) int {
	// If the vacated position itself can simply disappear, nothing to do.
	if nw.removablePosition(vacatedPos, vacatedPos) {
		moved := nw.rebuildAffected([]Position{vacatedPos})
		nw.countRestructureMessages(moved / 4)
		return 0
	}
	moves, ok := nw.planRemoveShift(vacatedPos, Left)
	if !ok {
		moves, ok = nw.planRemoveShift(vacatedPos, Right)
	}
	if !ok {
		panic(fmt.Sprintf("core: restructuring failed to absorb the removal of position %v", vacatedPos))
	}
	nw.applyMoves(moves)
	return len(moves)
}

// removablePosition reports whether position p could be left unoccupied
// given that vacated is currently unoccupied but will be refilled (unless p
// == vacated): p must have no occupied children and the tree without p must
// stay balanced.
func (nw *Network) removablePosition(p, vacated Position) bool {
	added := []Position{}
	if p != vacated {
		added = append(added, vacated)
	}
	removed := []Position{p}
	for s := 0; s < nw.fanout; s++ {
		if nw.occupiedWith(p.ChildIn(nw.fanout, s), added, removed) {
			return false
		}
	}
	return nw.balancedWithChange(added, removed)
}

// planRemoveShift plans the moves that fill vacatedPos by shifting occupants
// from the given direction (Left shifts the in-order predecessors towards
// the gap, as in Figure 5 of the paper).
func (nw *Network) planRemoveShift(vacatedPos Position, dir Side) ([]move, bool) {
	var moves []move
	gap := vacatedPos
	for steps := 0; steps <= nw.Size()+1; steps++ {
		var candidatePos Position
		var ok bool
		if dir == Left {
			candidatePos, ok = nw.inOrderPredecessorPos(gap)
		} else {
			candidatePos, ok = nw.inOrderSuccessorPos(gap)
		}
		if !ok {
			return nil, false
		}
		mover := nw.positions[candidatePos]
		if mover == nil {
			return nil, false
		}
		moves = append(moves, move{node: mover, from: candidatePos, to: gap})
		gap = candidatePos
		if nw.removablePosition(gap, vacatedPos) {
			return moves, true
		}
	}
	return nil, false
}

// applyMoves applies a planned set of occupant moves: positions are
// reassigned, links of every affected peer are rebuilt from the position
// map, and the O(log N)-per-moved-peer routing table update messages are
// counted.
func (nw *Network) applyMoves(moves []move) {
	touched := make([]Position, 0, 2*len(moves))
	// First clear all source positions (they may be targets of other moves).
	for _, mv := range moves {
		if mv.from.ValidIn(nw.fanout) && nw.positions[mv.from] == mv.node {
			delete(nw.positions, mv.from)
		}
		if mv.from.ValidIn(nw.fanout) {
			touched = append(touched, mv.from)
		}
	}
	for _, mv := range moves {
		mv.node.pos = mv.to
		nw.positions[mv.to] = mv.node
		touched = append(touched, mv.to)
	}
	nw.rebuildAffected(touched)
	nw.root = nw.positions[RootPosition]
	// Each moved peer must rebuild its own links and inform the peers that
	// link to it: O(log N) messages per move (Section III-E).
	for _, mv := range moves {
		perNode := RoutingTableSizeIn(nw.fanout, mv.to.Level) + RoutingTableSizeIn(nw.fanout, mv.from.Level) + 4
		nw.countRestructureMessages(perNode)
	}
}

// countRestructureMessages counts n restructuring update messages against
// the current operation and the global metrics.
func (nw *Network) countRestructureMessages(n int) {
	for i := 0; i < n; i++ {
		nw.send(nil, stats.MsgRestructure, catUpdate)
	}
}
