package core

import (
	"fmt"

	"baton/internal/stats"
)

// This file implements network restructuring (Section III-E of the paper):
// when a join or a departure is forced at a particular place in the tree —
// which happens during load balancing, where a lightly loaded peer must
// leave its position and re-join as a child of the overloaded peer — the
// tree may become unbalanced. Instead of redirecting the join/leave
// elsewhere, occupants are shifted along the in-order (adjacent) chain, each
// taking the position of its neighbour, until a spot is found where a
// position can be created (for a forced join) or destroyed (for a forced
// leave) without violating the height-balance property. Peers move between
// positions; data does not move.

// move records one peer changing tree position during restructuring.
type move struct {
	node *Node
	from Position
	to   Position
}

// occupiedWith reports whether position p is occupied under the given
// occupancy overrides.
func (nw *Network) occupiedWith(p Position, added, removed []Position) bool {
	for _, q := range removed {
		if q == p {
			return false
		}
	}
	for _, q := range added {
		if q == p {
			return true
		}
	}
	return nw.positions[p] != nil
}

// freshSlotBetween returns the unique unoccupied position that falls
// in-order between the occupied position a and its in-order successor
// position b: the left child slot of b if it is free, otherwise the right
// child slot of a (which must then be free).
func (nw *Network) freshSlotBetween(a, b Position) Position {
	if nw.positions[b.LeftChild()] == nil {
		return b.LeftChild()
	}
	return a.RightChild()
}

// planInsertShift plans the occupant moves needed to give newcomerRangePos a
// place in the in-order chain immediately before the occupant of anchorPos,
// shifting occupants in the given direction. It returns the planned moves
// (excluding the newcomer, which always ends up at anchorPos... see
// applyInsertShift), the fresh position that will be created, and whether a
// balanced arrangement was found in this direction.
func (nw *Network) planInsertShift(anchorPos Position, dir Side) ([]move, Position, bool) {
	var moves []move
	carryPos := anchorPos // position whose occupant currently needs a new home
	for steps := 0; steps <= nw.Size()+1; steps++ {
		carry := nw.positions[carryPos]
		if carry == nil {
			return nil, Position{}, false
		}
		// Where would carry go if we stopped here? Into the fresh slot
		// between carryPos and its in-order neighbour in direction dir.
		var neighbourPos Position
		var haveNeighbour bool
		if dir == Right {
			neighbourPos, haveNeighbour = nw.inOrderSuccessorPos(carryPos)
		} else {
			neighbourPos, haveNeighbour = nw.inOrderPredecessorPos(carryPos)
		}
		var fresh Position
		if haveNeighbour {
			if dir == Right {
				fresh = nw.freshSlotBetween(carryPos, neighbourPos)
			} else {
				fresh = nw.freshSlotBetween(neighbourPos, carryPos)
			}
		} else {
			// carryPos is the end of the chain: the fresh slot is its own
			// child slot on the outer side.
			fresh = carryPos.Child(dir)
			if nw.positions[fresh] != nil {
				return nil, Position{}, false
			}
		}
		if nw.positions[fresh] == nil && fresh.Valid() && nw.balancedWithChange([]Position{fresh}, nil) {
			moves = append(moves, move{node: carry, from: carryPos, to: fresh})
			return moves, fresh, true
		}
		if !haveNeighbour {
			return nil, Position{}, false
		}
		// Otherwise carry displaces the neighbour and the neighbour carries
		// on.
		moves = append(moves, move{node: carry, from: carryPos, to: neighbourPos})
		carryPos = neighbourPos
	}
	return nil, Position{}, false
}

// forcedInsertAt places the detached peer newcomer at the given child
// position of parent. If occupying that position directly keeps the tree
// balanced the peer is simply installed; otherwise occupants are shifted
// along the in-order chain (restructuring) so that the newcomer takes the
// parent's child slot conceptually while the extra occupant is absorbed
// where balance allows. It returns the number of peers that changed
// position (the size of the restructuring, Figure 8h).
//
// The caller is responsible for having assigned newcomer's range and data
// and for newcomer being registered in nw.nodes but not in nw.positions.
func (nw *Network) forcedInsertAt(parent *Node, newcomer *Node, side Side) int {
	childPos := parent.pos.Child(side)
	if nw.positions[childPos] == nil && nw.balancedWithChange([]Position{childPos}, nil) {
		// The easy case: the slot is free and keeps the tree balanced.
		newcomer.pos = childPos
		nw.positions[childPos] = newcomer
		moved := nw.rebuildAffected([]Position{childPos})
		nw.countRestructureMessages(1 + moved/4)
		return 1
	}

	// Restructuring: the newcomer takes over an existing position in the
	// chain and occupants shift outwards until one of them can be absorbed
	// into a fresh slot without breaking balance (Section III-E).
	//
	// planInsertShift(anchor, Right) puts the newcomer in-order immediately
	// BEFORE the occupant of anchor (occupants shift right, as in Figure 4);
	// planInsertShift(anchor, Left) puts it immediately AFTER (occupants
	// shift left). The direction must preserve the key-range ordering: a
	// left-child join places the newcomer just before the parent, a
	// right-child join just after it.
	var moves []move
	var anchor Position
	var ok bool
	if side == Left {
		anchor = parent.pos
		moves, _, ok = nw.planInsertShift(anchor, Right)
		if !ok {
			if pred, exists := nw.inOrderPredecessorPos(parent.pos); exists {
				anchor = pred
				moves, _, ok = nw.planInsertShift(anchor, Left)
			}
		}
	} else {
		anchor = parent.pos
		moves, _, ok = nw.planInsertShift(anchor, Left)
		if !ok {
			if succ, exists := nw.inOrderSuccessorPos(parent.pos); exists {
				anchor = succ
				moves, _, ok = nw.planInsertShift(anchor, Right)
			}
		}
	}
	if !ok {
		// A balanced binary tree always has room for one more node somewhere
		// along the chain, so this indicates corruption.
		panic(fmt.Sprintf("core: restructuring failed to place peer %d under %v", newcomer.id, parent.pos))
	}
	// The newcomer takes the anchor position; every planned move is applied.
	nw.applyMoves(append([]move{{node: newcomer, from: Position{}, to: anchor}}, moves...))
	return len(moves) + 1
}

// forcedRemoveAt removes the occupant of vacatedPos from the position map by
// shifting occupants along the in-order chain into the gap until a position
// whose removal keeps the tree balanced has been vacated. The caller must
// already have deleted the departing peer from nw.positions (the position is
// empty) and handled its range and data. It returns the number of peers that
// changed position.
func (nw *Network) forcedRemoveAt(vacatedPos Position) int {
	// If the vacated position itself can simply disappear, nothing to do.
	if nw.removablePosition(vacatedPos, vacatedPos) {
		moved := nw.rebuildAffected([]Position{vacatedPos})
		nw.countRestructureMessages(moved / 4)
		return 0
	}
	moves, ok := nw.planRemoveShift(vacatedPos, Left)
	if !ok {
		moves, ok = nw.planRemoveShift(vacatedPos, Right)
	}
	if !ok {
		panic(fmt.Sprintf("core: restructuring failed to absorb the removal of position %v", vacatedPos))
	}
	nw.applyMoves(moves)
	return len(moves)
}

// removablePosition reports whether position p could be left unoccupied
// given that vacated is currently unoccupied but will be refilled (unless p
// == vacated): p must have no occupied children and the tree without p must
// stay balanced.
func (nw *Network) removablePosition(p, vacated Position) bool {
	added := []Position{}
	if p != vacated {
		added = append(added, vacated)
	}
	removed := []Position{p}
	if nw.occupiedWith(p.LeftChild(), added, removed) || nw.occupiedWith(p.RightChild(), added, removed) {
		return false
	}
	return nw.balancedWithChange(added, removed)
}

// planRemoveShift plans the moves that fill vacatedPos by shifting occupants
// from the given direction (Left shifts the in-order predecessors towards
// the gap, as in Figure 5 of the paper).
func (nw *Network) planRemoveShift(vacatedPos Position, dir Side) ([]move, bool) {
	var moves []move
	gap := vacatedPos
	for steps := 0; steps <= nw.Size()+1; steps++ {
		var candidatePos Position
		var ok bool
		if dir == Left {
			candidatePos, ok = nw.inOrderPredecessorPos(gap)
		} else {
			candidatePos, ok = nw.inOrderSuccessorPos(gap)
		}
		if !ok {
			return nil, false
		}
		mover := nw.positions[candidatePos]
		if mover == nil {
			return nil, false
		}
		moves = append(moves, move{node: mover, from: candidatePos, to: gap})
		gap = candidatePos
		if nw.removablePosition(gap, vacatedPos) {
			return moves, true
		}
	}
	return nil, false
}

// applyMoves applies a planned set of occupant moves: positions are
// reassigned, links of every affected peer are rebuilt from the position
// map, and the O(log N)-per-moved-peer routing table update messages are
// counted.
func (nw *Network) applyMoves(moves []move) {
	touched := make([]Position, 0, 2*len(moves))
	// First clear all source positions (they may be targets of other moves).
	for _, m := range moves {
		if m.from.Valid() && nw.positions[m.from] == m.node {
			delete(nw.positions, m.from)
		}
		if m.from.Valid() {
			touched = append(touched, m.from)
		}
	}
	for _, m := range moves {
		m.node.pos = m.to
		nw.positions[m.to] = m.node
		touched = append(touched, m.to)
	}
	nw.rebuildAffected(touched)
	nw.root = nw.positions[RootPosition]
	// Each moved peer must rebuild its own links and inform the peers that
	// link to it: O(log N) messages per move (Section III-E).
	for _, m := range moves {
		perNode := m.to.RoutingTableSize() + m.from.RoutingTableSize() + 4
		nw.countRestructureMessages(perNode)
	}
}

// countRestructureMessages counts n restructuring update messages against
// the current operation and the global metrics.
func (nw *Network) countRestructureMessages(n int) {
	for i := 0; i < n; i++ {
		nw.send(nil, stats.MsgRestructure, catUpdate)
	}
}
