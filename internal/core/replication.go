package core

import (
	"fmt"

	"baton/internal/keyspace"
	"baton/internal/store"
)

// Replication-scheme invariants for the live cluster's fault-tolerance
// layer. The paper's Section III-C restores a failed peer's routing state
// from its neighbours but loses its data; the live cluster in package p2p
// additionally keeps each peer's items replicated on an adjacent peer so a
// crash repair can restore them. The replica placement rule and the
// invariant it must maintain live here, next to the other structural
// invariants, so both the simulator's tests and the live cluster's
// post-quiesce audits check the same property.

// ReplicaHolderOf returns the canonical replica holder of the snapshotted
// peer under the adjacent-peer replication scheme: the right adjacent peer,
// or the left adjacent peer for the rightmost peer of the overlay. NoPeer
// means the overlay has a single peer and nothing to replicate to.
func ReplicaHolderOf(ps PeerSnapshot) PeerID {
	if ps.RightAdjacent != NoPeer {
		return ps.RightAdjacent
	}
	return ps.LeftAdjacent
}

// VerifyReplication checks the replica-range invariant over a quiesced,
// fully-synchronised overlay: for every snapshotted peer, its canonical
// replica holder must hold a replica set for it that contains exactly the
// peer's own items — same keys, same values, nothing missing and nothing
// stale left behind from an earlier range. replicas maps a holder's ID to
// the per-source replica sets it keeps. Like VerifySnapshot, it is how the
// live cluster's replication layer is audited after churn settles.
func VerifyReplication(snaps []PeerSnapshot, replicas map[PeerID]map[PeerID][]store.Item) error {
	for _, ps := range snaps {
		holder := ReplicaHolderOf(ps)
		if holder == NoPeer {
			if len(snaps) > 1 {
				return fmt.Errorf("baton: peer %d has no replica holder in a %d-peer overlay", ps.ID, len(snaps))
			}
			continue
		}
		rep := replicas[holder][ps.ID]
		repVals := make(map[keyspace.Key][]byte, len(rep))
		for _, it := range rep {
			repVals[it.Key] = it.Value
		}
		for _, it := range ps.Items {
			v, ok := repVals[it.Key]
			if !ok {
				return fmt.Errorf("baton: item %d of peer %d is missing from its replica at holder %d", it.Key, ps.ID, holder)
			}
			if string(v) != string(it.Value) {
				return fmt.Errorf("baton: item %d of peer %d has a stale replica at holder %d (%q != %q)",
					it.Key, ps.ID, holder, v, it.Value)
			}
			delete(repVals, it.Key)
		}
		for k := range repVals {
			return fmt.Errorf("baton: holder %d keeps a stale replica key %d for peer %d", holder, k, ps.ID)
		}
	}
	return nil
}
