package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"baton/internal/keyspace"
	"baton/internal/stats"
)

// Errors returned by Network operations.
var (
	// ErrUnknownPeer is returned when an operation names a peer that is not
	// part of the network.
	ErrUnknownPeer = errors.New("baton: unknown peer")
	// ErrPeerDown is returned when an operation is addressed to a failed
	// peer.
	ErrPeerDown = errors.New("baton: peer is down")
	// ErrEmptyNetwork is returned when an operation requires at least one
	// live peer.
	ErrEmptyNetwork = errors.New("baton: network is empty")
	// ErrLastPeer is returned when the only remaining peer tries to leave.
	ErrLastPeer = errors.New("baton: cannot remove the last peer")
	// ErrHopLimit is returned when a request was forwarded more times than
	// the protocol's O(log N) bound allows; it indicates either a corrupted
	// overlay or a bug and is surfaced rather than silently absorbed.
	ErrHopLimit = errors.New("baton: hop limit exceeded")
	// ErrNeedsReplacement is returned by LeaveWith when the departing peer
	// cannot leave by the safe-leaf protocol and a replacement leaf must be
	// found (Algorithm 2).
	ErrNeedsReplacement = errors.New("baton: departure needs a replacement leaf")
)

// Config configures a simulated BATON network.
type Config struct {
	// Domain is the key domain partitioned across peers. The zero value
	// means the paper's default [1, 10^9).
	Domain keyspace.Range
	// Fanout is the tree fanout m: each node has m child slots and sideways
	// routing tables at the BATON* distances j*m^i. The zero value means 2,
	// the binary protocol of the original paper (and m=2 reproduces it
	// exactly). NewNetwork panics on fanouts outside 2..MaxFanout.
	Fanout int
	// Seed seeds the network's deterministic random source (used for
	// choices the protocol leaves open, e.g. which adjacent node receives a
	// forwarded JOIN).
	Seed int64
	// NoSidewaysRouting disables the use (and message accounting) of the
	// sideways routing tables: queries climb towards the root until the
	// current subtree covers the key and then descend, probing children in
	// slot order, exactly like the multiway-tree baseline of Liau et al.
	// (DBISP2P 2004). This is the degenerate no-long-links case of BATON*
	// (package multiway wraps it); the tables are still maintained
	// internally so the structural audits hold, but they are never
	// consulted for routing and their maintenance messages are not charged.
	NoSidewaysRouting bool
	// LoadBalance configures the load balancing scheme of Section IV-D.
	// The zero value disables automatic load balancing.
	LoadBalance LoadBalanceConfig
}

// Network is an in-process simulation of a BATON overlay. It owns every peer,
// delivers protocol messages between them (counting each one), and exposes
// the operations of the paper: Join, Leave, Fail/Repair, Insert, Delete,
// SearchExact, SearchRange and LoadBalance.
//
// Operations are executed one at a time, exactly like the message-counting
// simulator used for the paper's evaluation; Network is not safe for
// concurrent use. The live, goroutine-per-peer implementation lives in
// package p2p.
type Network struct {
	cfg     Config
	domain  keyspace.Range
	fanout  int
	rng     *rand.Rand
	metrics *stats.Metrics
	load    *stats.LevelLoad

	nodes     map[PeerID]*Node
	positions map[Position]*Node
	root      *Node
	nextID    PeerID

	// failed holds peers that are down but whose failure has not been
	// repaired yet.
	failed map[PeerID]*Node

	// inflight marks peers whose routing information has not yet propagated
	// (used by the network-dynamics experiment, Figure 8i); messages routed
	// through them cost an extra redirect.
	inflight map[PeerID]bool

	// curOp accumulates the cost of the operation in progress.
	curOp *stats.OpCost
	// curOpKind is the operation kind attributed to per-level access load.
	curOpKind stats.OpKind

	// lbStats accumulates load balancing measurements (Figures 8g and 8h).
	lbMessages   int64
	lbEvents     int64
	lbShiftSizes *stats.Histogram
}

// NewNetwork creates a network with a single peer (the root) owning the whole
// key domain.
func NewNetwork(cfg Config) *Network {
	domain := cfg.Domain
	if domain.IsEmpty() {
		domain = keyspace.FullDomain()
	}
	fanout := normFanout(cfg.Fanout)
	if !ValidFanout(fanout) {
		panic(fmt.Sprintf("core: invalid fanout %d (want 2..%d)", cfg.Fanout, MaxFanout))
	}
	nw := &Network{
		cfg:          cfg,
		domain:       domain,
		fanout:       fanout,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		metrics:      stats.NewMetrics(),
		load:         stats.NewLevelLoad(),
		nodes:        make(map[PeerID]*Node),
		positions:    make(map[Position]*Node),
		failed:       make(map[PeerID]*Node),
		inflight:     make(map[PeerID]bool),
		nextID:       1,
		lbShiftSizes: stats.NewHistogram(),
	}
	root := newNode(fanout, nw.allocID(), RootPosition, domain)
	nw.nodes[root.id] = root
	nw.positions[root.pos] = root
	nw.root = root
	return nw
}

func (nw *Network) allocID() PeerID {
	id := nw.nextID
	nw.nextID++
	return id
}

// Size returns the number of live peers in the network.
func (nw *Network) Size() int { return len(nw.nodes) }

// Root returns a snapshot of the peer currently occupying the root position.
func (nw *Network) Root() NodeInfo { return nw.root.info() }

// Domain returns the key domain managed by the network.
func (nw *Network) Domain() keyspace.Range { return nw.domain }

// Fanout returns the network's tree fanout m (2 for the paper's binary
// protocol).
func (nw *Network) Fanout() int { return nw.fanout }

// Metrics returns the network's message counters.
func (nw *Network) Metrics() *stats.Metrics { return nw.metrics }

// LevelLoad returns the per-level access load counters (Figure 8f).
func (nw *Network) LevelLoad() *stats.LevelLoad { return nw.load }

// Height returns the height of the tree: the number of levels that currently
// hold at least one peer.
func (nw *Network) Height() int {
	max := 0
	for p := range nw.positions {
		if p.Level > max {
			max = p.Level
		}
	}
	return max + 1
}

// Peer returns a snapshot of the peer with the given ID.
func (nw *Network) Peer(id PeerID) (NodeInfo, error) {
	n, ok := nw.nodes[id]
	if !ok {
		if f, down := nw.failed[id]; down {
			return f.info(), nil
		}
		return NodeInfo{}, fmt.Errorf("%w: %d", ErrUnknownPeer, id)
	}
	return n.info(), nil
}

// Peers returns snapshots of all live peers, ordered by their in-order
// position (i.e. by key range).
func (nw *Network) Peers() []NodeInfo {
	out := make([]NodeInfo, 0, len(nw.nodes))
	for _, n := range nw.inOrderNodes() {
		out = append(out, n.info())
	}
	return out
}

// PeerIDs returns the IDs of all live peers in no particular order.
func (nw *Network) PeerIDs() []PeerID {
	out := make([]PeerID, 0, len(nw.nodes))
	for id := range nw.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RandomPeer returns the ID of a uniformly random live peer. It is the usual
// entry point for operations in the experiments ("a node issues a query").
func (nw *Network) RandomPeer() PeerID {
	ids := nw.PeerIDs()
	if len(ids) == 0 {
		return NoPeer
	}
	return ids[nw.rng.Intn(len(ids))]
}

// PeerAtLevel returns the IDs of all live peers at the given tree level.
func (nw *Network) PeerAtLevel(level int) []PeerID {
	var out []PeerID
	for id, n := range nw.nodes {
		if n.pos.Level == level {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalItems returns the total number of data items stored across all live
// peers.
func (nw *Network) TotalItems() int {
	total := 0
	for _, n := range nw.nodes {
		total += n.data.Len()
	}
	return total
}

// node returns the live node for id.
func (nw *Network) node(id PeerID) (*Node, error) {
	n, ok := nw.nodes[id]
	if !ok {
		if _, down := nw.failed[id]; down {
			return nil, fmt.Errorf("%w: %d", ErrPeerDown, id)
		}
		return nil, fmt.Errorf("%w: %d", ErrUnknownPeer, id)
	}
	if !n.alive {
		return nil, fmt.Errorf("%w: %d", ErrPeerDown, id)
	}
	return n, nil
}

// inOrderNodes returns all live nodes sorted by in-order position.
func (nw *Network) inOrderNodes() []*Node {
	out := make([]*Node, 0, len(nw.nodes))
	for _, n := range nw.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos.InOrderBeforeIn(nw.fanout, out[j].pos) })
	return out
}

// --- message accounting ---------------------------------------------------

// beginOp starts accounting for a new user-level operation.
func (nw *Network) beginOp(kind stats.OpKind) {
	nw.curOp = &stats.OpCost{Kind: kind}
	nw.curOpKind = kind
}

// endOp finishes the current operation and records it in the metrics.
func (nw *Network) endOp() stats.OpCost {
	cost := *nw.curOp
	nw.metrics.RecordOp(cost)
	nw.curOp = nil
	return cost
}

// msgCategory attributes a message to one of the cost components of OpCost.
type msgCategory int

const (
	catLocate msgCategory = iota
	catUpdate
	catData
	catExtra
	catOther
)

// send accounts for one protocol message delivered to dst. src may be nil
// for messages originating outside the overlay (a new peer's initial JOIN).
func (nw *Network) send(dst *Node, t stats.MsgType, cat msgCategory) {
	nw.metrics.CountMessage(t)
	if dst != nil {
		dst.msgsHandled++
		nw.load.Record(nw.curOpKind, dst.pos.Level)
	}
	if nw.curOp == nil {
		return
	}
	nw.curOp.Messages++
	switch cat {
	case catLocate:
		nw.curOp.LocateMessages++
	case catUpdate:
		nw.curOp.UpdateMessages++
	case catData:
		nw.curOp.DataMessages++
	case catExtra:
		nw.curOp.ExtraMessages++
	case catOther:
		// Counted in the operation's total above; no per-component bucket.
	}
}

// hopLimit is the maximum number of forwarding steps any request may take.
// The protocol guarantees O(log N); the generous bound catches corruption.
func (nw *Network) hopLimit() int {
	h := nw.Height()
	limit := 6*h + 16
	if limit < 64 {
		limit = 64
	}
	return limit
}

// --- structural helpers on the position map --------------------------------

// nodeAt returns the live node occupying the given position, or nil.
func (nw *Network) nodeAt(p Position) *Node { return nw.positions[p] }

// subtreeHeight returns the height (number of levels) of the subtree rooted
// at position p, counting only occupied positions. An unoccupied position has
// height 0, a single occupied leaf has height 1.
func (nw *Network) subtreeHeight(p Position) int {
	if nw.positions[p] == nil {
		return 0
	}
	max := 0
	for s := 0; s < nw.fanout; s++ {
		if h := nw.subtreeHeight(p.ChildIn(nw.fanout, s)); h > max {
			max = h
		}
	}
	return max + 1
}

// isBalanced reports whether the occupied positions form a height-balanced
// m-ary tree (Definition 1 of the paper, generalised: at every node the
// heights of the m child subtrees pairwise differ by at most one).
func (nw *Network) isBalanced() bool {
	_, ok := nw.checkBalance(RootPosition)
	return ok
}

func (nw *Network) checkBalance(p Position) (height int, balanced bool) {
	if nw.positions[p] == nil {
		return 0, true
	}
	minH, maxH := -1, 0
	for s := 0; s < nw.fanout; s++ {
		h, ok := nw.checkBalance(p.ChildIn(nw.fanout, s))
		if !ok {
			return 0, false
		}
		if h > maxH {
			maxH = h
		}
		if minH < 0 || h < minH {
			minH = h
		}
	}
	if maxH-minH > 1 {
		return 0, false
	}
	return maxH + 1, true
}

// balancedWithChange reports whether the tree would remain height-balanced if
// the occupancy of the given positions were toggled: every position in added
// becomes occupied and every position in removed becomes free. The check is
// performed on the ancestors of the affected positions only.
func (nw *Network) balancedWithChange(added, removed []Position) bool {
	override := make(map[Position]int, len(added)+len(removed))
	for _, p := range added {
		override[p] = +1
	}
	for _, p := range removed {
		override[p] = -1
	}
	var balanced func(p Position) (int, bool)
	balanced = func(p Position) (int, bool) {
		occupied := nw.positions[p] != nil
		switch override[p] {
		case +1:
			occupied = true
		case -1:
			occupied = false
		}
		if !occupied {
			return 0, true
		}
		minH, maxH := -1, 0
		for s := 0; s < nw.fanout; s++ {
			h, ok := balanced(p.ChildIn(nw.fanout, s))
			if !ok {
				return 0, false
			}
			if h > maxH {
				maxH = h
			}
			if minH < 0 || h < minH {
				minH = h
			}
		}
		if maxH-minH > 1 {
			return 0, false
		}
		return maxH + 1, true
	}
	_, ok := balanced(RootPosition)
	return ok
}

// minOfSubtree returns the in-order minimum occupied position of the subtree
// rooted at occupied position q. The node itself comes after its first m-1
// child subtrees, so the minimum descends through the lowest occupied slot
// among 0..m-2 (for m=2 the left-child chain).
func (nw *Network) minOfSubtree(q Position) Position {
	m := nw.fanout
descend:
	for {
		for s := 0; s < m-1; s++ {
			if c := q.ChildIn(m, s); nw.positions[c] != nil {
				q = c
				continue descend
			}
		}
		return q
	}
}

// maxOfSubtree returns the in-order maximum occupied position of the subtree
// rooted at occupied position q: the node only precedes its last child
// subtree, so the maximum descends the slot m-1 chain (for m=2 the
// right-child chain).
func (nw *Network) maxOfSubtree(q Position) Position {
	m := nw.fanout
	for nw.positions[q.ChildIn(m, m-1)] != nil {
		q = q.ChildIn(m, m-1)
	}
	return q
}

// inOrderPredecessorPos returns the occupied position that immediately
// precedes p in the in-order traversal, and whether one exists.
func (nw *Network) inOrderPredecessorPos(p Position) (Position, bool) {
	m := nw.fanout
	// The node comes right after its first m-1 child subtrees: if any of
	// slots 0..m-2 is occupied, the predecessor is the maximum of the highest
	// such subtree (for m=2: the rightmost occupied position of the left
	// subtree).
	for s := m - 2; s >= 0; s-- {
		if c := p.ChildIn(m, s); nw.positions[c] != nil {
			return nw.maxOfSubtree(c), true
		}
	}
	// Otherwise walk up. At each step q sits in slot s of its parent: if s is
	// the last slot the parent itself immediately precedes q's subtree; if an
	// earlier sibling subtree is occupied its maximum does; otherwise nothing
	// in the parent's subtree precedes q and the climb continues.
	q := p
	for !q.IsRoot() {
		parent := q.ParentIn(m)
		s := q.SlotIn(m)
		if s == m-1 {
			if nw.positions[parent] != nil {
				return parent, true
			}
			// An unoccupied ancestor cannot happen in a valid BATON tree
			// (ancestors of occupied positions are always occupied), but be
			// defensive.
			q = parent
			continue
		}
		for t := s - 1; t >= 0; t-- {
			if c := parent.ChildIn(m, t); nw.positions[c] != nil {
				return nw.maxOfSubtree(c), true
			}
		}
		q = parent
	}
	return Position{}, false
}

// inOrderSuccessorPos returns the occupied position that immediately follows
// p in the in-order traversal, and whether one exists.
func (nw *Network) inOrderSuccessorPos(p Position) (Position, bool) {
	m := nw.fanout
	// Only the last child subtree follows the node itself.
	if c := p.ChildIn(m, m-1); nw.positions[c] != nil {
		return nw.minOfSubtree(c), true
	}
	// Walk up. At each step q sits in slot s of its parent: a later sibling
	// in slots s+1..m-2 comes next if occupied, then the parent itself; from
	// the last slot nothing in the parent's subtree follows q.
	q := p
	for !q.IsRoot() {
		parent := q.ParentIn(m)
		s := q.SlotIn(m)
		if s < m-1 {
			for t := s + 1; t < m-1; t++ {
				if c := parent.ChildIn(m, t); nw.positions[c] != nil {
					return nw.minOfSubtree(c), true
				}
			}
			if nw.positions[parent] != nil {
				return parent, true
			}
			q = parent
			continue
		}
		q = parent
	}
	return Position{}, false
}

// rebuildLinks recomputes every link of the node occupying position p from
// the position map: parent, children, adjacent nodes and both routing
// tables. It is used after restructuring and replacement, where a peer's
// position (and therefore its whole link set) changes.
func (nw *Network) rebuildLinks(n *Node) {
	m := nw.fanout
	p := n.pos
	if p.IsRoot() {
		n.parent = nil
	} else {
		n.parent = nw.positions[p.ParentIn(m)]
	}
	for s := 0; s < m; s++ {
		n.children[s] = nw.positions[p.ChildIn(m, s)]
	}
	if pred, ok := nw.inOrderPredecessorPos(p); ok {
		n.leftAdj = nw.positions[pred]
	} else {
		n.leftAdj = nil
	}
	if succ, ok := nw.inOrderSuccessorPos(p); ok {
		n.rightAdj = nw.positions[succ]
	} else {
		n.rightAdj = nil
	}
	n.resizeRoutingTables()
	for i := range n.leftRT {
		if q, ok := p.NeighbourIn(m, Left, RTDistance(m, i)); ok {
			n.leftRT[i] = nw.positions[q]
		}
	}
	for i := range n.rightRT {
		if q, ok := p.NeighbourIn(m, Right, RTDistance(m, i)); ok {
			n.rightRT[i] = nw.positions[q]
		}
	}
}

// affectedByPositions returns the set of live nodes whose link sets can refer
// to any of the given positions: the occupants themselves plus their
// parents, children, in-order neighbours and same-level 2^i neighbours.
func (nw *Network) affectedByPositions(positions []Position) map[PeerID]*Node {
	out := make(map[PeerID]*Node)
	add := func(n *Node) {
		if n != nil {
			out[n.id] = n
		}
	}
	m := nw.fanout
	for _, p := range positions {
		add(nw.positions[p])
		if !p.IsRoot() {
			add(nw.positions[p.ParentIn(m)])
		}
		for s := 0; s < m; s++ {
			add(nw.positions[p.ChildIn(m, s)])
		}
		if pred, ok := nw.inOrderPredecessorPos(p); ok {
			add(nw.positions[pred])
		}
		if succ, ok := nw.inOrderSuccessorPos(p); ok {
			add(nw.positions[succ])
		}
		for i := 0; i < RoutingTableSizeIn(m, p.Level); i++ {
			if q, ok := p.NeighbourIn(m, Left, RTDistance(m, i)); ok {
				add(nw.positions[q])
			}
			if q, ok := p.NeighbourIn(m, Right, RTDistance(m, i)); ok {
				add(nw.positions[q])
			}
		}
	}
	return out
}

// rebuildAffected rebuilds the links of every node whose links can refer to
// the given positions. It returns the number of nodes whose links were
// rebuilt (used for message accounting).
func (nw *Network) rebuildAffected(positions []Position) int {
	affected := nw.affectedByPositions(positions)
	for _, n := range affected {
		nw.rebuildLinks(n)
	}
	return len(affected)
}

// SetInflight marks or clears a peer as "in flight": its routing information
// has not yet propagated through the network, so requests that reach it or
// try to use it as a routing target pay an extra redirect message. The
// network-dynamics experiment (Figure 8i) uses this to model concurrent
// joins and leaves.
func (nw *Network) SetInflight(id PeerID, inflight bool) {
	if inflight {
		nw.inflight[id] = true
	} else {
		delete(nw.inflight, id)
	}
}

// ClearInflight clears all in-flight marks.
func (nw *Network) ClearInflight() {
	nw.inflight = make(map[PeerID]bool)
}

// chargeIfInflight counts an extra redirect message when the given node is
// currently marked in flight.
func (nw *Network) chargeIfInflight(n *Node) {
	if n != nil && nw.inflight[n.id] {
		nw.send(n, stats.MsgRedirect, catExtra)
	}
}
