package core

import (
	"fmt"

	"baton/internal/keyspace"
	"baton/internal/store"
)

// PeerSnapshot is a full copy of one peer's protocol state: its identity,
// range, stored items, and the identities of every peer it links to. It is
// the hand-off format between the message-counting simulator and the live
// goroutine-per-peer cluster in package p2p, in both directions: NewCluster
// consumes snapshots to animate a network, and Cluster.Snapshot produces
// them so the live structure can be audited with FromSnapshot +
// CheckInvariants.
//
// The snapshot carries the network's fanout implicitly: LeftChild and
// RightChild are the first and last child slots, and MidChildren holds the
// m-2 slots in between (NoPeer for empty slots), so a snapshot taken at
// fanout m always has len(MidChildren) == m-2. A nil MidChildren therefore
// means the binary protocol, which keeps every snapshot literal written for
// the binary tree valid as-is.
type PeerSnapshot struct {
	ID         PeerID
	Position   Position
	Range      keyspace.Range
	Items      []store.Item
	Parent     PeerID
	LeftChild  PeerID
	RightChild PeerID
	// MidChildren holds child slots 1..m-2 in order (empty for fanout 2).
	MidChildren   []PeerID
	LeftAdjacent  PeerID
	RightAdjacent PeerID
	LeftRouting   []PeerID
	RightRouting  []PeerID
}

// Fanout returns the tree fanout the snapshot was taken at, inferred from
// the number of middle child slots.
func (ps PeerSnapshot) Fanout() int { return len(ps.MidChildren) + 2 }

// HasChildren reports whether any child slot of the snapshot is occupied.
func (ps PeerSnapshot) HasChildren() bool {
	if ps.LeftChild != NoPeer || ps.RightChild != NoPeer {
		return true
	}
	for _, c := range ps.MidChildren {
		if c != NoPeer {
			return true
		}
	}
	return false
}

// ChildSlots returns all m child slot IDs in order (NoPeer for empty slots).
func (ps PeerSnapshot) ChildSlots() []PeerID {
	out := make([]PeerID, 0, ps.Fanout())
	out = append(out, ps.LeftChild)
	out = append(out, ps.MidChildren...)
	out = append(out, ps.RightChild)
	return out
}

// Snapshot exports the state of every live peer of the network. Failed peers
// that have not been repaired are skipped (their links are likewise absent
// from the snapshots that referenced them).
func Snapshot(nw *Network) []PeerSnapshot {
	m := nw.fanout
	idOf := func(n *Node) PeerID {
		if n == nil || !n.alive {
			return NoPeer
		}
		return n.id
	}
	out := make([]PeerSnapshot, 0, len(nw.nodes))
	for _, n := range nw.inOrderNodes() {
		if !n.alive {
			continue
		}
		ps := PeerSnapshot{
			ID:            n.id,
			Position:      n.pos,
			Range:         n.nodeRange,
			Items:         n.data.Items(),
			Parent:        idOf(n.parent),
			LeftChild:     idOf(n.children[0]),
			RightChild:    idOf(n.children[m-1]),
			LeftAdjacent:  idOf(n.leftAdj),
			RightAdjacent: idOf(n.rightAdj),
		}
		for s := 1; s < m-1; s++ {
			ps.MidChildren = append(ps.MidChildren, idOf(n.children[s]))
		}
		for _, e := range n.leftRT {
			ps.LeftRouting = append(ps.LeftRouting, idOf(e))
		}
		for _, e := range n.rightRT {
			ps.RightRouting = append(ps.RightRouting, idOf(e))
		}
		out = append(out, ps)
	}
	return out
}

// FromSnapshot reconstructs a Network from per-peer snapshots: peers are
// re-created at their recorded positions with their recorded ranges and
// items, and every link — parent, children, adjacent and both routing tables
// — is wired from the recorded peer IDs, NOT recomputed from the position
// map. CheckInvariants on the result therefore verifies the snapshotted link
// state itself, which is what makes the Cluster.Snapshot round trip of
// package p2p a real structural audit: a cluster whose live links have
// drifted from its positions fails the check instead of being silently
// repaired. The fanout is inferred from the snapshots' MidChildren width
// (nil means the binary protocol). An empty domain means the paper's
// default.
func FromSnapshot(domain keyspace.Range, snaps []PeerSnapshot) (*Network, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("baton: snapshot has no peers")
	}
	if domain.IsEmpty() {
		domain = keyspace.FullDomain()
	}
	m := snaps[0].Fanout()
	nw := NewNetwork(Config{Domain: domain, Fanout: m})
	// Discard the implicit root peer NewNetwork creates; the snapshot
	// provides the full peer set.
	nw.nodes = make(map[PeerID]*Node)
	nw.positions = make(map[Position]*Node)
	nw.root = nil
	for _, ps := range snaps {
		if ps.Fanout() != m {
			return nil, fmt.Errorf("baton: snapshot peer %d has fanout %d, peer %d has %d", ps.ID, ps.Fanout(), snaps[0].ID, m)
		}
		if !ps.Position.ValidIn(m) {
			return nil, fmt.Errorf("baton: snapshot peer %d has invalid position %v", ps.ID, ps.Position)
		}
		if nw.nodes[ps.ID] != nil {
			return nil, fmt.Errorf("baton: snapshot contains peer %d twice", ps.ID)
		}
		if nw.positions[ps.Position] != nil {
			return nil, fmt.Errorf("baton: snapshot occupies position %v twice", ps.Position)
		}
		n := newNode(m, ps.ID, ps.Position, ps.Range)
		n.data.Absorb(ps.Items)
		nw.nodes[n.id] = n
		nw.positions[n.pos] = n
		if ps.ID >= nw.nextID {
			nw.nextID = ps.ID + 1
		}
	}
	nw.root = nw.positions[RootPosition]
	if nw.root == nil {
		return nil, fmt.Errorf("baton: snapshot has no peer at the root position")
	}
	byID := func(id PeerID) *Node {
		if id == NoPeer {
			return nil
		}
		return nw.nodes[id] // nil for dangling IDs; CheckInvariants reports them
	}
	for _, ps := range snaps {
		n := nw.nodes[ps.ID]
		n.parent = byID(ps.Parent)
		n.children[0] = byID(ps.LeftChild)
		n.children[m-1] = byID(ps.RightChild)
		for s, id := range ps.MidChildren {
			n.children[s+1] = byID(id)
		}
		n.leftAdj = byID(ps.LeftAdjacent)
		n.rightAdj = byID(ps.RightAdjacent)
		n.resizeRoutingTables()
		// Surplus routing entries are rejected, not dropped: silently
		// truncating them would let a corrupt live table pass the audit.
		if len(ps.LeftRouting) > len(n.leftRT) || len(ps.RightRouting) > len(n.rightRT) {
			return nil, fmt.Errorf("baton: snapshot peer %d at %v has routing tables of size %d/%d, position allows %d",
				ps.ID, ps.Position, len(ps.LeftRouting), len(ps.RightRouting), len(n.leftRT))
		}
		for i := range ps.LeftRouting {
			n.leftRT[i] = byID(ps.LeftRouting[i])
		}
		for i := range ps.RightRouting {
			n.rightRT[i] = byID(ps.RightRouting[i])
		}
	}
	return nw, nil
}

// VerifySnapshot rebuilds a network from the snapshots and runs the full
// structural invariant suite against it: balanced tree shape, link and
// routing-table correctness, and gap-free contiguous range partitioning.
// It is how the live cluster's post-quiesce state is audited.
func VerifySnapshot(domain keyspace.Range, snaps []PeerSnapshot) error {
	nw, err := FromSnapshot(domain, snaps)
	if err != nil {
		return err
	}
	return nw.CheckInvariants()
}
