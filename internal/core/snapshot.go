package core

import (
	"baton/internal/keyspace"
	"baton/internal/store"
)

// PeerSnapshot is a full copy of one peer's protocol state: its identity,
// range, stored items, and the identities of every peer it links to. It is
// the hand-off format between the message-counting simulator and the live
// goroutine-per-peer cluster in package p2p.
type PeerSnapshot struct {
	ID            PeerID
	Position      Position
	Range         keyspace.Range
	Items         []store.Item
	Parent        PeerID
	LeftChild     PeerID
	RightChild    PeerID
	LeftAdjacent  PeerID
	RightAdjacent PeerID
	LeftRouting   []PeerID
	RightRouting  []PeerID
}

// Snapshot exports the state of every live peer of the network. Failed peers
// that have not been repaired are skipped (their links are likewise absent
// from the snapshots that referenced them).
func Snapshot(nw *Network) []PeerSnapshot {
	idOf := func(n *Node) PeerID {
		if n == nil || !n.alive {
			return NoPeer
		}
		return n.id
	}
	out := make([]PeerSnapshot, 0, len(nw.nodes))
	for _, n := range nw.inOrderNodes() {
		if !n.alive {
			continue
		}
		ps := PeerSnapshot{
			ID:            n.id,
			Position:      n.pos,
			Range:         n.nodeRange,
			Items:         n.data.Items(),
			Parent:        idOf(n.parent),
			LeftChild:     idOf(n.leftChild),
			RightChild:    idOf(n.rightChild),
			LeftAdjacent:  idOf(n.leftAdj),
			RightAdjacent: idOf(n.rightAdj),
		}
		for _, m := range n.leftRT {
			ps.LeftRouting = append(ps.LeftRouting, idOf(m))
		}
		for _, m := range n.rightRT {
			ps.RightRouting = append(ps.RightRouting, idOf(m))
		}
		out = append(out, ps)
	}
	return out
}
