package core

import (
	"fmt"

	"baton/internal/stats"
)

// Join adds a new peer to the network. The new peer contacts the existing
// peer via (any peer it happens to know) and the JOIN request is forwarded
// according to Algorithm 1 of the paper until a node that may accept a child
// is found: a node whose two sideways routing tables are full and that has a
// free child slot (the Theorem 1 condition, which keeps the tree balanced).
//
// The accepting node and the new child split the key range of the child's
// in-order neighbour (its parent, in the binary protocol) and the
// surrounding routing state is updated. Join returns the new peer's ID and
// the cost of the operation; OpCost.LocateMessages is the Figure 8(a)
// quantity and OpCost.UpdateMessages the Figure 8(b) quantity.
func (nw *Network) Join(via PeerID) (PeerID, stats.OpCost, error) {
	start, err := nw.node(via)
	if err != nil {
		return NoPeer, stats.OpCost{}, err
	}
	nw.beginOp(stats.OpJoin)
	acceptor, slot, err := nw.locateJoinNode(start)
	if err != nil {
		nw.endOp()
		return NoPeer, stats.OpCost{}, err
	}
	child := nw.acceptChild(acceptor, slot)
	cost := nw.endOp()
	return child.id, cost, nil
}

// JoinAt adds a new peer as the child of a specific existing peer, on the
// given side: the leftmost child slot for Left, the rightmost for Right. At
// fanout 2 those are the only slots, so this is exactly the binary JoinAt.
func (nw *Network) JoinAt(parentID PeerID, side Side) (PeerID, stats.OpCost, error) {
	return nw.JoinAtSlot(parentID, slotFor(nw.fanout, side))
}

// JoinAtSlot adds a new peer in a specific child slot of a specific existing
// peer. It is the entry point used by the live cluster in package p2p, where
// Algorithm 1's locate phase runs as real messages between peer goroutines
// and only the acceptance — splitting the range, handing off the data,
// updating the surrounding routing state — is mirrored here. JoinAtSlot
// validates what Theorem 1 would guarantee for an acceptor found by the
// protocol itself: the child slot must be free and accepting the child must
// keep the tree height-balanced.
func (nw *Network) JoinAtSlot(parentID PeerID, slot int) (PeerID, stats.OpCost, error) {
	parent, err := nw.node(parentID)
	if err != nil {
		return NoPeer, stats.OpCost{}, err
	}
	if slot < 0 || slot >= nw.fanout {
		return NoPeer, stats.OpCost{}, fmt.Errorf("baton: child slot %d out of range for fanout %d", slot, nw.fanout)
	}
	if parent.ChildSlot(slot) != nil {
		return NoPeer, stats.OpCost{}, fmt.Errorf("baton: peer %d already has a child in slot %d", parentID, slot)
	}
	childPos := parent.pos.ChildIn(nw.fanout, slot)
	if !childPos.ValidIn(nw.fanout) {
		return NoPeer, stats.OpCost{}, fmt.Errorf("baton: child position %v of peer %d is invalid", childPos, parentID)
	}
	if !nw.balancedWithChange([]Position{childPos}, nil) {
		return NoPeer, stats.OpCost{}, fmt.Errorf("baton: accepting a child in slot %d at peer %d would unbalance the tree", slot, parentID)
	}
	nw.beginOp(stats.OpJoin)
	nw.send(parent, stats.MsgJoinRequest, catLocate)
	child := nw.acceptChild(parent, slot)
	cost := nw.endOp()
	return child.id, cost, nil
}

// locateJoinNode runs Algorithm 1 starting at start and returns the node
// that will accept the new peer together with the free child slot to use.
func (nw *Network) locateJoinNode(start *Node) (*Node, int, error) {
	n := start
	// The initial JOIN message from the new peer to its contact.
	nw.send(n, stats.MsgJoinRequest, catLocate)
	limit := nw.hopLimit()
	visited := make(map[PeerID]int)
	for hops := 0; hops < limit; hops++ {
		nw.chargeIfInflight(n)
		if slot, free := n.freeChildSlot(); n.alive && free && n.bothRoutingTablesFull() {
			return n, slot, nil
		}
		visited[n.id]++
		next := nw.joinForwardTarget(n, visited)
		if next == nil {
			// No outgoing link makes progress (can only happen in tiny or
			// corrupted networks); fall back to a direct scan, charging one
			// extra locate message per inspected peer as a pessimistic bound.
			return nw.joinFallback(n)
		}
		nw.send(next, stats.MsgJoinRequest, catLocate)
		n = next
	}
	return nil, 0, fmt.Errorf("locating join node starting at peer %d: %w", start.id, ErrHopLimit)
}

// joinForwardTarget applies the forwarding rules of Algorithm 1 at node n.
func (nw *Network) joinForwardTarget(n *Node, visited map[PeerID]int) *Node {
	// Rule 2: a node with an incomplete routing table forwards the request
	// to its parent (the parent of a missing neighbour can accept).
	if !n.bothRoutingTablesFull() {
		if n.parent != nil && n.parent.alive && visited[n.parent.id] < 2 {
			return n.parent
		}
	}
	// Rule 3: look for a routing-table neighbour that does not have all its
	// children.
	var candidate *Node
	for _, side := range []Side{Left, Right} {
		for _, m := range n.RoutingTable(side) {
			if m == nil || !m.alive {
				continue
			}
			if m.hasFreeChildSlot() && visited[m.id] == 0 {
				candidate = m
				break
			}
		}
		if candidate != nil {
			break
		}
	}
	if candidate != nil {
		return candidate
	}
	// Rule 4: forward to one of the adjacent nodes.
	for _, adj := range []*Node{n.leftAdj, n.rightAdj} {
		if adj != nil && adj.alive && visited[adj.id] < 2 {
			return adj
		}
	}
	// Last resort within the protocol's spirit: climb towards the root.
	if n.parent != nil && n.parent.alive && visited[n.parent.id] < 4 {
		return n.parent
	}
	return nil
}

// joinFallback deterministically finds any node that can accept a child. It
// exists so a Join can never fail on a healthy network even if forwarding
// paints itself into a corner; each inspected node costs one message.
func (nw *Network) joinFallback(from *Node) (*Node, int, error) {
	for _, n := range nw.inOrderNodes() {
		if !n.alive {
			continue
		}
		if slot, free := n.freeChildSlot(); free && n.bothRoutingTablesFull() {
			nw.send(n, stats.MsgJoinRequest, catLocate)
			return n, slot, nil
		}
	}
	// A balanced tree always has a node satisfying Theorem 1's acceptance
	// condition, so reaching this point means the overlay is corrupted.
	return nil, 0, fmt.Errorf("join fallback found no acceptor (network size %d): %w", nw.Size(), ErrHopLimit)
}

// acceptChild creates a new peer as the child of parent in the given slot,
// splits the range and data of the child's in-order neighbour with it, fixes
// the adjacent links and builds the routing tables of the new peer, counting
// every protocol message of Section III-A.
func (nw *Network) acceptChild(parent *Node, slot int) *Node {
	m := nw.fanout
	childPos := parent.pos.ChildIn(m, slot)
	child := newNode(m, nw.allocID(), childPos, parent.nodeRange)

	// The range donor is the new child's in-order neighbour: its successor
	// for slots 0..m-2 (the child takes the donor's lower half) and its
	// predecessor for the last slot (the child takes the upper half). In the
	// binary tree the donor is always the parent itself — slot 0's successor
	// and slot 1's predecessor — so at m=2 this is exactly the paper's
	// "parent splits its range with the new child".
	var donor *Node
	childBeforeDonor := slot < m-1
	if childBeforeDonor {
		if succ, ok := nw.inOrderSuccessorPos(childPos); ok {
			donor = nw.positions[succ]
		}
	} else {
		if pred, ok := nw.inOrderPredecessorPos(childPos); ok {
			donor = nw.positions[pred]
		}
	}
	if donor == nil {
		// Cannot happen in a valid tree: the parent always neighbours a fresh
		// child in at least one direction. Be defensive.
		donor = parent
	}

	nw.nodes[child.id] = child
	nw.positions[childPos] = child

	// Split the donor's range: the child receives the half on its own side of
	// the in-order chain, so the ordering of ranges is preserved. The
	// corresponding data items move with the range.
	nw.splitRangeWithChild(donor, child, childBeforeDonor)

	// Adjacent links (Section III-A): the new child slots into the in-order
	// chain immediately next to its donor.
	nw.spliceAdjacent(donor, child, childBeforeDonor)

	// Parent / child links.
	child.parent = parent
	parent.setChild(slot, child)

	// Routing tables: the parent contacts each of its routing-table
	// neighbours (2*L1 messages); each informs its relevant child about the
	// new node (2*L2 messages) and those children respond to the new node so
	// it can fill its own tables (2*L2 messages). The new node also notifies
	// one adjacent node. We perform the equivalent state changes directly on
	// the position map and count the messages the protocol would send.
	nw.buildChildRoutingTables(parent, child)

	return child
}

// splitRangeWithChild hands half of donor's range and data to child.
// childBeforeDonor tells which half the child receives: the lower half when
// it precedes the donor in the in-order chain, the upper half otherwise.
func (nw *Network) splitRangeWithChild(donor, child *Node, childBeforeDonor bool) {
	lower, upper, err := donor.nodeRange.SplitHalf()
	if err != nil {
		// The donor's range has become empty (possible after extreme
		// skew); the child starts with an empty range at the boundary.
		at := donor.nodeRange.Lower
		lower = donor.nodeRange
		upper = donor.nodeRange
		lower.Upper = at
		upper.Lower = at
	}
	if childBeforeDonor {
		child.nodeRange = lower
		donor.nodeRange = upper
	} else {
		child.nodeRange = upper
		donor.nodeRange = lower
	}
	moved := donor.data.ExtractRange(child.nodeRange)
	child.data.Absorb(moved)
	// One message transfers the data items and the range assignment.
	nw.send(child, stats.MsgTransferData, catData)
}

// spliceAdjacent inserts child into the in-order chain next to its donor.
func (nw *Network) spliceAdjacent(donor, child *Node, childBeforeDonor bool) {
	if childBeforeDonor {
		prev := donor.leftAdj
		child.leftAdj = prev
		child.rightAdj = donor
		donor.leftAdj = child
		if prev != nil {
			prev.rightAdj = child
			nw.send(prev, stats.MsgUpdateAdjacent, catUpdate)
		}
	} else {
		next := donor.rightAdj
		child.rightAdj = next
		child.leftAdj = donor
		donor.rightAdj = child
		if next != nil {
			next.leftAdj = child
			nw.send(next, stats.MsgUpdateAdjacent, catUpdate)
		}
	}
	// The new node notifies one of its adjacent nodes (the paper counts a
	// single message from the new node).
	nw.send(donor, stats.MsgUpdateAdjacent, catUpdate)
}

// buildChildRoutingTables fills the routing tables of the freshly accepted
// child and installs the reverse links at its same-level neighbours,
// counting the messages of the paper's join analysis.
func (nw *Network) buildChildRoutingTables(parent, child *Node) {
	m := nw.fanout
	// The parent contacts every non-null neighbour in its own tables. A
	// no-sideways network maintains the tables silently (they are structural
	// bookkeeping, not protocol links), so nothing is charged for them.
	charge := !nw.cfg.NoSidewaysRouting
	if charge {
		for _, side := range []Side{Left, Right} {
			for _, q := range parent.RoutingTable(side) {
				if q != nil {
					nw.send(q, stats.MsgNotifyNeighbour, catUpdate)
				}
			}
		}
	}
	// Fill the child's tables and the reverse entries. Every filled entry
	// corresponds to one "inform the relevant child" message and one
	// response to the new node.
	child.resizeRoutingTables()
	for i := range child.leftRT {
		if q, ok := child.pos.NeighbourIn(m, Left, RTDistance(m, i)); ok {
			if nb := nw.positions[q]; nb != nil {
				child.leftRT[i] = nb
				nw.setReverseRT(nb, child, Right)
				if charge {
					nw.send(nb, stats.MsgNotifyChild, catUpdate)
					nw.send(child, stats.MsgReply, catUpdate)
				}
			}
		}
	}
	for i := range child.rightRT {
		if q, ok := child.pos.NeighbourIn(m, Right, RTDistance(m, i)); ok {
			if nb := nw.positions[q]; nb != nil {
				child.rightRT[i] = nb
				nw.setReverseRT(nb, child, Left)
				if charge {
					nw.send(nb, stats.MsgNotifyChild, catUpdate)
					nw.send(child, stats.MsgReply, catUpdate)
				}
			}
		}
	}
}

// setReverseRT installs child into nb's routing table on the given side (nb
// gained a new same-level neighbour).
func (nw *Network) setReverseRT(nb, child *Node, side Side) {
	rt := nb.RoutingTable(side)
	for i := range rt {
		if q, ok := nb.pos.NeighbourIn(nw.fanout, side, RTDistance(nw.fanout, i)); ok && q == child.pos {
			rt[i] = child
			return
		}
	}
}
