package core

import (
	"fmt"

	"baton/internal/stats"
)

// Join adds a new peer to the network. The new peer contacts the existing
// peer via (any peer it happens to know) and the JOIN request is forwarded
// according to Algorithm 1 of the paper until a node that may accept a child
// is found: a node whose two sideways routing tables are full and that has a
// free child slot (the Theorem 1 condition, which keeps the tree balanced).
//
// The accepting node splits its key range (and the corresponding data) with
// the new child and the surrounding routing state is updated. Join returns
// the new peer's ID and the cost of the operation; OpCost.LocateMessages is
// the Figure 8(a) quantity and OpCost.UpdateMessages the Figure 8(b)
// quantity.
func (nw *Network) Join(via PeerID) (PeerID, stats.OpCost, error) {
	start, err := nw.node(via)
	if err != nil {
		return NoPeer, stats.OpCost{}, err
	}
	nw.beginOp(stats.OpJoin)
	acceptor, side, err := nw.locateJoinNode(start)
	if err != nil {
		nw.endOp()
		return NoPeer, stats.OpCost{}, err
	}
	child := nw.acceptChild(acceptor, side)
	cost := nw.endOp()
	return child.id, cost, nil
}

// JoinAt adds a new peer as the child of a specific existing peer, on the
// given side. It is the entry point used by the live cluster in package p2p,
// where Algorithm 1's locate phase runs as real messages between peer
// goroutines and only the acceptance — splitting the range, handing off the
// data, updating the surrounding routing state — is mirrored here. JoinAt
// validates what Theorem 1 would guarantee for an acceptor found by the
// protocol itself: the child slot must be free and accepting the child must
// keep the tree height-balanced.
func (nw *Network) JoinAt(parentID PeerID, side Side) (PeerID, stats.OpCost, error) {
	parent, err := nw.node(parentID)
	if err != nil {
		return NoPeer, stats.OpCost{}, err
	}
	if parent.Child(side) != nil {
		return NoPeer, stats.OpCost{}, fmt.Errorf("baton: peer %d already has a %s child", parentID, side)
	}
	childPos := parent.pos.Child(side)
	if !childPos.Valid() {
		return NoPeer, stats.OpCost{}, fmt.Errorf("baton: child position %v of peer %d is invalid", childPos, parentID)
	}
	if !nw.balancedWithChange([]Position{childPos}, nil) {
		return NoPeer, stats.OpCost{}, fmt.Errorf("baton: accepting a %s child at peer %d would unbalance the tree", side, parentID)
	}
	nw.beginOp(stats.OpJoin)
	nw.send(parent, stats.MsgJoinRequest, catLocate)
	child := nw.acceptChild(parent, side)
	cost := nw.endOp()
	return child.id, cost, nil
}

// locateJoinNode runs Algorithm 1 starting at start and returns the node
// that will accept the new peer together with the free child side to use.
func (nw *Network) locateJoinNode(start *Node) (*Node, Side, error) {
	n := start
	// The initial JOIN message from the new peer to its contact.
	nw.send(n, stats.MsgJoinRequest, catLocate)
	limit := nw.hopLimit()
	visited := make(map[PeerID]int)
	for hops := 0; hops < limit; hops++ {
		nw.chargeIfInflight(n)
		if side, free := n.freeChildSide(); n.alive && free && n.bothRoutingTablesFull() {
			return n, side, nil
		}
		visited[n.id]++
		next := nw.joinForwardTarget(n, visited)
		if next == nil {
			// No outgoing link makes progress (can only happen in tiny or
			// corrupted networks); fall back to a direct scan, charging one
			// extra locate message per inspected peer as a pessimistic bound.
			return nw.joinFallback(n)
		}
		nw.send(next, stats.MsgJoinRequest, catLocate)
		n = next
	}
	return nil, Left, fmt.Errorf("locating join node starting at peer %d: %w", start.id, ErrHopLimit)
}

// joinForwardTarget applies the forwarding rules of Algorithm 1 at node n.
func (nw *Network) joinForwardTarget(n *Node, visited map[PeerID]int) *Node {
	// Rule 2: a node with an incomplete routing table forwards the request
	// to its parent (the parent of a missing neighbour can accept).
	if !n.bothRoutingTablesFull() {
		if n.parent != nil && n.parent.alive && visited[n.parent.id] < 2 {
			return n.parent
		}
	}
	// Rule 3: look for a routing-table neighbour that does not have both
	// children.
	var candidate *Node
	for _, side := range []Side{Left, Right} {
		for _, m := range n.RoutingTable(side) {
			if m == nil || !m.alive {
				continue
			}
			if m.hasFreeChildSlot() && visited[m.id] == 0 {
				candidate = m
				break
			}
		}
		if candidate != nil {
			break
		}
	}
	if candidate != nil {
		return candidate
	}
	// Rule 4: forward to one of the adjacent nodes.
	for _, adj := range []*Node{n.leftAdj, n.rightAdj} {
		if adj != nil && adj.alive && visited[adj.id] < 2 {
			return adj
		}
	}
	// Last resort within the protocol's spirit: climb towards the root.
	if n.parent != nil && n.parent.alive && visited[n.parent.id] < 4 {
		return n.parent
	}
	return nil
}

// joinFallback deterministically finds any node that can accept a child. It
// exists so a Join can never fail on a healthy network even if forwarding
// paints itself into a corner; each inspected node costs one message.
func (nw *Network) joinFallback(from *Node) (*Node, Side, error) {
	for _, n := range nw.inOrderNodes() {
		if !n.alive {
			continue
		}
		if side, free := n.freeChildSide(); free && n.bothRoutingTablesFull() {
			nw.send(n, stats.MsgJoinRequest, catLocate)
			return n, side, nil
		}
	}
	// A balanced tree always has a node satisfying Theorem 1's acceptance
	// condition, so reaching this point means the overlay is corrupted.
	return nil, Left, fmt.Errorf("join fallback found no acceptor (network size %d): %w", nw.Size(), ErrHopLimit)
}

// acceptChild creates a new peer as the child of parent on the given side,
// splits the parent's range and data with it, fixes the adjacent links and
// builds the routing tables of the new peer, counting every protocol message
// of Section III-A.
func (nw *Network) acceptChild(parent *Node, side Side) *Node {
	childPos := parent.pos.Child(side)
	child := newNode(nw.allocID(), childPos, parent.nodeRange)
	nw.nodes[child.id] = child
	nw.positions[childPos] = child

	// Split the parent's range: the left child receives the lower half, the
	// right child the upper half, so the in-order ordering of ranges is
	// preserved. The corresponding data items move with the range.
	nw.splitRangeWithChild(parent, child, side)

	// Adjacent links (Section III-A): the new child slots into the in-order
	// chain immediately next to its parent.
	nw.spliceAdjacent(parent, child, side)

	// Parent / child links.
	child.parent = parent
	parent.setChild(side, child)

	// Routing tables: the parent contacts each of its routing-table
	// neighbours (2*L1 messages); each informs its relevant child about the
	// new node (2*L2 messages) and those children respond to the new node so
	// it can fill its own tables (2*L2 messages). The new node also notifies
	// one adjacent node. We perform the equivalent state changes directly on
	// the position map and count the messages the protocol would send.
	nw.buildChildRoutingTables(parent, child)

	return child
}

// splitRangeWithChild hands half of parent's range and data to child.
func (nw *Network) splitRangeWithChild(parent, child *Node, side Side) {
	lower, upper, err := parent.nodeRange.SplitHalf()
	if err != nil {
		// The parent's range has become empty (possible after extreme
		// skew); the child starts with an empty range at the boundary.
		at := parent.nodeRange.Lower
		lower = parent.nodeRange
		upper = parent.nodeRange
		lower.Upper = at
		upper.Lower = at
	}
	if side == Left {
		child.nodeRange = lower
		parent.nodeRange = upper
	} else {
		child.nodeRange = upper
		parent.nodeRange = lower
	}
	moved := parent.data.ExtractRange(child.nodeRange)
	child.data.Absorb(moved)
	// One message transfers the data items and the range assignment.
	nw.send(child, stats.MsgTransferData, catData)
}

// spliceAdjacent inserts child into the in-order chain next to parent.
func (nw *Network) spliceAdjacent(parent, child *Node, side Side) {
	if side == Left {
		prev := parent.leftAdj
		child.leftAdj = prev
		child.rightAdj = parent
		parent.leftAdj = child
		if prev != nil {
			prev.rightAdj = child
			nw.send(prev, stats.MsgUpdateAdjacent, catUpdate)
		}
	} else {
		next := parent.rightAdj
		child.rightAdj = next
		child.leftAdj = parent
		parent.rightAdj = child
		if next != nil {
			next.leftAdj = child
			nw.send(next, stats.MsgUpdateAdjacent, catUpdate)
		}
	}
	// The new node notifies one of its adjacent nodes (the paper counts a
	// single message from the new node).
	nw.send(parent, stats.MsgUpdateAdjacent, catUpdate)
}

// buildChildRoutingTables fills the routing tables of the freshly accepted
// child and installs the reverse links at its same-level neighbours,
// counting the messages of the paper's join analysis.
func (nw *Network) buildChildRoutingTables(parent, child *Node) {
	// The parent contacts every non-null neighbour in its own tables.
	for _, side := range []Side{Left, Right} {
		for _, m := range parent.RoutingTable(side) {
			if m != nil {
				nw.send(m, stats.MsgNotifyNeighbour, catUpdate)
			}
		}
	}
	// Fill the child's tables and the reverse entries. Every filled entry
	// corresponds to one "inform the relevant child" message and one
	// response to the new node.
	child.resizeRoutingTables()
	for i := range child.leftRT {
		if q, ok := child.pos.Neighbour(Left, int64(1)<<uint(i)); ok {
			if m := nw.positions[q]; m != nil {
				child.leftRT[i] = m
				nw.setReverseRT(m, child, Right)
				nw.send(m, stats.MsgNotifyChild, catUpdate)
				nw.send(child, stats.MsgReply, catUpdate)
			}
		}
	}
	for i := range child.rightRT {
		if q, ok := child.pos.Neighbour(Right, int64(1)<<uint(i)); ok {
			if m := nw.positions[q]; m != nil {
				child.rightRT[i] = m
				nw.setReverseRT(m, child, Left)
				nw.send(m, stats.MsgNotifyChild, catUpdate)
				nw.send(child, stats.MsgReply, catUpdate)
			}
		}
	}
}

// setReverseRT installs child into m's routing table on the given side (m
// gained a new same-level neighbour).
func (nw *Network) setReverseRT(m, child *Node, side Side) {
	rt := m.RoutingTable(side)
	for i := range rt {
		if q, ok := m.pos.Neighbour(side, int64(1)<<uint(i)); ok && q == child.pos {
			rt[i] = child
			return
		}
	}
}
