package core

import (
	"errors"
	"math/rand"
	"testing"

	"baton/internal/keyspace"
	"baton/internal/workload"
)

// TestInterleavedChurnAndFailures subjects a network to the worst mix the
// protocol has to survive: joins, graceful leaves and abrupt failures
// interleaved, with queries issued while failures are still unrepaired, and
// repairs at the end. This is the scenario of examples/churn turned into a
// regression test: structural invariants must hold after the repairs and
// queries must never wander (no hop-limit errors).
func TestInterleavedChurnAndFailures(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		nw := buildNetwork(t, 150, seed)
		keys := populate(t, nw, 1500, seed)
		rng := rand.New(rand.NewSource(seed))

		events := workload.ChurnSequence(workload.ChurnConfig{
			Events:       120,
			JoinFraction: 0.4,
			FailFraction: 0.35,
			Seed:         seed,
		})
		queriesDuringChurn, unroutable := 0, 0
		livePeer := func() PeerID {
			for {
				id := nw.RandomPeer()
				if n := nw.nodes[id]; n != nil && n.alive {
					return id
				}
			}
		}
		for i, ev := range events {
			switch ev.Kind {
			case workload.EventJoin:
				if _, _, err := nw.Join(livePeer()); err != nil {
					t.Fatalf("seed %d event %d join: %v", seed, i, err)
				}
			case workload.EventLeave:
				if _, err := nw.Leave(livePeer()); err != nil && err != ErrLastPeer {
					t.Fatalf("seed %d event %d leave: %v", seed, i, err)
				}
			case workload.EventFail:
				if err := nw.Fail(livePeer()); err != nil && err != ErrLastPeer {
					t.Fatalf("seed %d event %d fail: %v", seed, i, err)
				}
			}
			// Issue a query every few events while the damage is live. With
			// many failures still unrepaired a query may occasionally find no
			// route (the key's neighbourhood is down); that is tolerated as
			// long as it stays rare.
			if i%5 == 0 {
				queriesDuringChurn++
				k := keys[rng.Intn(len(keys))]
				if _, _, _, err := nw.SearchExact(livePeer(), k); err != nil {
					if errors.Is(err, ErrHopLimit) {
						unroutable++
					} else {
						t.Fatalf("seed %d event %d query: %v", seed, i, err)
					}
				}
			}
		}
		if queriesDuringChurn > 0 && unroutable*10 > queriesDuringChurn {
			t.Fatalf("seed %d: %d of %d queries found no route during unrepaired failures", seed, unroutable, queriesDuringChurn)
		}

		// Range queries must also work around the unrepaired failures (the
		// same rare no-route tolerance applies).
		for q := 0; q < 20; q++ {
			lo := keyspace.Key(rng.Int63n(900_000_000))
			r := keyspace.NewRange(lo, lo+50_000_000)
			if _, _, err := nw.SearchRange(livePeer(), r); err != nil && !errors.Is(err, ErrHopLimit) {
				t.Fatalf("seed %d range query: %v", seed, err)
			}
		}

		// Repair everything and verify the structure.
		for _, id := range nw.FailedPeers() {
			if _, err := nw.RepairFailure(id); err != nil {
				t.Fatalf("seed %d repair %d: %v", seed, id, err)
			}
		}
		if got := len(nw.FailedPeers()); got != 0 {
			t.Fatalf("seed %d: %d failures left after repair", seed, got)
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: invariants after churn+failures: %v", seed, err)
		}

		// Every key on a live peer must be reachable again.
		unreachable := 0
		for _, k := range keys[:300] {
			_, found, _, err := nw.SearchExact(livePeer(), k)
			if err != nil {
				t.Fatalf("seed %d final query: %v", seed, err)
			}
			if !found {
				unreachable++
			}
		}
		// Some keys were legitimately lost with failed peers; but the loss
		// must be bounded by the fraction of peers that failed.
		if unreachable > 150 {
			t.Fatalf("seed %d: %d of 300 keys unreachable after repair", seed, unreachable)
		}
	}
}

// TestRepairSweepKeepsBalanceEveryStep pins a bug found via examples/churn:
// Algorithm 2's walk only follows live peers, but failed peers still occupy
// their positions for balance purposes, so with enough unrepaired failures
// around, the walk could accept a replacement leaf whose removal unbalanced
// the tree — and once unbalanced, a later repair in the sweep found no
// removable leaf at all and the whole sweep failed. The invariants must hold
// after every single repair, not just at the end of the sweep.
// The scenario replays examples/churn exactly (same seeds, same churn
// sequence) so the trigger stays pinned, plus a few generic seeds for
// breadth.
func TestRepairSweepKeepsBalanceEveryStep(t *testing.T) {
	run := func(netSeed, genSeed, churnSeed int64) {
		nw := NewNetwork(Config{Seed: netSeed})
		for nw.Size() < 250 {
			if _, _, err := nw.Join(nw.RandomPeer()); err != nil {
				t.Fatalf("build join: %v", err)
			}
		}
		gen := workload.NewGenerator(workload.Config{Seed: genSeed})
		for _, k := range gen.Keys(5_000) {
			if _, err := nw.Insert(nw.RandomPeer(), k, nil); err != nil {
				t.Fatalf("insert: %v", err)
			}
		}
		livePeer := func() PeerID {
			for {
				id := nw.RandomPeer()
				if n := nw.nodes[id]; n != nil && n.alive {
					return id
				}
			}
		}
		events := workload.ChurnSequence(workload.ChurnConfig{
			Events:       150,
			JoinFraction: 0.4,
			FailFraction: 0.33,
			Seed:         churnSeed,
		})
		for i, ev := range events {
			switch ev.Kind {
			case workload.EventJoin:
				if _, _, err := nw.Join(livePeer()); err != nil {
					t.Fatalf("event %d join: %v", i, err)
				}
			case workload.EventLeave:
				if _, err := nw.Leave(livePeer()); err != nil {
					t.Fatalf("event %d leave: %v", i, err)
				}
			case workload.EventFail:
				if err := nw.Fail(livePeer()); err != nil {
					t.Fatalf("event %d fail: %v", i, err)
				}
			}
		}
		for _, id := range nw.FailedPeers() {
			if _, err := nw.RepairFailure(id); err != nil {
				t.Fatalf("seeds %d/%d/%d repair %d: %v", netSeed, genSeed, churnSeed, id, err)
			}
			if err := nw.CheckInvariants(); err != nil {
				t.Fatalf("seeds %d/%d/%d: invariants broken right after repairing %d: %v",
					netSeed, genSeed, churnSeed, id, err)
			}
		}
	}
	run(3, 5, 9) // the exact examples/churn configuration
	for seed := int64(20); seed < 24; seed++ {
		run(seed, seed+1, seed+2)
	}
}
