package core

import (
	"fmt"

	"baton/internal/keyspace"
	"baton/internal/stats"
	"baton/internal/store"
)

// SearchExact looks up the value stored under key, starting from the peer
// with ID via (the peer that issues the query). It implements the
// search_exact algorithm of Section IV-A: the query is forwarded through the
// sideways routing tables (halving the remaining distance at every hop, like
// Chord but on a line), dropping to a child or an adjacent node when no
// routing-table entry can make progress.
//
// It returns the value (if the key is stored anywhere), whether it was
// found, and the cost of the operation.
func (nw *Network) SearchExact(via PeerID, key keyspace.Key) ([]byte, bool, stats.OpCost, error) {
	start, err := nw.node(via)
	if err != nil {
		return nil, false, stats.OpCost{}, err
	}
	nw.beginOp(stats.OpSearchExact)
	owner, rerr := nw.routeToKey(start, key)
	if rerr != nil {
		cost := nw.endOp()
		return nil, false, cost, rerr
	}
	if !owner.alive {
		// The responsible peer is down and has not been repaired yet: the
		// item is unavailable (the paper does not replicate data).
		cost := nw.endOp()
		return nil, false, cost, nil
	}
	value, found := owner.data.Get(key)
	cost := nw.endOp()
	return value, found, cost, nil
}

// Owner returns the peer currently responsible for key, routing from via.
func (nw *Network) Owner(via PeerID, key keyspace.Key) (NodeInfo, stats.OpCost, error) {
	start, err := nw.node(via)
	if err != nil {
		return NodeInfo{}, stats.OpCost{}, err
	}
	nw.beginOp(stats.OpSearchExact)
	owner, rerr := nw.routeToKey(start, key)
	cost := nw.endOp()
	if rerr != nil {
		return NodeInfo{}, cost, rerr
	}
	return owner.info(), cost, nil
}

// routeToKey forwards a request from start to the peer whose range contains
// key, counting one message per hop. Failed peers on the path are routed
// around at the cost of one extra message per avoided peer (Section III-D).
func (nw *Network) routeToKey(start *Node, key keyspace.Key) (*Node, error) {
	n := start
	limit := nw.hopLimit() + 4*len(nw.failed)
	visited := map[PeerID]bool{start.id: true}
	for hops := 0; hops < limit; hops++ {
		nw.chargeIfInflight(n)
		if nw.ownsKey(n, key) {
			return n, nil
		}
		next := nw.nextHop(n, key, visited)
		if next == nil {
			return nil, fmt.Errorf("routing key %d from peer %d: no route at %v: %w", key, start.id, n.pos, ErrHopLimit)
		}
		visited[next.id] = true
		n = next
	}
	return nil, fmt.Errorf("routing key %d from peer %d: %w", key, start.id, ErrHopLimit)
}

// ownsKey reports whether n is responsible for key. The leftmost peer is
// responsible for every key below the domain and the rightmost peer for
// every key above it, mirroring the paper's range-expansion rule for the
// extreme nodes.
func (nw *Network) ownsKey(n *Node, key keyspace.Key) bool {
	if n.nodeRange.Contains(key) {
		return true
	}
	if key < n.nodeRange.Lower && n.leftAdj == nil {
		return true
	}
	if key >= n.nodeRange.Upper && n.rightAdj == nil {
		return true
	}
	return false
}

// nextHop selects the next peer on the path towards key from n, applying the
// search_exact forwarding rules and skipping failed peers. Every attempted
// hop costs one message; an attempt that hits a failed peer costs one extra
// message and the next candidate is tried (fault-tolerant routing,
// Section III-D). Peers already visited by this request are avoided unless
// no other alternative remains.
func (nw *Network) nextHop(n *Node, key keyspace.Key, visited map[PeerID]bool) *Node {
	if nw.cfg.NoSidewaysRouting {
		// The multiway baseline asks its children one at a time whether
		// their subtree covers the key; each probe is a request/reply pair
		// on top of the forwarding message charged below.
		nw.chargeMultiwayProbes(n, key)
	}
	primary, fallback := nw.hopCandidates(n, key)
	try := func(candidates []*Node, allowVisited bool) *Node {
		for _, candidate := range candidates {
			if candidate == nil {
				continue
			}
			if !allowVisited && visited[candidate.id] {
				continue
			}
			nw.send(candidate, stats.MsgSearchExact, catLocate)
			if candidate.nodeRange.Contains(key) {
				// The responsible peer has been located; routing stops here
				// even if that peer is down (the caller then reports the data
				// as unavailable rather than wandering).
				return candidate
			}
			if !candidate.alive {
				// The sender discovers the address is unreachable and falls
				// back to the next alternative.
				nw.send(n, stats.MsgRedirect, catExtra)
				continue
			}
			return candidate
		}
		return nil
	}
	if next := try(primary, false); next != nil {
		return next
	}
	if next := try(fallback, false); next != nil {
		return next
	}
	// Everything unvisited is down: retrace through an already visited peer
	// rather than give up (it may have other alternatives).
	return try(append(primary, fallback...), true)
}

// RoutePath predicts the sequence of peers a search_exact query for key
// issued at via visits, starting with via itself and ending at the peer
// responsible for key. It applies the same forwarding rules as routeToKey
// (hopCandidates order, visited-peer avoidance, dead-peer skipping) but
// charges no messages and touches no statistics, so callers can compare a
// route observed on a live deployment hop-for-hop against the structure's
// expectation. On a network with failed peers the prediction is only one
// of the valid routes — live fail-over may race repairs — so it is most
// useful on a quiesced, fully-alive network, where the path is unique.
func (nw *Network) RoutePath(via PeerID, key keyspace.Key) ([]PeerID, error) {
	n, err := nw.node(via)
	if err != nil {
		return nil, err
	}
	path := []PeerID{n.id}
	visited := map[PeerID]bool{n.id: true}
	limit := nw.hopLimit() + 4*len(nw.failed)
	for hops := 0; hops < limit; hops++ {
		if nw.ownsKey(n, key) {
			return path, nil
		}
		primary, fallback := nw.hopCandidates(n, key)
		pick := func(candidates []*Node, allowVisited bool) *Node {
			for _, candidate := range candidates {
				if candidate == nil {
					continue
				}
				if !allowVisited && visited[candidate.id] {
					continue
				}
				if candidate.nodeRange.Contains(key) {
					return candidate
				}
				if !candidate.alive {
					continue
				}
				return candidate
			}
			return nil
		}
		next := pick(primary, false)
		if next == nil {
			next = pick(fallback, false)
		}
		if next == nil {
			next = pick(append(primary, fallback...), true)
		}
		if next == nil {
			return nil, fmt.Errorf("predicting route for key %d from peer %d: no route at %v: %w", key, via, n.pos, ErrHopLimit)
		}
		visited[next.id] = true
		path = append(path, next.id)
		n = next
	}
	return nil, fmt.Errorf("predicting route for key %d from peer %d: %w", key, via, ErrHopLimit)
}

// hopCandidates returns the forwarding candidates at n for key. The primary
// list follows the search_exact algorithm (best first); the fallback list
// contains every other link the peer holds and is only used to route around
// failures.
func (nw *Network) hopCandidates(n *Node, key keyspace.Key) (primary, fallback []*Node) {
	if nw.cfg.NoSidewaysRouting {
		return nw.multiwayCandidates(n, key)
	}
	towardRight := key >= n.nodeRange.Upper
	last := n.fanout - 1
	if towardRight {
		// Farthest right routing-table entry whose lower bound does not
		// exceed the key, then nearer ones, then the last child (the only
		// child subtree above n in the in-order chain), then the right
		// adjacent node.
		rt := n.RoutingTable(Right)
		for i := len(rt) - 1; i >= 0; i-- {
			m := rt[i]
			if m != nil && m.nodeRange.Lower <= key {
				primary = append(primary, m)
			}
		}
		primary = append(primary, n.children[last], n.rightAdj)
		// Fault-tolerance fallbacks: the parent, any other right-table
		// entry (overshooting is recoverable), then links towards the left.
		fallback = append(fallback, n.parent)
		for i := len(rt) - 1; i >= 0; i-- {
			if m := rt[i]; m != nil && m.nodeRange.Lower > key {
				fallback = append(fallback, m)
			}
		}
		for s := last - 1; s >= 0; s-- {
			fallback = append(fallback, n.children[s])
		}
		fallback = append(fallback, n.leftAdj)
		fallback = append(fallback, n.RoutingTable(Left)...)
	} else {
		// The child subtrees in slots 0..m-2 all lie below n in the in-order
		// chain, nearest (highest slot) first.
		rt := n.RoutingTable(Left)
		for i := len(rt) - 1; i >= 0; i-- {
			m := rt[i]
			if m != nil && m.nodeRange.Upper > key {
				primary = append(primary, m)
			}
		}
		for s := last - 1; s >= 0; s-- {
			primary = append(primary, n.children[s])
		}
		primary = append(primary, n.leftAdj)
		fallback = append(fallback, n.parent)
		for i := len(rt) - 1; i >= 0; i-- {
			if m := rt[i]; m != nil && m.nodeRange.Upper <= key {
				fallback = append(fallback, m)
			}
		}
		fallback = append(fallback, n.children[last], n.rightAdj)
		fallback = append(fallback, n.RoutingTable(Right)...)
	}
	return primary, fallback
}

// clampToDomain maps out-of-domain keys to the nearest in-domain key, so the
// subtree-coverage tests below can treat the extreme peers' expanded
// responsibility (ownsKey) uniformly.
func (nw *Network) clampToDomain(key keyspace.Key) keyspace.Key {
	if key < nw.domain.Lower {
		return nw.domain.Lower
	}
	if key >= nw.domain.Upper {
		return nw.domain.Upper - 1
	}
	return key
}

// subtreeRange returns the contiguous key interval covered by the subtree
// rooted at n (the in-order contiguity invariant guarantees it has no holes).
func (nw *Network) subtreeRange(n *Node) keyspace.Range {
	lo := nw.positions[nw.minOfSubtree(n.pos)].nodeRange.Lower
	hi := nw.positions[nw.maxOfSubtree(n.pos)].nodeRange.Upper
	return keyspace.NewRange(lo, hi)
}

// multiwayCandidates is the no-sideways-links forwarding rule (Liau et al.):
// if n's subtree covers the key, descend into the unique child subtree that
// holds it; otherwise climb to the parent. Adjacent nodes and the remaining
// links are fault-tolerance fallbacks only.
func (nw *Network) multiwayCandidates(n *Node, key keyspace.Key) (primary, fallback []*Node) {
	k := nw.clampToDomain(key)
	if nw.subtreeRange(n).Contains(k) {
		for s := 0; s < n.fanout; s++ {
			c := n.children[s]
			if c != nil && nw.subtreeRange(c).Contains(k) {
				primary = append(primary, c)
				break
			}
		}
	} else if n.parent != nil {
		primary = append(primary, n.parent)
	}
	if key >= n.nodeRange.Upper {
		fallback = append(fallback, n.rightAdj, n.leftAdj)
	} else {
		fallback = append(fallback, n.leftAdj, n.rightAdj)
	}
	for s := 0; s < n.fanout; s++ {
		fallback = append(fallback, n.children[s])
	}
	fallback = append(fallback, n.parent)
	return primary, fallback
}

// chargeMultiwayProbes counts the child probes a multiway peer performs
// before forwarding: children are asked in slot order (one request and one
// reply each) until one reports that its subtree covers the key. Climbing
// hops probe nothing.
func (nw *Network) chargeMultiwayProbes(n *Node, key keyspace.Key) {
	k := nw.clampToDomain(key)
	if !nw.subtreeRange(n).Contains(k) {
		return
	}
	for s := 0; s < n.fanout; s++ {
		c := n.children[s]
		if c == nil {
			continue
		}
		nw.send(c, stats.MsgSearchExact, catLocate)
		nw.send(n, stats.MsgReply, catLocate)
		if nw.subtreeRange(c).Contains(k) {
			return
		}
	}
}

// RangeResult is the answer to a range query: the matching items and the
// peers that contributed them.
type RangeResult struct {
	Items []store.Item
	// Peers lists the IDs of the peers whose ranges intersected the query,
	// in key order.
	Peers []PeerID
}

// SearchRange answers a range query issued at peer via (Section IV-B): the
// query is routed to the first peer whose range intersects the query range
// (O(log N) messages) and then travels along adjacent links until the whole
// query range is covered (O(1) messages per additional peer).
func (nw *Network) SearchRange(via PeerID, r keyspace.Range) (RangeResult, stats.OpCost, error) {
	start, err := nw.node(via)
	if err != nil {
		return RangeResult{}, stats.OpCost{}, err
	}
	if r.IsEmpty() {
		return RangeResult{}, stats.OpCost{}, nil
	}
	nw.beginOp(stats.OpSearchRange)
	first, rerr := nw.routeToKey(start, r.Lower)
	if rerr != nil {
		cost := nw.endOp()
		return RangeResult{}, cost, rerr
	}
	var res RangeResult
	n := first
	limit := nw.Size() + 4
	for steps := 0; n != nil && steps < limit; steps++ {
		if n.nodeRange.Lower >= r.Upper {
			break
		}
		if n.alive && n.nodeRange.Intersects(r) {
			res.Items = append(res.Items, n.data.Scan(r)...)
			res.Peers = append(res.Peers, n.id)
			// The contributing peer returns its partial answer.
			nw.send(start, stats.MsgReply, catOther)
		}
		next := n.rightAdj
		if next != nil {
			nw.send(next, stats.MsgSearchRange, catLocate)
			if !next.alive {
				// Route around the failed peer through the position map (in
				// a deployment: via the failed peer's parent and its child),
				// paying one extra message.
				nw.send(n, stats.MsgRedirect, catExtra)
				if succ, ok := nw.inOrderSuccessorPos(next.pos); ok {
					next = nw.positions[succ]
				} else {
					next = nil
				}
			}
		}
		n = next
	}
	cost := nw.endOp()
	return res, cost, nil
}

// Insert stores value under key, issuing the request at peer via. The
// request is routed with the exact-match algorithm to the responsible peer
// (Section IV-C). If automatic load balancing is configured and the insert
// overloads the responsible peer, a load-balancing operation is triggered
// and accounted separately (its cost is reported by LoadBalanceStats, not in
// the returned OpCost, mirroring how the paper reports Figures 8(c) and
// 8(g)).
func (nw *Network) Insert(via PeerID, key keyspace.Key, value []byte) (stats.OpCost, error) {
	start, err := nw.node(via)
	if err != nil {
		return stats.OpCost{}, err
	}
	nw.beginOp(stats.OpInsert)
	owner, rerr := nw.routeToKey(start, key)
	if rerr != nil {
		cost := nw.endOp()
		return cost, rerr
	}
	if !owner.alive {
		cost := nw.endOp()
		return cost, fmt.Errorf("inserting key %d: responsible peer %d: %w", key, owner.id, ErrPeerDown)
	}
	nw.expandExtremeRange(owner, key)
	owner.data.Put(key, value)
	cost := nw.endOp()

	if nw.cfg.LoadBalance.Enabled() {
		nw.maybeLoadBalance(owner)
	}
	return cost, nil
}

// Delete removes the value stored under key, issuing the request at peer
// via. It reports whether the key existed.
func (nw *Network) Delete(via PeerID, key keyspace.Key) (bool, stats.OpCost, error) {
	start, err := nw.node(via)
	if err != nil {
		return false, stats.OpCost{}, err
	}
	nw.beginOp(stats.OpDelete)
	owner, rerr := nw.routeToKey(start, key)
	if rerr != nil {
		cost := nw.endOp()
		return false, cost, rerr
	}
	if !owner.alive {
		cost := nw.endOp()
		return false, cost, nil
	}
	existed := owner.data.Delete(key)
	cost := nw.endOp()
	return existed, cost, nil
}

// expandExtremeRange grows the range of the leftmost or rightmost peer when
// an inserted key falls outside the current domain, notifying the peers that
// hold links to it (an extra O(log N) messages, as in Section IV-C).
func (nw *Network) expandExtremeRange(owner *Node, key keyspace.Key) {
	expanded := false
	if key < owner.nodeRange.Lower && owner.leftAdj == nil {
		owner.nodeRange.Lower = key
		nw.domain.Lower = key
		expanded = true
	}
	if key >= owner.nodeRange.Upper && owner.rightAdj == nil {
		owner.nodeRange.Upper = key + 1
		nw.domain.Upper = key + 1
		expanded = true
	}
	if !expanded {
		return
	}
	if !nw.cfg.NoSidewaysRouting {
		for _, side := range []Side{Left, Right} {
			for _, m := range owner.RoutingTable(side) {
				if m != nil {
					nw.send(m, stats.MsgExpandRange, catUpdate)
				}
			}
		}
	}
	if owner.parent != nil {
		nw.send(owner.parent, stats.MsgExpandRange, catUpdate)
	}
}
