package core

import (
	"fmt"
	"math/rand"
	"testing"

	"baton/internal/keyspace"
	"baton/internal/stats"
)

// populate inserts n random keys into the network and returns them.
func populate(t testing.TB, nw *Network, n int, seed int64) []keyspace.Key {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]keyspace.Key, 0, n)
	for i := 0; i < n; i++ {
		k := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-keyspace.DomainMin)))
		if _, err := nw.Insert(nw.RandomPeer(), k, []byte(fmt.Sprint(k))); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		keys = append(keys, k)
	}
	return keys
}

func TestInsertAndSearchExact(t *testing.T) {
	nw := buildNetwork(t, 60, 5)
	keys := populate(t, nw, 400, 5)
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		v, found, cost, err := nw.SearchExact(nw.RandomPeer(), k)
		if err != nil {
			t.Fatalf("search %d: %v", k, err)
		}
		if !found {
			t.Fatalf("key %d not found", k)
		}
		if string(v) != fmt.Sprint(k) {
			t.Fatalf("key %d value = %q", k, v)
		}
		if cost.Messages > 4*nw.Height() {
			t.Fatalf("search for %d used %d messages, height is %d", k, cost.Messages, nw.Height())
		}
	}
	// A key that was never inserted is not found but routing still succeeds.
	_, found, _, err := nw.SearchExact(nw.RandomPeer(), keyspace.DomainMax-1)
	if err != nil {
		t.Fatal(err)
	}
	_ = found // may or may not collide with an inserted key; just must not error
}

func TestSearchCostLogarithmic(t *testing.T) {
	nw := buildNetwork(t, 250, 9)
	populate(t, nw, 500, 9)
	rng := rand.New(rand.NewSource(99))
	var acc stats.Accumulator
	for i := 0; i < 200; i++ {
		k := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-keyspace.DomainMin)))
		_, _, cost, err := nw.SearchExact(nw.RandomPeer(), k)
		if err != nil {
			t.Fatal(err)
		}
		acc.AddInt(cost.Messages)
	}
	// Height of a 250-peer balanced tree is at most ~12; average search cost
	// must stay in that ballpark.
	if acc.Mean() > float64(2*nw.Height()) {
		t.Fatalf("average exact-search cost %.1f too high (height %d)", acc.Mean(), nw.Height())
	}
}

func TestOwnerRouting(t *testing.T) {
	nw := buildNetwork(t, 45, 13)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		k := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-keyspace.DomainMin)))
		owner, _, err := nw.Owner(nw.RandomPeer(), k)
		if err != nil {
			t.Fatal(err)
		}
		if !owner.Range.Contains(k) {
			t.Fatalf("owner of %d has range %v", k, owner.Range)
		}
	}
}

func TestSearchRange(t *testing.T) {
	nw := buildNetwork(t, 80, 21)
	keys := populate(t, nw, 1000, 21)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		lo := keyspace.DomainMin + keyspace.Key(rng.Int63n(int64(keyspace.DomainMax-keyspace.DomainMin)))
		width := keyspace.Key(rng.Int63n(int64(keyspace.DomainMax) / 10))
		hi := lo + width
		if hi > keyspace.DomainMax {
			hi = keyspace.DomainMax
		}
		r := keyspace.NewRange(lo, hi)
		res, cost, err := nw.SearchRange(nw.RandomPeer(), r)
		if err != nil {
			t.Fatal(err)
		}
		// Verify against the flat model.
		want := map[keyspace.Key]bool{}
		for _, k := range keys {
			if r.Contains(k) {
				want[k] = true
			}
		}
		got := map[keyspace.Key]bool{}
		for _, it := range res.Items {
			if !r.Contains(it.Key) {
				t.Fatalf("range result %d outside query %v", it.Key, r)
			}
			got[it.Key] = true
		}
		if len(got) != len(want) {
			t.Fatalf("range %v: got %d distinct keys, want %d", r, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("range %v missing key %d", r, k)
			}
		}
		// Cost must be O(log N + X): the locate phase plus one or two
		// messages per contributing peer.
		bound := 2*nw.Height() + 3*len(res.Peers) + 4
		if cost.Messages > bound {
			t.Fatalf("range query cost %d exceeds bound %d (peers %d)", cost.Messages, bound, len(res.Peers))
		}
	}
	// An empty query range returns nothing and costs nothing.
	res, cost, err := nw.SearchRange(nw.RandomPeer(), keyspace.NewRange(5, 5))
	if err != nil || len(res.Items) != 0 || cost.Messages != 0 {
		t.Fatalf("empty range query: %v items, %d messages, err %v", len(res.Items), cost.Messages, err)
	}
}

func TestDelete(t *testing.T) {
	nw := buildNetwork(t, 30, 25)
	keys := populate(t, nw, 200, 25)
	// Delete every other key.
	for i, k := range keys {
		if i%2 != 0 {
			continue
		}
		existed, _, err := nw.Delete(nw.RandomPeer(), k)
		if err != nil {
			t.Fatal(err)
		}
		if !existed {
			t.Fatalf("delete of existing key %d reported absence", k)
		}
	}
	for i, k := range keys {
		_, found, _, err := nw.SearchExact(nw.RandomPeer(), k)
		if err != nil {
			t.Fatal(err)
		}
		want := i%2 == 1
		// Duplicate keys across the workload can make a deleted key still
		// present if it also appears at an odd index; skip that rare case.
		if found != want && !containsDup(keys, k) {
			t.Fatalf("after deletes, key %d found=%v want=%v", k, found, want)
		}
	}
	// Deleting a missing key reports absence without error.
	existed, _, err := nw.Delete(nw.RandomPeer(), keyspace.DomainMax-7)
	if err != nil {
		t.Fatal(err)
	}
	_ = existed
}

func containsDup(keys []keyspace.Key, k keyspace.Key) bool {
	count := 0
	for _, x := range keys {
		if x == k {
			count++
		}
	}
	return count > 1
}

func TestInsertOutsideDomainExpandsExtremes(t *testing.T) {
	nw := buildNetwork(t, 20, 29)
	low := keyspace.Key(-500)
	high := keyspace.Key(2_000_000_000)
	if _, err := nw.Insert(nw.RandomPeer(), low, []byte("low")); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Insert(nw.RandomPeer(), high, []byte("high")); err != nil {
		t.Fatal(err)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if nw.Domain().Lower != low || nw.Domain().Upper != high+1 {
		t.Fatalf("domain not expanded: %v", nw.Domain())
	}
	for _, k := range []keyspace.Key{low, high} {
		_, found, _, err := nw.SearchExact(nw.RandomPeer(), k)
		if err != nil || !found {
			t.Fatalf("expanded key %d: found=%v err=%v", k, found, err)
		}
	}
}

func TestOperationsViaDownPeerFail(t *testing.T) {
	nw := buildNetwork(t, 20, 33)
	ids := nw.PeerIDs()
	var victim PeerID
	for _, id := range ids {
		if id != nw.Root().ID {
			victim = id
			break
		}
	}
	if err := nw.Fail(victim); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := nw.SearchExact(victim, 42); err == nil {
		t.Fatal("search via a failed peer should error")
	}
	if _, err := nw.Insert(victim, 42, nil); err == nil {
		t.Fatal("insert via a failed peer should error")
	}
	if _, _, err := nw.Join(victim); err == nil {
		t.Fatal("join via a failed peer should error")
	}
}

func TestSearchDuringFailureRoutesAround(t *testing.T) {
	nw := buildNetwork(t, 120, 37)
	keys := populate(t, nw, 600, 37)
	rng := rand.New(rand.NewSource(37))

	// Fail 10 random peers (but not the root, to keep the scenario simple)
	// and remember which keys they held.
	failedKeys := map[keyspace.Key]bool{}
	failedCount := 0
	for failedCount < 10 {
		ids := nw.PeerIDs()
		id := ids[rng.Intn(len(ids))]
		if id == nw.Root().ID {
			continue
		}
		n := nw.nodes[id]
		if !n.alive {
			continue
		}
		for _, it := range n.data.Items() {
			failedKeys[it.Key] = true
		}
		if err := nw.Fail(id); err != nil {
			t.Fatal(err)
		}
		failedCount++
	}

	// Every key stored on a live peer must still be reachable from any live
	// starting peer, despite the failures.
	reachable := 0
	for _, k := range keys {
		if failedKeys[k] {
			continue
		}
		via := nw.RandomPeer()
		for !nw.nodes[via].alive {
			via = nw.RandomPeer()
		}
		_, found, _, err := nw.SearchExact(via, k)
		if err != nil {
			t.Fatalf("search %d with failures: %v", k, err)
		}
		if !found {
			t.Fatalf("key %d on a live peer not found while routing around failures", k)
		}
		reachable++
	}
	if reachable == 0 {
		t.Fatal("test vacuous: no keys on live peers")
	}

	// Repair all failures; invariants must hold afterwards.
	for _, id := range nw.FailedPeers() {
		if _, err := nw.RepairFailure(id); err != nil {
			t.Fatalf("repair %d: %v", id, err)
		}
	}
	if len(nw.FailedPeers()) != 0 {
		t.Fatal("failures not cleared after repair")
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairFailureUnknownPeer(t *testing.T) {
	nw := buildNetwork(t, 10, 41)
	if _, err := nw.RepairFailure(PeerID(9999)); err == nil {
		t.Fatal("repairing a peer that has not failed should error")
	}
}

func TestFailLastPeerFails(t *testing.T) {
	nw := NewNetwork(Config{})
	if err := nw.Fail(nw.Root().ID); err != ErrLastPeer {
		t.Fatalf("failing the only peer should be rejected, got %v", err)
	}
}
