package core

import (
	"math/rand"
	"testing"

	"baton/internal/keyspace"
	"baton/internal/workload"
)

func TestLoadBalanceConfigDefaults(t *testing.T) {
	var c LoadBalanceConfig
	if c.Enabled() {
		t.Fatal("zero config should be disabled")
	}
	c = LoadBalanceConfig{OverloadThreshold: 100}
	if !c.Enabled() {
		t.Fatal("threshold > 0 should enable")
	}
	if c.underloadLimit() != 25 {
		t.Fatalf("default underload limit = %d, want 25", c.underloadLimit())
	}
	if c.adjacentLimit() != 75 {
		t.Fatalf("default adjacent limit = %d, want 75", c.adjacentLimit())
	}
	c.UnderloadFraction = 0.5
	c.AdjacentFraction = 0.9
	if c.underloadLimit() != 50 || c.adjacentLimit() != 90 {
		t.Fatalf("configured limits = %d, %d", c.underloadLimit(), c.adjacentLimit())
	}
}

// TestLoadBalanceSkewedInserts drives heavily skewed inserts into a network
// with automatic load balancing and verifies that (a) every structural
// invariant still holds, (b) no data is lost, and (c) the load of the
// hottest peer stays bounded, unlike in the unbalanced case.
func TestLoadBalanceSkewedInserts(t *testing.T) {
	const peers = 60
	const inserts = 3000
	threshold := 80

	build := func(lb LoadBalanceConfig) *Network {
		nw := NewNetwork(Config{Seed: 1, LoadBalance: lb})
		rng := rand.New(rand.NewSource(1))
		for nw.Size() < peers {
			ids := nw.PeerIDs()
			if _, _, err := nw.Join(ids[rng.Intn(len(ids))]); err != nil {
				t.Fatal(err)
			}
		}
		return nw
	}

	gen := workload.NewGenerator(workload.Config{Distribution: workload.Zipf, ZipfTheta: 1.0, Seed: 5})
	keys := gen.Keys(inserts)

	// Without load balancing the hottest peer absorbs a huge share.
	plain := build(LoadBalanceConfig{})
	for _, k := range keys {
		if _, err := plain.Insert(plain.RandomPeer(), k, nil); err != nil {
			t.Fatal(err)
		}
	}
	plainMax := 0
	for _, p := range plain.Peers() {
		if p.DataCount > plainMax {
			plainMax = p.DataCount
		}
	}

	// With load balancing the hottest peer stays near the threshold.
	balanced := build(LoadBalanceConfig{OverloadThreshold: threshold})
	for _, k := range keys {
		if _, err := balanced.Insert(balanced.RandomPeer(), k, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := balanced.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := balanced.TotalItems(); got != plain.TotalItems() {
		t.Fatalf("load balancing lost data: %d items vs %d", got, plain.TotalItems())
	}
	lbStats := balanced.LoadBalanceStats()
	if lbStats.Events == 0 {
		t.Fatal("skewed inserts should have triggered load balancing")
	}
	if lbStats.Messages == 0 {
		t.Fatal("load balancing should have cost messages")
	}
	balancedMax := 0
	for _, p := range balanced.Peers() {
		if p.DataCount > balancedMax {
			balancedMax = p.DataCount
		}
	}
	if balancedMax >= plainMax {
		t.Fatalf("load balancing did not reduce the hottest peer: %d vs %d", balancedMax, plainMax)
	}
	// The hottest peer should be within a small multiple of the threshold.
	if balancedMax > 4*threshold {
		t.Fatalf("hottest peer holds %d items, threshold %d", balancedMax, threshold)
	}

	// All inserted keys must still be findable.
	missing := 0
	for _, k := range keys[:500] {
		_, found, _, err := balanced.SearchExact(balanced.RandomPeer(), k)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d keys unreachable after load balancing", missing)
	}
}

func TestLoadBalanceShiftHistogram(t *testing.T) {
	nw := NewNetwork(Config{Seed: 3, LoadBalance: LoadBalanceConfig{OverloadThreshold: 40}})
	rng := rand.New(rand.NewSource(3))
	for nw.Size() < 40 {
		ids := nw.PeerIDs()
		if _, _, err := nw.Join(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	gen := workload.NewGenerator(workload.Config{Distribution: workload.Zipf, ZipfTheta: 1.0, Seed: 7})
	for i := 0; i < 2500; i++ {
		if _, err := nw.Insert(nw.RandomPeer(), gen.NextKey(), nil); err != nil {
			t.Fatal(err)
		}
		if i%500 == 0 {
			if err := nw.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i, err)
			}
		}
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := nw.LoadBalanceStats()
	if st.Events == 0 || st.ShiftSizes.Total() == 0 {
		t.Fatal("expected load balancing activity")
	}
	// The distribution of shift sizes must be dominated by small shifts
	// (the paper finds it "strongly exponential").
	small := st.ShiftSizes.Count(1) + st.ShiftSizes.Count(2) + st.ShiftSizes.Count(3) + st.ShiftSizes.Count(4)
	if float64(small) < 0.5*float64(st.ShiftSizes.Total()) {
		t.Fatalf("small shifts are not the majority: %d of %d", small, st.ShiftSizes.Total())
	}
}

// buildPlainNetwork grows an unbalanced-load network of the given size with
// no automatic load balancing, so tests can skew it deliberately.
func buildPlainNetwork(t *testing.T, peers int, seed int64) *Network {
	t.Helper()
	nw := NewNetwork(Config{Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	for nw.Size() < peers {
		ids := nw.PeerIDs()
		if _, _, err := nw.Join(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

// forcedRejoinPair picks an overloaded target and a light leaf that is not
// adjacent to it (and not the root), the configuration ForcedRejoin accepts.
func forcedRejoinPair(t *testing.T, nw *Network) (light, hot *Node) {
	t.Helper()
	for _, n := range nw.inOrderNodes() {
		if !n.IsLeaf() || n.pos.IsRoot() {
			continue
		}
		heir := n.rightAdj
		if heir == nil {
			heir = n.leftAdj
		}
		for _, h := range nw.inOrderNodes() {
			if h == n || h == heir || h == n.leftAdj || h == n.rightAdj || h.nodeRange.Size() < 4 {
				continue
			}
			return n, h
		}
	}
	t.Fatal("no viable (light, hot) pair in the network")
	return nil, nil
}

// TestForcedRejoin: the light peer's range merges into its heir, the light
// peer re-appears as a neighbour of the hot peer holding the hot peer's
// items on its side of the boundary, every invariant still holds and no
// item is lost.
func TestForcedRejoin(t *testing.T) {
	nw := buildPlainNetwork(t, 40, 11)
	light, hot := forcedRejoinPair(t, nw)

	// Load the hot peer with items spread over its range, and give the light
	// peer a couple of its own so the heir handoff is visible.
	hotRange := hot.nodeRange
	var keys []keyspace.Key
	for i := int64(0); i < 100; i++ {
		k := hotRange.Lower + keyspace.Key(i*(hotRange.Size()/100))
		if !hotRange.Contains(k) {
			continue
		}
		keys = append(keys, k)
		hot.data.Put(k, nil)
	}
	lightKey := light.nodeRange.Lower
	light.data.Put(lightKey, nil)
	total := nw.TotalItems()

	boundary, ok := hot.data.KeyAtFraction(0.5)
	if !ok || boundary <= hotRange.Lower || boundary >= hotRange.Upper {
		t.Fatalf("no interior median for hot range %v", hotRange)
	}
	cost, err := nw.ForcedRejoin(light.id, hot.id, boundary)
	if err != nil {
		t.Fatalf("forced rejoin: %v", err)
	}
	if cost.NodesInvolved < 3 {
		t.Fatalf("forced rejoin involved %d peers, want >= 3 (light, heir, hot)", cost.NodesInvolved)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("invariants after forced rejoin: %v", err)
	}
	if got := nw.TotalItems(); got != total {
		t.Fatalf("forced rejoin lost data: %d items, want %d", got, total)
	}
	// The pair now shares the hot peer's old range, split at the boundary.
	union, err := hot.nodeRange.Union(light.nodeRange)
	if err != nil || union != hotRange {
		t.Fatalf("light %v + hot %v do not retile the old hot range %v", light.nodeRange, hot.nodeRange, hotRange)
	}
	if hot.nodeRange.Contains(boundary) == light.nodeRange.Contains(boundary) {
		t.Fatal("boundary must belong to exactly one side of the split")
	}
	// About half the hot load changed hands, and every key is still found.
	if light.data.Len() < len(keys)/4 || hot.data.Len() < len(keys)/4 {
		t.Fatalf("split too lopsided: light holds %d, hot holds %d of %d", light.data.Len(), hot.data.Len(), len(keys))
	}
	for _, k := range append(keys, lightKey) {
		if _, found, _, err := nw.SearchExact(nw.RandomPeer(), k); err != nil || !found {
			t.Fatalf("key %d unreachable after forced rejoin: found=%v err=%v", k, found, err)
		}
	}
	if nw.LoadBalanceStats().Events == 0 {
		t.Fatal("forced rejoin must count as a load-balance event")
	}
}

// TestForcedRejoinRejections: every invalid configuration is rejected before
// any mutation, leaving the network untouched.
func TestForcedRejoinRejections(t *testing.T) {
	nw := buildPlainNetwork(t, 24, 13)
	light, hot := forcedRejoinPair(t, nw)
	boundary := hot.nodeRange.Lower + keyspace.Key(hot.nodeRange.Size()/2)
	cases := []struct {
		name       string
		light, hot PeerID
		boundary   keyspace.Key
	}{
		{"unknown light", PeerID(99_999), hot.id, boundary},
		{"unknown hot", light.id, PeerID(99_999), boundary},
		{"self", hot.id, hot.id, boundary},
		{"root recruited", nw.root.id, hot.id, boundary},
		{"boundary at lower edge", light.id, hot.id, hot.nodeRange.Lower},
		{"boundary above range", light.id, hot.id, hot.nodeRange.Upper},
	}
	// An adjacent pair must be redirected to ShiftBoundary.
	if adj := light.rightAdj; adj != nil && adj.nodeRange.Size() >= 2 {
		cases = append(cases, struct {
			name       string
			light, hot PeerID
			boundary   keyspace.Key
		}{"adjacent heir", light.id, adj.id, adj.nodeRange.Lower + keyspace.Key(adj.nodeRange.Size()/2)})
	}
	for _, tc := range cases {
		if _, err := nw.ForcedRejoin(tc.light, tc.hot, tc.boundary); err == nil {
			t.Fatalf("%s: expected an error", tc.name)
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("%s: failed rejoin mutated the network: %v", tc.name, err)
		}
	}
}

func TestTriggerLoadBalanceManually(t *testing.T) {
	nw := NewNetwork(Config{Seed: 9, LoadBalance: LoadBalanceConfig{OverloadThreshold: 50}})
	rng := rand.New(rand.NewSource(9))
	for nw.Size() < 30 {
		ids := nw.PeerIDs()
		if _, _, err := nw.Join(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	// Overload one specific peer directly through targeted inserts.
	target := nw.Peers()[10]
	for i := 0; i < 200; i++ {
		k := target.Range.Lower + keyspace.Key(int64(i)%target.Range.Size())
		owner, _, err := nw.Owner(nw.RandomPeer(), k)
		if err != nil {
			t.Fatal(err)
		}
		n := nw.nodes[owner.ID]
		n.data.Put(k, nil) // bypass automatic balancing to build up load
	}
	// Find the now-overloaded peer and trigger balancing explicitly.
	var hot PeerID
	for _, p := range nw.Peers() {
		if p.DataCount > 50 {
			hot = p.ID
			break
		}
	}
	if hot == NoPeer {
		t.Skip("no peer exceeded the threshold; range too wide for targeted overload")
	}
	did, cost, err := nw.TriggerLoadBalance(hot)
	if err != nil {
		t.Fatal(err)
	}
	if !did {
		t.Fatal("TriggerLoadBalance should have acted on an overloaded peer")
	}
	if cost.Messages == 0 {
		t.Fatal("load balancing should cost messages")
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Triggering on a peer that is not overloaded is a no-op.
	cold := nw.Peers()[0].ID
	for _, p := range nw.Peers() {
		if p.DataCount == 0 {
			cold = p.ID
			break
		}
	}
	did, _, err = nw.TriggerLoadBalance(cold)
	if err != nil {
		t.Fatal(err)
	}
	if did {
		t.Fatal("TriggerLoadBalance should not act on a peer below the threshold")
	}
	// Unknown peers are rejected.
	if _, _, err := nw.TriggerLoadBalance(PeerID(12345)); err == nil {
		t.Fatal("TriggerLoadBalance on an unknown peer should error")
	}
}
