package core

import (
	"math/rand"
	"testing"

	"baton/internal/keyspace"
)

// forceImbalancedJoin grows a network shaped so that a forced join at a
// specific peer must trigger restructuring, then performs it via the load
// balancing path and checks the invariants.
func TestForcedInsertTriggersRestructuring(t *testing.T) {
	// Build a left-heavy situation: a complete tree of 7 peers, then make
	// one specific leaf accept a forced child twice so the subtree under it
	// grows deeper than its siblings would normally allow.
	nw := buildNetwork(t, 7, 1)
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Pick the leftmost leaf and force two children under it, which a plain
	// join would never do (Theorem 1 forbids it as soon as level 3 exists
	// only there).
	leftmost := nw.inOrderNodes()[0]
	for i := 0; i < 2; i++ {
		side, free := leftmost.freeChildSide()
		if !free {
			t.Fatalf("leftmost leaf unexpectedly has two children")
		}
		child := newNode(nw.fanout, nw.allocID(), Position{}, keyspace.Range{})
		lower, upper, err := leftmost.nodeRange.SplitHalf()
		if err != nil {
			t.Fatal(err)
		}
		if side == Left {
			child.nodeRange = lower
			leftmost.nodeRange = upper
		} else {
			child.nodeRange = upper
			leftmost.nodeRange = lower
		}
		nw.nodes[child.id] = child
		nw.beginOp("test_forced_insert")
		moved := nw.forcedInsertAt(leftmost, child, side)
		nw.endOp()
		if moved < 1 {
			t.Fatalf("forced insert reported %d nodes involved", moved)
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("after forced insert %d: %v", i, err)
		}
	}
	if nw.Size() != 9 {
		t.Fatalf("size = %d, want 9", nw.Size())
	}
}

// TestForcedRemoveTriggersRestructuring removes a shallow leaf whose absence
// would unbalance the tree and verifies that occupants shift to fill the gap.
func TestForcedRemoveRestoresBalance(t *testing.T) {
	// Grow to 12 peers: levels 0..2 full (7 peers) plus 5 peers at level 3.
	nw := buildNetwork(t, 12, 2)
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Find a level-2 leaf (a peer at level 2 with no children). Removing it
	// outright would violate balance because level 3 is partially filled
	// under other level-2 peers.
	var victim *Node
	for _, n := range nw.nodes {
		if n.pos.Level == 2 && n.IsLeaf() {
			victim = n
			break
		}
	}
	if victim == nil {
		t.Skip("no level-2 leaf in this configuration")
	}
	// Detach it the way the load balancer does: give its range and data to
	// an adjacent peer, then force-remove its position.
	heir := victim.rightAdj
	if heir == nil {
		heir = victim.leftAdj
	}
	merged, err := heir.nodeRange.Union(victim.nodeRange)
	if err != nil {
		t.Fatal(err)
	}
	heir.nodeRange = merged
	heir.data.Absorb(victim.data.ExtractAll())
	delete(nw.positions, victim.pos)
	delete(nw.nodes, victim.id)
	nw.beginOp("test_forced_remove")
	nw.forcedRemoveAt(victim.pos)
	nw.endOp()
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("after forced removal: %v", err)
	}
	if nw.Size() != 11 {
		t.Fatalf("size = %d, want 11", nw.Size())
	}
}

// TestRestructureManyRandomForcedOps hammers forced inserts and removes at
// random places and checks the invariants after every operation. This is the
// main property test for the restructuring machinery of Section III-E.
func TestRestructureManyRandomForcedOps(t *testing.T) {
	nw := buildNetwork(t, 30, 5)
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 150; step++ {
		if rng.Float64() < 0.55 || nw.Size() < 10 {
			// Forced insert under a random peer with a free child slot.
			var target *Node
			for _, n := range nw.inOrderNodes() {
				if n.hasFreeChildSlot() && rng.Float64() < 0.3 {
					target = n
					break
				}
			}
			if target == nil {
				for _, n := range nw.inOrderNodes() {
					if n.hasFreeChildSlot() {
						target = n
						break
					}
				}
			}
			side, _ := target.freeChildSide()
			child := newNode(nw.fanout, nw.allocID(), Position{}, keyspace.Range{})
			lower, upper, err := target.nodeRange.SplitHalf()
			if err != nil {
				// Range of a single key: give the child an empty range at
				// the boundary.
				boundary := target.nodeRange.Lower
				if side == Right {
					boundary = target.nodeRange.Upper
				}
				child.nodeRange = keyspace.NewRange(boundary, boundary)
			} else if side == Left {
				child.nodeRange = lower
				target.nodeRange = upper
			} else {
				child.nodeRange = upper
				target.nodeRange = lower
			}
			nw.nodes[child.id] = child
			nw.beginOp("forced_insert")
			nw.forcedInsertAt(target, child, side)
			nw.endOp()
		} else {
			// Forced removal of a random leaf.
			var victim *Node
			for _, n := range nw.inOrderNodes() {
				if n.IsLeaf() && !n.pos.IsRoot() && rng.Float64() < 0.3 {
					victim = n
					break
				}
			}
			if victim == nil {
				continue
			}
			heir := victim.rightAdj
			if heir == nil {
				heir = victim.leftAdj
			}
			merged, err := heir.nodeRange.Union(victim.nodeRange)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			heir.nodeRange = merged
			heir.data.Absorb(victim.data.ExtractAll())
			delete(nw.positions, victim.pos)
			delete(nw.nodes, victim.id)
			nw.beginOp("forced_remove")
			nw.forcedRemoveAt(victim.pos)
			nw.endOp()
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}
