package core

import (
	"fmt"
	"sort"

	"baton/internal/stats"
)

// Leave removes the peer with the given ID from the network gracefully
// (Section III-B of the paper).
//
// A leaf whose departure cannot unbalance the tree (no routing-table
// neighbour has children) transfers its content and range to its in-order
// neighbour (its parent, in the binary protocol) and leaves directly. Any
// other peer finds a replacement leaf by forwarding a FINDREPLACEMENT
// request (Algorithm 2); the replacement vacates its own position and takes
// over the leaving peer's position, range and content.
func (nw *Network) Leave(id PeerID) (stats.OpCost, error) {
	x, err := nw.node(id)
	if err != nil {
		return stats.OpCost{}, err
	}
	if nw.Size() == 1 {
		return stats.OpCost{}, ErrLastPeer
	}
	nw.beginOp(stats.OpLeave)
	if err := nw.depart(x, true); err != nil {
		nw.endOp()
		return stats.OpCost{}, err
	}
	return nw.endOp(), nil
}

// LeaveWith removes the peer with the given ID gracefully when the choice of
// replacement has already been made by the caller — the entry point used by
// the live cluster in package p2p, where Algorithm 2's replacement search
// runs as real messages between peer goroutines. A NoPeer replacement
// requests the safe-leaf protocol: it succeeds only when x is a leaf whose
// removal keeps the tree balanced, and fails with ErrNeedsReplacement
// otherwise. A concrete replacement must be a different live leaf whose own
// removal keeps the tree balanced; it vacates its position and takes over
// x's position, range and content. Validation happens before any mutation,
// so a failed LeaveWith leaves the network untouched and the caller can
// retry with a different replacement.
func (nw *Network) LeaveWith(id PeerID, replacement PeerID) (stats.OpCost, error) {
	return nw.leaveWith(id, replacement, true, stats.OpLeave)
}

// CrashLeaveWith removes the peer with the given ID after a crash: it is
// LeaveWith for a peer that is no longer there to cooperate. The structural
// side is identical — a NoPeer replacement requests the safe-leaf protocol,
// a concrete replacement leaf vacates its position and takes over the
// crashed peer's position and range — but the crashed peer's stored items
// are not transferred (they are gone with the process; the live cluster in
// package p2p restores them from the surviving replica instead), and the
// operation is accounted as a failure repair. Validation happens before any
// mutation, so a failed CrashLeaveWith leaves the network untouched and the
// caller can retry with a different replacement.
func (nw *Network) CrashLeaveWith(id PeerID, replacement PeerID) (stats.OpCost, error) {
	return nw.leaveWith(id, replacement, false, stats.OpFailure)
}

// leaveWith is the shared body of LeaveWith and CrashLeaveWith: withData
// tells whether the departing peer still hands over its items.
func (nw *Network) leaveWith(id, replacement PeerID, withData bool, kind stats.OpKind) (stats.OpCost, error) {
	x, err := nw.node(id)
	if err != nil {
		return stats.OpCost{}, err
	}
	if nw.Size() == 1 {
		return stats.OpCost{}, ErrLastPeer
	}
	if replacement == NoPeer {
		if !x.IsLeaf() || x.parent == nil {
			return stats.OpCost{}, fmt.Errorf("peer %d is not a removable leaf: %w", id, ErrNeedsReplacement)
		}
		if !nw.balancedWithChange(nil, []Position{x.pos}) {
			return stats.OpCost{}, fmt.Errorf("removing leaf %d would unbalance the tree: %w", id, ErrNeedsReplacement)
		}
		nw.beginOp(kind)
		nw.removeSafeLeaf(x, withData)
		return nw.endOp(), nil
	}
	y, err := nw.node(replacement)
	if err != nil {
		return stats.OpCost{}, err
	}
	if y == x || !y.IsLeaf() || y.parent == nil {
		return stats.OpCost{}, fmt.Errorf("baton: peer %d cannot replace peer %d", replacement, id)
	}
	if !nw.balancedWithChange(nil, []Position{y.pos}) {
		return stats.OpCost{}, fmt.Errorf("baton: vacating leaf %d would unbalance the tree", replacement)
	}
	nw.beginOp(kind)
	nw.replace(x, y, withData)
	return nw.endOp(), nil
}

// depart removes x from the network. withData indicates whether x is still
// able to hand over its stored items (false for abrupt failures, where the
// items are lost).
func (nw *Network) depart(x *Node, withData bool) error {
	if x.IsLeaf() && !nw.anyNeighbourHasChildren(x) {
		nw.removeSafeLeaf(x, withData)
		return nil
	}
	replacement, err := nw.findReplacement(x)
	if err != nil {
		return err
	}
	nw.replace(x, replacement, withData)
	return nil
}

// anyNeighbourHasChildren reports whether any node in x's routing tables has
// at least one child. If none has, x's departure cannot violate Theorem 1.
func (nw *Network) anyNeighbourHasChildren(x *Node) bool {
	for _, side := range []Side{Left, Right} {
		for _, m := range x.RoutingTable(side) {
			if m != nil && !m.IsLeaf() {
				return true
			}
		}
	}
	return false
}

// removeSafeLeaf removes a leaf whose departure keeps the tree balanced: its
// content and range are transferred to an in-order neighbour, adjacent links
// are re-spliced and routing-table entries pointing to it are cleared
// (2*L1 + 2*L2 + 2 messages in the paper's analysis).
//
// In the binary tree a leaf's parent is always one of its in-order
// neighbours, so at m=2 the absorber is the parent, exactly the paper's
// protocol. At larger fanouts a leaf in one of the middle child slots can
// have two deeper in-order neighbours; the absorber is then the parent if
// adjacent, else the right adjacent, else the left adjacent — the absorber's
// range is contiguous with the leaf's by construction.
func (nw *Network) removeSafeLeaf(x *Node, withData bool) {
	parent := x.parent
	if parent == nil {
		// x is the root and a leaf: the network would become empty; callers
		// guard against this (ErrLastPeer), so this indicates a logic error.
		panic("core: removing the last peer")
	}

	absorber := parent
	if x.leftAdj != parent && x.rightAdj != parent {
		if x.rightAdj != nil {
			absorber = x.rightAdj
		} else {
			absorber = x.leftAdj
		}
	}

	// Transfer content and range to the absorber.
	merged, err := absorber.nodeRange.Union(x.nodeRange)
	if err != nil {
		panic(fmt.Sprintf("core: leaf %v range %v not adjacent to absorber %v range %v", x.pos, x.nodeRange, absorber.pos, absorber.nodeRange))
	}
	absorber.nodeRange = merged
	if withData {
		absorber.data.Absorb(x.data.ExtractAll())
	}
	nw.send(absorber, stats.MsgTransferData, catData)

	// LEAVE messages to x's routing-table neighbours so they null their
	// entries pointing at x. A no-sideways network keeps the tables as
	// silent structural bookkeeping and charges nothing for them.
	for _, side := range []Side{Left, Right} {
		for _, m := range x.RoutingTable(side) {
			if m == nil {
				continue
			}
			nw.clearRTEntry(m, x)
			if !nw.cfg.NoSidewaysRouting {
				nw.send(m, stats.MsgLeaveRequest, catUpdate)
			}
		}
	}
	// The absorber notifies its own neighbours of its new content/children.
	if !nw.cfg.NoSidewaysRouting {
		for _, side := range []Side{Left, Right} {
			for _, m := range absorber.RoutingTable(side) {
				if m != nil {
					nw.send(m, stats.MsgNotifyNeighbour, catUpdate)
				}
			}
		}
	}

	// Re-splice the adjacent chain around x.
	if x.leftAdj != nil {
		x.leftAdj.rightAdj = x.rightAdj
		if x.leftAdj != absorber {
			nw.send(x.leftAdj, stats.MsgUpdateAdjacent, catUpdate)
		}
	}
	if x.rightAdj != nil {
		x.rightAdj.leftAdj = x.leftAdj
		if x.rightAdj != absorber {
			nw.send(x.rightAdj, stats.MsgUpdateAdjacent, catUpdate)
		}
	}
	nw.send(absorber, stats.MsgUpdateAdjacent, catUpdate)

	// Detach from the tree and the registries.
	parent.setChild(x.pos.SlotIn(nw.fanout), nil)
	delete(nw.positions, x.pos)
	delete(nw.nodes, x.id)
	delete(nw.failed, x.id)
	delete(nw.inflight, x.id)
	x.alive = false
}

// IsLeftChildOfParent reports whether the node occupies the leftmost child
// slot of its parent.
func (n *Node) IsLeftChildOfParent() bool {
	return !n.pos.IsRoot() && n.pos.SlotIn(n.fanout) == 0
}

// findReplacement runs Algorithm 2: starting from a node near x, the request
// travels downwards (to a child, or to a child of a routing-table neighbour)
// until it reaches a leaf that has no children and none of whose neighbours
// have children. That leaf can vacate its position without unbalancing the
// tree and will take over x's position.
func (nw *Network) findReplacement(x *Node) (*Node, error) {
	// Choose the starting point as the paper prescribes: a leaf node should
	// start at a child of a routing-table neighbour that has children; a
	// non-leaf node starts at one of its adjacent nodes (which is a leaf or
	// as deep as possible).
	var start *Node
	if x.IsLeaf() {
		for _, side := range []Side{Left, Right} {
			for _, m := range x.RoutingTable(side) {
				if m == nil || m.IsLeaf() {
					continue
				}
				for _, c := range m.children {
					if c != nil {
						start = c
						break
					}
				}
				break
			}
			if start != nil {
				break
			}
		}
	} else {
		// Prefer the adjacent node that lies deeper in the tree.
		la, ra := x.leftAdj, x.rightAdj
		switch {
		case la != nil && (ra == nil || la.pos.Level >= ra.pos.Level):
			start = la
		case ra != nil:
			start = ra
		}
	}
	if start == nil {
		start = x
	}
	if nw.cfg.NoSidewaysRouting {
		nw.chargeMultiwayReplacementWalk(x)
	}
	nw.send(start, stats.MsgFindReplacement, catLocate)

	n := start
	limit := nw.hopLimit()
	for hops := 0; hops < limit; hops++ {
		nw.chargeIfInflight(n)
		var next *Node
		for _, c := range n.children {
			if c != nil && c.alive {
				next = c
				break
			}
		}
		if next == nil {
			next = nw.childOfNeighbourWithChildren(n)
			if next == nil {
				if n == x || !n.alive || !n.IsLeaf() ||
					!nw.balancedWithChange(nil, []Position{n.pos}) {
					// Degenerate case: the walk ended at the departing peer
					// itself, at a peer that is down, at a peer that only has
					// failed children — or at a leaf whose removal would not
					// keep the tree balanced. The last one happens under
					// unrepaired failures: the walk only follows live peers,
					// but failed peers still occupy their positions for
					// balance purposes, so the live neighbourhood being flat
					// does not prove the leaf is safe to vacate. Pick a safe
					// live leaf deterministically instead.
					return nw.replacementFallback(x)
				}
				return n, nil
			}
		}
		nw.send(next, stats.MsgFindReplacement, catLocate)
		n = next
	}
	return nil, fmt.Errorf("finding replacement for peer %d: %w", x.id, ErrHopLimit)
}

// chargeMultiwayReplacementWalk charges the departure walk of the multiway
// baseline: without sideways links the departing peer cannot aim at a safe
// leaf directly, so it descends from its own position, asking every child for
// its subtree height (one request and one reply each) before following the
// deepest branch. Only the accounting differs from the sideways-assisted
// walk; tallest-first descent bottoms out at a deepest leaf of the subtree,
// the same class of balance-safe replacement Algorithm 2 picks.
func (nw *Network) chargeMultiwayReplacementWalk(x *Node) {
	n := x
	for {
		var deepest *Node
		for _, c := range n.children {
			if c == nil || !c.alive {
				continue
			}
			nw.send(c, stats.MsgChildInfoRequest, catLocate)
			nw.send(n, stats.MsgReply, catLocate)
			if deepest == nil || nw.subtreeHeight(c.pos) > nw.subtreeHeight(deepest.pos) {
				deepest = c
			}
		}
		if deepest == nil {
			return
		}
		nw.send(deepest, stats.MsgFindReplacement, catLocate)
		n = deepest
	}
}

// childOfNeighbourWithChildren returns a child of some routing-table
// neighbour of n that has children, or nil if every neighbour is a leaf.
func (nw *Network) childOfNeighbourWithChildren(n *Node) *Node {
	for _, side := range []Side{Left, Right} {
		for _, m := range n.RoutingTable(side) {
			if m == nil || m.IsLeaf() {
				continue
			}
			for _, c := range m.children {
				if c != nil && c.alive {
					return c
				}
			}
		}
	}
	return nil
}

// replacementFallback scans for the deepest leaf whose removal keeps the
// tree balanced. It only runs in degenerate configurations where Algorithm 2
// terminated at the departing node itself.
func (nw *Network) replacementFallback(x *Node) (*Node, error) {
	var best *Node
	for _, n := range nw.nodes {
		if n == x || !n.alive || !n.IsLeaf() {
			continue
		}
		if !nw.balancedWithChange(nil, []Position{n.pos}) {
			continue
		}
		if best == nil || n.pos.Level > best.pos.Level ||
			(n.pos.Level == best.pos.Level && n.id < best.id) {
			best = n
		}
	}
	if best == nil {
		return nil, fmt.Errorf("no replacement leaf available for peer %d: %w", x.id, ErrHopLimit)
	}
	nw.send(best, stats.MsgFindReplacement, catLocate)
	return best, nil
}

// replace removes x from the network and installs y (a safe leaf found by
// Algorithm 2) at x's position, range and content. withData indicates
// whether x can still hand over its items.
func (nw *Network) replace(x, y *Node, withData bool) {
	// Stash x's items before anything moves: when x has failed (withData
	// false) they are lost, and when y happens to be a child of x the safe
	// departure below would deposit y's items into x's store.
	xItems := x.data.ExtractAll()
	if !withData {
		xItems = nil
	}

	// y first leaves its own position exactly like a safe leaf departure.
	nw.removeSafeLeaf(y, true)
	// Re-register y: removeSafeLeaf removed it from the registries.
	y.alive = true
	nw.nodes[y.id] = y

	// y takes over x's position, range and (if available) content.
	targetPos := x.pos
	y.pos = targetPos
	y.nodeRange = x.nodeRange
	// Recover any items the safe departure deposited at x (when y was a
	// neighbour of x), then take over x's own items if they are available.
	y.data.Absorb(x.data.ExtractAll())
	if len(xItems) > 0 {
		y.data.Absorb(xItems)
		nw.send(y, stats.MsgTransferData, catData)
	}

	// Remove x and install y in the registries.
	delete(nw.nodes, x.id)
	delete(nw.failed, x.id)
	delete(nw.inflight, x.id)
	x.alive = false
	nw.positions[targetPos] = y

	// Every node holding a link to x must be pointed at y instead: x's old
	// parent notifies its neighbours (2*L1 messages), y notifies its new
	// neighbours (2*L2), its children (2) and its adjacent nodes (2).
	nw.rebuildAffected([]Position{targetPos})
	if !targetPos.IsRoot() {
		if p := nw.positions[targetPos.ParentIn(nw.fanout)]; p != nil {
			for _, side := range []Side{Left, Right} {
				for _, m := range p.RoutingTable(side) {
					if m != nil {
						nw.send(m, stats.MsgNotifyReplace, catUpdate)
					}
				}
			}
		}
	}
	for _, side := range []Side{Left, Right} {
		for _, m := range y.RoutingTable(side) {
			if m != nil {
				nw.send(m, stats.MsgNotifyReplace, catUpdate)
			}
		}
	}
	for _, c := range y.children {
		if c != nil {
			nw.send(c, stats.MsgNotifyReplace, catUpdate)
		}
	}
	for _, a := range []*Node{y.leftAdj, y.rightAdj} {
		if a != nil {
			nw.send(a, stats.MsgNotifyReplace, catUpdate)
		}
	}
	if nw.root == x {
		nw.root = y
	}
}

// clearRTEntry nulls the routing-table entry of m that points at target.
func (nw *Network) clearRTEntry(m, target *Node) {
	for _, side := range []Side{Left, Right} {
		rt := m.RoutingTable(side)
		for i := range rt {
			if rt[i] == target {
				rt[i] = nil
			}
		}
	}
}

// Fail marks the peer as abruptly failed (Section III-C). The peer stays in
// the overlay's structure until RepairFailure is called — exactly the window
// during which other peers route around it using their sideways and adjacent
// links (Section III-D). Queries issued while the peer is down still succeed
// as long as the data they target is not stored on the failed peer.
func (nw *Network) Fail(id PeerID) error {
	n, err := nw.node(id)
	if err != nil {
		return err
	}
	if nw.Size()-len(nw.failed) <= 1 {
		return ErrLastPeer
	}
	n.alive = false
	nw.failed[id] = n
	return nil
}

// FailedPeers returns the IDs of peers that are down and not yet repaired,
// in ascending ID order so repair sweeps are deterministic.
func (nw *Network) FailedPeers() []PeerID {
	out := make([]PeerID, 0, len(nw.failed))
	for id := range nw.failed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RepairFailure repairs the failure of the given peer: its parent (or, for a
// failed root, one of its children) regenerates the failed peer's routing
// state by contacting the children of its own routing-table neighbours and
// then drives a graceful departure on its behalf. The failed peer's data
// items are lost (the paper does not replicate data); its key range is taken
// over by the peer that absorbs or replaces it.
func (nw *Network) RepairFailure(id PeerID) (stats.OpCost, error) {
	x, ok := nw.failed[id]
	if !ok {
		return stats.OpCost{}, fmt.Errorf("%w: peer %d has not failed", ErrUnknownPeer, id)
	}
	nw.beginOp(stats.OpFailure)

	// The coordinating peer is the parent, or a child when the root failed.
	coordinator := x.parent
	if coordinator == nil {
		for _, c := range x.children {
			if c != nil {
				coordinator = c
				break
			}
		}
	}
	if coordinator != nil {
		nw.send(coordinator, stats.MsgFailureRecovery, catLocate)
		// Regenerate x's routing tables by contacting the children of the
		// coordinator's routing-table neighbours: one request and one reply
		// per neighbour.
		for _, side := range []Side{Left, Right} {
			for _, m := range coordinator.RoutingTable(side) {
				if m != nil {
					nw.send(m, stats.MsgChildInfoRequest, catUpdate)
					nw.send(coordinator, stats.MsgReply, catUpdate)
				}
			}
		}
	}

	// Drive the graceful-departure protocol on behalf of x. Its data cannot
	// be recovered.
	delete(nw.failed, id)
	x.alive = true // structurally present for the departure procedure
	err := nw.depart(x, false)
	cost := nw.endOp()
	if err != nil {
		return cost, fmt.Errorf("repairing failed peer %d: %w", id, err)
	}
	return cost, nil
}
