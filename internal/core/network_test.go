package core

import (
	"math/rand"
	"testing"

	"baton/internal/keyspace"
	"baton/internal/stats"
)

// buildNetwork grows a network to n peers by joining each new peer through a
// uniformly random existing peer, as in the paper's simulator.
func buildNetwork(t testing.TB, n int, seed int64) *Network {
	t.Helper()
	nw := NewNetwork(Config{Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	for nw.Size() < n {
		ids := nw.PeerIDs()
		via := ids[rng.Intn(len(ids))]
		if _, _, err := nw.Join(via); err != nil {
			t.Fatalf("join %d: %v", nw.Size(), err)
		}
	}
	return nw
}

func TestNewNetwork(t *testing.T) {
	nw := NewNetwork(Config{})
	if nw.Size() != 1 {
		t.Fatalf("new network size = %d", nw.Size())
	}
	if nw.Domain() != keyspace.FullDomain() {
		t.Fatalf("default domain = %v", nw.Domain())
	}
	root := nw.Root()
	if root.Position != RootPosition || root.Range != keyspace.FullDomain() {
		t.Fatalf("root = %+v", root)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if nw.Height() != 1 {
		t.Fatalf("height of single peer network = %d", nw.Height())
	}
}

func TestJoinGrowsBalancedTree(t *testing.T) {
	for _, size := range []int{2, 3, 7, 16, 33, 100, 200} {
		nw := buildNetwork(t, size, int64(size))
		if nw.Size() != size {
			t.Fatalf("size = %d, want %d", nw.Size(), size)
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		// Height must be within the balanced-tree bound of 1.44 log2 N (+1
		// for rounding).
		maxHeight := int(1.45*log2(float64(size))) + 2
		if nw.Height() > maxHeight {
			t.Fatalf("size %d: height %d exceeds balanced bound %d", size, nw.Height(), maxHeight)
		}
	}
}

func log2(x float64) float64 {
	if x <= 1 {
		return 1
	}
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}

func TestJoinCostIsLogarithmic(t *testing.T) {
	nw := buildNetwork(t, 300, 7)
	rng := rand.New(rand.NewSource(7))
	var locate stats.Accumulator
	for i := 0; i < 50; i++ {
		ids := nw.PeerIDs()
		via := ids[rng.Intn(len(ids))]
		_, cost, err := nw.Join(via)
		if err != nil {
			t.Fatal(err)
		}
		locate.AddInt(cost.LocateMessages)
		if cost.Messages == 0 {
			t.Fatal("join should cost at least one message")
		}
	}
	// The locate phase must stay well below the tree height bound times a
	// small constant (the paper reports it is much smaller than log N).
	if locate.Mean() > 3*float64(nw.Height()) {
		t.Fatalf("average locate cost %.1f too high for height %d", locate.Mean(), nw.Height())
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinUnknownPeer(t *testing.T) {
	nw := NewNetwork(Config{})
	if _, _, err := nw.Join(PeerID(999)); err == nil {
		t.Fatal("join via unknown peer should fail")
	}
}

func TestLeaveReducesSizeAndKeepsInvariants(t *testing.T) {
	nw := buildNetwork(t, 64, 3)
	rng := rand.New(rand.NewSource(3))
	for nw.Size() > 1 {
		ids := nw.PeerIDs()
		id := ids[rng.Intn(len(ids))]
		before := nw.Size()
		if _, err := nw.Leave(id); err != nil {
			t.Fatalf("leave with %d peers: %v", before, err)
		}
		if nw.Size() != before-1 {
			t.Fatalf("size after leave = %d, want %d", nw.Size(), before-1)
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("after leaving peer %d (size %d): %v", id, nw.Size(), err)
		}
	}
}

func TestLeaveLastPeerFails(t *testing.T) {
	nw := NewNetwork(Config{})
	if _, err := nw.Leave(nw.Root().ID); err != ErrLastPeer {
		t.Fatalf("leaving the last peer should fail with ErrLastPeer, got %v", err)
	}
}

func TestLeavePreservesData(t *testing.T) {
	nw := buildNetwork(t, 50, 11)
	rng := rand.New(rand.NewSource(11))
	keys := make([]keyspace.Key, 0, 500)
	for i := 0; i < 500; i++ {
		k := keyspace.Key(rng.Int63n(int64(keyspace.DomainMax)))
		keys = append(keys, k)
		if _, err := nw.Insert(nw.RandomPeer(), k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Remove half the peers; all data must remain reachable.
	for i := 0; i < 25; i++ {
		ids := nw.PeerIDs()
		if _, err := nw.Leave(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		_, found, _, err := nw.SearchExact(nw.RandomPeer(), k)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("key %d lost after peers left", k)
		}
	}
	if nw.TotalItems() == 0 {
		t.Fatal("all items vanished")
	}
}

func TestChurnJoinLeaveMix(t *testing.T) {
	nw := buildNetwork(t, 40, 17)
	rng := rand.New(rand.NewSource(17))
	for step := 0; step < 300; step++ {
		if rng.Float64() < 0.5 && nw.Size() > 2 {
			ids := nw.PeerIDs()
			if _, err := nw.Leave(ids[rng.Intn(len(ids))]); err != nil {
				t.Fatalf("step %d leave: %v", step, err)
			}
		} else {
			if _, _, err := nw.Join(nw.RandomPeer()); err != nil {
				t.Fatalf("step %d join: %v", step, err)
			}
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestPeerAccessors(t *testing.T) {
	nw := buildNetwork(t, 20, 23)
	ids := nw.PeerIDs()
	if len(ids) != 20 {
		t.Fatalf("PeerIDs returned %d ids", len(ids))
	}
	info, err := nw.Peer(ids[3])
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != ids[3] {
		t.Fatalf("Peer returned wrong snapshot: %+v", info)
	}
	if _, err := nw.Peer(PeerID(10_000)); err == nil {
		t.Fatal("unknown peer should error")
	}
	peers := nw.Peers()
	if len(peers) != 20 {
		t.Fatalf("Peers returned %d snapshots", len(peers))
	}
	// Peers are returned in key order.
	for i := 1; i < len(peers); i++ {
		if peers[i-1].Range.Lower > peers[i].Range.Lower {
			t.Fatal("Peers not sorted by range")
		}
	}
	if got := nw.PeerAtLevel(0); len(got) != 1 {
		t.Fatalf("PeerAtLevel(0) = %v", got)
	}
	if nw.RandomPeer() == NoPeer {
		t.Fatal("RandomPeer returned NoPeer on a populated network")
	}
}

func TestRoutingTableFullPredicate(t *testing.T) {
	nw := buildNetwork(t, 7, 31) // complete tree of 7 nodes
	// In a complete 7-node tree every peer has full routing tables.
	for _, n := range nw.nodes {
		if !n.bothRoutingTablesFull() {
			t.Fatalf("peer at %v should have full routing tables in a complete tree", n.pos)
		}
	}
	// Add one more peer; its sibling position is empty so it must have a
	// non-full table... unless it filled level 3 entirely (not with 8 peers).
	nw = buildNetwork(t, 8, 31)
	nonFull := 0
	for _, n := range nw.nodes {
		if !n.bothRoutingTablesFull() {
			nonFull++
		}
	}
	if nonFull == 0 {
		t.Fatal("an 8-peer network must contain peers with incomplete routing tables")
	}
}

func TestMetricsAccumulate(t *testing.T) {
	nw := buildNetwork(t, 32, 41)
	if nw.Metrics().TotalMessages() == 0 {
		t.Fatal("joins should have produced messages")
	}
	if nw.Metrics().OpCount(stats.OpJoin) != 31 {
		t.Fatalf("expected 31 join ops, got %d", nw.Metrics().OpCount(stats.OpJoin))
	}
}
