// Package core implements BATON, the balanced tree overlay network of
// Jagadish, Ooi, Rinard and Vu (VLDB 2005), generalised to the m-ary BATON*
// of the sequel paper: a height-balanced tree of fanout m in which every
// peer owns one tree position and a contiguous range of the key space, and
// keeps links to its parent, children, adjacent (in-order neighbouring)
// peers and to same-level peers at the BATON* distances j*m^i for
// j in 1..m-1 (the left and right sideways routing tables).
//
// The fanout is a parameter of the whole structural authority, not a
// variant: Config.Fanout threads through positions, joins, departures,
// restructuring, routing and the invariant suite, and at the default m=2
// every formula degenerates to the original paper's binary protocol —
// child slots {0,1} are {left,right}, the routing-table distances become
// 2^i, and the binary network's behaviour is reproduced decision for
// decision. Config.NoSidewaysRouting further degenerates BATON* into the
// multiway-tree baseline of Liau et al. (no long links; package multiway
// wraps it).
//
// The package contains the full protocol described in the paper: node join
// (Algorithm 1), node departure and replacement (Algorithm 2), abrupt
// failure recovery, fault-tolerant routing, network restructuring, exact and
// range search, data insertion/deletion, and the two load-balancing schemes.
// A Network value simulates an entire overlay in process and counts every
// message the protocol would exchange, which is the quantity the paper's
// evaluation measures.
package core

import "fmt"

// MaxLevel bounds the depth of the tree. The dyadic in-order comparison of
// positions uses 64-bit arithmetic that is exact up to this depth; a network
// would need about 2^42 peers to exceed it.
const MaxLevel = 60

// Position identifies a node's logical place in the tree: the root is level
// 0, and in a fanout-m tree nodes at level L are numbered 1..m^L left to
// right, whether or not a peer currently occupies them (Section III of the
// paper). The struct itself carries no fanout; the *In(m) methods in
// fanout.go interpret it for a given fanout, and the binary-named methods
// below (Parent, LeftChild, Sibling, ...) are the m=2 readings kept for the
// original protocol's code paths and tests.
type Position struct {
	Level  int
	Number int64
}

// RootPosition is the position of the tree root.
var RootPosition = Position{Level: 0, Number: 1}

// Valid reports whether the position is well formed.
func (p Position) Valid() bool {
	return p.Level >= 0 && p.Level <= MaxLevel && p.Number >= 1 && p.Number <= (int64(1)<<uint(p.Level))
}

// IsRoot reports whether p is the root position.
func (p Position) IsRoot() bool { return p.Level == 0 && p.Number == 1 }

// IsLeftChild reports whether p is the left child of its parent. The root is
// neither a left nor a right child.
func (p Position) IsLeftChild() bool { return !p.IsRoot() && p.Number%2 == 1 }

// IsRightChild reports whether p is the right child of its parent.
func (p Position) IsRightChild() bool { return !p.IsRoot() && p.Number%2 == 0 }

// Parent returns the parent position. Calling Parent on the root panics.
func (p Position) Parent() Position {
	if p.IsRoot() {
		panic("core: Parent of root position")
	}
	return Position{Level: p.Level - 1, Number: (p.Number + 1) / 2}
}

// LeftChild returns the position of the left child.
func (p Position) LeftChild() Position {
	return Position{Level: p.Level + 1, Number: 2*p.Number - 1}
}

// RightChild returns the position of the right child.
func (p Position) RightChild() Position {
	return Position{Level: p.Level + 1, Number: 2 * p.Number}
}

// Child returns the left or right child position.
func (p Position) Child(side Side) Position {
	if side == Left {
		return p.LeftChild()
	}
	return p.RightChild()
}

// Sibling returns the position of the other child of p's parent. Calling
// Sibling on the root panics.
func (p Position) Sibling() Position {
	if p.IsRoot() {
		panic("core: Sibling of root position")
	}
	if p.IsLeftChild() {
		return Position{Level: p.Level, Number: p.Number + 1}
	}
	return Position{Level: p.Level, Number: p.Number - 1}
}

// Neighbour returns the position at the same level whose number differs from
// p's by dist in the given direction, and whether that position exists
// (1 <= number <= 2^level).
func (p Position) Neighbour(side Side, dist int64) (Position, bool) {
	var n int64
	if side == Left {
		n = p.Number - dist
	} else {
		n = p.Number + dist
	}
	q := Position{Level: p.Level, Number: n}
	return q, q.Valid()
}

// RoutingTableSize returns the number of entries in each sideways routing
// table of a node at this position's level: entry i covers distance 2^i, and
// the largest useful distance at level L is 2^(L-1), so there are L entries
// (the root has none).
func (p Position) RoutingTableSize() int { return p.Level }

// IsAncestorOf reports whether p is a proper ancestor of q.
func (p Position) IsAncestorOf(q Position) bool {
	if q.Level <= p.Level {
		return false
	}
	// Walk q up to p's level.
	n := q.Number
	for l := q.Level; l > p.Level; l-- {
		n = (n + 1) / 2
	}
	return n == p.Number
}

// InOrderBefore reports whether p comes strictly before q in the in-order
// traversal of the (infinite) binary tree. A node at (L, N) has the dyadic
// in-order coordinate (2N-1) / 2^(L+1); positions are compared by that
// coordinate. Equal coordinates mean p == q.
func (p Position) InOrderBefore(q Position) bool {
	a, b := p.inOrderCoord(), q.inOrderCoord()
	return a.less(b)
}

// Compare returns -1, 0 or +1 according to the in-order ordering of the two
// positions.
func (p Position) Compare(q Position) int {
	if p == q {
		return 0
	}
	if p.InOrderBefore(q) {
		return -1
	}
	return 1
}

// inOrderCoord is the dyadic fraction num / 2^shift identifying the
// position's place in the in-order traversal.
type dyadic struct {
	num   uint64
	shift uint
}

func (p Position) inOrderCoord() dyadic {
	return dyadic{num: uint64(2*p.Number - 1), shift: uint(p.Level + 1)}
}

func (d dyadic) less(e dyadic) bool {
	// Compare d.num / 2^d.shift < e.num / 2^e.shift by bringing both to the
	// larger denominator. Shifts are bounded by MaxLevel+1, and numerators by
	// 2^(MaxLevel+1), so the products fit in uint64 only if we normalise the
	// smaller shift up; guard by comparing after aligning.
	if d.shift >= e.shift {
		return d.num < e.num<<(d.shift-e.shift)
	}
	return d.num<<(e.shift-d.shift) < e.num
}

// String renders the position as "level:number".
func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Level, p.Number) }

// Side selects the left or right direction; it is used for children, adjacent
// links, routing tables and restructuring directions.
type Side int

const (
	// Left is the left / lower-key direction.
	Left Side = iota
	// Right is the right / higher-key direction.
	Right
)

// Opposite returns the other side.
func (s Side) Opposite() Side {
	if s == Left {
		return Right
	}
	return Left
}

// String returns "left" or "right".
func (s Side) String() string {
	if s == Left {
		return "left"
	}
	return "right"
}
