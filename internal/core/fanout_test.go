package core

import (
	"math/rand"
	"testing"

	"baton/internal/keyspace"
)

// buildNetworkFanout grows an m-ary network to n peers the way buildNetwork
// does for the binary tree.
func buildNetworkFanout(t testing.TB, fanout, n int, seed int64) *Network {
	t.Helper()
	nw := NewNetwork(Config{Seed: seed, Fanout: fanout})
	rng := rand.New(rand.NewSource(seed))
	for nw.Size() < n {
		ids := nw.PeerIDs()
		via := ids[rng.Intn(len(ids))]
		if _, _, err := nw.Join(via); err != nil {
			t.Fatalf("join %d: %v", nw.Size(), err)
		}
	}
	return nw
}

// TestFanoutPositionAlgebra pins the m-ary position arithmetic against the
// binary methods at m=2 and against hand-computed values at m=4.
func TestFanoutPositionAlgebra(t *testing.T) {
	// m=2 must agree with the binary methods everywhere.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		level := rng.Intn(20)
		num := int64(rng.Intn(1<<uint(level))) + 1
		p := Position{Level: level, Number: num}
		if p.ValidIn(2) != p.Valid() {
			t.Fatalf("ValidIn(2) disagrees with Valid at %v", p)
		}
		if !p.IsRoot() {
			if p.ParentIn(2) != p.Parent() {
				t.Fatalf("ParentIn(2) disagrees with Parent at %v", p)
			}
			if p.SlotIn(2) == 0 != p.IsLeftChild() {
				t.Fatalf("SlotIn(2) disagrees with IsLeftChild at %v", p)
			}
		}
		if p.ChildIn(2, 0) != p.LeftChild() || p.ChildIn(2, 1) != p.RightChild() {
			t.Fatalf("ChildIn(2) disagrees with LeftChild/RightChild at %v", p)
		}
		q := Position{Level: rng.Intn(20)}
		q.Number = int64(rng.Intn(1<<uint(q.Level))) + 1
		if p.InOrderBeforeIn(2, q) != p.InOrderBefore(q) {
			t.Fatalf("InOrderBeforeIn(2) disagrees with InOrderBefore at %v vs %v", p, q)
		}
		if p.CompareIn(2, q) != p.Compare(q) {
			t.Fatalf("CompareIn(2) disagrees with Compare at %v vs %v", p, q)
		}
	}

	// RT layout: distances strictly increasing, 2^k at m=2, j*m^i at m=4.
	for k := 0; k < 10; k++ {
		if RTDistance(2, k) != int64(1)<<uint(k) {
			t.Fatalf("RTDistance(2, %d) = %d, want %d", k, RTDistance(2, k), int64(1)<<uint(k))
		}
	}
	want4 := []int64{1, 2, 3, 4, 8, 12, 16, 32, 48}
	for k, w := range want4 {
		if RTDistance(4, k) != w {
			t.Fatalf("RTDistance(4, %d) = %d, want %d", k, RTDistance(4, k), w)
		}
	}
	for _, m := range []int{2, 3, 4, 8, 16} {
		for k := 1; k < 4*(m-1); k++ {
			if RTDistance(m, k) <= RTDistance(m, k-1) {
				t.Fatalf("RTDistance(%d) not strictly increasing at entry %d", m, k)
			}
		}
		if RoutingTableSizeIn(m, 3) != 3*(m-1) {
			t.Fatalf("RoutingTableSizeIn(%d, 3) = %d", m, RoutingTableSizeIn(m, 3))
		}
	}

	// In-order ordering at m=4: the root's children 0..2 precede it, child 3
	// follows, and the full level-2 order interleaves as the traversal
	// prescribes.
	root := RootPosition
	for s := 0; s < 3; s++ {
		if !root.ChildIn(4, s).InOrderBeforeIn(4, root) {
			t.Fatalf("child %d of root should precede it at m=4", s)
		}
	}
	if !root.InOrderBeforeIn(4, root.ChildIn(4, 3)) {
		t.Fatalf("root should precede its last child at m=4")
	}
	// Children are ordered among themselves.
	for s := 0; s < 3; s++ {
		if !root.ChildIn(4, s).InOrderBeforeIn(4, root.ChildIn(4, s+1)) {
			t.Fatalf("children %d and %d of root out of order at m=4", s, s+1)
		}
	}

	// MaxLevelFor: binary unchanged, deeper fanouts shallower.
	if MaxLevelFor(2) != MaxLevel {
		t.Fatalf("MaxLevelFor(2) = %d, want %d", MaxLevelFor(2), MaxLevel)
	}
	for _, m := range []int{4, 8, 16, 64} {
		lvl := MaxLevelFor(m)
		if ipow(m, lvl+1) > uint64(1)<<62 {
			t.Fatalf("MaxLevelFor(%d) = %d overflows the comparison bound", m, lvl)
		}
	}
}

// TestFanoutChurnInvariants grows m-ary networks by random joins, interleaves
// random leaves, and checks the full invariant suite after every operation —
// the m-ary twin of the binary churn property test.
func TestFanoutChurnInvariants(t *testing.T) {
	for _, m := range []int{3, 4, 8} {
		m := m
		t.Run(map[int]string{3: "m3", 4: "m4", 8: "m8"}[m], func(t *testing.T) {
			nw := NewNetwork(Config{Seed: int64(m), Fanout: m})
			rng := rand.New(rand.NewSource(int64(m)))
			// Growth phase with per-join audit.
			for nw.Size() < 40 {
				ids := nw.PeerIDs()
				if _, _, err := nw.Join(ids[rng.Intn(len(ids))]); err != nil {
					t.Fatalf("join at size %d: %v", nw.Size(), err)
				}
				if err := nw.CheckInvariants(); err != nil {
					t.Fatalf("after join at size %d: %v", nw.Size(), err)
				}
			}
			// Churn phase: mixed joins and leaves.
			for step := 0; step < 120; step++ {
				ids := nw.PeerIDs()
				if rng.Float64() < 0.5 && nw.Size() > 8 {
					id := ids[rng.Intn(len(ids))]
					if _, err := nw.Leave(id); err != nil {
						t.Fatalf("step %d: leave %d: %v", step, id, err)
					}
				} else {
					if _, _, err := nw.Join(ids[rng.Intn(len(ids))]); err != nil {
						t.Fatalf("step %d: join: %v", step, err)
					}
				}
				if err := nw.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		})
	}
}

// TestFanoutSearchAndRange verifies exact and range search at m=4 and m=8
// over a populated network, including searches issued from every peer.
func TestFanoutSearchAndRange(t *testing.T) {
	for _, m := range []int{4, 8} {
		nw := buildNetworkFanout(t, m, 50, int64(m))
		rng := rand.New(rand.NewSource(int64(m) + 100))
		keys := make([]keyspace.Key, 0, 400)
		for i := 0; i < 400; i++ {
			k := keyspace.Key(rng.Int63n(1_000_000_000) + 1)
			via := nw.RandomPeer()
			if _, err := nw.Insert(via, k, []byte{byte(i)}); err != nil {
				t.Fatalf("m=%d: insert: %v", m, err)
			}
			keys = append(keys, k)
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for _, k := range keys {
			_, found, _, err := nw.SearchExact(nw.RandomPeer(), k)
			if err != nil {
				t.Fatalf("m=%d: search %d: %v", m, k, err)
			}
			if !found {
				t.Fatalf("m=%d: key %d not found", m, k)
			}
		}
		res, _, err := nw.SearchRange(nw.RandomPeer(), keyspace.NewRange(1, 1_000_000_001))
		if err != nil {
			t.Fatalf("m=%d: range: %v", m, err)
		}
		if len(res.Items) != nw.TotalItems() {
			t.Fatalf("m=%d: full-domain range returned %d items, stored %d", m, len(res.Items), nw.TotalItems())
		}
	}
}

// TestFanoutSnapshotRoundTrip checks that Snapshot/FromSnapshot preserve the
// fanout and the full link state at m=4, and that VerifySnapshot audits it.
func TestFanoutSnapshotRoundTrip(t *testing.T) {
	nw := buildNetworkFanout(t, 4, 40, 7)
	snaps := Snapshot(nw)
	for _, ps := range snaps {
		if ps.Fanout() != 4 {
			t.Fatalf("snapshot fanout = %d, want 4", ps.Fanout())
		}
		if len(ps.MidChildren) != 2 {
			t.Fatalf("MidChildren = %d entries, want 2", len(ps.MidChildren))
		}
	}
	if err := VerifySnapshot(nw.Domain(), snaps); err != nil {
		t.Fatalf("verify: %v", err)
	}
	back, err := FromSnapshot(nw.Domain(), snaps)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fanout() != 4 {
		t.Fatalf("restored fanout = %d, want 4", back.Fanout())
	}
	if back.Size() != nw.Size() {
		t.Fatalf("restored size = %d, want %d", back.Size(), nw.Size())
	}
}

// TestFanoutForcedRejoin drives the load-balancing primitives at m=4: shift
// a boundary, then force a light leaf to rejoin under a hot peer, auditing
// invariants throughout.
func TestFanoutForcedRejoin(t *testing.T) {
	nw := buildNetworkFanout(t, 4, 30, 11)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 600; i++ {
		k := keyspace.Key(rng.Int63n(1_000_000_000) + 1)
		if _, err := nw.Insert(nw.RandomPeer(), k, []byte("v")); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	// Pick a hot peer (most items) and a light leaf far from it.
	var hot, light *Node
	for _, n := range nw.inOrderNodes() {
		if hot == nil || n.data.Len() > hot.data.Len() {
			hot = n
		}
	}
	for _, n := range nw.inOrderNodes() {
		if n == hot || !n.IsLeaf() || n.pos.IsRoot() {
			continue
		}
		if n.leftAdj == hot || n.rightAdj == hot {
			continue
		}
		heir := n.rightAdj
		if heir == nil {
			heir = n.leftAdj
		}
		if heir == hot {
			continue
		}
		if light == nil || n.data.Len() < light.data.Len() {
			light = n
		}
	}
	if light == nil {
		t.Skip("no recruitable light leaf in this configuration")
	}
	boundary := hot.nodeRange.Lower + (hot.nodeRange.Upper-hot.nodeRange.Lower)/2
	if _, err := nw.ForcedRejoin(light.id, hot.id, boundary); err != nil {
		t.Fatalf("forced rejoin: %v", err)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("after forced rejoin: %v", err)
	}
}

// TestFanoutCrashRepair fails peers at m=4 and repairs them, auditing the
// structure after every repair.
func TestFanoutCrashRepair(t *testing.T) {
	nw := buildNetworkFanout(t, 4, 40, 13)
	rng := rand.New(rand.NewSource(13))
	for round := 0; round < 6; round++ {
		ids := nw.PeerIDs()
		id := ids[rng.Intn(len(ids))]
		if err := nw.Fail(id); err != nil {
			t.Fatalf("round %d: fail %d: %v", round, id, err)
		}
		if _, err := nw.RepairFailure(id); err != nil {
			t.Fatalf("round %d: repair %d: %v", round, id, err)
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestInvalidFanoutPanics pins the constructor's validation.
func TestInvalidFanoutPanics(t *testing.T) {
	for _, bad := range []int{1, -3, MaxFanout + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewNetwork(Fanout: %d) did not panic", bad)
				}
			}()
			NewNetwork(Config{Fanout: bad})
		}()
	}
}
