package core

import (
	"fmt"

	"baton/internal/keyspace"
	"baton/internal/stats"
	"baton/internal/store"
)

// LoadBalanceConfig configures the load balancing scheme of Section IV-D.
type LoadBalanceConfig struct {
	// OverloadThreshold is the number of stored items above which a peer is
	// considered overloaded. Zero disables automatic load balancing.
	OverloadThreshold int
	// UnderloadFraction defines "lightly loaded": a peer qualifies as a
	// rejoin candidate when it stores fewer than
	// UnderloadFraction*OverloadThreshold items. Values <= 0 default to 0.25.
	UnderloadFraction float64
	// AdjacentFraction bounds when balancing with an adjacent peer is good
	// enough: the adjacent peer must hold fewer than
	// AdjacentFraction*OverloadThreshold items. Values <= 0 default to 0.75.
	AdjacentFraction float64
}

// Enabled reports whether automatic load balancing is switched on.
func (c LoadBalanceConfig) Enabled() bool { return c.OverloadThreshold > 0 }

func (c LoadBalanceConfig) underloadLimit() int {
	f := c.UnderloadFraction
	if f <= 0 {
		f = 0.25
	}
	return int(f * float64(c.OverloadThreshold))
}

func (c LoadBalanceConfig) adjacentLimit() int {
	f := c.AdjacentFraction
	if f <= 0 {
		f = 0.75
	}
	return int(f * float64(c.OverloadThreshold))
}

// LoadBalanceStats summarises the load-balancing activity of the network
// since creation (the quantities of Figures 8(g) and 8(h)).
type LoadBalanceStats struct {
	// Events is the number of load-balancing operations performed.
	Events int64
	// Messages is the total number of messages those operations exchanged.
	Messages int64
	// ShiftSizes is the distribution of the number of peers involved in each
	// operation (peers that changed position or exchanged data).
	ShiftSizes *stats.Histogram
}

// LoadBalanceStats returns the accumulated load balancing measurements.
func (nw *Network) LoadBalanceStats() LoadBalanceStats {
	return LoadBalanceStats{
		Events:     nw.lbEvents,
		Messages:   nw.lbMessages,
		ShiftSizes: nw.lbShiftSizes,
	}
}

// TriggerLoadBalance runs the load-balancing procedure for the given peer if
// it is overloaded, regardless of whether automatic balancing is enabled.
// It reports whether an operation was performed and its cost.
func (nw *Network) TriggerLoadBalance(id PeerID) (bool, stats.OpCost, error) {
	n, err := nw.node(id)
	if err != nil {
		return false, stats.OpCost{}, err
	}
	if !nw.cfg.LoadBalance.Enabled() || n.data.Len() <= nw.cfg.LoadBalance.OverloadThreshold {
		return false, stats.OpCost{}, nil
	}
	cost := nw.loadBalance(n)
	return true, cost, nil
}

// maybeLoadBalance is called after an insert lands on owner; it triggers the
// load balancing procedure when the owner has become overloaded.
func (nw *Network) maybeLoadBalance(owner *Node) {
	if owner.data.Len() <= nw.cfg.LoadBalance.OverloadThreshold {
		return
	}
	nw.loadBalance(owner)
}

// loadBalance rebalances the load of the overloaded peer x following
// Section IV-D: a non-leaf peer only balances with its adjacent peers; a
// leaf peer first tries its adjacent peers and otherwise recruits a lightly
// loaded leaf found through its routing tables, which vacates its position
// (handing its range to its own adjacent peer) and re-joins as a child of x,
// restructuring the tree if the forced join or leave unbalances it.
func (nw *Network) loadBalance(x *Node) stats.OpCost {
	nw.beginOp(stats.OpLoadBalance)
	nodesInvolved := 0

	if !x.IsLeaf() {
		nodesInvolved = nw.balanceWithBestAdjacent(x)
	} else {
		// A leaf first tries its adjacent peers.
		if adj, side := nw.lighterAdjacent(x); adj != nil && adj.data.Len() <= nw.cfg.LoadBalance.adjacentLimit() {
			nodesInvolved = nw.balanceWithAdjacent(x, adj, side)
		} else if light := nw.findLightLeaf(x); light != nil {
			nodesInvolved = nw.rejoinUnderOverloaded(x, light)
		} else {
			// No lightly loaded peer found: fall back to adjacent balancing
			// even if the adjacent peers are moderately loaded.
			nodesInvolved = nw.balanceWithBestAdjacent(x)
		}
	}

	cost := nw.endOp()
	cost.NodesInvolved = nodesInvolved
	nw.lbEvents++
	nw.lbMessages += int64(cost.Messages)
	if nodesInvolved > 0 {
		nw.lbShiftSizes.Add(nodesInvolved)
	}
	return cost
}

// lighterAdjacent returns the adjacent peer of x with the smaller load and
// which side it is on. Probing each adjacent peer costs a message and a
// reply.
func (nw *Network) lighterAdjacent(x *Node) (*Node, Side) {
	var best *Node
	var bestSide Side
	for _, side := range []Side{Left, Right} {
		a := x.Adjacent(side)
		if a == nil || !a.alive {
			continue
		}
		nw.send(a, stats.MsgLoadProbe, catOther)
		nw.send(x, stats.MsgReply, catOther)
		if best == nil || a.data.Len() < best.data.Len() {
			best = a
			bestSide = side
		}
	}
	return best, bestSide
}

// balanceWithBestAdjacent balances x with its lighter adjacent peer and
// returns the number of peers involved.
func (nw *Network) balanceWithBestAdjacent(x *Node) int {
	adj, side := nw.lighterAdjacent(x)
	if adj == nil || adj.data.Len() >= x.data.Len() {
		return 0
	}
	return nw.balanceWithAdjacent(x, adj, side)
}

// balanceWithAdjacent moves items from the overloaded peer x to its adjacent
// peer a (on the given side of x) by shifting the range boundary between
// them until their loads are as equal as the key distribution allows.
func (nw *Network) balanceWithAdjacent(x, a *Node, side Side) int {
	combined := x.data.Len() + a.data.Len()
	keep := (combined + 1) / 2
	if keep >= x.data.Len() {
		return 0 // nothing to gain
	}
	var boundary keyspace.Key
	if side == Right {
		// x keeps its lowest `keep` items; everything at or above the
		// boundary key moves to the right adjacent peer.
		k, ok := x.data.KeyAtFraction(float64(keep) / float64(x.data.Len()))
		if !ok || k <= x.nodeRange.Lower {
			return 0
		}
		boundary = k
		items := x.data.ExtractRange(keyspace.NewRange(boundary, x.nodeRange.Upper))
		a.data.Absorb(items)
		a.nodeRange.Lower = boundary
		x.nodeRange.Upper = boundary
	} else {
		// x keeps its highest `keep` items; everything below the boundary
		// moves to the left adjacent peer.
		giveAway := x.data.Len() - keep
		k, ok := x.data.KeyAtFraction(float64(giveAway) / float64(x.data.Len()))
		if !ok || k >= x.nodeRange.Upper || k <= x.nodeRange.Lower {
			return 0
		}
		boundary = k
		items := x.data.ExtractRange(keyspace.NewRange(x.nodeRange.Lower, boundary))
		a.data.Absorb(items)
		a.nodeRange.Upper = boundary
		x.nodeRange.Lower = boundary
	}
	nw.send(a, stats.MsgTransferData, catData)
	// Both peers must notify the peers holding links to them of their new
	// ranges.
	nw.notifyRangeChange(x)
	nw.notifyRangeChange(a)
	return 2
}

// ShiftBoundary moves the boundary between the peer with the given ID and
// its adjacent peer on the given side to the key at: the sub-range of x on
// that side of the boundary, together with the items stored in it, is handed
// to the adjacent peer. It is the primitive behind the adjacent-peer data
// shuffle of Section V as executed by the live cluster, which measures the
// peers' loads and picks the boundary itself and uses the network only as
// the structural authority. The boundary must lie strictly inside x's range
// so x never ends up empty.
func (nw *Network) ShiftBoundary(id PeerID, side Side, at keyspace.Key) (stats.OpCost, error) {
	x, err := nw.node(id)
	if err != nil {
		return stats.OpCost{}, err
	}
	a := x.Adjacent(side)
	if a == nil {
		return stats.OpCost{}, fmt.Errorf("baton: peer %d has no %s adjacent peer", id, side)
	}
	if at <= x.nodeRange.Lower || at >= x.nodeRange.Upper {
		return stats.OpCost{}, fmt.Errorf("baton: boundary %d outside peer %d's range %v", at, id, x.nodeRange)
	}
	nw.beginOp(stats.OpLoadBalance)
	var moved []store.Item
	if side == Left {
		moved = x.data.ExtractRange(keyspace.Range{Lower: x.nodeRange.Lower, Upper: at})
		a.nodeRange.Upper = at
		x.nodeRange.Lower = at
	} else {
		moved = x.data.ExtractRange(keyspace.Range{Lower: at, Upper: x.nodeRange.Upper})
		a.nodeRange.Lower = at
		x.nodeRange.Upper = at
	}
	a.data.Absorb(moved)
	nw.send(a, stats.MsgTransferData, catData)
	nw.notifyRangeChange(x)
	nw.notifyRangeChange(a)
	nw.lbEvents++
	nw.lbShiftSizes.Add(2)
	cost := nw.endOp()
	nw.lbMessages += int64(cost.Messages)
	return cost, nil
}

// ForcedRejoin moves the lightly loaded peer light out of its current
// position and re-inserts it as a child of the (overloaded) peer hot, with
// the boundary between hot and light placed at the given key. It is the
// second load-balancing scheme of Section V — vacate, restructure
// (Section III-E) and forced re-join — exposed as a primitive for the live
// cluster in package p2p, which measures the loads, picks light, hot and the
// boundary itself, and uses the network only as the structural authority:
//
//  1. light's range (and, when the network carries data, its items) is
//     absorbed by its adjacent heir — the right adjacent peer, or the left
//     one for the rightmost peer — keeping the range tiling gap-free.
//  2. light vacates its tree position; occupants shift along the in-order
//     chain (forcedRemoveAt) if the removal would unbalance the tree.
//  3. light re-joins as a child of hot: it takes the part of hot's range on
//     the free child side of the boundary, and occupants shift again
//     (forcedInsertAt) if the forced join lands on an occupied slot.
//
// The boundary must lie strictly inside hot's range so neither side ends up
// empty. Validation happens before any mutation, so a failed ForcedRejoin
// leaves the network untouched and the caller can retry with different
// peers. light may not be the root, must have an adjacent heir, and that
// heir may not be hot itself (adjacent peers balance with ShiftBoundary —
// the cheap shuffle — not a forced rejoin).
func (nw *Network) ForcedRejoin(lightID, hotID PeerID, boundary keyspace.Key) (stats.OpCost, error) {
	light, err := nw.node(lightID)
	if err != nil {
		return stats.OpCost{}, err
	}
	hot, err := nw.node(hotID)
	if err != nil {
		return stats.OpCost{}, err
	}
	if lightID == hotID {
		return stats.OpCost{}, fmt.Errorf("baton: peer %d cannot rejoin under itself", lightID)
	}
	if light.pos.IsRoot() {
		return stats.OpCost{}, fmt.Errorf("baton: the root peer %d cannot be recruited for a forced rejoin", lightID)
	}
	heir := light.rightAdj
	if heir == nil {
		heir = light.leftAdj
	}
	if heir == nil {
		return stats.OpCost{}, fmt.Errorf("baton: peer %d has no adjacent peer to absorb its range", lightID)
	}
	if heir == hot {
		return stats.OpCost{}, fmt.Errorf("baton: peers %d and %d are adjacent; balance with ShiftBoundary instead", lightID, hotID)
	}
	if boundary <= hot.nodeRange.Lower || boundary >= hot.nodeRange.Upper {
		return stats.OpCost{}, fmt.Errorf("baton: boundary %d outside peer %d's range %v", boundary, hotID, hot.nodeRange)
	}

	nw.beginOp(stats.OpLoadBalance)
	nw.send(light, stats.MsgLoadBalance, catOther)
	nodesInvolved := nw.vacateAndRejoin(light, hot, heir, func(side Side) (keyspace.Range, keyspace.Range) {
		// The free child side decides which part of hot's range light takes,
		// preserving the in-order ordering of ranges.
		if side == Left {
			return keyspace.NewRange(hot.nodeRange.Lower, boundary), keyspace.NewRange(boundary, hot.nodeRange.Upper)
		}
		return keyspace.NewRange(boundary, hot.nodeRange.Upper), keyspace.NewRange(hot.nodeRange.Lower, boundary)
	})
	cost := nw.endOp()
	cost.NodesInvolved = nodesInvolved
	nw.lbEvents++
	nw.lbMessages += int64(cost.Messages)
	nw.lbShiftSizes.Add(cost.NodesInvolved)
	return cost, nil
}

// vacateAndRejoin is the shared body of the forced depart-and-rejoin
// (rejoinUnderOverloaded and ForcedRejoin): the heir absorbs light's range
// and items, light vacates its position — occupants shift into the gap if
// the removal would unbalance the tree — and re-joins as a child of hot on
// hot's free child side, taking the light-side range that split returns for
// that side (with both slots occupied the forced insert restructures
// again). It returns the number of peers that changed position or
// exchanged data.
func (nw *Network) vacateAndRejoin(light, hot, heir *Node, split func(side Side) (lightRange, hotRange keyspace.Range)) int {
	// 1. The heir absorbs light's range and items.
	merged, err := heir.nodeRange.Union(light.nodeRange)
	if err != nil {
		// The heir is adjacent to light, so the union is always contiguous;
		// failure indicates corruption.
		panic("core: adjacent ranges not contiguous during forced rejoin")
	}
	heir.nodeRange = merged
	heir.data.Absorb(light.data.ExtractAll())
	nw.send(heir, stats.MsgTransferData, catData)
	nw.notifyRangeChange(heir)

	// 2. light vacates its position.
	vacated := light.pos
	delete(nw.positions, vacated)
	movedOut := nw.forcedRemoveAt(vacated)

	// 3. light re-joins as a child of hot with the caller's range split.
	side, _ := hot.freeChildSide()
	light.nodeRange, hot.nodeRange = split(side)
	light.data.Absorb(hot.data.ExtractRange(light.nodeRange))
	nw.send(light, stats.MsgTransferData, catData)

	movedIn := nw.forcedInsertAt(hot, light, side)
	nw.notifyRangeChange(hot)
	nw.notifyRangeChange(light)

	// Peers involved: light, the heir, hot, and every peer displaced by the
	// two restructurings.
	return 3 + movedOut + (movedIn - 1)
}

// notifyRangeChange counts the messages needed to refresh the cached range
// held by every peer that links to n (parent, children, adjacent peers and
// routing-table neighbours).
func (nw *Network) notifyRangeChange(n *Node) {
	targets := []*Node{n.parent, n.leftAdj, n.rightAdj}
	targets = append(targets, n.children...)
	for _, side := range []Side{Left, Right} {
		targets = append(targets, n.RoutingTable(side)...)
	}
	for _, t := range targets {
		if t != nil {
			nw.send(t, stats.MsgUpdateRange, catUpdate)
		}
	}
}

// findLightLeaf probes the routing-table neighbours of x (and their
// children) for a lightly loaded leaf that can be recruited. It returns nil
// when none qualifies.
func (nw *Network) findLightLeaf(x *Node) *Node {
	limit := nw.cfg.LoadBalance.underloadLimit()
	var best *Node
	consider := func(c *Node) {
		if c == nil || c == x || !c.alive || !c.IsLeaf() || c.pos.IsRoot() {
			return
		}
		nw.send(c, stats.MsgLoadProbe, catOther)
		nw.send(x, stats.MsgReply, catOther)
		if c.data.Len() >= limit {
			return
		}
		if best == nil || c.data.Len() < best.data.Len() {
			best = c
		}
	}
	for _, side := range []Side{Left, Right} {
		for _, m := range x.RoutingTable(side) {
			if m == nil {
				continue
			}
			consider(m)
			for _, c := range m.children {
				consider(c)
			}
		}
	}
	return best
}

// rejoinUnderOverloaded implements the second load-balancing scheme: the
// lightly loaded leaf hands its range and items to its adjacent peer,
// vacates its position (restructuring if the departure unbalances the tree)
// and re-joins as a child of the overloaded peer, taking over half of its
// range and items (again restructuring if needed). It returns the number of
// peers that changed position or exchanged data.
func (nw *Network) rejoinUnderOverloaded(x, light *Node) int {
	nw.send(light, stats.MsgLoadBalance, catOther)

	// The light peer passes its range and items to an adjacent peer
	// (preferring the right adjacent, as in the paper's example).
	heir := light.rightAdj
	if heir == nil || !heir.alive {
		heir = light.leftAdj
	}
	if heir == nil {
		return 0 // cannot vacate: no peer can absorb the range
	}
	return nw.vacateAndRejoin(light, x, heir, func(side Side) (keyspace.Range, keyspace.Range) {
		lower, upper, err := x.nodeRange.SplitHalf()
		if err != nil {
			// Overloaded peer's range is a single key: give the light peer
			// an empty slice at the boundary.
			if side == Left {
				return keyspace.NewRange(x.nodeRange.Lower, x.nodeRange.Lower), x.nodeRange
			}
			return keyspace.NewRange(x.nodeRange.Upper, x.nodeRange.Upper), x.nodeRange
		}
		if side == Left {
			return lower, upper
		}
		return upper, lower
	})
}
