package core

import (
	"fmt"

	"baton/internal/keyspace"
	"baton/internal/store"
)

// PeerID is the stable physical identity of a peer (the paper's "physical
// id", an IP address in a deployment). It never changes, while the peer's
// logical Position may change through replacement or restructuring.
type PeerID int64

// NoPeer is the zero PeerID, never assigned to a live peer.
const NoPeer PeerID = 0

// Node is one peer of the overlay together with the state the BATON protocol
// requires it to keep: its tree position, its key range and local data store,
// the parent / child / adjacent links and the two sideways routing tables.
//
// Node values are owned by a Network and must only be manipulated through
// Network methods.
type Node struct {
	id  PeerID
	pos Position

	parent     *Node
	leftChild  *Node
	rightChild *Node
	leftAdj    *Node
	rightAdj   *Node

	// leftRT[i] / rightRT[i] link to the node at the same level whose number
	// is smaller / greater by 2^i, or nil when that position is unoccupied
	// ("an entry is still made in the routing table, but marked as null").
	leftRT  []*Node
	rightRT []*Node

	nodeRange keyspace.Range
	data      *store.Store

	alive bool

	// msgsHandled counts every protocol message delivered to this peer; the
	// per-level access-load figure (8f) aggregates it.
	msgsHandled int64
}

func newNode(id PeerID, pos Position, r keyspace.Range) *Node {
	n := &Node{
		id:        id,
		pos:       pos,
		nodeRange: r,
		data:      store.New(),
		alive:     true,
	}
	n.resizeRoutingTables()
	return n
}

// resizeRoutingTables adjusts the routing table slices to the node's current
// level, preserving nothing (callers rebuild entries afterwards).
func (n *Node) resizeRoutingTables() {
	size := n.pos.RoutingTableSize()
	n.leftRT = make([]*Node, size)
	n.rightRT = make([]*Node, size)
}

// ID returns the peer's stable identity.
func (n *Node) ID() PeerID { return n.id }

// Position returns the peer's current tree position.
func (n *Node) Position() Position { return n.pos }

// Level returns the peer's current tree level.
func (n *Node) Level() int { return n.pos.Level }

// Range returns the key range the peer currently manages.
func (n *Node) Range() keyspace.Range { return n.nodeRange }

// DataCount returns the number of data items stored at the peer.
func (n *Node) DataCount() int { return n.data.Len() }

// Alive reports whether the peer is up. Failed peers remain in the Network's
// registry until their failure has been repaired.
func (n *Node) Alive() bool { return n.alive }

// MessagesHandled returns the number of protocol messages delivered to the
// peer since the network was created.
func (n *Node) MessagesHandled() int64 { return n.msgsHandled }

// IsLeaf reports whether the peer currently has no children.
func (n *Node) IsLeaf() bool { return n.leftChild == nil && n.rightChild == nil }

// Parent returns the parent peer, or nil for the root.
func (n *Node) Parent() *Node { return n.parent }

// Child returns the child on the given side, or nil.
func (n *Node) Child(side Side) *Node {
	if side == Left {
		return n.leftChild
	}
	return n.rightChild
}

// Adjacent returns the in-order neighbouring peer on the given side, or nil
// at the ends of the in-order chain.
func (n *Node) Adjacent(side Side) *Node {
	if side == Left {
		return n.leftAdj
	}
	return n.rightAdj
}

// RoutingTable returns the sideways routing table for the given side. The
// returned slice is the node's live table; callers must not modify it.
func (n *Node) RoutingTable(side Side) []*Node {
	if side == Left {
		return n.leftRT
	}
	return n.rightRT
}

// routingTableFull reports whether every entry of the side's routing table
// that corresponds to a valid position (within 1..2^level) is non-nil. This
// is the "Full(RoutingTable)" predicate of Algorithm 1 and Theorem 1.
func (n *Node) routingTableFull(side Side) bool {
	rt := n.RoutingTable(side)
	for i := range rt {
		if _, ok := n.pos.Neighbour(side, int64(1)<<uint(i)); !ok {
			continue // position outside the level: entry is always "valid"
		}
		if rt[i] == nil {
			return false
		}
	}
	return true
}

// bothRoutingTablesFull reports whether both sideways routing tables are
// full — the Theorem 1 precondition for accepting a child or for a leaf's
// neighbours when it wants to depart.
func (n *Node) bothRoutingTablesFull() bool {
	return n.routingTableFull(Left) && n.routingTableFull(Right)
}

// hasFreeChildSlot reports whether the node has fewer than two children.
func (n *Node) hasFreeChildSlot() bool { return n.leftChild == nil || n.rightChild == nil }

// freeChildSide returns a side whose child slot is empty, preferring the
// left slot, and whether any slot is free.
func (n *Node) freeChildSide() (Side, bool) {
	if n.leftChild == nil {
		return Left, true
	}
	if n.rightChild == nil {
		return Right, true
	}
	return Left, false
}

// setChild sets the child pointer on the given side.
func (n *Node) setChild(side Side, c *Node) {
	if side == Left {
		n.leftChild = c
	} else {
		n.rightChild = c
	}
}

// setAdjacent sets the adjacent pointer on the given side.
func (n *Node) setAdjacent(side Side, a *Node) {
	if side == Left {
		n.leftAdj = a
	} else {
		n.rightAdj = a
	}
}

// String renders a short description of the peer for debugging.
func (n *Node) String() string {
	return fmt.Sprintf("peer %d at %s range %s (%d items)", n.id, n.pos, n.nodeRange, n.data.Len())
}

// NodeInfo is a read-only snapshot of a peer's public state, returned by
// Network accessors so callers outside the package cannot mutate live
// protocol state.
type NodeInfo struct {
	ID        PeerID
	Position  Position
	Range     keyspace.Range
	DataCount int
	IsLeaf    bool
	Alive     bool
	Messages  int64
}

// info builds a snapshot of the node.
func (n *Node) info() NodeInfo {
	return NodeInfo{
		ID:        n.id,
		Position:  n.pos,
		Range:     n.nodeRange,
		DataCount: n.data.Len(),
		IsLeaf:    n.IsLeaf(),
		Alive:     n.alive,
		Messages:  n.msgsHandled,
	}
}
