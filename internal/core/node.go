package core

import (
	"fmt"

	"baton/internal/keyspace"
	"baton/internal/store"
)

// PeerID is the stable physical identity of a peer (the paper's "physical
// id", an IP address in a deployment). It never changes, while the peer's
// logical Position may change through replacement or restructuring.
type PeerID int64

// NoPeer is the zero PeerID, never assigned to a live peer.
const NoPeer PeerID = 0

// Node is one peer of the overlay together with the state the BATON protocol
// requires it to keep: its tree position, its key range and local data store,
// the parent / child / adjacent links and the two sideways routing tables.
// The node's link shape is fanout-parametric: m child slots and routing
// tables at the BATON* distances j*m^i; at the default fanout 2 this is
// exactly the binary protocol of the paper.
//
// Node values are owned by a Network and must only be manipulated through
// Network methods.
type Node struct {
	id     PeerID
	pos    Position
	fanout int

	parent *Node
	// children holds the fanout child slots in tree order; slot 0 is the
	// leftmost child and slot fanout-1 the rightmost.
	children []*Node
	leftAdj  *Node
	rightAdj *Node

	// leftRT[k] / rightRT[k] link to the node at the same level whose number
	// is smaller / greater by RTDistance(fanout, k), or nil when that
	// position is unoccupied ("an entry is still made in the routing table,
	// but marked as null").
	leftRT  []*Node
	rightRT []*Node

	nodeRange keyspace.Range
	data      *store.Store

	alive bool

	// msgsHandled counts every protocol message delivered to this peer; the
	// per-level access-load figure (8f) aggregates it.
	msgsHandled int64
}

func newNode(m int, id PeerID, pos Position, r keyspace.Range) *Node {
	n := &Node{
		id:        id,
		pos:       pos,
		fanout:    m,
		children:  make([]*Node, m),
		nodeRange: r,
		data:      store.New(),
		alive:     true,
	}
	n.resizeRoutingTables()
	return n
}

// resizeRoutingTables adjusts the routing table slices to the node's current
// level, preserving nothing (callers rebuild entries afterwards).
func (n *Node) resizeRoutingTables() {
	size := RoutingTableSizeIn(n.fanout, n.pos.Level)
	n.leftRT = make([]*Node, size)
	n.rightRT = make([]*Node, size)
}

// ID returns the peer's stable identity.
func (n *Node) ID() PeerID { return n.id }

// Position returns the peer's current tree position.
func (n *Node) Position() Position { return n.pos }

// Level returns the peer's current tree level.
func (n *Node) Level() int { return n.pos.Level }

// Range returns the key range the peer currently manages.
func (n *Node) Range() keyspace.Range { return n.nodeRange }

// DataCount returns the number of data items stored at the peer.
func (n *Node) DataCount() int { return n.data.Len() }

// Alive reports whether the peer is up. Failed peers remain in the Network's
// registry until their failure has been repaired.
func (n *Node) Alive() bool { return n.alive }

// MessagesHandled returns the number of protocol messages delivered to the
// peer since the network was created.
func (n *Node) MessagesHandled() int64 { return n.msgsHandled }

// IsLeaf reports whether the peer currently has no children.
func (n *Node) IsLeaf() bool {
	for _, c := range n.children {
		if c != nil {
			return false
		}
	}
	return true
}

// Parent returns the parent peer, or nil for the root.
func (n *Node) Parent() *Node { return n.parent }

// Child returns the child on the given side — the leftmost child slot for
// Left, the rightmost for Right — or nil.
func (n *Node) Child(side Side) *Node { return n.children[slotFor(n.fanout, side)] }

// ChildSlot returns the child in slot s (0-based), or nil.
func (n *Node) ChildSlot(s int) *Node { return n.children[s] }

// Fanout returns the node's tree fanout.
func (n *Node) Fanout() int { return n.fanout }

// Adjacent returns the in-order neighbouring peer on the given side, or nil
// at the ends of the in-order chain.
func (n *Node) Adjacent(side Side) *Node {
	if side == Left {
		return n.leftAdj
	}
	return n.rightAdj
}

// RoutingTable returns the sideways routing table for the given side. The
// returned slice is the node's live table; callers must not modify it.
func (n *Node) RoutingTable(side Side) []*Node {
	if side == Left {
		return n.leftRT
	}
	return n.rightRT
}

// routingTableFull reports whether every entry of the side's routing table
// that corresponds to a valid position (within 1..m^level) is non-nil. This
// is the "Full(RoutingTable)" predicate of Algorithm 1 and Theorem 1.
func (n *Node) routingTableFull(side Side) bool {
	rt := n.RoutingTable(side)
	for i := range rt {
		if _, ok := n.pos.NeighbourIn(n.fanout, side, RTDistance(n.fanout, i)); !ok {
			continue // position outside the level: entry is always "valid"
		}
		if rt[i] == nil {
			return false
		}
	}
	return true
}

// bothRoutingTablesFull reports whether both sideways routing tables are
// full — the Theorem 1 precondition for accepting a child or for a leaf's
// neighbours when it wants to depart.
func (n *Node) bothRoutingTablesFull() bool {
	return n.routingTableFull(Left) && n.routingTableFull(Right)
}

// hasFreeChildSlot reports whether any of the node's child slots is empty.
func (n *Node) hasFreeChildSlot() bool {
	for _, c := range n.children {
		if c == nil {
			return true
		}
	}
	return false
}

// freeChildSlot returns the lowest empty child slot (the leftmost — for
// fanout 2 this is the paper's "prefer the left child"), and whether any
// slot is free.
func (n *Node) freeChildSlot() (int, bool) {
	for s, c := range n.children {
		if c == nil {
			return s, true
		}
	}
	return 0, false
}

// freeChildSide returns the side on which a forced insert next to the node
// lands in a free slot: Left when the slot in-order immediately before the
// node can be free (the last leading slot, m-2, is empty), Right when only
// the last slot is empty. For fanout 2 this is "the left child side if the
// left child is free, else the right". ok is false when neither side has a
// free slot (a forced insert then restructures).
func (n *Node) freeChildSide() (Side, bool) {
	if n.children[n.fanout-2] == nil {
		return Left, true
	}
	if n.children[n.fanout-1] == nil {
		return Right, true
	}
	return Left, false
}

// setChild sets the child pointer in slot s.
func (n *Node) setChild(s int, c *Node) { n.children[s] = c }

// setAdjacent sets the adjacent pointer on the given side.
func (n *Node) setAdjacent(side Side, a *Node) {
	if side == Left {
		n.leftAdj = a
	} else {
		n.rightAdj = a
	}
}

// String renders a short description of the peer for debugging.
func (n *Node) String() string {
	return fmt.Sprintf("peer %d at %s range %s (%d items)", n.id, n.pos, n.nodeRange, n.data.Len())
}

// NodeInfo is a read-only snapshot of a peer's public state, returned by
// Network accessors so callers outside the package cannot mutate live
// protocol state.
type NodeInfo struct {
	ID        PeerID
	Position  Position
	Range     keyspace.Range
	DataCount int
	IsLeaf    bool
	Alive     bool
	Messages  int64
}

// info builds a snapshot of the node.
func (n *Node) info() NodeInfo {
	return NodeInfo{
		ID:        n.id,
		Position:  n.pos,
		Range:     n.nodeRange,
		DataCount: n.data.Len(),
		IsLeaf:    n.IsLeaf(),
		Alive:     n.alive,
		Messages:  n.msgsHandled,
	}
}
