package core

import (
	"fmt"

	"baton/internal/keyspace"
	"baton/internal/store"
)

// CheckInvariants verifies the structural invariants of the overlay and
// returns a descriptive error when any of them is violated. The checks cover
// every property the paper relies on:
//
//  1. Registry consistency: the position map and the peer registry agree,
//     every occupied position holds a live or failed-but-unrepaired peer,
//     and every ancestor of an occupied position is occupied.
//  2. Height balance (Definition 1): at every node the heights of its m
//     child subtrees differ by at most one (for m=2, the paper's binary
//     criterion verbatim).
//  3. Link correctness: parent, child and adjacent links match the position
//     map, and the in-order (adjacent) chain visits every peer exactly once.
//  4. Routing table correctness: entry k of a table points to the peer at
//     the same level at the BATON* distance (k%(m-1)+1)*m^(k/(m-1)) — for
//     m=2 the original 2^k — or is nil exactly when that position is
//     unoccupied.
//  5. Theorem 2: if a peer links to another peer in its routing tables, its
//     parent links to that peer's parent (unless they share the parent).
//  6. Range partitioning: the ranges of the peers, read in in-order
//     position order, tile the key domain contiguously without gaps or
//     overlaps, and every stored item lies inside its peer's range.
//
// Tests call CheckInvariants after every mutating operation; the experiment
// harness calls it at checkpoints.
func (nw *Network) CheckInvariants() error {
	if len(nw.nodes) == 0 {
		return fmt.Errorf("baton: network has no peers")
	}
	if err := nw.checkRegistry(); err != nil {
		return err
	}
	if err := nw.checkBalanceInvariant(); err != nil {
		return err
	}
	if err := nw.checkLinks(); err != nil {
		return err
	}
	if err := nw.checkRoutingTables(); err != nil {
		return err
	}
	if err := nw.checkTheorem2(); err != nil {
		return err
	}
	if err := nw.checkRanges(); err != nil {
		return err
	}
	return nil
}

func (nw *Network) checkRegistry() error {
	if len(nw.nodes) != len(nw.positions) {
		return fmt.Errorf("baton: %d peers registered but %d positions occupied", len(nw.nodes), len(nw.positions))
	}
	for pos, n := range nw.positions {
		if n.pos != pos {
			return fmt.Errorf("baton: peer %d registered at %v but believes it is at %v", n.id, pos, n.pos)
		}
		if got := nw.nodes[n.id]; got != n {
			return fmt.Errorf("baton: peer %d at %v is not the registered peer for its ID", n.id, pos)
		}
		if !pos.ValidIn(nw.fanout) {
			return fmt.Errorf("baton: invalid position %v occupied", pos)
		}
		if !pos.IsRoot() {
			if nw.positions[pos.ParentIn(nw.fanout)] == nil {
				return fmt.Errorf("baton: position %v occupied but its parent position is empty", pos)
			}
		}
	}
	if nw.root == nil || nw.positions[RootPosition] != nw.root {
		return fmt.Errorf("baton: root pointer does not match the occupant of the root position")
	}
	return nil
}

func (nw *Network) checkBalanceInvariant() error {
	if !nw.isBalanced() {
		return fmt.Errorf("baton: tree is not height-balanced")
	}
	return nil
}

func (nw *Network) checkLinks() error {
	inOrder := nw.inOrderNodes()
	for i, n := range inOrder {
		// Parent / child links against the position map.
		if n.pos.IsRoot() {
			if n.parent != nil {
				return fmt.Errorf("baton: root peer %d has a parent link", n.id)
			}
		} else if n.parent != nw.positions[n.pos.ParentIn(nw.fanout)] {
			return fmt.Errorf("baton: peer %d at %v has a wrong parent link", n.id, n.pos)
		}
		for s := 0; s < nw.fanout; s++ {
			if n.children[s] != nw.positions[n.pos.ChildIn(nw.fanout, s)] {
				return fmt.Errorf("baton: peer %d at %v has a wrong child link in slot %d", n.id, n.pos, s)
			}
		}
		// Adjacent links against the in-order sequence.
		var wantLeft, wantRight *Node
		if i > 0 {
			wantLeft = inOrder[i-1]
		}
		if i < len(inOrder)-1 {
			wantRight = inOrder[i+1]
		}
		if n.leftAdj != wantLeft {
			return fmt.Errorf("baton: peer %d at %v has a wrong left adjacent link", n.id, n.pos)
		}
		if n.rightAdj != wantRight {
			return fmt.Errorf("baton: peer %d at %v has a wrong right adjacent link", n.id, n.pos)
		}
	}
	return nil
}

func (nw *Network) checkRoutingTables() error {
	for _, n := range nw.nodes {
		for _, side := range []Side{Left, Right} {
			rt := n.RoutingTable(side)
			if want := RoutingTableSizeIn(nw.fanout, n.pos.Level); len(rt) != want {
				return fmt.Errorf("baton: peer %d at %v has a %s routing table of size %d, want %d", n.id, n.pos, side, len(rt), want)
			}
			for i := range rt {
				pos, valid := n.pos.NeighbourIn(nw.fanout, side, RTDistance(nw.fanout, i))
				var want *Node
				if valid {
					want = nw.positions[pos]
				}
				if rt[i] != want {
					return fmt.Errorf("baton: peer %d at %v %s routing table entry %d is wrong (have %v, want %v)",
						n.id, n.pos, side, i, describe(rt[i]), describe(want))
				}
			}
		}
	}
	return nil
}

func describe(n *Node) string {
	if n == nil {
		return "nil"
	}
	return fmt.Sprintf("peer %d at %v", n.id, n.pos)
}

// checkTheorem2 verifies the link-parent property of Theorem 2: if x links
// to y in its routing tables, then parent(x) links to parent(y) unless x and
// y share a parent.
func (nw *Network) checkTheorem2() error {
	for _, x := range nw.nodes {
		if x.pos.IsRoot() {
			continue
		}
		for _, side := range []Side{Left, Right} {
			for _, y := range x.RoutingTable(side) {
				if y == nil || y.pos.IsRoot() {
					continue
				}
				if x.pos.ParentIn(nw.fanout) == y.pos.ParentIn(nw.fanout) {
					continue
				}
				px := nw.positions[x.pos.ParentIn(nw.fanout)]
				py := nw.positions[y.pos.ParentIn(nw.fanout)]
				if px == nil || py == nil {
					return fmt.Errorf("baton: theorem 2: parent of %v or %v missing", x.pos, y.pos)
				}
				found := false
				for _, s := range []Side{Left, Right} {
					for _, entry := range px.RoutingTable(s) {
						if entry == py {
							found = true
						}
					}
				}
				if !found {
					return fmt.Errorf("baton: theorem 2 violated: %v links to %v but %v does not link to %v",
						x.pos, y.pos, px.pos, py.pos)
				}
			}
		}
	}
	return nil
}

func (nw *Network) checkRanges() error {
	inOrder := nw.inOrderNodes()
	parts := make([]keyspace.Range, 0, len(inOrder))
	for _, n := range inOrder {
		parts = append(parts, n.nodeRange)
	}
	if !keyspace.Covers(nw.domain, parts) {
		return fmt.Errorf("baton: peer ranges do not tile the domain %v: %v", nw.domain, parts)
	}
	for _, n := range nw.nodes {
		bad := false
		n.data.Ascend(func(it store.Item) bool {
			if !n.nodeRange.Contains(it.Key) {
				bad = true
				return false
			}
			return true
		})
		if bad {
			return fmt.Errorf("baton: peer %d at %v stores items outside its range %v", n.id, n.pos, n.nodeRange)
		}
	}
	return nil
}
