// Package stats collects the measurements the paper's evaluation reports:
// the number of messages each operation exchanges (broken down by message
// type), the access load handled by peers at each tree level, and simple
// distributions such as the number of peers displaced by one restructuring.
//
// All of Figure 8 of the paper is plotted from these quantities, so the
// experiment harness in internal/experiments works exclusively through this
// package.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// MsgType classifies a protocol message for accounting purposes. The names
// follow the message names used in the paper (JOIN, LEAVE, FINDREPLACEMENT,
// INSERT, ...).
type MsgType string

// Message types counted by the simulator.
const (
	MsgJoinRequest      MsgType = "JOIN"
	MsgLeaveRequest     MsgType = "LEAVE"
	MsgFindReplacement  MsgType = "FINDREPLACEMENT"
	MsgSearchExact      MsgType = "SEARCH_EXACT"
	MsgSearchRange      MsgType = "SEARCH_RANGE"
	MsgInsert           MsgType = "INSERT"
	MsgDelete           MsgType = "DELETE"
	MsgUpdateRouting    MsgType = "UPDATE_ROUTING"
	MsgUpdateAdjacent   MsgType = "UPDATE_ADJACENT"
	MsgUpdateRange      MsgType = "UPDATE_RANGE"
	MsgTransferData     MsgType = "TRANSFER_DATA"
	MsgLoadBalance      MsgType = "LOAD_BALANCE"
	MsgRestructure      MsgType = "RESTRUCTURE"
	MsgFailureRecovery  MsgType = "FAILURE_RECOVERY"
	MsgRedirect         MsgType = "REDIRECT"
	MsgLookup           MsgType = "LOOKUP" // Chord / multiway lookup hop
	MsgStabilize        MsgType = "STABILIZE"
	MsgLoadProbe        MsgType = "LOAD_PROBE"
	MsgReply            MsgType = "REPLY"
	MsgNotifyChild      MsgType = "NOTIFY_CHILD"
	MsgNotifyNeighbour  MsgType = "NOTIFY_NEIGHBOUR"
	MsgNotifyReplace    MsgType = "NOTIFY_REPLACE"
	MsgExpandRange      MsgType = "EXPAND_RANGE"
	MsgChildInfoRequest MsgType = "CHILD_INFO"
)

// OpKind classifies a complete logical operation (one user-level action).
type OpKind string

// Operation kinds measured in the evaluation.
const (
	OpJoin        OpKind = "join"
	OpLeave       OpKind = "leave"
	OpFailure     OpKind = "failure"
	OpInsert      OpKind = "insert"
	OpDelete      OpKind = "delete"
	OpSearchExact OpKind = "search_exact"
	OpSearchRange OpKind = "search_range"
	OpLoadBalance OpKind = "load_balance"
	OpRestructure OpKind = "restructure"
)

// OpCost is the per-operation accounting record returned by the simulator
// for each user-level operation.
type OpCost struct {
	Kind OpKind
	// Messages is the total number of messages exchanged by the operation.
	Messages int
	// LocateMessages is the subset of Messages spent locating the target
	// (the join position, the replacement node, the peer owning a key).
	// Figure 8(a) plots this portion for join/leave.
	LocateMessages int
	// UpdateMessages is the subset spent updating routing tables, adjacent
	// links and cached ranges. Figure 8(b) plots this portion.
	UpdateMessages int
	// DataMessages is the subset spent transferring data items.
	DataMessages int
	// ExtraMessages counts redirects caused by stale routing state
	// (Figure 8(i)).
	ExtraMessages int
	// NodesInvolved is the number of distinct peers that changed position
	// or content during the operation (Figure 8(h) for load balancing).
	NodesInvolved int
}

// Metrics accumulates counters for a whole simulation run. The zero value is
// ready to use.
type Metrics struct {
	byType     map[MsgType]int64
	totalMsgs  int64
	opCounts   map[OpKind]int64
	opMessages map[OpKind]int64
}

// NewMetrics returns an empty metrics accumulator.
func NewMetrics() *Metrics {
	return &Metrics{
		byType:     make(map[MsgType]int64),
		opCounts:   make(map[OpKind]int64),
		opMessages: make(map[OpKind]int64),
	}
}

// CountMessage records one message of the given type.
func (m *Metrics) CountMessage(t MsgType) {
	if m.byType == nil {
		m.byType = make(map[MsgType]int64)
	}
	m.byType[t]++
	m.totalMsgs++
}

// RecordOp records the completion of one operation with the given cost.
func (m *Metrics) RecordOp(c OpCost) {
	if m.opCounts == nil {
		m.opCounts = make(map[OpKind]int64)
		m.opMessages = make(map[OpKind]int64)
	}
	m.opCounts[c.Kind]++
	m.opMessages[c.Kind] += int64(c.Messages)
}

// TotalMessages returns the total number of messages counted.
func (m *Metrics) TotalMessages() int64 { return m.totalMsgs }

// MessagesByType returns a copy of the per-type message counters.
func (m *Metrics) MessagesByType() map[MsgType]int64 {
	out := make(map[MsgType]int64, len(m.byType))
	for k, v := range m.byType {
		out[k] = v
	}
	return out
}

// OpCount returns how many operations of the given kind completed.
func (m *Metrics) OpCount(kind OpKind) int64 { return m.opCounts[kind] }

// AvgMessagesPerOp returns the mean number of messages per operation of the
// given kind, or 0 when none were recorded.
func (m *Metrics) AvgMessagesPerOp(kind OpKind) float64 {
	n := m.opCounts[kind]
	if n == 0 {
		return 0
	}
	return float64(m.opMessages[kind]) / float64(n)
}

// Reset clears all counters.
func (m *Metrics) Reset() {
	m.byType = make(map[MsgType]int64)
	m.opCounts = make(map[OpKind]int64)
	m.opMessages = make(map[OpKind]int64)
	m.totalMsgs = 0
}

// String renders a compact human-readable summary, useful for debugging and
// the CLI's verbose mode.
func (m *Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total messages: %d\n", m.totalMsgs)
	types := make([]string, 0, len(m.byType))
	for t := range m.byType {
		types = append(types, string(t))
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Fprintf(&b, "  %-18s %d\n", t, m.byType[MsgType(t)])
	}
	return b.String()
}

// Accumulator tracks a stream of float64 samples and reports mean, min, max
// and standard deviation.
type Accumulator struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one sample.
func (a *Accumulator) Add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.n++
	a.sum += v
	a.sumSq += v * v
}

// AddInt records one integer sample.
func (a *Accumulator) AddInt(v int) { a.Add(float64(v)) }

// Count returns the number of samples recorded.
func (a *Accumulator) Count() int64 { return a.n }

// Mean returns the mean of the samples, or 0 when empty.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Min returns the smallest sample, or 0 when empty.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample, or 0 when empty.
func (a *Accumulator) Max() float64 { return a.max }

// Sum returns the sum of all samples.
func (a *Accumulator) Sum() float64 { return a.sum }

// StdDev returns the population standard deviation of the samples.
func (a *Accumulator) StdDev() float64 {
	if a.n == 0 {
		return 0
	}
	mean := a.Mean()
	variance := a.sumSq/float64(a.n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance)
}

// Histogram counts integer-valued samples in unit-width buckets. It backs
// Figure 8(h): the distribution of the number of nodes displaced by one load
// balancing operation. It is not safe for concurrent use — including
// concurrent read-only calls: Percentile and Buckets lazily (re)build the
// sorted-bucket cache. Latency is the concurrent sampler.
type Histogram struct {
	counts map[int]int64
	total  int64
	// sorted caches the ascending bucket values for Percentile and Buckets,
	// invalidated only when an Add opens a new bucket — incrementing an
	// existing bucket leaves the value set unchanged. Without the cache,
	// every Percentile call re-collected and re-sorted the whole map, which
	// made percentile reporting over a long run quadratic.
	sorted []int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{counts: make(map[int]int64)} }

// Add records one sample with the given integer value.
func (h *Histogram) Add(v int) {
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	if _, ok := h.counts[v]; !ok {
		h.sorted = nil
	}
	h.counts[v]++
	h.total++
}

// Count returns how many samples had exactly value v.
func (h *Histogram) Count(v int) int64 { return h.counts[v] }

// Total returns the total number of samples.
func (h *Histogram) Total() int64 { return h.total }

// Buckets returns the sorted distinct sample values. The returned slice is
// the caller's to keep.
func (h *Histogram) Buckets() []int {
	return append([]int(nil), h.sortedBuckets()...)
}

// sortedBuckets returns the cached ascending bucket values, rebuilding the
// cache if a new bucket invalidated it.
func (h *Histogram) sortedBuckets() []int {
	if h.sorted == nil {
		h.sorted = make([]int, 0, len(h.counts))
		for v := range h.counts {
			h.sorted = append(h.sorted, v)
		}
		sort.Ints(h.sorted)
	}
	return h.sorted
}

// Fraction returns the fraction of samples with value v.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// Mean returns the mean sample value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Percentile returns the smallest value v such that at least p (0..1) of the
// samples are <= v.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(math.Ceil(p * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum int64
	buckets := h.sortedBuckets()
	for _, v := range buckets {
		cum += h.counts[v]
		if cum >= target {
			return v
		}
	}
	return buckets[len(buckets)-1]
}

// LevelLoad tracks the number of messages handled by peers at each tree
// level, separately per operation kind. Figure 8(f) plots these counters
// normalised by the number of peers per level.
type LevelLoad struct {
	// perLevel[kind][level] = messages handled
	perLevel map[OpKind]map[int]int64
}

// NewLevelLoad returns an empty per-level load tracker.
func NewLevelLoad() *LevelLoad {
	return &LevelLoad{perLevel: make(map[OpKind]map[int]int64)}
}

// Record adds one handled message at the given tree level for the given
// operation kind.
func (l *LevelLoad) Record(kind OpKind, level int) {
	if l.perLevel == nil {
		l.perLevel = make(map[OpKind]map[int]int64)
	}
	m := l.perLevel[kind]
	if m == nil {
		m = make(map[int]int64)
		l.perLevel[kind] = m
	}
	m[level]++
}

// Load returns the number of messages handled at the given level for the
// given operation kind.
func (l *LevelLoad) Load(kind OpKind, level int) int64 { return l.perLevel[kind][level] }

// Levels returns the sorted set of levels that have recorded load for any
// operation kind.
func (l *LevelLoad) Levels() []int {
	seen := map[int]bool{}
	for _, m := range l.perLevel {
		for lvl := range m {
			seen[lvl] = true
		}
	}
	out := make([]int, 0, len(seen))
	for lvl := range seen {
		out = append(out, lvl)
	}
	sort.Ints(out)
	return out
}

// Reset clears all counters.
func (l *LevelLoad) Reset() { l.perLevel = make(map[OpKind]map[int]int64) }

// Latency collects individual latency samples from many goroutines and
// reports percentiles. The unit is whatever the caller records (the
// throughput driver records microseconds). Unlike Accumulator it keeps
// every sample, so exact percentiles are available; unlike Histogram it is
// safe for concurrent use, which is what a closed-loop multi-client
// workload needs. The zero value is ready to use.
type Latency struct {
	mu      sync.Mutex
	samples []float64
	sorted  []float64 // lazily built snapshot for percentiles, nil when stale
}

// Add records one sample. Safe for concurrent use.
func (l *Latency) Add(v float64) {
	l.mu.Lock()
	l.samples = append(l.samples, v)
	l.sorted = nil
	l.mu.Unlock()
}

// Count returns the number of samples recorded.
func (l *Latency) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Mean returns the mean sample, or 0 when empty.
func (l *Latency) Mean() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range l.samples {
		sum += v
	}
	return sum / float64(len(l.samples))
}

// Max returns the largest sample, or 0 when empty.
func (l *Latency) Max() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var max float64
	for _, v := range l.samples {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the smallest sample v such that at least p (0..1) of
// the samples are <= v, or 0 when empty. The sorted snapshot is cached, so
// reporting several percentiles of the same distribution sorts only once.
func (l *Latency) Percentile(p float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	if l.sorted == nil {
		l.sorted = append([]float64(nil), l.samples...)
		sort.Float64s(l.sorted)
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	idx := int(math.Ceil(p*float64(len(l.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return l.sorted[idx]
}

// Series is one plotted line of a figure: a label plus (x, y) points.
type Series struct {
	Label  string
	Points []Point
}

// Point is a single (x, y) measurement.
type Point struct {
	X float64
	Y float64
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Table renders a set of series sharing the same X values as an aligned
// text table, one row per X value and one column per series. It is the
// output format of cmd/batonsim.
func Table(xLabel string, series []Series) string {
	var b strings.Builder
	// Collect the union of X values in order of first appearance.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	fmt.Fprintf(&b, "%-14s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%-22s", s.Label)
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14s", trimFloat(x))
		for _, s := range series {
			y, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(&b, "%-22s", trimFloat(y))
			} else {
				fmt.Fprintf(&b, "%-22s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func lookup(s Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}
