package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestMetricsCounting(t *testing.T) {
	m := NewMetrics()
	m.CountMessage(MsgJoinRequest)
	m.CountMessage(MsgJoinRequest)
	m.CountMessage(MsgUpdateRouting)
	if m.TotalMessages() != 3 {
		t.Fatalf("TotalMessages = %d, want 3", m.TotalMessages())
	}
	by := m.MessagesByType()
	if by[MsgJoinRequest] != 2 || by[MsgUpdateRouting] != 1 {
		t.Fatalf("per-type counts wrong: %v", by)
	}
	// Mutating the copy must not affect the metrics.
	by[MsgJoinRequest] = 99
	if m.MessagesByType()[MsgJoinRequest] != 2 {
		t.Fatal("MessagesByType returned a live reference")
	}
}

func TestMetricsZeroValue(t *testing.T) {
	var m Metrics
	m.CountMessage(MsgInsert)
	m.RecordOp(OpCost{Kind: OpInsert, Messages: 4})
	if m.TotalMessages() != 1 || m.OpCount(OpInsert) != 1 {
		t.Fatal("zero-value Metrics should be usable")
	}
}

func TestMetricsOps(t *testing.T) {
	m := NewMetrics()
	m.RecordOp(OpCost{Kind: OpSearchExact, Messages: 5})
	m.RecordOp(OpCost{Kind: OpSearchExact, Messages: 7})
	m.RecordOp(OpCost{Kind: OpJoin, Messages: 10})
	if m.OpCount(OpSearchExact) != 2 {
		t.Fatalf("OpCount = %d", m.OpCount(OpSearchExact))
	}
	if got := m.AvgMessagesPerOp(OpSearchExact); got != 6 {
		t.Fatalf("AvgMessagesPerOp = %f, want 6", got)
	}
	if got := m.AvgMessagesPerOp(OpLeave); got != 0 {
		t.Fatalf("AvgMessagesPerOp for missing kind = %f, want 0", got)
	}
	m.Reset()
	if m.TotalMessages() != 0 || m.OpCount(OpJoin) != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestMetricsString(t *testing.T) {
	m := NewMetrics()
	m.CountMessage(MsgLeaveRequest)
	s := m.String()
	if !strings.Contains(s, "LEAVE") || !strings.Contains(s, "total messages: 1") {
		t.Fatalf("String output missing fields: %q", s)
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.StdDev() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(v)
	}
	if a.Count() != 8 {
		t.Fatalf("Count = %d", a.Count())
	}
	if a.Mean() != 5 {
		t.Fatalf("Mean = %f", a.Mean())
	}
	if math.Abs(a.StdDev()-2) > 1e-9 {
		t.Fatalf("StdDev = %f, want 2", a.StdDev())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %f/%f", a.Min(), a.Max())
	}
	if a.Sum() != 40 {
		t.Fatalf("Sum = %f", a.Sum())
	}
	a.AddInt(3)
	if a.Count() != 9 {
		t.Fatalf("AddInt did not record")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 0; i < 50; i++ {
		h.Add(1)
	}
	for i := 0; i < 30; i++ {
		h.Add(2)
	}
	for i := 0; i < 20; i++ {
		h.Add(5)
	}
	if h.Total() != 100 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(2) != 30 {
		t.Fatalf("Count(2) = %d", h.Count(2))
	}
	if got := h.Fraction(1); got != 0.5 {
		t.Fatalf("Fraction(1) = %f", got)
	}
	if got := h.Buckets(); len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Fatalf("Buckets = %v", got)
	}
	if got := h.Mean(); math.Abs(got-2.1) > 1e-9 {
		t.Fatalf("Mean = %f, want 2.1", got)
	}
	if got := h.Percentile(0.5); got != 1 {
		t.Fatalf("P50 = %d, want 1", got)
	}
	if got := h.Percentile(0.8); got != 2 {
		t.Fatalf("P80 = %d, want 2", got)
	}
	if got := h.Percentile(0.99); got != 5 {
		t.Fatalf("P99 = %d, want 5", got)
	}
	if got := h.Percentile(2); got != 5 {
		t.Fatalf("clamped percentile = %d, want 5", got)
	}
}

// TestHistogramSortedCacheInvalidation exercises the cached sorted-bucket
// path: percentiles queried between Adds must stay correct whether an Add
// reuses an existing bucket (cache kept) or opens a new one (cache
// invalidated), and Buckets must hand out a private copy the caller may
// mutate without corrupting the cache.
func TestHistogramSortedCacheInvalidation(t *testing.T) {
	h := NewHistogram()
	h.Add(10)
	h.Add(20)
	if got := h.Percentile(1); got != 20 {
		t.Fatalf("P100 = %d, want 20", got)
	}
	// Same-bucket Adds keep the cache valid; the distribution still shifts.
	for i := 0; i < 8; i++ {
		h.Add(10)
	}
	if got := h.Percentile(0.9); got != 10 {
		t.Fatalf("P90 after same-bucket adds = %d, want 10", got)
	}
	// A new bucket must invalidate the cache: 5 sorts before 10 and 20.
	h.Add(5)
	if got := h.Percentile(0.01); got != 5 {
		t.Fatalf("P1 after new low bucket = %d, want 5", got)
	}
	if got := h.Buckets(); len(got) != 3 || got[0] != 5 || got[1] != 10 || got[2] != 20 {
		t.Fatalf("Buckets = %v, want [5 10 20]", got)
	}
	// Mutating the returned slice must not corrupt later queries.
	b := h.Buckets()
	b[0] = 999
	if got := h.Percentile(0.01); got != 5 {
		t.Fatalf("P1 after caller mutation = %d, want 5 (Buckets leaked the cache)", got)
	}
	h.Add(30)
	if got := h.Percentile(1); got != 30 {
		t.Fatalf("P100 after new high bucket = %d, want 30", got)
	}
}

func TestLevelLoad(t *testing.T) {
	l := NewLevelLoad()
	l.Record(OpInsert, 0)
	l.Record(OpInsert, 3)
	l.Record(OpInsert, 3)
	l.Record(OpSearchExact, 5)
	if l.Load(OpInsert, 3) != 2 {
		t.Fatalf("Load = %d", l.Load(OpInsert, 3))
	}
	if l.Load(OpSearchExact, 3) != 0 {
		t.Fatalf("missing load should be zero")
	}
	levels := l.Levels()
	if len(levels) != 3 || levels[0] != 0 || levels[1] != 3 || levels[2] != 5 {
		t.Fatalf("Levels = %v", levels)
	}
	l.Reset()
	if len(l.Levels()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestSeriesAndTable(t *testing.T) {
	a := Series{Label: "baton"}
	a.Add(1000, 5.5)
	a.Add(2000, 6)
	b := Series{Label: "chord"}
	b.Add(1000, 7)
	out := Table("N", []Series{a, b})
	if !strings.Contains(out, "baton") || !strings.Contains(out, "chord") {
		t.Fatalf("table missing headers: %q", out)
	}
	if !strings.Contains(out, "5.500") {
		t.Fatalf("table missing float value: %q", out)
	}
	if !strings.Contains(out, "2000") {
		t.Fatalf("table missing x value: %q", out)
	}
	// The missing chord point at x=2000 renders as "-".
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "-") {
		t.Fatalf("missing point should render as '-': %q", last)
	}
}

func TestOpCostFields(t *testing.T) {
	c := OpCost{Kind: OpLoadBalance, Messages: 12, LocateMessages: 3, UpdateMessages: 6, DataMessages: 2, ExtraMessages: 1, NodesInvolved: 4}
	if c.LocateMessages+c.UpdateMessages+c.DataMessages+c.ExtraMessages > c.Messages {
		t.Fatal("component messages should not exceed total in this test fixture")
	}
}

func TestLatency(t *testing.T) {
	var l Latency
	if l.Count() != 0 || l.Mean() != 0 || l.Max() != 0 || l.Percentile(0.5) != 0 {
		t.Fatal("zero-value Latency should report zeros")
	}
	// Concurrent adds from many goroutines (run with -race).
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 125; i++ {
				l.Add(float64(i))
			}
		}(g)
	}
	wg.Wait()
	if l.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", l.Count())
	}
	if got := l.Mean(); got != 63 {
		t.Fatalf("mean = %f, want 63", got)
	}
	if got := l.Max(); got != 125 {
		t.Fatalf("max = %f, want 125", got)
	}
	if p50 := l.Percentile(0.5); p50 != 63 {
		t.Fatalf("p50 = %f, want 63", p50)
	}
	if p100 := l.Percentile(1); p100 != 125 {
		t.Fatalf("p100 = %f, want 125", p100)
	}
	if p0 := l.Percentile(0); p0 != 1 {
		t.Fatalf("p0 = %f, want 1", p0)
	}
	if l.Percentile(0.95) > l.Percentile(0.99) {
		t.Fatal("p95 above p99")
	}
}
