// Package experiments reproduces the evaluation of the BATON paper
// (Section V, Figure 8(a)–(i)). Each figure has one driver function that
// builds the necessary networks (BATON, and where the paper compares against
// them, CHORD and the multiway tree), runs the workload the paper describes,
// and returns the plotted series as structured data.
//
// The drivers are used by cmd/batonsim (which prints the series as tables)
// and by the repository-level benchmarks in bench_test.go (one benchmark per
// figure).
package experiments

import (
	"fmt"
	"math/rand"

	"baton/internal/chord"
	"baton/internal/core"
	"baton/internal/keyspace"
	"baton/internal/multiway"
	"baton/internal/stats"
	"baton/internal/workload"
)

// Options controls the scale of an experiment run.
type Options struct {
	// Sizes is the list of network sizes to sweep (the paper uses
	// 1,000–10,000 peers).
	Sizes []int
	// DataPerNode is the number of data items inserted per peer (the paper
	// uses 1,000).
	DataPerNode int
	// Queries is the number of exact-match and range queries per
	// measurement (the paper uses 1,000).
	Queries int
	// Churn is the number of join and leave operations measured per network
	// size.
	Churn int
	// Runs is the number of independent repetitions (different event
	// sequences) averaged together (the paper uses 10).
	Runs int
	// RangeSelectivity is the fraction of the key domain covered by each
	// range query.
	RangeSelectivity float64
	// LoadBalanceThreshold is the per-peer item threshold used by the load
	// balancing experiments (Figures 8(g) and 8(h)).
	LoadBalanceThreshold int
	// Seed seeds all random sources.
	Seed int64
}

// Default returns the paper-scale options: 1,000–10,000 peers, 1,000 items
// per peer and 1,000 queries, averaged over 10 runs. A full sweep at this
// scale takes tens of minutes.
func Default() Options {
	sizes := make([]int, 0, 10)
	for n := 1000; n <= 10000; n += 1000 {
		sizes = append(sizes, n)
	}
	return Options{
		Sizes:                sizes,
		DataPerNode:          1000,
		Queries:              1000,
		Churn:                200,
		Runs:                 10,
		RangeSelectivity:     0.001,
		LoadBalanceThreshold: 2000,
		Seed:                 1,
	}
}

// Quick returns reduced options suitable for tests and benchmarks: the same
// experiments at a scale that completes in seconds.
func Quick() Options {
	return Options{
		Sizes:                []int{200, 400, 600, 800},
		DataPerNode:          20,
		Queries:              150,
		Churn:                60,
		Runs:                 2,
		RangeSelectivity:     0.001,
		LoadBalanceThreshold: 60,
		Seed:                 1,
	}
}

func (o Options) normalised() Options {
	if len(o.Sizes) == 0 {
		o.Sizes = Quick().Sizes
	}
	if o.DataPerNode <= 0 {
		o.DataPerNode = 20
	}
	if o.Queries <= 0 {
		o.Queries = 100
	}
	if o.Churn <= 0 {
		o.Churn = 50
	}
	if o.Runs <= 0 {
		o.Runs = 1
	}
	if o.RangeSelectivity <= 0 {
		o.RangeSelectivity = 0.001
	}
	if o.LoadBalanceThreshold <= 0 {
		o.LoadBalanceThreshold = 60
	}
	return o
}

// Result is the outcome of one figure reproduction.
type Result struct {
	// ID is the figure identifier ("8a" .. "8i").
	ID string
	// Title is the figure caption from the paper.
	Title string
	// XLabel names the x axis.
	XLabel string
	// Series are the plotted lines.
	Series []stats.Series
	// Notes records qualitative observations checked against the paper.
	Notes []string
}

// Table renders the result as an aligned text table.
func (r Result) Table() string { return stats.Table(r.XLabel, r.Series) }

// Figures lists the identifiers of all reproducible figures in order.
func Figures() []string {
	return []string{"8a", "8b", "8c", "8d", "8e", "8f", "8g", "8h", "8i"}
}

// Run executes the driver for the given figure identifier.
func Run(id string, opt Options) (Result, error) {
	switch id {
	case "8a":
		return FigureA(opt), nil
	case "8b":
		return FigureB(opt), nil
	case "8c":
		return FigureC(opt), nil
	case "8d":
		return FigureD(opt), nil
	case "8e":
		return FigureE(opt), nil
	case "8f":
		return FigureF(opt), nil
	case "8g":
		return FigureG(opt), nil
	case "8h":
		return FigureH(opt), nil
	case "8i":
		return FigureI(opt), nil
	default:
		return Result{}, fmt.Errorf("experiments: unknown figure %q (valid: %v)", id, Figures())
	}
}

// All runs every figure driver.
func All(opt Options) []Result {
	out := make([]Result, 0, len(Figures()))
	for _, id := range Figures() {
		r, _ := Run(id, opt)
		out = append(out, r)
	}
	return out
}

// --- shared builders --------------------------------------------------------

// batonNetwork builds a BATON network of the given size through random joins
// and loads it with data drawn from the given distribution.
func batonNetwork(size int, seed int64, items int, dist workload.Distribution, lb core.LoadBalanceConfig) (*core.Network, []keyspace.Key) {
	nw := core.NewNetwork(core.Config{Seed: seed, LoadBalance: lb})
	rng := rand.New(rand.NewSource(seed))
	for nw.Size() < size {
		ids := nw.PeerIDs()
		via := ids[rng.Intn(len(ids))]
		if _, _, err := nw.Join(via); err != nil {
			panic(fmt.Sprintf("experiments: building BATON network: %v", err))
		}
	}
	gen := workload.NewGenerator(workload.Config{Distribution: dist, ZipfTheta: 1.0, Seed: seed + 1})
	keys := gen.Keys(items)
	for _, k := range keys {
		if _, err := nw.Insert(nw.RandomPeer(), k, nil); err != nil {
			panic(fmt.Sprintf("experiments: loading BATON network: %v", err))
		}
	}
	return nw, keys
}

// chordRing builds a Chord ring of the given size and loads it with data.
func chordRing(size int, seed int64, items int) (*chord.Ring, []keyspace.Key) {
	r := chord.NewRing(chord.Config{Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	for r.Size() < size {
		ids := r.NodeIDs()
		if _, _, err := r.Join(ids[rng.Intn(len(ids))]); err != nil {
			panic(fmt.Sprintf("experiments: building Chord ring: %v", err))
		}
	}
	gen := workload.NewGenerator(workload.Config{Seed: seed + 1})
	keys := gen.Keys(items)
	for _, k := range keys {
		if _, err := r.Insert(r.RandomNode(), k); err != nil {
			panic(fmt.Sprintf("experiments: loading Chord ring: %v", err))
		}
	}
	return r, keys
}

// multiwayTree builds a multiway tree of the given size and loads it with
// data.
func multiwayTree(size int, seed int64, items int) (*multiway.Tree, []keyspace.Key) {
	t := multiway.NewTree(multiway.Config{Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	for t.Size() < size {
		ids := t.PeerIDs()
		if _, _, err := t.Join(ids[rng.Intn(len(ids))]); err != nil {
			panic(fmt.Sprintf("experiments: building multiway tree: %v", err))
		}
	}
	gen := workload.NewGenerator(workload.Config{Seed: seed + 1})
	keys := gen.Keys(items)
	for _, k := range keys {
		if _, err := t.Insert(t.RandomPeer(), k, nil); err != nil {
			panic(fmt.Sprintf("experiments: loading multiway tree: %v", err))
		}
	}
	return t, keys
}

// averageOver runs fn for each run index and averages the returned values.
func averageOver(runs int, fn func(run int) float64) float64 {
	if runs <= 0 {
		runs = 1
	}
	total := 0.0
	for i := 0; i < runs; i++ {
		total += fn(i)
	}
	return total / float64(runs)
}
