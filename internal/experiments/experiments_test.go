package experiments

import (
	"strings"
	"testing"

	"baton/internal/stats"
)

// tinyOptions keeps the figure drivers fast enough for unit tests.
func tinyOptions() Options {
	return Options{
		Sizes:                []int{60, 120},
		DataPerNode:          10,
		Queries:              40,
		Churn:                20,
		Runs:                 1,
		RangeSelectivity:     0.001,
		LoadBalanceThreshold: 40,
		Seed:                 1,
	}
}

func TestOptionsNormalised(t *testing.T) {
	o := Options{}.normalised()
	if len(o.Sizes) == 0 || o.DataPerNode == 0 || o.Queries == 0 || o.Runs == 0 {
		t.Fatalf("normalised options still have zero fields: %+v", o)
	}
	if Default().DataPerNode != 1000 || len(Default().Sizes) != 10 {
		t.Fatal("Default options should match the paper's scale")
	}
	if Quick().DataPerNode >= Default().DataPerNode {
		t.Fatal("Quick options should be smaller than Default")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("9z", tinyOptions()); err == nil {
		t.Fatal("unknown figure should error")
	}
}

func TestFigures(t *testing.T) {
	ids := Figures()
	if len(ids) != 9 {
		t.Fatalf("expected 9 figures, got %d", len(ids))
	}
}

func TestFigureAJoinLeaveCosts(t *testing.T) {
	r := FigureA(tinyOptions())
	if r.ID != "8a" || len(r.Series) != 5 {
		t.Fatalf("unexpected result shape: %+v", r)
	}
	b := seriesByLabel(t, r, "baton join")
	c := seriesByLabel(t, r, "chord join")
	ml := seriesByLabel(t, r, "multiway leave")
	for i := range b.Points {
		if b.Points[i].Y <= 0 {
			t.Fatal("baton join cost should be positive")
		}
		if c.Points[i].Y <= b.Points[i].Y {
			t.Fatalf("at N=%v chord join location (%v) should exceed baton (%v)", b.Points[i].X, c.Points[i].Y, b.Points[i].Y)
		}
		if ml.Points[i].Y <= b.Points[i].Y {
			t.Fatalf("multiway leave (%v) should exceed baton join (%v)", ml.Points[i].Y, b.Points[i].Y)
		}
	}
	if !strings.Contains(r.Table(), "baton join") {
		t.Fatal("table rendering lost the series labels")
	}
}

func TestFigureBUpdateCosts(t *testing.T) {
	r := FigureB(tinyOptions())
	baton := seriesByLabel(t, r, "baton")
	chordS := seriesByLabel(t, r, "chord")
	for i := range baton.Points {
		if chordS.Points[i].Y <= baton.Points[i].Y {
			t.Fatalf("at N=%v chord update cost (%v) should exceed baton (%v)",
				baton.Points[i].X, chordS.Points[i].Y, baton.Points[i].Y)
		}
	}
}

func TestFigureCInsertDelete(t *testing.T) {
	r := FigureC(tinyOptions())
	ins := seriesByLabel(t, r, "baton insert")
	mw := seriesByLabel(t, r, "multiway insert")
	for i := range ins.Points {
		if ins.Points[i].Y <= 0 || ins.Points[i].Y > 30 {
			t.Fatalf("baton insert cost %v out of the logarithmic ballpark", ins.Points[i].Y)
		}
		if mw.Points[i].Y <= ins.Points[i].Y {
			t.Fatalf("multiway insert (%v) should exceed baton (%v)", mw.Points[i].Y, ins.Points[i].Y)
		}
	}
}

func TestFigureDExactMatch(t *testing.T) {
	r := FigureD(tinyOptions())
	baton := seriesByLabel(t, r, "baton")
	mw := seriesByLabel(t, r, "multiway")
	for i := range baton.Points {
		if baton.Points[i].Y <= 0 || baton.Points[i].Y > 30 {
			t.Fatalf("baton exact-match cost %v out of range", baton.Points[i].Y)
		}
		if mw.Points[i].Y <= baton.Points[i].Y {
			t.Fatalf("multiway search (%v) should exceed baton (%v)", mw.Points[i].Y, baton.Points[i].Y)
		}
	}
}

func TestFigureERange(t *testing.T) {
	r := FigureE(tinyOptions())
	baton := seriesByLabel(t, r, "baton")
	for _, p := range baton.Points {
		if p.Y <= 0 {
			t.Fatal("range query cost should be positive")
		}
	}
}

func TestFigureFAccessLoad(t *testing.T) {
	r := FigureF(tinyOptions())
	if len(r.Series) != 2 {
		t.Fatalf("expected insert and search series, got %d", len(r.Series))
	}
	search := seriesByLabel(t, r, "search load/peer")
	if len(search.Points) < 3 {
		t.Fatalf("expected load at several levels, got %d", len(search.Points))
	}
	// The root (level 0) must not dominate: its per-peer search load should
	// not exceed a small multiple of the per-peer load at the deepest level.
	root := search.Points[0].Y
	deepest := search.Points[len(search.Points)-1].Y
	if deepest > 0 && root > 5*deepest {
		t.Fatalf("root search load %v dominates deepest level %v", root, deepest)
	}
}

func TestFigureGLoadBalancing(t *testing.T) {
	opt := tinyOptions()
	opt.DataPerNode = 40
	r := FigureG(opt)
	uniform := seriesByLabel(t, r, "uniform data")
	skewed := seriesByLabel(t, r, "zipf(1.0) data")
	// Cumulative messages must be non-decreasing and skewed must end at or
	// above uniform.
	for i := 1; i < len(skewed.Points); i++ {
		if skewed.Points[i].Y < skewed.Points[i-1].Y {
			t.Fatal("cumulative load balancing messages must be non-decreasing")
		}
	}
	last := len(uniform.Points) - 1
	if skewed.Points[last].Y < uniform.Points[last].Y {
		t.Fatalf("skewed data should require at least as much load balancing (%v) as uniform (%v)",
			skewed.Points[last].Y, uniform.Points[last].Y)
	}
	if skewed.Points[last].Y == 0 {
		t.Fatal("skewed insertions should trigger load balancing")
	}
}

func TestFigureHShiftDistribution(t *testing.T) {
	opt := tinyOptions()
	opt.DataPerNode = 40
	r := FigureH(opt)
	fraction := seriesByLabel(t, r, "fraction")
	if len(fraction.Points) == 0 {
		t.Fatal("no load balancing operations recorded")
	}
	// The mass must be concentrated at small shift sizes.
	small := 0.0
	for _, p := range fraction.Points {
		if p.X <= 4 {
			small += p.Y
		}
	}
	if small < 0.5 {
		t.Fatalf("small shifts account for only %.2f of operations", small)
	}
}

func TestFigureINetworkDynamics(t *testing.T) {
	r := FigureI(tinyOptions())
	extra := seriesByLabel(t, r, "extra messages/op")
	if len(extra.Points) < 3 {
		t.Fatal("expected several batch sizes")
	}
	// Larger concurrent batches must not reduce the redirect overhead:
	// compare the first and last points.
	first := extra.Points[0].Y
	last := extra.Points[len(extra.Points)-1].Y
	if last < first {
		t.Fatalf("extra messages should grow with concurrency: first %v, last %v", first, last)
	}
	if last == 0 {
		t.Fatal("a large concurrent batch should cause some redirects")
	}
}

func seriesByLabel(t *testing.T, r Result, label string) stats.Series {
	t.Helper()
	for _, s := range r.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("series %q not found in figure %s", label, r.ID)
	return stats.Series{}
}
