package experiments

import (
	"fmt"
	"math/rand"

	"baton/internal/core"
	"baton/internal/stats"
	"baton/internal/workload"
)

// FigureA reproduces Figure 8(a): the average number of messages needed to
// find the node that accepts a join and the node that replaces a departing
// peer, as a function of the network size, for BATON, CHORD and the multiway
// tree.
func FigureA(opt Options) Result {
	opt = opt.normalised()
	series := map[string]*stats.Series{
		"baton join":     {Label: "baton join"},
		"baton leave":    {Label: "baton leave"},
		"chord join":     {Label: "chord join"},
		"multiway join":  {Label: "multiway join"},
		"multiway leave": {Label: "multiway leave"},
	}
	for _, size := range opt.Sizes {
		bj := averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*101
			nw, _ := batonNetwork(size, seed, 0, workload.Uniform, core.LoadBalanceConfig{})
			return measureBatonChurn(nw, opt.Churn, seed, true)
		})
		bl := averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*101
			nw, _ := batonNetwork(size, seed, 0, workload.Uniform, core.LoadBalanceConfig{})
			return measureBatonChurn(nw, opt.Churn, seed, false)
		})
		cj := averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*131
			ring, _ := chordRing(size, seed, 0)
			rng := rand.New(rand.NewSource(seed))
			var acc stats.Accumulator
			for i := 0; i < opt.Churn; i++ {
				ids := ring.NodeIDs()
				_, cost, err := ring.Join(ids[rng.Intn(len(ids))])
				if err != nil {
					panic(err)
				}
				acc.AddInt(cost.LocateMessages)
			}
			return acc.Mean()
		})
		mj, ml := multiwayChurnCosts(size, opt, opt.Seed)
		series["baton join"].Add(float64(size), bj)
		series["baton leave"].Add(float64(size), bl)
		series["chord join"].Add(float64(size), cj)
		series["multiway join"].Add(float64(size), mj)
		series["multiway leave"].Add(float64(size), ml)
	}
	return Result{
		ID:     "8a",
		Title:  "Cost of finding the join node and the replacement node",
		XLabel: "network size",
		Series: []stats.Series{
			*series["baton join"], *series["baton leave"], *series["chord join"],
			*series["multiway join"], *series["multiway leave"],
		},
		Notes: []string{
			"BATON join/leave location cost grows very slowly with N and stays below the tree height.",
			"CHORD join location cost grows with log N and exceeds BATON's.",
			"The multiway tree pays heavily on departures (it must contact every child).",
		},
	}
}

// measureBatonChurn measures the average locate cost of joins (joins=true)
// or leaves (joins=false) on an existing network.
func measureBatonChurn(nw *core.Network, ops int, seed int64, joins bool) float64 {
	rng := rand.New(rand.NewSource(seed + 7))
	var acc stats.Accumulator
	for i := 0; i < ops; i++ {
		if joins {
			ids := nw.PeerIDs()
			_, cost, err := nw.Join(ids[rng.Intn(len(ids))])
			if err != nil {
				panic(err)
			}
			acc.AddInt(cost.LocateMessages)
		} else {
			if nw.Size() <= 2 {
				break
			}
			ids := nw.PeerIDs()
			cost, err := nw.Leave(ids[rng.Intn(len(ids))])
			if err != nil {
				panic(err)
			}
			acc.AddInt(cost.LocateMessages)
		}
	}
	return acc.Mean()
}

// multiwayChurnCosts measures multiway join and leave locate costs.
func multiwayChurnCosts(size int, opt Options, seed int64) (joinCost, leaveCost float64) {
	joinCost = averageOver(opt.Runs, func(run int) float64 {
		t, _ := multiwayTree(size, seed+int64(run)*171, 0)
		rng := rand.New(rand.NewSource(seed + int64(run)))
		var acc stats.Accumulator
		for i := 0; i < opt.Churn; i++ {
			ids := t.PeerIDs()
			_, cost, err := t.Join(ids[rng.Intn(len(ids))])
			if err != nil {
				panic(err)
			}
			acc.AddInt(cost.LocateMessages)
		}
		return acc.Mean()
	})
	leaveCost = averageOver(opt.Runs, func(run int) float64 {
		t, _ := multiwayTree(size, seed+int64(run)*171, 0)
		rng := rand.New(rand.NewSource(seed + int64(run)))
		var acc stats.Accumulator
		for i := 0; i < opt.Churn && t.Size() > 2; i++ {
			ids := t.PeerIDs()
			cost, err := t.Leave(ids[rng.Intn(len(ids))])
			if err != nil {
				panic(err)
			}
			acc.AddInt(cost.LocateMessages)
		}
		return acc.Mean()
	})
	return joinCost, leaveCost
}

// FigureB reproduces Figure 8(b): the average number of messages needed to
// update routing tables after a join or a leave.
func FigureB(opt Options) Result {
	opt = opt.normalised()
	series := map[string]*stats.Series{
		"baton":    {Label: "baton"},
		"chord":    {Label: "chord"},
		"multiway": {Label: "multiway"},
	}
	for _, size := range opt.Sizes {
		b := averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*211
			nw, _ := batonNetwork(size, seed, 0, workload.Uniform, core.LoadBalanceConfig{})
			rng := rand.New(rand.NewSource(seed))
			var acc stats.Accumulator
			for i := 0; i < opt.Churn; i++ {
				ids := nw.PeerIDs()
				if i%2 == 0 {
					_, cost, err := nw.Join(ids[rng.Intn(len(ids))])
					if err != nil {
						panic(err)
					}
					acc.AddInt(cost.UpdateMessages)
				} else {
					cost, err := nw.Leave(ids[rng.Intn(len(ids))])
					if err != nil {
						panic(err)
					}
					acc.AddInt(cost.UpdateMessages)
				}
			}
			return acc.Mean()
		})
		c := averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*223
			ring, _ := chordRing(size, seed, 0)
			rng := rand.New(rand.NewSource(seed))
			var acc stats.Accumulator
			for i := 0; i < opt.Churn; i++ {
				ids := ring.NodeIDs()
				if i%2 == 0 {
					_, cost, err := ring.Join(ids[rng.Intn(len(ids))])
					if err != nil {
						panic(err)
					}
					acc.AddInt(cost.UpdateMessages)
				} else {
					cost, err := ring.Leave(ids[rng.Intn(len(ids))])
					if err != nil {
						panic(err)
					}
					acc.AddInt(cost.UpdateMessages)
				}
			}
			return acc.Mean()
		})
		m := averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*227
			t, _ := multiwayTree(size, seed, 0)
			rng := rand.New(rand.NewSource(seed))
			var acc stats.Accumulator
			for i := 0; i < opt.Churn; i++ {
				ids := t.PeerIDs()
				if i%2 == 0 {
					_, cost, err := t.Join(ids[rng.Intn(len(ids))])
					if err != nil {
						panic(err)
					}
					acc.AddInt(cost.UpdateMessages)
				} else {
					cost, err := t.Leave(ids[rng.Intn(len(ids))])
					if err != nil {
						panic(err)
					}
					acc.AddInt(cost.UpdateMessages)
				}
			}
			return acc.Mean()
		})
		series["baton"].Add(float64(size), b)
		series["chord"].Add(float64(size), c)
		series["multiway"].Add(float64(size), m)
	}
	return Result{
		ID:     "8b",
		Title:  "Cost of updating routing tables on join/leave",
		XLabel: "network size",
		Series: []stats.Series{*series["baton"], *series["chord"], *series["multiway"]},
		Notes: []string{
			"BATON updates O(log N) routing entries per membership change.",
			"CHORD pays O(log^2 N), clearly above BATON at every size.",
			"The multiway tree updates fewer entries but pays for it in search cost (Figure 8d).",
		},
	}
}

// FigureC reproduces Figure 8(c): the average number of messages per insert
// and delete operation.
func FigureC(opt Options) Result {
	opt = opt.normalised()
	ins := stats.Series{Label: "baton insert"}
	del := stats.Series{Label: "baton delete"}
	chordIns := stats.Series{Label: "chord insert"}
	mwIns := stats.Series{Label: "multiway insert"}
	for _, size := range opt.Sizes {
		i, d := 0.0, 0.0
		i = averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*301
			nw, keys := batonNetwork(size, seed, opt.DataPerNode*size/10, workload.Uniform, core.LoadBalanceConfig{})
			gen := workload.NewGenerator(workload.Config{Seed: seed + 5})
			var acc stats.Accumulator
			for q := 0; q < opt.Queries; q++ {
				cost, err := nw.Insert(nw.RandomPeer(), gen.NextKey(), nil)
				if err != nil {
					panic(err)
				}
				acc.AddInt(cost.Messages)
			}
			_ = keys
			return acc.Mean()
		})
		d = averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*307
			nw, keys := batonNetwork(size, seed, opt.DataPerNode*size/10, workload.Uniform, core.LoadBalanceConfig{})
			rng := rand.New(rand.NewSource(seed))
			var acc stats.Accumulator
			for q := 0; q < opt.Queries && len(keys) > 0; q++ {
				k := keys[rng.Intn(len(keys))]
				_, cost, err := nw.Delete(nw.RandomPeer(), k)
				if err != nil {
					panic(err)
				}
				acc.AddInt(cost.Messages)
			}
			return acc.Mean()
		})
		ci := averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*311
			ring, _ := chordRing(size, seed, 0)
			gen := workload.NewGenerator(workload.Config{Seed: seed + 5})
			var acc stats.Accumulator
			for q := 0; q < opt.Queries; q++ {
				cost, err := ring.Insert(ring.RandomNode(), gen.NextKey())
				if err != nil {
					panic(err)
				}
				acc.AddInt(cost.Messages)
			}
			return acc.Mean()
		})
		mi := averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*313
			t, _ := multiwayTree(size, seed, 0)
			gen := workload.NewGenerator(workload.Config{Seed: seed + 5})
			var acc stats.Accumulator
			for q := 0; q < opt.Queries; q++ {
				cost, err := t.Insert(t.RandomPeer(), gen.NextKey(), nil)
				if err != nil {
					panic(err)
				}
				acc.AddInt(cost.Messages)
			}
			return acc.Mean()
		})
		ins.Add(float64(size), i)
		del.Add(float64(size), d)
		chordIns.Add(float64(size), ci)
		mwIns.Add(float64(size), mi)
	}
	return Result{
		ID:     "8c",
		Title:  "Cost of insert and delete operations",
		XLabel: "network size",
		Series: []stats.Series{ins, del, chordIns, mwIns},
		Notes: []string{
			"BATON insert and delete cost O(log N) messages, slightly above CHORD (the 1.44 factor of the balanced-tree height) and far below the multiway tree.",
		},
	}
}

// FigureD reproduces Figure 8(d): the average number of messages per
// exact-match query for BATON, CHORD and the multiway tree.
func FigureD(opt Options) Result {
	opt = opt.normalised()
	baton := stats.Series{Label: "baton"}
	chordS := stats.Series{Label: "chord"}
	mw := stats.Series{Label: "multiway"}
	for _, size := range opt.Sizes {
		items := opt.DataPerNode * size / 10
		b := averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*401
			nw, keys := batonNetwork(size, seed, items, workload.Uniform, core.LoadBalanceConfig{})
			gen := workload.NewGenerator(workload.Config{Seed: seed + 9})
			rng := rand.New(rand.NewSource(seed))
			var acc stats.Accumulator
			for q := 0; q < opt.Queries; q++ {
				var k = gen.NextKey()
				if len(keys) > 0 && rng.Float64() < 0.8 {
					k = keys[rng.Intn(len(keys))]
				}
				_, _, cost, err := nw.SearchExact(nw.RandomPeer(), k)
				if err != nil {
					panic(err)
				}
				acc.AddInt(cost.Messages)
			}
			return acc.Mean()
		})
		c := averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*409
			ring, keys := chordRing(size, seed, items)
			rng := rand.New(rand.NewSource(seed))
			var acc stats.Accumulator
			for q := 0; q < opt.Queries && len(keys) > 0; q++ {
				_, cost, err := ring.Lookup(ring.RandomNode(), keys[rng.Intn(len(keys))])
				if err != nil {
					panic(err)
				}
				acc.AddInt(cost.Messages)
			}
			return acc.Mean()
		})
		m := averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*419
			t, keys := multiwayTree(size, seed, items)
			rng := rand.New(rand.NewSource(seed))
			var acc stats.Accumulator
			for q := 0; q < opt.Queries && len(keys) > 0; q++ {
				_, _, cost, err := t.SearchExact(t.RandomPeer(), keys[rng.Intn(len(keys))])
				if err != nil {
					panic(err)
				}
				acc.AddInt(cost.Messages)
			}
			return acc.Mean()
		})
		baton.Add(float64(size), b)
		chordS.Add(float64(size), c)
		mw.Add(float64(size), m)
	}
	return Result{
		ID:     "8d",
		Title:  "Cost of exact match queries",
		XLabel: "network size",
		Series: []stats.Series{baton, chordS, mw},
		Notes: []string{
			"BATON answers exact queries in O(log N) messages, close to CHORD; the multiway tree is substantially more expensive.",
		},
	}
}

// FigureE reproduces Figure 8(e): the average number of messages per range
// query. CHORD is omitted because hashing destroys key order (the paper
// makes the same point).
func FigureE(opt Options) Result {
	opt = opt.normalised()
	baton := stats.Series{Label: "baton"}
	mw := stats.Series{Label: "multiway"}
	for _, size := range opt.Sizes {
		items := opt.DataPerNode * size / 10
		b := averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*501
			nw, _ := batonNetwork(size, seed, items, workload.Uniform, core.LoadBalanceConfig{})
			gen := workload.NewGenerator(workload.Config{Seed: seed + 11})
			var acc stats.Accumulator
			for q := 0; q < opt.Queries; q++ {
				r := gen.RangeQuery(opt.RangeSelectivity)
				_, cost, err := nw.SearchRange(nw.RandomPeer(), r)
				if err != nil {
					panic(err)
				}
				acc.AddInt(cost.Messages)
			}
			return acc.Mean()
		})
		m := averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*509
			t, _ := multiwayTree(size, seed, items)
			gen := workload.NewGenerator(workload.Config{Seed: seed + 11})
			var acc stats.Accumulator
			for q := 0; q < opt.Queries; q++ {
				r := gen.RangeQuery(opt.RangeSelectivity)
				_, cost, err := t.SearchRange(t.RandomPeer(), r)
				if err != nil {
					panic(err)
				}
				acc.AddInt(cost.Messages)
			}
			return acc.Mean()
		})
		baton.Add(float64(size), b)
		mw.Add(float64(size), m)
	}
	return Result{
		ID:     "8e",
		Title:  "Cost of range queries",
		XLabel: "network size",
		Series: []stats.Series{baton, mw},
		Notes: []string{
			"Range queries cost O(log N + X) messages where X is the number of peers intersecting the range; CHORD cannot answer them at all.",
		},
	}
}

// FigureF reproduces Figure 8(f): the access load (messages handled per
// peer) at each tree level, separately for inserts and exact searches.
func FigureF(opt Options) Result {
	opt = opt.normalised()
	size := opt.Sizes[len(opt.Sizes)-1]
	insert := stats.Series{Label: "insert load/peer"}
	search := stats.Series{Label: "search load/peer"}
	inserts := opt.DataPerNode * size / 10
	if inserts < opt.Queries {
		inserts = opt.Queries
	}
	// Load balancing is part of the system under test: without it the
	// high-level peers keep the large ranges they were born with and attract
	// a proportionate share of the traffic; with it the ranges adapt to the
	// data and the per-peer load flattens (this is what Figure 8(f) shows).
	lb := core.LoadBalanceConfig{OverloadThreshold: maxInt(4, 2*inserts/size)}
	nw, keys := batonNetwork(size, opt.Seed, 0, workload.Uniform, lb)
	// Discard the load generated while building the network.
	nw.LevelLoad().Reset()
	gen := workload.NewGenerator(workload.Config{Seed: opt.Seed + 13})
	allKeys := keys
	for i := 0; i < inserts; i++ {
		k := gen.NextKey()
		allKeys = append(allKeys, k)
		if _, err := nw.Insert(nw.RandomPeer(), k, nil); err != nil {
			panic(err)
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	for q := 0; q < opt.Queries*4; q++ {
		k := allKeys[rng.Intn(len(allKeys))]
		if _, _, _, err := nw.SearchExact(nw.RandomPeer(), k); err != nil {
			panic(err)
		}
	}
	load := nw.LevelLoad()
	for _, level := range load.Levels() {
		peers := len(nw.PeerAtLevel(level))
		if peers == 0 {
			continue
		}
		insert.Add(float64(level), float64(load.Load(stats.OpInsert, level))/float64(peers))
		search.Add(float64(level), float64(load.Load(stats.OpSearchExact, level))/float64(peers))
	}
	return Result{
		ID:     "8f",
		Title:  "Access load of peers at different tree levels",
		XLabel: "tree level",
		Series: []stats.Series{insert, search},
		Notes: []string{
			"Insert load per peer is roughly constant across levels; search load is slightly higher at the deepest levels than at the root, so the root is not a hot spot.",
		},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FigureG reproduces Figure 8(g): the cumulative number of load balancing
// messages as insertions proceed, for uniform and Zipf(1.0)-skewed data.
func FigureG(opt Options) Result {
	opt = opt.normalised()
	size := opt.Sizes[0]
	totalInserts := opt.DataPerNode * size
	checkpoints := 10
	lb := core.LoadBalanceConfig{OverloadThreshold: opt.LoadBalanceThreshold}

	runOne := func(dist workload.Distribution, label string) stats.Series {
		s := stats.Series{Label: label}
		nw, _ := batonNetwork(size, opt.Seed, 0, workload.Uniform, lb)
		gen := workload.NewGenerator(workload.Config{Distribution: dist, ZipfTheta: 1.0, Seed: opt.Seed + 17})
		per := totalInserts / checkpoints
		for c := 1; c <= checkpoints; c++ {
			for i := 0; i < per; i++ {
				if _, err := nw.Insert(nw.RandomPeer(), gen.NextKey(), nil); err != nil {
					panic(err)
				}
			}
			s.Add(float64(c*per), float64(nw.LoadBalanceStats().Messages))
		}
		return s
	}

	uniform := runOne(workload.Uniform, "uniform data")
	skewed := runOne(workload.Zipf, "zipf(1.0) data")
	return Result{
		ID:     "8g",
		Title:  "Load balancing messages vs. number of insertions",
		XLabel: "insertions",
		Series: []stats.Series{uniform, skewed},
		Notes: []string{
			"Load balancing cost grows roughly linearly with the number of insertions and is far higher for skewed data, while remaining a small per-insertion overhead.",
		},
	}
}

// FigureH reproduces Figure 8(h): the distribution of the number of peers
// involved in a single load balancing operation (how far the forced
// insertion/deletion had to shift).
func FigureH(opt Options) Result {
	opt = opt.normalised()
	size := opt.Sizes[0]
	lb := core.LoadBalanceConfig{OverloadThreshold: opt.LoadBalanceThreshold}
	nw, _ := batonNetwork(size, opt.Seed, 0, workload.Uniform, lb)
	gen := workload.NewGenerator(workload.Config{Distribution: workload.Zipf, ZipfTheta: 1.0, Seed: opt.Seed + 19})
	totalInserts := opt.DataPerNode * size
	for i := 0; i < totalInserts; i++ {
		if _, err := nw.Insert(nw.RandomPeer(), gen.NextKey(), nil); err != nil {
			panic(err)
		}
	}
	hist := nw.LoadBalanceStats().ShiftSizes
	count := stats.Series{Label: "operations"}
	fraction := stats.Series{Label: "fraction"}
	for _, b := range hist.Buckets() {
		count.Add(float64(b), float64(hist.Count(b)))
		fraction.Add(float64(b), hist.Fraction(b))
	}
	return Result{
		ID:     "8h",
		Title:  "Number of peers involved in one load balancing operation",
		XLabel: "peers involved",
		Series: []stats.Series{count, fraction},
		Notes: []string{
			"The distribution decays steeply: almost all load balancing operations involve only a handful of peers, long shifts are rare (the paper calls the distribution 'strongly exponential').",
			fmt.Sprintf("observed %d load balancing operations, mean size %.2f", hist.Total(), hist.Mean()),
		},
	}
}

// FigureI reproduces Figure 8(i): the extra messages caused by concurrent
// joins and leaves. A batch of membership changes is executed against stale
// routing knowledge (the affected peers are marked "in flight"), queries are
// issued while the batch is in progress, and the redirect messages incurred
// are reported per operation.
func FigureI(opt Options) Result {
	opt = opt.normalised()
	size := opt.Sizes[0]
	extra := stats.Series{Label: "extra messages/op"}
	batchSizes := []int{4, 8, 16, 32, 64, 128}
	for _, batch := range batchSizes {
		v := averageOver(opt.Runs, func(run int) float64 {
			seed := opt.Seed + int64(run)*601
			nw, keys := batonNetwork(size, seed, opt.DataPerNode*size/10, workload.Uniform, core.LoadBalanceConfig{})
			rng := rand.New(rand.NewSource(seed))
			// Half the batch joins, half leaves; all of them are marked in
			// flight until the batch completes.
			var joined []core.PeerID
			for i := 0; i < batch/2; i++ {
				ids := nw.PeerIDs()
				id, _, err := nw.Join(ids[rng.Intn(len(ids))])
				if err != nil {
					panic(err)
				}
				nw.SetInflight(id, true)
				joined = append(joined, id)
			}
			var leaving []core.PeerID
			ids := nw.PeerIDs()
			for i := 0; i < batch/2; i++ {
				id := ids[rng.Intn(len(ids))]
				nw.SetInflight(id, true)
				leaving = append(leaving, id)
			}
			// Issue queries while the network's knowledge is stale.
			extraTotal := 0
			ops := 0
			for q := 0; q < opt.Queries && len(keys) > 0; q++ {
				k := keys[rng.Intn(len(keys))]
				_, _, cost, err := nw.SearchExact(nw.RandomPeer(), k)
				if err != nil {
					panic(err)
				}
				extraTotal += cost.ExtraMessages
				ops++
			}
			nw.ClearInflight()
			return float64(extraTotal) / float64(ops)
		})
		extra.Add(float64(batch), v)
	}
	return Result{
		ID:     "8i",
		Title:  "Extra messages caused by concurrent joins and leaves",
		XLabel: "concurrent joins/leaves",
		Series: []stats.Series{extra},
		Notes: []string{
			"The more peers join or leave at the same time, the more messages are forwarded through stale routing state and must be redirected.",
		},
	}
}
