// Package chord implements the Chord distributed hash table (Stoica et al.,
// SIGCOMM 2001) as a message-counting simulator. The BATON paper compares
// its join, routing-table-update and exact-match costs against Chord
// (Figures 8(a), 8(b) and 8(d)); the paper's authors used the original Chord
// simulator, which we replace with this from-scratch implementation of the
// same protocol: consistent hashing onto an m-bit identifier ring, finger
// tables, iterative find_successor routing, and the "aggressive" join of the
// original paper (init_finger_table plus update_others), whose routing-state
// maintenance costs O(log^2 N) messages.
//
// Chord has no native range-query support — hashing destroys key order —
// which is exactly the motivation for BATON; the experiment harness therefore
// only uses this package for the operations Chord supports.
package chord

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"baton/internal/keyspace"
	"baton/internal/stats"
)

// DefaultBits is the default width of the identifier space (m). 24 bits is
// ample for the paper's network sizes (up to 10,000 peers) while keeping
// finger tables realistically sized.
const DefaultBits = 24

// ErrUnknownNode is returned when an operation references a node that is not
// part of the ring.
var ErrUnknownNode = errors.New("chord: unknown node")

// NodeID is a Chord identifier (a point on the ring).
type NodeID uint64

// Config configures a simulated Chord ring.
type Config struct {
	// Bits is the identifier width m. Zero means DefaultBits.
	Bits int
	// Seed seeds identifier assignment.
	Seed int64
}

// node is one Chord peer.
type node struct {
	id      NodeID
	finger  []*node // finger[i] = successor(id + 2^i)
	succ    *node
	pred    *node
	keys    map[uint64]keyspace.Key // chord key hash -> original key
	handled int64
}

// Ring is an in-process simulation of a Chord ring with message counting.
// Like core.Network it executes one operation at a time.
type Ring struct {
	cfg     Config
	bits    int
	space   uint64
	rng     *rand.Rand
	metrics *stats.Metrics
	nodes   map[NodeID]*node
	sorted  []NodeID
	curOp   *stats.OpCost
}

// NewRing creates a ring with a single node.
func NewRing(cfg Config) *Ring {
	bits := cfg.Bits
	if bits <= 0 {
		bits = DefaultBits
	}
	r := &Ring{
		cfg:     cfg,
		bits:    bits,
		space:   uint64(1) << uint(bits),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		metrics: stats.NewMetrics(),
		nodes:   make(map[NodeID]*node),
	}
	first := r.newNode()
	first.succ = first
	first.pred = first
	for i := range first.finger {
		first.finger[i] = first
	}
	r.register(first)
	return r
}

func (r *Ring) newNode() *node {
	for {
		id := NodeID(r.rng.Int63n(int64(r.space)))
		if _, taken := r.nodes[id]; taken {
			continue
		}
		return &node{
			id:     id,
			finger: make([]*node, r.bits),
			keys:   make(map[uint64]keyspace.Key),
		}
	}
}

func (r *Ring) register(n *node) {
	r.nodes[n.id] = n
	r.sorted = append(r.sorted, n.id)
	sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i] < r.sorted[j] })
}

func (r *Ring) unregister(n *node) {
	delete(r.nodes, n.id)
	for i, id := range r.sorted {
		if id == n.id {
			r.sorted = append(r.sorted[:i], r.sorted[i+1:]...)
			break
		}
	}
}

// Size returns the number of nodes in the ring.
func (r *Ring) Size() int { return len(r.nodes) }

// Metrics returns the ring's message counters.
func (r *Ring) Metrics() *stats.Metrics { return r.metrics }

// NodeIDs returns the identifiers of all nodes, sorted.
func (r *Ring) NodeIDs() []NodeID {
	out := make([]NodeID, len(r.sorted))
	copy(out, r.sorted)
	return out
}

// RandomNode returns a uniformly random node identifier.
func (r *Ring) RandomNode() NodeID {
	return r.sorted[r.rng.Intn(len(r.sorted))]
}

func (r *Ring) beginOp(kind stats.OpKind) { r.curOp = &stats.OpCost{Kind: kind} }

func (r *Ring) endOp() stats.OpCost {
	cost := *r.curOp
	r.metrics.RecordOp(cost)
	r.curOp = nil
	return cost
}

func (r *Ring) send(dst *node, t stats.MsgType, locate bool) {
	r.metrics.CountMessage(t)
	if dst != nil {
		dst.handled++
	}
	if r.curOp == nil {
		return
	}
	r.curOp.Messages++
	if locate {
		r.curOp.LocateMessages++
	} else {
		r.curOp.UpdateMessages++
	}
}

// hashKey maps a data key onto the identifier ring. A multiplicative hash is
// sufficient for the simulation (the original system uses SHA-1).
func (r *Ring) hashKey(k keyspace.Key) uint64 {
	x := uint64(k) * 0x9E3779B97F4A7C15
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return x % r.space
}

// inIntervalOpen reports whether x lies in the open ring interval (a, b).
func inIntervalOpen(x, a, b uint64, space uint64) bool {
	if a == b {
		return x != a // the whole ring except a
	}
	if a < b {
		return x > a && x < b
	}
	return x > a || x < b
}

// inIntervalHalfOpen reports whether x lies in the ring interval (a, b].
func inIntervalHalfOpen(x, a, b uint64, space uint64) bool {
	if a == b {
		return true
	}
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b
}

// closestPrecedingFinger returns n's finger that most closely precedes id.
func (r *Ring) closestPrecedingFinger(n *node, id uint64) *node {
	for i := r.bits - 1; i >= 0; i-- {
		f := n.finger[i]
		if f != nil && inIntervalOpen(uint64(f.id), uint64(n.id), id, r.space) {
			return f
		}
	}
	return n
}

// findPredecessor walks the ring from start towards the node that precedes
// id, counting one message per remote hop.
func (r *Ring) findPredecessor(start *node, id uint64) *node {
	n := start
	for steps := 0; steps < 4*r.bits+len(r.nodes); steps++ {
		if inIntervalHalfOpen(id, uint64(n.id), uint64(n.succ.id), r.space) {
			return n
		}
		next := r.closestPrecedingFinger(n, id)
		if next == n {
			next = n.succ
		}
		r.send(next, stats.MsgLookup, true)
		n = next
	}
	return n
}

// findSuccessor returns the node responsible for id, starting from start.
func (r *Ring) findSuccessor(start *node, id uint64) *node {
	p := r.findPredecessor(start, id)
	r.send(p.succ, stats.MsgLookup, true)
	return p.succ
}

// Join adds a new node to the ring, contacting the existing node via. It
// follows the original paper's join: locate the successor (O(log N)
// messages, the Figure 8(a) quantity for Chord), initialise the finger table
// and move keys, and run update_others so existing nodes repair their finger
// tables (O(log^2 N) messages in total, the Figure 8(b) quantity).
func (r *Ring) Join(via NodeID) (NodeID, stats.OpCost, error) {
	start, ok := r.nodes[via]
	if !ok {
		return 0, stats.OpCost{}, fmt.Errorf("%w: %d", ErrUnknownNode, via)
	}
	r.beginOp(stats.OpJoin)
	n := r.newNode()

	// Locate the successor of the new node's identifier.
	r.send(start, stats.MsgJoinRequest, true)
	succ := r.findSuccessor(start, uint64(n.id))

	// init_finger_table with the optimisation from the original paper: only
	// issue a lookup when the previous finger does not already cover the
	// next finger start. A finger start that falls between the new node's
	// predecessor and the new node itself is owned by the new node.
	n.succ = succ
	n.pred = succ.pred
	n.finger[0] = succ
	for i := 1; i < r.bits; i++ {
		startID := (uint64(n.id) + (uint64(1) << uint(i))) % r.space
		if inIntervalHalfOpen(startID, uint64(n.pred.id), uint64(n.id), r.space) {
			n.finger[i] = n
			continue
		}
		if prev := n.finger[i-1]; prev != n && inIntervalHalfOpen(startID, uint64(n.id), uint64(prev.id), r.space) {
			n.finger[i] = prev
			continue
		}
		n.finger[i] = r.findSuccessorCounted(start, startID, false)
	}
	// Splice into the ring and move the keys in (pred, n] from the
	// successor.
	succ.pred.succ = n
	succ.pred = n
	r.send(succ, stats.MsgUpdateRouting, false)
	r.send(n.pred, stats.MsgUpdateRouting, false)
	moved := 0
	for h, k := range succ.keys {
		if inIntervalHalfOpen(h, uint64(n.pred.id), uint64(n.id), r.space) {
			n.keys[h] = k
			delete(succ.keys, h)
			moved++
		}
	}
	if moved > 0 {
		r.send(n, stats.MsgTransferData, false)
	}

	// update_others: existing nodes whose finger tables should now point at
	// n are found and updated; updates propagate to predecessors while they
	// remain applicable. The +1 avoids the classic off-by-one when a node
	// sits exactly at n - 2^i.
	for i := 0; i < r.bits; i++ {
		target := (uint64(n.id) + r.space - (uint64(1) << uint(i)) + 1) % r.space
		p := r.findPredecessorCounted(start, target, false)
		r.updateFingerTable(p, n, i)
	}

	r.register(n)
	cost := r.endOp()
	return n.id, cost, nil
}

// findSuccessorCounted is findSuccessor with messages attributed to either
// the locate or the update component.
func (r *Ring) findSuccessorCounted(start *node, id uint64, locate bool) *node {
	p := r.findPredecessorCounted(start, id, locate)
	r.send(p.succ, stats.MsgLookup, locate)
	return p.succ
}

func (r *Ring) findPredecessorCounted(start *node, id uint64, locate bool) *node {
	n := start
	for steps := 0; steps < 4*r.bits+len(r.nodes); steps++ {
		if inIntervalHalfOpen(id, uint64(n.id), uint64(n.succ.id), r.space) {
			return n
		}
		next := r.closestPrecedingFinger(n, id)
		if next == n {
			next = n.succ
		}
		r.send(next, stats.MsgLookup, locate)
		n = next
	}
	return n
}

// updateFingerTable installs s as the i-th finger of p if s is a better
// successor for p's i-th finger start than the current entry, and propagates
// to p's predecessor as in the original algorithm.
func (r *Ring) updateFingerTable(p *node, s *node, i int) {
	for steps := 0; steps < len(r.nodes)+1; steps++ {
		if p == s {
			return
		}
		startID := (uint64(p.id) + (uint64(1) << uint(i))) % r.space
		f := p.finger[i]
		// s improves the entry when it lies in [startID, current finger):
		// it is then the first node reachable from the finger start.
		improves := f == nil ||
			uint64(s.id) == startID ||
			(uint64(f.id) != startID && inIntervalOpen(uint64(s.id), (startID+r.space-1)%r.space, uint64(f.id), r.space))
		if improves {
			p.finger[i] = s
			if i == 0 {
				p.succ = s
			}
			r.send(p, stats.MsgUpdateRouting, false)
			p = p.pred
			continue
		}
		return
	}
}

// Leave removes the node from the ring: its keys move to its successor, the
// ring pointers are re-spliced, and the finger tables of the nodes that
// pointed at it are repaired (the Chord-side counterpart of BATON's
// departure, again O(log^2 N) update messages).
func (r *Ring) Leave(id NodeID) (stats.OpCost, error) {
	n, ok := r.nodes[id]
	if !ok {
		return stats.OpCost{}, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if len(r.nodes) == 1 {
		return stats.OpCost{}, errors.New("chord: cannot remove the last node")
	}
	r.beginOp(stats.OpLeave)

	// Transfer keys to the successor.
	for h, k := range n.keys {
		n.succ.keys[h] = k
	}
	if len(n.keys) > 0 {
		r.send(n.succ, stats.MsgTransferData, false)
	}

	// Splice out of the ring.
	n.pred.succ = n.succ
	n.succ.pred = n.pred
	r.send(n.pred, stats.MsgUpdateRouting, false)
	r.send(n.succ, stats.MsgUpdateRouting, false)
	r.unregister(n)

	// Repair the finger tables that pointed at the departed node.
	for i := 0; i < r.bits; i++ {
		target := (uint64(n.id) + r.space - (uint64(1) << uint(i))) % r.space
		p := r.findPredecessorCounted(n.pred, target, true)
		r.replaceFinger(p, n, n.succ, i)
	}
	// Also repair any remaining stale references (cheap in the simulator,
	// counted as one message per fixed entry).
	for _, m := range r.nodes {
		for i, f := range m.finger {
			if f == n {
				m.finger[i] = n.succ
				r.send(m, stats.MsgUpdateRouting, false)
			}
		}
		if m.succ == n {
			m.succ = n.succ
		}
		if m.pred == n {
			m.pred = n.pred
		}
	}
	return r.endOp(), nil
}

func (r *Ring) replaceFinger(p *node, old, repl *node, i int) {
	for steps := 0; steps < len(r.nodes)+1; steps++ {
		if p.finger[i] == old {
			p.finger[i] = repl
			r.send(p, stats.MsgUpdateRouting, false)
			p = p.pred
			continue
		}
		return
	}
}

// Insert stores a key in the ring (the value itself is irrelevant to the
// message counts), routing from the node via.
func (r *Ring) Insert(via NodeID, key keyspace.Key) (stats.OpCost, error) {
	start, ok := r.nodes[via]
	if !ok {
		return stats.OpCost{}, fmt.Errorf("%w: %d", ErrUnknownNode, via)
	}
	r.beginOp(stats.OpInsert)
	h := r.hashKey(key)
	owner := r.findSuccessor(start, h)
	owner.keys[h] = key
	return r.endOp(), nil
}

// Lookup routes an exact-match query for key from the node via and reports
// whether the key is stored.
func (r *Ring) Lookup(via NodeID, key keyspace.Key) (bool, stats.OpCost, error) {
	start, ok := r.nodes[via]
	if !ok {
		return false, stats.OpCost{}, fmt.Errorf("%w: %d", ErrUnknownNode, via)
	}
	r.beginOp(stats.OpSearchExact)
	h := r.hashKey(key)
	owner := r.findSuccessor(start, h)
	_, found := owner.keys[h]
	return found, r.endOp(), nil
}

// Delete removes a key from the ring, reporting whether it was present.
func (r *Ring) Delete(via NodeID, key keyspace.Key) (bool, stats.OpCost, error) {
	start, ok := r.nodes[via]
	if !ok {
		return false, stats.OpCost{}, fmt.Errorf("%w: %d", ErrUnknownNode, via)
	}
	r.beginOp(stats.OpDelete)
	h := r.hashKey(key)
	owner := r.findSuccessor(start, h)
	_, found := owner.keys[h]
	delete(owner.keys, h)
	r.endOp()
	cost := stats.OpCost{Kind: stats.OpDelete}
	return found, cost, nil
}

// CheckInvariants verifies the ring structure: successor/predecessor chains
// are consistent and every finger entry points at the true successor of its
// start point.
func (r *Ring) CheckInvariants() error {
	if len(r.nodes) == 0 {
		return errors.New("chord: empty ring")
	}
	// Walk the successor chain and ensure it visits every node exactly once.
	start := r.nodes[r.sorted[0]]
	seen := map[NodeID]bool{}
	n := start
	for i := 0; i < len(r.nodes); i++ {
		if seen[n.id] {
			return fmt.Errorf("chord: successor chain revisits node %d", n.id)
		}
		seen[n.id] = true
		if n.succ.pred != n {
			return fmt.Errorf("chord: node %d successor %d does not point back", n.id, n.succ.id)
		}
		n = n.succ
	}
	if n != start {
		return errors.New("chord: successor chain does not close")
	}
	if len(seen) != len(r.nodes) {
		return fmt.Errorf("chord: successor chain visited %d of %d nodes", len(seen), len(r.nodes))
	}
	// Finger correctness.
	for _, m := range r.nodes {
		for i, f := range m.finger {
			if f == nil {
				return fmt.Errorf("chord: node %d finger %d is nil", m.id, i)
			}
			startID := (uint64(m.id) + (uint64(1) << uint(i))) % r.space
			want := r.trueSuccessor(startID)
			if f != want {
				return fmt.Errorf("chord: node %d finger %d = %d, want %d", m.id, i, f.id, want.id)
			}
		}
	}
	return nil
}

// trueSuccessor returns the node that owns identifier id according to the
// global view (used only by the invariant checker and tests).
func (r *Ring) trueSuccessor(id uint64) *node {
	idx := sort.Search(len(r.sorted), func(i int) bool { return uint64(r.sorted[i]) >= id })
	if idx == len(r.sorted) {
		idx = 0
	}
	return r.nodes[r.sorted[idx]]
}

// KeyCount returns the total number of keys stored in the ring.
func (r *Ring) KeyCount() int {
	total := 0
	for _, n := range r.nodes {
		total += len(n.keys)
	}
	return total
}
