package chord

import (
	"math/rand"
	"testing"

	"baton/internal/keyspace"
	"baton/internal/stats"
)

func buildRing(t testing.TB, n int, seed int64) *Ring {
	t.Helper()
	r := NewRing(Config{Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	for r.Size() < n {
		ids := r.NodeIDs()
		if _, _, err := r.Join(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatalf("join at size %d: %v", r.Size(), err)
		}
	}
	return r
}

func TestNewRing(t *testing.T) {
	r := NewRing(Config{Seed: 1})
	if r.Size() != 1 {
		t.Fatalf("size = %d", r.Size())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJoinMaintainsInvariants(t *testing.T) {
	for _, size := range []int{2, 5, 16, 50, 128} {
		r := buildRing(t, size, int64(size))
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestJoinUnknownNode(t *testing.T) {
	r := NewRing(Config{Seed: 1})
	if _, _, err := r.Join(NodeID(1 << 40)); err == nil {
		t.Fatal("join via unknown node should error")
	}
}

func TestInsertAndLookup(t *testing.T) {
	r := buildRing(t, 40, 7)
	rng := rand.New(rand.NewSource(7))
	keys := make([]keyspace.Key, 0, 300)
	for i := 0; i < 300; i++ {
		k := keyspace.Key(rng.Int63n(1_000_000_000))
		keys = append(keys, k)
		if _, err := r.Insert(r.RandomNode(), k); err != nil {
			t.Fatal(err)
		}
	}
	if r.KeyCount() == 0 {
		t.Fatal("no keys stored")
	}
	for _, k := range keys {
		found, cost, err := r.Lookup(r.RandomNode(), k)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("key %d not found", k)
		}
		if cost.Messages > 4*DefaultBits {
			t.Fatalf("lookup cost %d unreasonably high", cost.Messages)
		}
	}
	// A key that was never inserted is not found.
	found, _, err := r.Lookup(r.RandomNode(), keyspace.Key(999_999_999_999))
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("phantom key found")
	}
}

func TestDeleteKey(t *testing.T) {
	r := buildRing(t, 20, 11)
	if _, err := r.Insert(r.RandomNode(), 12345); err != nil {
		t.Fatal(err)
	}
	existed, _, err := r.Delete(r.RandomNode(), 12345)
	if err != nil || !existed {
		t.Fatalf("delete existing key: existed=%v err=%v", existed, err)
	}
	found, _, _ := r.Lookup(r.RandomNode(), 12345)
	if found {
		t.Fatal("key still present after delete")
	}
	existed, _, _ = r.Delete(r.RandomNode(), 12345)
	if existed {
		t.Fatal("double delete should report absence")
	}
}

func TestLeaveMaintainsInvariantsAndKeys(t *testing.T) {
	r := buildRing(t, 60, 13)
	rng := rand.New(rand.NewSource(13))
	keys := make([]keyspace.Key, 0, 200)
	for i := 0; i < 200; i++ {
		k := keyspace.Key(rng.Int63n(1_000_000_000))
		keys = append(keys, k)
		if _, err := r.Insert(r.RandomNode(), k); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		ids := r.NodeIDs()
		if _, err := r.Leave(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("after leave %d: %v", i, err)
		}
	}
	for _, k := range keys {
		found, _, err := r.Lookup(r.RandomNode(), k)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("key %d lost after departures", k)
		}
	}
	// The last node cannot leave.
	for r.Size() > 1 {
		if _, err := r.Leave(r.NodeIDs()[0]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Leave(r.NodeIDs()[0]); err == nil {
		t.Fatal("removing the last node should error")
	}
}

func TestJoinUpdateCostGrowsFasterThanLookup(t *testing.T) {
	// The defining comparison of Figure 8(b): Chord's routing-table update
	// cost per join (O(log^2 N)) is a multiple of its lookup cost
	// (O(log N)).
	r := buildRing(t, 200, 17)
	rng := rand.New(rand.NewSource(17))
	var joinUpdate, lookupCost stats.Accumulator
	for i := 0; i < 30; i++ {
		ids := r.NodeIDs()
		_, cost, err := r.Join(ids[rng.Intn(len(ids))])
		if err != nil {
			t.Fatal(err)
		}
		joinUpdate.AddInt(cost.UpdateMessages)
	}
	for i := 0; i < 100; i++ {
		_, cost, err := r.Lookup(r.RandomNode(), keyspace.Key(rng.Int63n(1_000_000_000)))
		if err != nil {
			t.Fatal(err)
		}
		lookupCost.AddInt(cost.Messages)
	}
	if joinUpdate.Mean() < 2*lookupCost.Mean() {
		t.Fatalf("expected join update cost (%.1f) to clearly exceed lookup cost (%.1f)", joinUpdate.Mean(), lookupCost.Mean())
	}
}

func TestRandomNodeAndMetrics(t *testing.T) {
	r := buildRing(t, 10, 19)
	if r.Metrics().TotalMessages() == 0 {
		t.Fatal("joins should have produced messages")
	}
	id := r.RandomNode()
	if _, ok := r.nodes[id]; !ok {
		t.Fatal("RandomNode returned an unknown id")
	}
}

func TestIntervalHelpers(t *testing.T) {
	const space = 1 << 8
	if !inIntervalOpen(5, 250, 10, space) {
		t.Fatal("wrap-around open interval failed")
	}
	if inIntervalOpen(250, 250, 10, space) {
		t.Fatal("open interval should exclude endpoints")
	}
	if !inIntervalHalfOpen(10, 250, 10, space) {
		t.Fatal("half-open interval should include upper endpoint")
	}
	if !inIntervalOpen(7, 3, 3, space) {
		t.Fatal("degenerate interval (a==b) covers everything but a")
	}
	if inIntervalOpen(3, 3, 3, space) {
		t.Fatal("degenerate interval excludes a")
	}
	if !inIntervalHalfOpen(99, 42, 42, space) {
		t.Fatal("degenerate half-open interval covers the whole ring")
	}
}
