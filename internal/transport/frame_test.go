package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	msgs := []*Msg{
		{},
		{To: 42, Corr: 7, Origin: 3, Kind: 9, Flags: 1, Payload: []byte("hello")},
		{To: ^uint64(0), Corr: ^uint64(0), Origin: ^NodeID(0), Kind: 255, Flags: 255, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		buf.Write(AppendFrame(nil, m))
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.To != want.To || got.Corr != want.Corr || got.Origin != want.Origin ||
			got.Kind != want.Kind || got.Flags != want.Flags || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestFrameChainedAppend(t *testing.T) {
	// AppendFrame must compose: two frames appended to one buffer decode in
	// order.
	b := AppendFrame(nil, &Msg{To: 1, Payload: []byte("a")})
	b = AppendFrame(b, &Msg{To: 2, Payload: []byte("b")})
	r := bytes.NewReader(b)
	m1, err1 := ReadFrame(r, 0)
	m2, err2 := ReadFrame(r, 0)
	if err1 != nil || err2 != nil || m1.To != 1 || m2.To != 2 {
		t.Fatalf("chained decode: %v %v %+v %+v", err1, err2, m1, m2)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<30)
	_, err := ReadFrame(bytes.NewReader(hdr[:]), 1<<20)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestFrameShorterThanHeader(t *testing.T) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 3)
	_, err := ReadFrame(bytes.NewReader(hdr[:]), 0)
	if !errors.Is(err, ErrFrameTruncated) {
		t.Fatalf("want ErrFrameTruncated, got %v", err)
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	full := AppendFrame(nil, &Msg{Payload: []byte("payload")})
	for cut := 1; cut < len(full); cut++ {
		if _, err := ReadFrame(bytes.NewReader(full[:cut]), 0); err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", cut)
		}
	}
}

// FuzzReadFrame feeds arbitrary bytes to the frame decoder: it must either
// return a frame or an error — never panic, and never allocate beyond the
// configured frame cap no matter what length the header announces.
func FuzzReadFrame(f *testing.F) {
	f.Add(AppendFrame(nil, &Msg{To: 9, Corr: 1, Origin: 2, Kind: 3, Payload: []byte("seed")}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{22, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const cap = 1 << 16
		r := bytes.NewReader(data)
		for {
			m, err := ReadFrame(r, cap)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
					!errors.Is(err, ErrFrameTooLarge) && !errors.Is(err, ErrFrameTruncated) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if len(m.Payload) > cap {
				t.Fatalf("payload %d exceeds cap", len(m.Payload))
			}
			// A successfully decoded frame must re-encode to the same bytes.
			re := AppendFrame(nil, m)
			if len(re) != 4+frameHeader+len(m.Payload) {
				t.Fatalf("re-encode length mismatch")
			}
		}
	})
}
