package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCP is the wire Transport: one persistent connection per node pair,
// length-prefixed binary frames, reconnect-with-backoff on the dialing
// side. Every node — head and daemons alike — runs a listener, so any node
// can be dialed lazily once its address is known (the p2p layer spreads
// addresses via its topology broadcasts and SetAddr).
type TCP struct {
	cfg     Config
	self    atomic.Uint32
	ln      net.Listener
	done    chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup

	mu      sync.Mutex
	conns   map[NodeID]*tcpConn
	addrs   map[NodeID]string
	dialing map[NodeID]bool
}

// Config parameterizes a TCP transport.
type Config struct {
	// Self is this node's ID. 0 means "assign me": the first Dial's hello
	// handshake fills it in from the listener's Assign hook.
	Self NodeID
	// Listen is the address to listen on; "" means 127.0.0.1:0.
	Listen string
	// Handler receives inbound frames (required before traffic flows).
	Handler Handler
	// OnPeerUp / OnPeerDown observe connections coming and going; both run
	// off the transport's locks, OnPeerDown fires once per dropped
	// connection (before any reconnect attempt) so the owner can fail
	// pending correlations.
	OnPeerUp   func(NodeID)
	OnPeerDown func(NodeID)
	// Assign mints NodeIDs for dialers that claim ID 0. Only the head sets
	// it; a node without Assign rejects unidentified dialers.
	Assign func() NodeID
	// MaxFrame bounds one frame; 0 means DefaultMaxFrame.
	MaxFrame int
}

const (
	helloTimeout     = 5 * time.Second
	dialTimeout      = 2 * time.Second
	reconnectFloor   = 10 * time.Millisecond
	reconnectCeiling = time.Second
)

// ErrHandshake is returned when the hello exchange fails.
var ErrHandshake = errors.New("transport: handshake failed")

// Listen starts a TCP transport on cfg.Listen.
func Listen(cfg Config) (*TCP, error) {
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	t := &TCP{
		cfg:     cfg,
		ln:      ln,
		done:    make(chan struct{}),
		conns:   make(map[NodeID]*tcpConn),
		addrs:   make(map[NodeID]string),
		dialing: make(map[NodeID]bool),
	}
	t.self.Store(uint32(cfg.Self))
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Self implements Transport.
func (t *TCP) Self() NodeID { return NodeID(t.self.Load()) }

// Addr is the listener's concrete address (useful with Listen "…:0").
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetAddr records where node id can be dialed, enabling lazy connections
// to nodes that have not dialed us.
func (t *TCP) SetAddr(id NodeID, addr string) {
	if id == 0 || addr == "" {
		return
	}
	t.mu.Lock()
	t.addrs[id] = addr
	t.mu.Unlock()
}

// Dial connects to addr, runs the hello handshake and registers the
// resulting connection. It returns the remote node's ID. If this node's ID
// is still 0, the handshake assigns one.
func (t *TCP) Dial(addr string) (NodeID, error) {
	return t.dial(addr)
}

func (t *TCP) dial(addr string) (NodeID, error) {
	nc, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return 0, err
	}
	_ = nc.SetDeadline(time.Now().Add(helloTimeout))
	hello := &Msg{Kind: kindHello, Origin: t.Self()}
	hello.Payload = appendString(binary.LittleEndian.AppendUint32(nil, uint32(t.Self())), t.Addr())
	if _, err := nc.Write(AppendFrame(nil, hello)); err != nil {
		nc.Close()
		return 0, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	ack, err := ReadFrame(nc, t.cfg.MaxFrame)
	if err != nil || ack.Kind != kindHelloAck || len(ack.Payload) < 8 {
		nc.Close()
		if err == nil {
			err = errors.New("unexpected hello ack")
		}
		return 0, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	assigned := NodeID(binary.LittleEndian.Uint32(ack.Payload[0:]))
	server := NodeID(binary.LittleEndian.Uint32(ack.Payload[4:]))
	_ = nc.SetDeadline(time.Time{})
	if t.Self() == 0 {
		t.self.Store(uint32(assigned))
	}
	t.register(server, nc, addr, true)
	return server, nil
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		nc, err := t.ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		t.wg.Add(1)
		go t.handshakeServer(nc)
	}
}

func (t *TCP) handshakeServer(nc net.Conn) {
	defer t.wg.Done()
	_ = nc.SetDeadline(time.Now().Add(helloTimeout))
	hello, err := ReadFrame(nc, t.cfg.MaxFrame)
	if err != nil || hello.Kind != kindHello || len(hello.Payload) < 4 {
		nc.Close()
		return
	}
	id := NodeID(binary.LittleEndian.Uint32(hello.Payload[0:]))
	addr, _ := readString(hello.Payload[4:])
	if id == 0 {
		if t.cfg.Assign == nil {
			nc.Close()
			return
		}
		id = t.cfg.Assign()
	}
	ack := &Msg{Kind: kindHelloAck, Origin: t.Self()}
	ack.Payload = binary.LittleEndian.AppendUint32(
		binary.LittleEndian.AppendUint32(nil, uint32(id)), uint32(t.Self()))
	if _, err := nc.Write(AppendFrame(nil, ack)); err != nil {
		nc.Close()
		return
	}
	_ = nc.SetDeadline(time.Time{})
	t.register(id, nc, addr, false)
}

// register installs nc as the connection to peer, replacing (and closing)
// any previous one, and starts its reader and writer goroutines.
func (t *TCP) register(peer NodeID, nc net.Conn, addr string, dialer bool) {
	c := &tcpConn{t: t, peer: peer, nc: nc, dialer: dialer, addr: addr, wake: make(chan struct{}, 1)}
	t.mu.Lock()
	if t.stopped.Load() {
		t.mu.Unlock()
		nc.Close()
		return
	}
	if old := t.conns[peer]; old != nil {
		old.shutdown()
	}
	t.conns[peer] = c
	if addr != "" {
		t.addrs[peer] = addr
	}
	t.mu.Unlock()
	t.wg.Add(2)
	go c.readLoop()
	go c.writeLoop()
	if up := t.cfg.OnPeerUp; up != nil {
		up(peer)
	}
}

// Send implements Transport. If no connection to `to` exists but its
// address is known, Send dials it synchronously once (later failures are
// the caller's cue to fail over, exactly as with a local dead peer).
func (t *TCP) Send(to NodeID, m *Msg) bool {
	if t.stopped.Load() {
		return false
	}
	t.mu.Lock()
	c := t.conns[to]
	addr := t.addrs[to]
	canDial := c == nil && addr != "" && !t.dialing[to]
	if canDial {
		t.dialing[to] = true
	}
	t.mu.Unlock()
	if c == nil && canDial {
		_, err := t.dial(addr)
		t.mu.Lock()
		delete(t.dialing, to)
		c = t.conns[to]
		t.mu.Unlock()
		if err != nil || c == nil {
			return false
		}
	}
	if c == nil {
		return false
	}
	return c.enqueue(AppendFrame(nil, m))
}

// Peers lists the nodes currently connected.
func (t *TCP) Peers() []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NodeID, 0, len(t.conns))
	for id := range t.conns {
		out = append(out, id)
	}
	return out
}

// Close implements Transport.
func (t *TCP) Close() {
	if !t.stopped.CompareAndSwap(false, true) {
		return
	}
	close(t.done)
	t.ln.Close()
	t.mu.Lock()
	conns := make([]*tcpConn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	for _, c := range conns {
		c.shutdown()
	}
	t.wg.Wait()
}

// tcpConn is one registered connection: an unbounded outbound queue drained
// by a writer goroutine (mirroring the peer spill queues, Send never
// blocks) and a reader goroutine dispatching inbound frames.
type tcpConn struct {
	t      *TCP
	peer   NodeID
	nc     net.Conn
	dialer bool
	addr   string
	wake   chan struct{}

	mu     sync.Mutex
	out    [][]byte
	closed bool
}

func (c *tcpConn) enqueue(frame []byte) bool {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	c.out = append(c.out, frame)
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
	return true
}

// shutdown closes the socket and marks the queue dead; both loops notice
// and exit. Idempotent.
func (c *tcpConn) shutdown() {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if already {
		return
	}
	c.nc.Close()
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// drop unregisters c after a read/write error, fires OnPeerDown, and — on
// the dialing side — starts the reconnect loop.
func (c *tcpConn) drop() {
	c.shutdown()
	t := c.t
	t.mu.Lock()
	mine := t.conns[c.peer] == c
	if mine {
		delete(t.conns, c.peer)
	}
	t.mu.Unlock()
	if !mine || t.stopped.Load() {
		return
	}
	if down := t.cfg.OnPeerDown; down != nil {
		down(c.peer)
	}
	if c.dialer && c.addr != "" {
		t.wg.Add(1)
		go t.reconnect(c.peer, c.addr)
	}
}

// reconnect redials addr with exponential backoff until it succeeds or the
// transport stops.
func (t *TCP) reconnect(peer NodeID, addr string) {
	defer t.wg.Done()
	backoff := reconnectFloor
	for {
		select {
		case <-t.done:
			return
		case <-time.After(backoff):
		}
		if t.stopped.Load() {
			return
		}
		if _, err := t.dial(addr); err == nil {
			return
		}
		if backoff *= 2; backoff > reconnectCeiling {
			backoff = reconnectCeiling
		}
	}
}

func (c *tcpConn) readLoop() {
	defer c.t.wg.Done()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		m, err := ReadFrame(br, c.t.cfg.MaxFrame)
		if err != nil {
			c.drop()
			return
		}
		if h := c.t.cfg.Handler; h != nil && m.Kind < kindHelloAck {
			h(c.peer, m)
		}
	}
}

func (c *tcpConn) writeLoop() {
	defer c.t.wg.Done()
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	for {
		c.mu.Lock()
		q := c.out
		c.out = nil
		closed := c.closed
		c.mu.Unlock()
		for _, frame := range q {
			if _, err := bw.Write(frame); err != nil {
				c.drop()
				return
			}
		}
		if len(q) > 0 {
			if err := bw.Flush(); err != nil {
				c.drop()
				return
			}
			continue // re-check the queue before blocking
		}
		if closed {
			return
		}
		select {
		case <-c.wake:
		case <-c.t.done:
			return
		}
	}
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func readString(b []byte) (string, bool) {
	if len(b) < 4 {
		return "", false
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < 0 || len(b)-4 < n {
		return "", false
	}
	return string(b[4 : 4+n]), true
}
