package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire format: every frame is a u32 little-endian length followed by that
// many bytes: To u64 | Corr u64 | Origin u32 | Kind u8 | Flags u8 | payload.
// The length covers the 22-byte header and the payload, not itself.
const (
	frameHeader = 8 + 8 + 4 + 1 + 1

	// DefaultMaxFrame bounds a single frame (bulk handoffs carry whole key
	// ranges, so this is generous). A peer announcing a larger frame is
	// protocol-broken and the connection is dropped rather than trusted
	// with the allocation.
	DefaultMaxFrame = 1 << 26
)

var (
	// ErrFrameTooLarge is returned when a frame announces a length above
	// the configured maximum.
	ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")
	// ErrFrameTruncated is returned when a frame is shorter than its own
	// header.
	ErrFrameTruncated = errors.New("transport: truncated frame")
)

// AppendFrame appends m encoded as one frame to dst and returns the
// extended slice.
func AppendFrame(dst []byte, m *Msg) []byte {
	n := frameHeader + len(m.Payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	dst = binary.LittleEndian.AppendUint64(dst, m.To)
	dst = binary.LittleEndian.AppendUint64(dst, m.Corr)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Origin))
	dst = append(dst, m.Kind, m.Flags)
	return append(dst, m.Payload...)
}

// ReadFrame reads one frame from r. maxFrame bounds the announced length
// (0 means DefaultMaxFrame); a malformed or oversized frame returns an
// error without allocating more than the limit. The returned Msg's Payload
// aliases a fresh buffer owned by the caller.
func ReadFrame(r io.Reader, maxFrame int) (*Msg, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if n < frameHeader {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTruncated, n)
	}
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	m := &Msg{
		To:     binary.LittleEndian.Uint64(buf[0:]),
		Corr:   binary.LittleEndian.Uint64(buf[8:]),
		Origin: NodeID(binary.LittleEndian.Uint32(buf[16:])),
		Kind:   buf[20],
		Flags:  buf[21],
	}
	if n > frameHeader {
		m.Payload = buf[frameHeader:]
	}
	return m, nil
}
